(* snic_cli: run individual S-NIC experiments from the command line.

     snic_cli attacks                 — §3.3 attack matrix
     snic_cli dos [--epoch N]         — IO-bus DoS under both arbiters
     snic_cli tco [--area P --power P]— TCO sensitivity
     snic_cli tlb --entries N         — TLB cost model query
     snic_cli pack --mb X [--menu M]  — page packing for a region
     snic_cli ipc [--l2 BYTES --nfs N]— one IPC-degradation run
     snic_cli dpi --threads N --frame B — one Figure-8 point
     snic_cli timeline                — Figure 7 series as CSV
     snic_cli fleet [--nics N ...]    — seeded multi-NIC fleet scenario
     snic_cli chaos [--intensity X ...] — gray-failure storm + self-healing
     snic_cli datapath [--bytes N]    — bulk vs per-byte Physmem probe
     snic_cli fabric [--nics N ...]   — attested NIC-to-NIC fabric + failover
     snic_cli trace chaos --out t.json — record a Chrome trace of a scenario *)

open Cmdliner

(* One shared --seed flag: every trace-driven subcommand takes it, and
   the same value reproduces the same run (the generators fall back to
   their historic fixed seeds when it is omitted). *)
let seed_arg =
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc:"Seed for the synthetic trace generators")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE" ~doc:"Write a Prometheus text dump of the run's metric registry to $(docv)")

(* --domains / --shards ride on fleet, chaos and oracle.  The converter
   rejects non-positive values at parse time, so "--domains 0" is a
   cmdliner usage error (exit 124) exactly like a non-numeric value —
   the CLI contract test pins this. *)
let positive_int ~what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | _ -> Error (`Msg (Printf.sprintf "%s must be a positive integer, got %S" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

let domains_arg =
  Arg.(value & opt (positive_int ~what:"DOMAINS") 1
       & info [ "domains" ] ~docv:"DOMAINS"
           ~doc:"OCaml domains to fan work across (results are byte-identical for any value; see PARALLELISM.md)")

let shards_arg =
  Arg.(value & opt (some (positive_int ~what:"SHARDS")) None
       & info [ "shards" ] ~docv:"SHARDS"
           ~doc:"Run $(docv) independent shards with Par.Seed-derived seeds, merged in shard order")

(* The merged snapshot of a sharded run: every shard's registry folded
   into one, plus the par_* rows describing the fan-out itself. *)
let merged_shard_registry ~domains ~shards results =
  let merged = Obs.Metrics.create_registry () in
  Obs.Metrics.add
    (Obs.Metrics.counter merged "par_shards_total" ~help:"Shards executed by the sharded run")
    shards;
  Obs.Metrics.add
    (Obs.Metrics.counter merged "par_domains" ~help:"Domains the shards were fanned across")
    domains;
  Array.iter
    (fun (_, sink) ->
      match Obs.registry sink with
      | Some reg ->
        Obs.Metrics.incr
          (Obs.Metrics.counter merged "par_registries_merged_total"
             ~help:"Per-shard registries folded into this snapshot");
        Obs.Metrics.merge_into ~into:merged reg
      | None -> ())
    results;
  merged

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let attacks_cmd =
  let run () =
    List.iter
      (fun (name, corr, steal) ->
        let s (o : Attacks.outcome) = if o.Attacks.succeeded then "SUCCEEDS" else "blocked" in
        Printf.printf "%-26s corruption=%-9s theft=%-9s\n" name (s corr) (s steal))
      (Attacks.matrix ())
  in
  Cmd.v (Cmd.info "attacks" ~doc:"Run the three §3.3 attacks across all NIC modes")
    Term.(const run $ const ())

let dos_cmd =
  let epoch = Arg.(value & opt int 96 & info [ "epoch" ] ~doc:"Temporal partitioning epoch (cycles)") in
  let dead = Arg.(value & opt int 16 & info [ "dead" ] ~doc:"Dead time at end of each epoch (cycles)") in
  let run epoch dead =
    let show name (r : Attacks.dos_result) =
      Printf.printf "%-28s alone %10.0f pps, attacked %10.0f pps, retained %5.1f%%\n" name r.Attacks.alone_pps
        r.Attacks.under_attack_pps (100. *. r.Attacks.retained)
    in
    show "free-for-all" (Attacks.bus_dos Nicsim.Bus.Free_for_all);
    show
      (Printf.sprintf "temporal(%d,%d)" epoch dead)
      (Attacks.bus_dos (Nicsim.Bus.Temporal { epoch; dead }))
  in
  Cmd.v (Cmd.info "dos" ~doc:"IO-bus denial-of-service experiment") Term.(const run $ epoch $ dead)

let tco_cmd =
  let area = Arg.(value & opt float 8.89 & info [ "area" ] ~doc:"Area overhead percent") in
  let power = Arg.(value & opt float 11.45 & info [ "power" ] ~doc:"Power overhead percent") in
  let run area power =
    let s = Costmodel.Tco.summary ~area_overhead_pct:area ~power_overhead_pct:power () in
    Printf.printf "NIC $%.2f/core, S-NIC $%.2f/core, host $%.2f/core\n" s.Costmodel.Tco.nic_tco
      s.Costmodel.Tco.snic_tco s.Costmodel.Tco.host_tco;
    Printf.printf "advantage reduction %.2f%%, preserved %.1f%%\n" s.Costmodel.Tco.advantage_reduction_pct
      s.Costmodel.Tco.preserved_pct
  in
  Cmd.v (Cmd.info "tco" ~doc:"Total-cost-of-ownership model") Term.(const run $ area $ power)

let tlb_cmd =
  let entries = Arg.(required & opt (some int) None & info [ "entries" ] ~doc:"TLB entry count") in
  let run entries =
    Printf.printf "%d-entry TLB: %.4f mm^2, %.4f W (per structure, 28nm McPAT-anchored)\n" entries
      (Costmodel.Tlb_cost.area_mm2 entries) (Costmodel.Tlb_cost.power_w entries)
  in
  Cmd.v (Cmd.info "tlb" ~doc:"TLB silicon cost query") Term.(const run $ entries)

let pack_cmd =
  let mb = Arg.(required & opt (some float) None & info [ "mb" ] ~doc:"Region size in MiB") in
  let menu =
    Arg.(value & opt (enum [ ("equal", `Equal); ("flex-low", `Low); ("flex-high", `High) ]) `Equal
         & info [ "menu" ] ~doc:"Page-size menu")
  in
  let run mb menu =
    let sizes =
      match menu with
      | `Equal -> Costmodel.Page_packing.equal_2mb
      | `Low -> Costmodel.Page_packing.flex_low
      | `High -> Costmodel.Page_packing.flex_high
    in
    let bytes = Costmodel.Page_packing.mb mb in
    Printf.printf "%.2f MiB -> %d TLB entries, %.2f MiB wasted\n" mb
      (Costmodel.Page_packing.entries_for_region ~page_sizes:sizes bytes)
      (float_of_int (Costmodel.Page_packing.waste ~page_sizes:sizes [ bytes ]) /. 1048576.)
  in
  Cmd.v (Cmd.info "pack" ~doc:"Variable-page-size packing query") Term.(const run $ mb $ menu)

(* An NF short name, validated through the registry so a typo lists the
   valid names and exits through cmdliner's usage path (124). *)
let nf_conv =
  let parse s =
    match Nf.Registry.find s with
    | spec -> Ok spec.Nf.Registry.short
    | exception Invalid_argument msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Format.pp_print_string)

let ipc_cmd =
  let l2 = Arg.(value & opt int (4 lsl 20) & info [ "l2" ] ~doc:"L2 size in bytes") in
  let nfs = Arg.(value & opt int 4 & info [ "nfs" ] ~doc:"Co-tenancy degree (2-16)") in
  let nf_names =
    Arg.(value & opt_all nf_conv []
         & info [ "nf" ] ~docv:"NAME" ~doc:"Colocate exactly these NFs (repeatable); overrides $(b,--nfs)")
  in
  let run l2 nfs nf_names seed =
    let names =
      match nf_names with
      | [] ->
        let pool = Uarch.Workload.names in
        List.init nfs (fun i -> List.nth pool (i mod List.length pool))
      | names -> names
    in
    let streams =
      Array.of_list
        (List.mapi (fun d n -> Uarch.Workload.rebase (Uarch.Workload.stream ~packets:800 ?seed n) ~domain:d) names)
    in
    Array.iter
      (fun (nf, d) -> Printf.printf "%-5s IPC degradation %.2f%%\n" nf d)
      (Uarch.Cpu_model.degradation ~l2_bytes:l2 streams)
  in
  Cmd.v (Cmd.info "ipc" ~doc:"One IPC-degradation colocation run (Figure 5 point)")
    Term.(const run $ l2 $ nfs $ nf_names $ seed_arg)

let dpi_cmd =
  let threads = Arg.(value & opt int 16 & info [ "threads" ] ~doc:"vDPI hardware threads") in
  let frame = Arg.(value & opt int 1500 & info [ "frame" ] ~doc:"Frame size in bytes") in
  let run threads frame =
    Printf.printf "%d threads, %dB frames: %.3f Mpps\n" threads frame
      (Uarch.Figure8.simulate ~threads ~frame_bytes:frame ())
  in
  Cmd.v (Cmd.info "dpi" ~doc:"One Figure-8 accelerator-throughput point") Term.(const run $ threads $ frame)

let covert_cmd =
  let run () =
    let show name (r : Attacks.covert_result) =
      Printf.printf "%-28s %d/%d bits decoded (%.0f%%)\n" name r.Attacks.decoded r.Attacks.bits
        (100. *. r.Attacks.accuracy)
    in
    show "free-for-all" (Attacks.bus_covert_channel Nicsim.Bus.Free_for_all);
    show "temporal(96,16)" (Attacks.bus_covert_channel (Nicsim.Bus.Temporal { epoch = 96; dead = 16 }))
  in
  Cmd.v (Cmd.info "covert" ~doc:"Bus covert-channel experiment") Term.(const run $ const ())

let probe_cmd =
  let run () =
    let show (r : Attacks.accel_probe_result) =
      Printf.printf "%-22s idle %6d cycles, victim-active %6d cycles -> %s\n"
        (if r.Attacks.shared then "shared accelerator" else "dedicated cluster")
        r.Attacks.idle_latency r.Attacks.busy_latency
        (if r.Attacks.distinguishable then "LEAKS" else "flat")
    in
    show (Attacks.accel_contention ~shared:true);
    show (Attacks.accel_contention ~shared:false)
  in
  Cmd.v (Cmd.info "probe" ~doc:"Accelerator-contention side channel") Term.(const run $ const ())

let overhead_cmd =
  let run () =
    let b = Costmodel.Overhead.compute Costmodel.Overhead.headline in
    Printf.printf "area: +%.2f%% (cores %.3f, accels %.3f, io %.3f mm^2)\n" b.Costmodel.Overhead.area_overhead_pct
      b.Costmodel.Overhead.core_area b.Costmodel.Overhead.accel_area b.Costmodel.Overhead.io_area;
    Printf.printf "power: +%.2f%% (cores %.3f, accels %.3f, io %.3f W)\n" b.Costmodel.Overhead.power_overhead_pct
      b.Costmodel.Overhead.core_power b.Costmodel.Overhead.accel_power b.Costmodel.Overhead.io_power
  in
  Cmd.v (Cmd.info "overhead" ~doc:"Headline silicon overhead (8.89%/11.45%)") Term.(const run $ const ())

let table6_cmd =
  let run () =
    print_endline "nf,text_mb,data_mb,code_mb,heap_mb,total_mb,equal,flex_low,flex_high,mur_pct";
    List.iter
      (fun (p : Memprof.Profiles.t) ->
        let e menu = Memprof.Profiles.tlb_entries p ~page_sizes:menu in
        let mur = Memprof.Mur.find p.Memprof.Profiles.name in
        Printf.printf "%s,%.2f,%.2f,%.2f,%.2f,%.2f,%d,%d,%d,%.1f\n" p.Memprof.Profiles.name
          p.Memprof.Profiles.text_mb p.Memprof.Profiles.data_mb p.Memprof.Profiles.code_mb
          p.Memprof.Profiles.heap_stack_mb (Memprof.Profiles.total_mb p)
          (e Costmodel.Page_packing.equal_2mb) (e Costmodel.Page_packing.flex_low)
          (e Costmodel.Page_packing.flex_high) mur.Memprof.Mur.mur_pct)
      Memprof.Profiles.nfs
  in
  Cmd.v (Cmd.info "table6" ~doc:"Table 6 NF memory profiles as CSV") Term.(const run $ const ())

let fig5_cmd =
  let cotenancy = Arg.(value & opt int 4 & info [ "nfs" ] ~doc:"Co-tenancy degree") in
  let packets = Arg.(value & opt int 800 & info [ "packets" ] ~doc:"Packets per stream") in
  let run cotenancy packets seed =
    print_endline "nf,cotenancy,median_pct,p1_pct,p99_pct";
    List.iter
      (fun (nf, series) ->
        List.iter
          (fun (n, (s : Uarch.Colocation.stats)) ->
            Printf.printf "%s,%d,%.3f,%.3f,%.3f\n" nf n s.Uarch.Colocation.median s.Uarch.Colocation.p1
              s.Uarch.Colocation.p99)
          series)
      (Uarch.Colocation.figure5b ~cotenancy:[ cotenancy ] ~samples:4 ~packets ?seed ())
  in
  Cmd.v (Cmd.info "fig5" ~doc:"Figure 5b IPC-degradation stats as CSV")
    Term.(const run $ cotenancy $ packets $ seed_arg)

let fig8_cmd =
  let run () =
    print_endline "threads,frame_bytes,mpps";
    List.iter
      (fun (p : Uarch.Figure8.point) ->
        Printf.printf "%d,%d,%.4f\n" p.Uarch.Figure8.threads p.Uarch.Figure8.frame_bytes p.Uarch.Figure8.mpps)
      (Uarch.Figure8.figure8 ())
  in
  Cmd.v (Cmd.info "fig8" ~doc:"Figure 8 vDPI throughput as CSV") Term.(const run $ const ())

let timeline_cmd =
  let run () =
    print_endline "t_s,used_mb,prealloc_mb";
    List.iter
      (fun (p : Memprof.Timeline.point) ->
        Printf.printf "%.2f,%.2f,%.2f\n" p.Memprof.Timeline.t_s p.Memprof.Timeline.used_mb
          p.Memprof.Timeline.prealloc_mb)
      (Memprof.Timeline.monitor ())
  in
  Cmd.v (Cmd.info "timeline" ~doc:"Figure 7 Monitor memory series as CSV") Term.(const run $ const ())

let fleet_cmd =
  let nics = Arg.(value & opt int 16 & info [ "nics" ] ~doc:"NICs in the rack") in
  let tenants = Arg.(value & opt int 64 & info [ "tenants" ] ~doc:"Tenant NFs to place") in
  let policy =
    Arg.(value & opt string "first-fit"
         & info [ "policy" ] ~docv:"POLICY" ~doc:"Placement policy: first-fit|best-fit|spread|tco-aware")
  in
  let rounds = Arg.(value & opt int 3 & info [ "rounds" ] ~doc:"Traffic rounds (failures strike between them)") in
  let packets = Arg.(value & opt int 600 & info [ "packets" ] ~doc:"Packets replayed per round") in
  let kill_nics = Arg.(value & opt int 2 & info [ "kill-nics" ] ~doc:"NIC failures injected over the run") in
  let kill_nfs = Arg.(value & opt int 4 & info [ "kill-nfs" ] ~doc:"Orderly NF kills injected over the run") in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit per-tenant and per-NIC telemetry as CSV") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the full telemetry tree as JSON") in
  let run seed nics tenants policy rounds packets kill_nics kill_nfs csv json metrics domains shards =
    match Fleet.Policy.of_string policy with
    | Error e ->
      prerr_endline e;
      exit 2
    | Ok policy ->
      let config =
        {
          Fleet.Scenario.default_config with
          Fleet.Scenario.seed = Option.value seed ~default:Fleet.Scenario.default_config.Fleet.Scenario.seed;
          n_nics = nics;
          n_tenants = tenants;
          policy;
          rounds;
          packets_per_round = packets;
          kill_nics;
          kill_nfs;
        }
      in
      let shards = Option.value shards ~default:1 in
      if shards = 1 then begin
        (* Only record device events when someone asked for the metrics
           dump — the null sink keeps the default run overhead-free. *)
        let sink = if metrics = None then Obs.null else Obs.create () in
        let report, orch = Fleet.Scenario.run_with ~sink ~domains config in
        let telemetry = Fleet.Orchestrator.telemetry orch in
        if json then print_string (Fleet.Telemetry.to_json telemetry)
        else begin
          print_string (Fleet.Scenario.summary report);
          if csv then begin
            print_newline ();
            print_string (Fleet.Telemetry.tenants_csv telemetry);
            print_newline ();
            print_string (Fleet.Telemetry.nics_csv telemetry)
          end
        end;
        (match metrics with Some path -> write_file path (Fleet.Telemetry.prometheus telemetry) | None -> ());
        if report.Fleet.Scenario.unattested_running > 0 || report.Fleet.Scenario.scrub_failures > 0 then exit 1
      end
      else begin
        if csv || json then begin
          prerr_endline "fleet: --csv/--json apply to single-shard runs (drop --shards)";
          exit 2
        end;
        let results = Fleet.Scenario.run_many ~domains ~record:(metrics <> None) ~shards config in
        Array.iteri
          (fun i (report, _) ->
            Printf.printf "=== shard %d (seed %d) ===\n" i report.Fleet.Scenario.config.Fleet.Scenario.seed;
            print_string (Fleet.Scenario.summary report))
          results;
        (match metrics with
        | Some path ->
          write_file path (Obs.Metrics.prometheus (merged_shard_registry ~domains ~shards results))
        | None -> ());
        if
          Array.exists
            (fun (r, _) -> r.Fleet.Scenario.unattested_running > 0 || r.Fleet.Scenario.scrub_failures > 0)
            results
        then exit 1
      end
  in
  Cmd.v
    (Cmd.info "fleet" ~doc:"Seeded multi-NIC fleet scenario: attested placement, traffic, failure recovery")
    Term.(
      const run $ seed_arg $ nics $ tenants $ policy $ rounds $ packets $ kill_nics $ kill_nfs $ csv $ json
      $ metrics_arg $ domains_arg $ shards_arg)

let chaos_cmd =
  let nics = Arg.(value & opt int 8 & info [ "nics" ] ~doc:"NICs in the rack") in
  let tenants = Arg.(value & opt int 24 & info [ "tenants" ] ~doc:"Tenant NFs to place") in
  let policy =
    Arg.(value & opt string "first-fit"
         & info [ "policy" ] ~docv:"POLICY" ~doc:"Placement policy: first-fit|best-fit|spread|tco-aware")
  in
  let rounds = Arg.(value & opt int 6 & info [ "rounds" ] ~doc:"Traffic rounds under the storm") in
  let packets = Arg.(value & opt int 400 & info [ "packets" ] ~doc:"Packets replayed per round") in
  let intensity =
    Arg.(value & opt float 3.0 & info [ "intensity" ] ~doc:"Fault-rate multiplier on the storm NICs")
  in
  let stride =
    Arg.(value & opt int 3 & info [ "stride" ] ~doc:"Every k-th NIC gets the full storm (0 = none)")
  in
  let flips = Arg.(value & opt int 2 & info [ "flips" ] ~doc:"DRAM bit flips injected per round") in
  let kill_nics = Arg.(value & opt int 1 & info [ "kill-nics" ] ~doc:"Fail-stop NIC kills over the run") in
  let kill_nfs = Arg.(value & opt int 2 & info [ "kill-nfs" ] ~doc:"Orderly NF kills over the run") in
  let log = Arg.(value & flag & info [ "log" ] ~doc:"Print the replayable fault-injection log") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the full telemetry tree as JSON") in
  let run seed nics tenants policy rounds packets intensity stride flips kill_nics kill_nfs log json metrics
      domains shards =
    match Fleet.Policy.of_string policy with
    | Error e ->
      prerr_endline e;
      exit 2
    | Ok policy ->
      let config =
        {
          Fleet.Chaos.default_config with
          Fleet.Chaos.seed = Option.value seed ~default:Fleet.Chaos.default_config.Fleet.Chaos.seed;
          n_nics = nics;
          n_tenants = tenants;
          policy;
          rounds;
          packets_per_round = packets;
          intensity;
          flaky_stride = stride;
          dram_flips_per_round = flips;
          kill_nics;
          kill_nfs;
        }
      in
      let shards = Option.value shards ~default:1 in
      if shards = 1 then begin
        let sink = if metrics = None then Obs.null else Obs.create () in
        let report, orch = Fleet.Chaos.run_with ~sink ~domains config in
        let telemetry = Fleet.Orchestrator.telemetry orch in
        if json then print_string (Fleet.Telemetry.to_json telemetry)
        else begin
          print_string (Fleet.Chaos.summary report);
          if log then begin
            print_newline ();
            print_string report.Fleet.Chaos.injection_log
          end
        end;
        (match metrics with Some path -> write_file path (Fleet.Telemetry.prometheus telemetry) | None -> ());
        if report.Fleet.Chaos.unattested_running > 0 || report.Fleet.Chaos.scrub_failures > 0 then exit 1
      end
      else begin
        if json then begin
          prerr_endline "chaos: --json applies to single-shard runs (drop --shards)";
          exit 2
        end;
        let results = Fleet.Chaos.run_many ~domains ~record:(metrics <> None) ~shards config in
        Array.iteri
          (fun i (report, _) ->
            Printf.printf "=== shard %d (seed %d) ===\n" i report.Fleet.Chaos.config.Fleet.Chaos.seed;
            print_string (Fleet.Chaos.summary report);
            if log then begin
              print_newline ();
              print_string report.Fleet.Chaos.injection_log
            end)
          results;
        (match metrics with
        | Some path ->
          write_file path (Obs.Metrics.prometheus (merged_shard_registry ~domains ~shards results))
        | None -> ());
        if
          Array.exists
            (fun (r, _) -> r.Fleet.Chaos.unattested_running > 0 || r.Fleet.Chaos.scrub_failures > 0)
            results
        then exit 1
      end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Gray-failure storm: fault injection across the fleet with self-healing recovery")
    Term.(
      const run $ seed_arg $ nics $ tenants $ policy $ rounds $ packets $ intensity $ stride $ flips $ kill_nics
      $ kill_nfs $ log $ json $ metrics_arg $ domains_arg $ shards_arg)

let datapath_cmd =
  let bytes = Arg.(value & opt int (1 lsl 20) & info [ "bytes" ] ~docv:"N" ~doc:"Transfer size in bytes") in
  let run bytes seed =
    if bytes <= 0 then begin
      prerr_endline "datapath: --bytes must be positive";
      exit 2
    end;
    let open Nicsim in
    let seed = Option.value seed ~default:42 in
    let rng = Trace.Rng.create ~seed in
    let payload = String.init bytes (fun _ -> Char.chr (Trace.Rng.int rng 256)) in
    let size =
      let page = Physmem.page_size in
      (* Two disjoint page-aligned regions, whatever the transfer size. *)
      (((2 * bytes) + page - 1) / page * page) + (2 * page)
    in
    let mem = Physmem.create ~size in
    let time f =
      let t0 = Sys.time () in
      f ();
      Float.max (Sys.time () -. t0) 1e-6
    in
    let r0 = Physmem.resolutions mem in
    let per_dt =
      time (fun () ->
          for i = 0 to bytes - 1 do
            Physmem.write_u8 mem i (Char.code payload.[i])
          done;
          for i = 0 to bytes - 1 do
            ignore (Physmem.read_u8 mem i)
          done)
    in
    let per_res = Physmem.resolutions mem - r0 in
    let dst = size / 2 in
    let r1 = Physmem.resolutions mem in
    let ok = ref false in
    let bulk_dt =
      time (fun () ->
          Physmem.write_bytes mem ~pos:dst payload;
          ok := String.equal (Physmem.read_bytes mem ~pos:dst ~len:bytes) payload)
    in
    let bulk_res = Physmem.resolutions mem - r1 in
    let mbs dt = float_of_int bytes *. 2. /. 1048576. /. dt in
    Printf.printf "%d bytes (seed %d)\n" bytes seed;
    Printf.printf "per-byte: %10.1f MB/s  %9d page resolutions\n" (mbs per_dt) per_res;
    Printf.printf "bulk:     %10.1f MB/s  %9d page resolutions  roundtrip %s\n" (mbs bulk_dt) bulk_res
      (if !ok then "ok" else "CORRUPT");
    if not !ok then exit 1
  in
  Cmd.v
    (Cmd.info "datapath"
       ~doc:"Quick probe of the bulk Physmem fast path vs the per-byte baseline (see bench --only datapath)")
    Term.(const run $ bytes $ seed_arg)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let oracle_cmd =
  let mode_enum = Arg.enum (List.map (fun m -> (Oracle.Campaign.mode_id m, m)) Oracle.Campaign.all_modes) in
  let mode =
    Arg.(value & opt (some mode_enum) None
         & info [ "mode" ] ~docv:"MODE" ~doc:"NIC mode: se-s|se-um|se-um-xk|agilio|bluefield|snic")
  in
  let ops = Arg.(value & opt int 10_000 & info [ "ops" ] ~docv:"N" ~doc:"Ops to generate and execute") in
  let slots = Arg.(value & opt int Oracle.Campaign.default_slots & info [ "slots" ] ~docv:"K" ~doc:"Tenant slots (1-8)") in
  let replay =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"FILE" ~doc:"Replay a recorded trace file instead of generating ops")
  in
  let dump =
    Arg.(value & opt (some string) None
         & info [ "dump" ] ~docv:"FILE" ~doc:"Write the executed (or, with --shrink, the shrunk) trace to $(docv)")
  in
  let shrink = Arg.(value & flag & info [ "shrink" ] ~doc:"Delta-debug the first violation down to a minimal trace") in
  let fabric_ops =
    Arg.(value & flag
         & info [ "fabric-ops" ]
             ~doc:"Mix attested-channel ops (chanopen/chansend/chanreplay) into the generated alphabet")
  in
  let expect =
    Arg.(value & opt (some (enum [ ("clean", `Clean); ("violations", `Violations) ])) None
         & info [ "expect" ] ~docv:"WHAT" ~doc:"Exit 1 unless the run is $(b,clean) / has $(b,violations)")
  in
  let run seed mode ops slots replay dump shrink fabric_ops expect domains shards =
    let fail msg =
      prerr_endline msg;
      exit 2
    in
    if slots < 1 || slots > 8 then fail "oracle: --slots must be in 1..8";
    if ops < 0 then fail "oracle: --ops must be non-negative";
    if fabric_ops && replay <> None then
      fail "oracle: --fabric-ops applies to generated runs (drop --replay)";
    (* --domains N with no explicit --shards means "a real parallel
       campaign": one shard per domain.  Any shard replays alone with
       --shards K --domains 1 (or via its derived seed) — PARALLELISM.md
       walks through the equivalence. *)
    let shards = match shards with Some s -> s | None -> if domains > 1 then domains else 1 in
    if shards > 1 then begin
      if replay <> None || shrink || dump <> None then
        fail "oracle: --replay/--shrink/--dump apply to single-shard runs (drop --shards/--domains)";
      match mode with
      | None -> fail "oracle: --mode is required (or use --replay FILE)"
      | Some mode ->
        let seed = Option.value seed ~default:42 in
        let reports = Oracle.Campaign.run_sharded ~domains ~slots ~fabric:fabric_ops ~mode ~ops ~seed ~shards () in
        Array.iteri
          (fun i r ->
            Printf.printf "=== shard %d (seed %s) ===\n" i
              (match r.Oracle.Campaign.seed with Some s -> string_of_int s | None -> "-");
            print_string (Oracle.Campaign.to_string r))
          reports;
        let dirty =
          Array.exists (fun (r : Oracle.Campaign.report) -> r.Oracle.Campaign.violations <> []) reports
        in
        let all_dirty =
          Array.for_all (fun (r : Oracle.Campaign.report) -> r.Oracle.Campaign.violations <> []) reports
        in
        (match expect with
        | Some `Clean when dirty ->
          prerr_endline "oracle: expected a clean run but found violations";
          exit 1
        | Some `Violations when not all_dirty ->
          prerr_endline "oracle: expected violations in every shard but found a clean one";
          exit 1
        | _ -> ());
        exit 0
    end;
    let mode, slots, ops_list, seed_used =
      match replay with
      | Some path -> (
        match Oracle.Campaign.trace_of_string (read_file path) with
        | Ok (m, s, trace) -> (m, s, trace, None)
        | Error e -> fail (Printf.sprintf "oracle: %s: %s" path e))
      | None -> (
        match mode with
        | None -> fail "oracle: --mode is required (or use --replay FILE)"
        | Some m ->
          let seed = Option.value seed ~default:42 in
          (m, slots, Oracle.Campaign.gen_ops ~fabric:fabric_ops ~slots ~ops ~seed (), Some seed))
    in
    let report = { (Oracle.Campaign.replay ~slots ~mode ops_list) with Oracle.Campaign.seed = seed_used } in
    print_string (Oracle.Campaign.to_string report);
    let final_ops =
      if not shrink then ops_list
      else begin
        match report.Oracle.Campaign.violations with
        | [] ->
          print_endline "shrink: nothing to shrink (no violations)";
          ops_list
        | v :: _ ->
          let small = Oracle.Shrink.minimize ~slots ~mode ops_list v in
          Printf.printf "shrink: %d ops -> %d ops reproducing [%s]\n" (List.length ops_list) (List.length small)
            (Oracle.Refmodel.cls_to_string v.Oracle.Refmodel.cls);
          List.iter (fun op -> print_endline ("  " ^ Oracle.Op.to_line op)) small;
          small
      end
    in
    (match dump with
    | Some path -> write_file path (Oracle.Campaign.trace_to_string ~mode ~slots final_ops)
    | None -> ());
    match (expect, report.Oracle.Campaign.violations) with
    | Some `Clean, _ :: _ ->
      prerr_endline "oracle: expected a clean run but found violations";
      exit 1
    | Some `Violations, [] ->
      prerr_endline "oracle: expected violations but the run was clean";
      exit 1
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "oracle"
       ~doc:"Model-based isolation oracle: differential fuzzing of the machine against a flat reference model")
    Term.(
      const run $ seed_arg $ mode $ ops $ slots $ replay $ dump $ shrink $ fabric_ops $ expect $ domains_arg
      $ shards_arg)

let vf_cmd =
  let nics = Arg.(value & opt int 1 & info [ "nics" ] ~docv:"N" ~doc:"Independent NICs to drive") in
  let vfs = Arg.(value & opt int 256 & info [ "vfs" ] ~docv:"K" ~doc:"Virtual functions per NIC") in
  let cycles =
    Arg.(value & opt int 32
         & info [ "cycles" ] ~docv:"C" ~doc:"Stage-1 scheduler rotations to serve (convergence depth)")
  in
  let quantum = Arg.(value & opt int 1024 & info [ "quantum" ] ~docv:"BYTES" ~doc:"Stage-1 byte quantum per weight unit") in
  let min_jain =
    Arg.(value & opt float 0.95
         & info [ "min-jain" ] ~docv:"F" ~doc:"Exit 1 if any NIC's weighted Jain index falls below $(docv)")
  in
  let max_err =
    Arg.(value & opt float 5.0
         & info [ "max-err" ] ~docv:"PCT" ~doc:"Exit 1 if any tenant's goodput share misses its weight share by more than $(docv)%%")
  in
  let shares = Arg.(value & flag & info [ "shares" ] ~doc:"Print the per-tenant share table of the first NIC") in
  let run seed nics vfs cycles quantum min_jain max_err shares =
    let fail msg =
      prerr_endline msg;
      exit 2
    in
    if nics < 1 then fail "vf: --nics must be >= 1";
    if vfs < 1 || vfs > 4096 then fail "vf: --vfs must be in 1..4096";
    if cycles < 1 then fail "vf: --cycles must be >= 1";
    if quantum < 1 then fail "vf: --quantum must be >= 1";
    let seed = Option.value seed ~default:42 in
    let config = { Vf.Table.default_config with Vf.Table.quantum } in
    let t0 = Sys.time () in
    let r = Vf.Scenario.run ~config ~nics ~vfs ~cycles ~seed () in
    let secs = Sys.time () -. t0 in
    Printf.printf "vf: %d NIC(s) x %d VFs, %d cycles, quantum %d, seed %d\n" nics vfs cycles quantum seed;
    print_string (Vf.Scenario.summary r);
    (match (shares, r.Vf.Scenario.nics) with
    | true, nr :: _ -> print_string (Obs.Fairness.summary nr.Vf.Scenario.report)
    | _ -> ());
    if secs > 0. then
      Printf.printf "throughput: %.0f scheduled pkts/sec (wall, non-deterministic)\n"
        (float_of_int r.Vf.Scenario.total_pkts /. secs);
    if r.Vf.Scenario.jain_min < min_jain then begin
      Printf.eprintf "vf: FAIL jain %.4f below floor %.4f\n" r.Vf.Scenario.jain_min min_jain;
      exit 1
    end;
    if 100. *. r.Vf.Scenario.max_rel_err > max_err then begin
      Printf.eprintf "vf: FAIL share error %.2f%% above ceiling %.2f%%\n" (100. *. r.Vf.Scenario.max_rel_err) max_err;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "vf"
       ~doc:"SR-IOV virtual functions: saturate every VF and check the two-stage scheduler's weighted fairness")
    Term.(const run $ seed_arg $ nics $ vfs $ cycles $ quantum $ min_jain $ max_err $ shares)

let qos_cmd =
  let tenants = Arg.(value & opt int 8 & info [ "tenants" ] ~docv:"N" ~doc:"Tenants (tenant 0 is the aggressor)") in
  let rounds = Arg.(value & opt int 8 & info [ "rounds" ] ~docv:"R" ~doc:"Traffic rounds") in
  let requests = Arg.(value & opt int 40 & info [ "requests" ] ~docv:"K" ~doc:"Victim requests per tenant per round") in
  let factor = Arg.(value & opt int 8 & info [ "factor" ] ~docv:"X" ~doc:"Aggressor load multiplier") in
  let slo = Arg.(value & opt int 2000 & info [ "slo" ] ~docv:"CYCLES" ~doc:"Victim latency SLO in cycles") in
  let starve = Arg.(value & flag & info [ "starve" ] ~doc:"Starvation variant: zero structural slack (capacity = sum of guarantees)") in
  let min_share =
    Arg.(value & opt float 0.9
         & info [ "min-share" ] ~docv:"F" ~doc:"Exit 1 if any victim keeps less than $(docv) of its guaranteed share")
  in
  let max_p99 =
    Arg.(value & opt (some float) None
         & info [ "max-victim-p99" ] ~docv:"CYCLES"
             ~doc:"Exit 1 if steady-state victim p99 exceeds $(docv) (default: the SLO)")
  in
  let run seed tenants rounds requests factor slo starve min_share max_p99 =
    let fail msg =
      prerr_endline msg;
      exit 2
    in
    if tenants < 2 then fail "qos: --tenants must be >= 2";
    if rounds < 1 then fail "qos: --rounds must be >= 1";
    if requests < 4 then fail "qos: --requests must be >= 4";
    if factor < 1 then fail "qos: --factor must be >= 1";
    if slo < 1 then fail "qos: --slo must be >= 1";
    let config =
      {
        Fleet.Chaos.default_qos_config with
        Fleet.Chaos.q_seed = Option.value seed ~default:Fleet.Chaos.default_qos_config.Fleet.Chaos.q_seed;
        q_tenants = tenants;
        q_rounds = rounds;
        q_requests = requests;
        q_factor = factor;
        q_slo = slo;
        q_starve = starve;
      }
    in
    let report, _sup = Fleet.Chaos.run_qos config in
    print_string (Fleet.Chaos.qos_summary report);
    if report.Fleet.Chaos.q_starved > 0 then begin
      Printf.eprintf "qos: FAIL %d victim(s) starved (zero grants)\n" report.Fleet.Chaos.q_starved;
      exit 1
    end;
    if report.Fleet.Chaos.q_share_min < min_share then begin
      Printf.eprintf "qos: FAIL guaranteed share %.4f below floor %.4f\n" report.Fleet.Chaos.q_share_min
        min_share;
      exit 1
    end;
    let ceiling = Option.value max_p99 ~default:(float_of_int slo) in
    match report.Fleet.Chaos.q_victim_p99_steady with
    | Some p99 when p99 > ceiling ->
      Printf.eprintf "qos: FAIL steady-state victim p99 %.0f above ceiling %.0f cycles\n" p99 ceiling;
      exit 1
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "qos"
       ~doc:"Per-tenant performance isolation: QoS credits on the shared fabric, latency SLOs and noisy-neighbor quarantine")
    Term.(const run $ seed_arg $ tenants $ rounds $ requests $ factor $ slo $ starve $ min_share $ max_p99)

let ddos_cmd =
  let flows = Arg.(value & opt int 256 & info [ "flows" ] ~docv:"N" ~doc:"Benign flows") in
  let factor =
    Arg.(value & opt int 10 & info [ "factor" ] ~docv:"X" ~doc:"Spoofed SYNs per benign packet (attack intensity)")
  in
  let pkts =
    Arg.(value & opt int 4 & info [ "pkts-per-flow" ] ~docv:"K" ~doc:"Benign data packets after each handshake")
  in
  let log2_buckets =
    Arg.(value & opt int 10 & info [ "log2-buckets" ] ~docv:"B" ~doc:"Whitelist cuckoo filter: 2^$(docv) buckets x 4 slots")
  in
  let min_goodput =
    Arg.(value & opt float 0.8
         & info [ "min-goodput" ] ~docv:"F"
             ~doc:"Exit 1 if S-NIC-mode benign goodput under attack falls below $(docv) of the attack-free baseline")
  in
  let run seed flows factor pkts log2_buckets min_goodput =
    let fail msg =
      prerr_endline msg;
      exit 2
    in
    if flows < 1 then fail "ddos: --flows must be >= 1";
    if factor < 1 then fail "ddos: --factor must be >= 1";
    if pkts < 1 then fail "ddos: --pkts-per-flow must be >= 1";
    if log2_buckets < 1 || log2_buckets > 28 then fail "ddos: --log2-buckets must be in 1..28";
    if min_goodput < 0. || min_goodput > 1. then fail "ddos: --min-goodput must be in [0,1]";
    let config =
      {
        Fleet.Chaos.default_ddos_config with
        Fleet.Chaos.d_seed = Option.value seed ~default:Fleet.Chaos.default_ddos_config.Fleet.Chaos.d_seed;
        d_benign_flows = flows;
        d_attack_factor = factor;
        d_packets_per_flow = pkts;
        d_log2_buckets = log2_buckets;
      }
    in
    let r = Fleet.Chaos.run_ddos config in
    print_string (Fleet.Chaos.ddos_summary r);
    if r.Fleet.Chaos.d_snic_tampered || r.Fleet.Chaos.d_snic_key_stolen then begin
      Printf.eprintf "ddos: FAIL S-NIC mode let the attacker reach NF memory (tampered=%b key_stolen=%b)\n"
        r.Fleet.Chaos.d_snic_tampered r.Fleet.Chaos.d_snic_key_stolen;
      exit 1
    end;
    if not r.Fleet.Chaos.d_snic_mem_flat then begin
      Printf.eprintf "ddos: FAIL S-NIC-mode defense memory grew above its fixed reservation\n";
      exit 1
    end;
    if r.Fleet.Chaos.d_snic_goodput_ratio < min_goodput then begin
      Printf.eprintf "ddos: FAIL S-NIC-mode benign goodput %.4f below floor %.4f\n"
        r.Fleet.Chaos.d_snic_goodput_ratio min_goodput;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "ddos"
       ~doc:"CuckooGuard under a SYN flood: SYN-cookie proxy + cuckoo-filter whitelist across all five protection modes")
    Term.(const run $ seed_arg $ flows $ factor $ pkts $ log2_buckets $ min_goodput)

let fabric_cmd =
  let nics = Arg.(value & opt int 3 & info [ "nics" ] ~docv:"N" ~doc:"NICs in the rack (proxy, tracker, spare)") in
  let flows = Arg.(value & opt int 96 & info [ "flows" ] ~docv:"F" ~doc:"Benign flows through the split chain") in
  let pkts =
    Arg.(value & opt int 4 & info [ "pkts-per-flow" ] ~docv:"K" ~doc:"Benign data packets after each handshake")
  in
  let window =
    Arg.(value & opt int 32 & info [ "window" ] ~docv:"W" ~doc:"Receiver anti-replay window (1..62)")
  in
  let buffer =
    Arg.(value & opt int 2048 & info [ "buffer" ] ~docv:"B" ~doc:"Sender replay-buffer capacity (failover state)")
  in
  let replay = Arg.(value & opt int 24 & info [ "replay" ] ~docv:"N" ~doc:"Adversarial in-window re-deliveries") in
  let reorder = Arg.(value & opt int 24 & info [ "reorder" ] ~docv:"N" ~doc:"Adversarial pre-window re-deliveries") in
  let tamper = Arg.(value & opt int 16 & info [ "tamper" ] ~docv:"N" ~doc:"Adversarial bit-flipped frames") in
  let no_kill = Arg.(value & flag & info [ "no-kill" ] ~doc:"Skip the mid-run tracker-NIC kill and failover") in
  let min_goodput =
    Arg.(value & opt float 0.9
         & info [ "min-goodput" ] ~docv:"F"
             ~doc:"Exit 1 if goodput with the failover falls below $(docv) of the failure-free baseline")
  in
  let run seed nics flows pkts window buffer replay reorder tamper no_kill min_goodput metrics domains shards =
    let fail msg =
      prerr_endline msg;
      exit 2
    in
    if nics < 3 then fail "fabric: --nics must be >= 3 (proxy, tracker, failover spare)";
    if flows < 1 then fail "fabric: --flows must be >= 1";
    if pkts < 1 then fail "fabric: --pkts-per-flow must be >= 1";
    if window < 1 || window > 62 then fail "fabric: --window must be in 1..62";
    if buffer < 0 then fail "fabric: --buffer must be >= 0";
    if replay < 0 || reorder < 0 || tamper < 0 then
      fail "fabric: --replay/--reorder/--tamper must be >= 0";
    if min_goodput < 0. || min_goodput > 1. then fail "fabric: --min-goodput must be in [0,1]";
    let config =
      {
        Fleet.Chaos.default_fabric_config with
        Fleet.Chaos.f_seed = Option.value seed ~default:Fleet.Chaos.default_fabric_config.Fleet.Chaos.f_seed;
        f_nics = nics;
        f_flows = flows;
        f_packets_per_flow = pkts;
        f_window = window;
        f_buffer = buffer;
        f_replay = replay;
        f_reorder = reorder;
        f_tamper = tamper;
        f_kill = not no_kill;
      }
    in
    (* The gates the CI fabric-smoke job pins: an authenticated channel
       must bounce every forged/replayed frame, never a benign one, and
       the failover must not cost goodput. *)
    let gate (r : Fleet.Chaos.fabric_report) =
      if r.Fleet.Chaos.f_benign_mac_failures > 0 then begin
        Printf.eprintf "fabric: FAIL %d benign frame(s) tripped the authenticator\n"
          r.Fleet.Chaos.f_benign_mac_failures;
        exit 1
      end;
      if r.Fleet.Chaos.f_replay_rejected <> r.Fleet.Chaos.f_replay_sent then begin
        Printf.eprintf "fabric: FAIL replay rejections %d/%d\n" r.Fleet.Chaos.f_replay_rejected
          r.Fleet.Chaos.f_replay_sent;
        exit 1
      end;
      if r.Fleet.Chaos.f_stale_rejected <> r.Fleet.Chaos.f_stale_sent then begin
        Printf.eprintf "fabric: FAIL stale rejections %d/%d\n" r.Fleet.Chaos.f_stale_rejected
          r.Fleet.Chaos.f_stale_sent;
        exit 1
      end;
      if r.Fleet.Chaos.f_tamper_rejected <> r.Fleet.Chaos.f_tamper_sent then begin
        Printf.eprintf "fabric: FAIL tamper rejections %d/%d\n" r.Fleet.Chaos.f_tamper_rejected
          r.Fleet.Chaos.f_tamper_sent;
        exit 1
      end;
      if not (Fleet.Chaos.fabric_fail_closed r) then begin
        prerr_endline "fabric: FAIL an establishment that had to be refused was accepted";
        exit 1
      end;
      if r.Fleet.Chaos.f_goodput_ratio < min_goodput then begin
        Printf.eprintf "fabric: FAIL goodput ratio %.4f below floor %.4f\n" r.Fleet.Chaos.f_goodput_ratio
          min_goodput;
        exit 1
      end
    in
    let shards = Option.value shards ~default:1 in
    if shards = 1 then begin
      let sink = if metrics = None then Obs.null else Obs.create () in
      let r = Fleet.Chaos.run_fabric_with ~sink ~domains config in
      print_string (Fleet.Chaos.fabric_summary r);
      (match (metrics, Obs.registry sink) with
      | Some path, Some reg -> write_file path (Obs.Metrics.prometheus reg)
      | _ -> ());
      gate r
    end
    else begin
      if metrics <> None then begin
        prerr_endline "fabric: --metrics applies to single-shard runs (drop --shards)";
        exit 2
      end;
      let reports = Fleet.Chaos.run_fabric_many ~domains ~shards config in
      Array.iteri
        (fun i (r : Fleet.Chaos.fabric_report) ->
          Printf.printf "=== shard %d (seed %d) ===\n" i r.Fleet.Chaos.f_config.Fleet.Chaos.f_seed;
          print_string (Fleet.Chaos.fabric_summary r))
        reports;
      Array.iter gate reports
    end
  in
  Cmd.v
    (Cmd.info "fabric"
       ~doc:"Attested NIC-to-NIC fabric: cross-NIC CuckooGuard chain, mid-run failover, adversarial wire replay")
    Term.(
      const run $ seed_arg $ nics $ flows $ pkts $ window $ buffer $ replay $ reorder $ tamper $ no_kill
      $ min_goodput $ metrics_arg $ domains_arg $ shards_arg)

let trace_cmd =
  let scenario =
    Arg.(value & pos 0 (enum [ ("chaos", `Chaos); ("fleet", `Fleet) ]) `Chaos
         & info [] ~docv:"SCENARIO" ~doc:"Scenario to trace: $(b,chaos) or $(b,fleet)")
  in
  let out =
    Arg.(value & opt string "trace.json"
         & info [ "out" ] ~docv:"FILE" ~doc:"Chrome trace_event JSON output path (load it in ui.perfetto.dev)")
  in
  let run seed scenario out metrics =
    let sink = Obs.create () in
    let orch =
      match scenario with
      | `Chaos ->
        let config =
          {
            Fleet.Chaos.default_config with
            Fleet.Chaos.seed = Option.value seed ~default:Fleet.Chaos.default_config.Fleet.Chaos.seed;
          }
        in
        let report, orch = Fleet.Chaos.run_with ~sink config in
        print_string (Fleet.Chaos.summary report);
        orch
      | `Fleet ->
        let config =
          {
            Fleet.Scenario.default_config with
            Fleet.Scenario.seed = Option.value seed ~default:Fleet.Scenario.default_config.Fleet.Scenario.seed;
          }
        in
        let report, orch = Fleet.Scenario.run_with ~sink config in
        print_string (Fleet.Scenario.summary report);
        orch
    in
    write_file out (Obs.Chrome.to_json sink);
    let telemetry = Fleet.Orchestrator.telemetry orch in
    (match metrics with Some path -> write_file path (Fleet.Telemetry.prometheus telemetry) | None -> ());
    (* Self-check: the exported trace must agree with the registry's own
       accounting of itself before anyone loads it in a viewer. *)
    let events = Obs.events sink in
    let begun = ref 0 and ended = ref 0 in
    List.iter
      (fun (e : Obs.event) ->
        match e.Obs.phase with Obs.Span_begin -> incr begun | Obs.Span_end -> incr ended | Obs.Instant -> ())
      events;
    let counter name = List.assoc_opt name (Obs.Metrics.counters (Fleet.Telemetry.registry telemetry)) in
    Printf.printf "trace: %d events (%d spans) -> %s\n" (List.length events) !begun out;
    if !begun <> !ended then begin
      Printf.eprintf "trace self-check FAILED: %d span begins vs %d span ends\n" !begun !ended;
      exit 1
    end;
    if counter "obs_spans_begun_total" <> Some !begun || Obs.span_count sink <> !begun then begin
      Printf.eprintf "trace self-check FAILED: trace span count disagrees with registry counters\n";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a scenario with a recording sink and export a Chrome trace_event JSON (perfetto-loadable)")
    Term.(const run $ seed_arg $ scenario $ out $ metrics_arg)

let () =
  let info = Cmd.info "snic_cli" ~doc:"S-NIC (EuroSys'24) reproduction experiments" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            attacks_cmd; dos_cmd; covert_cmd; probe_cmd; tco_cmd; overhead_cmd; tlb_cmd; pack_cmd; table6_cmd;
            ipc_cmd; dpi_cmd; fig5_cmd; fig8_cmd; timeline_cmd; fleet_cmd; chaos_cmd; datapath_cmd; oracle_cmd;
            vf_cmd; qos_cmd; ddos_cmd; fabric_cmd; trace_cmd;
          ]))
