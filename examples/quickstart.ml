(* Quickstart: boot a simulated S-NIC, launch a firewall network function
   on its own virtual smart NIC, push packets through it, remotely attest
   it, and tear it down.

   Run with: dune exec examples/quickstart.exe *)

let ip = Net.Ipv4_addr.of_string

let () =
  print_endline "== S-NIC quickstart ==";

  (* 1. Boot an S-NIC: machine in Snic mode + manufactured identity. *)
  let api = Snic.Api.boot () in
  Printf.printf "booted: %s, %d programmable cores\n"
    (Nicsim.Machine.mode_name (Nicsim.Machine.mode (Snic.Api.machine api)))
    (Nicsim.Machine.cores (Snic.Api.machine api));

  (* 2. Define a firewall NF: deny TCP/22, allow the rest. *)
  let deny_ssh =
    {
      Nf.Firewall.src_prefix = None;
      dst_prefix = None;
      proto = Some 6;
      src_ports = None;
      dst_ports = Some (22, 22);
      action = Nf.Firewall.Deny;
    }
  in
  let firewall = Nf.Firewall.nf (Nf.Firewall.create ~default:Nf.Firewall.Allow [ deny_ssh ]) in

  (* 3. Launch it: one core, 1 MB of RAM, a catch-all switch rule, one
     DPI accelerator cluster. nf_launch validates, flips page ownership
     (arming the OS denylist), locks the TLBs and measures the image. *)
  let config =
    {
      Snic.Instructions.default_config with
      image = "firewall-image-v1.0";
      rules = [ Nicsim.Pktio.match_any ];
      accels = [ (Nicsim.Accel.Dpi, 1) ];
    }
  in
  let vnic =
    match Snic.Api.nf_create api config with Ok v -> v | Error e -> failwith ("nf_create: " ^ e)
  in
  let handle = Snic.Vnic.handle vnic in
  Printf.printf "launched NF %d on core(s) %s; measurement %s...\n" (Snic.Vnic.id vnic)
    (String.concat "," (List.map string_of_int handle.Snic.Instructions.cores))
    (String.sub (Crypto.Sha256.to_hex handle.Snic.Instructions.measurement) 0 16);

  (* 4. Push traffic through the virtual packet pipeline. *)
  let mk dport =
    Net.Packet.make ~src_ip:(ip "10.0.0.1") ~dst_ip:(ip "93.184.216.34") ~proto:Net.Packet.Tcp ~src_port:40000
      ~dst_port:dport "hello"
  in
  List.iter (fun dport -> ignore (Snic.Api.inject_packet api (mk dport))) [ 80; 22; 443; 22; 8080 ];
  let stats = Snic.Vnic.process vnic firewall ~max:100 in
  Printf.printf "processed %d packets: %d forwarded, %d dropped by policy\n" stats.Snic.Vnic.received
    stats.Snic.Vnic.forwarded stats.Snic.Vnic.dropped;

  (* 5. Remote attestation: a tenant verifies the function is the one it
     uploaded, running on genuine S-NIC hardware, and derives a key. *)
  let rng = Random.State.make [| 2024 |] in
  let attester =
    match Snic.Attestation.attester_of_nf (Snic.Api.instructions api) ~id:(Snic.Vnic.id vnic) with
    | Ok a -> a
    | Error e -> failwith (Snic.Instructions.error_to_string e)
  in
  let nonce = "tenant-challenge-42" in
  let responder, quote = Snic.Attestation.respond rng attester ~nonce in
  (match
     Snic.Attestation.verify rng
       ~vendor_public:(Snic.Identity.vendor_public (Snic.Api.vendor api))
       ~expected_measurement:handle.Snic.Instructions.measurement ~nonce quote
   with
  | Ok verified ->
    let nf_key = Snic.Attestation.responder_key responder ~verifier_share:verified.Snic.Attestation.verifier_share in
    Printf.printf "attestation OK; shared key established (%s)\n"
      (if String.equal nf_key verified.Snic.Attestation.key then "keys agree" else "KEY MISMATCH")
  | Error e -> failwith (Snic.Attestation.verify_error_to_string e));

  (* 6. The NIC OS cannot snoop the function while it runs... *)
  let m = Snic.Api.machine api in
  (match Nicsim.Machine.load_u8 m Nicsim.Machine.Os (Nicsim.Machine.Phys handle.Snic.Instructions.mem_base) with
  | Error f -> Printf.printf "NIC OS snoop attempt: %s\n" (Nicsim.Machine.fault_to_string f)
  | Ok _ -> print_endline "NIC OS snoop attempt: SUCCEEDED (bug!)");

  (* 7. ...and teardown scrubs every byte before releasing the pages. *)
  (match Snic.Api.nf_destroy api ~id:(Snic.Vnic.id vnic) with
  | Ok () -> ()
  | Error e -> failwith (Snic.Api.destroy_error_to_string e));
  let scrubbed =
    Nicsim.Physmem.is_zero (Nicsim.Machine.mem m) ~pos:handle.Snic.Instructions.mem_base
      ~len:handle.Snic.Instructions.mem_len
  in
  Printf.printf "teardown: memory scrubbed = %b, resources released\n" scrubbed;
  print_endline "done."
