(* Chaos demo: boot a rack clean, arm a gray-failure storm (flaky DMA
   engines, hanging accelerators, flapping links, rotting DRAM) on part
   of the fleet, and watch the self-healing control plane keep the
   paper's invariants standing: no unattested function ever runs, every
   teardown scrub verifies, and displaced tenants come back re-attested.

   Run with: dune exec examples/chaos_demo.exe [seed]

   The run is a deterministic function of the seed (default 42): same
   seed, same injection log, same recovery telemetry. *)

let () =
  let seed = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 42 in
  print_endline "== S-NIC gray-failure chaos demo ==";
  let config = { Fleet.Chaos.default_config with Fleet.Chaos.seed } in
  Printf.printf "booting %d NICs / %d tenants, storm on every %d-th NIC, seed %d...\n%!"
    config.Fleet.Chaos.n_nics config.Fleet.Chaos.n_tenants config.Fleet.Chaos.flaky_stride seed;

  let report, orch = Fleet.Chaos.run_with config in
  print_string (Fleet.Chaos.summary report);

  print_endline "\nrack state after the storm:";
  Array.iter
    (fun node ->
      Printf.printf "  nic %2d %-6s %s%s: %d NFs\n" (Fleet.Node.id node)
        (Fleet.Node.shape node).Fleet.Node.label
        (if Fleet.Node.alive node then "alive" else "DEAD ")
        (if Fleet.Node.quarantined node then " [quarantined]" else "")
        (Fleet.Node.nf_count node))
    (Fleet.Orchestrator.nodes orch);

  print_endline "\nfirst lines of the injection log (replayable):";
  let lines = String.split_on_char '\n' report.Fleet.Chaos.injection_log in
  List.iteri (fun i l -> if i < 12 && l <> "" then Printf.printf "  %s\n" l) lines;
  let n = List.length (List.filter (fun l -> l <> "") lines) in
  if n > 12 then Printf.printf "  ... (%d more lines)\n" (n - 12)
