(* Function chaining (§4.8): the same firewall -> monitor -> NAT pipeline
   built both ways the paper discusses.

   1. compiler-enforced isolation: all three functions composed inside ONE
      virtual NIC (cheap, but they share core-local microarchitectural
      state);
   2. cross-VPP chaining: each function in its OWN virtual NIC, packets
      moved between the isolated VPPs by trusted hardware (the extension
      the paper sketches as future work).

   Run with: dune exec examples/chain_demo.exe *)

let ip = Net.Ipv4_addr.of_string

let mk_packet i =
  Net.Packet.make ~src_ip:(ip "10.0.0.9") ~dst_ip:(ip "198.51.100.1") ~proto:Net.Packet.Tcp
    ~src_port:(20_000 + i)
    ~dst_port:(if i mod 5 = 0 then 22 else 443)
    "chain me"

let deny_ssh = { (Nf.Firewall.rule_any Nf.Firewall.Deny) with Nf.Firewall.dst_ports = Some (22, 22) }

let () =
  print_endline "== Variant 1: compiler-enforced chain in one virtual NIC ==";
  let api = Snic.Api.boot () in
  let mon = Nf.Monitor.create () in
  let composed =
    Snic.Chain.compose ~name:"fw|mon|nat"
      [
        Nf.Firewall.nf (Nf.Firewall.create ~default:Nf.Firewall.Allow [ deny_ssh ]);
        Nf.Monitor.nf mon;
        Nf.Nat.nf (Nf.Nat.create ~internal_prefix:(ip "10.0.0.0", 8) ~external_ip:(ip "203.0.113.1") ());
      ]
  in
  let vnic =
    match
      Snic.Api.nf_create api
        { Snic.Instructions.default_config with image = "chain-v1"; rules = [ Nicsim.Pktio.match_any ] }
    with
    | Ok v -> v
    | Error e -> failwith e
  in
  for i = 1 to 20 do
    ignore (Snic.Api.inject_packet api (mk_packet i))
  done;
  let stats = Snic.Vnic.process vnic composed ~max:100 in
  Printf.printf "one vNIC: %d in, %d out, %d dropped by the embedded firewall; monitor saw %d\n"
    stats.Snic.Vnic.received stats.Snic.Vnic.forwarded stats.Snic.Vnic.dropped (Nf.Monitor.packets_seen mon);

  print_endline "";
  print_endline "== Variant 2: cross-VPP chain, one virtual NIC per stage ==";
  let api = Snic.Api.boot () in
  let stage image core rules =
    match Snic.Api.nf_create api { Snic.Instructions.default_config with image; cores = [ core ]; rules } with
    | Ok v -> v
    | Error e -> failwith e
  in
  let v_fw = stage "fw-v1" 0 [ Nicsim.Pktio.match_any ] in
  let v_mon = stage "mon-v1" 1 [] in
  let v_nat = stage "nat-v1" 2 [] in
  let mon2 = Nf.Monitor.create () in
  let chain =
    Snic.Chain.create api
      [
        (v_fw, Nf.Firewall.nf (Nf.Firewall.create ~default:Nf.Firewall.Allow [ deny_ssh ]));
        (v_mon, Nf.Monitor.nf mon2);
        (v_nat, Nf.Nat.nf (Nf.Nat.create ~internal_prefix:(ip "10.0.0.0", 8) ~external_ip:(ip "203.0.113.1") ()));
      ]
  in
  for i = 1 to 20 do
    ignore (Snic.Api.inject_packet api (mk_packet i))
  done;
  List.iter
    (fun (s : Snic.Chain.stage_stats) ->
      Printf.printf "stage %-4s: received %2d, forwarded %2d, dropped %2d\n" s.Snic.Chain.nf s.Snic.Chain.received
        s.Snic.Chain.forwarded s.Snic.Chain.dropped)
    (Snic.Chain.pump chain ~max:100);
  let out = Snic.Api.transmitted api in
  Printf.printf "%d frames on the wire, all NAT-rewritten: %b\n" (List.length out)
    (List.for_all (fun (p : Net.Packet.t) -> Net.Ipv4_addr.to_string p.src_ip = "203.0.113.1") out);
  (* Each stage keeps hardware-enforced isolation from the others. *)
  let h = Snic.Vnic.handle v_nat in
  (match Snic.Vnic.read_phys v_fw ~paddr:h.Snic.Instructions.mem_base ~len:1 with
  | Error f -> Printf.printf "stage isolation intact: %s\n" (Nicsim.Machine.fault_to_string f)
  | Ok _ -> print_endline "stage isolation BROKEN");
  print_endline "done."
