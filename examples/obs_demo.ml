(* obs_demo: record a Chrome trace and a Prometheus dump of one chaos
   scenario, printing where each artifact went and a counter digest.

     dune exec examples/obs_demo.exe

   Load the trace at https://ui.perfetto.dev (open trace file): one
   process lane per NIC, one thread lane per serially-executing device
   unit (bus client, DMA bank, accelerator thread, core TLB). *)

let () =
  let sink = Obs.create () in
  let config = { Fleet.Chaos.default_config with Fleet.Chaos.rounds = 4; packets_per_round = 200 } in
  let report, orch = Fleet.Chaos.run_with ~sink config in
  print_string (Fleet.Chaos.summary report);
  let trace = "obs_demo_trace.json" in
  let prom = "obs_demo_metrics.prom" in
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  write trace (Obs.Chrome.to_json sink);
  write prom (Fleet.Telemetry.prometheus (Fleet.Orchestrator.telemetry orch));
  Printf.printf "\nwrote %s (%d events, %d spans) and %s\n" trace
    (List.length (Obs.events sink))
    (Obs.span_count sink) prom;
  print_endline "device counters for the run:";
  List.iter
    (fun (name, v) ->
      if v > 0 && String.length name > 5 && String.sub name 0 5 = "snic_" then Printf.printf "  %-28s %d\n" name v)
    (Obs.Metrics.counters (Fleet.Telemetry.registry (Fleet.Orchestrator.telemetry orch)))
