(* The six evaluation network functions of §5.1, each run over the same
   synthetic ICTF-like trace (Zipf 1.1 over 100k flows), with the
   statistics the paper's evaluation cares about.

   Run with: dune exec examples/nf_gallery.exe *)

let ip = Net.Ipv4_addr.of_string
let packets = 5_000

let trace () = Trace.Tracegen.ictf_like ~n_flows:20_000 ~seed:0xE5 ~packets ()

let run_counts nf =
  let fwd = ref 0 and drop = ref 0 in
  Seq.iter
    (fun p -> match nf.Nf.Types.process p with Nf.Types.Forward _ -> incr fwd | Nf.Types.Drop _ -> incr drop)
    (Trace.Tracegen.packets (trace ()));
  (!fwd, !drop)

let () =
  Printf.printf "replaying %d packets (Zipf 1.1, 20k flows) through each NF\n\n" packets;

  (* Firewall: the paper's 643 Emerging-Threats-like rules. *)
  let rng = Trace.Rng.create ~seed:0xF1 in
  let fw = Nf.Firewall.create ~default:Nf.Firewall.Allow (Nf.Rulegen.firewall_rules rng ~n:643) in
  let fwd, drop = run_counts (Nf.Firewall.nf fw) in
  Printf.printf "FW   %d rules: %d allowed, %d denied, %d flows cached (cap %d)\n" (Nf.Firewall.rule_count fw) fwd
    drop (Nf.Firewall.cached_flows fw) (Nf.Firewall.cache_capacity fw);

  (* DPI: a scaled Snort-like pattern set over an Aho-Corasick automaton. *)
  let rng = Trace.Rng.create ~seed:0xD1 in
  let dpi = Nf.Dpi.create (Nf.Rulegen.dpi_patterns rng ~n:3000) in
  let _, drop = run_counts (Nf.Dpi.nf dpi) in
  let ac = Nf.Dpi.automaton dpi in
  Printf.printf "DPI  %d patterns, %d automaton states, %d transitions: %d packets flagged\n"
    (Nf.Aho_corasick.pattern_count ac) (Nf.Aho_corasick.state_count ac) (Nf.Aho_corasick.transition_count ac) drop;

  (* NAT: MazuNAT-style translation of the 10/8 tenant prefix. *)
  let nat = Nf.Nat.create ~internal_prefix:(ip "10.0.0.0", 8) ~external_ip:(ip "203.0.113.1") () in
  let fwd, drop = run_counts (Nf.Nat.nf nat) in
  Printf.printf "NAT  %d translated, %d unroutable, %d mappings live, %d ports left\n" fwd drop
    (Nf.Nat.active_mappings nat) (Nf.Nat.free_ports nat);

  (* LB: Maglev over 16 backends; show balance and consistency. *)
  let lb = Nf.Maglev.create (Nf.Rulegen.backends ~n:16) in
  let loads = Nf.Maglev.load lb in
  let mn = List.fold_left (fun a (_, c) -> min a c) max_int loads in
  let mx = List.fold_left (fun a (_, c) -> max a c) 0 loads in
  let lb7 = Nf.Maglev.remove lb "backend-007" in
  Printf.printf "LB   table %d, slot balance %.4f (min/max), disruption removing 1/16: %.2f%%\n"
    (Nf.Maglev.table_size lb)
    (float_of_int mn /. float_of_int mx)
    (100. *. Nf.Maglev.disruption lb lb7);

  (* LPM: DIR-24-8 with the paper's 16,000 random routes. *)
  let rng = Trace.Rng.create ~seed:0x17 in
  let lpm = Nf.Lpm.create () in
  List.iter (fun (p, l, nh) -> Nf.Lpm.insert lpm ~prefix:p ~len:l nh) (Nf.Rulegen.routes rng ~n:16_000);
  let fwd, drop = run_counts (Nf.Lpm.nf lpm) in
  Printf.printf "LPM  %d routes, %d tbl8 blocks, %.1f MB tables: %d routed, %d unroutable\n"
    (Nf.Lpm.route_count lpm) (Nf.Lpm.tbl8_blocks lpm)
    (float_of_int (Nf.Lpm.table_bytes lpm) /. 1048576.)
    fwd drop;

  (* WAN optimizer pair (the intro's motivating complex NF): compress on
     the near end of the link, restore on the far end. *)
  let comp = Nf.Wan_opt.create ~mode:Nf.Wan_opt.Compress () in
  let decomp = Nf.Wan_opt.create ~mode:Nf.Wan_opt.Decompress () in
  let pair = Snic.Chain.compose ~name:"wan" [ Nf.Wan_opt.nf comp; Nf.Wan_opt.nf decomp ] in
  let intact = ref 0 in
  Seq.iter
    (fun p ->
      match pair.Nf.Types.process p with
      | Nf.Types.Forward out when String.equal out.Net.Packet.payload p.Net.Packet.payload -> incr intact
      | _ -> ())
    (Trace.Tracegen.packets (trace ()));
  Printf.printf "WAN  compressed link carried %.1f%% fewer bytes; %d/%d payloads restored intact (%d passthrough)\n"
    (100. *. Nf.Wan_opt.savings comp) !intact packets (Nf.Wan_opt.passthrough comp);

  (* Count-min sketch: the Monitor's bounded-memory cousin. *)
  let cm = Nf.Count_min.create ~width:8192 ~depth:4 in
  let exact = Nf.Monitor.create () in
  Seq.iter
    (fun p ->
      Nf.Count_min.observe cm (Net.Packet.flow p);
      Nf.Monitor.observe exact p)
    (Trace.Tracegen.packets (trace ()));
  let worst_err =
    List.fold_left
      (fun acc (f, n) -> max acc (Nf.Count_min.estimate cm f - n))
      0 (Nf.Monitor.top exact 50)
  in
  Printf.printf "CM   count-min in %d KB fixed memory: worst over-estimate on the top-50 flows = %d packets\n"
    (Nf.Count_min.memory_bytes cm / 1024)
    worst_err;

  (* Monitor: per-flow packet counters; show the Zipf head. *)
  let mon = Nf.Monitor.create () in
  let _ = run_counts (Nf.Monitor.nf mon) in
  Printf.printf "Mon  %d flows observed over %d packets; top flows:\n" (Nf.Monitor.flow_count mon)
    (Nf.Monitor.packets_seen mon);
  List.iter
    (fun (flow, count) -> Printf.printf "       %6d pkts  %s\n" count (Net.Five_tuple.to_string flow))
    (Nf.Monitor.top mon 3)
