(* The three concrete attacks of the paper's §3.3, run against every
   commodity smart-NIC architecture the paper surveys and against S-NIC.

   Run with: dune exec examples/attack_demo.exe *)

let () =
  print_endline "== §3.3 concrete attacks, across NIC architectures ==";
  print_endline "";
  Printf.printf "%-26s | %-18s | %-18s\n" "NIC" "packet corruption" "DPI ruleset theft";
  print_endline (String.make 70 '-');
  List.iter
    (fun (name, corr, steal) ->
      let show (o : Attacks.outcome) = if o.Attacks.succeeded then "ATTACK SUCCEEDS" else "blocked" in
      Printf.printf "%-26s | %-18s | %-18s\n" name (show corr) (show steal))
    (Attacks.matrix ());
  print_endline "";

  print_endline "details (LiquidIO SE-S, the mode the paper attacked):";
  Format.printf "  %a@." Attacks.pp_outcome (Attacks.packet_corruption Nicsim.Machine.Liquidio_se_s);
  Format.printf "  %a@." Attacks.pp_outcome (Attacks.ruleset_stealing Nicsim.Machine.Liquidio_se_s);
  print_endline "";
  print_endline "details (S-NIC):";
  Format.printf "  %a@." Attacks.pp_outcome (Attacks.packet_corruption Nicsim.Machine.Snic);
  Format.printf "  %a@." Attacks.pp_outcome (Attacks.ruleset_stealing Nicsim.Machine.Snic);
  print_endline "";

  print_endline "== IO bus denial of service (the Agilio test_subsat crash) ==";
  let show (r : Attacks.dos_result) name =
    Printf.printf "  %-22s victim alone %8.0f kpps | under attack %8.0f kpps | retains %5.1f%%\n" name
      (r.Attacks.alone_pps /. 1e3) (r.Attacks.under_attack_pps /. 1e3) (100. *. r.Attacks.retained)
  in
  show (Attacks.bus_dos Nicsim.Bus.Free_for_all) "free-for-all bus:";
  show (Attacks.bus_dos (Nicsim.Bus.Temporal { epoch = 96; dead = 16 })) "temporal partitioning:";
  print_endline "";
  print_endline "== Timing side channels ==";
  let cc n p =
    let r = Attacks.bus_covert_channel p in
    Printf.printf "  covert channel over the bus (%s): %d/%d bits decoded\n" n r.Attacks.decoded r.Attacks.bits
  in
  cc "free-for-all" Nicsim.Bus.Free_for_all;
  cc "temporal" (Nicsim.Bus.Temporal { epoch = 96; dead = 16 });
  print_endline "";
  print_endline "== Why host enclaves are not enough (SafeBricks vs S-NIC) ==";
  Format.printf "  %a@." Attacks.Safebricks.pp_outcome (Attacks.Safebricks.safebricks_deployment ());
  Format.printf "  %a@." Attacks.Safebricks.pp_outcome (Attacks.Safebricks.snic_deployment ());
  print_endline "";
  print_endline "S-NIC blocks all three attacks; commodity NICs do not."
