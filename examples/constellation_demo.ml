(* Figure 4 of the paper: constellations of trusted computations.

   (a) Two enterprises outsource intrusion detection for a cross-site
       flow to a DPI function on a cloud S-NIC; an attested, encrypted
       tunnel hides everything from the cloud operator.
   (b) A tenant stitches NFs on two S-NICs and a host enclave into a
       mutually attested mesh.

   Run with: dune exec examples/constellation_demo.exe *)

let rng = Random.State.make [| 404 |]

let use_case_a () =
  print_endline "== Use case (a): trusted TLS-middlebox detour ==";
  let api = Snic.Api.boot () in
  let nic_vendor = Snic.Api.vendor api in
  let cpu_vendor = Snic.Identity.make_vendor ~seed:0xCAFE ~name:"CPU Vendor" () in

  (* The cloud runs a DPI function for the two enterprises. *)
  let dpi_nf =
    match
      Snic.Api.nf_create api
        { Snic.Instructions.default_config with image = "ids-dpi-v3"; rules = [ Nicsim.Pktio.match_any ] }
    with
    | Ok v -> v
    | Error e -> failwith e
  in
  let dpi_ep = Snic.Constellation.of_nf api dpi_nf in

  (* Each enterprise gateway runs in a trusted environment of its own. *)
  let gw_client = Snic.Constellation.enclave ~seed:1 ~vendor:cpu_vendor ~name:"client-gateway" ~code:"gw-v7" () in
  let gw_dest = Snic.Constellation.enclave ~seed:2 ~vendor:cpu_vendor ~name:"dest-gateway" ~code:"gw-v7" () in

  let vendors = [ nic_vendor; cpu_vendor ] in
  (* The gateways pin the DPI function's exact measurement: a cloud that
     staged different code is detected before any payload flows. *)
  let expected = Snic.Constellation.measurement dpi_ep in
  let ch_in =
    match Snic.Constellation.connect rng ~trusted_vendors:vendors ~expected_b:expected gw_client dpi_ep with
    | Ok ch -> ch
    | Error e -> failwith (Snic.Constellation.error_to_string e)
  in
  let ch_out =
    match Snic.Constellation.connect rng ~trusted_vendors:vendors ~expected_a:expected dpi_ep gw_dest with
    | Ok ch -> ch
    | Error e -> failwith (Snic.Constellation.error_to_string e)
  in
  print_endline "both gateways attested the DPI function (and vice versa); tunnels up";

  (* A secret document crosses the cloud: encrypted on both hops, the
     DPI function inspects the plaintext in its isolated virtual NIC. *)
  let secret = "ACME merger term sheet: offer $1.21B" in
  let hop1 = Snic.Constellation.send ch_in ~from:0 secret in
  let inspected =
    match Snic.Constellation.recv ch_in ~at:1 hop1 with
    | Ok plaintext ->
      let dpi = Nf.Dpi.create [ "exploit"; "malware-sig" ] in
      let pkt =
        Net.Packet.make ~src_ip:(Net.Ipv4_addr.of_string "10.1.0.1") ~dst_ip:(Net.Ipv4_addr.of_string "10.2.0.1")
          ~proto:Net.Packet.Tcp ~src_port:443 ~dst_port:443 plaintext
      in
      Printf.printf "DPI inspected the flow inside the enclave-NIC: %d suspicious hits\n" (Nf.Dpi.inspect dpi pkt);
      plaintext
    | Error e -> failwith e
  in
  let hop2 = Snic.Constellation.send ch_out ~from:0 inspected in
  (match Snic.Constellation.recv ch_out ~at:1 hop2 with
  | Ok got -> Printf.printf "destination received intact: %b\n" (String.equal got secret)
  | Error e -> failwith e);

  (* What the cloud operator sees on the wire is ciphertext. *)
  let leaked =
    let contains hay needle =
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    contains hop1 "merger" || contains hop2 "merger"
  in
  Printf.printf "cloud operator sees plaintext on the wire: %b\n\n" leaked

let use_case_b () =
  print_endline "== Use case (b): three-party constellation ==";
  let nic_vendor = Snic.Identity.make_vendor ~seed:77 ~name:"NIC Vendor" () in
  let cpu_vendor = Snic.Identity.make_vendor ~seed:78 ~name:"CPU Vendor" () in
  let nic1 = Snic.Api.boot ~vendor:nic_vendor ~serial:"nic-1" () in
  let nic2 = Snic.Api.boot ~vendor:nic_vendor ~serial:"nic-2" () in
  let mk api name image =
    match Snic.Api.nf_create api { Snic.Instructions.default_config with image } with
    | Ok v -> Snic.Constellation.of_nf ~name api v
    | Error e -> failwith e
  in
  let cache_nf = mk nic1 "kv-cache@nic-1" "kv-cache-nf" in
  let order_nf = mk nic2 "tx-ordering@nic-2" "tx-ordering-nf" in
  let storage = Snic.Constellation.enclave ~seed:3 ~vendor:cpu_vendor ~name:"storage-enclave" ~code:"store-v1" () in
  let vendors = [ nic_vendor; cpu_vendor ] in
  let pairs = [ (cache_nf, order_nf); (order_nf, storage); (cache_nf, storage) ] in
  let channels =
    List.map
      (fun (a, b) ->
        match Snic.Constellation.connect rng ~trusted_vendors:vendors a b with
        | Ok ch ->
          Printf.printf "attested pair: %s <-> %s\n" (Snic.Constellation.name a) (Snic.Constellation.name b);
          ch
        | Error e -> failwith (Snic.Constellation.error_to_string e))
      pairs
  in
  (* Route a write through the mesh: cache -> ordering -> storage. *)
  (match channels with
  | [ ch_co; ch_os; _ ] ->
    let msg = Snic.Constellation.send ch_co ~from:0 "PUT k=v seq=?" in
    let ordered =
      match Snic.Constellation.recv ch_co ~at:1 msg with
      | Ok m -> m ^ " seq=1042"
      | Error e -> failwith e
    in
    let msg2 = Snic.Constellation.send ch_os ~from:0 ordered in
    (match Snic.Constellation.recv ch_os ~at:1 msg2 with
    | Ok m -> Printf.printf "storage committed: %s\n" m
    | Error e -> failwith e)
  | _ -> assert false);
  print_endline "constellation operational: every hop attested and encrypted."

let () =
  use_case_a ();
  use_case_b ()
