(* Fleet demo: boot a 16-NIC heterogeneous rack, place 64 tenant NFs on
   it with attested launches, replay a flow-hashed traffic trace, kill
   NICs and NFs mid-run, and watch the orchestrator re-place and
   re-attest the displaced tenants.

   Run with: dune exec examples/fleet_demo.exe [seed]

   The run is a deterministic function of the seed (default 42): same
   seed, same placements, same failures, same telemetry. *)

let () =
  let seed = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 42 in
  print_endline "== S-NIC fleet orchestration demo ==";
  Printf.printf "booting %d NICs, placing %d tenants (policy: %s), seed %d...\n%!"
    Fleet.Scenario.default_config.Fleet.Scenario.n_nics Fleet.Scenario.default_config.Fleet.Scenario.n_tenants
    (Fleet.Policy.name Fleet.Scenario.default_config.Fleet.Scenario.policy)
    seed;

  let config = { Fleet.Scenario.default_config with Fleet.Scenario.seed } in
  let report, orch = Fleet.Scenario.run_with config in
  print_string (Fleet.Scenario.summary report);

  (* The rack, NIC by NIC. *)
  print_endline "\nrack state after the run:";
  Array.iter
    (fun node ->
      let shape = Fleet.Node.shape node in
      Printf.printf "  nic %2d %-6s %s: %d NFs, %d free cores, %d KB RAM headroom\n" (Fleet.Node.id node)
        shape.Fleet.Node.label
        (if Fleet.Node.alive node then "alive" else "DEAD ")
        (Fleet.Node.nf_count node) (Fleet.Node.free_cores node)
        (Fleet.Node.mem_headroom node / 1024))
    (Fleet.Orchestrator.nodes orch);

  (* Where every tenant kind ended up. *)
  print_endline "\ntenant placements by NF kind:";
  List.iter
    (fun kind ->
      let homes =
        Array.to_list (Fleet.Orchestrator.tenants orch)
        |> List.filter_map (fun tn ->
               if tn.Fleet.Orchestrator.demand.Fleet.Workload.kind = kind then
                 match tn.Fleet.Orchestrator.placement with
                 | Some p -> Some (string_of_int (Fleet.Node.id p.Fleet.Orchestrator.node))
                 | None -> Some "-"
               else None)
      in
      Printf.printf "  %-4s -> nics [%s]\n" (Fleet.Workload.kind_name kind) (String.concat " " homes))
    Fleet.Workload.all_kinds;

  let telemetry = Fleet.Orchestrator.telemetry orch in
  Printf.printf "\nattestations: %d handshakes, %.1f ms modeled attest latency\n"
    (Fleet.Telemetry.total_attests telemetry)
    (Fleet.Telemetry.attest_ms_total telemetry);

  print_endline "\nper-NIC telemetry (CSV):";
  print_string (Fleet.Telemetry.nics_csv telemetry);

  if report.Fleet.Scenario.unattested_running = 0 && report.Fleet.Scenario.scrub_failures = 0 then
    print_endline "\nOK: every running NF is attested; every verified teardown scrubbed its RAM."
  else begin
    Printf.printf "\nINVARIANT VIOLATION: unattested-running=%d scrub-failures=%d\n"
      report.Fleet.Scenario.unattested_running report.Fleet.Scenario.scrub_failures;
    exit 1
  end
