(* Virtualized accelerators (§4.3): a "storage offload" function that owns
   a ZIP cluster and a RAID cluster on its virtual NIC, compresses payload
   data, stripes it with P+Q parity, survives a two-disk failure, and
   decompresses intact — while a second tenant that reserved nothing gets
   cleanly refused.

   Run with: dune exec examples/accel_demo.exe *)

let () =
  print_endline "== virtualized ZIP + RAID accelerators ==";
  let api = Snic.Api.boot () in
  let storage_nf =
    match
      Snic.Api.nf_create api
        {
          Snic.Instructions.default_config with
          image = "storage-offload-v2";
          accels = [ (Nicsim.Accel.Zip, 1); (Nicsim.Accel.Raid, 1) ];
        }
    with
    | Ok v -> v
    | Error e -> failwith e
  in
  let other_nf =
    match Snic.Api.nf_create api { Snic.Instructions.default_config with image = "plain-nf" } with
    | Ok v -> v
    | Error e -> failwith e
  in

  (* A compressible "database page". *)
  let page = String.concat "" (List.init 300 (fun i -> Printf.sprintf "row-%04d|name=alice|balance=100;" i)) in
  Printf.printf "original page: %d bytes\n" (String.length page);

  (* 1. Compress on the owned ZIP cluster. *)
  let compressed, t1 =
    match Snic.Vnic.zip_compress storage_nf ~now:0 page with Ok r -> r | Error e -> failwith e
  in
  Printf.printf "ZIP cluster: %d bytes (%.1f%%), done at cycle %d\n" (String.length compressed)
    (100. *. float_of_int (String.length compressed) /. float_of_int (String.length page))
    t1;

  (* 2. Stripe across 4 "disks" with P+Q parity on the RAID cluster. *)
  let k = 4 in
  let blk = (String.length compressed + k - 1) / k in
  let blocks =
    Array.init k (fun i ->
        let start = i * blk in
        let len = min blk (max 0 (String.length compressed - start)) in
        String.sub compressed start len ^ String.make (blk - len) '\000')
  in
  let stripe, t2 =
    match Snic.Vnic.raid_encode storage_nf ~now:t1 blocks with Ok r -> r | Error e -> failwith e
  in
  Printf.printf "RAID cluster: %d data blocks + P + Q, done at cycle %d\n" k t2;

  (* 3. Two disks die. *)
  let survivors = Array.mapi (fun i b -> if i = 0 || i = 2 then None else Some b) stripe.Accelfn.Raid.data in
  print_endline "disks 0 and 2 failed!";
  (match
     Accelfn.Raid.recover ~data:survivors ~p:(Some stripe.Accelfn.Raid.p) ~q:(Some stripe.Accelfn.Raid.q)
   with
  | Error e -> failwith e
  | Ok rebuilt ->
    let rejoined = String.sub (String.concat "" (Array.to_list rebuilt)) 0 (String.length compressed) in
    let restored, _ =
      match Snic.Vnic.zip_decompress storage_nf ~now:t2 rejoined with Ok r -> r | Error e -> failwith e
    in
    Printf.printf "recovered + decompressed: %d bytes, intact = %b\n" (String.length restored)
      (String.equal restored page));

  (* 4. Isolation: the tenant that reserved no clusters is refused. *)
  (match Snic.Vnic.zip_compress other_nf ~now:0 "hello" with
  | Error e -> Printf.printf "tenant without a ZIP reservation: refused (%s)\n" e
  | Ok _ -> print_endline "tenant without a reservation used the accelerator (BUG)");
  print_endline "done."
