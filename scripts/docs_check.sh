#!/bin/sh
# docs-check: fail on broken relative links and dangling #anchors in the
# root markdown docs, and on odoc warnings for the documented interfaces.
#
# Run from anywhere: cd's to the repo root. odoc is optional locally
# (the docs-check CI job installs it); without it the link check still
# runs and the odoc lint is skipped with a notice.

set -eu
cd "$(dirname "$0")/.."

# GitHub anchor slug for every heading of $1: lowercase, punctuation
# stripped (backticks included), spaces to hyphens.  GitHub's "-1"
# suffixing of duplicate headings is not modelled; none of our docs
# repeat a heading.
slugs() {
  grep -E '^#{1,6}[[:space:]]' "$1" 2>/dev/null \
    | sed -E 's/^#{1,6}[[:space:]]+//; s/[[:space:]]+$//' \
    | tr '[:upper:]' '[:lower:]' \
    | sed -E 's/[^a-z0-9 _-]//g; s/ /-/g' || true
}

# check_links DIR: every relative markdown link in DIR/*.md must
# resolve, and every #anchor — same-file or cross-file — must name a
# real heading in its target.  Prints each failure; exits non-zero if
# any.  SNIPPETS.md quotes exemplar code from external repositories
# verbatim, links included; it is reference material, not repo docs.
check_links() {
  dir=$1
  failed=0
  for md in "$dir"/*.md; do
    [ "$(basename "$md")" = "SNIPPETS.md" ] && continue
    links=$(grep -oE '\]\([^) ]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//' || true)
    for target in $links; do
      case "$target" in
        http://* | https://* | mailto:*) continue ;;
      esac
      path=${target%%#*}
      if [ -n "$path" ] && [ ! -e "$dir/$path" ]; then
        echo "broken link in $md: $target"
        failed=1
        continue
      fi
      case "$target" in
        *'#'*)
          anchor=${target#*#}
          if [ -n "$path" ]; then file="$dir/$path"; else file=$md; fi
          case "$file" in
            *.md)
              if ! slugs "$file" | grep -qx "$anchor"; then
                echo "dangling anchor in $md: $target"
                failed=1
              fi ;;
          esac ;;
      esac
    done
  done
  return "$failed"
}

# --- 0. checker self-test -------------------------------------------------
# The checker itself regressed once (anchors were stripped before the
# existence test, so README -> FILE.md#section links passed with a bogus
# section). Pin the behavior: a clean fixture passes, and a broken link,
# a same-file dangling anchor and a cross-file dangling anchor each fail.
selftest=$(mktemp -d)
cat > "$selftest/GOOD.md" <<'EOF'
# Title
## Real heading
[same-file](#real-heading) and [cross-file](OTHER.md#other-section).
EOF
cat > "$selftest/OTHER.md" <<'EOF'
## Other section
EOF
if ! out=$(check_links "$selftest"); then
  echo "docs_check self-test FAIL: clean fixture rejected:"
  printf '%s\n' "$out"
  exit 1
fi
cat > "$selftest/BAD.md" <<'EOF'
[broken](missing.md) [dangle](#no-such-heading) [xdangle](OTHER.md#nope)
EOF
if out=$(check_links "$selftest"); then
  echo "docs_check self-test FAIL: broken fixture passed"
  exit 1
fi
for want in "missing.md" "#no-such-heading" "OTHER.md#nope"; do
  printf '%s\n' "$out" | grep -qF "$want" \
    || { echo "docs_check self-test FAIL: '$want' not reported"; exit 1; }
done
rm -rf "$selftest"
echo "docs_check self-test: OK"

# --- 1. repo docs ---------------------------------------------------------
bad=0
check_links . || bad=1
[ "$bad" -eq 0 ] && echo "markdown links + anchors: OK"

# --- 2. odoc must be warning-free on the swept interfaces ----------------
# The doc sweep covers lib/nicsim, lib/fleet, lib/obs and lib/par;
# warnings there are fatal (elsewhere they are reported but tolerated
# for now).
if command -v odoc >/dev/null 2>&1; then
  out=$(dune build @doc 2>&1) || {
    echo "$out"
    echo "dune build @doc failed"
    exit 1
  }
  if printf '%s\n' "$out" | grep -qi "warning"; then
    printf '%s\n' "$out"
    if printf '%s\n' "$out" | grep -B 3 -i "warning" | grep -qE 'lib/(nicsim|fleet|obs|par)/'; then
      echo "odoc warnings in swept interfaces (lib/nicsim, lib/fleet, lib/obs, lib/par)"
      bad=1
    else
      echo "odoc warnings outside the swept interfaces (tolerated)"
    fi
  else
    echo "odoc: OK"
  fi
else
  echo "odoc not installed; skipping odoc lint (CI runs it)"
fi

exit "$bad"
