#!/bin/sh
# docs-check: fail on broken relative links in the root markdown docs,
# and on odoc warnings for the documented interfaces.
#
# Run from anywhere: cd's to the repo root. odoc is optional locally
# (the docs-check CI job installs it); without it the link check still
# runs and the odoc lint is skipped with a notice.

set -eu
cd "$(dirname "$0")/.."

bad=0

# --- 1. every relative markdown link must resolve ------------------------
# SNIPPETS.md quotes exemplar code from external repositories verbatim,
# links included; it is reference material, not repo documentation.
for md in *.md; do
  [ "$md" = "SNIPPETS.md" ] && continue
  links=$(grep -oE '\]\([^) ]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//' || true)
  for target in $links; do
    case "$target" in
      http://* | https://* | mailto:* | \#*) continue ;;
    esac
    path=${target%%#*}
    [ -z "$path" ] && continue
    if [ ! -e "$path" ]; then
      echo "broken link in $md: $target"
      bad=1
    fi
  done
done
[ "$bad" -eq 0 ] && echo "markdown links: OK"

# --- 2. odoc must be warning-free on the swept interfaces ----------------
# The doc sweep covers lib/nicsim, lib/fleet and lib/obs; warnings there
# are fatal (elsewhere they are reported but tolerated for now).
if command -v odoc >/dev/null 2>&1; then
  out=$(dune build @doc 2>&1) || {
    echo "$out"
    echo "dune build @doc failed"
    exit 1
  }
  if printf '%s\n' "$out" | grep -qi "warning"; then
    printf '%s\n' "$out"
    if printf '%s\n' "$out" | grep -B 3 -i "warning" | grep -qE 'lib/(nicsim|fleet|obs)/'; then
      echo "odoc warnings in swept interfaces (lib/nicsim, lib/fleet, lib/obs)"
      bad=1
    else
      echo "odoc warnings outside the swept interfaces (tolerated)"
    fi
  else
    echo "odoc: OK"
  fi
else
  echo "odoc not installed; skipping odoc lint (CI runs it)"
fi

exit "$bad"
