(* Regenerates every table and figure of the S-NIC paper's evaluation
   (§5 + appendices) from this repository's models and simulators, then
   runs Bechamel microbenchmarks of the substrate.

   Run with: dune exec bench/main.exe
   Pass --fast to shrink the Figure 5 sweeps (CI-sized). *)

let fast = Array.exists (String.equal "--fast") Sys.argv

(* --json FILE: dump every scalar metric the sections register to FILE
   as a flat JSON object, so trend tooling can track runs over time. *)
let path_after flag =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if String.equal Sys.argv.(i) flag then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let json_path = path_after "--json"

(* --only SECTION: run a single named section (today: "datapath") — the
   CI bench-smoke job uses this to gate regressions without paying for
   the full evaluation sweep. *)
let only = path_after "--only"

(* --seed N: seed for the datapath section's payloads, so its checksum
   and count metrics are reproducible (CI pins --seed 42). *)
let seed = match path_after "--seed" with Some s -> int_of_string s | None -> 42

(* --metrics FILE: dump the seed-42 chaos run's shared Obs registry
   (device counters + fleet counters + latency histograms) as Prometheus
   text — the same registry `snic_cli trace --metrics` exports. *)
let metrics_path = path_after "--metrics"

(* --domains N: cap the par section's scaling curve (default 8, the full
   1->2->4->8 sweep the committed baseline carries — a capped run will
   miss baseline keys under --check, so CI always runs uncapped). *)
let max_domains =
  match path_after "--domains" with
  | None -> 8
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | _ ->
      Printf.eprintf "bench: --domains expects a positive integer, got %s\n" s;
      Printf.eprintf
        "Usage: bench [--fast] [--only SECTION] [--domains N] [--seed N] [--json PATH] [--check BASELINE]\n";
      exit 124)

let metrics : (string * float) list ref = ref []
let metric name value = metrics := (name, value) :: !metrics

let write_metrics () =
  match json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc "{\n%s\n}\n"
      (String.concat ",\n" (List.map (fun (k, v) -> Printf.sprintf "  %S: %.6f" k v) (List.rev !metrics)));
    close_out oc;
    Printf.printf "wrote %d metrics to %s\n" (List.length !metrics) path

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subheader title = Printf.printf "\n-- %s --\n" title

(* ------------------------------------------------------------------ *)
(* Table 1: management API vs trusted instructions                     *)
(* ------------------------------------------------------------------ *)

let table1 () =
  header "Table 1: management APIs and trusted instructions";
  Printf.printf "%-34s %-52s\n" "Management API (NIC OS)" "Trusted instruction (hardware)";
  Printf.printf "%-34s %-52s\n" "NF_create(net,core,dpi,...)" "nf_launch: core_mask, page_table, vpp_config, accel_mask";
  Printf.printf "%-34s %-52s\n" "(n/a)" "nf_attest: sign H(initial state) + DH parameters";
  Printf.printf "%-34s %-52s\n" "NF_destroy(nf_id)" "nf_teardown: scrub + release all resources";
  print_endline "(exercised end-to-end by examples/quickstart.exe and the snic test suite)"

(* ------------------------------------------------------------------ *)
(* Tables 2-4: TLB silicon costs                                       *)
(* ------------------------------------------------------------------ *)

let table2 () =
  header "Table 2: TLB hardware cost on programmable cores (McPAT-anchored model)";
  let rows = Costmodel.Tables.table2 () in
  Printf.printf "%-28s %10s %10s %10s %10s\n" "per-core memory (entries)" "4-core" "8-core" "16-core" "48-core";
  List.iter
    (fun (label, entries) ->
      let get units field = field (Costmodel.Tables.find rows ~label ~units) in
      Printf.printf "%s (%d entries)\n" label entries;
      Printf.printf "%-28s %10.3f %10.3f %10.3f %10.3f\n" "  area (mm^2)"
        (get 4 (fun r -> r.Costmodel.Tables.area_mm2))
        (get 8 (fun r -> r.Costmodel.Tables.area_mm2))
        (get 16 (fun r -> r.Costmodel.Tables.area_mm2))
        (get 48 (fun r -> r.Costmodel.Tables.area_mm2));
      Printf.printf "%-28s %10.3f %10.3f %10.3f %10.3f\n" "  power (W)"
        (get 4 (fun r -> r.Costmodel.Tables.power_w))
        (get 8 (fun r -> r.Costmodel.Tables.power_w))
        (get 16 (fun r -> r.Costmodel.Tables.power_w))
        (get 48 (fun r -> r.Costmodel.Tables.power_w)))
    [ ("366MB/core", 183); ("512MB/core", 256); ("1024MB/core", 512) ];
  Printf.printf "paper: 4-core area 0.045 / 0.060 / 0.163 mm^2; power 0.026 / 0.035 / 0.088 W\n"

let table3 () =
  header "Table 3: TLB banks on virtualized accelerators";
  Printf.printf "%-26s %10s %10s %10s\n" "" "DPI(54e)" "ZIP(70e)" "RAID(5e)";
  List.iter
    (fun clusters ->
      let row f = List.map (fun e -> float_of_int clusters *. f e) [ 54; 70; 5 ] in
      (match row Costmodel.Tlb_cost.area_mm2 with
      | [ d; z; r ] ->
        Printf.printf "%-26s %10.3f %10.3f %10.3f\n" (Printf.sprintf "%d clusters, area mm^2" clusters) d z r
      | _ -> ());
      match row Costmodel.Tlb_cost.power_w with
      | [ d; z; r ] -> Printf.printf "%-26s %10.3f %10.3f %10.3f\n" "            power W" d z r
      | _ -> ())
    [ 16; 8; 4 ];
  Printf.printf "paper (16 clusters): area 0.074 / 0.091 / 0.050 mm^2\n"

let table4 () =
  header "Table 4: TLB banks on virtual packet pipelines and DMA";
  Printf.printf "%-30s %12s %12s\n" "" "VPP (3e)" "DMA (2e)";
  List.iter
    (fun units ->
      Printf.printf "%-30s %12.3f %12.3f\n"
        (Printf.sprintf "%d units, area mm^2" units)
        (float_of_int units *. Costmodel.Tlb_cost.area_mm2 3)
        (float_of_int units *. Costmodel.Tlb_cost.area_mm2 2);
      Printf.printf "%-30s %12.3f %12.3f\n" "        power W"
        (float_of_int units *. Costmodel.Tlb_cost.power_w 3)
        (float_of_int units *. Costmodel.Tlb_cost.power_w 2))
    [ 12; 6; 3 ];
  Printf.printf "paper (12 units): 0.037 mm^2 / 0.017 W each\n"

let table5 () =
  header "Table 5: per-core TLB cost vs page-size menu (48 cores)";
  Printf.printf "%-34s %8s %12s %10s\n" "menu" "entries" "area mm^2" "power W";
  List.iter
    (fun (name, menu) ->
      let entries = Memprof.Profiles.max_entries ~page_sizes:menu in
      Printf.printf "%-34s %8d %12.3f %10.3f\n" name entries
        (48. *. Costmodel.Tlb_cost.area_mm2 entries)
        (48. *. Costmodel.Tlb_cost.power_w entries))
    [
      ("Equal (2MB)", Costmodel.Page_packing.equal_2mb);
      ("Flex-low (128KB,2MB,64MB)", Costmodel.Page_packing.flex_low);
      ("Flex-high (2MB,32MB,128MB)", Costmodel.Page_packing.flex_high);
    ];
  Printf.printf "paper: 183/0.538/0.311, 51/0.214/0.106, 13/0.150/0.069\n"

let overhead_and_tco () =
  header "Headline silicon overhead and TCO (Section 5.2)";
  let b = Costmodel.Overhead.compute Costmodel.Overhead.headline in
  Printf.printf "added area:  cores %.3f + accels %.3f + VPP/DMA %.3f = %.3f mm^2 -> +%.2f%% (paper 8.89%%)\n"
    b.Costmodel.Overhead.core_area b.Costmodel.Overhead.accel_area b.Costmodel.Overhead.io_area
    b.Costmodel.Overhead.total_area b.Costmodel.Overhead.area_overhead_pct;
  Printf.printf "added power: cores %.3f + accels %.3f + VPP/DMA %.3f = %.3f W    -> +%.2f%% (paper 11.45%%)\n"
    b.Costmodel.Overhead.core_power b.Costmodel.Overhead.accel_power b.Costmodel.Overhead.io_power
    b.Costmodel.Overhead.total_power b.Costmodel.Overhead.power_overhead_pct;
  let s = Costmodel.Tco.summary () in
  Printf.printf "3-year TCO/core: LiquidIO $%.2f | S-NIC $%.2f | host Xeon $%.2f\n" s.Costmodel.Tco.nic_tco
    s.Costmodel.Tco.snic_tco s.Costmodel.Tco.host_tco;
  Printf.printf "TCO advantage: %.3fx -> %.3fx; reduction %.2f%% (paper 8.37%%), preserved %.1f%% (paper 91.6%%)\n"
    s.Costmodel.Tco.advantage_nic s.Costmodel.Tco.advantage_snic s.Costmodel.Tco.advantage_reduction_pct
    s.Costmodel.Tco.preserved_pct

(* ------------------------------------------------------------------ *)
(* Tables 6-8: memory profiles                                         *)
(* ------------------------------------------------------------------ *)

let table6 () =
  header "Table 6: NF memory profiles and TLB sizing";
  Printf.printf "%-5s %7s %7s %7s %9s %8s | %6s %8s %9s | %6s\n" "NF" "text" "data" "code" "heap+stk" "total"
    "Equal" "Flex-low" "Flex-high" "MUR";
  List.iter
    (fun (p : Memprof.Profiles.t) ->
      let e menu = Memprof.Profiles.tlb_entries p ~page_sizes:menu in
      let mur = Memprof.Mur.find p.Memprof.Profiles.name in
      Printf.printf "%-5s %7.2f %7.2f %7.2f %9.2f %8.2f | %6d %8d %9d | %5.1f%%\n" p.Memprof.Profiles.name
        p.Memprof.Profiles.text_mb p.Memprof.Profiles.data_mb p.Memprof.Profiles.code_mb
        p.Memprof.Profiles.heap_stack_mb (Memprof.Profiles.total_mb p)
        (e Costmodel.Page_packing.equal_2mb) (e Costmodel.Page_packing.flex_low)
        (e Costmodel.Page_packing.flex_high) mur.Memprof.Mur.mur_pct)
    Memprof.Profiles.nfs;
  print_endline "(region sizes are the paper's Rust-NF measurements; entries/MUR are recomputed)";
  subheader "our OCaml NF structures, for comparison";
  let rng = Trace.Rng.create ~seed:0xD1 in
  let n_pat = Nf.Registry.dpi_patterns ~scale:(if fast then 0.1 else 1.0) in
  let ac = Nf.Aho_corasick.build (Nf.Rulegen.dpi_patterns rng ~n:n_pat) in
  Printf.printf "DPI automaton (%d patterns): %d states, %d transitions (paper graph: 97.28 MB)\n" n_pat
    (Nf.Aho_corasick.state_count ac) (Nf.Aho_corasick.transition_count ac);
  let lpm = Nf.Lpm.create () in
  let rng = Trace.Rng.create ~seed:0x17 in
  List.iter (fun (p, l, nh) -> Nf.Lpm.insert lpm ~prefix:p ~len:l nh) (Nf.Rulegen.routes rng ~n:16_000);
  Printf.printf "LPM DIR-24-8: %.1f MB lookup tables, %d tbl8 blocks (paper heap: 64.90 MB)\n"
    (float_of_int (Nf.Lpm.table_bytes lpm) /. 1048576.)
    (Nf.Lpm.tbl8_blocks lpm)

let table7 () =
  header "Table 7: accelerator memory profiles";
  List.iter
    (fun (a : Memprof.Accel_profiles.t) ->
      Printf.printf "%-5s total %8.2f MB -> %3d TLB entries @2MB pages   [%s]\n" a.Memprof.Accel_profiles.name
        (Memprof.Accel_profiles.total_mb a) (Memprof.Accel_profiles.tlb_entries a)
        (String.concat ", "
           (List.map
              (fun (n, b) -> Printf.sprintf "%s %.4gKB" n (float_of_int b /. 1024.))
              a.Memprof.Accel_profiles.buffers)))
    Memprof.Accel_profiles.all;
  print_endline "paper: DPI 101.90 MB/54e, ZIP 132.24 MB/70e, RAID 8.13 MB/5e"

let table8 () =
  header "Table 8: memory utilization ratios";
  Printf.printf "%-5s %14s %10s %8s\n" "NF" "prealloc (MB)" "used (MB)" "MUR";
  List.iter
    (fun (r : Memprof.Mur.row) ->
      Printf.printf "%-5s %14.2f %10.2f %7.1f%%\n" r.Memprof.Mur.name r.Memprof.Mur.prealloc_mb
        r.Memprof.Mur.used_mb r.Memprof.Mur.mur_pct)
    (Memprof.Mur.table8 ());
  print_endline "paper MURs: FW 100.0, DPI 100.0, NAT 72.3, LB 30.2, LPM 100.0, Mon 68.3"

(* ------------------------------------------------------------------ *)
(* Figure 5: IPC degradation                                           *)
(* ------------------------------------------------------------------ *)

let figure5a () =
  header "Figure 5a: median IPC degradation vs L2 size (2 colocated NFs)";
  let packets = if fast then 400 else 1500 in
  let l2_sizes = if fast then [ 32 * 1024; 256 * 1024; 4 lsl 20 ] else Uarch.Colocation.default_l2_sizes in
  let results = Uarch.Colocation.figure5a ~l2_sizes ~packets () in
  let show_size s = if s >= 1 lsl 20 then Printf.sprintf "%dMB" (s lsr 20) else Printf.sprintf "%dKB" (s lsr 10) in
  Printf.printf "%-8s" "L2";
  List.iter (fun nf -> Printf.printf "%10s" nf) Uarch.Workload.names;
  print_newline ();
  List.iter
    (fun size ->
      Printf.printf "%-8s" (show_size size);
      List.iter
        (fun nf ->
          let series = List.assoc nf results in
          let s = List.assoc size series in
          Printf.printf "%9.2f%%" s.Uarch.Colocation.median)
        Uarch.Workload.names;
      print_newline ())
    l2_sizes;
  print_endline "paper: small everywhere at big caches, growing as L2 shrinks; FW/DPI/NAT worst"

let figure5b () =
  header "Figure 5b: IPC degradation vs co-tenancy (4MB L2), median [p1..p99]";
  let packets = if fast then 400 else 1500 in
  let cotenancy = if fast then [ 2; 4; 16 ] else Uarch.Colocation.default_cotenancy in
  let results = Uarch.Colocation.figure5b ~cotenancy ~samples:(if fast then 3 else 6) ~packets () in
  Printf.printf "%-6s" "NFs";
  List.iter (fun nf -> Printf.printf "%22s" nf) Uarch.Workload.names;
  print_newline ();
  List.iter
    (fun n ->
      Printf.printf "%-6d" n;
      List.iter
        (fun nf ->
          let series = List.assoc nf results in
          let s = List.assoc n series in
          Printf.printf "  %6.2f%%[%5.2f;%5.2f]" s.Uarch.Colocation.median s.Uarch.Colocation.p1
            s.Uarch.Colocation.p99)
        Uarch.Workload.names;
      print_newline ())
    cotenancy;
  let avg_at n =
    Uarch.Colocation.mean
      (List.map (fun nf -> (List.assoc n (List.assoc nf results)).Uarch.Colocation.median) Uarch.Workload.names)
  in
  List.iter
    (fun (n, paper) ->
      if List.mem n cotenancy then
        Printf.printf "average median @%2d NFs: %5.2f%%  (paper %.2f%%)\n" n (avg_at n) paper)
    [ (2, 0.24); (4, 0.93); (8, 3.41); (16, 9.44) ]

(* ------------------------------------------------------------------ *)
(* Figure 6: trusted instruction latency                               *)
(* ------------------------------------------------------------------ *)

let figure6 () =
  header "Figure 6: nf_launch / nf_attest / nf_destroy latency (1.2 GHz NIC model)";
  Printf.printf "%-5s | %-40s | %-7s | %-28s\n" "NF" "nf_launch: tlb + denylist + sha = total ms" "attest"
    "nf_destroy: allow + scrub ms";
  List.iter
    (fun (p : Memprof.Profiles.t) ->
      let l = Memprof.Instr_latency.launch p in
      let d = Memprof.Instr_latency.destroy p in
      Printf.printf "%-5s | %7.4f + %6.4f + %8.2f = %8.2f | %6.2f | %6.4f + %6.2f = %7.2f\n"
        p.Memprof.Profiles.name l.Memprof.Instr_latency.tlb_setup_ms l.Memprof.Instr_latency.denylist_ms
        l.Memprof.Instr_latency.sha_ms l.Memprof.Instr_latency.total_ms Memprof.Instr_latency.attest_ms
        d.Memprof.Instr_latency.allowlist_ms d.Memprof.Instr_latency.scrub_ms d.Memprof.Instr_latency.total_ms)
    Memprof.Profiles.nfs;
  Printf.printf "paper anchors: LB sha 29.62ms, Mon sha 763.52ms, attest 5.6ms, Mon scrub ~54ms\n";
  let buf = String.make (8 lsl 20) 'x' in
  let t0 = Sys.time () in
  ignore (Crypto.Sha256.digest buf);
  let dt = Sys.time () -. t0 in
  Printf.printf "(our software SHA-256 on this host: %.0f MB/s; model uses the NIC engine's %.0f MB/s)\n" (8. /. dt)
    Memprof.Instr_latency.sha_mb_per_s

(* ------------------------------------------------------------------ *)
(* Figure 7: Monitor memory timeline                                   *)
(* ------------------------------------------------------------------ *)

let figure7 () =
  header "Figure 7: Monitor memory usage over time (150s CAIDA-like replay)";
  let series = Memprof.Timeline.monitor () in
  let prealloc = match series with p :: _ -> p.Memprof.Timeline.prealloc_mb | [] -> 0. in
  let width = 60 in
  List.iter
    (fun (p : Memprof.Timeline.point) ->
      if Float.rem p.Memprof.Timeline.t_s 12.5 < 0.6 || p.Memprof.Timeline.used_mb > prealloc *. 0.95 then begin
        let bar = int_of_float (p.Memprof.Timeline.used_mb /. prealloc *. float_of_int width) in
        Printf.printf "%6.1fs |%s%s| %6.1f MB\n" p.Memprof.Timeline.t_s
          (String.make (min bar width) '#')
          (String.make (max 0 (width - bar)) ' ')
          p.Memprof.Timeline.used_mb
      end)
    series;
  Printf.printf "preallocation watermark: %.2f MB (flat line); steady state: %.2f MB; peak: %.2f MB\n" prealloc
    (Memprof.Timeline.final_mb series) (Memprof.Timeline.peak_mb series);
  Printf.printf "resize spikes visible: %d (paper: several HashMap doublings + hugepage init)\n"
    (Memprof.Timeline.spike_count series)

(* ------------------------------------------------------------------ *)
(* Figure 8: DPI accelerator throughput                                *)
(* ------------------------------------------------------------------ *)

let figure8 () =
  header "Figure 8: vDPI throughput vs cluster size and frame size";
  Printf.printf "%-10s %8s %8s %8s %8s\n" "threads" "64B" "512B" "1.5KB" "9KB";
  List.iter
    (fun threads ->
      Printf.printf "%-10d" threads;
      List.iter
        (fun frame -> Printf.printf " %7.3f" (Uarch.Figure8.simulate ~threads ~frame_bytes:frame ()))
        Trace.Flowgen.figure8_frame_sizes;
      print_newline ())
    [ 16; 32; 48 ];
  print_endline "(Mpps; small frames producer-bound ~1.07 Mpps flat, jumbo frames scale with threads)";
  subheader "extension: the same sweep for the ZIP and RAID engines";
  List.iter
    (fun kind ->
      Printf.printf "%-10s" (Nicsim.Accel.kind_name kind);
      List.iter
        (fun frame -> Printf.printf " %7.3f" (Uarch.Figure8.simulate ~kind ~threads:32 ~frame_bytes:frame ()))
        Trace.Flowgen.figure8_frame_sizes;
      print_newline ())
    [ Nicsim.Accel.Zip; Nicsim.Accel.Raid ];
  print_endline "(32 threads; RAID's cheap per-byte XOR keeps even jumbo frames producer-bound)"

(* ------------------------------------------------------------------ *)
(* §3.3 attacks                                                        *)
(* ------------------------------------------------------------------ *)

let attacks_section () =
  header "Section 3.3: concrete attacks across NIC architectures";
  Printf.printf "%-26s | %-16s | %-16s\n" "NIC" "pkt corruption" "ruleset theft";
  List.iter
    (fun (name, corr, steal) ->
      let s (o : Attacks.outcome) = if o.Attacks.succeeded then "SUCCEEDS" else "blocked" in
      Printf.printf "%-26s | %-16s | %-16s\n" name (s corr) (s steal))
    (Attacks.matrix ());
  let ffa = Attacks.bus_dos Nicsim.Bus.Free_for_all in
  let tp = Attacks.bus_dos (Nicsim.Bus.Temporal { epoch = 96; dead = 16 }) in
  Printf.printf "bus DoS: free-for-all retains %.1f%% of victim throughput; temporal partitioning %.1f%%\n"
    (100. *. ffa.Attacks.retained) (100. *. tp.Attacks.retained);
  let cc_ffa = Attacks.bus_covert_channel Nicsim.Bus.Free_for_all in
  let cc_tp = Attacks.bus_covert_channel (Nicsim.Bus.Temporal { epoch = 96; dead = 16 }) in
  Printf.printf "bus covert channel (64-bit message): free-for-all decodes %.0f%%, temporal %.0f%% (chance = 50%%)\n"
    (100. *. cc_ffa.Attacks.accuracy) (100. *. cc_tp.Attacks.accuracy);
  let ac_sh = Attacks.accel_contention ~shared:true in
  let ac_cl = Attacks.accel_contention ~shared:false in
  Printf.printf
    "accelerator probe: shared engine %d -> %d cycles when victim active (LEAKS); dedicated cluster %d -> %d (flat)\n"
    ac_sh.Attacks.idle_latency ac_sh.Attacks.busy_latency ac_cl.Attacks.idle_latency ac_cl.Attacks.busy_latency;
  subheader "deployment comparison: host-enclave NF (SafeBricks) vs S-NIC (the paper's motivation)";
  Format.printf "  %a@." Attacks.Safebricks.pp_outcome (Attacks.Safebricks.safebricks_deployment ());
  Format.printf "  %a@." Attacks.Safebricks.pp_outcome (Attacks.Safebricks.snic_deployment ())

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_bus () =
  subheader "ablation: bus arbitration policy (DoS resilience vs baseline cost)";
  Printf.printf "%-34s %12s %14s %10s\n" "policy" "alone kpps" "attacked kpps" "retained";
  let show name (r : Attacks.dos_result) =
    Printf.printf "%-34s %12.0f %14.0f %9.1f%%\n" name (r.Attacks.alone_pps /. 1e3)
      (r.Attacks.under_attack_pps /. 1e3) (100. *. r.Attacks.retained)
  in
  show "free-for-all" (Attacks.bus_dos Nicsim.Bus.Free_for_all);
  List.iter
    (fun (epoch, dead) ->
      show
        (Printf.sprintf "temporal epoch=%d dead=%d" epoch dead)
        (Attacks.bus_dos (Nicsim.Bus.Temporal { epoch; dead })))
    [ (96, 16); (192, 32); (384, 64) ]

let ablation_cache () =
  subheader "ablation: cache isolation mode (two side channels)";
  (* Channel 1 (prime+probe): the victim's activity evicts the attacker's
     primed lines. Channel 2 (flush+reload analog): the attacker touches
     addresses the victim may have cached and observes hits — the leak a
     soft, CAT-style write-only partition keeps (§4.2). *)
  let prime_probe mode =
    let run victim_active =
      let c = Nicsim.Cache.create ~sets:64 ~ways:8 ~line_bits:6 ~mode ~domains:2 in
      for i = 0 to 511 do
        ignore (Nicsim.Cache.access c ~domain:0 ~addr:(i * 64))
      done;
      if victim_active then
        for i = 0 to 1023 do
          ignore (Nicsim.Cache.access c ~domain:1 ~addr:(0x800000 + (i * 64)))
        done;
      let misses = ref 0 in
      for i = 0 to 511 do
        if Nicsim.Cache.access c ~domain:0 ~addr:(i * 64) = Nicsim.Cache.Miss then incr misses
      done;
      !misses
    in
    run true - run false
  in
  let reload mode =
    let run victim_active =
      let c = Nicsim.Cache.create ~sets:64 ~ways:8 ~line_bits:6 ~mode ~domains:2 in
      (* The victim touches a region the attacker can also name (e.g. a
         shared library page). *)
      if victim_active then
        for i = 0 to 63 do
          ignore (Nicsim.Cache.access c ~domain:1 ~addr:(0x400000 + (i * 64)))
        done;
      let hits = ref 0 in
      for i = 0 to 63 do
        if Nicsim.Cache.access c ~domain:0 ~addr:(0x400000 + (i * 64)) = Nicsim.Cache.Hit then incr hits
      done;
      !hits
    in
    run true - run false
  in
  Printf.printf "%-28s %18s %18s\n" "mode" "prime+probe" "reload-hit";
  List.iter
    (fun (name, mode) ->
      let pp = prime_probe mode and rl = reload mode in
      Printf.printf "%-28s %12d %5s %12d %5s\n" name pp
        (if pp = 0 then "ok" else "LEAK")
        rl
        (if rl = 0 then "ok" else "LEAK"))
    [
      ("shared (commodity)", Nicsim.Cache.Shared);
      ("soft / CAT-like", Nicsim.Cache.Soft);
      ("hard (S-NIC)", Nicsim.Cache.Hard);
      ("SecDCP dynamic", Nicsim.Cache.Secdcp);
    ];
  print_endline "(soft partitioning closes the eviction channel but keeps the reload channel: insufficient)"

let ablation_pages () =
  subheader "ablation: page-size menu (entries vs wasted DRAM, all six NFs)";
  Printf.printf "%-30s %12s %14s\n" "menu" "max entries" "total waste MB";
  List.iter
    (fun (name, menu) ->
      let entries = Memprof.Profiles.max_entries ~page_sizes:menu in
      let waste =
        List.fold_left
          (fun acc p -> acc + Costmodel.Page_packing.waste ~page_sizes:menu (Memprof.Profiles.regions p))
          0 Memprof.Profiles.nfs
      in
      Printf.printf "%-30s %12d %14.2f\n" name entries (float_of_int waste /. 1048576.))
    [
      ("Equal (2MB)", Costmodel.Page_packing.equal_2mb);
      ("Flex-low (128KB,2MB,64MB)", Costmodel.Page_packing.flex_low);
      ("Flex-high (2MB,32MB,128MB)", Costmodel.Page_packing.flex_high);
    ]

let ablation_isolation_decomposition () =
  subheader "ablation: where the Figure-5 degradation comes from (8 NFs @4MB L2)";
  let names = [ "FW"; "DPI"; "NAT"; "LB"; "LPM"; "Mon"; "FW"; "DPI" ] in
  let streams =
    Array.of_list
      (List.mapi
         (fun d n -> Uarch.Workload.rebase (Uarch.Workload.stream ~packets:(if fast then 400 else 1200) n) ~domain:d)
         names)
  in
  let run isolation = Uarch.Cpu_model.run ~l2_bytes:(4 lsl 20) ~isolation streams in
  let base = run Uarch.Cpu_model.Baseline in
  let cache_only = run Uarch.Cpu_model.Cache_only in
  let bus_only = run Uarch.Cpu_model.Bus_only in
  let full = run Uarch.Cpu_model.Snic in
  Printf.printf "%-6s %16s %16s %16s\n" "NF" "cache part. only" "bus part. only" "full S-NIC";
  Array.iteri
    (fun d (b : Uarch.Cpu_model.domain_result) ->
      let deg (r : Uarch.Cpu_model.domain_result array) =
        100. *. (1. -. (r.(d).Uarch.Cpu_model.ipc /. b.Uarch.Cpu_model.ipc))
      in
      Printf.printf "%-6s %15.2f%% %15.2f%% %15.2f%%\n" b.Uarch.Cpu_model.nf (deg cache_only) (deg bus_only)
        (deg full))
    base;
  print_endline "(most of the cost is bus temporal partitioning; cache slicing matters for the big working sets)"

let ablation_schedulers () =
  subheader "ablation: VPP packet scheduler (1000-packet backlog, 10% privileged traffic)";
  let open Nicsim in
  let backlog () =
    let rng = Trace.Rng.create ~seed:0x5C in
    List.init 1000 (fun i ->
        let privileged = Trace.Rng.int rng 10 = 0 in
        let flow = Trace.Rng.int rng 16 in
        let bytes = if flow < 4 then 1400 else 100 in
        ( { Sched.flow; bytes; level = (if privileged then 0 else 1); weight = (if flow < 2 then 4 else 1) },
          (i, privileged, bytes) ))
  in
  Printf.printf "%-22s %26s %26s\n" "policy" "mean privileged position" "small-pkt share of first half";
  List.iter
    (fun policy ->
      let s = Sched.create policy in
      List.iter (fun (meta, x) -> Sched.enqueue s meta x) (backlog ());
      let order = Sched.drain s in
      let prio_pos_sum = ref 0 and prio_n = ref 0 and small_first_half = ref 0 and small_total = ref 0 in
      List.iteri
        (fun pos (_, privileged, bytes) ->
          if privileged then begin
            prio_pos_sum := !prio_pos_sum + pos;
            incr prio_n
          end;
          if bytes = 100 then begin
            incr small_total;
            if pos < 500 then incr small_first_half
          end)
        order;
      Printf.printf "%-22s %26.1f %25.1f%%\n" (Sched.policy_name policy)
        (float_of_int !prio_pos_sum /. float_of_int (max 1 !prio_n))
        (100. *. float_of_int !small_first_half /. float_of_int (max 1 !small_total)))
    [ Sched.Fifo; Sched.Priority { levels = 2 }; Sched.Drr { quantum = 512 }; Sched.Wfq ]

let ablation_underutilization () =
  subheader "ablation: the 4.8 underutilization trade-off (24h diurnal load)";
  Printf.printf "%-34s %14s %8s\n" "provisioning policy" "avg utilization" "churn";
  List.iter
    (fun policy ->
      let series = Memprof.Underutil.simulate policy in
      Printf.printf "%-34s %13.1f%% %8d\n" (Memprof.Underutil.policy_name policy)
        (100. *. Memprof.Underutil.avg_utilization series)
        (Memprof.Underutil.churn series policy))
    [
      Memprof.Underutil.Static_peak;
      Memprof.Underutil.Elastic { instance_mb = 120. };
      Memprof.Underutil.Elastic { instance_mb = 60. };
      Memprof.Underutil.Elastic { instance_mb = 30. };
      Memprof.Underutil.Dynamic;
    ];
  print_endline "(creating/destroying fixed-size instances recovers most of the utilization";
  print_endline " that S-NIC's no-resize rule forfeits, at the cost of launch/teardown churn)"

let ablation_denylist () =
  subheader "ablation: denylist as bitmap vs page-table walk (§4.1 footnote)";
  let dram = 1 lsl 30 in
  let pages = dram / 4096 in
  Printf.printf "bitmap: %d KB of dedicated SRAM, 1-cycle check per TLB install\n" (pages / 8 / 1024);
  Printf.printf "EPT-style walk: no dedicated SRAM, ~4 DRAM references (~%d cycles) per TLB install\n" (4 * 88);
  print_endline "(the paper picks the walk: TLB installs are rare events, die area is precious)"

let ablation_translation () =
  subheader "ablation: locked variable-size TLB vs per-core page table (§4.2 alternate design)";
  Printf.printf "%-5s %22s %26s %22s\n" "NF" "TLB entries (Equal)" "PT pages (4KB walker)" "translate cost";
  List.iter
    (fun (p : Memprof.Profiles.t) ->
      let entries = Memprof.Profiles.tlb_entries p ~page_sizes:Costmodel.Page_packing.equal_2mb in
      let bytes = Costmodel.Page_packing.mb (Memprof.Profiles.total_mb p) in
      let pt_pages = Nicsim.Pagetable.table_pages_for ~vaddr:0 ~len:bytes in
      Printf.printf "%-5s %22d %26d %13s/%8s\n" p.Memprof.Profiles.name entries pt_pages "0cy"
        (Printf.sprintf "%dxDRAM" Nicsim.Pagetable.walk_dram_refs))
    Memprof.Profiles.nfs;
  Printf.printf "TLB: zero-latency hits, no misses by construction; +%.3f mm^2 per core at 183 entries\n"
    (Costmodel.Tlb_cost.area_mm2 183);
  print_endline "page table: no CAM silicon, but every TLB refill costs 2 DRAM walks and the tables live in the";
  print_endline "function's RAM budget — the paper picks locked TLBs ('a typical implementation will not";
  print_endline "associate a page table pointer with a programmable core')"

(* ------------------------------------------------------------------ *)
(* Chaos: recovery latency and goodput under gray failures             *)
(* ------------------------------------------------------------------ *)

let chaos_section () =
  header "Gray-failure chaos: recovery latency and goodput under faults";
  Printf.printf "%-8s %8s %8s %8s %8s %9s %6s %7s %11s\n" "seed" "faults" "p50 ms" "p90 ms" "p99 ms" "goodput"
    "quar" "readmit" "unattested";
  let seeds = if fast then [ 42; 1337 ] else [ 42; 1337; 20240 ] in
  List.iter
    (fun seed ->
      (* Record device events only when --metrics asked for the dump; the
         null sink keeps the benchmark itself overhead-free. *)
      let sink = if seed = 42 && metrics_path <> None then Obs.create () else Obs.null in
      let r, orch = Fleet.Chaos.run_with ~sink { Fleet.Chaos.default_config with Fleet.Chaos.seed } in
      (match (metrics_path, Obs.is_null sink) with
      | Some path, false ->
        let oc = open_out path in
        output_string oc (Fleet.Telemetry.prometheus (Fleet.Orchestrator.telemetry orch));
        close_out oc;
        Printf.printf "(wrote seed-%d registry dump to %s)\n" seed path
      | _ -> ());
      let q = Fleet.Chaos.quantile_str in
      Printf.printf "%-8d %8d %8s %8s %8s %9.4f %6d %7d %11d\n" seed r.Fleet.Chaos.total_faults
        (q r.Fleet.Chaos.recovery_p50) (q r.Fleet.Chaos.recovery_p90) (q r.Fleet.Chaos.recovery_p99)
        r.Fleet.Chaos.goodput r.Fleet.Chaos.quarantines r.Fleet.Chaos.readmissions
        r.Fleet.Chaos.unattested_running;
      let m name v = metric (Printf.sprintf "chaos.seed%d.%s" seed name) v in
      (* A quantile that does not exist (< 2 samples) is omitted from the
         JSON rather than recorded as a fabricated 0.0. *)
      let mq name v = match v with None -> () | Some v -> m name v in
      mq "recovery_p50_ms" r.Fleet.Chaos.recovery_p50;
      mq "recovery_p90_ms" r.Fleet.Chaos.recovery_p90;
      mq "recovery_p99_ms" r.Fleet.Chaos.recovery_p99;
      m "recovery_samples" (float_of_int (List.length r.Fleet.Chaos.recovery_ms));
      m "goodput" r.Fleet.Chaos.goodput;
      m "total_faults" (float_of_int r.Fleet.Chaos.total_faults);
      m "quarantines" (float_of_int r.Fleet.Chaos.quarantines);
      m "unattested_running" (float_of_int r.Fleet.Chaos.unattested_running);
      m "scrub_failures" (float_of_int r.Fleet.Chaos.scrub_failures))
    seeds;
  print_endline "(recovery = fault -> re-attested, through verified scrub + re-place + attestation, at 1.2 GHz;";
  print_endline " goodput = frames forwarded / injected while the storm drops, corrupts, and stalls the fleet)"

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let microbenches () =
  header "Microbenchmarks (Bechamel)";
  let open Bechamel in
  let ip = Net.Ipv4_addr.of_string in
  let pkt_payload_holder = String.init 256 (fun i -> Char.chr (97 + (i * 7 mod 26))) in
  let pkt =
    Net.Packet.make ~src_ip:(ip "10.3.2.1") ~dst_ip:(ip "93.184.216.34") ~proto:Net.Packet.Tcp ~src_port:4242
      ~dst_port:80 pkt_payload_holder
  in
  let rng = Trace.Rng.create ~seed:1 in
  let fw = Nf.Firewall.create ~default:Nf.Firewall.Allow (Nf.Rulegen.firewall_rules rng ~n:643) in
  let dpi = Nf.Dpi.create (Nf.Rulegen.dpi_patterns rng ~n:2000) in
  let ac_sparse = Nf.Dpi.automaton dpi in
  let ac_dense = Nf.Aho_corasick.compile ac_sparse in
  let scan_text = pkt_payload_holder in
  let nat = Nf.Nat.create ~internal_prefix:(ip "10.0.0.0", 8) ~external_ip:(ip "203.0.113.1") () in
  let lb = Nf.Maglev.create (Nf.Rulegen.backends ~n:16) in
  let lpm = Nf.Lpm.create () in
  List.iter (fun (p, l, nh) -> Nf.Lpm.insert lpm ~prefix:p ~len:l nh) (Nf.Rulegen.routes rng ~n:4000);
  let mon = Nf.Monitor.create () in
  let flow = Net.Packet.flow pkt in
  let frame = Net.Packet.serialize pkt in
  let kb = String.make 1024 'x' in
  let compressible = String.concat "" (List.init 128 (fun i -> Printf.sprintf "row %04d value=ok;" i)) in
  let raid_blocks = Array.init 4 (fun i -> String.make 1024 (Char.chr (65 + i))) in
  let vnic_api = Snic.Api.boot () in
  let vnic_v =
    Result.get_ok
      (Snic.Api.nf_create vnic_api
         { Snic.Instructions.default_config with image = "bench"; rules = [ Nicsim.Pktio.match_any ] })
  in
  let echo = { Nf.Types.name = "echo"; process = (fun p -> Nf.Types.Forward p) } in
  let tests =
    [
      Test.make ~name:"FW classify" (Staged.stage (fun () -> ignore (Nf.Firewall.classify fw pkt)));
      Test.make ~name:"DPI inspect 256B" (Staged.stage (fun () -> ignore (Nf.Dpi.inspect dpi pkt)));
      Test.make ~name:"AC scan sparse 256B" (Staged.stage (fun () -> ignore (Nf.Aho_corasick.scan ac_sparse scan_text)));
      Test.make ~name:"AC scan compiled 256B" (Staged.stage (fun () -> ignore (Nf.Aho_corasick.scan ac_dense scan_text)));
      Test.make ~name:"NAT translate" (Staged.stage (fun () -> ignore (Nf.Nat.translate nat pkt)));
      Test.make ~name:"LB maglev lookup" (Staged.stage (fun () -> ignore (Nf.Maglev.backend_for lb flow)));
      Test.make ~name:"LPM lookup" (Staged.stage (fun () -> ignore (Nf.Lpm.lookup lpm pkt.Net.Packet.dst_ip)));
      Test.make ~name:"Mon observe" (Staged.stage (fun () -> Nf.Monitor.observe mon pkt));
      Test.make ~name:"packet parse" (Staged.stage (fun () -> ignore (Net.Packet.parse frame)));
      Test.make ~name:"packet serialize" (Staged.stage (fun () -> ignore (Net.Packet.serialize pkt)));
      Test.make ~name:"sha256 1KB" (Staged.stage (fun () -> ignore (Crypto.Sha256.digest kb)));
      Test.make ~name:"5-tuple hash" (Staged.stage (fun () -> ignore (Net.Five_tuple.hash flow)));
      Test.make ~name:"lz77 compress 4KB" (Staged.stage (fun () -> ignore (Accelfn.Lz77.compress compressible)));
      Test.make ~name:"raid encode 4x1KB" (Staged.stage (fun () -> ignore (Accelfn.Raid.encode raid_blocks)));
      Test.make ~name:"vnic end-to-end pkt"
        (Staged.stage (fun () ->
             ignore (Snic.Api.inject_packet vnic_api pkt);
             ignore (Snic.Vnic.process vnic_v echo ~max:1)));
      Test.make ~name:"wire encode quote fields"
        (Staged.stage (fun () -> ignore (Snic.Wire.encode [ "a"; kb; "c"; "d" ])));
    ]
  in
  let grouped = Test.make_grouped ~name:"snic" ~fmt:"%s %s" tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ ns ] -> Printf.printf "%-24s %12.1f ns/op\n" name ns
      | _ -> Printf.printf "%-24s (no estimate)\n" name)
    (List.sort compare rows)

let offload_motivation () =
  header "Offload motivation (Section 1): host NF vs NIC NF vs S-NIC NF";
  Printf.printf "%-16s %14s %16s %14s\n" "deployment" "latency ns" "kpps per core" "$ per Mpps";
  List.iter
    (fun (r : Costmodel.Offload.result) ->
      Printf.printf "%-16s %14.0f %16.0f %14.2f\n" r.Costmodel.Offload.deployment r.Costmodel.Offload.latency_ns
        r.Costmodel.Offload.kpps_per_core r.Costmodel.Offload.usd_per_mpps)
    (Costmodel.Offload.comparison ());
  print_endline "(offload removes the PCIe round trip and halves $/Mpps; S-NIC's isolation";
  print_endline " tax — 1.7% IPC worst-case + the silicon overhead — barely dents either)"

(* ------------------------------------------------------------------ *)
(* Fleet orchestration: placement policies on a heterogeneous rack     *)
(* ------------------------------------------------------------------ *)

let fleet_section () =
  header "Fleet orchestration: attested placement across a heterogeneous rack";
  let policies = if fast then [ Fleet.Policy.First_fit; Fleet.Policy.Tco_aware ] else Fleet.Policy.all in
  Printf.printf "%-10s %12s %12s %12s %12s %12s\n" "policy" "attested" "active NICs" "replacements" "forwarded"
    "unattested";
  List.iter
    (fun policy ->
      let report =
        Fleet.Scenario.run
          {
            Fleet.Scenario.default_config with
            Fleet.Scenario.n_nics = 6;
            n_tenants = 18;
            policy;
            rounds = 2;
            packets_per_round = 200;
            kill_nics = 1;
            kill_nfs = 2;
          }
      in
      let forwarded =
        List.fold_left (fun acc r -> acc + r.Fleet.Scenario.traffic.Fleet.Frontend.forwarded) 0
          report.Fleet.Scenario.rounds
      in
      Printf.printf "%-10s %9d/18 %9d/%-2d %12d %12d %12d\n" (Fleet.Policy.name policy)
        report.Fleet.Scenario.final_attested report.Fleet.Scenario.active_nics report.Fleet.Scenario.alive_nics
        report.Fleet.Scenario.replacements forwarded report.Fleet.Scenario.unattested_running)
    policies;
  print_endline "(every placement goes through nf_create + the Appendix A attestation handshake;";
  print_endline " consolidating policies power few NICs, spread activates the most)"

(* ------------------------------------------------------------------ *)
(* Datapath: bulk page-granular fast paths vs the per-byte baseline    *)
(* ------------------------------------------------------------------ *)

(* Deterministic digest of a payload (order-sensitive polynomial hash):
   any byte the datapath loses, duplicates or reorders changes it. *)
let checksum s =
  let h = ref 0 in
  String.iter (fun c -> h := ((!h * 131) + Char.code c) land 0x3FFF_FFFF) s;
  float_of_int !h

let datapath_section () =
  header "Datapath: page-granular bulk fast paths vs the per-byte baseline";
  let open Nicsim in
  let mb = 1 lsl 20 in
  let rng = Trace.Rng.create ~seed in
  let payload = String.init mb (fun _ -> Char.chr (Trace.Rng.int rng 256)) in
  let secs f =
    let t0 = Sys.time () in
    f ();
    Float.max (Sys.time () -. t0) 1e-6
  in
  let m name v = metric ("datapath." ^ name) v in

  (* -- Physmem: 1 MB write+read, bulk vs one hash lookup per byte -- *)
  subheader "Physmem 1MB write+read";
  let mem = Physmem.create ~size:(64 * mb) in
  let perbyte_digest = ref 0. in
  let r0 = Physmem.resolutions mem in
  let perbyte_dt =
    secs (fun () ->
        for i = 0 to mb - 1 do
          Physmem.write_u8 mem i (Char.code payload.[i])
        done;
        let b = Bytes.create mb in
        for i = 0 to mb - 1 do
          Bytes.set b i (Char.chr (Physmem.read_u8 mem i))
        done;
        perbyte_digest := checksum (Bytes.unsafe_to_string b))
  in
  let perbyte_res = Physmem.resolutions mem - r0 in
  let bulk_digest = ref 0. in
  let r1 = Physmem.resolutions mem in
  let bulk_iters = 16 in
  let bulk_dt =
    secs (fun () ->
        for _ = 1 to bulk_iters do
          Physmem.write_bytes mem ~pos:(32 * mb) payload;
          bulk_digest := checksum (Physmem.read_bytes mem ~pos:(32 * mb) ~len:mb)
        done)
  in
  let bulk_res = (Physmem.resolutions mem - r1) / bulk_iters in
  let perbyte_mb_s = 2. /. perbyte_dt in
  let bulk_mb_s = 2. *. float_of_int bulk_iters /. bulk_dt in
  Printf.printf "per-byte: %8.1f MB/s  (%d page resolutions)\n" perbyte_mb_s perbyte_res;
  Printf.printf "bulk:     %8.1f MB/s  (%d page resolutions)  digests %s\n" bulk_mb_s bulk_res
    (if !bulk_digest = !perbyte_digest then "agree" else "DISAGREE");
  m "physmem.perbyte_resolutions" (float_of_int perbyte_res);
  m "physmem.bulk_resolutions" (float_of_int bulk_res);
  m "physmem.checksum" !bulk_digest;
  m "physmem.digests_agree" (if !bulk_digest = !perbyte_digest then 1. else 0.);
  m "physmem.perbyte_mb_s" perbyte_mb_s;
  m "physmem.bulk_mb_s" bulk_mb_s;

  (* -- DMA: 1 MB NIC->host, the engine's bulk staging buffer vs an
        emulated per-byte engine (what the transfer cost before the bulk
        rewrite: one nic read + one host write hash lookup per byte) -- *)
  subheader "DMA 1MB NIC->host";
  let nic_mem = Physmem.create ~size:(16 * mb) in
  let host_mem = Physmem.create ~size:(16 * mb) in
  let dma = Dma.create ~nic_mem ~host_mem ~banks:1 in
  Physmem.write_bytes nic_mem ~pos:0 payload;
  let dma_r0 = Physmem.resolutions nic_mem + Physmem.resolutions host_mem in
  (match Dma.transfer ~checked:false dma ~bank:0 ~direction:Dma.To_host ~nic_addr:0 ~host_addr:0 ~len:mb with
  | Ok () -> ()
  | Error e -> failwith (Dma.error_to_string e));
  let dma_res = Physmem.resolutions nic_mem + Physmem.resolutions host_mem - dma_r0 in
  let dma_iters = 16 in
  let dma_bulk_dt =
    secs (fun () ->
        for _ = 1 to dma_iters do
          ignore (Dma.transfer ~checked:false dma ~bank:0 ~direction:Dma.To_host ~nic_addr:0 ~host_addr:0 ~len:mb)
        done)
  in
  let dma_perbyte_dt =
    secs (fun () ->
        for i = 0 to mb - 1 do
          Physmem.write_u8 host_mem (2 * mb + i) (Physmem.read_u8 nic_mem i)
        done)
  in
  let dma_bulk_mb_s = float_of_int dma_iters /. dma_bulk_dt in
  let dma_perbyte_mb_s = 1. /. dma_perbyte_dt in
  let speedup = dma_bulk_mb_s /. dma_perbyte_mb_s in
  let dma_digest = checksum (Physmem.read_bytes host_mem ~pos:0 ~len:mb) in
  Printf.printf "per-byte engine: %8.1f MB/s\n" dma_perbyte_mb_s;
  Printf.printf "bulk engine:     %8.1f MB/s  (%d page resolutions/transfer)  speedup %.1fx\n" dma_bulk_mb_s
    dma_res speedup;
  m "dma.resolutions_per_transfer" (float_of_int dma_res);
  m "dma.checksum" dma_digest;
  m "dma.perbyte_mb_s" dma_perbyte_mb_s;
  m "dma.bulk_mb_s" dma_bulk_mb_s;
  m "dma.speedup_x" speedup;

  (* -- Packet IO: deliver -> rx_pop -> transmit round trips -- *)
  subheader "Pktio deliver/rx_pop/transmit";
  let pmem = Physmem.create ~size:(16 * mb) in
  let alloc = Alloc.init pmem ~base:0x10000 ~heap_base:(8 * mb) ~heap_size:(8 * mb) ~max_entries:4096 in
  let pktio = Pktio.create pmem alloc ~rx_buffer_bytes:(2 * mb) ~tx_buffer_bytes:(2 * mb) in
  (match Pktio.reserve pktio ~nf:1 ~rx_bytes:mb ~tx_bytes:mb with
  | Ok () -> ()
  | Error e -> failwith e);
  Pktio.add_rule pktio ~m:Pktio.match_any ~nf:1;
  let ip = Net.Ipv4_addr.of_string in
  let frame =
    Net.Packet.serialize
      (Net.Packet.make ~src_ip:(ip "10.1.0.1") ~dst_ip:(ip "10.2.0.2") ~proto:Net.Packet.Udp ~src_port:4000
         ~dst_port:4001
         (String.sub payload 0 1024))
  in
  let rounds = 2000 in
  let forwarded = ref 0 in
  let pktio_dt =
    secs (fun () ->
        for _ = 1 to rounds do
          (match Pktio.deliver pktio frame with
          | Ok _ -> ()
          | Error e -> failwith ("pktio deliver: " ^ e));
          match Pktio.rx_pop pktio ~nf:1 with
          | None -> failwith "pktio: delivered frame did not arrive"
          | Some (addr, len) ->
            Pktio.transmit pktio ~nf:1 ~addr ~len;
            incr forwarded
        done)
  in
  let wire = Pktio.wire_out pktio in
  let wire_digest = checksum (Bytes.unsafe_to_string (List.nth wire (List.length wire - 1))) in
  let pps = float_of_int rounds /. pktio_dt in
  Printf.printf "%d frames of %dB round-tripped: %8.0f pps, %d drops\n" !forwarded (Bytes.length frame) pps
    (Pktio.drop_count pktio);
  m "pktio.forwarded" (float_of_int !forwarded);
  m "pktio.drops" (float_of_int (Pktio.drop_count pktio));
  m "pktio.wire_checksum" wire_digest;
  m "pktio.pps" pps;

  (* -- Accelerator streaming through a locked cluster TLB bank -- *)
  subheader "Accel ZIP stream (256KB through the cluster TLB)";
  let amem = Physmem.create ~size:(16 * mb) in
  let zip = Accel.create ~kind:Accel.Zip ~threads:16 ~cluster_size:16 in
  let cluster = Option.get (Accel.claim_cluster zip ~nf:1) in
  let tlb = Accel.cluster_tlb zip ~cluster in
  ignore (Tlb.map_region tlb ~vbase:0 ~pbase:0 ~len:(8 * mb) ~writable:true);
  Tlb.lock tlb;
  let zdata = String.concat "" (List.init 12_800 (fun i -> Printf.sprintf "row %06d value=%02x;" i (i land 0xff))) in
  Physmem.write_bytes amem ~pos:0 zdata;
  let written = ref 0 and done_at = ref 0 in
  let ziters = 8 in
  let zdt =
    secs (fun () ->
        for _ = 1 to ziters do
          Accel.reset_timing zip;
          match
            Accel.stream zip ~cluster ~now:0 ~mem:amem ~src:0 ~src_len:(String.length zdata) ~dst:(4 * mb)
              ~f:Accelfn.Lz77.compress
          with
          | Ok (w, d) ->
            written := w;
            done_at := d
          | Error e -> failwith (Accel.stream_error_to_string e)
        done)
  in
  let zmb_s = float_of_int (ziters * String.length zdata) /. 1048576. /. zdt in
  let zdigest = checksum (Physmem.read_bytes amem ~pos:(4 * mb) ~len:!written) in
  Printf.printf "%dB in -> %dB out, %d model cycles, %8.1f MB/s host-side\n" (String.length zdata) !written
    !done_at zmb_s;
  m "accel.stream_in_bytes" (float_of_int (String.length zdata));
  m "accel.stream_out_bytes" (float_of_int !written);
  m "accel.stream_cycles" (float_of_int !done_at);
  m "accel.stream_checksum" zdigest;
  m "accel.stream_mb_s" zmb_s

(* ------------------------------------------------------------------ *)
(* --check BASELINE: the regression gate                               *)
(* ------------------------------------------------------------------ *)

(* Parse the flat { "key": float, ... } format [write_metrics] emits —
   a ~20-line scanner so the gate needs no JSON library in CI. *)
let parse_flat_json path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let len = String.length s in
  let pairs = ref [] in
  let i = ref 0 in
  while !i < len do
    if s.[!i] = '"' then begin
      let j = String.index_from s (!i + 1) '"' in
      let key = String.sub s (!i + 1) (j - !i - 1) in
      let k = ref (j + 1) in
      while !k < len && (s.[!k] = ':' || s.[!k] = ' ') do
        incr k
      done;
      let e = ref !k in
      while
        !e < len && (match s.[!e] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
      do
        incr e
      done;
      if !e > !k then pairs := (key, float_of_string (String.sub s !k (!e - !k))) :: !pairs;
      i := max (!e) (j + 1)
    end
    else incr i
  done;
  List.rev !pairs

(* Every key in the committed baseline must be present in this run and
   within 25% of its baseline value; on top of that, sections carry
   absolute floors: the DMA bulk path must beat the per-byte engine by
   at least 10x, and the VF scheduler must hold its fairness bounds
   (Jain index and worst share error vs configured weights). *)
let check_tolerance = 0.25
let dma_speedup_floor = 10.
let vf_jain_floor = 0.95
let vf_err_ceiling_pct = 5.
let qos_share_floor = 0.9
let qos_victim_p99_ceiling = 2000.

(* The par section's speedup floor only binds when the machine actually
   has >= 4 cores (par.cores) — a 1-core container can still verify the
   determinism digests, it just can't demonstrate scaling. *)
let par_speedup_floor = 2.5

(* S-NIC-mode benign goodput under a 10x SYN flood, relative to the
   attack-free baseline pass. *)
let ddos_goodput_floor = 0.8

(* Goodput with the mid-run tracker-NIC kill + failover, relative to the
   failure-free baseline pass of the same fabric run. *)
let fabric_goodput_floor = 0.9

let section_ran name = only = None || only = Some name

let run_check () =
  match path_after "--check" with
  | None -> ()
  | Some path ->
    let baseline = parse_flat_json path in
    let current = List.rev !metrics in
    let failures = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
    List.iter
      (fun (key, expect) ->
        match List.assoc_opt key current with
        | None -> fail "%s: present in baseline but missing from this run" key
        | Some got ->
          let rel = Float.abs (got -. expect) /. Float.max (Float.abs expect) 1e-9 in
          if rel > check_tolerance then
            fail "%s: %.6f vs baseline %.6f (%.1f%% off, tolerance %.0f%%)" key got expect (100. *. rel)
              (100. *. check_tolerance))
      baseline;
    (if section_ran "datapath" then
       match List.assoc_opt "datapath.dma.speedup_x" current with
       | Some s when s < dma_speedup_floor ->
         fail "datapath.dma.speedup_x: %.1fx is below the %.0fx floor" s dma_speedup_floor
       | Some _ -> ()
       | None -> fail "datapath.dma.speedup_x: missing from this run");
    (if section_ran "vf" then begin
       (match List.assoc_opt "vf.jain_min" current with
       | Some j when j < vf_jain_floor -> fail "vf.jain_min: %.4f is below the %.2f floor" j vf_jain_floor
       | Some _ -> ()
       | None -> fail "vf.jain_min: missing from this run");
       match List.assoc_opt "vf.max_share_err_pct" current with
       | Some e when e > vf_err_ceiling_pct ->
         fail "vf.max_share_err_pct: %.2f%% is above the %.0f%% ceiling" e vf_err_ceiling_pct
       | Some _ -> ()
       | None -> fail "vf.max_share_err_pct: missing from this run"
     end);
    (if section_ran "qos" then begin
       (match List.assoc_opt "qos.share_min" current with
       | Some s when s < qos_share_floor ->
         fail "qos.share_min: %.4f is below the %.2f guaranteed-share floor" s qos_share_floor
       | Some _ -> ()
       | None -> fail "qos.share_min: missing from this run");
       (match List.assoc_opt "qos.victim_p99_steady_cycles" current with
       | Some p when p > qos_victim_p99_ceiling ->
         fail "qos.victim_p99_steady_cycles: %.0f is above the %.0f-cycle SLO ceiling" p qos_victim_p99_ceiling
       | Some _ -> ()
       | None -> fail "qos.victim_p99_steady_cycles: missing from this run");
       match List.assoc_opt "qos.starved_victims" current with
       | Some s when s > 0. -> fail "qos.starved_victims: %.0f victims starved (must be 0)" s
       | Some _ -> ()
       | None -> fail "qos.starved_victims: missing from this run"
     end);
    (if section_ran "ddos" then begin
       (* The event-stream digest is an identity, not a measurement —
          exact match or the attack replay is not the committed one. *)
       (match (List.assoc_opt "ddos.events_digest" baseline, List.assoc_opt "ddos.events_digest" current) with
       | Some expect, Some got when got <> expect ->
         fail "ddos.events_digest: %.0f vs baseline %.0f (digests must match exactly)" got expect
       | _ -> ());
       (match List.assoc_opt "ddos.snic.goodput_ratio" current with
       | Some g when g < ddos_goodput_floor ->
         fail "ddos.snic.goodput_ratio: %.4f is below the %.2f floor" g ddos_goodput_floor
       | Some _ -> ()
       | None -> fail "ddos.snic.goodput_ratio: missing from this run");
       (match List.assoc_opt "ddos.snic.mem_flat" current with
       | Some v when v <> 1. -> fail "ddos.snic.mem_flat: %.0f — defense memory grew (must be 1)" v
       | Some _ -> ()
       | None -> fail "ddos.snic.mem_flat: missing from this run");
       List.iter
         (fun key ->
           match List.assoc_opt key current with
           | Some v when v <> 0. -> fail "%s: %.0f — attacker reached NF memory in S-NIC mode (must be 0)" key v
           | Some _ -> ()
           | None -> fail "%s: missing from this run" key)
         [ "ddos.snic.tampered"; "ddos.snic.key_stolen" ]
     end);
    (if section_ran "fabric" then begin
       (* The event-stream digest is an identity: exact match or the
          benign replay is not the committed one. *)
       (match (List.assoc_opt "fabric.events_digest" baseline, List.assoc_opt "fabric.events_digest" current) with
       | Some expect, Some got when got <> expect ->
         fail "fabric.events_digest: %.0f vs baseline %.0f (digests must match exactly)" got expect
       | _ -> ());
       (match List.assoc_opt "fabric.goodput_ratio" current with
       | Some g when g < fabric_goodput_floor ->
         fail "fabric.goodput_ratio: %.4f is below the %.2f floor" g fabric_goodput_floor
       | Some _ -> ()
       | None -> fail "fabric.goodput_ratio: missing from this run");
       List.iter
         (fun key ->
           match List.assoc_opt key current with
           | Some v when v <> 0. -> fail "%s: %.0f (must be 0)" key v
           | Some _ -> ()
           | None -> fail "%s: missing from this run" key)
         [ "fabric.benign_mac_failures"; "fabric.oracle_snic_violations" ];
       List.iter
         (fun key ->
           match List.assoc_opt key current with
           | Some v when v <> 1. -> fail "%s: %.0f (must be 1)" key v
           | Some _ -> ()
           | None -> fail "%s: missing from this run" key)
         [ "fabric.adversary_all_rejected"; "fabric.fail_closed"; "fabric.failed_over"; "fabric.consistent" ]
     end);
    (if section_ran "par" then begin
       (* Digests are identities, not measurements: the generic 25%
          tolerance band is meaningless for them, so they must match the
          baseline bit for bit. *)
       List.iter
         (fun (key, expect) ->
           let n = String.length key in
           if n > 11 && String.sub key 0 4 = "par." && String.sub key (n - 7) 7 = ".digest" then
             match List.assoc_opt key current with
             | Some got when got <> expect ->
               fail "%s: digest %.0f vs baseline %.0f (digests must match exactly)" key got expect
             | _ -> ())
         baseline;
       List.iter
         (fun key ->
           match List.assoc_opt key current with
           | Some v when v <> 1. -> fail "%s: %.0f — parallel run diverged from sequential (must be 1)" key v
           | Some _ -> ()
           | None -> fail "%s: missing from this run" key)
         [ "par.digest_consistent"; "par.fleet.consistent"; "par.chaos.consistent" ];
       match (List.assoc_opt "par.speedup_4x" current, List.assoc_opt "par.cores" current) with
       | Some s, Some c when c >= 4. && s < par_speedup_floor ->
         fail "par.speedup_4x: %.2fx is below the %.1fx floor (on a %.0f-core host)" s par_speedup_floor c
       | _ -> ()
     end);
    if !failures = [] then
      Printf.printf "\nbench --check: %d baseline metrics within %.0f%%, absolute floors met\n"
        (List.length baseline) (100. *. check_tolerance)
    else begin
      Printf.printf "\nbench --check FAILED against %s:\n" path;
      List.iter (fun f -> Printf.printf "  %s\n" f) (List.rev !failures);
      exit 1
    end

(* ------------------------------------------------------------------ *)
(* Isolation oracle: differential-fuzzing throughput + violation census *)

let oracle_section () =
  header "Isolation oracle (lib/oracle)";
  let ops = if fast then 5_000 else 50_000 in
  Printf.printf "%-12s %10s %10s %10s %12s  violations by class\n" "mode" "ops" "executed" "found" "ops/sec";
  List.iter
    (fun mode ->
      let id = Oracle.Campaign.mode_id mode in
      let t0 = Sys.time () in
      let r = Oracle.Campaign.run ~mode ~ops ~seed () in
      let dt = Sys.time () -. t0 in
      let rate = if dt > 0. then float_of_int ops /. dt else 0. in
      let found = List.length r.Oracle.Campaign.violations in
      let by_class =
        List.filter_map
          (fun (cls, n) -> if n = 0 then None else Some (Printf.sprintf "%s=%d" (Oracle.Refmodel.cls_to_string cls) n))
          (Oracle.Campaign.counts r)
      in
      Printf.printf "%-12s %10d %10d %10d %12.0f  %s\n" id ops r.Oracle.Campaign.executed found rate
        (if by_class = [] then "(clean)" else String.concat " " by_class);
      let m name v = metric (Printf.sprintf "oracle.%s.%s" id name) v in
      m "ops_per_sec" rate;
      m "violations" (float_of_int found);
      List.iter
        (fun (cls, n) -> m (Oracle.Refmodel.cls_to_string cls) (float_of_int n))
        (Oracle.Campaign.counts r))
    Oracle.Campaign.all_modes;
  print_endline "expectation: every commodity mode reports >=1 class; snic stays (clean)"

(* ------------------------------------------------------------------ *)
(* Virtual functions: two-stage scheduler fairness at fleet density *)

let vf_section () =
  header "Virtual functions (lib/vf): two-stage scheduler at fleet density";
  let nics = 64 in
  let vfs_per_nic = 256 in
  (* A heterogeneous rack (shape cycle small, medium, large, medium =
     256/512/1024/512 VF slots) takes nics * 256 tenant vNICs, spread
     round-robin so every NIC serves the same tenant count; weights
     cycle 1,2,4,8 so each NIC hosts a mix of shares. *)
  let sites =
    List.init nics (fun i ->
        { Fleet.Vfplace.nic = i; slots = (Fleet.Node.shape_of_index i).Fleet.Node.vf_slots })
  in
  let vnics =
    List.init (nics * vfs_per_nic) (fun j ->
        { Fleet.Vfplace.tenant = j + 1; weight = [| 1; 2; 4; 8 |].(j / nics mod 4) })
  in
  let assignments =
    match Fleet.Vfplace.pack Fleet.Vfplace.Spread ~sites ~vnics with
    | Ok a -> a
    | Error e -> failwith ("vf_section placement: " ^ e)
  in
  let groups = Fleet.Vfplace.per_nic assignments in
  let cycles = 32 in
  let t0 = Sys.time () in
  let results =
    List.map
      (fun (nic, assigns) ->
        Vf.Scenario.run_nic ~nic ~cycles ~seed
          ~vnics:(List.map (fun (a : Fleet.Vfplace.assignment) -> (a.tenant, a.weight)) assigns)
          ())
      groups
  in
  let secs = Sys.time () -. t0 in
  let sum f = List.fold_left (fun a r -> a + f r) 0 results in
  let pkts = sum (fun (r : Vf.Scenario.nic_result) -> r.scheduled_pkts) in
  let bytes = sum (fun (r : Vf.Scenario.nic_result) -> r.scheduled_bytes) in
  let drops = sum (fun (r : Vf.Scenario.nic_result) -> r.drops) in
  let rounds = sum (fun (r : Vf.Scenario.nic_result) -> r.rounds) in
  let jain_min =
    List.fold_left (fun a (r : Vf.Scenario.nic_result) -> Float.min a r.report.Obs.Fairness.index) infinity results
  in
  let max_err =
    List.fold_left (fun a (r : Vf.Scenario.nic_result) -> Float.max a r.report.Obs.Fairness.max_rel_err) 0. results
  in
  let lat_jain_min =
    List.fold_left
      (fun a (r : Vf.Scenario.nic_result) -> Float.min a r.lat_report.Obs.Fairness.index)
      infinity results
  in
  let pps = if secs > 0. then float_of_int pkts /. secs else 0. in
  (match results with
  | first :: _ -> Printf.printf "first NIC: %s\n" (Vf.Scenario.nic_summary first)
  | [] -> ());
  Printf.printf "%d NICs x %d VFs = %d tenant vNICs, %d cycles each\n" nics vfs_per_nic (nics * vfs_per_nic) cycles;
  Printf.printf "scheduled %d pkts (%d MB) in %.2fs -> %.0f pkts/sec\n" pkts (bytes / 1048576) secs pps;
  Printf.printf "fairness: worst jain %.4f, worst share error %.2f%%, drops %d\n" jain_min (100. *. max_err) drops;
  let m name v = metric ("vf." ^ name) v in
  m "nics" (float_of_int nics);
  m "total_vnics" (float_of_int (nics * vfs_per_nic));
  m "scheduled_pkts" (float_of_int pkts);
  m "scheduled_bytes" (float_of_int bytes);
  m "rounds" (float_of_int rounds);
  m "drops" (float_of_int drops);
  m "jain_min" jain_min;
  m "max_share_err_pct" (100. *. max_err);
  m "lat_jain_min" lat_jain_min;
  m "sched_pps" pps;
  print_endline "expectation: shares track weights within 5% on every NIC (jain >= 0.95), zero drops"

(* ------------------------------------------------------------------ *)
(* QoS: noisy-neighbor protection and self-healing under credit arbitration *)

let qos_section () =
  header "QoS credits (lib/nicsim/qos): noisy neighbor vs latency SLOs";
  let t0 = Sys.time () in
  let r, _sup = Fleet.Chaos.run_qos Fleet.Chaos.default_qos_config in
  let secs = Sys.time () -. t0 in
  let c = Fleet.Chaos.cycles_str in
  Printf.printf "protected run: victim p99 %s (steady %s), unprotected baseline p99 %s\n"
    (c r.Fleet.Chaos.q_victim_p99) (c r.Fleet.Chaos.q_victim_p99_steady) (c r.Fleet.Chaos.q_unprotected_p99);
  Printf.printf "self-healing: %d quarantine(s), %d readmission(s), aggressor throttled %d times\n"
    r.Fleet.Chaos.q_quarantines r.Fleet.Chaos.q_readmissions r.Fleet.Chaos.q_aggressor_throttles;
  Printf.printf "fairness: share_min %.4f, starved %d, latency jain %.4f (%.2fs)\n" r.Fleet.Chaos.q_share_min
    r.Fleet.Chaos.q_starved r.Fleet.Chaos.q_lat_fairness.Obs.Fairness.index secs;
  let m name v = metric ("qos." ^ name) v in
  let mq name v = match v with None -> () | Some v -> m name v in
  mq "victim_p99_cycles" r.Fleet.Chaos.q_victim_p99;
  mq "victim_p99_steady_cycles" r.Fleet.Chaos.q_victim_p99_steady;
  mq "unprotected_p99_cycles" r.Fleet.Chaos.q_unprotected_p99;
  (match (r.Fleet.Chaos.q_victim_p99_steady, r.Fleet.Chaos.q_unprotected_p99) with
  | Some p, Some u when p > 0. -> m "protection_x" (u /. p)
  | _ -> ());
  m "share_min" r.Fleet.Chaos.q_share_min;
  m "starved_victims" (float_of_int r.Fleet.Chaos.q_starved);
  m "quarantines" (float_of_int r.Fleet.Chaos.q_quarantines);
  m "readmissions" (float_of_int r.Fleet.Chaos.q_readmissions);
  m "aggressor_throttles" (float_of_int r.Fleet.Chaos.q_aggressor_throttles);
  m "slo_violations" (float_of_int r.Fleet.Chaos.q_slo_violations);
  m "lat_jain" r.Fleet.Chaos.q_lat_fairness.Obs.Fairness.index;
  (* Zero-slack variant: capacity = sum of guarantees, so every spare
     credit a victim gets comes from the epoch-rollover donation path.
     Nothing may starve even with no structural headroom. *)
  let rs, _ = Fleet.Chaos.run_qos { Fleet.Chaos.default_qos_config with Fleet.Chaos.q_starve = true } in
  Printf.printf "zero-slack variant: share_min %.4f, starved %d, borrowed %d credits\n"
    rs.Fleet.Chaos.q_share_min rs.Fleet.Chaos.q_starved
    (List.fold_left (fun a (t : Fleet.Chaos.qos_tenant) -> a + t.Fleet.Chaos.qt_borrowed) 0
       rs.Fleet.Chaos.q_outcomes);
  m "starve.share_min" rs.Fleet.Chaos.q_share_min;
  m "starve.starved_victims" (float_of_int rs.Fleet.Chaos.q_starved);
  print_endline
    "expectation: steady-state victim p99 back under the 2k-cycle SLO, share_min >= 0.9, zero starvation"

(* ------------------------------------------------------------------ *)
(* DDoS: CuckooGuard SYN proxy + cuckoo whitelist across the five modes *)

let ddos_section () =
  header "DDoS defense (lib/nf cuckoo/syn_proxy): SYN flood across protection modes";
  let t0 = Sys.time () in
  let config = { Fleet.Chaos.default_ddos_config with Fleet.Chaos.d_seed = seed } in
  let r = Fleet.Chaos.run_ddos config in
  let secs = Sys.time () -. t0 in
  print_string (Fleet.Chaos.ddos_summary r);
  Printf.printf "(%.2fs)\n" secs;
  metric "ddos.events_digest" (float_of_int r.Fleet.Chaos.d_events_digest);
  metric "ddos.benign_pkts" (float_of_int r.Fleet.Chaos.d_benign_pkts);
  metric "ddos.attack_pkts" (float_of_int r.Fleet.Chaos.d_attack_pkts);
  List.iter
    (fun (mr : Fleet.Chaos.ddos_mode_report) ->
      let m name v = metric (Printf.sprintf "ddos.%s.%s" (Fleet.Chaos.ddos_mode_id mr.Fleet.Chaos.dm_mode) name) v in
      let flag name b = m name (if b then 1. else 0.) in
      m "goodput_ratio" mr.Fleet.Chaos.dm_goodput_ratio;
      m "unprotected_ratio" mr.Fleet.Chaos.dm_unprotected_ratio;
      m "attack_dropped" (float_of_int mr.Fleet.Chaos.dm_attack_dropped);
      m "benign_dropped" (float_of_int mr.Fleet.Chaos.dm_benign_dropped);
      m "forged_admits" (float_of_int mr.Fleet.Chaos.dm_forged_admits);
      m "corrupt_flips" (float_of_int mr.Fleet.Chaos.dm_corrupt_flips);
      m "whitelist_load" mr.Fleet.Chaos.dm_whitelist_load;
      m "mem_reserved_bytes" (float_of_int mr.Fleet.Chaos.dm_mem_reserved_bytes);
      m "mem_peak_bytes" (float_of_int mr.Fleet.Chaos.dm_mem_peak_bytes);
      flag "mem_flat" mr.Fleet.Chaos.dm_mem_flat;
      flag "tampered" mr.Fleet.Chaos.dm_tampered;
      flag "key_stolen" mr.Fleet.Chaos.dm_key_stolen;
      m "unprotected_mem_wanted_bytes" (float_of_int mr.Fleet.Chaos.dm_unprotected_mem_wanted_bytes))
    r.Fleet.Chaos.d_mode_reports;
  print_endline
    "expectation: snic holds >= 0.8x benign goodput with flat defense memory; unmediated modes collapse"

(* ------------------------------------------------------------------ *)
(* Fabric: attested NIC-to-NIC channels + cross-NIC chain failover *)

let fabric_section () =
  header "Attested fabric (lib/fabric): cross-NIC CuckooGuard chain + failover";
  let t0 = Sys.time () in
  let config = { Fleet.Chaos.default_fabric_config with Fleet.Chaos.f_seed = seed } in
  let r = Fleet.Chaos.run_fabric config in
  let secs = Sys.time () -. t0 in
  print_string (Fleet.Chaos.fabric_summary r);
  Printf.printf "(%.2fs)\n" secs;
  let m name v = metric ("fabric." ^ name) v in
  let flag name b = m name (if b then 1. else 0.) in
  m "events_digest" (float_of_int r.Fleet.Chaos.f_events_digest);
  m "benign_pkts" (float_of_int r.Fleet.Chaos.f_benign_pkts);
  m "handshakes" (float_of_int r.Fleet.Chaos.f_handshakes);
  m "hops" (float_of_int r.Fleet.Chaos.f_hops);
  m "admitted" (float_of_int r.Fleet.Chaos.f_admitted);
  m "goodput_ratio" r.Fleet.Chaos.f_goodput_ratio;
  m "benign_mac_failures" (float_of_int r.Fleet.Chaos.f_benign_mac_failures);
  m "replay_rejected" (float_of_int r.Fleet.Chaos.f_replay_rejected);
  m "stale_rejected" (float_of_int r.Fleet.Chaos.f_stale_rejected);
  m "tamper_rejected" (float_of_int r.Fleet.Chaos.f_tamper_rejected);
  flag "adversary_all_rejected"
    (r.Fleet.Chaos.f_replay_rejected = r.Fleet.Chaos.f_replay_sent
    && r.Fleet.Chaos.f_stale_rejected = r.Fleet.Chaos.f_stale_sent
    && r.Fleet.Chaos.f_tamper_rejected = r.Fleet.Chaos.f_tamper_sent);
  m "state_replayed" (float_of_int r.Fleet.Chaos.f_state_replayed);
  m "state_recovered" (float_of_int r.Fleet.Chaos.f_state_recovered);
  flag "failed_over" r.Fleet.Chaos.f_failed_over;
  flag "fail_closed" (Fleet.Chaos.fabric_fail_closed r);
  (* The same run at 1 and 4 domains must produce the same summary —
     the rack boot is the only fanned-out stage and it is seeded. *)
  let digest domains =
    Par.Digest.strings [ Fleet.Chaos.fabric_summary (Fleet.Chaos.run_fabric_with ~domains config) ]
  in
  let d1 = digest 1 and d4 = digest 4 in
  Printf.printf "summary digest: %d (1 domain) vs %d (4 domains) — %s\n" d1 d4
    (if d1 = d4 then "identical" else "DIVERGED");
  flag "consistent" (d1 = d4);
  (* The differential oracle with channel ops in the alphabet: S-NIC
     mode must stay clean with attested channels in play. *)
  let ops = if fast then 4_000 else 20_000 in
  let o = Oracle.Campaign.run ~fabric:true ~mode:Nicsim.Machine.Snic ~ops ~seed () in
  Printf.printf "oracle snic + chan ops: %d ops, %d executed, %d violations\n" ops o.Oracle.Campaign.executed
    (List.length o.Oracle.Campaign.violations);
  m "oracle_snic_violations" (float_of_int (List.length o.Oracle.Campaign.violations));
  print_endline
    "expectation: zero benign MAC failures, every forged/replayed frame bounced, goodput unchanged by failover"

(* ------------------------------------------------------------------ *)
(* Parallel shards: domain scaling curve + cross-domain determinism *)

let par_section () =
  header "Parallel shards (lib/par): scaling curve + determinism digests";
  let cores = Par.Engine.available_domains () in
  let shards = 8 in
  let ops = if fast then 2_000 else 10_000 in
  let mode = match Oracle.Campaign.mode_of_id "se-s" with Some m -> m | None -> assert false in
  let m name v = metric ("par." ^ name) v in
  (* One oracle campaign per shard, shard seeds derived from --seed;
     the same workload at every fan-out, so the digest of the reports
     (merged in shard order) must be identical at every curve point. *)
  let curve = List.filter (fun d -> d <= max_domains) [ 1; 2; 4; 8 ] in
  Printf.printf "%d shards x %d ops each (oracle %s), %d core(s) available\n" shards ops
    (Oracle.Campaign.mode_id mode) cores;
  Printf.printf "%8s %12s %12s %10s %12s\n" "domains" "ops/sec" "speedup" "efficiency" "digest";
  let points =
    List.map
      (fun domains ->
        let t0 = Unix.gettimeofday () in
        let reports = Oracle.Campaign.run_sharded ~domains ~mode ~ops ~seed ~shards () in
        let wall = Unix.gettimeofday () -. t0 in
        let digest = Par.Digest.strings (Array.to_list (Array.map Oracle.Campaign.to_string reports)) in
        let rate = if wall > 0. then float_of_int (shards * ops) /. wall else 0. in
        (domains, rate, digest, reports))
      curve
  in
  let base_rate = match points with (_, r, _, _) :: _ -> r | [] -> 0. in
  List.iter
    (fun (domains, rate, digest, _) ->
      let speedup = if base_rate > 0. then rate /. base_rate else 0. in
      let efficiency = speedup /. float_of_int domains in
      Printf.printf "%8d %12.0f %11.2fx %9.0f%% %12d\n" domains rate speedup (100. *. efficiency) digest;
      m (Printf.sprintf "domains%d.digest" domains) (float_of_int digest);
      m (Printf.sprintf "domains%d.ops_per_sec" domains) rate;
      m (Printf.sprintf "domains%d.efficiency" domains) efficiency;
      if domains = 4 then m "speedup_4x" speedup)
    points;
  let digests = List.map (fun (_, _, d, _) -> d) points in
  let consistent = List.for_all (fun d -> d = List.hd digests) digests in
  let reports1 = match points with (_, _, _, r) :: _ -> r | [] -> [||] in
  let executed =
    Array.fold_left (fun a (r : Oracle.Campaign.report) -> a + r.Oracle.Campaign.executed) 0 reports1
  in
  let violations =
    Array.fold_left
      (fun a (r : Oracle.Campaign.report) -> a + List.length r.Oracle.Campaign.violations)
      0 reports1
  in
  m "shards" (float_of_int shards);
  m "ops_per_shard" (float_of_int ops);
  m "executed_total" (float_of_int executed);
  m "violations_total" (float_of_int violations);
  m "digest_consistent" (if consistent then 1. else 0.);
  m "cores" (float_of_int cores);
  (* Fleet and chaos shard fan-outs: parallel (2 domains) vs sequential
     (1 domain) digests over the same derived-seed shard set. *)
  let fleet_digest domains =
    let config =
      { Fleet.Scenario.default_config with Fleet.Scenario.seed; n_nics = 8; n_tenants = 16; rounds = 2; packets_per_round = 200 }
    in
    let rs = Fleet.Scenario.run_many ~domains ~shards:4 config in
    Par.Digest.strings (Array.to_list (Array.map (fun (r, _) -> Fleet.Scenario.summary r) rs))
  in
  let chaos_digest domains =
    let config =
      { Fleet.Chaos.default_config with Fleet.Chaos.seed; n_nics = 4; n_tenants = 8; rounds = 2; packets_per_round = 100 }
    in
    let rs = Fleet.Chaos.run_many ~domains ~shards:2 config in
    Par.Digest.strings (Array.to_list (Array.map (fun (r, _) -> Fleet.Chaos.summary r) rs))
  in
  let f1 = fleet_digest 1 and f2 = fleet_digest 2 in
  let c1 = chaos_digest 1 and c2 = chaos_digest 2 in
  Printf.printf "fleet 4-shard digest: %d (1 domain) vs %d (2 domains) — %s\n" f1 f2
    (if f1 = f2 then "identical" else "DIVERGED");
  Printf.printf "chaos 2-shard digest: %d (1 domain) vs %d (2 domains) — %s\n" c1 c2
    (if c1 = c2 then "identical" else "DIVERGED");
  m "fleet.digest" (float_of_int f1);
  m "fleet.consistent" (if f1 = f2 then 1. else 0.);
  m "chaos.digest" (float_of_int c1);
  m "chaos.consistent" (if c1 = c2 then 1. else 0.);
  if cores < 4 then
    Printf.printf "note: %d core(s) — the %.1fx speedup floor is waived (digests still checked)\n" cores
      par_speedup_floor;
  print_endline "expectation: identical digests at every fan-out; >= 2.5x at 4 domains on a 4-core host"

let main () =
  print_endline "S-NIC evaluation reproduction (EuroSys'24) — all tables and figures";
  if fast then print_endline "[--fast: reduced Figure 5 sweeps]";
  table1 ();
  table2 ();
  table3 ();
  table4 ();
  table5 ();
  overhead_and_tco ();
  offload_motivation ();
  table6 ();
  table7 ();
  table8 ();
  figure5a ();
  figure5b ();
  figure6 ();
  figure7 ();
  figure8 ();
  attacks_section ();
  header "Ablations";
  ablation_bus ();
  ablation_cache ();
  ablation_isolation_decomposition ();
  ablation_pages ();
  ablation_schedulers ();
  ablation_underutilization ();
  ablation_denylist ();
  ablation_translation ();
  fleet_section ();
  chaos_section ();
  datapath_section ();
  oracle_section ();
  vf_section ();
  qos_section ();
  ddos_section ();
  fabric_section ();
  par_section ();
  microbenches ();
  write_metrics ();
  run_check ();
  print_endline "\nAll experiments complete. See EXPERIMENTS.md for paper-vs-measured notes."

let () =
  match only with
  | Some "datapath" ->
    print_endline "S-NIC datapath bench (bulk fast paths vs per-byte baseline)";
    datapath_section ();
    write_metrics ();
    run_check ()
  | Some "oracle" ->
    print_endline "S-NIC isolation oracle bench (differential fuzzing throughput)";
    oracle_section ();
    write_metrics ()
  | Some "vf" ->
    print_endline "S-NIC virtual-function bench (two-stage scheduler fairness at density)";
    vf_section ();
    write_metrics ();
    run_check ()
  | Some "qos" ->
    print_endline "S-NIC QoS bench (credit arbitration, SLOs, noisy-neighbor self-healing)";
    qos_section ();
    write_metrics ();
    run_check ()
  | Some "par" ->
    print_endline "S-NIC parallel-shard bench (domain scaling + cross-domain determinism)";
    par_section ();
    write_metrics ();
    run_check ()
  | Some "ddos" ->
    print_endline "S-NIC DDoS bench (CuckooGuard SYN proxy across protection modes)";
    ddos_section ();
    write_metrics ();
    run_check ()
  | Some "fabric" ->
    print_endline "S-NIC fabric bench (attested NIC-to-NIC channels, cross-NIC chain failover)";
    fabric_section ();
    write_metrics ();
    run_check ()
  | Some other ->
    Printf.eprintf "unknown --only section: %s\n" other;
    Printf.eprintf "Usage: bench [--fast] [--only SECTION] [--domains N] [--json PATH] [--check BASELINE]\n";
    Printf.eprintf "  valid sections: datapath, oracle, vf, qos, par, ddos, fabric\n";
    exit 124
  | None -> main ()
