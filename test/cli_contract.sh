#!/bin/sh
# CLI contract: every surfaced subcommand must
#   - exit 0 on --help,
#   - exit non-zero AND print usage on an unknown flag,
# and the top-level command must reject unknown subcommands the same
# way. cmdliner's conventional error status is 124; we require it
# exactly so accidental uncaught exceptions (status 2/125) fail here.
#
# The bench binary follows the same convention for section selection:
# an unknown --only section is a 124 + usage error, not a silent no-op.
#
# Usage: cli_contract.sh /path/to/snic_cli.exe [/path/to/bench.exe]
set -e

cli="$1"
bench="$2"
[ -x "$cli" ] || { echo "cli_contract: no executable at '$cli'" >&2; exit 2; }

fail() { echo "cli_contract FAIL: $*" >&2; exit 1; }

check_help() {
  # $@ = subcommand path
  "$cli" "$@" --help > /dev/null 2>&1 || fail "'$* --help' exited non-zero"
}

check_bad_flag() {
  set +e
  err=$("$cli" "$@" --definitely-not-a-flag 2>&1 > /dev/null)
  status=$?
  set -e
  [ "$status" -eq 124 ] || fail "'$* --definitely-not-a-flag' exited $status, want 124"
  case "$err" in
    *Usage:*) : ;;
    *) fail "'$* --definitely-not-a-flag' printed no usage line" ;;
  esac
}

for sub in fleet chaos trace datapath oracle vf qos ddos fabric attacks; do
  check_help "$sub"
  check_bad_flag "$sub"
done

# --domains / --shards take a positive integer; zero and non-numeric
# values are rejected at parse time (cmdliner conv), so 124 + usage —
# not a crash and not our status-2 validation path.
check_bad_domains() {
  # $1 = subcommand, $2 = flag value
  set +e
  err=$("$cli" "$1" --domains "$2" 2>&1 > /dev/null)
  status=$?
  set -e
  [ "$status" -eq 124 ] || fail "'$1 --domains $2' exited $status, want 124"
  case "$err" in
    *Usage:*) : ;;
    *) fail "'$1 --domains $2' printed no usage line" ;;
  esac
}

for sub in fleet chaos oracle; do
  check_bad_domains "$sub" 0
  check_bad_domains "$sub" abc
  check_bad_domains "$sub" -3
done

check_help
check_bad_flag

# Unknown subcommand: non-zero + usage.
set +e
err=$("$cli" no-such-subcommand 2>&1 > /dev/null)
status=$?
set -e
[ "$status" -eq 124 ] || fail "unknown subcommand exited $status, want 124"
case "$err" in
  *Usage:*) : ;;
  *) fail "unknown subcommand printed no usage line" ;;
esac

# oracle-specific argument validation (our own checks, not cmdliner's):
# missing --mode and out-of-range --slots are status-2 errors.
set +e
"$cli" oracle > /dev/null 2>&1
[ $? -eq 2 ] || fail "'oracle' without --mode should exit 2"
"$cli" oracle --mode snic --slots 99 > /dev/null 2>&1
[ $? -eq 2 ] || fail "'oracle --slots 99' should exit 2"

# vf-specific validation: zero NICs, zero VFs and an out-of-range VF
# count are status-2 errors from our checks, not cmdliner's.
"$cli" vf --nics 0 > /dev/null 2>&1
[ $? -eq 2 ] || fail "'vf --nics 0' should exit 2"
"$cli" vf --vfs 0 > /dev/null 2>&1
[ $? -eq 2 ] || fail "'vf --vfs 0' should exit 2"
"$cli" vf --vfs 5000 > /dev/null 2>&1
[ $? -eq 2 ] || fail "'vf --vfs 5000' should exit 2"

# qos-specific validation: a scenario needs an aggressor plus at least
# one victim, and the load/SLO knobs must be positive.
"$cli" qos --tenants 1 > /dev/null 2>&1
[ $? -eq 2 ] || fail "'qos --tenants 1' should exit 2"
"$cli" qos --rounds 0 > /dev/null 2>&1
[ $? -eq 2 ] || fail "'qos --rounds 0' should exit 2"
"$cli" qos --slo 0 > /dev/null 2>&1
[ $? -eq 2 ] || fail "'qos --slo 0' should exit 2"

# ddos-specific validation: at least one benign flow, a positive attack
# factor and a sane whitelist size are status-2 errors from our checks.
"$cli" ddos --flows 0 > /dev/null 2>&1
[ $? -eq 2 ] || fail "'ddos --flows 0' should exit 2"
"$cli" ddos --factor 0 > /dev/null 2>&1
[ $? -eq 2 ] || fail "'ddos --factor 0' should exit 2"
"$cli" ddos --log2-buckets 99 > /dev/null 2>&1
[ $? -eq 2 ] || fail "'ddos --log2-buckets 99' should exit 2"

# fabric-specific validation: the chain needs three NICs, the receive
# window must fit the RFC 4303-style bitmap, and --metrics cannot
# combine with sharding (one sink per run).
"$cli" fabric --nics 2 > /dev/null 2>&1
[ $? -eq 2 ] || fail "'fabric --nics 2' should exit 2"
"$cli" fabric --window 63 > /dev/null 2>&1
[ $? -eq 2 ] || fail "'fabric --window 63' should exit 2"
"$cli" fabric --flows 0 > /dev/null 2>&1
[ $? -eq 2 ] || fail "'fabric --flows 0' should exit 2"
"$cli" fabric --min-goodput 1.5 > /dev/null 2>&1
[ $? -eq 2 ] || fail "'fabric --min-goodput 1.5' should exit 2"
"$cli" fabric --shards 2 --metrics /tmp/fab.prom > /dev/null 2>&1
[ $? -eq 2 ] || fail "'fabric --shards 2 --metrics' should exit 2"
set -e

# An unknown NF short name anywhere a command takes one is a cmdliner
# conv error (124 + usage) that lists the valid names, driven by
# Nf.Registry.find's descriptive Invalid_argument.
set +e
err=$("$cli" ipc --nf NOPE 2>&1 > /dev/null)
status=$?
set -e
[ "$status" -eq 124 ] || fail "'ipc --nf NOPE' exited $status, want 124"
case "$err" in
  *Usage:*) : ;;
  *) fail "'ipc --nf NOPE' printed no usage line" ;;
esac
# cmdliner re-wraps the message, so match the parts, not the phrase.
case "$err" in
  *"valid short"*SYNP*) : ;;
  *) fail "'ipc --nf NOPE' error does not list the valid NF short names" ;;
esac

# bench --only: unknown sections are 124 + usage, known sections are
# listed in the message (kept in sync with bench/main.ml's dispatch).
if [ -n "$bench" ]; then
  [ -x "$bench" ] || fail "no bench executable at '$bench'"
  set +e
  err=$("$bench" --only no-such-section 2>&1 > /dev/null)
  status=$?
  set -e
  [ "$status" -eq 124 ] || fail "'bench --only no-such-section' exited $status, want 124"
  case "$err" in
    *Usage:*) : ;;
    *) fail "'bench --only no-such-section' printed no usage line" ;;
  esac
  case "$err" in
    *qos*) : ;;
    *) fail "'bench --only' usage does not list the qos section" ;;
  esac
  case "$err" in
    *par*) : ;;
    *) fail "'bench --only' usage does not list the par section" ;;
  esac
  case "$err" in
    *ddos*) : ;;
    *) fail "'bench --only' usage does not list the ddos section" ;;
  esac
  case "$err" in
    *fabric*) : ;;
    *) fail "'bench --only' usage does not list the fabric section" ;;
  esac

  # bench --domains follows the same convention: zero or non-numeric
  # values are 124 + usage before any section runs.
  for v in 0 abc; do
    set +e
    err=$("$bench" --only par --domains "$v" 2>&1 > /dev/null)
    status=$?
    set -e
    [ "$status" -eq 124 ] || fail "'bench --domains $v' exited $status, want 124"
    case "$err" in
      *Usage:*) : ;;
      *) fail "'bench --domains $v' printed no usage line" ;;
    esac
  done
fi

echo "cli contract holds (fleet chaos trace datapath oracle vf qos ddos fabric attacks; --domains; --nf; bench --only)"
