(* CuckooGuard: the cuckoo-filter flow tracker, the SYN-cookie split
   proxy, the adversarial traffic generators and the end-to-end ddos
   chaos scenario.  The qcheck properties pin the filter's advertised
   bounds (no false negatives, bounded false positives, load factor and
   occupancy never past capacity, memory flat); the unit tests pin the
   cookie protocol's round trip and rejection edges; the determinism
   tests diff generator digests across seeds. *)

let tuple ~a ~b ~port =
  Net.Five_tuple.make
    ~src_ip:(Net.Ipv4_addr.of_octets 10 a b 1)
    ~dst_ip:(Net.Ipv4_addr.of_octets 203 0 113 10)
    ~proto:6 ~src_port:port ~dst_port:443

let distinct_tuples n =
  List.init n (fun i -> tuple ~a:(i lsr 8 land 0xff) ~b:(i land 0xff) ~port:(1024 + (i lsr 16)))

(* ---------- Cuckoo filter ---------- *)

let test_cuckoo_insert_mem_remove () =
  let t = Nf.Cuckoo.create ~fp_bits:12 ~log2_buckets:6 () in
  let f1 = tuple ~a:1 ~b:1 ~port:1024 and f2 = tuple ~a:2 ~b:2 ~port:2048 in
  Alcotest.(check bool) "absent before" false (Nf.Cuckoo.mem t f1);
  Alcotest.(check bool) "insert" true (Nf.Cuckoo.insert t f1);
  Alcotest.(check bool) "present" true (Nf.Cuckoo.mem t f1);
  Alcotest.(check bool) "other absent" false (Nf.Cuckoo.mem t f2);
  Alcotest.(check bool) "remove" true (Nf.Cuckoo.remove t f1);
  Alcotest.(check bool) "absent after" false (Nf.Cuckoo.mem t f1);
  Alcotest.(check bool) "remove of absent" false (Nf.Cuckoo.remove t f2);
  Alcotest.(check int) "occupancy back to 0" 0 (Nf.Cuckoo.occupancy t)

let test_cuckoo_validation () =
  Alcotest.check_raises "fp_bits too small" (Invalid_argument "Cuckoo.create: fp_bits must be in [2, 30]")
    (fun () -> ignore (Nf.Cuckoo.create ~fp_bits:1 ~log2_buckets:4 ()));
  Alcotest.check_raises "log2_buckets too big"
    (Invalid_argument "Cuckoo.create: log2_buckets must be in [1, 28]") (fun () ->
      ignore (Nf.Cuckoo.create ~fp_bits:12 ~log2_buckets:29 ()))

(* No false negatives: every inserted flow is found (until removed). *)
let prop_cuckoo_no_false_negatives =
  QCheck.Test.make ~name:"cuckoo: inserted flows are always found" ~count:50
    QCheck.(small_nat)
    (fun salt ->
      let t = Nf.Cuckoo.create ~fp_bits:12 ~log2_buckets:7 () in
      let flows =
        List.init 100 (fun i -> tuple ~a:(salt land 0xff) ~b:(i land 0xff) ~port:(1024 + i + (salt * 7)))
      in
      let inserted = List.filter (Nf.Cuckoo.insert t) flows in
      List.for_all (Nf.Cuckoo.mem t) inserted)

(* Bounded false positives: with 12-bit fingerprints a lookup probes 8
   slots, so the FP rate at 50% load is ~8 * 0.5 / 2^12 ~ 0.1%.  Pin a
   20x-slack ceiling of 2%. *)
let prop_cuckoo_false_positive_bound =
  QCheck.Test.make ~name:"cuckoo: false-positive rate bounded at half load" ~count:20
    QCheck.(small_nat)
    (fun salt ->
      let t = Nf.Cuckoo.create ~seed:(salt + 1) ~fp_bits:12 ~log2_buckets:7 () in
      (* 256 inserts into 512 slots: 50% load. *)
      List.iter (fun f -> ignore (Nf.Cuckoo.insert t f)) (distinct_tuples 256);
      let probes = 2000 in
      let fp = ref 0 in
      for i = 0 to probes - 1 do
        (* Disjoint from [distinct_tuples]: different dst port range. *)
        let f =
          Net.Five_tuple.make
            ~src_ip:(Net.Ipv4_addr.of_octets 10 (i lsr 8 land 0xff) (i land 0xff) 7)
            ~dst_ip:(Net.Ipv4_addr.of_octets 203 0 113 10)
            ~proto:6 ~src_port:(5000 + (salt land 0xff)) ~dst_port:8080
        in
        if Nf.Cuckoo.mem t f then incr fp
      done;
      float_of_int !fp /. float_of_int probes <= 0.02)

(* Occupancy and load factor never pass capacity, memory never grows:
   overfilling by 2x must saturate (rejections), not expand. *)
let prop_cuckoo_saturation_bounds =
  QCheck.Test.make ~name:"cuckoo: overfill saturates within fixed memory" ~count:10
    QCheck.(small_nat)
    (fun salt ->
      let t = Nf.Cuckoo.create ~seed:(salt + 17) ~fp_bits:12 ~log2_buckets:4 () in
      let cap = Nf.Cuckoo.capacity t in
      let mem0 = Nf.Cuckoo.memory_bytes t in
      List.iter (fun f -> ignore (Nf.Cuckoo.insert t f)) (distinct_tuples (2 * cap));
      Nf.Cuckoo.occupancy t <= cap
      && Nf.Cuckoo.load_factor t <= 1.0
      && Nf.Cuckoo.load_factor t >= 0.9
      && Nf.Cuckoo.rejected t > 0
      && Nf.Cuckoo.memory_bytes t = mem0)

let test_cuckoo_memory_bytes () =
  let t = Nf.Cuckoo.create ~fp_bits:12 ~log2_buckets:14 () in
  (* 2^14 buckets x 4 slots x 2 B/fingerprint = 128 KiB, the registry's
     full-scale CKF reservation. *)
  Alcotest.(check int) "128 KiB" (128 * 1024) (Nf.Cuckoo.memory_bytes t);
  Alcotest.(check int) "capacity" (4 * 16384) (Nf.Cuckoo.capacity t)

(* ---------- SYN-cookie split proxy ---------- *)

let proxy ?(key = "test-key") () = Nf.Syn_proxy.create ~fp_bits:12 ~log2_buckets:6 ~key ()

let test_cookie_round_trip () =
  let p = proxy () in
  let f = tuple ~a:1 ~b:2 ~port:4242 in
  let c = Nf.Syn_proxy.cookie p f in
  Alcotest.(check int) "cookie is 8 bytes hex" 16 (String.length c);
  Alcotest.(check bool) "validate(generate) = true" true (Nf.Syn_proxy.validate p f c);
  Alcotest.(check bool) "other flow rejects it" false (Nf.Syn_proxy.validate p (tuple ~a:9 ~b:9 ~port:4242) c)

let test_cookie_wrong_key () =
  let p1 = proxy ~key:"key-one" () and p2 = proxy ~key:"key-two" () in
  let f = tuple ~a:3 ~b:4 ~port:5555 in
  Alcotest.(check bool) "wrong key rejects" false (Nf.Syn_proxy.validate p2 f (Nf.Syn_proxy.cookie p1 f))

let test_cookie_epoch_grace () =
  let p = proxy () in
  let f = tuple ~a:5 ~b:6 ~port:6666 in
  let c = Nf.Syn_proxy.cookie p f in
  Nf.Syn_proxy.advance_epoch p;
  Alcotest.(check bool) "previous epoch still valid" true (Nf.Syn_proxy.validate p f c);
  Nf.Syn_proxy.advance_epoch p;
  Alcotest.(check bool) "stale cookie rejected" false (Nf.Syn_proxy.validate p f c)

let pkt ?(proto = Net.Packet.Tcp) flow payload =
  Net.Packet.make ~src_ip:flow.Net.Five_tuple.src_ip ~dst_ip:flow.Net.Five_tuple.dst_ip ~proto
    ~src_port:flow.Net.Five_tuple.src_port ~dst_port:flow.Net.Five_tuple.dst_port payload

let test_proxy_handshake_protocol () =
  let p = proxy () in
  let nf = Nf.Syn_proxy.nf p in
  let f = tuple ~a:7 ~b:8 ~port:7777 in
  (* Data before any handshake: dropped. *)
  (match nf.Nf.Types.process (pkt f "payload") with
  | Nf.Types.Drop "no-handshake" -> ()
  | _ -> Alcotest.fail "data before handshake must drop");
  (* SYN: challenged (dropped), zero state kept. *)
  (match nf.Nf.Types.process (pkt f Nf.Syn_proxy.syn_payload) with
  | Nf.Types.Drop reason ->
    Alcotest.(check bool) "challenge carries the cookie" true
      (String.length reason > 20 && String.sub reason 0 21 = "syn-cookie-challenge:")
  | Nf.Types.Forward _ -> Alcotest.fail "SYN must be challenged");
  Alcotest.(check int) "still nothing whitelisted" 0 (Nf.Cuckoo.occupancy (Nf.Syn_proxy.filter p));
  (* Garbage cookie: rejected. *)
  (match nf.Nf.Types.process (pkt f (Nf.Syn_proxy.ack_prefix ^ "0000000000000000")) with
  | Nf.Types.Drop "bad-cookie" -> ()
  | _ -> Alcotest.fail "bad cookie must drop");
  (* Valid echo: admitted; data then flows. *)
  (match nf.Nf.Types.process (pkt f (Nf.Syn_proxy.ack_payload p f)) with
  | Nf.Types.Forward _ -> ()
  | Nf.Types.Drop r -> Alcotest.fail ("valid cookie dropped: " ^ r));
  (match nf.Nf.Types.process (pkt f "payload") with
  | Nf.Types.Forward _ -> ()
  | Nf.Types.Drop r -> Alcotest.fail ("admitted data dropped: " ^ r));
  (* UDP is not the proxy's problem. *)
  (match nf.Nf.Types.process (pkt ~proto:Net.Packet.Udp f "dns") with
  | Nf.Types.Forward _ -> ()
  | Nf.Types.Drop _ -> Alcotest.fail "UDP must pass through");
  Alcotest.(check int) "one challenge" 1 (Nf.Syn_proxy.challenges p);
  Alcotest.(check int) "one admit" 1 (Nf.Syn_proxy.admitted p);
  Alcotest.(check int) "one bad cookie" 1 (Nf.Syn_proxy.bad_cookies p);
  Alcotest.(check int) "one no-handshake" 1 (Nf.Syn_proxy.no_handshake p)

let test_proxy_memory_flat () =
  let p = proxy () in
  let nf = Nf.Syn_proxy.nf p in
  let m0 = Nf.Syn_proxy.memory_bytes p in
  List.iter
    (fun f ->
      ignore (nf.Nf.Types.process (pkt f Nf.Syn_proxy.syn_payload));
      ignore (nf.Nf.Types.process (pkt f (Nf.Syn_proxy.ack_payload p f))))
    (distinct_tuples 1000);
  Alcotest.(check int) "memory flat after 1000 handshakes" m0 (Nf.Syn_proxy.memory_bytes p)

(* ---------- Registry ---------- *)

let test_registry_ddos_pair () =
  let ckf = Nf.Registry.find "CKF" and synp = Nf.Registry.find "SYNP" in
  let run (spec : Nf.Registry.spec) =
    let nf = spec.build ~scale:0.01 () in
    List.iter (fun f -> ignore (nf.Nf.Types.process (pkt f "x"))) (distinct_tuples 50)
  in
  run ckf;
  run synp;
  Alcotest.(check string) "CKF name" "CKF" ckf.short;
  Alcotest.(check string) "SYNP name" "SYNP" synp.short

(* ---------- Attack generators: determinism and shape ---------- *)

let gens =
  [
    ( "syn_flood",
      fun rng f -> Trace.Attackgen.syn_flood rng ~benign_flows:40 ~attack_factor:5 ~packets_per_flow:3 ~f );
    ("spoofed_storm", fun rng f -> Trace.Attackgen.spoofed_storm rng ~sources:500 ~f);
    ( "elephant_mice",
      fun rng f -> Trace.Attackgen.elephant_mice rng ~elephants:4 ~mice:60 ~elephant_pkts:50 ~mouse_pkts:3 ~f );
    ("flash_crowd", fun rng f -> Trace.Attackgen.flash_crowd rng ~flows:120 ~steps:6 ~f);
  ]

let digest_at gen seed = Trace.Attackgen.digest (fun f -> gen (Trace.Rng.create ~seed) f)

let test_attackgen_determinism () =
  List.iter
    (fun (name, gen) ->
      (* Same seed, same stream — three seeds each replayed twice. *)
      List.iter
        (fun seed ->
          Alcotest.(check int)
            (Printf.sprintf "%s seed %d replays identically" name seed)
            (digest_at gen seed) (digest_at gen seed))
        [ 42; 1337; 20240 ];
      (* Different seeds, different streams. *)
      Alcotest.(check bool)
        (name ^ " seeds diverge")
        true
        (digest_at gen 42 <> digest_at gen 1337 && digest_at gen 1337 <> digest_at gen 20240))
    gens

let test_syn_flood_shape () =
  let benign = ref 0 and attack = ref 0 and acks = ref 0 and data = ref 0 in
  Trace.Attackgen.syn_flood (Trace.Rng.create ~seed:7) ~benign_flows:40 ~attack_factor:5 ~packets_per_flow:3
    ~f:(fun e ->
      if e.Trace.Attackgen.benign then incr benign else incr attack;
      (match e.kind with
      | Trace.Attackgen.Ack -> incr acks
      | Trace.Attackgen.Data -> if e.benign then incr data
      | Trace.Attackgen.Syn -> ());
      if not e.benign then
        Alcotest.(check bool) "attack traffic is all SYNs" true (e.kind = Trace.Attackgen.Syn))
  ;
  (* 40 flows x (SYN + ACK + 3 data) benign; every benign packet shadowed
     by 5 spoofed SYNs. *)
  Alcotest.(check int) "benign packets" (40 * 5) !benign;
  Alcotest.(check int) "attack packets" (40 * 5 * 5) !attack;
  Alcotest.(check int) "one ACK per flow" 40 !acks;
  Alcotest.(check int) "data packets" (40 * 3) !data

let test_attackgen_populations_disjoint () =
  (* Benign sources live in 10/8, spoofed ones never do. *)
  Trace.Attackgen.syn_flood (Trace.Rng.create ~seed:11) ~benign_flows:30 ~attack_factor:4 ~packets_per_flow:2
    ~f:(fun e ->
      let ten8 =
        Net.Ipv4_addr.in_prefix e.Trace.Attackgen.flow.Net.Five_tuple.src_ip
          ~prefix:(Net.Ipv4_addr.of_string "10.0.0.0") ~len:8
      in
      Alcotest.(check bool) "population matches prefix" e.benign ten8)

(* ---------- Flowgen: bounded rejection at storm scale ---------- *)

let test_flowgen_distinct_at_scale () =
  let n = 1_000_000 in
  let flows = Trace.Flowgen.flows (Trace.Rng.create ~seed:3) ~n in
  Alcotest.(check int) "count" n (Array.length flows);
  let seen = Hashtbl.create (2 * n) in
  Array.iter
    (fun f ->
      if Hashtbl.mem seen f then Alcotest.fail "duplicate tuple at storm scale";
      Hashtbl.add seen f ())
    flows

(* ---------- Flowgen: exact wire sizes (Figure 8 frames) ---------- *)

let test_wire_sizes_pinned () =
  let rng = Trace.Rng.create ~seed:5 in
  List.iter
    (fun (proto, hdr) ->
      List.iter
        (fun frame ->
          let len = Trace.Flowgen.payload_for_frame ~frame_size:frame ~proto in
          Alcotest.(check int) (Printf.sprintf "frame %d payload" frame) (frame - hdr) len;
          let f = (Trace.Flowgen.flows rng ~n:1).(0) in
          let p =
            Net.Packet.make ~src_ip:f.Net.Five_tuple.src_ip ~dst_ip:f.Net.Five_tuple.dst_ip ~proto
              ~src_port:f.Net.Five_tuple.src_port ~dst_port:f.Net.Five_tuple.dst_port (String.make len 'x')
          in
          Alcotest.(check int) (Printf.sprintf "frame %d wire bytes" frame) frame (Net.Packet.wire_length p))
        Trace.Flowgen.figure8_frame_sizes;
      (* Below the Ethernet minimum: padded up to a 64 B frame, never a
         sub-minimum one. *)
      Alcotest.(check int) "sub-minimum request pads to 64 B" (64 - hdr)
        (Trace.Flowgen.payload_for_frame ~frame_size:1 ~proto))
    [ (Net.Packet.Tcp, 54); (Net.Packet.Udp, 42) ]

(* ---------- End to end: the chaos ddos scenario ---------- *)

let small_config =
  {
    Fleet.Chaos.default_ddos_config with
    Fleet.Chaos.d_benign_flows = 32;
    d_attack_factor = 4;
    d_packets_per_flow = 2;
    d_log2_buckets = 6;
  }

let test_run_ddos_snic_invariants () =
  let r = Fleet.Chaos.run_ddos small_config in
  Alcotest.(check bool) "snic: attacker cannot tamper" false r.Fleet.Chaos.d_snic_tampered;
  Alcotest.(check bool) "snic: attacker cannot steal the key" false r.Fleet.Chaos.d_snic_key_stolen;
  Alcotest.(check bool) "snic: memory flat" true r.Fleet.Chaos.d_snic_mem_flat;
  Alcotest.(check bool) "snic: goodput >= 0.8x baseline" true (r.Fleet.Chaos.d_snic_goodput_ratio >= 0.8);
  (* Every mode drops every attack SYN (the cookie is stateless), and the
     defense footprint never grows anywhere. *)
  List.iter
    (fun (m : Fleet.Chaos.ddos_mode_report) ->
      Alcotest.(check int)
        (Fleet.Chaos.ddos_mode_id m.dm_mode ^ " drops all attack SYNs")
        m.Fleet.Chaos.dm_attack_pkts m.Fleet.Chaos.dm_attack_dropped;
      Alcotest.(check bool) (Fleet.Chaos.ddos_mode_id m.dm_mode ^ " memory flat") true m.Fleet.Chaos.dm_mem_flat)
    r.Fleet.Chaos.d_mode_reports

let test_run_ddos_deterministic () =
  let s1 = Fleet.Chaos.ddos_summary (Fleet.Chaos.run_ddos small_config) in
  let s2 = Fleet.Chaos.ddos_summary (Fleet.Chaos.run_ddos small_config) in
  Alcotest.(check string) "same config, same summary" s1 s2

let test_run_ddos_counters () =
  let sink = Obs.create () in
  ignore (Fleet.Chaos.run_ddos ~sink small_config);
  let counter name =
    match Obs.registry sink with
    | None -> Alcotest.fail "recording sink has a registry"
    | Some reg -> Option.value ~default:0 (List.assoc_opt name (Obs.Metrics.counters reg))
  in
  Alcotest.(check bool) "challenges counted" true (counter "snic_ddos_syn_challenge_total" > 0);
  Alcotest.(check bool) "attack drops counted" true (counter "snic_ddos_attack_drop_total" > 0);
  Alcotest.(check bool) "goodput counted" true (counter "snic_ddos_goodput_pkt_total" > 0);
  Alcotest.(check bool) "admits counted" true (counter "snic_ddos_admit_total" > 0)

let test_run_ddos_validation () =
  Alcotest.check_raises "no modes" (Invalid_argument "Chaos.run_ddos: need at least one mode") (fun () ->
      ignore (Fleet.Chaos.run_ddos { small_config with Fleet.Chaos.d_modes = [] }));
  Alcotest.check_raises "no flows" (Invalid_argument "Chaos.run_ddos: need at least 1 benign flow")
    (fun () -> ignore (Fleet.Chaos.run_ddos { small_config with Fleet.Chaos.d_benign_flows = 0 }))

let suite =
  [
    Alcotest.test_case "cuckoo insert/mem/remove" `Quick test_cuckoo_insert_mem_remove;
    Alcotest.test_case "cuckoo validation" `Quick test_cuckoo_validation;
    QCheck_alcotest.to_alcotest prop_cuckoo_no_false_negatives;
    QCheck_alcotest.to_alcotest prop_cuckoo_false_positive_bound;
    QCheck_alcotest.to_alcotest prop_cuckoo_saturation_bounds;
    Alcotest.test_case "cuckoo fixed memory bytes" `Quick test_cuckoo_memory_bytes;
    Alcotest.test_case "syn-cookie round trip" `Quick test_cookie_round_trip;
    Alcotest.test_case "syn-cookie wrong key" `Quick test_cookie_wrong_key;
    Alcotest.test_case "syn-cookie epoch grace" `Quick test_cookie_epoch_grace;
    Alcotest.test_case "proxy handshake protocol" `Quick test_proxy_handshake_protocol;
    Alcotest.test_case "proxy memory flat" `Quick test_proxy_memory_flat;
    Alcotest.test_case "registry ddos pair" `Quick test_registry_ddos_pair;
    Alcotest.test_case "attackgen 3-seed determinism" `Quick test_attackgen_determinism;
    Alcotest.test_case "syn flood shape" `Quick test_syn_flood_shape;
    Alcotest.test_case "attack populations disjoint" `Quick test_attackgen_populations_disjoint;
    Alcotest.test_case "flowgen distinct at 10^6" `Slow test_flowgen_distinct_at_scale;
    Alcotest.test_case "figure-8 wire sizes pinned" `Quick test_wire_sizes_pinned;
    Alcotest.test_case "run_ddos snic invariants" `Quick test_run_ddos_snic_invariants;
    Alcotest.test_case "run_ddos deterministic" `Quick test_run_ddos_deterministic;
    Alcotest.test_case "run_ddos obs counters" `Quick test_run_ddos_counters;
    Alcotest.test_case "run_ddos validation" `Quick test_run_ddos_validation;
  ]
