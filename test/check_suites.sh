#!/bin/sh
# Suite-list drift gate: every test/test_*.ml must be registered in
# test_main.ml. A new suite that compiles but is never run is worse
# than a missing one — it looks green forever.
set -e

status=0
for f in test_*.ml; do
  [ "$f" = "test_main.ml" ] && continue
  base=${f%.ml}
  # Module name: capitalize the first letter (test_foo.ml -> Test_foo).
  first=$(printf %s "$base" | cut -c1 | tr '[:lower:]' '[:upper:]')
  module="$first$(printf %s "$base" | cut -c2-)"
  if ! grep -q "$module\.suite" test_main.ml; then
    echo "check_suites FAIL: $f compiles but $module.suite is not registered in test_main.ml" >&2
    status=1
  fi
done

[ "$status" -eq 0 ] && echo "all $(ls test_*.ml | grep -cv '^test_main\.ml$') test modules are registered"
exit "$status"
