(* lib/vf: SR-IOV-style virtual functions and the two-stage transmit
   scheduler.

   Covers the VF table lifecycle (page-aligned windows, S-NIC scrub on
   detach), strict per-VF quota accounting, the machine-policed doorbell
   and ring-window accesses, the Vfplace packing arithmetic, the
   Fairness summary math, and the Scenario driver's determinism and
   weighted-share convergence. *)

open Nicsim

let fresh_machine mode = Machine.create (Machine.default_config ~mode)

let small_table ?(mode = Machine.Snic) ?(vfs = 8) () =
  let m = fresh_machine mode in
  (m, Vf.Table.create m { Vf.Table.default_config with Vf.Table.vfs })

(* ---- table lifecycle ---------------------------------------------- *)

let test_attach_detach_lifecycle () =
  let _, t = small_table () in
  Alcotest.(check int) "starts empty" 0 (Vf.Table.attached_count t);
  let base =
    match Vf.Table.attach t ~vf:3 ~nf:101 ~weight:4 with
    | Ok b -> b
    | Error e -> Alcotest.failf "attach failed: %s" e
  in
  Alcotest.(check int) "window is page-aligned" 0 (base mod Physmem.page_size);
  Alcotest.(check bool) "attached" true (Vf.Table.attached t ~vf:3);
  Alcotest.(check (option int)) "owner" (Some 101) (Vf.Table.owner_nf t ~vf:3);
  Alcotest.(check (option int)) "weight" (Some 4) (Vf.Table.weight t ~vf:3);
  Alcotest.(check (option int)) "base" (Some base) (Vf.Table.window_base t ~vf:3);
  (match Vf.Table.attach t ~vf:3 ~nf:102 ~weight:1 with
  | Ok _ -> Alcotest.fail "double attach must fail"
  | Error _ -> ());
  Vf.Table.detach t ~vf:3;
  Alcotest.(check bool) "detached" false (Vf.Table.attached t ~vf:3);
  Alcotest.(check (option int)) "no owner" None (Vf.Table.owner_nf t ~vf:3);
  (* Idempotent. *)
  Vf.Table.detach t ~vf:3;
  Alcotest.(check int) "empty again" 0 (Vf.Table.attached_count t);
  Alcotest.check_raises "out-of-range vf"
    (Invalid_argument "Vf.Table.attach: vf 99 out of range (table has 8)")
    (fun () -> ignore (Vf.Table.attach t ~vf:99 ~nf:1 ~weight:1))

let test_snic_detach_scrubs_window () =
  let m, t = small_table ~mode:Machine.Snic () in
  let base =
    match Vf.Table.attach t ~vf:0 ~nf:7 ~weight:1 with
    | Ok b -> b
    | Error e -> Alcotest.failf "attach failed: %s" e
  in
  (* The ring pattern is live in the window page... *)
  Alcotest.(check bool) "pattern present" false
    (Physmem.is_zero (Machine.mem m) ~pos:base ~len:Physmem.page_size);
  Vf.Table.detach t ~vf:0;
  (* ...and gone after an S-NIC detach: single-owner RAM is returned
     scrubbed, so the next owner can never read VF residue. *)
  Alcotest.(check bool) "window scrubbed" true
    (Physmem.is_zero (Machine.mem m) ~pos:base ~len:Physmem.page_size)

let test_commodity_detach_leaves_residue () =
  let m, t = small_table ~mode:Machine.Liquidio_se_s () in
  let base =
    match Vf.Table.attach t ~vf:0 ~nf:7 ~weight:1 with
    | Ok b -> b
    | Error e -> Alcotest.failf "attach failed: %s" e
  in
  Vf.Table.detach t ~vf:0;
  Alcotest.(check bool) "commodity firmware leaves the ring bytes" false
    (Physmem.is_zero (Machine.mem m) ~pos:base ~len:Physmem.page_size)

(* ---- strict per-VF queue accounting ------------------------------- *)

let test_tx_quota_is_per_vf () =
  let m = fresh_machine Machine.Snic in
  let t = Vf.Table.create m { Vf.Table.default_config with Vf.Table.vfs = 4; Vf.Table.tx_quota = 4 } in
  List.iter
    (fun vf ->
      match Vf.Table.attach t ~vf ~nf:(100 + vf) ~weight:1 with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "attach %d: %s" vf e)
    [ 0; 1 ];
  for i = 0 to 3 do
    Alcotest.(check bool) "vf 0 admits up to quota" true
      (Vf.Table.tx_submit t ~vf:0 ~flow:i ~bytes:100)
  done;
  Alcotest.(check bool) "vf 0 over quota drops" false (Vf.Table.tx_submit t ~vf:0 ~flow:9 ~bytes:100);
  (* The full neighbour never bleeds into vf 1's descriptors. *)
  Alcotest.(check bool) "vf 1 unaffected" true (Vf.Table.tx_submit t ~vf:1 ~flow:0 ~bytes:100);
  Alcotest.(check int) "vf 0 backlog at quota" 4 (Vf.Table.tx_backlog t ~vf:0);
  Alcotest.(check int) "vf 1 backlog" 1 (Vf.Table.tx_backlog t ~vf:1);
  Alcotest.(check int) "drop counted against vf 0" 1 (Vf.Table.stats t ~vf:0).Vf.Table.tx_drops;
  Alcotest.(check int) "no drops on vf 1" 0 (Vf.Table.stats t ~vf:1).Vf.Table.tx_drops;
  (* Detached slots refuse descriptors outright. *)
  Alcotest.(check bool) "detached slot refuses" false (Vf.Table.tx_submit t ~vf:2 ~flow:0 ~bytes:100)

let test_rx_quota_bounded () =
  let m = fresh_machine Machine.Snic in
  let t = Vf.Table.create m { Vf.Table.default_config with Vf.Table.vfs = 2; Vf.Table.rx_quota = 2 } in
  (match Vf.Table.attach t ~vf:0 ~nf:1 ~weight:1 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "attach: %s" e);
  let d = { Vf.Table.flow = 0; Vf.Table.bytes = 64 } in
  Alcotest.(check bool) "rx 1" true (Vf.Table.rx_push t ~vf:0 d);
  Alcotest.(check bool) "rx 2" true (Vf.Table.rx_push t ~vf:0 d);
  Alcotest.(check bool) "rx over quota" false (Vf.Table.rx_push t ~vf:0 d);
  Alcotest.(check int) "rx depth" 2 (Vf.Table.rx_depth t ~vf:0);
  Alcotest.(check int) "rx drop counted" 1 (Vf.Table.stats t ~vf:0).Vf.Table.rx_drops;
  Alcotest.(check bool) "rx pop" true (Vf.Table.rx_pop t ~vf:0 = Some d)

let test_detach_drops_queued_descriptors () =
  let _, t = small_table ~vfs:2 () in
  List.iter
    (fun vf ->
      match Vf.Table.attach t ~vf ~nf:(1 + vf) ~weight:1 with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "attach: %s" e)
    [ 0; 1 ];
  for i = 0 to 4 do
    ignore (Vf.Table.tx_submit t ~vf:0 ~flow:0 ~bytes:100);
    ignore (Vf.Table.tx_submit t ~vf:1 ~flow:i ~bytes:100)
  done;
  Vf.Table.detach t ~vf:0;
  (* Every remaining scheduled descriptor belongs to the survivor. *)
  let rec drain n =
    match Vf.Table.tx_next t with
    | None -> n
    | Some (vf, _) ->
      Alcotest.(check int) "survivor only" 1 vf;
      drain (n + 1)
  in
  Alcotest.(check int) "survivor's 5 descriptors" 5 (drain 0)

(* ---- machine-policed window accesses ------------------------------ *)

let test_snic_doorbell_isolation () =
  let _, t = small_table ~mode:Machine.Snic ~vfs:4 () in
  List.iter
    (fun (vf, nf) ->
      match Vf.Table.attach t ~vf ~nf ~weight:1 with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "attach: %s" e)
    [ (0, 50); (1, 51) ];
  (match Vf.Table.doorbell t ~principal:(Machine.Nf_code 50) ~vf:0 ~value:7 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "owner doorbell must succeed");
  Alcotest.(check int) "doorbell latched" 7 (Vf.Table.stats t ~vf:0).Vf.Table.last_doorbell;
  Alcotest.(check int) "doorbell counted" 1 (Vf.Table.stats t ~vf:0).Vf.Table.doorbells;
  (* S-NIC single-owner RAM: tenant 51 cannot kick tenant 50's VF. *)
  (match Vf.Table.doorbell t ~principal:(Machine.Nf_code 51) ~vf:0 ~value:9 with
  | Ok () -> Alcotest.fail "cross-VF doorbell must fault on S-NIC"
  | Error _ -> ());
  Alcotest.(check int) "value unchanged" 7 (Vf.Table.stats t ~vf:0).Vf.Table.last_doorbell;
  Alcotest.check_raises "detached doorbell raises"
    (Invalid_argument "Vf.Table.doorbell: vf not attached")
    (fun () -> ignore (Vf.Table.doorbell t ~principal:Machine.Os ~vf:2 ~value:1))

let test_snic_queue_read_isolation_and_pattern () =
  let _, t = small_table ~mode:Machine.Snic ~vfs:4 () in
  (match Vf.Table.attach t ~vf:2 ~nf:60 ~weight:1 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "attach: %s" e);
  (match Vf.Table.attach t ~vf:3 ~nf:61 ~weight:1 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "attach: %s" e);
  (match Vf.Table.queue_read t ~principal:(Machine.Nf_code 60) ~vf:2 ~len:32 with
  | Ok bytes ->
    (* The ring image is the deterministic per-VF pattern, skipping the
       8-byte doorbell register. *)
    Alcotest.(check string) "ring bytes match the pure pattern"
      (String.sub (Vf.Table.window_pattern ~vf:2) 8 32)
      bytes
  | Error _ -> Alcotest.fail "owner ring read must succeed");
  (match Vf.Table.queue_read t ~principal:(Machine.Nf_code 61) ~vf:2 ~len:32 with
  | Ok _ -> Alcotest.fail "cross-VF ring snoop must fault on S-NIC"
  | Error _ -> ())

let test_commodity_cross_vf_access_succeeds () =
  (* The contrast case: a commodity NIC's BAR space takes the cross-VF
     kick and snoop — exactly the gap the oracle classifies. *)
  let _, t = small_table ~mode:Machine.Liquidio_se_s ~vfs:4 () in
  (match Vf.Table.attach t ~vf:0 ~nf:50 ~weight:1 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "attach: %s" e);
  (match Vf.Table.attach t ~vf:1 ~nf:51 ~weight:1 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "attach: %s" e);
  (match Vf.Table.doorbell t ~principal:(Machine.Nf_code 51) ~vf:0 ~value:9 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "commodity cross-VF doorbell goes through");
  match Vf.Table.queue_read t ~principal:(Machine.Nf_code 51) ~vf:0 ~len:16 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "commodity cross-VF snoop goes through"

(* ---- fairness math ------------------------------------------------ *)

let test_jain_index_cases () =
  let feq = Alcotest.float 1e-9 in
  Alcotest.(check feq) "empty is fair" 1.0 (Obs.Fairness.jain []);
  Alcotest.(check feq) "all-zero is fair" 1.0 (Obs.Fairness.jain [ 0.; 0. ]);
  Alcotest.(check feq) "equal shares" 1.0 (Obs.Fairness.jain [ 3.; 3.; 3.; 3. ]);
  Alcotest.(check feq) "one hog of n=4" 0.25 (Obs.Fairness.jain [ 8.; 0.; 0.; 0. ]);
  let r = Obs.Fairness.weighted_report [ (0, 100., 1.); (1, 200., 2.); (2, 400., 4.) ] in
  Alcotest.(check feq) "weight-normalized goodput is perfectly fair" 1.0 r.Obs.Fairness.index;
  Alcotest.(check feq) "no share error" 0.0 r.Obs.Fairness.max_rel_err

(* ---- vfplace packing ---------------------------------------------- *)

let sites = [ { Fleet.Vfplace.nic = 0; Fleet.Vfplace.slots = 2 }; { Fleet.Vfplace.nic = 1; Fleet.Vfplace.slots = 2 } ]
let vnic tenant = { Fleet.Vfplace.tenant; Fleet.Vfplace.weight = 1 }

let nic_of a = a.Fleet.Vfplace.nic
let vf_of a = a.Fleet.Vfplace.vf

let test_vfplace_packed_and_spread () =
  let vnics = List.map vnic [ 10; 11; 12 ] in
  (match Fleet.Vfplace.pack Fleet.Vfplace.Packed ~sites ~vnics with
  | Ok l ->
    Alcotest.(check (list (pair int int))) "packed fills NIC 0 first" [ (0, 0); (0, 1); (1, 0) ]
      (List.map (fun a -> (nic_of a, vf_of a)) l)
  | Error e -> Alcotest.fail e);
  (match Fleet.Vfplace.pack Fleet.Vfplace.Spread ~sites ~vnics with
  | Ok l ->
    Alcotest.(check (list (pair int int))) "spread alternates NICs" [ (0, 0); (1, 0); (0, 1) ]
      (List.map (fun a -> (nic_of a, vf_of a)) l)
  | Error e -> Alcotest.fail e);
  match Fleet.Vfplace.pack Fleet.Vfplace.Packed ~sites ~vnics:(List.map vnic [ 1; 2; 3; 4; 5 ]) with
  | Ok _ -> Alcotest.fail "over-capacity demand must be refused"
  | Error e -> Alcotest.(check string) "capacity error names the numbers"
                 "demand 5 vNICs exceeds capacity 4 VF slots" e

let test_vfplace_per_nic_grouping () =
  match Fleet.Vfplace.pack Fleet.Vfplace.Spread ~sites ~vnics:(List.map vnic [ 1; 2; 3; 4 ]) with
  | Error e -> Alcotest.fail e
  | Ok l ->
    let groups = Fleet.Vfplace.per_nic l in
    Alcotest.(check (list int)) "NICs ascending" [ 0; 1 ] (List.map fst groups);
    List.iter
      (fun (_, assigns) ->
        Alcotest.(check (list int)) "VF ids ascending from 0" [ 0; 1 ] (List.map vf_of assigns))
      groups

let test_node_vf_accounting () =
  let vendor = Snic.Identity.make_vendor ~seed:7 ~name:"t" () in
  let node = Fleet.Node.boot ~vendor ~id:0 Fleet.Node.small in
  Alcotest.(check int) "small NIC exposes 256 VFs" 256 (Fleet.Node.vf_slots node);
  Alcotest.(check int) "none used" 0 (Fleet.Node.vf_used node);
  Alcotest.(check bool) "claims a slot" true (Fleet.Node.attach_vf node);
  Alcotest.(check int) "headroom shrinks" 255 (Fleet.Node.vf_headroom node);
  Fleet.Node.release_vf node;
  Alcotest.(check int) "release restores" 256 (Fleet.Node.vf_headroom node);
  (* Quarantine blocks new VFs, like NF admission. *)
  Fleet.Node.quarantine node;
  Alcotest.(check bool) "quarantined refuses" false (Fleet.Node.attach_vf node);
  Fleet.Node.unquarantine node;
  Alcotest.(check bool) "readmitted accepts" true (Fleet.Node.attach_vf node)

(* ---- scenario driver ---------------------------------------------- *)

let test_scenario_deterministic () =
  let go () = Vf.Scenario.run ~nics:2 ~vfs:16 ~cycles:8 ~seed:7 () in
  let a = go () and b = go () in
  Alcotest.(check string) "summaries byte-identical" (Vf.Scenario.summary a) (Vf.Scenario.summary b);
  Alcotest.(check int) "pkts equal" a.Vf.Scenario.total_pkts b.Vf.Scenario.total_pkts;
  Alcotest.(check bool) "work got done" true (a.Vf.Scenario.total_pkts > 0);
  Alcotest.(check int) "healthy run has no drops" 0 a.Vf.Scenario.total_drops

let test_scenario_weighted_shares_converge () =
  (* 32 rotations bound the stage-1 quantization error well under the
     5% acceptance bar (error ~ 1/cycles). *)
  let r = Vf.Scenario.run ~nics:1 ~vfs:32 ~cycles:32 ~seed:42 () in
  Alcotest.(check bool) "shares within 5% of weights" true (r.Vf.Scenario.max_rel_err <= 0.05);
  Alcotest.(check bool) "jain above the gate floor" true (r.Vf.Scenario.jain_min >= 0.95)

let suite =
  [
    Alcotest.test_case "attach/detach lifecycle" `Quick test_attach_detach_lifecycle;
    Alcotest.test_case "snic detach scrubs the window" `Quick test_snic_detach_scrubs_window;
    Alcotest.test_case "commodity detach leaves residue" `Quick test_commodity_detach_leaves_residue;
    Alcotest.test_case "tx quota is strictly per-VF" `Quick test_tx_quota_is_per_vf;
    Alcotest.test_case "rx quota bounded" `Quick test_rx_quota_bounded;
    Alcotest.test_case "detach drops queued descriptors" `Quick test_detach_drops_queued_descriptors;
    Alcotest.test_case "snic doorbell isolation" `Quick test_snic_doorbell_isolation;
    Alcotest.test_case "snic ring-read isolation + pattern" `Quick test_snic_queue_read_isolation_and_pattern;
    Alcotest.test_case "commodity cross-VF access succeeds" `Quick test_commodity_cross_vf_access_succeeds;
    Alcotest.test_case "jain index unit cases" `Quick test_jain_index_cases;
    Alcotest.test_case "vfplace packed/spread/capacity" `Quick test_vfplace_packed_and_spread;
    Alcotest.test_case "vfplace per-NIC grouping" `Quick test_vfplace_per_nic_grouping;
    Alcotest.test_case "node VF slot accounting" `Quick test_node_vf_accounting;
    Alcotest.test_case "scenario deterministic" `Quick test_scenario_deterministic;
    Alcotest.test_case "scenario weighted shares converge" `Slow test_scenario_weighted_shares_converge;
  ]
