open Nicsim

let ip = Net.Ipv4_addr.of_string

let packet ?(dport = 8080) () =
  Net.Packet.make ~src_ip:(ip "10.1.1.1") ~dst_ip:(ip "198.51.100.7") ~proto:Net.Packet.Tcp ~src_port:3333
    ~dst_port:dport "chained payload"

(* ---------- compose (compiler-enforced chaining) ---------- *)

let test_compose () =
  let deny_ssh = { (Nf.Firewall.rule_any Nf.Firewall.Deny) with Nf.Firewall.dst_ports = Some (22, 22) } in
  let fw = Nf.Firewall.nf (Nf.Firewall.create ~default:Nf.Firewall.Allow [ deny_ssh ]) in
  let mon = Nf.Monitor.create () in
  let nat = Nf.Nat.create ~internal_prefix:(ip "10.0.0.0", 8) ~external_ip:(ip "203.0.113.1") () in
  let chain = Snic.Chain.compose ~name:"fw|mon|nat" [ fw; Nf.Monitor.nf mon; Nf.Nat.nf nat ] in
  (match chain.Nf.Types.process (packet ()) with
  | Nf.Types.Forward out -> Alcotest.(check string) "nat applied last" "203.0.113.1" (Net.Ipv4_addr.to_string out.src_ip)
  | Nf.Types.Drop r -> Alcotest.fail r);
  (* A drop in the first stage short-circuits: the monitor never sees it. *)
  let before = Nf.Monitor.packets_seen mon in
  Alcotest.(check bool) "fw drops ssh" true (Nf.Types.is_drop (chain.Nf.Types.process (packet ~dport:22 ())));
  Alcotest.(check int) "short circuit" (before + 0) (Nf.Monitor.packets_seen mon);
  Alcotest.check_raises "empty chain" (Invalid_argument "Chain.compose: empty chain") (fun () ->
      ignore (Snic.Chain.compose ~name:"x" []))

(* ---------- cross-VPP chaining ---------- *)

let test_cross_vpp_chain () =
  let api = Snic.Api.boot () in
  (* Stage 1: firewall (rules route ingress to it); stage 2: NAT (no
     ingress rules — it only receives via the cross-VPP path). *)
  let v_fw =
    Result.get_ok
      (Snic.Api.nf_create api
         { Snic.Instructions.default_config with image = "fw"; cores = [ 0 ]; rules = [ Pktio.match_any ] })
  in
  let v_nat =
    Result.get_ok (Snic.Api.nf_create api { Snic.Instructions.default_config with image = "nat"; cores = [ 1 ] })
  in
  let deny_ssh = { (Nf.Firewall.rule_any Nf.Firewall.Deny) with Nf.Firewall.dst_ports = Some (22, 22) } in
  let fw = Nf.Firewall.nf (Nf.Firewall.create ~default:Nf.Firewall.Allow [ deny_ssh ]) in
  let nat =
    Nf.Nat.nf (Nf.Nat.create ~internal_prefix:(ip "10.0.0.0", 8) ~external_ip:(ip "203.0.113.1") ())
  in
  let chain = Snic.Chain.create api [ (v_fw, fw); (v_nat, nat) ] in
  (* Three packets in: one will be dropped by the firewall. *)
  List.iter (fun dport -> ignore (Snic.Api.inject_packet api (packet ~dport ()))) [ 80; 22; 443 ];
  let stats = Snic.Chain.pump chain ~max:10 in
  (match stats with
  | [ s_fw; s_nat ] ->
    Alcotest.(check int) "fw received 3" 3 s_fw.Snic.Chain.received;
    Alcotest.(check int) "fw forwarded 2" 2 s_fw.Snic.Chain.forwarded;
    Alcotest.(check int) "fw dropped 1" 1 s_fw.Snic.Chain.dropped;
    Alcotest.(check int) "nat received 2" 2 s_nat.Snic.Chain.received;
    Alcotest.(check int) "nat forwarded 2" 2 s_nat.Snic.Chain.forwarded
  | _ -> Alcotest.fail "expected two stages");
  Alcotest.(check int) "chain drained" 0 (Snic.Chain.backlog chain);
  (* Wire output carries the NAT rewrite: the full chain ran. *)
  let out = Snic.Api.transmitted api in
  Alcotest.(check int) "two frames out" 2 (List.length out);
  List.iter
    (fun (p : Net.Packet.t) ->
      Alcotest.(check string) "rewritten" "203.0.113.1" (Net.Ipv4_addr.to_string p.src_ip))
    out;
  (* Isolation still holds between the chained stages. *)
  let h_nat = Snic.Vnic.handle v_nat in
  (match Snic.Vnic.read_phys v_fw ~paddr:h_nat.Snic.Instructions.mem_base ~len:4 with
  | Error (Machine.Denied _) -> ()
  | _ -> Alcotest.fail "chained stages can still read each other")

(* ---------- quote wire format ---------- *)

let test_wire_roundtrip () =
  let fields = [ ""; "a"; String.make 1000 'x'; "\x00\xff" ] in
  (match Snic.Wire.decode ~expect:4 (Snic.Wire.encode fields) with
  | Ok got -> Alcotest.(check (list string)) "roundtrip" fields got
  | Error e -> Alcotest.fail e);
  (match Snic.Wire.decode ~expect:2 (Snic.Wire.encode [ "a"; "b"; "c" ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing bytes accepted");
  match Snic.Wire.decode ~expect:2 "\x00\x00\x00\x05ab" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncation accepted"

let test_quote_serialization () =
  let api = Snic.Api.boot () in
  let vnic =
    Result.get_ok (Snic.Api.nf_create api { Snic.Instructions.default_config with image = "img"; cores = [ 0 ] })
  in
  let rng = Random.State.make [| 8 |] in
  let attester =
    Result.get_ok (Snic.Attestation.attester_of_nf (Snic.Api.instructions api) ~id:(Snic.Vnic.id vnic))
  in
  let nonce = "wire-nonce" in
  let _, quote = Snic.Attestation.respond rng attester ~nonce in
  let bytes = Snic.Attestation.quote_to_bytes quote in
  (* Decoded quote still verifies. *)
  (match Snic.Attestation.quote_of_bytes bytes with
  | Error e -> Alcotest.fail e
  | Ok quote' -> begin
    match
      Snic.Attestation.verify rng ~vendor_public:(Snic.Identity.vendor_public (Snic.Api.vendor api)) ~nonce quote'
    with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Snic.Attestation.verify_error_to_string e)
  end);
  (* Bit-flipped wire bytes either fail to decode or fail to verify. *)
  let bad = Bytes.of_string bytes in
  Bytes.set bad (String.length bytes / 2) '\xFF';
  match Snic.Attestation.quote_of_bytes (Bytes.to_string bad) with
  | Error _ -> ()
  | Ok q -> begin
    match Snic.Attestation.verify rng ~vendor_public:(Snic.Identity.vendor_public (Snic.Api.vendor api)) ~nonce q with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "tampered quote accepted"
  end

(* ---------- SecDCP cache mode ---------- *)

let test_secdcp_resizes_on_os_pressure () =
  let c = Cache.create ~sets:16 ~ways:8 ~line_bits:6 ~mode:Cache.Secdcp ~domains:4 in
  Alcotest.(check int) "even start" 2 (Cache.allocation c ~domain:0);
  (* The OS thrashes its slice: every access a miss. *)
  for i = 0 to 999 do
    ignore (Cache.access c ~domain:0 ~addr:(i * 64 * 16))
  done;
  let moved = Cache.rebalance c in
  Alcotest.(check int) "one way moved" 1 moved;
  Alcotest.(check int) "OS grew" 3 (Cache.allocation c ~domain:0);
  (* A happy OS gives the way back. *)
  for _ = 0 to 999 do
    ignore (Cache.access c ~domain:0 ~addr:0)
  done;
  ignore (Cache.rebalance c);
  Alcotest.(check int) "OS shrank" 2 (Cache.allocation c ~domain:0)

let test_secdcp_ignores_function_behaviour () =
  (* The one-way information-flow property: a function's cache behaviour
     must not influence allocations. *)
  let run nf_active =
    let c = Cache.create ~sets:16 ~ways:8 ~line_bits:6 ~mode:Cache.Secdcp ~domains:4 in
    (* Fixed OS workload... *)
    for i = 0 to 99 do
      ignore (Cache.access c ~domain:0 ~addr:(i mod 4 * 64))
    done;
    (* ...while a function does whatever it wants. *)
    if nf_active then
      for i = 0 to 9999 do
        ignore (Cache.access c ~domain:2 ~addr:(i * 64 * 16))
      done;
    ignore (Cache.rebalance c);
    (Cache.allocation c ~domain:0, Cache.allocation c ~domain:1, Cache.allocation c ~domain:2)
  in
  Alcotest.(check bool) "allocations independent of NF activity" true (run false = run true)

let test_secdcp_validation () =
  let c = Cache.create ~sets:4 ~ways:4 ~line_bits:6 ~mode:Cache.Hard ~domains:2 in
  Alcotest.check_raises "rebalance on Hard" (Invalid_argument "Cache.rebalance: only meaningful in Secdcp mode")
    (fun () -> ignore (Cache.rebalance c))

(* ---------- accelerator functional engines through the vNIC ---------- *)

let test_vnic_accelerators () =
  let api = Snic.Api.boot () in
  let v =
    Result.get_ok
      (Snic.Api.nf_create api
         {
           Snic.Instructions.default_config with
           image = "accel";
           accels = [ (Accel.Zip, 1); (Accel.Raid, 1) ];
         })
  in
  let data = String.concat "" (List.init 100 (fun i -> Printf.sprintf "record-%d;" (i mod 7))) in
  (match Snic.Vnic.zip_compress v ~now:0 data with
  | Ok (c, t) ->
    Alcotest.(check bool) "compresses" true (String.length c < String.length data);
    Alcotest.(check bool) "takes time" true (t > 0);
    (match Snic.Vnic.zip_decompress v ~now:t c with
    | Ok (d, t2) ->
      Alcotest.(check string) "roundtrip" data d;
      Alcotest.(check bool) "time advances" true (t2 > t)
    | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e);
  (match Snic.Vnic.raid_encode v ~now:0 [| "aaaa"; "bbbb"; "cccc" |] with
  | Ok (s, _) -> Alcotest.(check bool) "parity verifies" true (Accelfn.Raid.verify s)
  | Error e -> Alcotest.fail e);
  (* A function without the reservation is refused per accelerator type. *)
  let plain = Result.get_ok (Snic.Api.nf_create api { Snic.Instructions.default_config with image = "p" }) in
  (match Snic.Vnic.zip_compress plain ~now:0 "x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unreserved ZIP use allowed");
  match Snic.Vnic.dpi_submit v ~now:0 ~bytes:100 with
  | Error _ -> () (* v reserved ZIP+RAID but not DPI *)
  | Ok _ -> Alcotest.fail "unreserved DPI use allowed"

let suite =
  [
    Alcotest.test_case "compose chain" `Quick test_compose;
    Alcotest.test_case "vnic accelerators" `Quick test_vnic_accelerators;
    Alcotest.test_case "cross-VPP chain" `Quick test_cross_vpp_chain;
    Alcotest.test_case "wire roundtrip" `Quick test_wire_roundtrip;
    Alcotest.test_case "quote serialization" `Slow test_quote_serialization;
    Alcotest.test_case "secdcp resizes on OS pressure" `Quick test_secdcp_resizes_on_os_pressure;
    Alcotest.test_case "secdcp ignores function behaviour" `Quick test_secdcp_ignores_function_behaviour;
    Alcotest.test_case "secdcp validation" `Quick test_secdcp_validation;
  ]

(* ---------- launch-configured DMA windows ---------- *)

let test_dma_windows () =
  let api = Snic.Api.boot () in
  let v =
    Result.get_ok
      (Snic.Api.nf_create api
         { Snic.Instructions.default_config with image = "dma-nf"; host_window = Some (0x100000, 65536) })
  in
  let m = Snic.Api.machine api in
  let host = Dma.host_mem (Machine.dma m) in
  (* NIC -> host within both windows. *)
  (match Snic.Vnic.write_virt v ~vaddr:0x10000100 "ship me to the host" with
  | Ok () -> ()
  | Error f -> Alcotest.fail (Machine.fault_to_string f));
  (match Snic.Vnic.dma_to_host v ~nic_off:0x100 ~host_off:0x40 ~len:19 with
  | Ok () -> Alcotest.(check string) "arrived" "ship me to the host" (Physmem.read_bytes host ~pos:0x100040 ~len:19)
  | Error e -> Alcotest.fail e);
  (* Host -> NIC. *)
  Physmem.write_bytes host ~pos:0x100200 "from the host";
  (match Snic.Vnic.dma_from_host v ~nic_off:0x2000 ~host_off:0x200 ~len:13 with
  | Ok () -> begin
    match Snic.Vnic.read_virt v ~vaddr:0x10002000 ~len:13 with
    | Ok s -> Alcotest.(check string) "landed in NF RAM" "from the host" s
    | Error f -> Alcotest.fail (Machine.fault_to_string f)
  end
  | Error e -> Alcotest.fail e);
  (* Escapes are rejected by the locked bank TLBs. *)
  (match Snic.Vnic.dma_to_host v ~nic_off:0x100 ~host_off:0x200000 ~len:8 with
  | Error "DMA window violation" -> ()
  | _ -> Alcotest.fail "host window escape");
  (match Snic.Vnic.dma_to_host v ~nic_off:0x10000000 ~host_off:0 ~len:8 with
  | Error "DMA window violation" -> ()
  | _ -> Alcotest.fail "nic window escape");
  (* A function launched without a host window cannot DMA at all. *)
  let v2 = Result.get_ok (Snic.Api.nf_create api { Snic.Instructions.default_config with image = "no-dma" }) in
  match Snic.Vnic.dma_to_host v2 ~nic_off:0 ~host_off:0 ~len:8 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "windowless DMA allowed"

let suite = suite @ [ Alcotest.test_case "launch-configured DMA windows" `Quick test_dma_windows ]

(* ---------- host enclave substrate ---------- *)

let test_enclave_lifecycle () =
  let host = Host.Enclave.make_host ~mem_bytes:(8 * 1024 * 1024) ~epc_bytes:(2 * 1024 * 1024) in
  let e = Host.Enclave.create host ~name:"e1" in
  Alcotest.(check bool) "not yet initialized" false (Host.Enclave.initialized e);
  (match Host.Enclave.add_page e "code page" with Ok () -> () | Error m -> Alcotest.fail m);
  (match Host.Enclave.add_page e "data page" with Ok () -> () | Error m -> Alcotest.fail m);
  let d1 = match Host.Enclave.init e with Ok d -> d | Error m -> Alcotest.fail m in
  Alcotest.(check bool) "initialized" true (Host.Enclave.initialized e);
  (* Measurement is content-determined. *)
  let e2 = Host.Enclave.create host ~name:"e2" in
  ignore (Host.Enclave.add_page e2 "code page");
  ignore (Host.Enclave.add_page e2 "data page");
  let d2 = match Host.Enclave.init e2 with Ok d -> d | Error m -> Alcotest.fail m in
  Alcotest.(check string) "same content, same measurement" (Crypto.Sha256.to_hex d1) (Crypto.Sha256.to_hex d2);
  (* Adding after init fails. *)
  match Host.Enclave.add_page e "late page" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "EADD after EINIT accepted"

let test_enclave_memory_semantics () =
  let host = Host.Enclave.make_host ~mem_bytes:(8 * 1024 * 1024) ~epc_bytes:(2 * 1024 * 1024) in
  let e = Host.Enclave.create host ~name:"e" in
  ignore (Host.Enclave.add_page e "SECRET-IN-ENCLAVE");
  ignore (Host.Enclave.init e);
  (* The OS sees abort bytes over the EPC, real bytes elsewhere. *)
  Host.Enclave.os_write host ~pos:0x1000 "normal data";
  Alcotest.(check string) "normal memory readable" "normal data" (Host.Enclave.os_read host ~pos:0x1000 ~len:11);
  let epc_view = Host.Enclave.os_read host ~pos:host.Host.Enclave.epc_base ~len:17 in
  Alcotest.(check string) "EPC reads abort value" (String.make 17 '\xFF') epc_view;
  (* OS writes into the EPC are dropped. *)
  Host.Enclave.os_write host ~pos:host.Host.Enclave.epc_base "OVERWRITE";
  (match Host.Enclave.enter e (fun ~read ~write:_ -> read ~off:0 ~len:17) with
  | Ok inside -> Alcotest.(check string) "enclave content intact" "SECRET-IN-ENCLAVE" inside
  | Error m -> Alcotest.fail m);
  (* DMA rule. *)
  Alcotest.(check bool) "DMA to normal ok" true (Host.Enclave.dma_allowed host ~pos:0x1000 ~len:4096);
  Alcotest.(check bool) "DMA to EPC refused" false
    (Host.Enclave.dma_allowed host ~pos:host.Host.Enclave.epc_base ~len:64);
  Alcotest.(check bool) "DMA straddling refused" false
    (Host.Enclave.dma_allowed host ~pos:(host.Host.Enclave.epc_base - 32) ~len:64)

let suite =
  suite
  @ [
      Alcotest.test_case "enclave lifecycle" `Quick test_enclave_lifecycle;
      Alcotest.test_case "enclave memory semantics" `Quick test_enclave_memory_semantics;
    ]

(* ---------- the four-message session protocol ---------- *)

let test_session_handshake () =
  let api = Snic.Api.boot () in
  let vnic = Result.get_ok (Snic.Api.nf_create api { Snic.Instructions.default_config with image = "sess" }) in
  let attester =
    Result.get_ok (Snic.Attestation.attester_of_nf (Snic.Api.instructions api) ~id:(Snic.Vnic.id vnic))
  in
  let rng = Random.State.make [| 17 |] in
  let vendor_public = Snic.Identity.vendor_public (Snic.Api.vendor api) in
  match Snic.Session.handshake rng ~vendor_public attester with
  | Ok (vk, pk) -> Alcotest.(check string) "keys agree" (Crypto.Sha256.to_hex vk) (Crypto.Sha256.to_hex pk)
  | Error e -> Alcotest.fail e

let test_session_detects_mitm () =
  let api = Snic.Api.boot () in
  let vnic = Result.get_ok (Snic.Api.nf_create api { Snic.Instructions.default_config with image = "mitm" }) in
  let attester =
    Result.get_ok (Snic.Attestation.attester_of_nf (Snic.Api.instructions api) ~id:(Snic.Vnic.id vnic))
  in
  let rng = Random.State.make [| 18 |] in
  let vendor_public = Snic.Identity.vendor_public (Snic.Api.vendor api) in
  let verifier, hello = Snic.Session.Verifier.start rng ~vendor_public () in
  let prover = Snic.Session.Prover.create rng attester in
  let quote = Result.get_ok (Snic.Session.Prover.on_hello prover hello) in
  (* A man in the middle flips a byte of the quote in flight. *)
  let bad = Bytes.of_string quote in
  Bytes.set bad (String.length quote - 3) '\x99';
  (match Snic.Session.Verifier.on_quote verifier (Bytes.to_string bad) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered quote accepted");
  (* Replaying the original then tampering with the DH share breaks key
     confirmation instead. *)
  let share = Result.get_ok (Snic.Session.Verifier.on_quote verifier quote) in
  let bad_share = Snic.Wire.encode [ "snic-share"; "1234abcd" ] in
  (match Snic.Session.Prover.on_share prover bad_share with
  | Ok finished -> begin
    match Snic.Session.Verifier.on_finished verifier finished with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "mismatched keys confirmed"
  end
  | Error _ -> ());
  (* The honest share still completes. *)
  match Snic.Session.Prover.on_share prover share with
  | Ok finished -> begin
    match Snic.Session.Verifier.on_finished verifier finished with
    | Ok () -> ()
    | Error e -> Alcotest.fail e
  end
  | Error e -> Alcotest.fail e

let test_session_wrong_message_order () =
  let api = Snic.Api.boot () in
  let vnic = Result.get_ok (Snic.Api.nf_create api { Snic.Instructions.default_config with image = "order" }) in
  let attester =
    Result.get_ok (Snic.Attestation.attester_of_nf (Snic.Api.instructions api) ~id:(Snic.Vnic.id vnic))
  in
  let rng = Random.State.make [| 19 |] in
  let prover = Snic.Session.Prover.create rng attester in
  match Snic.Session.Prover.on_share prover (Snic.Wire.encode [ "snic-share"; "ff" ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "SHARE before HELLO accepted"

let suite =
  suite
  @ [
      Alcotest.test_case "session handshake" `Slow test_session_handshake;
      Alcotest.test_case "session detects MITM" `Slow test_session_detects_mitm;
      Alcotest.test_case "session message order" `Quick test_session_wrong_message_order;
    ]

(* ---------- accelerator MMIO ownership through launch/teardown ---------- *)

let test_mmio_ownership_lifecycle () =
  let api = Snic.Api.boot () in
  let m = Snic.Api.machine api in
  let v =
    Result.get_ok
      (Snic.Api.nf_create api
         { Snic.Instructions.default_config with image = "mmio"; accels = [ (Accel.Dpi, 1) ] })
  in
  let h = Snic.Vnic.handle v in
  let kind, cluster = List.hd h.Snic.Instructions.clusters in
  let mmio = Machine.accel_mmio_base m ~kind ~cluster in
  (* The function configures its registers; nobody else can. *)
  (match Machine.store_u64 m (Machine.Nf_code (Snic.Vnic.id v)) (Machine.Phys (mmio + Machine.mmio_reg_graph)) 0xABC000 with
  | Ok () -> ()
  | Error f -> Alcotest.fail (Machine.fault_to_string f));
  Alcotest.(check bool) "OS cannot reconfigure" false
    (Result.is_ok (Machine.store_u64 m Machine.Os (Machine.Phys mmio) 0xE1));
  (* Teardown scrubs the registers and returns the page to the OS. *)
  ignore (Snic.Api.nf_destroy api ~id:(Snic.Vnic.id v));
  Alcotest.(check int) "registers scrubbed" 0 (Physmem.read_u64 (Machine.mem m) (mmio + Machine.mmio_reg_graph));
  Alcotest.(check bool) "OS owns it again" true (Result.is_ok (Machine.load_u8 m Machine.Os (Machine.Phys mmio)))

let test_mmio_base_validation () =
  let api = Snic.Api.boot () in
  let m = Snic.Api.machine api in
  Alcotest.check_raises "bad cluster" (Invalid_argument "Machine.accel_mmio_base: bad cluster") (fun () ->
      ignore (Machine.accel_mmio_base m ~kind:Accel.Dpi ~cluster:99));
  (* Distinct clusters and kinds get distinct pages. *)
  let a = Machine.accel_mmio_base m ~kind:Accel.Dpi ~cluster:0 in
  let b = Machine.accel_mmio_base m ~kind:Accel.Dpi ~cluster:1 in
  let c = Machine.accel_mmio_base m ~kind:Accel.Zip ~cluster:0 in
  Alcotest.(check bool) "distinct pages" true (a <> b && b <> c && a <> c)

let suite =
  suite
  @ [
      Alcotest.test_case "mmio ownership lifecycle" `Quick test_mmio_ownership_lifecycle;
      Alcotest.test_case "mmio base validation" `Quick test_mmio_base_validation;
    ]

(* ---------- attestation negative paths ---------- *)

(* A NIC OS that stages a different image than the tenant requested
   produces a measurement the verifier's independently-computed
   expectation rejects — the §4.1 guarantee that mis-staging cannot be
   hidden. *)
let test_mis_staged_image_fails_verification () =
  let api = Snic.Api.boot () in
  let requested = { Snic.Instructions.default_config with image = "tenant-image-v1" } in
  (* The OS quietly swaps the image before launching. *)
  let vnic =
    Result.get_ok (Snic.Api.nf_create api { requested with Snic.Instructions.image = "trojaned-image" })
  in
  let h = Snic.Vnic.handle vnic in
  (* The tenant computes the measurement it expects from the config it
     asked for plus the launch-reported cores and RAM window. *)
  let expected =
    Snic.Measurement.of_config ~image:requested.Snic.Instructions.image ~cores:h.Snic.Instructions.cores
      ~mem_base:h.Snic.Instructions.mem_base ~mem_len:h.Snic.Instructions.mem_len
      ~rules:requested.Snic.Instructions.rules ~accels:requested.Snic.Instructions.accels
      ~rx_bytes:requested.Snic.Instructions.rx_bytes ~tx_bytes:requested.Snic.Instructions.tx_bytes
      ~sched:requested.Snic.Instructions.sched
  in
  let attester =
    Result.get_ok (Snic.Attestation.attester_of_nf (Snic.Api.instructions api) ~id:(Snic.Vnic.id vnic))
  in
  let rng = Random.State.make [| 23 |] in
  let nonce = "mis-staging-nonce" in
  let _, quote = Snic.Attestation.respond rng attester ~nonce in
  let vendor_public = Snic.Identity.vendor_public (Snic.Api.vendor api) in
  (match Snic.Attestation.verify rng ~vendor_public ~expected_measurement:expected ~nonce quote with
  | Error (Snic.Attestation.Unexpected_measurement { expected = e; got }) ->
    Alcotest.(check string) "expected is the tenant's" (Crypto.Sha256.to_hex expected) (Crypto.Sha256.to_hex e);
    Alcotest.(check bool) "got differs" false (String.equal e got)
  | Error e -> Alcotest.failf "wrong error: %s" (Snic.Attestation.verify_error_to_string e)
  | Ok _ -> Alcotest.fail "mis-staged image passed verification");
  (* The full session protocol refuses too. *)
  match Snic.Session.handshake rng ~vendor_public ~expected_measurement:expected attester with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "session handshake accepted a mis-staged image"

(* A quote only verifies against the vendor that certified the NIC that
   produced it: NIC identities are not interchangeable. *)
let test_quote_bound_to_nic_identity () =
  let vendor_a = Snic.Identity.make_vendor ~seed:101 ~name:"Vendor A" () in
  let vendor_b = Snic.Identity.make_vendor ~seed:202 ~name:"Vendor B" () in
  let api_a =
    Snic.Api.boot_with ~vendor:vendor_a ~serial:"A-1" ~identity_seed:111 (Machine.default_config ~mode:Machine.Snic)
  in
  let api_b =
    Snic.Api.boot_with ~vendor:vendor_b ~serial:"B-1" ~identity_seed:222 (Machine.default_config ~mode:Machine.Snic)
  in
  let launch api img = Result.get_ok (Snic.Api.nf_create api { Snic.Instructions.default_config with image = img }) in
  let v_a = launch api_a "img-a" and v_b = launch api_b "img-b" in
  let attester_of api v =
    Result.get_ok (Snic.Attestation.attester_of_nf (Snic.Api.instructions api) ~id:(Snic.Vnic.id v))
  in
  let rng = Random.State.make [| 29 |] in
  let nonce = "cross-nic-nonce" in
  let _, quote_a = Snic.Attestation.respond rng (attester_of api_a v_a) ~nonce in
  let _, quote_b = Snic.Attestation.respond rng (attester_of api_b v_b) ~nonce in
  (* Each quote verifies under its own vendor root... *)
  (match Snic.Attestation.verify rng ~vendor_public:(Snic.Identity.vendor_public vendor_a) ~nonce quote_a with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Snic.Attestation.verify_error_to_string e));
  (* ...but NIC A's quote must not verify under vendor B's root. *)
  (match Snic.Attestation.verify rng ~vendor_public:(Snic.Identity.vendor_public vendor_b) ~nonce quote_a with
  | Error Snic.Attestation.Bad_certificate_chain -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Snic.Attestation.verify_error_to_string e)
  | Ok _ -> Alcotest.fail "cross-vendor quote accepted");
  (* Splicing NIC B's certificate chain onto NIC A's quote breaks the
     chain or the signature, never succeeds. *)
  let spliced =
    {
      quote_a with
      Snic.Attestation.ak = quote_b.Snic.Attestation.ak;
      ak_endorsement = quote_b.Snic.Attestation.ak_endorsement;
      ek_cert = quote_b.Snic.Attestation.ek_cert;
    }
  in
  match Snic.Attestation.verify rng ~vendor_public:(Snic.Identity.vendor_public vendor_b) ~nonce spliced with
  | Error (Snic.Attestation.Bad_certificate_chain | Snic.Attestation.Bad_signature) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Snic.Attestation.verify_error_to_string e)
  | Ok _ -> Alcotest.fail "spliced identity accepted"

let suite =
  suite
  @ [
      Alcotest.test_case "mis-staged image fails attestation" `Slow test_mis_staged_image_fails_verification;
      Alcotest.test_case "quote bound to NIC identity" `Slow test_quote_bound_to_nic_identity;
    ]
