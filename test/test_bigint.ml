let bi = Bigint.of_int

let check_hex msg expected v = Alcotest.(check string) msg expected (Bigint.to_hex v)

let test_of_int_roundtrip () =
  List.iter
    (fun n -> Alcotest.(check (option int)) (string_of_int n) (Some n) (Bigint.to_int (bi n)))
    [ 0; 1; 2; 12345; 1 lsl 25; (1 lsl 26) - 1; 1 lsl 26; 1 lsl 40; max_int ]

let test_hex_roundtrip () =
  check_hex "zero" "0" Bigint.zero;
  check_hex "255" "ff" (bi 255);
  check_hex "2^64" "10000000000000000" (Bigint.of_hex "10000000000000000");
  let big = "deadbeefcafebabe0123456789abcdef" in
  Alcotest.(check string) "big" big (Bigint.to_hex (Bigint.of_hex big));
  Alcotest.(check string) "0x prefix" "ff" (Bigint.to_hex (Bigint.of_hex "0xFF"))

let test_add_sub () =
  let a = Bigint.of_hex "ffffffffffffffffffffffff" in
  check_hex "add 1" "1000000000000000000000000" (Bigint.add a Bigint.one);
  check_hex "sub back" "ffffffffffffffffffffffff" (Bigint.sub (Bigint.add a Bigint.one) Bigint.one);
  Alcotest.check_raises "negative" (Invalid_argument "Bigint.sub: negative result") (fun () ->
      ignore (Bigint.sub Bigint.one Bigint.two))

let test_mul_div () =
  let a = Bigint.of_hex "123456789abcdef0123456789abcdef" in
  let b = Bigint.of_hex "fedcba9876543210" in
  let p = Bigint.mul a b in
  let q, r = Bigint.divmod p b in
  Alcotest.(check bool) "q = a" true (Bigint.equal q a);
  Alcotest.(check bool) "r = 0" true (Bigint.is_zero r);
  let q2, r2 = Bigint.divmod (Bigint.add p (bi 7)) b in
  Alcotest.(check bool) "q2 = a" true (Bigint.equal q2 a);
  Alcotest.(check (option int)) "r2 = 7" (Some 7) (Bigint.to_int r2)

let test_div_by_zero () =
  Alcotest.check_raises "div0" Division_by_zero (fun () -> ignore (Bigint.divmod Bigint.one Bigint.zero))

let test_shift () =
  let a = Bigint.of_hex "123456789" in
  check_hex "shl 4" "1234567890" (Bigint.shift_left a 4);
  check_hex "shr 4" "12345678" (Bigint.shift_right a 4);
  check_hex "shl 52" "1234567890000000000000" (Bigint.shift_left a 52);
  Alcotest.(check bool) "shr all" true (Bigint.is_zero (Bigint.shift_right a 36))

let test_modpow () =
  (* 3^100 mod 101 = 1 by Fermat (101 prime, 100 = 101-1) *)
  let r = Bigint.modpow ~base:(bi 3) ~exponent:(bi 100) ~modulus:(bi 101) in
  Alcotest.(check (option int)) "fermat" (Some 1) (Bigint.to_int r);
  let r2 = Bigint.modpow ~base:(bi 2) ~exponent:(bi 10) ~modulus:(bi 10000) in
  Alcotest.(check (option int)) "2^10" (Some 1024) (Bigint.to_int r2);
  let r3 = Bigint.modpow ~base:(bi 7) ~exponent:Bigint.zero ~modulus:(bi 13) in
  Alcotest.(check (option int)) "x^0" (Some 1) (Bigint.to_int r3)

let test_gcd_modinv () =
  Alcotest.(check (option int)) "gcd" (Some 6) (Bigint.to_int (Bigint.gcd (bi 54) (bi 24)));
  (match Bigint.modinv (bi 3) (bi 7) with
  | Some v -> Alcotest.(check (option int)) "3^-1 mod 7" (Some 5) (Bigint.to_int v)
  | None -> Alcotest.fail "expected inverse");
  (match Bigint.modinv (bi 4) (bi 8) with
  | None -> ()
  | Some _ -> Alcotest.fail "no inverse expected");
  match Bigint.modinv (bi 65537) (bi 999999999989) with
  | Some v ->
    let p = Bigint.rem (Bigint.mul v (bi 65537)) (bi 999999999989) in
    Alcotest.(check (option int)) "inverse checks" (Some 1) (Bigint.to_int p)
  | None -> Alcotest.fail "expected inverse"

let test_primality () =
  let st = Random.State.make [| 42 |] in
  List.iter
    (fun (n, expect) ->
      Alcotest.(check bool) (string_of_int n) expect (Bigint.is_probable_prime st (bi n)))
    [ (2, true); (3, true); (4, false); (97, true); (561, false); (7919, true); (7917, false); (1, false); (0, false) ];
  (* The Oakley 768-bit prime must pass. *)
  Alcotest.(check bool) "oakley-768" true (Bigint.is_probable_prime st Crypto.Dh.sim_768.p);
  let p = Bigint.random_prime st ~bits:64 in
  Alcotest.(check int) "64-bit" 64 (Bigint.bit_length p);
  Alcotest.(check bool) "prime" true (Bigint.is_probable_prime st p)

let test_bytes_roundtrip () =
  let s = "\x01\x02\xfe\xff\x00\x42" in
  let v = Bigint.of_bytes_be s in
  Alcotest.(check string) "pad" ("\x00\x00" ^ s) (Bigint.to_bytes_be ~len:8 v);
  Alcotest.check_raises "too short" (Invalid_argument "Bigint.to_bytes_be: too short") (fun () ->
      ignore (Bigint.to_bytes_be ~len:1 v))

(* Property tests: check ring laws against OCaml ints on 31-bit values,
   where both arithmetics are exact. *)
let small = QCheck.int_bound ((1 lsl 30) - 1)

let prop_add_matches_int =
  QCheck.Test.make ~name:"bigint add matches int" ~count:500 (QCheck.pair small small) (fun (a, b) ->
      Bigint.to_int (Bigint.add (bi a) (bi b)) = Some (a + b))

let prop_mul_matches_int =
  QCheck.Test.make ~name:"bigint mul matches int" ~count:500 (QCheck.pair small small) (fun (a, b) ->
      Bigint.to_int (Bigint.mul (bi a) (bi b)) = Some (a * b))

let prop_divmod_matches_int =
  QCheck.Test.make ~name:"bigint divmod matches int" ~count:500 (QCheck.pair small small) (fun (a, b) ->
      if b = 0 then QCheck.assume_fail ()
      else begin
        let q, r = Bigint.divmod (bi a) (bi b) in
        Bigint.to_int q = Some (a / b) && Bigint.to_int r = Some (a mod b)
      end)

let prop_divmod_reconstruct =
  (* On large random numbers: a = q*b + r and r < b. *)
  QCheck.Test.make ~name:"divmod reconstructs" ~count:200
    (QCheck.pair (QCheck.string_of_size (QCheck.Gen.int_range 1 40)) (QCheck.string_of_size (QCheck.Gen.int_range 1 20)))
    (fun (sa, sb) ->
      let a = Bigint.of_bytes_be sa and b = Bigint.of_bytes_be sb in
      if Bigint.is_zero b then QCheck.assume_fail ()
      else begin
        let q, r = Bigint.divmod a b in
        Bigint.equal a (Bigint.add (Bigint.mul q b) r) && Bigint.compare r b < 0
      end)

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200 (QCheck.string_of_size (QCheck.Gen.int_range 1 64)) (fun s ->
      let v = Bigint.of_bytes_be s in
      Bigint.equal v (Bigint.of_hex (Bigint.to_hex v)))

let suite =
  [
    Alcotest.test_case "of_int/to_int roundtrip" `Quick test_of_int_roundtrip;
    Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
    Alcotest.test_case "add/sub" `Quick test_add_sub;
    Alcotest.test_case "mul/divmod" `Quick test_mul_div;
    Alcotest.test_case "division by zero" `Quick test_div_by_zero;
    Alcotest.test_case "shifts" `Quick test_shift;
    Alcotest.test_case "modpow" `Quick test_modpow;
    Alcotest.test_case "gcd/modinv" `Quick test_gcd_modinv;
    Alcotest.test_case "primality" `Slow test_primality;
    Alcotest.test_case "byte conversion" `Quick test_bytes_roundtrip;
    QCheck_alcotest.to_alcotest prop_add_matches_int;
    QCheck_alcotest.to_alcotest prop_mul_matches_int;
    QCheck_alcotest.to_alcotest prop_divmod_matches_int;
    QCheck_alcotest.to_alcotest prop_divmod_reconstruct;
    QCheck_alcotest.to_alcotest prop_hex_roundtrip;
  ]
