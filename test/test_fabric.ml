(* Attested NIC-to-NIC fabric: the MAC'd wire codec, the RFC 4303-style
   anti-replay window, attestation-derived channel keys, the channel
   halves with their replay buffer, fail-closed endpoint establishment,
   and the end-to-end cross-NIC chain scenario with mid-run failover.
   The qcheck properties pin the codec's strictness (round trip, no
   best-effort parses, any bit flip fails the MAC) and the window's
   monotonicity; the scenario tests mirror test_ddos's 3-seed
   determinism pattern. *)

let key_of_seed seed = String.init 32 (fun i -> Char.chr ((i * 7) + seed land 0xff))
let key_a = key_of_seed 1
let key_b = key_of_seed 2

(* ---------- Frame codec ---------- *)

let frame_gen =
  QCheck.Gen.(
    map3
      (fun chan seq payload -> { Fabric.Frame.chan; seq; payload })
      (int_bound 0xFFFF) (int_bound 0xFFFFFF)
      (string_size ~gen:printable (int_range 0 200)))

let frame_arb =
  QCheck.make
    ~print:(fun f ->
      Printf.sprintf "{chan=%d; seq=%d; payload=%S}" f.Fabric.Frame.chan f.Fabric.Frame.seq f.Fabric.Frame.payload)
    frame_gen

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"frame: encode/decode_exact round trip" ~count:300 frame_arb (fun f ->
      match Fabric.Frame.decode_exact ~key:key_a (Fabric.Frame.encode ~key:key_a f) with
      | Ok f' -> f' = f
      | Error _ -> false)

let prop_frame_garbage =
  QCheck.Test.make ~name:"frame: garbage never parses" ~count:300
    QCheck.(string_of_size Gen.(int_range 0 120))
    (fun s -> Result.is_error (Fabric.Frame.decode_exact ~key:key_a s))

let prop_frame_truncation =
  QCheck.Test.make ~name:"frame: every strict prefix is rejected" ~count:60 frame_arb (fun f ->
      let wire = Fabric.Frame.encode ~key:key_a f in
      let ok = ref true in
      for cut = 0 to String.length wire - 1 do
        if Result.is_ok (Fabric.Frame.decode_exact ~key:key_a (String.sub wire 0 cut)) then ok := false
      done;
      !ok)

let prop_frame_bitflip =
  QCheck.Test.make ~name:"frame: any single-bit flip fails" ~count:150
    QCheck.(pair frame_arb (pair small_nat (int_bound 7)))
    (fun (f, (byte_idx, bit)) ->
      let wire = Bytes.of_string (Fabric.Frame.encode ~key:key_a f) in
      let i = byte_idx mod Bytes.length wire in
      Bytes.set wire i (Char.chr (Char.code (Bytes.get wire i) lxor (1 lsl bit)));
      Result.is_error (Fabric.Frame.decode_exact ~key:key_a (Bytes.to_string wire)))

let test_frame_trailing () =
  let wire = Fabric.Frame.encode ~key:key_a { Fabric.Frame.chan = 1; seq = 2; payload = "p" } in
  (match Fabric.Frame.decode_exact ~key:key_a (wire ^ "xyz") with
  | Error (Fabric.Frame.Trailing 3) -> ()
  | Error e -> Alcotest.fail ("expected Trailing 3, got " ^ Fabric.Frame.error_to_string e)
  | Ok _ -> Alcotest.fail "trailing bytes accepted");
  match Fabric.Frame.decode_exact ~key:key_a ("XNF1" ^ String.sub wire 4 (String.length wire - 4)) with
  | Error Fabric.Frame.Bad_magic -> ()
  | _ -> Alcotest.fail "bad magic accepted"

let test_frame_wrong_key () =
  let wire = Fabric.Frame.encode ~key:key_a { Fabric.Frame.chan = 3; seq = 9; payload = "secret" } in
  match Fabric.Frame.decode_exact ~key:key_b wire with
  | Error Fabric.Frame.Bad_mac -> ()
  | Error e -> Alcotest.fail ("expected Bad_mac, got " ^ Fabric.Frame.error_to_string e)
  | Ok _ -> Alcotest.fail "frame authenticated under the wrong key"

let test_frame_concat_walk () =
  let frames =
    List.init 3 (fun i -> { Fabric.Frame.chan = 7; seq = i; payload = String.make (i + 1) (Char.chr (0x61 + i)) })
  in
  let stream = String.concat "" (List.map (Fabric.Frame.encode ~key:key_a) frames) in
  let rec walk pos acc =
    if pos = String.length stream then List.rev acc
    else
      match Fabric.Frame.decode ~key:key_a stream ~pos with
      | Ok (f, next) -> walk next (f :: acc)
      | Error e -> Alcotest.fail ("walk failed: " ^ Fabric.Frame.error_to_string e)
  in
  Alcotest.(check bool) "three frames walked back" true (walk 0 [] = frames)

let test_frame_validation () =
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "negative chan refused" true
    (raises (fun () -> Fabric.Frame.encode ~key:key_a { Fabric.Frame.chan = -1; seq = 0; payload = "" }));
  Alcotest.(check bool) "negative seq refused" true
    (raises (fun () -> Fabric.Frame.encode ~key:key_a { Fabric.Frame.chan = 0; seq = -1; payload = "" }));
  Alcotest.(check bool) "oversize payload refused" true
    (raises (fun () ->
         Fabric.Frame.encode ~key:key_a
           { Fabric.Frame.chan = 0; seq = 0; payload = String.make (Fabric.Frame.max_payload + 1) 'x' }));
  match
    Fabric.Frame.decode_exact ~key:key_a
      (Fabric.Frame.encode ~key:key_a { Fabric.Frame.chan = 0; seq = 0; payload = String.make Fabric.Frame.max_payload 'x' })
  with
  | Ok f -> Alcotest.(check int) "max payload round trips" Fabric.Frame.max_payload (String.length f.Fabric.Frame.payload)
  | Error e -> Alcotest.fail (Fabric.Frame.error_to_string e)

(* ---------- Anti-replay window ---------- *)

let prop_window_monotone =
  QCheck.Test.make ~name:"window: high monotone, no seq admitted twice" ~count:200
    QCheck.(pair (int_range 1 62) (small_list (int_bound 200)))
    (fun (size, seqs) ->
      let w = Fabric.Window.create ~size in
      let fresh = Hashtbl.create 16 in
      let ok = ref true in
      List.iter
        (fun seq ->
          let before = Fabric.Window.high w in
          (match Fabric.Window.admit w seq with
          | Fabric.Window.Fresh ->
            if Hashtbl.mem fresh seq then ok := false;
            Hashtbl.replace fresh seq ()
          | Fabric.Window.Replay -> if not (Hashtbl.mem fresh seq) then ok := false
          | Fabric.Window.Stale -> if seq > Fabric.Window.high w - size then ok := false);
          if Fabric.Window.high w < before then ok := false)
        seqs;
      !ok
      && Fabric.Window.accepted w = Hashtbl.length fresh
      && Fabric.Window.accepted w + Fabric.Window.replays w + Fabric.Window.stales w = List.length seqs)

let test_window_edges () =
  let w = Fabric.Window.create ~size:4 in
  Alcotest.(check int) "high starts at -1" (-1) (Fabric.Window.high w);
  Alcotest.(check string) "10 fresh" "fresh" (Fabric.Window.verdict_to_string (Fabric.Window.admit w 10));
  Alcotest.(check string) "6 stale (= high - size)" "stale" (Fabric.Window.verdict_to_string (Fabric.Window.admit w 6));
  Alcotest.(check string) "7 fresh (oldest in window)" "fresh" (Fabric.Window.verdict_to_string (Fabric.Window.admit w 7));
  Alcotest.(check string) "7 replay" "replay" (Fabric.Window.verdict_to_string (Fabric.Window.admit w 7));
  Alcotest.(check string) "10 replay" "replay" (Fabric.Window.verdict_to_string (Fabric.Window.admit w 10));
  Alcotest.(check int) "high unmoved" 10 (Fabric.Window.high w);
  Alcotest.(check int) "accepted" 2 (Fabric.Window.accepted w);
  Alcotest.(check int) "replays" 2 (Fabric.Window.replays w);
  Alcotest.(check int) "stales" 1 (Fabric.Window.stales w)

let test_window_validation () =
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "size 0 refused" true (raises (fun () -> Fabric.Window.create ~size:0));
  Alcotest.(check bool) "size 63 refused" true (raises (fun () -> Fabric.Window.create ~size:63));
  Alcotest.(check bool) "negative seq refused" true
    (raises (fun () -> Fabric.Window.admit (Fabric.Window.create ~size:32) (-1)));
  Alcotest.(check int) "size 62 accepted" 62 (Fabric.Window.size (Fabric.Window.create ~size:62))

(* ---------- Key derivation ---------- *)

(* Distinct (secrets, chan, src, dst) must yield distinct keys: a grid of
   nearby establishments can never collide, and swapping the two session
   secrets changes the key (direction is bound in). *)
let test_derive_key_injective () =
  let keys = ref [] in
  List.iter
    (fun (sa, sb) ->
      List.iter
        (fun chan ->
          List.iter
            (fun (src, dst) ->
              keys := Fabric.Endpoint.derive_key ~secret_src:sa ~secret_dst:sb ~chan ~src ~dst :: !keys)
            [ (0, 1); (1, 0); (0, 2) ])
        [ 0; 1; 7 ])
    [ (key_a, key_b); (key_b, key_a); (key_a, key_a) ];
  let all = !keys in
  Alcotest.(check int) "grid size" 27 (List.length all);
  Alcotest.(check int) "all keys distinct" 27 (List.length (List.sort_uniq compare all));
  List.iter (fun k -> Alcotest.(check int) "32-byte key" 32 (String.length k)) all

(* ---------- Channel ---------- *)

let test_channel_roundtrip () =
  let tx, rx = Fabric.Channel.pair ~key:key_a ~chan:5 () in
  Alcotest.(check int) "chan id" 5 (Fabric.Channel.chan tx);
  let wire = Fabric.Channel.send tx "hello fabric" in
  (match Fabric.Channel.recv rx wire with
  | Ok p -> Alcotest.(check string) "payload intact" "hello fabric" p
  | Error e -> Alcotest.fail (Fabric.Channel.recv_error_to_string e));
  Alcotest.(check int) "sent" 1 (Fabric.Channel.sent tx);
  Alcotest.(check int) "delivered" 1 (Fabric.Channel.delivered rx);
  Alcotest.(check int) "no mac failures" 0 (Fabric.Channel.mac_failures rx)

let test_channel_replay_rejected () =
  let tx, rx = Fabric.Channel.pair ~key:key_a ~chan:1 () in
  let wire = Fabric.Channel.send tx "once" in
  (match Fabric.Channel.recv rx wire with Ok _ -> () | Error _ -> Alcotest.fail "first delivery");
  (match Fabric.Channel.recv rx wire with
  | Error (Fabric.Channel.Replayed 0) -> ()
  | Error e -> Alcotest.fail ("expected Replayed 0, got " ^ Fabric.Channel.recv_error_to_string e)
  | Ok _ -> Alcotest.fail "replayed frame delivered twice");
  Alcotest.(check int) "replay counted" 1 (Fabric.Channel.replay_rejects rx);
  Alcotest.(check int) "delivered once" 1 (Fabric.Channel.delivered rx)

let test_channel_stale_rejected () =
  let tx, rx = Fabric.Channel.pair ~window:2 ~key:key_a ~chan:1 () in
  let wires = List.init 6 (fun i -> Fabric.Channel.send tx (string_of_int i)) in
  List.iter (fun w -> match Fabric.Channel.recv rx w with Ok _ -> () | Error _ -> Alcotest.fail "in-order") wires;
  (* seq 0 is far behind high = 5 with a 2-wide window: stale, not replay. *)
  (match Fabric.Channel.recv rx (List.hd wires) with
  | Error (Fabric.Channel.Stale 0) -> ()
  | Error e -> Alcotest.fail ("expected Stale 0, got " ^ Fabric.Channel.recv_error_to_string e)
  | Ok _ -> Alcotest.fail "pre-window frame delivered");
  Alcotest.(check int) "stale counted" 1 (Fabric.Channel.stale_rejects rx)

let test_channel_wrong_channel () =
  (* Same key, different channel ids: the frame authenticates but must
     still bounce — payloads cannot migrate across channels. *)
  let tx1, _ = Fabric.Channel.pair ~key:key_a ~chan:1 () in
  let _, rx2 = Fabric.Channel.pair ~key:key_a ~chan:2 () in
  let wire = Fabric.Channel.send tx1 "stray" in
  (match Fabric.Channel.recv rx2 wire with
  | Error (Fabric.Channel.Wrong_channel 1) -> ()
  | Error e -> Alcotest.fail ("expected Wrong_channel 1, got " ^ Fabric.Channel.recv_error_to_string e)
  | Ok _ -> Alcotest.fail "cross-channel frame delivered");
  Alcotest.(check int) "wrong-channel counted" 1 (Fabric.Channel.wrong_channel_rejects rx2)

let test_channel_garbage () =
  let _, rx = Fabric.Channel.pair ~key:key_a ~chan:1 () in
  (match Fabric.Channel.recv rx "not a frame" with
  | Error (Fabric.Channel.Decode _) -> ()
  | Error e -> Alcotest.fail ("expected Decode, got " ^ Fabric.Channel.recv_error_to_string e)
  | Ok _ -> Alcotest.fail "garbage delivered");
  Alcotest.(check int) "mac failure counted" 1 (Fabric.Channel.mac_failures rx)

let test_channel_buffer_and_tap () =
  let taps = ref [] in
  let tx, _rx = Fabric.Channel.pair ~buffer:3 ~tap:(fun w -> taps := w :: !taps) ~key:key_a ~chan:4 () in
  List.iter (fun p -> ignore (Fabric.Channel.send tx p)) [ "a"; "b"; "c"; "d"; "e" ];
  (* The replay buffer keeps only the newest [buffer] payloads, oldest
     first — that is exactly the state a failover can replay. *)
  Alcotest.(check (list string)) "buffer keeps newest 3, oldest first" [ "c"; "d"; "e" ] (Fabric.Channel.buffered tx);
  Alcotest.(check int) "tap saw every wire frame" 5 (List.length !taps);
  List.iter
    (fun w ->
      match Fabric.Frame.decode_exact ~key:key_a w with
      | Ok f -> Alcotest.(check int) "tapped frame on chan 4" 4 f.Fabric.Frame.chan
      | Error e -> Alcotest.fail (Fabric.Frame.error_to_string e))
    !taps

(* ---------- Endpoint establishment (live S-NIC attestation) ---------- *)

let boot_rig () =
  let api = Snic.Api.boot () in
  let insns = Snic.Api.instructions api in
  let vendor_public = Snic.Identity.vendor_public (Snic.Api.vendor api) in
  let config =
    { Snic.Instructions.default_config with Snic.Instructions.cores = [ 0 ]; image = String.make 4096 '\x5A'; memory_bytes = 4096 }
  in
  match Snic.Api.nf_create api config with
  | Error e -> Alcotest.fail ("nf_create: " ^ e)
  | Ok vnic -> (insns, vendor_public, Snic.Vnic.id vnic)

let rig_rng () = Random.State.make [| 0xFAB; 99 |]

let test_establish_loopback () =
  let insns, vendor_public, nf = boot_rig () in
  let ep = Fabric.Endpoint.make ~nic:0 ~insns ~nf () in
  match Fabric.Endpoint.establish (rig_rng ()) ~vendor_public ~chan:0 ep ep with
  | Error e -> Alcotest.fail (Fabric.Endpoint.error_to_string e)
  | Ok (tx, rx) -> (
    match Fabric.Channel.recv rx (Fabric.Channel.send tx "attested bytes") with
    | Ok p -> Alcotest.(check string) "payload over an attested channel" "attested bytes" p
    | Error e -> Alcotest.fail (Fabric.Channel.recv_error_to_string e))

let test_establish_dead_endpoint () =
  let insns, vendor_public, nf = boot_rig () in
  let live = Fabric.Endpoint.make ~nic:0 ~insns ~nf () in
  let dead = Fabric.Endpoint.make ~alive:(fun () -> false) ~nic:3 ~insns ~nf () in
  match Fabric.Endpoint.establish (rig_rng ()) ~vendor_public ~chan:0 live dead with
  | Error (Fabric.Endpoint.Endpoint_down 3) -> ()
  | Error e -> Alcotest.fail ("expected Endpoint_down 3, got " ^ Fabric.Endpoint.error_to_string e)
  | Ok _ -> Alcotest.fail "established a channel to a dead NIC"

let test_establish_misstaged_image () =
  let insns, vendor_public, nf = boot_rig () in
  let good = Fabric.Endpoint.make ~nic:0 ~insns ~nf () in
  let misstaged = Fabric.Endpoint.make ~expected_measurement:"bogus-measurement" ~nic:0 ~insns ~nf () in
  match Fabric.Endpoint.establish (rig_rng ()) ~vendor_public ~chan:0 good misstaged with
  | Error (Fabric.Endpoint.Attest_failed { nic = 0; reason }) ->
    Alcotest.(check bool) "reason is non-empty" true (String.length reason > 0)
  | Error e -> Alcotest.fail ("expected Attest_failed, got " ^ Fabric.Endpoint.error_to_string e)
  | Ok _ -> Alcotest.fail "mis-staged image attested"

let test_establish_identity_reuse () =
  let insns, vendor_public, nf = boot_rig () in
  let registry = Fabric.Endpoint.registry_create () in
  let ep = Fabric.Endpoint.make ~nic:0 ~insns ~nf () in
  (match Fabric.Endpoint.establish ~registry (rig_rng ()) ~vendor_public ~chan:0 ep ep with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("honest establishment refused: " ^ Fabric.Endpoint.error_to_string e));
  (* The same EK surfacing under a fabricated NIC id is a clone. *)
  let clone = Fabric.Endpoint.make ~nic:9 ~insns ~nf () in
  match Fabric.Endpoint.establish ~registry (rig_rng ()) ~vendor_public ~chan:1 ep clone with
  | Error (Fabric.Endpoint.Identity_reuse { nic = 9; prior = 0 }) -> ()
  | Error e -> Alcotest.fail ("expected Identity_reuse, got " ^ Fabric.Endpoint.error_to_string e)
  | Ok _ -> Alcotest.fail "cloned EK under a new NIC id accepted"

(* ---------- End-to-end fabric scenario ---------- *)

let small_config =
  {
    Fleet.Chaos.default_fabric_config with
    Fleet.Chaos.f_flows = 24;
    f_packets_per_flow = 2;
    f_replay = 8;
    f_reorder = 8;
    f_tamper = 6;
  }

let test_run_fabric_invariants () =
  let r = Fleet.Chaos.run_fabric small_config in
  Alcotest.(check int) "no benign MAC failures" 0 r.Fleet.Chaos.f_benign_mac_failures;
  Alcotest.(check int) "every replay rejected" r.Fleet.Chaos.f_replay_sent r.Fleet.Chaos.f_replay_rejected;
  Alcotest.(check int) "every stale rejected" r.Fleet.Chaos.f_stale_sent r.Fleet.Chaos.f_stale_rejected;
  Alcotest.(check int) "every tampered frame rejected" r.Fleet.Chaos.f_tamper_sent r.Fleet.Chaos.f_tamper_rejected;
  Alcotest.(check bool) "adversarial traffic was sent" true
    (r.Fleet.Chaos.f_replay_sent > 0 && r.Fleet.Chaos.f_stale_sent > 0 && r.Fleet.Chaos.f_tamper_sent > 0);
  Alcotest.(check bool) "failed over" true r.Fleet.Chaos.f_failed_over;
  Alcotest.(check bool) "fail closed everywhere" true (Fleet.Chaos.fabric_fail_closed r);
  Alcotest.(check bool) "dead NIC refused" true r.Fleet.Chaos.f_dead_establish_refused;
  Alcotest.(check bool) "mis-staged image refused" true r.Fleet.Chaos.f_misstage_rejected;
  Alcotest.(check bool) "cloned EK refused" true r.Fleet.Chaos.f_clone_rejected;
  Alcotest.(check bool) "goodput survives the failover" true (r.Fleet.Chaos.f_goodput_ratio >= 0.9);
  Alcotest.(check int) "rebuilt tracker recovered every admitted flow" r.Fleet.Chaos.f_admitted
    r.Fleet.Chaos.f_state_recovered;
  Alcotest.(check bool) "state was replayed from the buffer" true (r.Fleet.Chaos.f_state_replayed > 0);
  Alcotest.(check bool) "attested establishments happened" true (r.Fleet.Chaos.f_handshakes >= 2);
  Alcotest.(check bool) "frames crossed the fabric" true (r.Fleet.Chaos.f_hops > 0)

let test_run_fabric_no_kill () =
  let r = Fleet.Chaos.run_fabric { small_config with Fleet.Chaos.f_kill = false } in
  Alcotest.(check bool) "no failover without a kill" false r.Fleet.Chaos.f_failed_over;
  Alcotest.(check int) "no state replayed" 0 r.Fleet.Chaos.f_state_replayed;
  Alcotest.(check (float 0.0001)) "goodput matches the baseline" 1.0 r.Fleet.Chaos.f_goodput_ratio;
  (* The negative establishment probes still run and still fail closed. *)
  Alcotest.(check bool) "fail closed without the kill" true (Fleet.Chaos.fabric_fail_closed r);
  Alcotest.(check int) "benign traffic still clean" 0 r.Fleet.Chaos.f_benign_mac_failures

(* The ddos suite's determinism pattern: three seeds, each replayed
   twice byte-identically, and distinct seeds actually diverge. *)
let test_run_fabric_determinism () =
  let summaries =
    List.map
      (fun seed ->
        let cfg = { small_config with Fleet.Chaos.f_seed = seed } in
        let s1 = Fleet.Chaos.fabric_summary (Fleet.Chaos.run_fabric cfg) in
        let s2 = Fleet.Chaos.fabric_summary (Fleet.Chaos.run_fabric cfg) in
        Alcotest.(check string) (Printf.sprintf "seed %d replays byte-identically" seed) s1 s2;
        s1)
      [ 42; 1337; 20240 ]
  in
  Alcotest.(check int) "three seeds diverge" 3 (List.length (List.sort_uniq compare summaries))

let test_run_fabric_domains () =
  let s1 = Fleet.Chaos.fabric_summary (Fleet.Chaos.run_fabric_with ~domains:1 small_config) in
  let s4 = Fleet.Chaos.fabric_summary (Fleet.Chaos.run_fabric_with ~domains:4 small_config) in
  Alcotest.(check string) "domains 1 = domains 4" s1 s4

let test_run_fabric_many () =
  let shards = Fleet.Chaos.run_fabric_many ~shards:2 small_config in
  Alcotest.(check int) "two shards" 2 (Array.length shards);
  Alcotest.(check bool) "shards run under derived seeds" true
    (shards.(0).Fleet.Chaos.f_events_digest <> shards.(1).Fleet.Chaos.f_events_digest);
  let again = Fleet.Chaos.run_fabric_many ~domains:2 ~shards:2 small_config in
  Array.iteri
    (fun i r ->
      Alcotest.(check string)
        (Printf.sprintf "shard %d identical at domains 2" i)
        (Fleet.Chaos.fabric_summary shards.(i))
        (Fleet.Chaos.fabric_summary r))
    again

let test_run_fabric_validation () =
  let check name msg cfg =
    Alcotest.check_raises name (Invalid_argument msg) (fun () -> ignore (Fleet.Chaos.run_fabric cfg))
  in
  check "too few NICs" "Chaos.run_fabric: need at least 3 NICs (two stages + a spare)"
    { small_config with Fleet.Chaos.f_nics = 2 };
  check "no flows" "Chaos.run_fabric: need at least 1 flow" { small_config with Fleet.Chaos.f_flows = 0 };
  check "no packets" "Chaos.run_fabric: need at least 1 packet per flow"
    { small_config with Fleet.Chaos.f_packets_per_flow = 0 };
  check "window too wide" "Chaos.run_fabric: window must be within 1..62" { small_config with Fleet.Chaos.f_window = 63 };
  check "negative buffer" "Chaos.run_fabric: negative replay buffer" { small_config with Fleet.Chaos.f_buffer = -1 };
  check "negative adversary" "Chaos.run_fabric: adversarial counts must be >= 0"
    { small_config with Fleet.Chaos.f_tamper = -1 }

let test_run_fabric_counters () =
  let sink = Obs.create () in
  ignore (Fleet.Chaos.run_fabric ~sink small_config);
  let counter name =
    match Obs.registry sink with
    | None -> Alcotest.fail "recording sink has a registry"
    | Some reg -> Option.value ~default:0 (List.assoc_opt name (Obs.Metrics.counters reg))
  in
  Alcotest.(check bool) "tx counted" true (counter "snic_fabric_tx_total" > 0);
  Alcotest.(check bool) "rx counted" true (counter "snic_fabric_rx_total" > 0);
  Alcotest.(check bool) "hops counted" true (counter "snic_fabric_hop_total" > 0);
  Alcotest.(check bool) "handshakes counted" true (counter "snic_fabric_handshake_total" > 0);
  Alcotest.(check bool) "replay drops counted" true (counter "snic_fabric_replay_drop_total" > 0);
  Alcotest.(check bool) "stale drops counted" true (counter "snic_fabric_stale_drop_total" > 0);
  Alcotest.(check bool) "mac failures counted" true (counter "snic_fabric_mac_fail_total" > 0);
  Alcotest.(check bool) "failover counted" true (counter "snic_fabric_failover_total" > 0)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_frame_roundtrip;
    QCheck_alcotest.to_alcotest prop_frame_garbage;
    QCheck_alcotest.to_alcotest prop_frame_truncation;
    QCheck_alcotest.to_alcotest prop_frame_bitflip;
    Alcotest.test_case "frame trailing + magic" `Quick test_frame_trailing;
    Alcotest.test_case "frame wrong key" `Quick test_frame_wrong_key;
    Alcotest.test_case "frame concatenated walk" `Quick test_frame_concat_walk;
    Alcotest.test_case "frame validation" `Quick test_frame_validation;
    QCheck_alcotest.to_alcotest prop_window_monotone;
    Alcotest.test_case "window edges" `Quick test_window_edges;
    Alcotest.test_case "window validation" `Quick test_window_validation;
    Alcotest.test_case "derive_key injective" `Quick test_derive_key_injective;
    Alcotest.test_case "channel round trip" `Quick test_channel_roundtrip;
    Alcotest.test_case "channel replay rejected" `Quick test_channel_replay_rejected;
    Alcotest.test_case "channel stale rejected" `Quick test_channel_stale_rejected;
    Alcotest.test_case "channel wrong channel" `Quick test_channel_wrong_channel;
    Alcotest.test_case "channel garbage" `Quick test_channel_garbage;
    Alcotest.test_case "channel buffer + tap" `Quick test_channel_buffer_and_tap;
    Alcotest.test_case "establish loopback" `Quick test_establish_loopback;
    Alcotest.test_case "establish dead endpoint" `Quick test_establish_dead_endpoint;
    Alcotest.test_case "establish mis-staged image" `Quick test_establish_misstaged_image;
    Alcotest.test_case "establish identity reuse" `Quick test_establish_identity_reuse;
    Alcotest.test_case "run_fabric invariants" `Quick test_run_fabric_invariants;
    Alcotest.test_case "run_fabric no kill" `Quick test_run_fabric_no_kill;
    Alcotest.test_case "run_fabric 3-seed determinism" `Quick test_run_fabric_determinism;
    Alcotest.test_case "run_fabric domains agree" `Quick test_run_fabric_domains;
    Alcotest.test_case "run_fabric sharded" `Quick test_run_fabric_many;
    Alcotest.test_case "run_fabric validation" `Quick test_run_fabric_validation;
    Alcotest.test_case "run_fabric obs counters" `Quick test_run_fabric_counters;
  ]
