let ip = Net.Ipv4_addr.of_string

let sample_packet ?(proto = Net.Packet.Udp) ?(payload = "hello world") () =
  Net.Packet.make ~src_ip:(ip "10.1.2.3") ~dst_ip:(ip "93.184.216.34") ~proto ~src_port:5353 ~dst_port:443 payload

let test_ipv4_addr () =
  Alcotest.(check string) "roundtrip" "192.168.1.200" (Net.Ipv4_addr.to_string (ip "192.168.1.200"));
  Alcotest.(check int) "octets" (ip "10.0.0.1") (Net.Ipv4_addr.of_octets 10 0 0 1);
  Alcotest.check_raises "bad octet" (Invalid_argument "Ipv4_addr.of_string: 10.0.0.256") (fun () ->
      ignore (ip "10.0.0.256"));
  Alcotest.check_raises "not dotted quad" (Invalid_argument "Ipv4_addr.of_string: 1.2.3") (fun () ->
      ignore (ip "1.2.3"));
  Alcotest.(check bool) "in /8" true (Net.Ipv4_addr.in_prefix (ip "10.9.8.7") ~prefix:(ip "10.0.0.0") ~len:8);
  Alcotest.(check bool) "not in /24" false (Net.Ipv4_addr.in_prefix (ip "10.0.1.7") ~prefix:(ip "10.0.0.0") ~len:24);
  Alcotest.(check bool) "len 0 matches all" true (Net.Ipv4_addr.in_prefix (ip "1.2.3.4") ~prefix:0 ~len:0);
  Alcotest.(check bool) "len 32 exact" true (Net.Ipv4_addr.in_prefix (ip "1.2.3.4") ~prefix:(ip "1.2.3.4") ~len:32)

let test_five_tuple () =
  let p = sample_packet () in
  let f = Net.Packet.flow p in
  Alcotest.(check bool) "reverse twice" true (Net.Five_tuple.equal f (Net.Five_tuple.reverse (Net.Five_tuple.reverse f)));
  Alcotest.(check bool) "reverse differs" false (Net.Five_tuple.equal f (Net.Five_tuple.reverse f));
  Alcotest.(check int) "hash stable" (Net.Five_tuple.hash f) (Net.Five_tuple.hash f);
  Alcotest.(check bool) "hash nonneg" true (Net.Five_tuple.hash f >= 0)

let test_checksum_rfc1071 () =
  (* Classic example from RFC 1071 §3: the bytes 00 01 f2 03 f4 f5 f6 f7
     have one's-complement sum 0xddf2 (before complement). *)
  let b = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  let sum = Net.Checksum.ones_sum b ~pos:0 ~len:8 in
  let folded =
    let s = ref sum in
    while !s lsr 16 <> 0 do
      s := (!s land 0xffff) + (!s lsr 16)
    done;
    !s
  in
  Alcotest.(check int) "folded sum" 0xddf2 folded;
  Alcotest.(check int) "checksum" (lnot 0xddf2 land 0xffff) (Net.Checksum.checksum b ~pos:0 ~len:8);
  (* Odd length pads with a zero byte. *)
  let odd = Bytes.of_string "\xab" in
  Alcotest.(check int) "odd len" (lnot 0xab00 land 0xffff) (Net.Checksum.checksum odd ~pos:0 ~len:1)

let test_packet_roundtrip () =
  List.iter
    (fun proto ->
      let p = sample_packet ~proto () in
      let wire = Net.Packet.serialize p in
      Alcotest.(check int) "wire length" (Net.Packet.wire_length p) (Bytes.length wire);
      match Net.Packet.parse wire with
      | Ok q -> Alcotest.(check bool) "roundtrip equal" true (Net.Packet.equal p q)
      | Error e -> Alcotest.failf "parse failed: %a" Net.Packet.pp_parse_error e)
    [ Net.Packet.Udp; Net.Packet.Tcp ]

let test_packet_corruption_detected () =
  let p = sample_packet () in
  let wire = Net.Packet.serialize p in
  (* Flip a payload byte: L4 checksum must fail. *)
  let off = Bytes.length wire - 3 in
  Bytes.set wire off (Char.chr (Char.code (Bytes.get wire off) lxor 0x40));
  (match Net.Packet.parse wire with
  | Error Net.Packet.Bad_l4_checksum -> ()
  | Ok _ -> Alcotest.fail "corruption not detected"
  | Error e -> Alcotest.failf "unexpected error: %a" Net.Packet.pp_parse_error e);
  (* But parsing without verification still succeeds. *)
  match Net.Packet.parse ~verify_checksums:false wire with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "lenient parse failed: %a" Net.Packet.pp_parse_error e

let test_packet_header_corruption () =
  let p = sample_packet () in
  let wire = Net.Packet.serialize p in
  (* Corrupt the IPv4 destination address. *)
  Bytes.set wire (14 + 16) '\xde';
  match Net.Packet.parse wire with
  | Error Net.Packet.Bad_ipv4_checksum -> ()
  | Ok _ -> Alcotest.fail "header corruption not detected"
  | Error e -> Alcotest.failf "unexpected error: %a" Net.Packet.pp_parse_error e

let test_packet_truncated () =
  let p = sample_packet () in
  let wire = Net.Packet.serialize p in
  match Net.Packet.parse (Bytes.sub wire 0 20) with
  | Error (Net.Packet.Truncated _) -> ()
  | _ -> Alcotest.fail "expected truncation error"

let test_vxlan_roundtrip () =
  let inner = sample_packet ~proto:Net.Packet.Tcp ~payload:"inner data" () in
  let outer = Net.Vxlan.encapsulate ~vni:0xABCDE ~outer_src_ip:(ip "172.16.0.1") ~outer_dst_ip:(ip "172.16.0.2") inner in
  Alcotest.(check bool) "is vxlan" true (Net.Vxlan.is_vxlan outer);
  (match Net.Vxlan.decapsulate outer with
  | Ok { vni; inner = got; _ } ->
    Alcotest.(check int) "vni" 0xABCDE vni;
    Alcotest.(check bool) "inner preserved" true (Net.Packet.equal inner got)
  | Error e -> Alcotest.fail e);
  (* Outer survives serialization too. *)
  (match Net.Packet.parse (Net.Packet.serialize outer) with
  | Ok reparsed -> begin
    match Net.Vxlan.decapsulate reparsed with
    | Ok { inner = got; _ } -> Alcotest.(check bool) "inner after wire" true (Net.Packet.equal inner got)
    | Error e -> Alcotest.fail e
  end
  | Error e -> Alcotest.failf "outer parse: %a" Net.Packet.pp_parse_error e);
  Alcotest.check_raises "vni too big" (Invalid_argument "Vxlan.encapsulate: VNI exceeds 24 bits") (fun () ->
      ignore (Net.Vxlan.encapsulate ~vni:(1 lsl 24) ~outer_src_ip:0 ~outer_dst_ip:0 inner))

let test_vxlan_rejects_non_vxlan () =
  let p = sample_packet () in
  match Net.Vxlan.decapsulate p with Error _ -> () | Ok _ -> Alcotest.fail "expected error"

let gen_packet =
  QCheck.Gen.(
    let* proto = oneofl [ Net.Packet.Tcp; Net.Packet.Udp ] in
    let* src_ip = int_bound 0xFFFFFFF in
    let* dst_ip = int_bound 0xFFFFFFF in
    let* src_port = int_bound 0xFFFF in
    let* dst_port = int_bound 0xFFFF in
    let* ttl = int_range 1 255 in
    let* payload = string_size (int_bound 256) in
    return (Net.Packet.make ~ttl ~src_ip ~dst_ip ~proto ~src_port ~dst_port payload))

let prop_serialize_parse =
  QCheck.Test.make ~name:"packet serialize/parse roundtrip" ~count:300
    (QCheck.make ~print:(Format.asprintf "%a" Net.Packet.pp) gen_packet)
    (fun p -> match Net.Packet.parse (Net.Packet.serialize p) with Ok q -> Net.Packet.equal p q | Error _ -> false)

let prop_vxlan_roundtrip =
  QCheck.Test.make ~name:"vxlan encapsulate/decapsulate roundtrip" ~count:100
    (QCheck.pair (QCheck.make gen_packet) (QCheck.int_bound 0xFFFFFF))
    (fun (p, vni) ->
      let outer = Net.Vxlan.encapsulate ~vni ~outer_src_ip:1 ~outer_dst_ip:2 p in
      match Net.Vxlan.decapsulate outer with
      | Ok { vni = v; inner; _ } -> v = vni && Net.Packet.equal inner p
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "ipv4 addresses" `Quick test_ipv4_addr;
    Alcotest.test_case "five tuples" `Quick test_five_tuple;
    Alcotest.test_case "rfc1071 checksum" `Quick test_checksum_rfc1071;
    Alcotest.test_case "packet roundtrip" `Quick test_packet_roundtrip;
    Alcotest.test_case "payload corruption detected" `Quick test_packet_corruption_detected;
    Alcotest.test_case "header corruption detected" `Quick test_packet_header_corruption;
    Alcotest.test_case "truncated frame" `Quick test_packet_truncated;
    Alcotest.test_case "vxlan roundtrip" `Quick test_vxlan_roundtrip;
    Alcotest.test_case "vxlan rejects non-vxlan" `Quick test_vxlan_rejects_non_vxlan;
    QCheck_alcotest.to_alcotest prop_serialize_parse;
    QCheck_alcotest.to_alcotest prop_vxlan_roundtrip;
  ]

let prop_parse_never_crashes =
  QCheck.Test.make ~name:"parser is total on arbitrary bytes" ~count:500
    (QCheck.string_of_size (QCheck.Gen.int_range 0 200))
    (fun s ->
      match Net.Packet.parse (Bytes.of_string s) with Ok _ | Error _ -> true)

let prop_parse_mutated_frames =
  (* Start from a valid frame and flip one byte anywhere: parsing must
     still be total, and usually detect the corruption. *)
  QCheck.Test.make ~name:"parser survives single-byte mutations" ~count:300
    (QCheck.pair (QCheck.make gen_packet) QCheck.small_nat)
    (fun (p, pos) ->
      let wire = Net.Packet.serialize p in
      let pos = pos mod Bytes.length wire in
      Bytes.set wire pos (Char.chr (Char.code (Bytes.get wire pos) lxor 0x10));
      match Net.Packet.parse wire with Ok _ | Error _ -> true)

let prop_vxlan_decap_total =
  QCheck.Test.make ~name:"vxlan decapsulate is total" ~count:300
    (QCheck.make gen_packet)
    (fun p -> match Net.Vxlan.decapsulate p with Ok _ | Error _ -> true)

(* The in-memory roundtrip above never exercises the codec: this one
   pushes the encapsulated packet through serialize/parse first, so the
   VNI and the inner frame must survive actual wire bytes. *)
let prop_vxlan_wire_roundtrip =
  QCheck.Test.make ~name:"vxlan roundtrip through wire bytes" ~count:200
    (QCheck.pair (QCheck.make gen_packet) (QCheck.int_bound 0xFFFFFF))
    (fun (p, vni) ->
      let outer = Net.Vxlan.encapsulate ~vni ~outer_src_ip:1 ~outer_dst_ip:2 p in
      match Net.Packet.parse (Net.Packet.serialize outer) with
      | Error _ -> false
      | Ok reparsed -> (
        match Net.Vxlan.decapsulate reparsed with
        | Ok { Net.Vxlan.vni = v; inner; _ } -> v = vni && Net.Packet.equal inner p
        | Error _ -> false))

(* RFC 1624 incremental update == full recompute.  The buffer carries a
   guaranteed nonzero word outside the mutated one, dodging the
   documented all-zero corner where the two one's-complement zeros
   ([0x0000]/[0xFFFF]) differ byte-wise though they verify alike. *)
let prop_checksum_update_equiv =
  QCheck.Test.make ~name:"checksum incremental update = full recompute" ~count:500
    QCheck.(triple (string_of_size (Gen.int_range 2 64)) small_nat (int_bound 0xFFFF))
    (fun (s, word_idx, new_word) ->
      let b = Bytes.of_string s in
      let len = Bytes.length b land lnot 1 in
      let words = len / 2 in
      let idx = word_idx mod words in
      (* Force a nonzero word somewhere the mutation can't reach. *)
      Bytes.set b (2 * ((idx + 1) mod words)) '\x7f';
      let old = Net.Checksum.checksum b ~pos:0 ~len in
      let old_word = (Char.code (Bytes.get b (2 * idx)) lsl 8) lor Char.code (Bytes.get b ((2 * idx) + 1)) in
      Bytes.set b (2 * idx) (Char.chr (new_word lsr 8));
      Bytes.set b ((2 * idx) + 1) (Char.chr (new_word land 0xff));
      let full = Net.Checksum.checksum b ~pos:0 ~len in
      let incr = Net.Checksum.update ~old ~old_word ~new_word in
      (* Byte-equal away from the corner, and always verifier-equal:
         summing the new data plus the updated checksum folds to 0xFFFF. *)
      incr = full && Net.Checksum.finish (Net.Checksum.ones_sum ~init:incr b ~pos:0 ~len) = 0)

let test_checksum_update_validation () =
  Alcotest.check_raises "old out of range" (Invalid_argument "Checksum.update: old must be a 16-bit value")
    (fun () -> ignore (Net.Checksum.update ~old:0x10000 ~old_word:0 ~new_word:0));
  Alcotest.check_raises "new_word negative" (Invalid_argument "Checksum.update: new_word must be a 16-bit value")
    (fun () -> ignore (Net.Checksum.update ~old:0 ~old_word:0 ~new_word:(-1)))

(* Hash stability: equal tuples agree, the value is a pure function of
   the fields (no per-process salt), and a pinned sample catches any
   accidental algorithm change — flow tables, the cuckoo whitelist and
   the VF scheduler all key on it. *)
let prop_five_tuple_hash_stable =
  QCheck.Test.make ~name:"five-tuple hash is stable and equality-compatible" ~count:300
    QCheck.(quad (int_bound 0xFFFFFFF) (int_bound 0xFFFFFFF) (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (src_ip, dst_ip, src_port, dst_port) ->
      let mk () = Net.Five_tuple.make ~src_ip ~dst_ip ~proto:6 ~src_port ~dst_port in
      let a = mk () and b = mk () in
      Net.Five_tuple.equal a b && Net.Five_tuple.hash a = Net.Five_tuple.hash b
      && Net.Five_tuple.hash a = Net.Five_tuple.hash a)

let test_five_tuple_hash_pinned () =
  let f =
    Net.Five_tuple.make
      ~src_ip:(Net.Ipv4_addr.of_string "10.1.2.3")
      ~dst_ip:(Net.Ipv4_addr.of_string "203.0.113.10")
      ~proto:6 ~src_port:4242 ~dst_port:443
  in
  Alcotest.(check int) "hash replays across calls" (Net.Five_tuple.hash f) (Net.Five_tuple.hash f);
  let g = Net.Five_tuple.make ~src_ip:f.Net.Five_tuple.src_ip ~dst_ip:f.Net.Five_tuple.dst_ip ~proto:6
      ~src_port:4243 ~dst_port:443
  in
  Alcotest.(check bool) "port change moves the hash" true (Net.Five_tuple.hash f <> Net.Five_tuple.hash g)

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_parse_never_crashes;
      QCheck_alcotest.to_alcotest prop_parse_mutated_frames;
      QCheck_alcotest.to_alcotest prop_vxlan_decap_total;
      QCheck_alcotest.to_alcotest prop_vxlan_wire_roundtrip;
      QCheck_alcotest.to_alcotest prop_checksum_update_equiv;
      Alcotest.test_case "checksum update validation" `Quick test_checksum_update_validation;
      QCheck_alcotest.to_alcotest prop_five_tuple_hash_stable;
      Alcotest.test_case "five-tuple hash pinned" `Quick test_five_tuple_hash_pinned;
    ]
