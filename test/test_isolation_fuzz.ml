(* Randomized model checking of S-NIC's central invariant: across any
   interleaving of launches, teardowns, packet deliveries and memory
   accesses, no principal ever reads or writes a byte owned by someone
   else, and secrets written by one function are never observable by
   another — even after the first function is gone (teardown scrubs). *)

open Nicsim

let secret_of id = Printf.sprintf "secret-of-nf-%d-%08x" id (id * 0x9E3779)

(* One fuzz run: a scripted random interleaving driven by [seed]. With
   [rates], a gray-failure storm is armed on the machine first: staging
   DMA errors turn some launches into typed failures and packet faults
   drop or corrupt traffic, but the isolation and scrub invariants
   checked below must hold exactly as on a clean NIC. *)
let fuzz_run ?rates seed =
  let rng = Trace.Rng.create ~seed in
  let api = Snic.Api.boot () in
  let m = Snic.Api.machine api in
  (match rates with
  | Some r -> Machine.set_faults m (Faults.plan ~seed:(seed lxor 0xFA17) r)
  | None -> ());
  let live : (int, Snic.Vnic.t) Hashtbl.t = Hashtbl.create 8 in
  let launches = ref 0 and teardowns = ref 0 and denials = ref 0 in
  let check_isolation () =
    (* Every pair of live functions: A cannot read B's memory; the OS can
       read neither; each can read its own. *)
    Hashtbl.iter
      (fun id_a vnic_a ->
        let h_a = Snic.Vnic.handle vnic_a in
        (match Snic.Vnic.read_phys vnic_a ~paddr:h_a.Snic.Instructions.mem_base ~len:24 with
        | Ok s ->
          if not (String.equal s (String.sub (secret_of id_a ^ String.make 24 '\000') 0 24)) then
            Alcotest.failf "NF %d cannot read back its own secret" id_a
        | Error f -> Alcotest.failf "NF %d denied its own memory: %s" id_a (Machine.fault_to_string f));
        (match Machine.load_u8 m Machine.Os (Machine.Phys h_a.Snic.Instructions.mem_base) with
        | Error _ -> incr denials
        | Ok _ -> Alcotest.failf "OS read NF %d's memory" id_a);
        Hashtbl.iter
          (fun id_b vnic_b ->
            if id_a <> id_b then begin
              let h_b = Snic.Vnic.handle vnic_b in
              match Snic.Vnic.read_phys vnic_a ~paddr:h_b.Snic.Instructions.mem_base ~len:8 with
              | Error _ -> incr denials
              | Ok _ -> Alcotest.failf "NF %d read NF %d's memory" id_a id_b
            end)
          live)
      live
  in
  for _step = 1 to 60 do
    match Trace.Rng.int rng 5 with
    | 0 | 1 -> begin
      (* Launch a new function with a random shape (if resources allow). *)
      let config =
        {
          Snic.Instructions.default_config with
          image = "fuzz-image";
          memory_bytes = (1 + Trace.Rng.int rng 4) * 64 * 1024;
          rules = (if Trace.Rng.bool rng then [ Pktio.match_any ] else []);
          accels = (if Trace.Rng.int rng 3 = 0 then [ (Accel.Dpi, 1) ] else []);
          rx_bytes = 16 * 1024;
          tx_bytes = 16 * 1024;
        }
      in
      match Snic.Api.nf_create api config with
      | Ok vnic ->
        incr launches;
        let id = Snic.Vnic.id vnic in
        (* The function writes a recognizable secret into its RAM. *)
        (match Snic.Vnic.write_virt vnic ~vaddr:0x10000000 (secret_of id) with
        | Ok () -> ()
        | Error f -> Alcotest.failf "fresh NF cannot write its memory: %s" (Machine.fault_to_string f));
        Hashtbl.replace live id vnic
      | Error _ -> () (* resource exhaustion is legitimate *)
    end
    | 2 -> begin
      (* Tear down a random live function and verify the scrub: its
         secret must not be visible to the OS afterwards. *)
      let ids = Hashtbl.fold (fun id _ acc -> id :: acc) live [] in
      match ids with
      | [] -> ()
      | _ ->
        let id = List.nth ids (Trace.Rng.int rng (List.length ids)) in
        let h = Snic.Vnic.handle (Hashtbl.find live id) in
        (match Snic.Api.nf_destroy api ~id with
        | Ok () -> incr teardowns
        | Error e -> Alcotest.fail (Snic.Api.destroy_error_to_string e));
        Hashtbl.remove live id;
        (* Pages are free again: the OS may look, and must see zeroes. *)
        (match
           Machine.load_bytes m Machine.Os (Machine.Phys h.Snic.Instructions.mem_base)
             ~len:(String.length (secret_of id))
         with
        | Ok bytes ->
          if String.exists (fun ch -> ch <> '\000') bytes then
            Alcotest.failf "NF %d's secret survived teardown" id
        | Error f -> Alcotest.failf "OS denied freed memory: %s" (Machine.fault_to_string f))
    end
    | 3 -> begin
      (* Push a packet at a random live function that has rules. *)
      let pkt =
        Net.Packet.make ~src_ip:(Trace.Rng.int rng 0xFFFFFF) ~dst_ip:(Trace.Rng.int rng 0xFFFFFF)
          ~proto:Net.Packet.Udp ~src_port:(Trace.Rng.int rng 65536) ~dst_port:(Trace.Rng.int rng 65536) "fuzz"
      in
      ignore (Snic.Api.inject_packet api pkt)
    end
    | _ -> check_isolation ()
  done;
  check_isolation ();
  (!launches, !teardowns, !denials)

let test_fuzz_isolation_invariant () =
  let total_launches = ref 0 and total_denials = ref 0 in
  for seed = 1 to 8 do
    let launches, _teardowns, denials = fuzz_run seed in
    total_launches := !total_launches + launches;
    total_denials := !total_denials + denials
  done;
  (* The runs must actually have exercised the interesting paths. *)
  Alcotest.(check bool) (Printf.sprintf "launched plenty (%d)" !total_launches) true (!total_launches > 20);
  Alcotest.(check bool) (Printf.sprintf "denials observed (%d)" !total_denials) true (!total_denials > 50)

(* The same interleavings under a cranked fault storm: launches now race
   stage faults and the wire loses or corrupts frames, yet the
   single-owner invariant, the OS denylist and the teardown scrub must
   be exactly as absolute as on a healthy NIC. *)
let test_fuzz_isolation_under_faults () =
  let rates = Faults.storm ~intensity:2.0 () in
  let total_launches = ref 0 and total_denials = ref 0 in
  for seed = 1 to 8 do
    let launches, _teardowns, denials = fuzz_run ~rates seed in
    total_launches := !total_launches + launches;
    total_denials := !total_denials + denials
  done;
  (* Faults shrink the population (failed stages are legitimate) but the
     interesting paths must still have been exercised. *)
  Alcotest.(check bool) (Printf.sprintf "launches survived the storm (%d)" !total_launches) true
    (!total_launches > 5);
  Alcotest.(check bool) (Printf.sprintf "denials still observed (%d)" !total_denials) true
    (!total_denials > 10)

(* Lifecycle soak: fill the NIC to capacity, run traffic, tear half down,
   refill, and verify resource accounting never drifts. *)
let test_soak_lifecycle () =
  let api = Snic.Api.boot () in
  let m = Snic.Api.machine api in
  let cores_total = Machine.cores m in
  let launch i =
    Snic.Api.nf_create api
      {
        Snic.Instructions.default_config with
        image = Printf.sprintf "soak-%d" i;
        rules = [ { Pktio.match_any with dst_port = Some (7000 + i) } ];
        rx_bytes = 8 * 1024;
        tx_bytes = 8 * 1024;
      }
  in
  (* Fill every core. *)
  let vnics = ref [] in
  let rec fill i =
    match launch i with
    | Ok v ->
      vnics := v :: !vnics;
      fill (i + 1)
    | Error _ -> i
  in
  let n = fill 0 in
  Alcotest.(check int) "filled all cores" cores_total n;
  Alcotest.(check int) "no free cores" 0 (List.length (Machine.free_cores m));
  (* Run one packet through each. *)
  let echo = { Nf.Types.name = "echo"; process = (fun p -> Nf.Types.Forward p) } in
  List.iteri
    (fun i vnic ->
      let pkt =
        Net.Packet.make ~src_ip:1 ~dst_ip:2 ~proto:Net.Packet.Udp ~src_port:9
          ~dst_port:(7000 + (n - 1 - i))
          "soak"
      in
      (match Snic.Api.inject_packet api pkt with
      | Ok id -> Alcotest.(check int) "routed to the right NF" (Snic.Vnic.id vnic) id
      | Error e -> Alcotest.fail e);
      let stats = Snic.Vnic.process vnic echo ~max:5 in
      Alcotest.(check int) "forwarded" 1 stats.Snic.Vnic.forwarded)
    !vnics;
  (* Tear down every even id, then refill to capacity. *)
  List.iter
    (fun v -> if Snic.Vnic.id v mod 2 = 0 then ignore (Snic.Api.nf_destroy api ~id:(Snic.Vnic.id v)))
    !vnics;
  Alcotest.(check int) "half the cores free" (cores_total / 2) (List.length (Machine.free_cores m));
  let rec refill i acc = match launch (100 + i) with Ok _ -> refill (i + 1) (acc + 1) | Error _ -> acc in
  Alcotest.(check int) "refilled exactly the freed slots" (cores_total / 2) (refill 0 0);
  Alcotest.(check int) "live functions back at capacity" cores_total
    (List.length (Snic.Instructions.live_functions (Snic.Api.instructions api)))

let suite =
  [
    Alcotest.test_case "fuzz: single-owner invariant" `Slow test_fuzz_isolation_invariant;
    Alcotest.test_case "fuzz: invariant under fault storm" `Slow test_fuzz_isolation_under_faults;
    Alcotest.test_case "soak: fill/drain/refill lifecycle" `Quick test_soak_lifecycle;
  ]
