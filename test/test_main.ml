let () =
  Alcotest.run "snic"
    [
      ("bigint", Test_bigint.suite);
      ("crypto", Test_crypto.suite);
      ("net", Test_net.suite);
      ("trace", Test_trace.suite);
      ("nf", Test_nf.suite);
      ("nf-ext", Test_nf_ext.suite);
      ("nicsim", Test_nicsim.suite);
      ("sched", Test_sched.suite);
      ("snic", Test_snic.suite);
      ("snic-ext", Test_snic_ext.suite);
      ("isolation-fuzz", Test_isolation_fuzz.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("properties", Test_properties.suite);
      ("attacks", Test_attacks.suite);
      ("costmodel", Test_costmodel.suite);
      ("memprof", Test_memprof.suite);
      ("uarch", Test_uarch.suite);
      ("accelfn", Test_accelfn.suite);
      ("fleet", Test_fleet.suite);
      ("faults", Test_faults.suite);
      ("chaos", Test_chaos.suite);
      ("obs", Test_obs.suite);
      ("oracle", Test_oracle.suite);
      ("vf", Test_vf.suite);
      ("qos", Test_qos.suite);
      ("ddos", Test_ddos.suite);
      ("fabric", Test_fabric.suite);
      ("par", Test_par.suite);
    ]
