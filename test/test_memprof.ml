let close ?(tol = 0.02) msg expected actual =
  let ok = Float.abs (expected -. actual) <= Float.max (tol *. Float.abs expected) 0.01 in
  Alcotest.(check bool) (Printf.sprintf "%s: expected %.2f, got %.2f" msg expected actual) true ok

(* ---------- Table 6 ---------- *)

let test_profiles_totals () =
  let check name expected = close (name ^ " total") expected (Memprof.Profiles.total_mb (Memprof.Profiles.find name)) in
  check "FW" 17.20;
  check "DPI" 51.14;
  check "NAT" 43.88;
  check "LB" 13.80;
  check "LPM" 68.33;
  check "Mon" 360.54

let test_profiles_tlb_entries () =
  let entries name menu = Memprof.Profiles.tlb_entries (Memprof.Profiles.find name) ~page_sizes:menu in
  let eq = Costmodel.Page_packing.equal_2mb in
  let fl = Costmodel.Page_packing.flex_low in
  let fh = Costmodel.Page_packing.flex_high in
  (* The full Equal column of Table 6. *)
  List.iter2
    (fun name expected -> Alcotest.(check int) (name ^ " Equal") expected (entries name eq))
    [ "FW"; "DPI"; "NAT"; "LB"; "LPM"; "Mon" ]
    [ 11; 28; 25; 10; 37; 183 ];
  (* Flex-high column. *)
  List.iter2
    (fun name expected -> Alcotest.(check int) (name ^ " Flex-high") expected (entries name fh))
    [ "FW"; "DPI"; "NAT"; "LB"; "LPM"; "Mon" ]
    [ 11; 13; 10; 10; 7; 12 ];
  (* Flex-low column; FW is 33 under our exact minimize-waste policy vs
     the paper's 34 (see EXPERIMENTS.md). *)
  List.iter2
    (fun name expected -> Alcotest.(check int) (name ^ " Flex-low") expected (entries name fl))
    [ "DPI"; "NAT"; "LB"; "LPM"; "Mon" ]
    [ 51; 37; 22; 23; 46 ]

let test_profiles_max_drives_table5 () =
  Alcotest.(check int) "Equal max = 183" 183 (Memprof.Profiles.max_entries ~page_sizes:Costmodel.Page_packing.equal_2mb);
  Alcotest.(check int) "Flex-low max = 51" 51 (Memprof.Profiles.max_entries ~page_sizes:Costmodel.Page_packing.flex_low);
  Alcotest.(check int) "Flex-high max = 13" 13
    (Memprof.Profiles.max_entries ~page_sizes:Costmodel.Page_packing.flex_high)

(* ---------- Table 7 ---------- *)

let test_accel_profiles () =
  close "DPI total" 101.90 (Memprof.Accel_profiles.total_mb Memprof.Accel_profiles.dpi);
  close "ZIP total" 132.24 (Memprof.Accel_profiles.total_mb Memprof.Accel_profiles.zip);
  close "RAID total" 8.13 (Memprof.Accel_profiles.total_mb Memprof.Accel_profiles.raid);
  Alcotest.(check int) "DPI entries" 54 (Memprof.Accel_profiles.tlb_entries Memprof.Accel_profiles.dpi);
  Alcotest.(check int) "ZIP entries" 70 (Memprof.Accel_profiles.tlb_entries Memprof.Accel_profiles.zip);
  Alcotest.(check int) "RAID entries" 5 (Memprof.Accel_profiles.tlb_entries Memprof.Accel_profiles.raid)

(* ---------- Hashmap model ---------- *)

let test_hashmap_model () =
  Alcotest.(check int) "empty" 0 (Memprof.Hashmap_model.slots 0);
  Alcotest.(check int) "one" 8 (Memprof.Hashmap_model.slots 1);
  Alcotest.(check int) "7 fits in 8" 8 (Memprof.Hashmap_model.slots 7);
  Alcotest.(check int) "8 overflows to 16" 16 (Memprof.Hashmap_model.slots 8);
  (* The paper's NAT: 65,535 flows need 131,072 slots (65,536 * 7/8 =
     57,344 < 65,535). *)
  Alcotest.(check int) "nat slots" 131_072 (Memprof.Hashmap_model.slots 65_535);
  Alcotest.(check bool) "resize detection" true (Memprof.Hashmap_model.is_resize_point ~prev:7 ~now:8);
  Alcotest.(check bool) "no resize" false (Memprof.Hashmap_model.is_resize_point ~prev:8 ~now:9);
  (* Peak = 1.5x steady. *)
  let steady = Memprof.Hashmap_model.bytes ~entry_bytes:56 1000 in
  Alcotest.(check int) "peak is 1.5x" (steady * 3 / 2) (Memprof.Hashmap_model.resize_peak_bytes ~entry_bytes:56 1000)

(* ---------- Figure 7 ---------- *)

let test_timeline_shape () =
  let series = Memprof.Timeline.monitor () in
  (* Flat preallocation line at Table 6's Monitor total. *)
  (match series with
  | p :: _ -> close ~tol:0.01 "prealloc watermark" 360.54 p.Memprof.Timeline.prealloc_mb
  | [] -> Alcotest.fail "empty series");
  (* Steady state ends near Table 8's 246.31. *)
  close ~tol:0.02 "final steady" 246.31 (Memprof.Timeline.final_mb series);
  (* The peak transient reaches (but does not exceed) the preallocation. *)
  let peak = Memprof.Timeline.peak_mb series in
  close ~tol:0.02 "peak near prealloc" 360.3 peak;
  Alcotest.(check bool) "never exceeds prealloc" true (peak <= 360.54 +. 0.5);
  (* Growth is driven by resize spikes: several local maxima. *)
  Alcotest.(check bool) "has resize spikes" true (Memprof.Timeline.spike_count series >= 3);
  (* Memory grows overall. *)
  let first = match series with p :: _ -> p.Memprof.Timeline.used_mb | [] -> 0. in
  Alcotest.(check bool) "grows" true (Memprof.Timeline.final_mb series > first)

let test_timeline_monotone_time () =
  let series = Memprof.Timeline.monitor ~samples:50 () in
  let rec go = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "time monotone" true (b.Memprof.Timeline.t_s >= a.Memprof.Timeline.t_s);
      go rest
    | _ -> ()
  in
  go series

(* ---------- Table 8 ---------- *)

let test_mur_table8 () =
  let check name ~used ~mur =
    let r = Memprof.Mur.find name in
    close (name ^ " used") used r.Memprof.Mur.used_mb;
    close (name ^ " MUR") mur r.Memprof.Mur.mur_pct
  in
  check "FW" ~used:17.20 ~mur:100.0;
  check "DPI" ~used:51.14 ~mur:100.0;
  check "LPM" ~used:68.33 ~mur:100.0;
  check "NAT" ~used:31.72 ~mur:72.3;
  check "LB" ~used:4.16 ~mur:30.2;
  check "Mon" ~used:246.31 ~mur:68.3

let suite =
  [
    Alcotest.test_case "table 6 totals" `Quick test_profiles_totals;
    Alcotest.test_case "table 6 tlb entries" `Quick test_profiles_tlb_entries;
    Alcotest.test_case "table 5 driven by max entries" `Quick test_profiles_max_drives_table5;
    Alcotest.test_case "table 7 accelerator profiles" `Quick test_accel_profiles;
    Alcotest.test_case "hashmap model" `Quick test_hashmap_model;
    Alcotest.test_case "figure 7 timeline shape" `Quick test_timeline_shape;
    Alcotest.test_case "figure 7 time monotone" `Quick test_timeline_monotone_time;
    Alcotest.test_case "table 8 MURs" `Quick test_mur_table8;
  ]

(* ---------- §4.8 underutilization ---------- *)

let test_underutil_policies () =
  let util p = Memprof.Underutil.avg_utilization (Memprof.Underutil.simulate p) in
  let u_static = util Memprof.Underutil.Static_peak in
  let u_elastic = util (Memprof.Underutil.Elastic { instance_mb = 60. }) in
  let u_dynamic = util Memprof.Underutil.Dynamic in
  Alcotest.(check bool) "dynamic is perfect" true (u_dynamic > 0.999);
  Alcotest.(check bool)
    (Printf.sprintf "elastic (%.2f) beats static (%.2f)" u_elastic u_static)
    true (u_elastic > u_static +. 0.1);
  Alcotest.(check bool) "static wastes plenty" true (u_static < 0.75);
  (* Elastic never under-provisions. *)
  List.iter
    (fun (p : Memprof.Underutil.point) ->
      if p.provisioned_mb +. 1e-9 < p.demand_mb then Alcotest.fail "under-provisioned")
    (Memprof.Underutil.simulate (Memprof.Underutil.Elastic { instance_mb = 60. }))

let test_underutil_instance_size_tradeoff () =
  let run mb =
    let p = Memprof.Underutil.Elastic { instance_mb = mb } in
    let s = Memprof.Underutil.simulate p in
    (Memprof.Underutil.avg_utilization s, Memprof.Underutil.churn s p)
  in
  let u_small, c_small = run 30. and u_big, c_big = run 120. in
  Alcotest.(check bool) "smaller instances utilize better" true (u_small > u_big);
  Alcotest.(check bool) "but churn more" true (c_small > c_big);
  Alcotest.(check int) "static churns nothing" 0
    (Memprof.Underutil.churn (Memprof.Underutil.simulate Memprof.Underutil.Static_peak) Memprof.Underutil.Static_peak)

let suite =
  suite
  @ [
      Alcotest.test_case "underutilization policies" `Quick test_underutil_policies;
      Alcotest.test_case "underutilization instance-size tradeoff" `Quick test_underutil_instance_size_tradeoff;
    ]
