open Nicsim

let mb = 1 lsl 20

(* ---------- Physmem ---------- *)

let test_physmem_rw () =
  let m = Physmem.create ~size:(4 * mb) in
  Physmem.write_u8 m 0 0xAB;
  Physmem.write_u8 m (4 * mb - 1) 0xCD;
  Alcotest.(check int) "first byte" 0xAB (Physmem.read_u8 m 0);
  Alcotest.(check int) "last byte" 0xCD (Physmem.read_u8 m (4 * mb - 1));
  Alcotest.(check int) "untouched reads zero" 0 (Physmem.read_u8 m 1234);
  Physmem.write_u64 m 64 0x1122334455667788;
  Alcotest.(check int) "u64 roundtrip" 0x1122334455667788 (Physmem.read_u64 m 64);
  Physmem.write_bytes m ~pos:100 "hello";
  Alcotest.(check string) "bytes roundtrip" "hello" (Physmem.read_bytes m ~pos:100 ~len:5);
  Alcotest.check_raises "oob" (Invalid_argument "Physmem: access [0x400000, 0x400001) outside DRAM of 0x400000 bytes")
    (fun () -> ignore (Physmem.read_u8 m (4 * mb)))

let test_physmem_cross_page () =
  let m = Physmem.create ~size:(1 * mb) in
  let pos = Physmem.page_size - 3 in
  Physmem.write_u64 m pos 0xDEADBEEFCAFE;
  Alcotest.(check int) "u64 across page boundary" 0xDEADBEEFCAFE (Physmem.read_u64 m pos)

let test_physmem_zero_range () =
  let m = Physmem.create ~size:(1 * mb) in
  Physmem.write_bytes m ~pos:1000 (String.make 10000 'x');
  Physmem.zero_range m ~pos:1000 ~len:10000;
  Alcotest.(check bool) "scrubbed" true (Physmem.is_zero m ~pos:1000 ~len:10000);
  Alcotest.(check bool) "neighbours intact" true (Physmem.is_zero m ~pos:0 ~len:1000)

let test_physmem_ownership () =
  let m = Physmem.create ~size:(1 * mb) in
  let p = Physmem.page_size in
  Physmem.set_owner m ~pos:(4 * p) ~len:(2 * p) (Physmem.Nf 3);
  Alcotest.(check bool) "owned" true (Physmem.owner_equal (Physmem.Nf 3) (Physmem.owner_of m (4 * p)));
  Alcotest.(check bool) "middle of range" true (Physmem.owner_equal (Physmem.Nf 3) (Physmem.owner_of m ((5 * p) + 17)));
  Alcotest.(check bool) "outside free" true (Physmem.owner_equal Physmem.Free (Physmem.owner_of m (6 * p)));
  (match Physmem.owned_ranges m (Physmem.Nf 3) with
  | [ (pos, len) ] ->
    Alcotest.(check int) "range pos" (4 * p) pos;
    Alcotest.(check int) "range len" (2 * p) len
  | l -> Alcotest.failf "expected one run, got %d" (List.length l));
  Alcotest.check_raises "unaligned" (Invalid_argument "Physmem.set_owner: range must be page-aligned") (fun () ->
      Physmem.set_owner m ~pos:7 ~len:p Physmem.Nic_os)

(* Regression (bugfix PR): owner listings must come out ascending, not in
   Hashtbl hash order — scrub and teardown walk them. *)
let test_physmem_pages_owned_sorted () =
  let m = Physmem.create ~size:(4 * mb) in
  let p = Physmem.page_size in
  (* Claim pages in a deliberately scattered order. *)
  List.iter
    (fun idx -> Physmem.set_owner m ~pos:(idx * p) ~len:p (Physmem.Nf 7))
    [ 900; 3; 511; 42; 120; 7; 1000 ];
  let pages = Physmem.pages_owned m (Physmem.Nf 7) in
  Alcotest.(check (list int)) "ascending page indices" [ 3; 7; 42; 120; 511; 900; 1000 ] pages;
  (* owned_ranges rides pages_owned: runs must also come out ascending. *)
  Physmem.set_owner m ~pos:(8 * p) ~len:p (Physmem.Nf 7);
  match Physmem.owned_ranges m (Physmem.Nf 7) with
  | (first, len) :: _ ->
    Alcotest.(check int) "first run starts at lowest page" (3 * p) first;
    Alcotest.(check int) "single page run" p len
  | [] -> Alcotest.fail "expected owned ranges"

(* Regression (bugfix PR): a hostile length near max_int used to wrap
   [pos + len] negative and slip past the bounds check. *)
let test_physmem_check_overflow () =
  let m = Physmem.create ~size:(1 * mb) in
  let assert_rejected name pos len =
    match Physmem.read_bytes m ~pos ~len with
    | _ -> Alcotest.failf "%s: hostile range was accepted" name
    | exception Invalid_argument _ -> ()
  in
  assert_rejected "len = max_int" 8 max_int;
  assert_rejected "pos + len wraps" (mb - 1) (max_int - 100);
  assert_rejected "negative len" 0 (-1);
  (* The exact boundary is still fine. *)
  Alcotest.(check int) "full-size read ok" mb (String.length (Physmem.read_bytes m ~pos:0 ~len:mb))

let test_physmem_bulk_blits () =
  let m = Physmem.create ~size:(4 * mb) in
  let p = Physmem.page_size in
  (* Page-straddling write via blit, read back via the per-byte path. *)
  let src = Bytes.init (3 * p) (fun i -> Char.chr ((i * 31) land 0xff)) in
  let pos = (5 * p) - 100 in
  Physmem.blit_from_bytes m ~pos src ~off:0 ~len:(Bytes.length src);
  let ok = ref true in
  for i = 0 to Bytes.length src - 1 do
    if Physmem.read_u8 m (pos + i) <> Char.code (Bytes.get src i) then ok := false
  done;
  Alcotest.(check bool) "blit_from_bytes matches per-byte reads" true !ok;
  (* Bulk read over a never-written (sparse) region returns zeroes and
     does not materialize pages. *)
  let r0 = Physmem.resolutions m in
  let buf = Bytes.make (2 * p) 'x' in
  Physmem.blit_to_bytes m ~pos:(2 * mb) buf ~off:0 ~len:(2 * p);
  Alcotest.(check bool) "sparse read is zeroes" true (Bytes.for_all (fun c -> c = '\000') buf);
  Alcotest.(check int) "one resolution per page" 2 (Physmem.resolutions m - r0);
  Alcotest.(check bool) "sparse pages stay sparse" true (Physmem.is_zero m ~pos:(2 * mb) ~len:(2 * p));
  (* fill with a non-zero byte, then fill '\000' restores sparseness. *)
  Physmem.fill m ~pos:(3 * mb) ~len:(2 * p) 'q';
  Alcotest.(check string) "fill visible" (String.make 8 'q') (Physmem.read_bytes m ~pos:((3 * mb) + p) ~len:8);
  Physmem.fill m ~pos:(3 * mb) ~len:(2 * p) '\000';
  Alcotest.(check bool) "zero fill scrubs" true (Physmem.is_zero m ~pos:(3 * mb) ~len:(2 * p))

(* ---------- TLB ---------- *)

let test_tlb_translate () =
  let tlb = Tlb.create () in
  Tlb.install tlb { Tlb.vbase = 0x10000; pbase = 0x800000; size = 0x10000; writable = true };
  Tlb.install tlb { Tlb.vbase = 0x20000; pbase = 0x900000; size = 0x10000; writable = false };
  Alcotest.(check (option int)) "read hit" (Some 0x800123) (Tlb.translate tlb ~vaddr:0x10123 ~access:Tlb.Read);
  Alcotest.(check (option int)) "write hit" (Some 0x800123) (Tlb.translate tlb ~vaddr:0x10123 ~access:Tlb.Write);
  Alcotest.(check (option int)) "ro read" (Some 0x900000) (Tlb.translate tlb ~vaddr:0x20000 ~access:Tlb.Read);
  Alcotest.(check (option int)) "ro write denied" None (Tlb.translate tlb ~vaddr:0x20000 ~access:Tlb.Write);
  Alcotest.(check (option int)) "miss" None (Tlb.translate tlb ~vaddr:0x99999999 ~access:Tlb.Read);
  Alcotest.(check int) "mapped bytes" 0x20000 (Tlb.mapped_bytes tlb)

let test_tlb_validation () =
  let tlb = Tlb.create ~capacity:1 () in
  Alcotest.check_raises "size not pow2" (Invalid_argument "Tlb.install: size must be a power of two") (fun () ->
      Tlb.install tlb { Tlb.vbase = 0; pbase = 0; size = 3000; writable = true });
  Alcotest.check_raises "unaligned" (Invalid_argument "Tlb.install: base not aligned to size") (fun () ->
      Tlb.install tlb { Tlb.vbase = 0x100; pbase = 0; size = 0x1000; writable = true });
  Tlb.install tlb { Tlb.vbase = 0; pbase = 0; size = 0x1000; writable = true };
  Alcotest.check_raises "full" (Invalid_argument "Tlb.install: TLB full") (fun () ->
      Tlb.install tlb { Tlb.vbase = 0x1000; pbase = 0x1000; size = 0x1000; writable = true });
  Alcotest.check_raises "overlap" (Invalid_argument "Tlb.install: overlapping mapping") (fun () ->
      Tlb.install tlb { Tlb.vbase = 0; pbase = 0x2000; size = 0x1000; writable = true })

let test_tlb_translate_run () =
  let tlb = Tlb.create () in
  Tlb.install tlb { Tlb.vbase = 0x10000; pbase = 0x800000; size = 0x10000; writable = true };
  Tlb.install tlb { Tlb.vbase = 0x20000; pbase = 0x900000; size = 0x10000; writable = false };
  (* A run is clipped at its entry's end even when the next entry is
     virtually adjacent (it may not be physically contiguous). *)
  Alcotest.(check (option (pair int int)))
    "run clipped at entry end"
    (Some (0x80ff00, 0x100))
    (Tlb.translate_run tlb ~vaddr:0x1ff00 ~len:0x1000 ~access:Tlb.Read);
  Alcotest.(check (option (pair int int)))
    "run clipped by len"
    (Some (0x800100, 0x80))
    (Tlb.translate_run tlb ~vaddr:0x10100 ~len:0x80 ~access:Tlb.Read);
  Alcotest.(check (option (pair int int)))
    "write to ro entry misses" None
    (Tlb.translate_run tlb ~vaddr:0x20000 ~len:16 ~access:Tlb.Write);
  Alcotest.(check (option (pair int int)))
    "unmapped misses" None
    (Tlb.translate_run tlb ~vaddr:0x50000 ~len:16 ~access:Tlb.Read)

let test_accel_stream () =
  let mem = Physmem.create ~size:(4 * mb) in
  let a = Accel.create ~kind:Accel.Zip ~threads:16 ~cluster_size:16 in
  let cluster = Option.get (Accel.claim_cluster a ~nf:1) in
  let tlb = Accel.cluster_tlb a ~cluster in
  (* Map only [0, 1MB): like nf_launch, then lock. *)
  ignore (Tlb.map_region tlb ~vbase:0 ~pbase:0 ~len:mb ~writable:true);
  Tlb.lock tlb;
  let data = String.init 10_000 (fun i -> Char.chr ((i * 7) land 0xff)) in
  Physmem.write_bytes mem ~pos:0 data;
  (match
     Accel.stream a ~cluster ~now:0 ~mem ~src:0 ~src_len:(String.length data) ~dst:0x40000
       ~f:(fun s -> String.uppercase_ascii s)
   with
  | Error e -> Alcotest.failf "stream failed: %s" (Accel.stream_error_to_string e)
  | Ok (written, done_at) ->
    Alcotest.(check int) "bytes written" (String.length data) written;
    let expect_cost =
      Accel.overhead_cycles Accel.Zip
      + int_of_float (Accel.cycles_per_byte Accel.Zip *. float_of_int (String.length data))
    in
    Alcotest.(check int) "cost matches the service model" expect_cost done_at;
    Alcotest.(check string) "output landed at dst"
      (String.uppercase_ascii data)
      (Physmem.read_bytes mem ~pos:0x40000 ~len:written));
  (* A destination outside the locked bank faults at the exact first
     unmapped virtual address. *)
  (match Accel.stream a ~cluster ~now:0 ~mem ~src:0 ~src_len:16 ~dst:(mb - 8) ~f:Fun.id with
  | Ok _ -> Alcotest.fail "stream escaped the cluster TLB"
  | Error (Accel.Stream_fault { vaddr; write }) ->
    Alcotest.(check int) "faulting vaddr" mb vaddr;
    Alcotest.(check bool) "write fault" true write);
  match Accel.stream a ~cluster ~now:0 ~mem ~src:(2 * mb) ~src_len:16 ~dst:0 ~f:Fun.id with
  | Ok _ -> Alcotest.fail "unmapped source was readable"
  | Error (Accel.Stream_fault { vaddr; write }) ->
    Alcotest.(check int) "source fault vaddr" (2 * mb) vaddr;
    Alcotest.(check bool) "read fault" false write

let test_tlb_lock () =
  let tlb = Tlb.create () in
  Tlb.install tlb { Tlb.vbase = 0; pbase = 0; size = 0x1000; writable = true };
  Tlb.lock tlb;
  Alcotest.(check bool) "locked" true (Tlb.is_locked tlb);
  Alcotest.check_raises "install after lock" (Invalid_argument "Tlb.install: TLB is locked") (fun () ->
      Tlb.install tlb { Tlb.vbase = 0x1000; pbase = 0x1000; size = 0x1000; writable = true })

(* ---------- Bus ---------- *)

let test_bus_free_for_all () =
  let bus = Bus.create ~policy:Bus.Free_for_all ~clients:2 in
  let t1 = Bus.request bus ~client:0 ~now:0 ~cost:10 in
  Alcotest.(check int) "first op immediate" 10 t1;
  (* Client 1 asks at time 0 but the bus is busy until 10. *)
  let t2 = Bus.request bus ~client:1 ~now:0 ~cost:10 in
  Alcotest.(check int) "second op queues" 20 t2;
  let s = Bus.stats bus ~client:1 in
  Alcotest.(check int) "waited" 10 s.Bus.wait_cycles;
  Alcotest.(check (option int)) "unbounded interference" None (Bus.worst_case_interference bus)

let test_bus_temporal_slots () =
  let bus = Bus.create ~policy:(Bus.Temporal { epoch = 100; dead = 20 }) ~clients:2 in
  (* Client 0 owns [0,100); issue window is [0,80-cost]. *)
  Alcotest.(check int) "own slot" 10 (Bus.request bus ~client:0 ~now:0 ~cost:10);
  (* Client 1 owns [100,200): its request at t=0 waits for its slot. *)
  Alcotest.(check int) "waits for own slot" 110 (Bus.request bus ~client:1 ~now:0 ~cost:10);
  (* Client 0 again: next client-0 slot is [200,300). *)
  Alcotest.(check int) "round robin" 210 (Bus.request bus ~client:0 ~now:150 ~cost:10);
  Alcotest.(check (option int)) "bounded interference" (Some 120) (Bus.worst_case_interference bus)

let test_bus_temporal_dead_time () =
  let bus = Bus.create ~policy:(Bus.Temporal { epoch = 100; dead = 20 }) ~clients:2 in
  (* An op of cost 30 cannot issue after cycle 50 of the owner's slot
     (must finish by 80 = epoch - dead). At now=60, wait for next slot. *)
  Alcotest.(check int) "dead time pushes to next slot" 230 (Bus.request bus ~client:0 ~now:60 ~cost:30);
  Alcotest.check_raises "cost too large" (Invalid_argument "Bus.request: cost exceeds usable epoch") (fun () ->
      ignore (Bus.request bus ~client:0 ~now:0 ~cost:81))

let test_bus_temporal_isolation_guarantee () =
  (* A greedy client hammering the bus cannot change when the victim's
     ops are served beyond the static slot schedule. *)
  let run ~attacker_ops =
    let bus = Bus.create ~policy:(Bus.Temporal { epoch = 100; dead = 20 }) ~clients:2 in
    for _ = 1 to attacker_ops do
      ignore (Bus.request bus ~client:1 ~now:0 ~cost:10)
    done;
    Bus.request bus ~client:0 ~now:0 ~cost:10
  in
  Alcotest.(check int) "victim unaffected by attacker load" (run ~attacker_ops:0) (run ~attacker_ops:500)

(* ---------- Cache ---------- *)

let line = 64

let test_cache_hit_miss () =
  let c = Cache.create ~sets:16 ~ways:4 ~line_bits:6 ~mode:Cache.Shared ~domains:2 in
  Alcotest.(check bool) "first access misses" true (Cache.access c ~domain:0 ~addr:0x1000 = Cache.Miss);
  Alcotest.(check bool) "second access hits" true (Cache.access c ~domain:0 ~addr:0x1000 = Cache.Hit);
  Alcotest.(check bool) "same line hits" true (Cache.access c ~domain:0 ~addr:0x103F = Cache.Hit);
  Alcotest.(check bool) "next line misses" true (Cache.access c ~domain:0 ~addr:0x1040 = Cache.Miss);
  let s = Cache.stats c ~domain:0 in
  Alcotest.(check int) "hits" 2 s.Cache.hits;
  Alcotest.(check int) "misses" 2 s.Cache.misses

let test_cache_lru_eviction () =
  let c = Cache.create ~sets:1 ~ways:2 ~line_bits:6 ~mode:Cache.Shared ~domains:1 in
  ignore (Cache.access c ~domain:0 ~addr:0);
  ignore (Cache.access c ~domain:0 ~addr:line);
  ignore (Cache.access c ~domain:0 ~addr:0);
  (* Fill a third line: LRU (line 64) is evicted, line 0 survives. *)
  ignore (Cache.access c ~domain:0 ~addr:(2 * line));
  Alcotest.(check bool) "line 0 survives" true (Cache.access c ~domain:0 ~addr:0 = Cache.Hit);
  Alcotest.(check bool) "line 64 evicted" true (Cache.access c ~domain:0 ~addr:line = Cache.Miss)

(* The §3.2/§4.2 story in miniature: under a shared cache an attacker
   observes the victim's activity via evictions; under hard partitioning
   the attacker's hit rate is independent of the victim. *)
let prime_probe ~mode ~victim_active =
  let c = Cache.create ~sets:16 ~ways:4 ~line_bits:6 ~mode ~domains:2 in
  (* Prime: attacker (domain 0) fills sets with its own lines. *)
  let stride = 16 * 64 in
  for i = 0 to 63 do
    ignore (Cache.access c ~domain:0 ~addr:(i * stride / 4 * 4));
    ignore (Cache.access c ~domain:0 ~addr:(i mod 16 * 64))
  done;
  (* Victim (domain 1) touches memory, or stays idle. *)
  if victim_active then
    for i = 0 to 255 do
      ignore (Cache.access c ~domain:1 ~addr:(0x100000 + (i * 64)))
    done;
  (* Probe: attacker re-touches its lines and counts misses. *)
  let misses = ref 0 in
  for i = 0 to 15 do
    if Cache.access c ~domain:0 ~addr:(i * 64) = Cache.Miss then incr misses
  done;
  !misses

let test_cache_shared_leaks () =
  let idle = prime_probe ~mode:Cache.Shared ~victim_active:false in
  let active = prime_probe ~mode:Cache.Shared ~victim_active:true in
  Alcotest.(check bool)
    (Printf.sprintf "shared cache leaks activity (idle=%d active=%d)" idle active)
    true (active > idle)

let test_cache_hard_partition_no_leak () =
  let idle = prime_probe ~mode:Cache.Hard ~victim_active:false in
  let active = prime_probe ~mode:Cache.Hard ~victim_active:true in
  Alcotest.(check int) "hard partition: victim invisible" idle active

let test_cache_soft_partition_fills_confined () =
  let c = Cache.create ~sets:4 ~ways:4 ~line_bits:6 ~mode:Cache.Soft ~domains:2 in
  (* Domain 1 fills; its lines land only in ways 2..3. *)
  for i = 0 to 31 do
    ignore (Cache.access c ~domain:1 ~addr:(i * 4 * 64))
  done;
  Alcotest.(check bool) "occupancy bounded by its ways" true (Cache.occupancy c ~domain:1 <= 2 * 4);
  (* But cross-domain read hits are possible (the leak CAT keeps). *)
  ignore (Cache.access c ~domain:1 ~addr:0x5000);
  Alcotest.(check bool) "soft: foreign hit allowed" true (Cache.access c ~domain:0 ~addr:0x5000 = Cache.Hit)

let test_cache_flush_domain () =
  let c = Cache.create ~sets:16 ~ways:4 ~line_bits:6 ~mode:Cache.Hard ~domains:2 in
  ignore (Cache.access c ~domain:0 ~addr:0);
  ignore (Cache.access c ~domain:1 ~addr:0x40);
  Cache.flush_domain c 0;
  Alcotest.(check int) "domain 0 flushed" 0 (Cache.occupancy c ~domain:0);
  Alcotest.(check int) "domain 1 intact" 1 (Cache.occupancy c ~domain:1)

let test_cache_partition_sizes () =
  let c = Cache.create ~sets:16 ~ways:16 ~line_bits:6 ~mode:Cache.Hard ~domains:3 in
  let spans = List.map (fun d -> Cache.fill_ways c ~domain:d) [ 0; 1; 2 ] in
  let total = List.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 spans in
  Alcotest.(check int) "ways fully distributed" 16 total;
  List.iteri
    (fun i (lo, hi) ->
      Alcotest.(check bool) (Printf.sprintf "domain %d nonempty" i) true (hi > lo))
    spans

(* ---------- Alloc ---------- *)

let make_alloc () =
  let m = Physmem.create ~size:(16 * mb) in
  (m, Alloc.init m ~base:0x10000 ~heap_base:(8 * mb) ~heap_size:(8 * mb) ~max_entries:64)

let test_alloc_basic () =
  let m, a = make_alloc () in
  let b1 = Option.get (Alloc.alloc a ~owner:(Physmem.Nf 0) 5000) in
  let b2 = Option.get (Alloc.alloc a ~owner:(Physmem.Nf 1) 100) in
  Alcotest.(check bool) "distinct" true (b1 <> b2);
  Alcotest.(check bool) "owner set" true (Physmem.owner_equal (Physmem.Nf 0) (Physmem.owner_of m b1));
  Alcotest.(check int) "two live" 2 (List.length (Alloc.live a));
  Alcotest.(check string) "magic in DRAM" Alloc.magic (Physmem.read_bytes m ~pos:(Alloc.metadata_base a) ~len:8);
  Alloc.free a b1;
  Alcotest.(check int) "one live" 1 (List.length (Alloc.live a));
  Alcotest.(check bool) "pages freed" true (Physmem.owner_equal Physmem.Free (Physmem.owner_of m b1))

let test_alloc_reuse_and_exhaustion () =
  let _, a = make_alloc () in
  let b1 = Option.get (Alloc.alloc a ~owner:Physmem.Nic_os 4096) in
  Alloc.free a b1;
  let b2 = Option.get (Alloc.alloc a ~owner:Physmem.Nic_os 4096) in
  Alcotest.(check int) "slot reused" b1 b2;
  Alcotest.(check bool) "oversized alloc fails" true (Alloc.alloc a ~owner:Physmem.Nic_os (9 * mb) = None)

let test_alloc_metadata_scannable () =
  (* What the attacks do: find a victim buffer by walking raw DRAM. *)
  let m, a = make_alloc () in
  let victim = Option.get (Alloc.alloc a ~owner:(Physmem.Nf 7) 2048) in
  let base = Alloc.metadata_base a in
  let n = Physmem.read_u64 m (base + 8) in
  let found = ref None in
  for i = 0 to n - 1 do
    let d = base + 16 + (i * Alloc.desc_size) in
    let owner = Physmem.read_u64 m d in
    if owner = 8 (* NF 7 + 1 *) && Physmem.read_u64 m (d + 24) = 1 then found := Some (Physmem.read_u64 m (d + 8))
  done;
  Alcotest.(check (option int)) "victim buffer located by scan" (Some victim) !found

(* ---------- Pktio ---------- *)

let udp_frame ?(dport = 9000) () =
  let p =
    Net.Packet.make ~src_ip:(Net.Ipv4_addr.of_string "10.0.0.1") ~dst_ip:(Net.Ipv4_addr.of_string "10.0.0.2")
      ~proto:Net.Packet.Udp ~src_port:1111 ~dst_port:dport "payload!"
  in
  Net.Packet.serialize p

let make_pktio () =
  let m = Physmem.create ~size:(32 * mb) in
  let a = Alloc.init m ~base:0x10000 ~heap_base:(16 * mb) ~heap_size:(16 * mb) ~max_entries:256 in
  (m, Pktio.create m a ~rx_buffer_bytes:(2 * mb) ~tx_buffer_bytes:(2 * mb))

let test_pktio_delivery () =
  let m, io = make_pktio () in
  Alcotest.(check bool) "reserve" true (Pktio.reserve io ~nf:0 ~rx_bytes:65536 ~tx_bytes:65536 = Ok ());
  Pktio.add_rule io ~m:{ Pktio.match_any with dst_port = Some 9000 } ~nf:0;
  (match Pktio.deliver io (udp_frame ()) with
  | Ok nf -> Alcotest.(check int) "routed to NF 0" 0 nf
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "queued" 1 (Pktio.rx_depth io ~nf:0);
  match Pktio.rx_pop io ~nf:0 with
  | Some (addr, len) ->
    Alcotest.(check int) "length preserved" (Bytes.length (udp_frame ())) len;
    let frame = Physmem.read_bytes m ~pos:addr ~len in
    Alcotest.(check bool) "parses" true (Result.is_ok (Net.Packet.parse (Bytes.of_string frame)));
    Pktio.transmit io ~nf:0 ~addr ~len;
    Alcotest.(check int) "on wire" 1 (List.length (Pktio.wire_out io))
  | None -> Alcotest.fail "no descriptor"

let test_pktio_no_rule_drops () =
  let _, io = make_pktio () in
  ignore (Pktio.reserve io ~nf:0 ~rx_bytes:65536 ~tx_bytes:65536);
  (match Pktio.deliver io (udp_frame ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected drop");
  Alcotest.(check int) "drop counted" 1 (Pktio.drop_count io)

let test_pktio_rule_priority () =
  let _, io = make_pktio () in
  ignore (Pktio.reserve io ~nf:0 ~rx_bytes:65536 ~tx_bytes:65536);
  ignore (Pktio.reserve io ~nf:1 ~rx_bytes:65536 ~tx_bytes:65536);
  Pktio.add_rule io ~m:{ Pktio.match_any with dst_port = Some 9000 } ~nf:0;
  Pktio.add_rule io ~m:Pktio.match_any ~nf:1;
  Alcotest.(check bool) "specific rule first" true (Pktio.deliver io (udp_frame ()) = Ok 0);
  Alcotest.(check bool) "fallback rule" true (Pktio.deliver io (udp_frame ~dport:80 ()) = Ok 1)

let test_pktio_vni_match () =
  let _, io = make_pktio () in
  ignore (Pktio.reserve io ~nf:2 ~rx_bytes:65536 ~tx_bytes:65536);
  Pktio.add_rule io ~m:{ Pktio.match_any with vni = Some 42 } ~nf:2;
  let inner =
    Net.Packet.make ~src_ip:(Net.Ipv4_addr.of_string "192.168.0.1") ~dst_ip:(Net.Ipv4_addr.of_string "192.168.0.2")
      ~proto:Net.Packet.Tcp ~src_port:1 ~dst_port:2 "x"
  in
  let outer =
    Net.Vxlan.encapsulate ~vni:42 ~outer_src_ip:(Net.Ipv4_addr.of_string "172.16.0.1")
      ~outer_dst_ip:(Net.Ipv4_addr.of_string "172.16.0.2") inner
  in
  Alcotest.(check bool) "vni routed" true (Pktio.deliver io (Net.Packet.serialize outer) = Ok 2);
  (* Same outer flow, different VNI: no match. *)
  let outer43 =
    Net.Vxlan.encapsulate ~vni:43 ~outer_src_ip:(Net.Ipv4_addr.of_string "172.16.0.1")
      ~outer_dst_ip:(Net.Ipv4_addr.of_string "172.16.0.2") inner
  in
  Alcotest.(check bool) "other vni dropped" true (Result.is_error (Pktio.deliver io (Net.Packet.serialize outer43)))

let test_pktio_reservation_accounting () =
  let _, io = make_pktio () in
  let cap = Pktio.rx_available io in
  Alcotest.(check bool) "reserve ok" true (Pktio.reserve io ~nf:0 ~rx_bytes:(cap - 100) ~tx_bytes:0 = Ok ());
  (match Pktio.reserve io ~nf:1 ~rx_bytes:200 ~tx_bytes:0 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "over-reservation accepted");
  Pktio.release io ~nf:0;
  Alcotest.(check int) "space returned" cap (Pktio.rx_available io);
  Alcotest.(check bool) "double pipeline rejected" true
    (Pktio.reserve io ~nf:1 ~rx_bytes:10 ~tx_bytes:10 = Ok ()
    && Pktio.reserve io ~nf:1 ~rx_bytes:10 ~tx_bytes:10 = Error "NF already has a packet pipeline")

(* ---------- Accel ---------- *)

let test_accel_clusters () =
  let a = Accel.create ~kind:Accel.Dpi ~threads:64 ~cluster_size:16 in
  Alcotest.(check int) "clusters" 4 (Accel.cluster_count a);
  Alcotest.(check int) "all free" 4 (Accel.free_clusters a);
  let c0 = Option.get (Accel.claim_cluster a ~nf:0) in
  let c1 = Option.get (Accel.claim_cluster a ~nf:1) in
  Alcotest.(check bool) "distinct clusters" true (c0 <> c1);
  Alcotest.(check (option int)) "owner recorded" (Some 0) (Accel.cluster_owner a ~cluster:c0);
  Accel.release_clusters a ~nf:0;
  Alcotest.(check (option int)) "released" None (Accel.cluster_owner a ~cluster:c0);
  Alcotest.(check int) "three free" 3 (Accel.free_clusters a)

let test_accel_exhaustion () =
  let a = Accel.create ~kind:Accel.Zip ~threads:32 ~cluster_size:16 in
  ignore (Accel.claim_cluster a ~nf:0);
  ignore (Accel.claim_cluster a ~nf:1);
  Alcotest.(check (option int)) "no cluster left" None (Accel.claim_cluster a ~nf:2)

let test_accel_throughput_scaling () =
  (* More threads => more parallel service => earlier completion of a
     batch of large requests. *)
  let finish ~threads =
    let a = Accel.create ~kind:Accel.Dpi ~threads ~cluster_size:threads in
    let last = ref 0 in
    for _ = 1 to 200 do
      last := max !last (Accel.submit a ~cluster:0 ~now:0 ~bytes:9000)
    done;
    !last
  in
  let t16 = finish ~threads:16 and t48 = finish ~threads:48 in
  Alcotest.(check bool) (Printf.sprintf "48 threads faster (%d vs %d)" t48 t16) true (t48 * 2 < t16)

let test_accel_service_order () =
  let a = Accel.create ~kind:Accel.Raid ~threads:2 ~cluster_size:2 in
  let c1 = Accel.submit a ~cluster:0 ~now:0 ~bytes:100 in
  let c2 = Accel.submit a ~cluster:0 ~now:0 ~bytes:100 in
  Alcotest.(check int) "two threads run in parallel" c1 c2;
  let c3 = Accel.submit a ~cluster:0 ~now:0 ~bytes:100 in
  Alcotest.(check bool) "third waits" true (c3 > c1)

(* ---------- DMA ---------- *)

let test_dma_unchecked () =
  let nic = Physmem.create ~size:(4 * mb) in
  let host = Physmem.create ~size:(4 * mb) in
  let d = Dma.create ~nic_mem:nic ~host_mem:host ~banks:2 in
  Physmem.write_bytes nic ~pos:0x1000 "secret-from-nic";
  (match Dma.transfer ~checked:false d ~bank:0 ~direction:Dma.To_host ~nic_addr:0x1000 ~host_addr:0x2000 ~len:15 with
  | Ok () -> Alcotest.(check string) "copied" "secret-from-nic" (Physmem.read_bytes host ~pos:0x2000 ~len:15)
  | Error e -> Alcotest.fail (Dma.error_to_string e))

let test_dma_checked_windows () =
  let nic = Physmem.create ~size:(4 * mb) in
  let host = Physmem.create ~size:(4 * mb) in
  let d = Dma.create ~nic_mem:nic ~host_mem:host ~banks:1 in
  (* Window: NIC [0x100000,0x110000) visible at vaddr 0x0; host
     [0x200000,0x210000) at vaddr 0x0. *)
  Tlb.install (Dma.up_tlb d ~bank:0) { Tlb.vbase = 0; pbase = 0x100000; size = 0x10000; writable = true };
  Tlb.install (Dma.down_tlb d ~bank:0) { Tlb.vbase = 0; pbase = 0x200000; size = 0x10000; writable = true };
  Physmem.write_bytes nic ~pos:0x100040 "windowed";
  (match Dma.transfer ~checked:true d ~bank:0 ~direction:Dma.To_host ~nic_addr:0x40 ~host_addr:0x80 ~len:8 with
  | Ok () -> Alcotest.(check string) "through window" "windowed" (Physmem.read_bytes host ~pos:0x200080 ~len:8)
  | Error e -> Alcotest.fail (Dma.error_to_string e));
  (* Outside the window: rejected. *)
  match Dma.transfer ~checked:true d ~bank:0 ~direction:Dma.To_host ~nic_addr:0x20000 ~host_addr:0x80 ~len:8 with
  | Error (Dma.Violation "DMA window violation") -> ()
  | Ok () -> Alcotest.fail "window escape"
  | Error e -> Alcotest.failf "unexpected: %s" (Dma.error_to_string e)

(* ---------- Machine access-control matrix ---------- *)

(* Build a machine with two NFs materialized the commodity way: buffers
   allocated, core bound, TLB mapped. Returns (machine, nf0 buffer paddr,
   nf1 buffer paddr). *)
let setup_machine mode =
  let m = Machine.create (Machine.default_config ~mode) in
  let alloc = Machine.alloc m in
  let b0 = Option.get (Alloc.alloc alloc ~owner:(Physmem.Nf 0) 8192) in
  let b1 = Option.get (Alloc.alloc alloc ~owner:(Physmem.Nf 1) 8192) in
  Machine.bind_core m ~core:0 ~nf:0;
  Machine.bind_core m ~core:1 ~nf:1;
  Tlb.install (Machine.core_tlb m ~core:0) { Tlb.vbase = 0x10000000; pbase = b0; size = 8192; writable = true };
  Tlb.install (Machine.core_tlb m ~core:1) { Tlb.vbase = 0x10000000; pbase = b1; size = 8192; writable = true };
  if mode = Machine.Bluefield then begin
    (* NF state lives in secure-world memory. *)
    Machine.set_secure m ~pos:b0 ~len:8192 true;
    Machine.set_secure m ~pos:b1 ~len:8192 true
  end;
  (m, b0, b1)

let can r = Result.is_ok r

let test_machine_own_memory_always_works () =
  List.iter
    (fun mode ->
      let m, _, _ = setup_machine mode in
      let name = Machine.mode_name mode in
      Alcotest.(check bool) (name ^ ": NF writes own memory via TLB") true
        (can (Machine.store_u8 m (Machine.Nf_code 0) (Machine.Virt { core = 0; vaddr = 0x10000000 }) 0x42));
      Alcotest.(check (result int reject)) (name ^ ": NF reads it back")
        (Ok 0x42)
        (match Machine.load_u8 m (Machine.Nf_code 0) (Machine.Virt { core = 0; vaddr = 0x10000000 }) with
        | Ok v -> Ok v
        | Error e -> Alcotest.failf "unexpected fault: %s" (Machine.fault_to_string e)))
    [ Machine.Liquidio_se_s; Machine.Liquidio_se_um { nf_xkphys = true }; Machine.Agilio; Machine.Bluefield; Machine.Snic ]

let test_machine_cross_nf_matrix () =
  (* NF 0 tries to read NF 1's buffer by physical address. *)
  let attempt mode =
    let m, _, b1 = setup_machine mode in
    can (Machine.load_u8 m (Machine.Nf_code 0) (Machine.Phys b1))
  in
  Alcotest.(check bool) "LiquidIO SE-S: cross-NF read succeeds" true (attempt Machine.Liquidio_se_s);
  Alcotest.(check bool) "LiquidIO SE-UM + xkphys: succeeds" true (attempt (Machine.Liquidio_se_um { nf_xkphys = true }));
  Alcotest.(check bool) "LiquidIO SE-UM w/o xkphys: blocked" false (attempt (Machine.Liquidio_se_um { nf_xkphys = false }));
  Alcotest.(check bool) "Agilio: succeeds" true (attempt Machine.Agilio);
  Alcotest.(check bool) "BlueField: blocked (secure world)" false (attempt Machine.Bluefield);
  Alcotest.(check bool) "S-NIC: blocked (single owner)" false (attempt Machine.Snic)

let test_machine_os_snooping_matrix () =
  (* The NIC OS tries to read an NF's buffer. Only S-NIC repels it. *)
  let attempt mode =
    let m, b0, _ = setup_machine mode in
    can (Machine.load_u8 m Machine.Os (Machine.Phys b0))
  in
  List.iter
    (fun mode -> Alcotest.(check bool) (Machine.mode_name mode ^ ": OS snoops NF memory") true (attempt mode))
    [ Machine.Liquidio_se_s; Machine.Liquidio_se_um { nf_xkphys = false }; Machine.Agilio; Machine.Bluefield ];
  Alcotest.(check bool) "S-NIC: denylist blocks the OS" false (attempt Machine.Snic)

let test_machine_snic_os_keeps_own_memory () =
  let m, _, _ = setup_machine Machine.Snic in
  (* The allocator metadata belongs to the OS and stays accessible. *)
  let meta = Alloc.metadata_base (Machine.alloc m) in
  Alcotest.(check bool) "OS reads own metadata" true (can (Machine.load_u8 m Machine.Os (Machine.Phys meta)));
  (* Free memory is fine too. *)
  Alcotest.(check bool) "OS reads free memory" true (can (Machine.load_u8 m Machine.Os (Machine.Phys 0x500000)))

let test_machine_tlb_fault () =
  let m, _, _ = setup_machine Machine.Snic in
  match Machine.load_u8 m (Machine.Nf_code 0) (Machine.Virt { core = 0; vaddr = 0x99999000 }) with
  | Error (Machine.Tlb_fault _) -> ()
  | _ -> Alcotest.fail "expected TLB fault"

let test_machine_core_binding () =
  let m, _, _ = setup_machine Machine.Snic in
  Alcotest.(check (option int)) "core 0 bound" (Some 0) (Machine.core_owner m ~core:0);
  Alcotest.check_raises "rebind conflict" (Invalid_argument "Machine.bind_core: core 0 is bound to NF 0") (fun () ->
      Machine.bind_core m ~core:0 ~nf:5);
  Machine.unbind_cores m ~nf:0;
  Alcotest.(check (option int)) "released" None (Machine.core_owner m ~core:0);
  Alcotest.(check int) "free core count" 15 (List.length (Machine.free_cores m))

let suite =
  [
    Alcotest.test_case "physmem read/write" `Quick test_physmem_rw;
    Alcotest.test_case "physmem cross-page u64" `Quick test_physmem_cross_page;
    Alcotest.test_case "physmem zero range" `Quick test_physmem_zero_range;
    Alcotest.test_case "physmem ownership" `Quick test_physmem_ownership;
    Alcotest.test_case "physmem pages_owned sorted" `Quick test_physmem_pages_owned_sorted;
    Alcotest.test_case "physmem overflow-safe bounds" `Quick test_physmem_check_overflow;
    Alcotest.test_case "physmem bulk blits + sparse fill" `Quick test_physmem_bulk_blits;
    Alcotest.test_case "tlb translate" `Quick test_tlb_translate;
    Alcotest.test_case "tlb translate_run" `Quick test_tlb_translate_run;
    Alcotest.test_case "tlb validation" `Quick test_tlb_validation;
    Alcotest.test_case "tlb lock" `Quick test_tlb_lock;
    Alcotest.test_case "bus free-for-all queues" `Quick test_bus_free_for_all;
    Alcotest.test_case "bus temporal slots" `Quick test_bus_temporal_slots;
    Alcotest.test_case "bus dead time" `Quick test_bus_temporal_dead_time;
    Alcotest.test_case "bus temporal isolation" `Quick test_bus_temporal_isolation_guarantee;
    Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache LRU" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache shared leaks (prime+probe)" `Quick test_cache_shared_leaks;
    Alcotest.test_case "cache hard partition no leak" `Quick test_cache_hard_partition_no_leak;
    Alcotest.test_case "cache soft partition" `Quick test_cache_soft_partition_fills_confined;
    Alcotest.test_case "cache flush domain" `Quick test_cache_flush_domain;
    Alcotest.test_case "cache partition sizes" `Quick test_cache_partition_sizes;
    Alcotest.test_case "alloc basic" `Quick test_alloc_basic;
    Alcotest.test_case "alloc reuse/exhaustion" `Quick test_alloc_reuse_and_exhaustion;
    Alcotest.test_case "alloc metadata scannable" `Quick test_alloc_metadata_scannable;
    Alcotest.test_case "pktio delivery" `Quick test_pktio_delivery;
    Alcotest.test_case "pktio drops unmatched" `Quick test_pktio_no_rule_drops;
    Alcotest.test_case "pktio rule priority" `Quick test_pktio_rule_priority;
    Alcotest.test_case "pktio vxlan vni match" `Quick test_pktio_vni_match;
    Alcotest.test_case "pktio reservations" `Quick test_pktio_reservation_accounting;
    Alcotest.test_case "accel clusters" `Quick test_accel_clusters;
    Alcotest.test_case "accel exhaustion" `Quick test_accel_exhaustion;
    Alcotest.test_case "accel throughput scaling" `Quick test_accel_throughput_scaling;
    Alcotest.test_case "accel parallel service" `Quick test_accel_service_order;
    Alcotest.test_case "accel stream via cluster TLB" `Quick test_accel_stream;
    Alcotest.test_case "dma unchecked" `Quick test_dma_unchecked;
    Alcotest.test_case "dma checked windows" `Quick test_dma_checked_windows;
    Alcotest.test_case "machine: own memory ok in all modes" `Quick test_machine_own_memory_always_works;
    Alcotest.test_case "machine: cross-NF matrix" `Quick test_machine_cross_nf_matrix;
    Alcotest.test_case "machine: OS snooping matrix" `Quick test_machine_os_snooping_matrix;
    Alcotest.test_case "machine: S-NIC OS keeps own memory" `Quick test_machine_snic_os_keeps_own_memory;
    Alcotest.test_case "machine: TLB fault" `Quick test_machine_tlb_fault;
    Alcotest.test_case "machine: core binding" `Quick test_machine_core_binding;
  ]

(* ---------- page tables (the §4.2 alternate design) ---------- *)

let test_pagetable_map_walk () =
  let m = Physmem.create ~size:(8 * mb) in
  let next = ref 0x100000 in
  let alloc () =
    let p = !next in
    next := !next + 4096;
    p
  in
  let root = Pagetable.create m ~alloc in
  Pagetable.map m ~alloc ~root ~vaddr:0x00400000 ~paddr:0x200000 ~writable:true;
  Pagetable.map m ~alloc ~root ~vaddr:0x00401000 ~paddr:0x300000 ~writable:false;
  Alcotest.(check (option int)) "read through" (Some 0x200123)
    (Pagetable.walk m ~root ~vaddr:0x00400123 ~access:Pagetable.Read);
  Alcotest.(check (option int)) "write allowed" (Some 0x200000)
    (Pagetable.walk m ~root ~vaddr:0x00400000 ~access:Pagetable.Write);
  Alcotest.(check (option int)) "ro read ok" (Some 0x300040)
    (Pagetable.walk m ~root ~vaddr:0x00401040 ~access:Pagetable.Read);
  Alcotest.(check (option int)) "ro write denied" None
    (Pagetable.walk m ~root ~vaddr:0x00401040 ~access:Pagetable.Write);
  Alcotest.(check (option int)) "unmapped" None (Pagetable.walk m ~root ~vaddr:0x00900000 ~access:Pagetable.Read);
  Alcotest.check_raises "double map" (Invalid_argument "Pagetable.map: vaddr already mapped") (fun () ->
      Pagetable.map m ~alloc ~root ~vaddr:0x00400000 ~paddr:0x500000 ~writable:true)

let test_pagetable_range_and_costs () =
  let m = Physmem.create ~size:(16 * mb) in
  let next = ref 0x100000 in
  let alloc () =
    let p = !next in
    next := !next + 4096;
    p
  in
  let root = Pagetable.create m ~alloc in
  let pages = Pagetable.map_range m ~alloc ~root ~vaddr:0x00400000 ~paddr:0x800000 ~len:(1 lsl 20) ~writable:true in
  Alcotest.(check int) "256 PTEs for 1MB" 256 pages;
  (* Every page translates. *)
  for i = 0 to 255 do
    Alcotest.(check (option int))
      (Printf.sprintf "page %d" i)
      (Some (0x800000 + (i * 4096)))
      (Pagetable.walk m ~root ~vaddr:(0x00400000 + (i * 4096)) ~access:Pagetable.Read)
  done;
  Alcotest.(check int) "walk cost" 2 Pagetable.walk_dram_refs;
  (* 1 MB within one 2MB L1 slot: root + one L2 table. *)
  Alcotest.(check int) "table pages" 2 (Pagetable.table_pages_for ~vaddr:0x00400000 ~len:(1 lsl 20));
  (* The paper's Monitor (361 MB): ~181 L2 tables + root. *)
  Alcotest.(check int) "monitor-sized tables" 182 (Pagetable.table_pages_for ~vaddr:0 ~len:(361 * 1024 * 1024))

let suite =
  suite
  @ [
      Alcotest.test_case "pagetable map/walk" `Quick test_pagetable_map_walk;
      Alcotest.test_case "pagetable range/costs" `Quick test_pagetable_range_and_costs;
    ]

let test_alloc_reuse_preserves_slot_extent () =
  let m = Physmem.create ~size:(16 * mb) in
  let a = Alloc.init m ~base:0x10000 ~heap_base:(8 * mb) ~heap_size:(8 * mb) ~max_entries:64 in
  (* Allocate big, free, reallocate small into the same slot: the slot
     must keep its full extent so freeing the small allocation releases
     everything and a later big allocation fits again. *)
  let big = Option.get (Alloc.alloc a ~owner:Physmem.Nic_os (64 * 1024)) in
  Alloc.free a big;
  let small = Option.get (Alloc.alloc a ~owner:Physmem.Nic_os 4096) in
  Alcotest.(check int) "slot reused" big small;
  (match Alloc.live a with
  | [ (_, _, len) ] -> Alcotest.(check int) "slot extent preserved" (64 * 1024) len
  | l -> Alcotest.failf "expected one live, got %d" (List.length l));
  Alloc.free a small;
  let big2 = Option.get (Alloc.alloc a ~owner:Physmem.Nic_os (64 * 1024)) in
  Alcotest.(check int) "big allocation fits in the recycled slot" big big2

let suite = suite @ [ Alcotest.test_case "alloc reuse keeps slot extent" `Quick test_alloc_reuse_preserves_slot_extent ]

(* Regression for the order-insensitivity claims on [Pktio]'s
   [Hashtbl.fold] sums (pktio.ml): reserved_rx/reserved_tx must not
   depend on reservation insertion order, including after releases
   perturb the table's internal layout. *)
let test_pktio_reserved_order_insensitive () =
  let reservations = [ (0, 4096, 8192); (1, 65536, 1024); (2, 16384, 16384); (3, 1024, 4096); (4, 8192, 2048) ] in
  let build order =
    let _, io = make_pktio () in
    List.iter
      (fun (nf, rx, tx) ->
        match Pktio.reserve io ~nf ~rx_bytes:rx ~tx_bytes:tx with
        | Ok () -> ()
        | Error e -> Alcotest.failf "reserve nf=%d: %s" nf e)
      order;
    io
  in
  let fwd = build reservations in
  let rev = build (List.rev reservations) in
  Alcotest.(check int) "reserved_rx order-insensitive" (Pktio.reserved_rx fwd) (Pktio.reserved_rx rev);
  Alcotest.(check int) "reserved_tx order-insensitive" (Pktio.reserved_tx fwd) (Pktio.reserved_tx rev);
  (* Release a middle entry in both and re-compare: deletion rehashing
     must not change the sums either. *)
  Pktio.release fwd ~nf:2;
  Pktio.release rev ~nf:2;
  Alcotest.(check int) "reserved_rx after release" (Pktio.reserved_rx fwd) (Pktio.reserved_rx rev);
  Alcotest.(check int) "reserved_tx after release" (Pktio.reserved_tx fwd) (Pktio.reserved_tx rev);
  Alcotest.(check int) "rx_available after release" (Pktio.rx_available fwd) (Pktio.rx_available rev);
  Alcotest.(check int) "tx_available after release" (Pktio.tx_available fwd) (Pktio.tx_available rev)

let suite =
  suite @ [ Alcotest.test_case "pktio reserved sums ignore insertion order" `Quick test_pktio_reserved_order_insensitive ]
