open Nicsim

(* The QoS credit arbiter (lib/nicsim/qos): unit checks on the contract
   edges plus the four qcheck properties ISSUE.md names — per-epoch
   credit conservation, guaranteed minimums under saturation, work
   conservation via slack donation, and starvation freedom. *)

let cfg ?(epoch = 100) ?(cap = 1000) () =
  { Qos.epoch; bus_capacity = cap; dma_capacity = cap; accel_capacity = cap }

let test_validation () =
  Alcotest.check_raises "non-positive epoch" (Invalid_argument "Qos.create: epoch must be positive") (fun () ->
      ignore (Qos.create { (cfg ()) with Qos.epoch = 0 }));
  let q = Qos.create (cfg ()) in
  (let bad = { Qos.guarantee = 10; cap = 5 } in
   match Qos.register q ~tenant:1 { Qos.bus = bad; dma = bad; accel = bad; slo = None } with
   | () -> Alcotest.fail "cap < guarantee must be rejected"
   | exception Invalid_argument _ -> ());
  (* Guarantees summing past capacity are lies; registration refuses. *)
  Qos.register q ~tenant:1 (Qos.flat ~guarantee:600 ~cap:1000 ());
  (match Qos.register q ~tenant:2 (Qos.flat ~guarantee:500 ~cap:1000 ()) with
  | () -> Alcotest.fail "over-subscription must be rejected"
  | exception Invalid_argument _ -> ());
  (* Replacing the same tenant's contract is not over-subscription. *)
  Qos.register q ~tenant:1 (Qos.flat ~guarantee:900 ~cap:1000 ());
  Alcotest.(check (list int)) "tenants" [ 1 ] (Qos.tenants q);
  (match Qos.admit q ~tenant:7 ~resource:Qos.Bus ~cost:1 ~now:0 with
  | _ -> Alcotest.fail "unregistered tenant must raise"
  | exception Invalid_argument _ -> ());
  match Qos.admit q ~tenant:1 ~resource:Qos.Bus ~cost:0 ~now:0 with
  | _ -> Alcotest.fail "non-positive cost must raise"
  | exception Invalid_argument _ -> ()

let test_throttle_until () =
  let q = Qos.create (cfg ~epoch:100 ~cap:1000 ()) in
  Qos.register q ~tenant:1 (Qos.flat ~guarantee:10 ~cap:10 ());
  (* Over the burst cap: refused, with credit back at the next epoch
     boundary after [now]. *)
  (match Qos.admit q ~tenant:1 ~resource:Qos.Dma ~cost:20 ~now:250 with
  | Qos.Throttled t ->
    Alcotest.(check int) "until = next boundary" 300 t.Qos.until;
    Alcotest.(check int) "who" 1 t.Qos.tenant;
    Alcotest.(check string) "what" "dma" (Qos.resource_name t.Qos.resource)
  | Qos.Granted -> Alcotest.fail "over-cap request must throttle");
  let s = Qos.stats q ~tenant:1 in
  Alcotest.(check int) "throttle counted" 1 s.Qos.throttles;
  Alcotest.(check int) "nothing granted" 0 s.Qos.grants

let test_slo_accounting () =
  let q = Qos.create (cfg ()) in
  Qos.register q ~tenant:3 (Qos.flat ~guarantee:10 ~cap:20 ~slo:500 ());
  Alcotest.(check (option (float 1e-9))) "quantile below 2 samples" None
    (Qos.latency_quantile q ~tenant:3 ~q:0.99);
  Qos.note_latency q ~tenant:3 ~cycles:400;
  Qos.note_latency q ~tenant:3 ~cycles:501;
  Qos.note_latency q ~tenant:3 ~cycles:9000;
  let s = Qos.stats q ~tenant:3 in
  Alcotest.(check int) "samples" 3 s.Qos.samples;
  Alcotest.(check int) "violations above slo" 2 s.Qos.slo_violations;
  match Qos.latency_quantile q ~tenant:3 ~q:0.5 with
  | Some v -> Alcotest.(check (float 1e-9)) "median" 501. v
  | None -> Alcotest.fail "median must exist at 3 samples"

let test_rollover_donates () =
  (* capacity = sum of guarantees: no structural slack, so any borrow
     must come from last epoch's unused guarantee. *)
  let g = 50 in
  let q = Qos.create (cfg ~epoch:100 ~cap:(2 * g) ()) in
  Qos.register q ~tenant:1 (Qos.flat ~guarantee:g ~cap:(2 * g) ());
  Qos.register q ~tenant:2 (Qos.flat ~guarantee:g ~cap:(2 * g) ());
  (* Epoch 0: tenant 2 idle, tenant 1 spends only its guarantee. *)
  (match Qos.admit q ~tenant:1 ~resource:Qos.Bus ~cost:g ~now:0 with
  | Qos.Granted -> ()
  | Qos.Throttled _ -> Alcotest.fail "in-guarantee must grant");
  (* Epoch 1: tenant 2's unused guarantee was donated to slack... *)
  (match Qos.admit q ~tenant:1 ~resource:Qos.Bus ~cost:g ~now:100 with
  | Qos.Granted -> ()
  | Qos.Throttled _ -> Alcotest.fail "in-guarantee must grant");
  Alcotest.(check int) "donated slack" g (Qos.epoch_slack q ~resource:Qos.Bus);
  (* ...so tenant 1 can now borrow beyond its guarantee. Tenant 2's
     *current* reservation is still untouchable: g slack on top of the
     g already spent leaves exactly g borrowable. *)
  (match Qos.admit q ~tenant:1 ~resource:Qos.Bus ~cost:g ~now:150 with
  | Qos.Granted -> ()
  | Qos.Throttled _ -> Alcotest.fail "donated slack must be borrowable");
  (match Qos.admit q ~tenant:1 ~resource:Qos.Bus ~cost:1 ~now:160 with
  | Qos.Throttled _ -> ()
  | Qos.Granted -> Alcotest.fail "tenant 2's live reservation must stay off-limits");
  let s = Qos.stats q ~tenant:1 in
  Alcotest.(check int) "borrow counted" 1 s.Qos.borrows;
  Alcotest.(check int) "borrowed credits" g s.Qos.borrowed_credits

(* ------------------------------------------------------------------ *)
(* Properties *)

let resource_of = function 0 -> Qos.Bus | 1 -> Qos.Dma | _ -> Qos.Accel

(* One random admission schedule: n tenants with equal guarantees, an
   oversubscribing request stream at non-decreasing times. Returns the
   arbiter plus a replayable list of (tenant, resource, cost, now). *)
let ops_gen =
  QCheck.make
    ~print:(fun (n, g, ops) ->
      Printf.sprintf "tenants=%d g=%d ops=[%s]" n g
        (String.concat ";" (List.map (fun (t, r, c, now) -> Printf.sprintf "%d:%d:%d@%d" t r c now) ops)))
    QCheck.Gen.(
      int_range 2 5 >>= fun n ->
      int_range 4 64 >>= fun g ->
      list_size (int_range 1 120)
        (triple (int_range 0 (n - 1)) (int_range 0 2) (int_range 1 (2 * g)))
      >>= fun raw ->
      (* Non-decreasing now: random strictly-positive strides. *)
      list_repeat (List.length raw) (int_range 0 40) >>= fun strides ->
      let now = ref 0 in
      let ops =
        List.map2
          (fun (t, r, c) dt ->
            now := !now + dt;
            (t, r, c, !now))
          raw strides
      in
      return (n, g, ops))

let arbiter_of n g =
  let q = Qos.create (cfg ~epoch:100 ~cap:(n * g) ()) in
  for t = 0 to n - 1 do
    Qos.register q ~tenant:t (Qos.flat ~guarantee:g ~cap:(n * g) ())
  done;
  q

let prop_conservation =
  QCheck.Test.make ~name:"per-epoch grants never exceed capacity + donated slack" ~count:200 ops_gen
    (fun (n, g, ops) ->
      let q = Qos.create (cfg ~epoch:100 ~cap:(n * g) ()) in
      (* Zero structural slack AND caps = capacity: the bound is tight. *)
      List.iter
        (fun (t, _, _, _) ->
          if not (Qos.registered q ~tenant:t) then
            Qos.register q ~tenant:t (Qos.flat ~guarantee:g ~cap:(n * g) ()))
        ops;
      List.for_all
        (fun (t, r, c, now) ->
          if not (Qos.registered q ~tenant:t) then true
          else begin
            let resource = resource_of r in
            ignore (Qos.admit q ~tenant:t ~resource ~cost:c ~now);
            Qos.epoch_granted q ~resource <= (n * g) + Qos.epoch_slack q ~resource
          end)
        ops)

let prop_guaranteed_min =
  QCheck.Test.make ~name:"in-guarantee requests always grant, even saturated" ~count:200 ops_gen
    (fun (n, g, ops) ->
      let q = arbiter_of n g in
      let spent = Hashtbl.create 16 in
      let key t r = (t * 3) + r in
      let epoch = ref (-1) in
      List.for_all
        (fun (t, r, c, now) ->
          if now / 100 <> !epoch then begin
            epoch := now / 100;
            Hashtbl.reset spent
          end;
          let k = key t r in
          let used = Option.value ~default:0 (Hashtbl.find_opt spent k) in
          let v = Qos.admit q ~tenant:t ~resource:(resource_of r) ~cost:c ~now in
          (match v with Qos.Granted -> Hashtbl.replace spent k (used + c) | Qos.Throttled _ -> ());
          (* The invariant: a request that fits in the remaining
             guarantee can never be refused, whatever anyone else did. *)
          if used + c <= g then v = Qos.Granted else true)
        ops)

let prop_work_conservation =
  QCheck.Test.make ~name:"unused guarantees are donated, never destroyed" ~count:200
    QCheck.(pair (int_range 2 5) (int_range 4 64))
    (fun (n, g) ->
      let q = arbiter_of n g in
      (* Epoch 0: only tenant 0 runs, spending its own guarantee. *)
      ignore (Qos.admit q ~tenant:0 ~resource:Qos.Bus ~cost:g ~now:0);
      (* Epoch 1: everyone else's epoch-0 guarantee became slack, so
         tenant 0 can be granted (n-1) extra guarantees beyond its own
         (the others' *live* epoch-1 reservations stay untouchable). *)
      if Qos.epoch_slack q ~resource:Qos.Bus <> 0 then
        QCheck.Test.fail_report "slack visible before rollover";
      let ok = ref (Qos.admit q ~tenant:0 ~resource:Qos.Bus ~cost:g ~now:100 = Qos.Granted) in
      ok := !ok && Qos.epoch_slack q ~resource:Qos.Bus = (n - 1) * g;
      for _ = 1 to n - 1 do
        ok := !ok && Qos.admit q ~tenant:0 ~resource:Qos.Bus ~cost:g ~now:110 = Qos.Granted
      done;
      ok := !ok && Qos.admit q ~tenant:0 ~resource:Qos.Bus ~cost:1 ~now:120 <> Qos.Granted;
      !ok)

let prop_starvation_freedom =
  QCheck.Test.make ~name:"an aggressor cannot starve any tenant's guarantee" ~count:200
    QCheck.(triple (int_range 2 5) (int_range 4 64) (int_range 0 1000))
    (fun (n, g, seed) ->
      let q = arbiter_of n g in
      let rng = Trace.Rng.create ~seed in
      let ok = ref true in
      for e = 0 to 3 do
        let now = e * 100 in
        (* Tenant 0 floods first, far past everyone's combined credit... *)
        for _ = 1 to 8 do
          ignore (Qos.admit q ~tenant:0 ~resource:Qos.Bus ~cost:(1 + Trace.Rng.int rng (n * g)) ~now)
        done;
        (* ...yet every other tenant still gets its full guarantee. *)
        for t = 1 to n - 1 do
          let granted0 = Qos.granted_credits q ~tenant:t ~resource:Qos.Bus in
          let left = ref g in
          while !left > 0 do
            let c = min !left (1 + Trace.Rng.int rng g) in
            (match Qos.admit q ~tenant:t ~resource:Qos.Bus ~cost:c ~now:(now + 1) with
            | Qos.Granted -> ()
            | Qos.Throttled _ -> ok := false);
            left := !left - c
          done;
          ok := !ok && Qos.granted_credits q ~tenant:t ~resource:Qos.Bus - granted0 = g
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Scenario plumbing: the fleet-level noisy-neighbor run is seeded and
   deterministic, and rejects nonsense shapes. *)

let small_qos =
  { Fleet.Chaos.default_qos_config with Fleet.Chaos.q_tenants = 4; q_rounds = 2; q_requests = 8 }

let test_run_qos_validation () =
  Alcotest.check_raises "needs an aggressor and a victim"
    (Invalid_argument "Chaos.run_qos: need at least 2 tenants") (fun () ->
      ignore (Fleet.Chaos.run_qos { small_qos with Fleet.Chaos.q_tenants = 1 }))

let test_run_qos_deterministic () =
  let r1, _ = Fleet.Chaos.run_qos small_qos in
  let r2, _ = Fleet.Chaos.run_qos small_qos in
  Alcotest.(check string) "same seed, byte-identical summary" (Fleet.Chaos.qos_summary r1)
    (Fleet.Chaos.qos_summary r2);
  Alcotest.(check int) "no victim starved" 0 r1.Fleet.Chaos.q_starved

let suite =
  [
    Alcotest.test_case "contract validation" `Quick test_validation;
    Alcotest.test_case "throttle points at the refill" `Quick test_throttle_until;
    Alcotest.test_case "slo accounting" `Quick test_slo_accounting;
    Alcotest.test_case "rollover donates unused credit" `Quick test_rollover_donates;
    QCheck_alcotest.to_alcotest prop_conservation;
    QCheck_alcotest.to_alcotest prop_guaranteed_min;
    QCheck_alcotest.to_alcotest prop_work_conservation;
    QCheck_alcotest.to_alcotest prop_starvation_freedom;
    Alcotest.test_case "run_qos validation" `Quick test_run_qos_validation;
    Alcotest.test_case "run_qos determinism" `Quick test_run_qos_deterministic;
  ]
