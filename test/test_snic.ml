open Nicsim

let ip = Net.Ipv4_addr.of_string

let sample_packet ?(dport = 8080) () =
  Net.Packet.make ~src_ip:(ip "10.1.1.1") ~dst_ip:(ip "198.51.100.7") ~proto:Net.Packet.Udp ~src_port:3333
    ~dst_port:dport "hello snic"

let boot () = Snic.Api.boot ()

let basic_config =
  {
    Snic.Instructions.default_config with
    cores = [ 0 ];
    image = "NF-IMAGE-v1";
    memory_bytes = 64 * 1024;
    rules = [ { Pktio.match_any with dst_port = Some 8080 } ];
    accels = [ (Accel.Dpi, 1) ];
  }

(* ---------- measurement ---------- *)

let test_measurement_deterministic () =
  let mk () =
    Snic.Measurement.of_config ~image:"img" ~cores:[ 0; 1 ] ~mem_base:0x1000 ~mem_len:0x2000
      ~rules:[ Pktio.match_any ] ~accels:[ (Accel.Dpi, 2) ] ~rx_bytes:100 ~tx_bytes:200 ~sched:Sched.Fifo
  in
  Alcotest.(check string) "deterministic" (Crypto.Sha256.to_hex (mk ())) (Crypto.Sha256.to_hex (mk ()))

let test_measurement_sensitive () =
  let base ~image ~cores ~rx ?(sched = Sched.Fifo) () =
    Snic.Measurement.of_config ~image ~cores ~mem_base:0x1000 ~mem_len:0x2000 ~rules:[] ~accels:[] ~rx_bytes:rx
      ~tx_bytes:0 ~sched
  in
  let reference = base ~image:"img" ~cores:[ 0 ] ~rx:64 () in
  Alcotest.(check bool) "image changes hash" false (String.equal reference (base ~image:"imh" ~cores:[ 0 ] ~rx:64 ()));
  Alcotest.(check bool) "cores change hash" false (String.equal reference (base ~image:"img" ~cores:[ 1 ] ~rx:64 ()));
  Alcotest.(check bool) "vpp changes hash" false (String.equal reference (base ~image:"img" ~cores:[ 0 ] ~rx:65 ()));
  Alcotest.(check bool) "scheduler changes hash" false
    (String.equal reference (base ~image:"img" ~cores:[ 0 ] ~rx:64 ~sched:Sched.Wfq ()))

(* ---------- nf_launch ---------- *)

let test_launch_happy_path () =
  let api = boot () in
  let instr = Snic.Api.instructions api in
  match Snic.Instructions.nf_launch instr basic_config with
  | Error e -> Alcotest.fail (Snic.Instructions.error_to_string e)
  | Ok (h, latency) ->
    let m = Snic.Api.machine api in
    Alcotest.(check int) "id 0" 0 h.Snic.Instructions.id;
    (* Image copied into the reservation. *)
    Alcotest.(check string) "image present" "NF-IMAGE-v1"
      (Physmem.read_bytes (Machine.mem m) ~pos:h.Snic.Instructions.mem_base ~len:11);
    (* Pages owned; OS repelled. *)
    Alcotest.(check bool) "owned" true
      (Physmem.owner_equal (Physmem.Nf 0) (Physmem.owner_of (Machine.mem m) h.Snic.Instructions.mem_base));
    Alcotest.(check bool) "OS denied" false
      (Result.is_ok (Machine.load_u8 m Machine.Os (Machine.Phys h.Snic.Instructions.mem_base)));
    (* Core TLB locked and covering the reservation. *)
    let tlb = Machine.core_tlb m ~core:0 in
    Alcotest.(check bool) "tlb locked" true (Tlb.is_locked tlb);
    Alcotest.(check int) "tlb covers region" h.Snic.Instructions.mem_len (Tlb.mapped_bytes tlb);
    (* DPI cluster claimed with a locked TLB bank. *)
    let dpi = Machine.accel m Accel.Dpi in
    Alcotest.(check int) "one cluster claimed" 3 (Accel.free_clusters dpi);
    (match h.Snic.Instructions.clusters with
    | [ (Accel.Dpi, c) ] ->
      Alcotest.(check bool) "cluster tlb locked" true (Tlb.is_locked (Accel.cluster_tlb dpi ~cluster:c))
    | _ -> Alcotest.fail "expected one DPI cluster");
    (* Measurement recomputable by a remote party. *)
    let expected =
      Snic.Measurement.of_config ~image:basic_config.image ~cores:basic_config.cores
        ~mem_base:h.Snic.Instructions.mem_base ~mem_len:h.Snic.Instructions.mem_len ~rules:basic_config.rules
        ~accels:basic_config.accels ~rx_bytes:basic_config.rx_bytes ~tx_bytes:basic_config.tx_bytes
        ~sched:basic_config.sched
    in
    Alcotest.(check string) "measurement" (Crypto.Sha256.to_hex expected)
      (Crypto.Sha256.to_hex h.Snic.Instructions.measurement);
    Alcotest.(check bool) "digest latency dominates" true (latency.Snic.Instructions.digest > latency.tlb_setup / 100)

let test_launch_rejects_taken_cores () =
  let api = boot () in
  let instr = Snic.Api.instructions api in
  (match Snic.Instructions.nf_launch instr basic_config with Ok _ -> () | Error _ -> Alcotest.fail "first launch");
  match Snic.Instructions.nf_launch instr { basic_config with rules = [] } with
  | Error (Snic.Instructions.Cores_unavailable [ 0 ]) -> ()
  | Ok _ -> Alcotest.fail "double-claimed core 0"
  | Error e -> Alcotest.failf "unexpected: %s" (Snic.Instructions.error_to_string e)

let test_launch_rejects_bad_cores () =
  let api = boot () in
  match Snic.Instructions.nf_launch (Snic.Api.instructions api) { basic_config with cores = [ 99 ] } with
  | Error (Snic.Instructions.Cores_unavailable [ 99 ]) -> ()
  | _ -> Alcotest.fail "expected Cores_unavailable"

let test_launch_accel_exhaustion_unwinds () =
  let api = boot () in
  let instr = Snic.Api.instructions api in
  let m = Snic.Api.machine api in
  let free_before = Pktio.rx_available (Machine.pktio m) in
  (* There are 4 DPI clusters; ask for 5. *)
  (match
     Snic.Instructions.nf_launch instr { basic_config with accels = [ (Accel.Dpi, 5) ] }
   with
  | Error (Snic.Instructions.Accel_unavailable Accel.Dpi) -> ()
  | Ok _ -> Alcotest.fail "impossible claim succeeded"
  | Error e -> Alcotest.failf "unexpected: %s" (Snic.Instructions.error_to_string e));
  (* Atomicity: everything unwound. *)
  Alcotest.(check int) "clusters restored" 4 (Accel.free_clusters (Machine.accel m Accel.Dpi));
  Alcotest.(check int) "vpp space restored" free_before (Pktio.rx_available (Machine.pktio m));
  Alcotest.(check (option int)) "core free" None (Machine.core_owner m ~core:0);
  Alcotest.(check (list (pair int int))) "no stray allocations"
    []
    (List.filter_map
       (fun (o, a, l) -> if o = Physmem.Nf 0 then Some (a, l) else None)
       (Alloc.live (Machine.alloc m)))

let test_teardown_scrubs_and_releases () =
  let api = boot () in
  let instr = Snic.Api.instructions api in
  let h, _ = Result.get_ok (Snic.Instructions.nf_launch instr basic_config) in
  let m = Snic.Api.machine api in
  let base = h.Snic.Instructions.mem_base and len = h.Snic.Instructions.mem_len in
  (match Snic.Instructions.nf_teardown instr ~id:h.Snic.Instructions.id with
  | Ok lat -> Alcotest.(check bool) "scrub latency scales" true (lat.Snic.Instructions.scrub >= len)
  | Error e -> Alcotest.fail (Snic.Instructions.error_to_string e));
  Alcotest.(check bool) "memory scrubbed" true (Physmem.is_zero (Machine.mem m) ~pos:base ~len);
  Alcotest.(check bool) "pages free" true (Physmem.owner_equal Physmem.Free (Physmem.owner_of (Machine.mem m) base));
  Alcotest.(check bool) "OS readable again" true (Result.is_ok (Machine.load_u8 m Machine.Os (Machine.Phys base)));
  Alcotest.(check (option int)) "core released" None (Machine.core_owner m ~core:0);
  Alcotest.(check int) "clusters released" 4 (Accel.free_clusters (Machine.accel m Accel.Dpi));
  Alcotest.(check int) "no live functions" 0 (List.length (Snic.Instructions.live_functions instr));
  (* The slot is reusable. *)
  match Snic.Instructions.nf_launch instr basic_config with
  | Ok (h2, _) -> Alcotest.(check int) "id reused" 0 h2.Snic.Instructions.id
  | Error e -> Alcotest.fail (Snic.Instructions.error_to_string e)

let test_teardown_unknown () =
  let api = boot () in
  match Snic.Instructions.nf_teardown (Snic.Api.instructions api) ~id:7 with
  | Error (Snic.Instructions.Unknown_function 7) -> ()
  | _ -> Alcotest.fail "expected Unknown_function"

(* Double-destroy vs never-created are distinguishable failures, at the
   instruction level and through the management API. *)
let test_destroy_twice_vs_never_created () =
  let api = boot () in
  let instr = Snic.Api.instructions api in
  let h, _ = Result.get_ok (Snic.Instructions.nf_launch instr basic_config) in
  let id = h.Snic.Instructions.id in
  (match Snic.Instructions.nf_teardown instr ~id with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Snic.Instructions.error_to_string e));
  (* Second teardown: the id was live once, so this is Function_destroyed. *)
  (match Snic.Instructions.nf_teardown instr ~id with
  | Error (Snic.Instructions.Function_destroyed got) -> Alcotest.(check int) "destroyed id" id got
  | Error e -> Alcotest.failf "expected Function_destroyed, got %s" (Snic.Instructions.error_to_string e)
  | Ok _ -> Alcotest.fail "second teardown succeeded");
  (* An id that never existed stays Unknown_function. *)
  (match Snic.Instructions.nf_teardown instr ~id:9 with
  | Error (Snic.Instructions.Unknown_function 9) -> ()
  | _ -> Alcotest.fail "expected Unknown_function");
  (* Same split through Api.nf_destroy. *)
  (match Snic.Api.nf_destroy api ~id with
  | Error (Snic.Api.Already_destroyed got) -> Alcotest.(check int) "api destroyed id" id got
  | Error e -> Alcotest.failf "expected Already_destroyed, got %s" (Snic.Api.destroy_error_to_string e)
  | Ok () -> Alcotest.fail "api double destroy succeeded");
  match Snic.Api.nf_destroy api ~id:9 with
  | Error (Snic.Api.Never_created 9) -> ()
  | Error e -> Alcotest.failf "expected Never_created, got %s" (Snic.Api.destroy_error_to_string e)
  | Ok () -> Alcotest.fail "destroying a never-created id succeeded"

let test_destroy_after_id_reuse () =
  let api = boot () in
  let instr = Snic.Api.instructions api in
  let h, _ = Result.get_ok (Snic.Instructions.nf_launch instr basic_config) in
  let id = h.Snic.Instructions.id in
  (match Snic.Instructions.nf_teardown instr ~id with Ok _ -> () | Error _ -> Alcotest.fail "teardown");
  (* Relaunch reuses the slot: the id is live again, so destroying it is
     a plain success and the retired marker is gone. *)
  let h2, _ = Result.get_ok (Snic.Instructions.nf_launch instr basic_config) in
  Alcotest.(check int) "slot reused" id h2.Snic.Instructions.id;
  match Snic.Api.nf_destroy api ~id with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Snic.Api.destroy_error_to_string e)

(* ---------- packets through a virtual NIC ---------- *)

let test_vnic_packet_roundtrip () =
  let api = boot () in
  match Snic.Api.nf_create api basic_config with
  | Error e -> Alcotest.fail e
  | Ok vnic ->
    (match Snic.Api.inject_packet api (sample_packet ()) with
    | Ok nf -> Alcotest.(check int) "routed" (Snic.Vnic.id vnic) nf
    | Error e -> Alcotest.fail e);
    Alcotest.(check int) "queued" 1 (Snic.Vnic.rx_depth vnic);
    (match Snic.Vnic.rx_packet vnic with
    | Ok (Some (pkt, buffer)) ->
      Alcotest.(check string) "payload intact" "hello snic" pkt.Net.Packet.payload;
      (* Rewrite and transmit, like a tiny NF would. *)
      let out = { pkt with Net.Packet.ttl = pkt.Net.Packet.ttl - 1 } in
      (match Snic.Vnic.tx_packet vnic ~buffer out with Ok () -> () | Error e -> Alcotest.fail e)
    | Ok None -> Alcotest.fail "no packet"
    | Error e -> Alcotest.fail e);
    (match Snic.Api.transmitted api with
    | [ out ] -> Alcotest.(check int) "ttl decremented" 63 out.Net.Packet.ttl
    | l -> Alcotest.failf "expected 1 transmitted, got %d" (List.length l))

let test_vnic_runs_real_nat () =
  let api = boot () in
  let nat =
    Nf.Nat.create ~internal_prefix:(ip "10.0.0.0", 8) ~external_ip:(ip "203.0.113.1") ()
  in
  match Snic.Api.nf_create api { basic_config with rules = [ Pktio.match_any ] } with
  | Error e -> Alcotest.fail e
  | Ok vnic ->
    for i = 0 to 9 do
      ignore (Snic.Api.inject_packet api (sample_packet ~dport:(9000 + i) ()))
    done;
    let stats = Snic.Vnic.process vnic (Nf.Nat.nf nat) ~max:100 in
    Alcotest.(check int) "received" 10 stats.Snic.Vnic.received;
    Alcotest.(check int) "forwarded" 10 stats.Snic.Vnic.forwarded;
    Alcotest.(check int) "no faults" 0 stats.Snic.Vnic.faults;
    let out = Snic.Api.transmitted api in
    Alcotest.(check int) "all on wire" 10 (List.length out);
    List.iter
      (fun (p : Net.Packet.t) ->
        Alcotest.(check string) "rewritten source" "203.0.113.1" (Net.Ipv4_addr.to_string p.src_ip))
      out

let test_vnic_cross_isolation () =
  let api = boot () in
  let v0 = Result.get_ok (Snic.Api.nf_create api basic_config) in
  let v1 =
    Result.get_ok
      (Snic.Api.nf_create api
         { basic_config with cores = [ 1 ]; rules = [ { Pktio.match_any with dst_port = Some 9999 } ]; accels = [] })
  in
  let h0 = Snic.Vnic.handle v0 in
  (* NF 1 cannot read NF 0's memory physically... *)
  (match Snic.Vnic.read_phys v1 ~paddr:h0.Snic.Instructions.mem_base ~len:4 with
  | Error (Machine.Denied _) -> ()
  | _ -> Alcotest.fail "cross-NF phys read allowed");
  (* ...nor through its own TLB (it maps only its own region). *)
  (match Snic.Vnic.read_virt v1 ~vaddr:0x10000000 ~len:4 with
  | Ok s -> Alcotest.(check bool) "own region, own bytes" true (String.length s = 4)
  | Error f -> Alcotest.failf "own read failed: %s" (Machine.fault_to_string f));
  (* NF 0 can use its own memory. *)
  match Snic.Vnic.write_virt v0 ~vaddr:0x10000100 "mine" with
  | Ok () -> ()
  | Error f -> Alcotest.failf "own write failed: %s" (Machine.fault_to_string f)

(* ---------- attestation ---------- *)

let test_attestation_handshake () =
  let api = boot () in
  let vnic = Result.get_ok (Snic.Api.nf_create api basic_config) in
  let instr = Snic.Api.instructions api in
  let rng = Random.State.make [| 1 |] in
  let attester = Result.get_ok (Snic.Attestation.attester_of_nf instr ~id:(Snic.Vnic.id vnic)) in
  let nonce = "verifier-nonce-123" in
  let responder, quote = Snic.Attestation.respond rng attester ~nonce in
  let vendor_public = Snic.Identity.vendor_public (Snic.Api.vendor api) in
  match Snic.Attestation.verify rng ~vendor_public ~nonce quote with
  | Error e -> Alcotest.fail (Snic.Attestation.verify_error_to_string e)
  | Ok verified ->
    let nf_key = Snic.Attestation.responder_key responder ~verifier_share:verified.Snic.Attestation.verifier_share in
    Alcotest.(check string) "keys agree" (Crypto.Sha256.to_hex verified.Snic.Attestation.key)
      (Crypto.Sha256.to_hex nf_key);
    Alcotest.(check string) "measurement surfaced"
      (Crypto.Sha256.to_hex (Snic.Vnic.handle vnic).Snic.Instructions.measurement)
      (Crypto.Sha256.to_hex verified.Snic.Attestation.quote_measurement)

let test_attestation_rejects () =
  let api = boot () in
  let vnic = Result.get_ok (Snic.Api.nf_create api basic_config) in
  let instr = Snic.Api.instructions api in
  let rng = Random.State.make [| 2 |] in
  let attester = Result.get_ok (Snic.Attestation.attester_of_nf instr ~id:(Snic.Vnic.id vnic)) in
  let vendor_public = Snic.Identity.vendor_public (Snic.Api.vendor api) in
  let _, quote = Snic.Attestation.respond rng attester ~nonce:"nonce-A" in
  (* Replay under a different nonce. *)
  (match Snic.Attestation.verify rng ~vendor_public ~nonce:"nonce-B" quote with
  | Error Snic.Attestation.Nonce_mismatch -> ()
  | _ -> Alcotest.fail "replay accepted");
  (* Wrong expected measurement (the OS staged different code). *)
  (match
     Snic.Attestation.verify rng ~vendor_public ~expected_measurement:(Crypto.Sha256.digest "other code")
       ~nonce:"nonce-A" quote
   with
  | Error (Snic.Attestation.Unexpected_measurement _) -> ()
  | _ -> Alcotest.fail "wrong measurement accepted");
  (* Forged vendor. *)
  let mallory = Snic.Identity.make_vendor ~seed:0xBAD ~name:"Mallory Silicon" () in
  (match Snic.Attestation.verify rng ~vendor_public:(Snic.Identity.vendor_public mallory) ~nonce:"nonce-A" quote with
  | Error Snic.Attestation.Bad_certificate_chain -> ()
  | _ -> Alcotest.fail "forged vendor accepted");
  (* Tampered measurement inside the quote. *)
  let tampered = { quote with Snic.Attestation.measurement = Crypto.Sha256.digest "evil" } in
  match Snic.Attestation.verify rng ~vendor_public ~nonce:"nonce-A" tampered with
  | Error Snic.Attestation.Bad_signature -> ()
  | _ -> Alcotest.fail "tampered quote accepted"

(* ---------- constellation ---------- *)

let test_constellation_channel () =
  let api = boot () in
  let vnic = Result.get_ok (Snic.Api.nf_create api basic_config) in
  let rng = Random.State.make [| 3 |] in
  let nic_vendor = Snic.Api.vendor api in
  let cpu_vendor = Snic.Identity.make_vendor ~seed:0x1E1 ~name:"CPU Vendor (SGX)" () in
  let nf_ep = Snic.Constellation.of_nf api vnic in
  let enclave = Snic.Constellation.enclave ~vendor:cpu_vendor ~name:"storage-enclave" ~code:"enclave-code-v2" () in
  match Snic.Constellation.connect rng ~trusted_vendors:[ nic_vendor; cpu_vendor ] nf_ep enclave with
  | Error e -> Alcotest.fail (Snic.Constellation.error_to_string e)
  | Ok ch ->
    let ct = Snic.Constellation.send ch ~from:0 "tls keys: 0xSECRET" in
    (match Snic.Constellation.recv ch ~at:1 ct with
    | Ok pt -> Alcotest.(check string) "delivered" "tls keys: 0xSECRET" pt
    | Error e -> Alcotest.fail e);
    (* Replay is rejected. *)
    (match Snic.Constellation.recv ch ~at:1 ct with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "replay accepted");
    (* The reverse direction works independently. *)
    let ct2 = Snic.Constellation.send ch ~from:1 "ack" in
    (match Snic.Constellation.recv ch ~at:0 ct2 with
    | Ok pt -> Alcotest.(check string) "reverse" "ack" pt
    | Error e -> Alcotest.fail e)

let test_constellation_rejects_unknown_vendor () =
  let api = boot () in
  let vnic = Result.get_ok (Snic.Api.nf_create api basic_config) in
  let rng = Random.State.make [| 4 |] in
  let cpu_vendor = Snic.Identity.make_vendor ~seed:0x1E2 ~name:"CPU Vendor" () in
  let nf_ep = Snic.Constellation.of_nf api vnic in
  let enclave = Snic.Constellation.enclave ~vendor:cpu_vendor ~name:"e" ~code:"c" () in
  (* Verifier trusts only the CPU vendor: the NF's NIC vendor is unknown. *)
  match Snic.Constellation.connect rng ~trusted_vendors:[ cpu_vendor ] nf_ep enclave with
  | Error (Snic.Constellation.Unknown_vendor _) -> ()
  | _ -> Alcotest.fail "unknown vendor accepted"

let test_constellation_pins_measurement () =
  let api = boot () in
  let vnic = Result.get_ok (Snic.Api.nf_create api basic_config) in
  let rng = Random.State.make [| 5 |] in
  let cpu_vendor = Snic.Identity.make_vendor ~seed:0x1E3 ~name:"CPU Vendor" () in
  let nf_ep = Snic.Constellation.of_nf api vnic in
  let enclave = Snic.Constellation.enclave ~vendor:cpu_vendor ~name:"e" ~code:"c" () in
  match
    Snic.Constellation.connect rng
      ~trusted_vendors:[ Snic.Api.vendor api; cpu_vendor ]
      ~expected_b:(Crypto.Sha256.digest "different enclave") nf_ep enclave
  with
  | Error (Snic.Constellation.Attestation_failed _) -> ()
  | _ -> Alcotest.fail "measurement pin ignored"

let suite =
  [
    Alcotest.test_case "measurement deterministic" `Quick test_measurement_deterministic;
    Alcotest.test_case "measurement sensitive to fields" `Quick test_measurement_sensitive;
    Alcotest.test_case "nf_launch happy path" `Quick test_launch_happy_path;
    Alcotest.test_case "nf_launch rejects taken cores" `Quick test_launch_rejects_taken_cores;
    Alcotest.test_case "nf_launch rejects bad cores" `Quick test_launch_rejects_bad_cores;
    Alcotest.test_case "nf_launch unwinds on failure" `Quick test_launch_accel_exhaustion_unwinds;
    Alcotest.test_case "nf_teardown scrubs and releases" `Quick test_teardown_scrubs_and_releases;
    Alcotest.test_case "nf_teardown unknown id" `Quick test_teardown_unknown;
    Alcotest.test_case "destroy twice vs never created" `Quick test_destroy_twice_vs_never_created;
    Alcotest.test_case "destroy after id reuse" `Quick test_destroy_after_id_reuse;
    Alcotest.test_case "vnic packet roundtrip" `Quick test_vnic_packet_roundtrip;
    Alcotest.test_case "vnic runs real NAT" `Quick test_vnic_runs_real_nat;
    Alcotest.test_case "vnic cross isolation" `Quick test_vnic_cross_isolation;
    Alcotest.test_case "attestation handshake" `Slow test_attestation_handshake;
    Alcotest.test_case "attestation rejections" `Slow test_attestation_rejects;
    Alcotest.test_case "constellation channel" `Slow test_constellation_channel;
    Alcotest.test_case "constellation unknown vendor" `Slow test_constellation_rejects_unknown_vendor;
    Alcotest.test_case "constellation pins measurement" `Slow test_constellation_pins_measurement;
  ]

let test_launch_scrubs_recycled_memory () =
  (* A tenant's transmitted packet leaves stale bytes in a recycled heap
     slot; a later nf_launch landing there must observe zeros (fresh
     initial state), not the predecessor's data. *)
  let api = boot () in
  let m = Snic.Api.machine api in
  (* Dirty a heap slot directly, the way a freed packet buffer would. *)
  let a = Machine.alloc m in
  let slot = Option.get (Alloc.alloc a ~owner:Physmem.Nic_os (128 * 1024)) in
  Physmem.write_bytes (Machine.mem m) ~pos:(slot + 20_000) "STALE TENANT SECRET";
  Alloc.free a slot;
  (* Launch over it (the allocator reuses the aligned free slot). *)
  let h, _ =
    Result.get_ok
      (Snic.Instructions.nf_launch (Snic.Api.instructions api)
         { basic_config with memory_bytes = 128 * 1024; accels = [] })
  in
  Alcotest.(check int) "slot was reused" slot h.Snic.Instructions.mem_base;
  let tail_len = h.Snic.Instructions.mem_len - String.length basic_config.image in
  Alcotest.(check bool) "no stale bytes visible to the new function" true
    (Physmem.is_zero (Machine.mem m)
       ~pos:(h.Snic.Instructions.mem_base + String.length basic_config.image)
       ~len:tail_len)

let suite = suite @ [ Alcotest.test_case "launch scrubs recycled memory" `Quick test_launch_scrubs_recycled_memory ]
