let test_rng_determinism () =
  let a = Trace.Rng.create ~seed:99 and b = Trace.Rng.create ~seed:99 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Trace.Rng.bits a) (Trace.Rng.bits b)
  done;
  let c = Trace.Rng.create ~seed:100 in
  Alcotest.(check bool) "different seed differs" false (Trace.Rng.bits a = Trace.Rng.bits c)

let test_rng_bounds () =
  let rng = Trace.Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Trace.Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7);
    let f = Trace.Rng.float rng in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 1.0)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Trace.Rng.int rng 0))

let test_rng_uniformity () =
  let rng = Trace.Rng.create ~seed:5 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Trace.Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d near uniform (%d)" i c)
        true
        (abs (c - expected) < expected / 10))
    buckets

let test_shuffle_is_permutation () =
  let rng = Trace.Rng.create ~seed:3 in
  let arr = Array.init 100 Fun.id in
  Trace.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted

let test_zipf () =
  let rng = Trace.Rng.create ~seed:7 in
  let z = Trace.Zipf.create ~n:1000 ~skew:1.1 in
  let n = 200_000 in
  let counts = Array.make 1000 0 in
  for _ = 1 to n do
    let k = Trace.Zipf.sample z rng in
    Alcotest.(check bool) "rank in range" true (k >= 0 && k < 1000);
    counts.(k) <- counts.(k) + 1
  done;
  (* Rank 0 should dominate, and empirical frequencies should track the
     analytic probabilities. *)
  Alcotest.(check bool) "rank 0 most popular" true (counts.(0) >= Array.fold_left max 0 (Array.sub counts 1 999));
  let p0 = Trace.Zipf.probability z 0 in
  let emp0 = float_of_int counts.(0) /. float_of_int n in
  Alcotest.(check bool) "rank-0 frequency matches analytic" true (abs_float (emp0 -. p0) < 0.02);
  (* CDF sums to 1. *)
  let total = ref 0.0 in
  for k = 0 to 999 do
    total := !total +. Trace.Zipf.probability z k
  done;
  Alcotest.(check bool) "probabilities sum to 1" true (abs_float (!total -. 1.0) < 1e-9)

let test_flowgen_distinct () =
  let rng = Trace.Rng.create ~seed:11 in
  let flows = Trace.Flowgen.flows rng ~n:5000 in
  let tbl = Hashtbl.create 5000 in
  Array.iter (fun f -> Hashtbl.replace tbl f ()) flows;
  Alcotest.(check int) "all distinct" 5000 (Hashtbl.length tbl);
  Array.iter
    (fun (f : Net.Five_tuple.t) ->
      if not (Net.Ipv4_addr.in_prefix f.src_ip ~prefix:(Net.Ipv4_addr.of_string "10.0.0.0") ~len:8) then
        Alcotest.fail "source not in 10/8")
    flows

let test_frame_payload_sizing () =
  List.iter
    (fun frame_size ->
      let len = Trace.Flowgen.payload_for_frame ~frame_size ~proto:Net.Packet.Udp in
      if frame_size >= 42 then
        Alcotest.(check int) (Printf.sprintf "frame %d" frame_size) frame_size (42 + len))
    Trace.Flowgen.figure8_frame_sizes;
  (* A frame request below the 64 B Ethernet minimum still yields a
     minimum-size wire frame, never a sub-minimum one. *)
  Alcotest.(check int) "tiny frame pads to minimum" 10
    (Trace.Flowgen.payload_for_frame ~frame_size:10 ~proto:Net.Packet.Tcp)

let test_ictf_like () =
  let t = Trace.Tracegen.ictf_like ~n_flows:2000 ~seed:1 ~packets:20_000 () in
  Alcotest.(check int) "event count" 20_000 (Trace.Tracegen.event_count t);
  Alcotest.(check int) "flow table" 2000 (Array.length t.flows);
  (* Zipf head: the most common flow should carry far more than 1/n of
     traffic. *)
  let counts = Array.make 2000 0 in
  Array.iter (fun (e : Trace.Tracegen.event) -> counts.(e.flow) <- counts.(e.flow) + 1) t.events;
  let max_count = Array.fold_left max 0 counts in
  Alcotest.(check bool) "heavy head" true (max_count > 20_000 / 100);
  (* Timestamps are monotonic. *)
  let ok = ref true in
  Array.iteri (fun i e -> if i > 0 then ok := !ok && e.Trace.Tracegen.time_us >= t.events.(i - 1).time_us) t.events;
  Alcotest.(check bool) "monotonic time" true !ok

let test_caida_like_growth () =
  let t = Trace.Tracegen.caida_like ~flows_per_sec:1000 ~seed:2 ~duration_s:10.0 ~packets:50_000 () in
  let early = Trace.Tracegen.distinct_flows_before t 1_000_000 in
  let late = Trace.Tracegen.distinct_flows_before t 10_000_000 in
  Alcotest.(check bool) "flow count grows over time" true (late > 2 * early)

let test_packet_materialization () =
  let t = Trace.Tracegen.ictf_like ~n_flows:100 ~seed:3 ~packets:50 () in
  let count = ref 0 in
  Seq.iter
    (fun p ->
      incr count;
      match Net.Packet.parse (Net.Packet.serialize p) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "bad packet: %a" Net.Packet.pp_parse_error e)
    (Trace.Tracegen.packets t);
  Alcotest.(check int) "all materialized" 50 !count

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf sample always in range" ~count:50
    (QCheck.pair (QCheck.int_range 1 500) (QCheck.float_range 0.5 2.0))
    (fun (n, skew) ->
      let rng = Trace.Rng.create ~seed:n in
      let z = Trace.Zipf.create ~n ~skew in
      let ok = ref true in
      for _ = 1 to 100 do
        let k = Trace.Zipf.sample z rng in
        ok := !ok && k >= 0 && k < n
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng uniformity" `Quick test_rng_uniformity;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "zipf distribution" `Quick test_zipf;
    Alcotest.test_case "flowgen distinct flows" `Quick test_flowgen_distinct;
    Alcotest.test_case "figure-8 frame sizing" `Quick test_frame_payload_sizing;
    Alcotest.test_case "ictf-like trace" `Quick test_ictf_like;
    Alcotest.test_case "caida-like flow growth" `Quick test_caida_like_growth;
    Alcotest.test_case "trace packets materialize" `Quick test_packet_materialization;
    QCheck_alcotest.to_alcotest prop_zipf_in_range;
  ]

let test_tracefile_roundtrip () =
  let t = Trace.Tracegen.ictf_like ~n_flows:500 ~seed:77 ~packets:2000 () in
  let path = Filename.temp_file "snic" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.Tracefile.save path t;
      match Trace.Tracefile.load path with
      | Error e -> Alcotest.fail e
      | Ok got ->
        Alcotest.(check int) "flows" (Array.length t.flows) (Array.length got.flows);
        Alcotest.(check int) "events" (Array.length t.events) (Array.length got.events);
        Array.iteri
          (fun i f -> if not (Net.Five_tuple.equal f got.flows.(i)) then Alcotest.fail "flow mismatch")
          t.flows;
        Array.iteri
          (fun i (e : Trace.Tracegen.event) ->
            let g = got.events.(i) in
            if e.flow <> g.flow || e.size <> g.size || e.time_us <> g.time_us then Alcotest.fail "event mismatch")
          t.events)

let test_tracefile_rejects_garbage () =
  let path = Filename.temp_file "snic" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "NOTATRACE";
      close_out oc;
      (match Trace.Tracefile.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "garbage accepted");
      (* Truncated file: valid magic, then cut off. *)
      let t = Trace.Tracegen.ictf_like ~n_flows:50 ~seed:1 ~packets:100 () in
      Trace.Tracefile.save path t;
      let full = In_channel.with_open_bin path In_channel.input_all in
      let oc = open_out_bin path in
      output_string oc (String.sub full 0 (String.length full / 2));
      close_out oc;
      match Trace.Tracefile.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "truncated accepted")

let suite =
  suite
  @ [
      Alcotest.test_case "tracefile roundtrip" `Quick test_tracefile_roundtrip;
      Alcotest.test_case "tracefile rejects garbage" `Quick test_tracefile_rejects_garbage;
    ]
