(* Fleet orchestrator: seeded end-to-end scenarios with attested
   placement, failure injection and recovery, plus unit checks on the
   placement machinery. *)

let small_config policy =
  {
    Fleet.Scenario.default_config with
    Fleet.Scenario.n_nics = 6;
    n_tenants = 18;
    policy;
    rounds = 2;
    packets_per_round = 120;
    kill_nics = 1;
    kill_nfs = 2;
  }

(* ---------- workload and node admission ---------- *)

let test_demands_follow_profiles () =
  List.iter
    (fun kind ->
      let d = Fleet.Workload.demand_of_kind kind in
      Alcotest.(check bool)
        (Fleet.Workload.kind_name kind ^ " has memory")
        true (d.Fleet.Workload.mem_bytes > 0);
      Alcotest.(check int) "one core" 1 d.Fleet.Workload.cores;
      (* TLB budgeting uses the full-scale regions: the Monitor's Table 5
         headline number must fall out unchanged. *)
      if kind = Fleet.Workload.Mon then
        Alcotest.(check int) "Mon equal-2MB entries" 183
          (Fleet.Workload.tlb_entries d ~page_sizes:Costmodel.Page_packing.equal_2mb))
    Fleet.Workload.all_kinds

let test_small_nic_rejects_monitor () =
  let vendor = Snic.Identity.make_vendor ~seed:7 ~name:"t" () in
  let node = Fleet.Node.boot ~vendor ~id:0 Fleet.Node.small in
  let mon = Fleet.Workload.demand_of_kind Fleet.Workload.Mon in
  let fw = Fleet.Workload.demand_of_kind Fleet.Workload.Fw in
  (* 183 locked entries under Equal-2MB vs a 96-entry budget. *)
  Alcotest.(check bool) "Mon does not fit a small NIC" false (Fleet.Node.admits node mon);
  Alcotest.(check bool) "FW fits" true (Fleet.Node.admits node fw);
  let medium = Fleet.Node.boot ~vendor ~id:1 Fleet.Node.medium in
  Alcotest.(check bool) "Mon fits a flex-menu NIC" true (Fleet.Node.admits medium mon);
  Fleet.Node.kill medium;
  Alcotest.(check bool) "dead NICs admit nothing" false (Fleet.Node.admits medium fw)

let test_policy_names_roundtrip () =
  List.iter
    (fun p ->
      match Fleet.Policy.of_string (Fleet.Policy.name p) with
      | Ok p' -> Alcotest.(check bool) "roundtrip" true (p = p')
      | Error e -> Alcotest.fail e)
    Fleet.Policy.all;
  Alcotest.(check bool) "unknown rejected" true (Result.is_error (Fleet.Policy.of_string "round-robin"))

(* ---------- end-to-end scenario invariants ---------- *)

let check_invariants policy =
  let report, orch = Fleet.Scenario.run_with (small_config policy) in
  let name = Fleet.Policy.name policy in
  (* Everyone gets placed and attested at boot on this rack. *)
  Alcotest.(check int) (name ^ ": all tenants attested at boot") 18 report.Fleet.Scenario.initial_attested;
  (* Failures were injected and recovered: nobody is left unplaced, and
     every surviving tenant is attested. *)
  Alcotest.(check bool) (name ^ ": failures were injected") true
    (Fleet.Telemetry.nic_kills (Fleet.Orchestrator.telemetry orch) = 1
    && Fleet.Telemetry.nf_kills (Fleet.Orchestrator.telemetry orch) = 2);
  Alcotest.(check bool) (name ^ ": replacements happened") true (report.Fleet.Scenario.replacements > 0);
  Alcotest.(check int) (name ^ ": no tenant left unplaced") 0 report.Fleet.Scenario.final_unplaced;
  Alcotest.(check int) (name ^ ": all tenants attested at end") 18 report.Fleet.Scenario.final_attested;
  (* The acceptance invariants. *)
  Alcotest.(check int) (name ^ ": zero unattested running NFs") 0 report.Fleet.Scenario.unattested_running;
  Alcotest.(check int) (name ^ ": every verified teardown scrubbed") 0 report.Fleet.Scenario.scrub_failures;
  (* The hardware agrees with the control plane's bookkeeping. *)
  Alcotest.(check int) (name ^ ": live functions = attested placements") (Fleet.Orchestrator.attested_count orch)
    (Fleet.Orchestrator.live_nf_total orch);
  (* Traffic flowed. *)
  let forwarded =
    List.fold_left (fun acc r -> acc + r.Fleet.Scenario.traffic.Fleet.Frontend.forwarded) 0
      report.Fleet.Scenario.rounds
  in
  Alcotest.(check bool) (name ^ ": traffic forwarded") true (forwarded > 0)

let test_invariants_first_fit () = check_invariants Fleet.Policy.First_fit
let test_invariants_spread () = check_invariants Fleet.Policy.Spread
let test_invariants_tco_aware () = check_invariants Fleet.Policy.Tco_aware

(* The acceptance-sized rack: 16 NICs, 64 tenants, end to end. *)
let test_full_rack () =
  let report, orch =
    Fleet.Scenario.run_with
      { Fleet.Scenario.default_config with Fleet.Scenario.rounds = 2; packets_per_round = 150 }
  in
  Alcotest.(check int) "64/64 placed and attested at boot" 64 report.Fleet.Scenario.initial_attested;
  Alcotest.(check int) "64/64 attested at end" 64 report.Fleet.Scenario.final_attested;
  Alcotest.(check bool) "recovered from failures" true (report.Fleet.Scenario.replacements > 0);
  Alcotest.(check int) "zero unattested running" 0 report.Fleet.Scenario.unattested_running;
  Alcotest.(check int) "zero scrub failures" 0 report.Fleet.Scenario.scrub_failures;
  (* No Monitor tenant ever lands on an equal-2MB (small) NIC. *)
  Array.iter
    (fun tn ->
      if tn.Fleet.Orchestrator.demand.Fleet.Workload.kind = Fleet.Workload.Mon then
        match tn.Fleet.Orchestrator.placement with
        | Some p ->
          Alcotest.(check bool) "Mon on a flex-menu NIC" true
            ((Fleet.Node.shape p.Fleet.Orchestrator.node).Fleet.Node.tlb_budget_per_core >= 51
            || (Fleet.Node.shape p.Fleet.Orchestrator.node).Fleet.Node.page_menu
               <> Costmodel.Page_packing.equal_2mb)
        | None -> Alcotest.fail "Mon tenant unplaced")
    (Fleet.Orchestrator.tenants orch)

(* ---------- determinism ---------- *)

let test_deterministic_replay () =
  let run () =
    let report, orch = Fleet.Scenario.run_with (small_config Fleet.Policy.Best_fit) in
    let telemetry = Fleet.Orchestrator.telemetry orch in
    ( Fleet.Scenario.summary report,
      Fleet.Telemetry.tenants_csv telemetry,
      Fleet.Telemetry.nics_csv telemetry,
      Fleet.Telemetry.to_json telemetry )
  in
  let s1, t1, n1, j1 = run () in
  let s2, t2, n2, j2 = run () in
  Alcotest.(check string) "summary identical" s1 s2;
  Alcotest.(check string) "tenant CSV identical" t1 t2;
  Alcotest.(check string) "NIC CSV identical" n1 n2;
  Alcotest.(check string) "JSON identical" j1 j2;
  (* A different seed actually changes the run. *)
  let report3, _ =
    Fleet.Scenario.run_with { (small_config Fleet.Policy.Best_fit) with Fleet.Scenario.seed = 1234 }
  in
  Alcotest.(check bool) "different seed, different run" false (Fleet.Scenario.summary report3 = s1)

(* ---------- typed placement outcomes ---------- *)

(* A supervisor must be able to tell "the rack is full" (alarm, do not
   retry) from "the stage/attest path glitched" (transient, retry). *)
let test_place_typed_no_capacity () =
  let orch =
    Fleet.Orchestrator.create
      { Fleet.Orchestrator.seed = 11; n_nics = 2; n_tenants = 3; policy = Fleet.Policy.First_fit; bytes_per_mb = 1024 }
  in
  let tenant = (Fleet.Orchestrator.tenants orch).(0) in
  Fleet.Orchestrator.evict orch tenant;
  Array.iter Fleet.Node.kill (Fleet.Orchestrator.nodes orch);
  (match Fleet.Orchestrator.place orch tenant with
  | Error Fleet.Orchestrator.No_capacity -> ()
  | Error e ->
    Alcotest.fail ("expected No_capacity, got " ^ Fleet.Orchestrator.place_error_to_string e)
  | Ok () -> Alcotest.fail "placement on a dead rack must not succeed");
  Alcotest.(check bool) "No_capacity prints usefully" true
    (String.length (Fleet.Orchestrator.place_error_to_string Fleet.Orchestrator.No_capacity) > 0)

let test_place_typed_stage_fault () =
  let orch =
    Fleet.Orchestrator.create
      { Fleet.Orchestrator.seed = 11; n_nics = 2; n_tenants = 2; policy = Fleet.Policy.First_fit; bytes_per_mb = 1024 }
  in
  let tenant = (Fleet.Orchestrator.tenants orch).(0) in
  Fleet.Orchestrator.evict orch tenant;
  Array.iter
    (fun node ->
      Nicsim.Machine.set_faults
        (Snic.Api.machine (Fleet.Node.api node))
        (Faults.plan ~seed:11 { Faults.none with Faults.dma_error = 1.0 }))
    (Fleet.Orchestrator.nodes orch);
  (match Fleet.Orchestrator.place orch tenant with
  | Error (Fleet.Orchestrator.Create_failed (Snic.Api.Stage_fault ev)) ->
    Alcotest.(check bool) "the event names the DMA site" true (ev.Faults.site = Faults.Dma_error)
  | Error e ->
    Alcotest.fail ("expected Stage_fault, got " ^ Fleet.Orchestrator.place_error_to_string e)
  | Ok () -> Alcotest.fail "placement over a dead DMA engine must not succeed")

(* ---------- evict / replace idempotency + kill-budget clamping ---------- *)

let test_evict_replace_idempotent () =
  let orch =
    Fleet.Orchestrator.create
      { Fleet.Orchestrator.seed = 5; n_nics = 4; n_tenants = 8; policy = Fleet.Policy.First_fit; bytes_per_mb = 1024 }
  in
  let tel = Fleet.Orchestrator.telemetry orch in
  let tenant = (Fleet.Orchestrator.tenants orch).(0) in
  let stats = Fleet.Telemetry.tenant tel tenant.Fleet.Orchestrator.tid in
  (* Placing an already-placed tenant is a no-op with stable counters. *)
  let placements0 = stats.Fleet.Telemetry.placements in
  (match Fleet.Orchestrator.place orch tenant with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Fleet.Orchestrator.place_error_to_string e));
  Alcotest.(check int) "re-place of a placed tenant moves nothing" placements0
    stats.Fleet.Telemetry.placements;
  (* Orderly NF kill first ([evict] alone models hardware death and
     would leave the function running on the NIC), then double evict:
     the second is a no-op, counters stay put. *)
  (match tenant.Fleet.Orchestrator.placement with
  | Some p ->
    let handle = Snic.Vnic.handle p.Fleet.Orchestrator.vnic in
    (match
       Snic.Api.nf_destroy (Fleet.Node.api p.Fleet.Orchestrator.node)
         ~id:handle.Snic.Instructions.id
     with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Snic.Api.destroy_error_to_string e))
  | None -> Alcotest.fail "tenant not placed at boot");
  Fleet.Orchestrator.evict orch tenant;
  let evictions1 = stats.Fleet.Telemetry.evictions in
  Fleet.Orchestrator.evict orch tenant;
  Alcotest.(check int) "double evict counts once" evictions1 stats.Fleet.Telemetry.evictions;
  Alcotest.(check bool) "placement cleared" true (tenant.Fleet.Orchestrator.placement = None);
  (* Replace: exactly one replacement tick; replacing again is a no-op. *)
  let replacements0 = Fleet.Telemetry.replacements tel in
  (match Fleet.Orchestrator.replace orch tenant with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Fleet.Orchestrator.place_error_to_string e));
  Alcotest.(check int) "one replacement tick" (replacements0 + 1) (Fleet.Telemetry.replacements tel);
  Alcotest.(check bool) "tenant attested again" true tenant.Fleet.Orchestrator.attested;
  (match Fleet.Orchestrator.replace orch tenant with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Fleet.Orchestrator.place_error_to_string e));
  Alcotest.(check int) "replace of a placed tenant is a no-op"
    (replacements0 + 1) (Fleet.Telemetry.replacements tel);
  Alcotest.(check int) "hardware agrees after the churn"
    (Fleet.Orchestrator.attested_count orch) (Fleet.Orchestrator.live_nf_total orch)

let test_failure_inject_clamps () =
  let orch =
    Fleet.Orchestrator.create
      { Fleet.Orchestrator.seed = 13; n_nics = 4; n_tenants = 8; policy = Fleet.Policy.First_fit; bytes_per_mb = 1024 }
  in
  let rng = Trace.Rng.create ~seed:13 in
  (* Budgets far beyond the population clamp instead of raising, and the
     report preserves what was asked so the clamping is observable. *)
  let r = Fleet.Failure.inject orch rng ~kill_nics:100 ~kill_nfs:100 in
  Alcotest.(check int) "requested NIC budget reported" 100 r.Fleet.Failure.nics_requested;
  Alcotest.(check int) "requested NF budget reported" 100 r.Fleet.Failure.nfs_requested;
  Alcotest.(check bool) "NIC kills clamped to the rack" true
    (List.length r.Fleet.Failure.nics_killed <= 4);
  Alcotest.(check bool) "some NICs actually died" true (List.length r.Fleet.Failure.nics_killed > 0);
  Alcotest.(check bool) "NF kills clamped to placed survivors" true
    (List.length r.Fleet.Failure.nfs_killed <= 8);
  Alcotest.(check int) "scrubs all verified" 0 r.Fleet.Failure.scrub_failures;
  Alcotest.(check int) "displaced = replaced + stranded" r.Fleet.Failure.displaced
    (r.Fleet.Failure.replaced + r.Fleet.Failure.stranded);
  (* Negative budgets clamp to zero kills. *)
  let r0 = Fleet.Failure.inject orch rng ~kill_nics:(-3) ~kill_nfs:(-1) in
  Alcotest.(check (list int)) "no NICs killed" [] r0.Fleet.Failure.nics_killed;
  Alcotest.(check (list int)) "no NFs killed" [] r0.Fleet.Failure.nfs_killed;
  Alcotest.(check int) "negative request reported as asked" (-3) r0.Fleet.Failure.nics_requested

(* A NIC kill must drain whatever a batched inject had already queued on
   the dead NIC's RX rings — accounted as tenant drops, never silently
   lost — and the drain must replay byte-identically. *)
let test_nic_kill_drains_in_flight () =
  let load_and_kill () =
    let orch =
      Fleet.Orchestrator.create
        { Fleet.Orchestrator.seed = 13; n_nics = 3; n_tenants = 6; policy = Fleet.Policy.First_fit; bytes_per_mb = 1024 }
    in
    (* Park frames on every tenant's RX ring (matching its steering
       port) without draining any pipeline: a mid-batch snapshot. *)
    Array.iter
      (fun tn ->
        match tn.Fleet.Orchestrator.placement with
        | None -> ()
        | Some p ->
          let api = Fleet.Node.api p.Fleet.Orchestrator.node in
          for i = 1 to 4 do
            match
              Snic.Api.inject_packet api
                (Net.Packet.make ~src_ip:i ~dst_ip:2 ~proto:Net.Packet.Udp ~src_port:(40000 + i)
                   ~dst_port:tn.Fleet.Orchestrator.port "in-flight")
            with
            | Ok _ -> ()
            | Error e -> Alcotest.fail ("inject: " ^ e)
          done)
      (Fleet.Orchestrator.tenants orch);
    let telemetry = Fleet.Orchestrator.telemetry orch in
    let dropped_before =
      Array.fold_left
        (fun acc tn -> acc + (Fleet.Telemetry.tenant telemetry tn.Fleet.Orchestrator.tid).Fleet.Telemetry.dropped)
        0 (Fleet.Orchestrator.tenants orch)
    in
    let r = Fleet.Failure.inject orch (Trace.Rng.create ~seed:7) ~kill_nics:3 ~kill_nfs:0 in
    let dropped_after =
      Array.fold_left
        (fun acc tn -> acc + (Fleet.Telemetry.tenant telemetry tn.Fleet.Orchestrator.tid).Fleet.Telemetry.dropped)
        0 (Fleet.Orchestrator.tenants orch)
    in
    (r, dropped_after - dropped_before)
  in
  let r1, drop_delta = load_and_kill () in
  Alcotest.(check bool) "queued frames were drained" true (r1.Fleet.Failure.in_flight_drained > 0);
  Alcotest.(check int) "every queued frame accounted" (6 * 4) r1.Fleet.Failure.in_flight_drained;
  Alcotest.(check int) "drains land as tenant drops" r1.Fleet.Failure.in_flight_drained drop_delta;
  (* Byte-identical replay: same seed, same report. *)
  let r2, _ = load_and_kill () in
  Alcotest.(check bool) "report replays byte-identically" true (r1 = r2)

(* Displaced tenants must never be re-placed onto a quarantined NIC, and
   quarantined NICs still count against the kill budget's alive pool. *)
let test_failover_skips_quarantined () =
  let orch =
    Fleet.Orchestrator.create
      { Fleet.Orchestrator.seed = 21; n_nics = 4; n_tenants = 6; policy = Fleet.Policy.Spread; bytes_per_mb = 1024 }
  in
  let nodes = Fleet.Orchestrator.nodes orch in
  let quarantined = nodes.(1) in
  Fleet.Node.quarantine quarantined;
  (* Kill every other NIC: survivors can only land on... nothing alive
     and unquarantined, so everyone displaced is stranded — the
     orchestrator must not quietly re-admit the quarantined node. *)
  let rng = Trace.Rng.create ~seed:5 in
  let r = Fleet.Failure.inject orch rng ~kill_nics:4 ~kill_nfs:0 in
  Alcotest.(check bool) "quarantined NICs are still kill-eligible" true
    (List.length r.Fleet.Failure.nics_killed = 4);
  Array.iter
    (fun tn ->
      match tn.Fleet.Orchestrator.placement with
      | None -> ()
      | Some p ->
        Alcotest.(check bool) "no placement on a quarantined NIC" false
          (Fleet.Node.quarantined p.Fleet.Orchestrator.node))
    (Fleet.Orchestrator.tenants orch);
  (* Mid-flight re-placement with a healthy spare: quarantine one node,
     kill one other, and every displaced tenant lands somewhere alive
     and unquarantined. *)
  let orch2 =
    Fleet.Orchestrator.create
      { Fleet.Orchestrator.seed = 22; n_nics = 4; n_tenants = 6; policy = Fleet.Policy.Spread; bytes_per_mb = 1024 }
  in
  let bad = (Fleet.Orchestrator.nodes orch2).(2) in
  Fleet.Node.quarantine bad;
  (* Tenants already sitting on the node keep their placement (quarantine
     is not an eviction); what matters is that nobody *new* lands there. *)
  let node_of tn =
    match tn.Fleet.Orchestrator.placement with None -> None | Some p -> Some (Fleet.Node.id p.Fleet.Orchestrator.node)
  in
  let before = Array.map node_of (Fleet.Orchestrator.tenants orch2) in
  let r2 = Fleet.Failure.inject orch2 (Trace.Rng.create ~seed:6) ~kill_nics:1 ~kill_nfs:0 in
  Alcotest.(check int) "nobody stranded with spares left" 0 r2.Fleet.Failure.stranded;
  Array.iteri
    (fun i tn ->
      match tn.Fleet.Orchestrator.placement with
      | None -> Alcotest.fail "tenant left unplaced with healthy spares"
      | Some p ->
        if node_of tn <> before.(i) then begin
          Alcotest.(check bool) "re-placement avoided the quarantined NIC" false
            (Fleet.Node.id p.Fleet.Orchestrator.node = Fleet.Node.id bad);
          Alcotest.(check bool) "re-placement landed on an alive NIC" true (Fleet.Node.alive p.Fleet.Orchestrator.node)
        end)
    (Fleet.Orchestrator.tenants orch2);
  Alcotest.(check bool) "the kill actually displaced someone" true (r2.Fleet.Failure.displaced > 0)

(* Telemetry CSV export shape stays parseable. *)
let test_csv_shape () =
  let _, orch = Fleet.Scenario.run_with (small_config Fleet.Policy.First_fit) in
  let csv = Fleet.Telemetry.tenants_csv (Fleet.Orchestrator.telemetry orch) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + one row per tenant" 19 (List.length lines);
  List.iter
    (fun line ->
      Alcotest.(check int) "8 columns" 8 (List.length (String.split_on_char ',' line)))
    lines

(* The heterogeneous rack cycle is load-bearing: Vfplace and the bench
   derive per-NIC VF capacity from it, so pin it. *)
let test_shape_cycle () =
  let labels = List.init 8 (fun i -> (Fleet.Node.shape_of_index i).Fleet.Node.label) in
  Alcotest.(check (list string)) "rack cycles small, medium, large, medium"
    [ "small"; "medium"; "large"; "medium"; "small"; "medium"; "large"; "medium" ]
    labels;
  Alcotest.(check int) "small VF slots" 256 Fleet.Node.small.Fleet.Node.vf_slots;
  Alcotest.(check int) "medium VF slots" 512 Fleet.Node.medium.Fleet.Node.vf_slots;
  Alcotest.(check int) "large VF slots" 1024 Fleet.Node.large.Fleet.Node.vf_slots

let suite =
  [
    Alcotest.test_case "shape_of_index rack cycle" `Quick test_shape_cycle;
    Alcotest.test_case "demands follow Table 6 profiles" `Quick test_demands_follow_profiles;
    Alcotest.test_case "small NIC rejects Monitor" `Quick test_small_nic_rejects_monitor;
    Alcotest.test_case "policy names roundtrip" `Quick test_policy_names_roundtrip;
    Alcotest.test_case "invariants: first-fit" `Slow test_invariants_first_fit;
    Alcotest.test_case "invariants: spread" `Slow test_invariants_spread;
    Alcotest.test_case "invariants: tco-aware" `Slow test_invariants_tco_aware;
    Alcotest.test_case "full 16-NIC/64-tenant rack" `Slow test_full_rack;
    Alcotest.test_case "deterministic replay" `Slow test_deterministic_replay;
    Alcotest.test_case "typed place error: no capacity" `Quick test_place_typed_no_capacity;
    Alcotest.test_case "typed place error: stage fault" `Quick test_place_typed_stage_fault;
    Alcotest.test_case "evict/replace idempotency" `Quick test_evict_replace_idempotent;
    Alcotest.test_case "kill budgets clamp and report" `Quick test_failure_inject_clamps;
    Alcotest.test_case "NIC kill drains in-flight frames" `Quick test_nic_kill_drains_in_flight;
    Alcotest.test_case "failover skips quarantined NICs" `Quick test_failover_skips_quarantined;
    Alcotest.test_case "telemetry CSV shape" `Slow test_csv_shape;
  ]
