(* Fleet orchestrator: seeded end-to-end scenarios with attested
   placement, failure injection and recovery, plus unit checks on the
   placement machinery. *)

let small_config policy =
  {
    Fleet.Scenario.default_config with
    Fleet.Scenario.n_nics = 6;
    n_tenants = 18;
    policy;
    rounds = 2;
    packets_per_round = 120;
    kill_nics = 1;
    kill_nfs = 2;
  }

(* ---------- workload and node admission ---------- *)

let test_demands_follow_profiles () =
  List.iter
    (fun kind ->
      let d = Fleet.Workload.demand_of_kind kind in
      Alcotest.(check bool)
        (Fleet.Workload.kind_name kind ^ " has memory")
        true (d.Fleet.Workload.mem_bytes > 0);
      Alcotest.(check int) "one core" 1 d.Fleet.Workload.cores;
      (* TLB budgeting uses the full-scale regions: the Monitor's Table 5
         headline number must fall out unchanged. *)
      if kind = Fleet.Workload.Mon then
        Alcotest.(check int) "Mon equal-2MB entries" 183
          (Fleet.Workload.tlb_entries d ~page_sizes:Costmodel.Page_packing.equal_2mb))
    Fleet.Workload.all_kinds

let test_small_nic_rejects_monitor () =
  let vendor = Snic.Identity.make_vendor ~seed:7 ~name:"t" () in
  let node = Fleet.Node.boot ~vendor ~id:0 Fleet.Node.small in
  let mon = Fleet.Workload.demand_of_kind Fleet.Workload.Mon in
  let fw = Fleet.Workload.demand_of_kind Fleet.Workload.Fw in
  (* 183 locked entries under Equal-2MB vs a 96-entry budget. *)
  Alcotest.(check bool) "Mon does not fit a small NIC" false (Fleet.Node.admits node mon);
  Alcotest.(check bool) "FW fits" true (Fleet.Node.admits node fw);
  let medium = Fleet.Node.boot ~vendor ~id:1 Fleet.Node.medium in
  Alcotest.(check bool) "Mon fits a flex-menu NIC" true (Fleet.Node.admits medium mon);
  Fleet.Node.kill medium;
  Alcotest.(check bool) "dead NICs admit nothing" false (Fleet.Node.admits medium fw)

let test_policy_names_roundtrip () =
  List.iter
    (fun p ->
      match Fleet.Policy.of_string (Fleet.Policy.name p) with
      | Ok p' -> Alcotest.(check bool) "roundtrip" true (p = p')
      | Error e -> Alcotest.fail e)
    Fleet.Policy.all;
  Alcotest.(check bool) "unknown rejected" true (Result.is_error (Fleet.Policy.of_string "round-robin"))

(* ---------- end-to-end scenario invariants ---------- *)

let check_invariants policy =
  let report, orch = Fleet.Scenario.run_with (small_config policy) in
  let name = Fleet.Policy.name policy in
  (* Everyone gets placed and attested at boot on this rack. *)
  Alcotest.(check int) (name ^ ": all tenants attested at boot") 18 report.Fleet.Scenario.initial_attested;
  (* Failures were injected and recovered: nobody is left unplaced, and
     every surviving tenant is attested. *)
  Alcotest.(check bool) (name ^ ": failures were injected") true
    (Fleet.Telemetry.nic_kills (Fleet.Orchestrator.telemetry orch) = 1
    && Fleet.Telemetry.nf_kills (Fleet.Orchestrator.telemetry orch) = 2);
  Alcotest.(check bool) (name ^ ": replacements happened") true (report.Fleet.Scenario.replacements > 0);
  Alcotest.(check int) (name ^ ": no tenant left unplaced") 0 report.Fleet.Scenario.final_unplaced;
  Alcotest.(check int) (name ^ ": all tenants attested at end") 18 report.Fleet.Scenario.final_attested;
  (* The acceptance invariants. *)
  Alcotest.(check int) (name ^ ": zero unattested running NFs") 0 report.Fleet.Scenario.unattested_running;
  Alcotest.(check int) (name ^ ": every verified teardown scrubbed") 0 report.Fleet.Scenario.scrub_failures;
  (* The hardware agrees with the control plane's bookkeeping. *)
  Alcotest.(check int) (name ^ ": live functions = attested placements") (Fleet.Orchestrator.attested_count orch)
    (Fleet.Orchestrator.live_nf_total orch);
  (* Traffic flowed. *)
  let forwarded =
    List.fold_left (fun acc r -> acc + r.Fleet.Scenario.traffic.Fleet.Frontend.forwarded) 0
      report.Fleet.Scenario.rounds
  in
  Alcotest.(check bool) (name ^ ": traffic forwarded") true (forwarded > 0)

let test_invariants_first_fit () = check_invariants Fleet.Policy.First_fit
let test_invariants_spread () = check_invariants Fleet.Policy.Spread
let test_invariants_tco_aware () = check_invariants Fleet.Policy.Tco_aware

(* The acceptance-sized rack: 16 NICs, 64 tenants, end to end. *)
let test_full_rack () =
  let report, orch =
    Fleet.Scenario.run_with
      { Fleet.Scenario.default_config with Fleet.Scenario.rounds = 2; packets_per_round = 150 }
  in
  Alcotest.(check int) "64/64 placed and attested at boot" 64 report.Fleet.Scenario.initial_attested;
  Alcotest.(check int) "64/64 attested at end" 64 report.Fleet.Scenario.final_attested;
  Alcotest.(check bool) "recovered from failures" true (report.Fleet.Scenario.replacements > 0);
  Alcotest.(check int) "zero unattested running" 0 report.Fleet.Scenario.unattested_running;
  Alcotest.(check int) "zero scrub failures" 0 report.Fleet.Scenario.scrub_failures;
  (* No Monitor tenant ever lands on an equal-2MB (small) NIC. *)
  Array.iter
    (fun tn ->
      if tn.Fleet.Orchestrator.demand.Fleet.Workload.kind = Fleet.Workload.Mon then
        match tn.Fleet.Orchestrator.placement with
        | Some p ->
          Alcotest.(check bool) "Mon on a flex-menu NIC" true
            ((Fleet.Node.shape p.Fleet.Orchestrator.node).Fleet.Node.tlb_budget_per_core >= 51
            || (Fleet.Node.shape p.Fleet.Orchestrator.node).Fleet.Node.page_menu
               <> Costmodel.Page_packing.equal_2mb)
        | None -> Alcotest.fail "Mon tenant unplaced")
    (Fleet.Orchestrator.tenants orch)

(* ---------- determinism ---------- *)

let test_deterministic_replay () =
  let run () =
    let report, orch = Fleet.Scenario.run_with (small_config Fleet.Policy.Best_fit) in
    let telemetry = Fleet.Orchestrator.telemetry orch in
    ( Fleet.Scenario.summary report,
      Fleet.Telemetry.tenants_csv telemetry,
      Fleet.Telemetry.nics_csv telemetry,
      Fleet.Telemetry.to_json telemetry )
  in
  let s1, t1, n1, j1 = run () in
  let s2, t2, n2, j2 = run () in
  Alcotest.(check string) "summary identical" s1 s2;
  Alcotest.(check string) "tenant CSV identical" t1 t2;
  Alcotest.(check string) "NIC CSV identical" n1 n2;
  Alcotest.(check string) "JSON identical" j1 j2;
  (* A different seed actually changes the run. *)
  let report3, _ =
    Fleet.Scenario.run_with { (small_config Fleet.Policy.Best_fit) with Fleet.Scenario.seed = 1234 }
  in
  Alcotest.(check bool) "different seed, different run" false (Fleet.Scenario.summary report3 = s1)

(* Telemetry CSV export shape stays parseable. *)
let test_csv_shape () =
  let _, orch = Fleet.Scenario.run_with (small_config Fleet.Policy.First_fit) in
  let csv = Fleet.Telemetry.tenants_csv (Fleet.Orchestrator.telemetry orch) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + one row per tenant" 19 (List.length lines);
  List.iter
    (fun line ->
      Alcotest.(check int) "8 columns" 8 (List.length (String.split_on_char ',' line)))
    lines

let suite =
  [
    Alcotest.test_case "demands follow Table 6 profiles" `Quick test_demands_follow_profiles;
    Alcotest.test_case "small NIC rejects Monitor" `Quick test_small_nic_rejects_monitor;
    Alcotest.test_case "policy names roundtrip" `Quick test_policy_names_roundtrip;
    Alcotest.test_case "invariants: first-fit" `Slow test_invariants_first_fit;
    Alcotest.test_case "invariants: spread" `Slow test_invariants_spread;
    Alcotest.test_case "invariants: tco-aware" `Slow test_invariants_tco_aware;
    Alcotest.test_case "full 16-NIC/64-tenant rack" `Slow test_full_rack;
    Alcotest.test_case "deterministic replay" `Slow test_deterministic_replay;
    Alcotest.test_case "telemetry CSV shape" `Slow test_csv_shape;
  ]
