let test_sha256_vectors () =
  let check msg input expected = Alcotest.(check string) msg expected (Crypto.Sha256.to_hex (Crypto.Sha256.digest input)) in
  check "empty" "" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
  check "abc" "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
  check "two blocks" "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
  (* 56..64-byte inputs straddle the padding boundary. *)
  check "55 a's" (String.make 55 'a') "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318";
  check "64 a's" (String.make 64 'a') "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"

let test_sha256_incremental () =
  let whole = Crypto.Sha256.digest "the quick brown fox jumps over the lazy dog" in
  let ctx = Crypto.Sha256.init () in
  Crypto.Sha256.feed ctx "the quick brown fox";
  Crypto.Sha256.feed ctx " jumps over";
  Crypto.Sha256.feed ctx " the lazy dog";
  Alcotest.(check string) "chunked = one-shot" (Crypto.Sha256.to_hex whole) (Crypto.Sha256.to_hex (Crypto.Sha256.finalize ctx))

let test_hmac_rfc4231 () =
  (* RFC 4231 test case 2. *)
  let tag = Crypto.Hmac.mac ~key:"Jefe" "what do ya want for nothing?" in
  Alcotest.(check string) "rfc4231 tc2" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Crypto.Sha256.to_hex tag);
  (* test case 1: 20 bytes of 0x0b, "Hi There" *)
  let tag1 = Crypto.Hmac.mac ~key:(String.make 20 '\x0b') "Hi There" in
  Alcotest.(check string) "rfc4231 tc1" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Crypto.Sha256.to_hex tag1)

let test_dh_agreement () =
  let st = Random.State.make [| 7 |] in
  let group = Crypto.Dh.sim_768 in
  let sa, pa = Crypto.Dh.keypair st group in
  let sb, pb = Crypto.Dh.keypair st group in
  let ka = Crypto.Dh.shared_key ~secret:sa ~peer:pb in
  let kb = Crypto.Dh.shared_key ~secret:sb ~peer:pa in
  Alcotest.(check string) "shared keys agree" (Crypto.Sha256.to_hex ka) (Crypto.Sha256.to_hex kb);
  Alcotest.(check int) "key is 32 bytes" 32 (String.length ka);
  let sc, _ = Crypto.Dh.keypair st group in
  let kc = Crypto.Dh.shared_key ~secret:sc ~peer:pa in
  Alcotest.(check bool) "third party differs" false (String.equal ka kc)

let test_rsa_sign_verify () =
  let st = Random.State.make [| 11 |] in
  let key = Crypto.Rsa.generate st ~bits:512 in
  let msg = "attest: hash-of-initial-state" in
  let signature = Crypto.Rsa.sign key msg in
  Alcotest.(check int) "sig length" (Crypto.Rsa.modulus_bytes key.pub) (String.length signature);
  Alcotest.(check bool) "verifies" true (Crypto.Rsa.verify key.pub ~msg ~signature);
  Alcotest.(check bool) "wrong msg" false (Crypto.Rsa.verify key.pub ~msg:"other" ~signature);
  let tampered = Bytes.of_string signature in
  Bytes.set tampered 5 (Char.chr (Char.code (Bytes.get tampered 5) lxor 1));
  Alcotest.(check bool) "tampered sig" false (Crypto.Rsa.verify key.pub ~msg ~signature:(Bytes.to_string tampered))

let test_certificate_chain () =
  let st = Random.State.make [| 13 |] in
  let vendor = Crypto.Rsa.generate st ~bits:512 in
  let ek = Crypto.Rsa.generate st ~bits:512 in
  let cert = Crypto.Rsa.issue ~issuer_name:"NIC Vendor Inc" ~issuer_key:vendor ~subject:"S-NIC EK 0042" ek.pub in
  Alcotest.(check bool) "cert verifies" true (Crypto.Rsa.check_certificate ~issuer_key:vendor.pub cert);
  let mallory = Crypto.Rsa.generate st ~bits:512 in
  Alcotest.(check bool) "wrong issuer" false (Crypto.Rsa.check_certificate ~issuer_key:mallory.pub cert)

let test_cipher_roundtrip () =
  let key = Crypto.Sha256.digest "shared" in
  let pt = "payload bytes \x00\x01\x02 with zeros" in
  let ct = Crypto.Cipher.seal ~key ~nonce:42L pt in
  Alcotest.(check int) "tag adds 16" (String.length pt + 16) (String.length ct);
  (match Crypto.Cipher.open_ ~key ~nonce:42L ct with
  | Some got -> Alcotest.(check string) "roundtrip" pt got
  | None -> Alcotest.fail "decrypt failed");
  Alcotest.(check bool) "wrong nonce" true (Crypto.Cipher.open_ ~key ~nonce:43L ct = None);
  Alcotest.(check bool) "wrong key" true (Crypto.Cipher.open_ ~key:(Crypto.Sha256.digest "x") ~nonce:42L ct = None);
  let bad = Bytes.of_string ct in
  Bytes.set bad 0 (Char.chr (Char.code (Bytes.get bad 0) lxor 0x80));
  Alcotest.(check bool) "tampered" true (Crypto.Cipher.open_ ~key ~nonce:42L (Bytes.to_string bad) = None)

let prop_cipher_roundtrip =
  QCheck.Test.make ~name:"cipher roundtrips arbitrary payloads" ~count:100
    (QCheck.string_of_size (QCheck.Gen.int_range 0 500))
    (fun pt ->
      let key = Crypto.Sha256.digest "k" in
      Crypto.Cipher.open_ ~key ~nonce:7L (Crypto.Cipher.seal ~key ~nonce:7L pt) = Some pt)

let prop_hmac_keyed =
  QCheck.Test.make ~name:"hmac distinguishes keys" ~count:100
    (QCheck.pair QCheck.small_string QCheck.small_string)
    (fun (k, m) -> String.equal (Crypto.Hmac.mac ~key:k m) (Crypto.Hmac.mac ~key:(k ^ "x") m) = false)

let suite =
  [
    Alcotest.test_case "sha256 FIPS vectors" `Quick test_sha256_vectors;
    Alcotest.test_case "sha256 incremental" `Quick test_sha256_incremental;
    Alcotest.test_case "hmac rfc4231" `Quick test_hmac_rfc4231;
    Alcotest.test_case "dh agreement" `Quick test_dh_agreement;
    Alcotest.test_case "rsa sign/verify" `Slow test_rsa_sign_verify;
    Alcotest.test_case "certificate chain" `Slow test_certificate_chain;
    Alcotest.test_case "cipher roundtrip" `Quick test_cipher_roundtrip;
    QCheck_alcotest.to_alcotest prop_cipher_roundtrip;
    QCheck_alcotest.to_alcotest prop_hmac_keyed;
  ]

let test_dh_full_strength () =
  (* The RFC 3526 1536-bit group the production protocol would use. *)
  let st = Random.State.make [| 99 |] in
  let group = Crypto.Dh.modp_1536 in
  Alcotest.(check int) "modulus width" 1536 (Bigint.bit_length group.Crypto.Dh.p);
  let sa, pa = Crypto.Dh.keypair st group in
  let sb, pb = Crypto.Dh.keypair st group in
  Alcotest.(check string) "full-strength agreement"
    (Crypto.Sha256.to_hex (Crypto.Dh.shared_key ~secret:sa ~peer:pb))
    (Crypto.Sha256.to_hex (Crypto.Dh.shared_key ~secret:sb ~peer:pa))

let test_rsa_1024 () =
  let st = Random.State.make [| 101 |] in
  let key = Crypto.Rsa.generate st ~bits:1024 in
  let signature = Crypto.Rsa.sign key "production-size key" in
  Alcotest.(check int) "128-byte signature" 128 (String.length signature);
  Alcotest.(check bool) "verifies" true (Crypto.Rsa.verify key.pub ~msg:"production-size key" ~signature)

let test_rsa_cross_key_rejection () =
  let st = Random.State.make [| 103 |] in
  let k1 = Crypto.Rsa.generate st ~bits:512 in
  let k2 = Crypto.Rsa.generate st ~bits:512 in
  let signature = Crypto.Rsa.sign k1 "msg" in
  Alcotest.(check bool) "other key rejects" false (Crypto.Rsa.verify k2.pub ~msg:"msg" ~signature)

let prop_sha256_distinct =
  QCheck.Test.make ~name:"sha256 distinguishes nearby inputs" ~count:300 QCheck.small_string (fun s ->
      not (String.equal (Crypto.Sha256.digest s) (Crypto.Sha256.digest (s ^ "\x00"))))

let prop_sha256_incremental_eq =
  QCheck.Test.make ~name:"sha256 incremental = one-shot at any split" ~count:200
    (QCheck.pair (QCheck.string_of_size (QCheck.Gen.int_range 0 300)) QCheck.small_nat)
    (fun (s, k) ->
      let k = if String.length s = 0 then 0 else k mod (String.length s + 1) in
      let ctx = Crypto.Sha256.init () in
      Crypto.Sha256.feed ctx (String.sub s 0 k);
      Crypto.Sha256.feed ctx (String.sub s k (String.length s - k));
      String.equal (Crypto.Sha256.finalize ctx) (Crypto.Sha256.digest s))

let suite =
  suite
  @ [
      Alcotest.test_case "dh full strength (1536)" `Slow test_dh_full_strength;
      Alcotest.test_case "rsa 1024" `Slow test_rsa_1024;
      Alcotest.test_case "rsa cross-key rejection" `Slow test_rsa_cross_key_rejection;
      QCheck_alcotest.to_alcotest prop_sha256_distinct;
      QCheck_alcotest.to_alcotest prop_sha256_incremental_eq;
    ]
