open Nicsim

let check_attack name expect outcome =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s" name outcome.Attacks.detail)
    expect outcome.Attacks.succeeded

(* ---------- packet corruption (§3.3 attack 1) ---------- *)

let test_corruption_liquidio_se_s () =
  check_attack "SE-S corruption" true (Attacks.packet_corruption Machine.Liquidio_se_s)

let test_corruption_agilio () = check_attack "Agilio corruption" true (Attacks.packet_corruption Machine.Agilio)

let test_corruption_se_um_xkphys () =
  check_attack "SE-UM+xkphys corruption" true
    (Attacks.packet_corruption (Machine.Liquidio_se_um { nf_xkphys = true }))

let test_corruption_se_um_no_xkphys () =
  check_attack "SE-UM w/o xkphys corruption blocked" false
    (Attacks.packet_corruption (Machine.Liquidio_se_um { nf_xkphys = false }))

let test_corruption_bluefield () =
  (* BlueField's normal-world packet buffers are still writable by other
     normal-world code; only secure-world state is protected. *)
  check_attack "BlueField corruption" true (Attacks.packet_corruption Machine.Bluefield)

let test_corruption_snic_blocked () =
  let o = Attacks.packet_corruption Machine.Snic in
  check_attack "S-NIC corruption blocked" false o;
  (* And blocked for the right reason: a denial, not a lucky miss. *)
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "denied by hardware" true (contains o.Attacks.detail "denied")

(* ---------- DPI ruleset stealing (§3.3 attack 2) ---------- *)

let test_stealing_liquidio_se_s () =
  check_attack "SE-S stealing" true (Attacks.ruleset_stealing Machine.Liquidio_se_s)

let test_stealing_agilio () = check_attack "Agilio stealing" true (Attacks.ruleset_stealing Machine.Agilio)

let test_stealing_bluefield_blocked () =
  (* The DPI ruleset lives in secure-world memory: TrustZone stops the
     normal-world attacker (but not the NIC OS — see below). *)
  check_attack "BlueField stealing blocked" false (Attacks.ruleset_stealing Machine.Bluefield)

let test_stealing_snic_blocked () =
  check_attack "S-NIC stealing blocked" false (Attacks.ruleset_stealing Machine.Snic)

(* BlueField's residual weakness: the secure-world NIC OS reads NF state
   freely; S-NIC's denylist stops even the OS. *)
let test_os_snooping_bluefield_vs_snic () =
  let snoop mode =
    let s = Attacks.Scenario.setup mode in
    Result.is_ok (Machine.load_u8 s.Attacks.Scenario.machine Machine.Os (Machine.Phys s.Attacks.Scenario.victim_mem))
  in
  Alcotest.(check bool) "BlueField OS snoops" true (snoop Machine.Bluefield);
  Alcotest.(check bool) "S-NIC OS repelled" false (snoop Machine.Snic)

(* ---------- IO bus DoS (§3.3 attack 3) ---------- *)

let test_dos_free_for_all () =
  let r = Attacks.bus_dos Bus.Free_for_all in
  Alcotest.(check bool)
    (Printf.sprintf "free-for-all collapses throughput (retained %.1f%%)" (100. *. r.Attacks.retained))
    true
    (r.Attacks.retained < 0.35);
  Alcotest.(check bool) "alone rate sane" true (r.Attacks.alone_pps > 0.)

let test_dos_temporal_partitioning () =
  let r = Attacks.bus_dos (Bus.Temporal { epoch = 96; dead = 16 }) in
  Alcotest.(check bool)
    (Printf.sprintf "temporal partitioning preserves throughput (retained %.1f%%)" (100. *. r.Attacks.retained))
    true
    (r.Attacks.retained > 0.95)

let test_dos_temporal_costs_some_baseline () =
  (* The price of determinism: the victim alone is slower under temporal
     partitioning than under free-for-all (it must wait for its slots). *)
  let ffa = Attacks.bus_dos Bus.Free_for_all in
  let tp = Attacks.bus_dos (Bus.Temporal { epoch = 96; dead = 16 }) in
  Alcotest.(check bool) "temporal alone slower than FFA alone" true (tp.Attacks.alone_pps < ffa.Attacks.alone_pps);
  Alcotest.(check bool) "but temporal under attack beats FFA under attack" true
    (tp.Attacks.under_attack_pps > ffa.Attacks.under_attack_pps)

(* ---------- the full matrix ---------- *)

let test_matrix_shape () =
  let m = Attacks.matrix () in
  Alcotest.(check int) "six modes" 6 (List.length m);
  (* S-NIC is the only mode where both attacks are blocked...
     except SE-UM without xkphys, which blocks both at the ISA level but
     (unlike S-NIC) leaves the OS omnipotent and side channels open. *)
  List.iter
    (fun (name, corr, steal) ->
      if name = "S-NIC" then begin
        Alcotest.(check bool) "snic corr blocked" false corr.Attacks.succeeded;
        Alcotest.(check bool) "snic steal blocked" false steal.Attacks.succeeded
      end;
      if name = "LiquidIO SE-S" || name = "Agilio" then begin
        Alcotest.(check bool) (name ^ " corr works") true corr.Attacks.succeeded;
        Alcotest.(check bool) (name ^ " steal works") true steal.Attacks.succeeded
      end)
    m

let suite =
  [
    Alcotest.test_case "corruption: LiquidIO SE-S" `Quick test_corruption_liquidio_se_s;
    Alcotest.test_case "corruption: Agilio" `Quick test_corruption_agilio;
    Alcotest.test_case "corruption: SE-UM + xkphys" `Quick test_corruption_se_um_xkphys;
    Alcotest.test_case "corruption: SE-UM w/o xkphys" `Quick test_corruption_se_um_no_xkphys;
    Alcotest.test_case "corruption: BlueField" `Quick test_corruption_bluefield;
    Alcotest.test_case "corruption: S-NIC blocked" `Quick test_corruption_snic_blocked;
    Alcotest.test_case "stealing: LiquidIO SE-S" `Quick test_stealing_liquidio_se_s;
    Alcotest.test_case "stealing: Agilio" `Quick test_stealing_agilio;
    Alcotest.test_case "stealing: BlueField blocked" `Quick test_stealing_bluefield_blocked;
    Alcotest.test_case "stealing: S-NIC blocked" `Quick test_stealing_snic_blocked;
    Alcotest.test_case "OS snooping: BlueField vs S-NIC" `Quick test_os_snooping_bluefield_vs_snic;
    Alcotest.test_case "bus DoS: free-for-all collapses" `Quick test_dos_free_for_all;
    Alcotest.test_case "bus DoS: temporal partitioning holds" `Quick test_dos_temporal_partitioning;
    Alcotest.test_case "bus DoS: partitioning tradeoff" `Quick test_dos_temporal_costs_some_baseline;
    Alcotest.test_case "attack matrix" `Quick test_matrix_shape;
  ]

(* ---------- timing side channels ---------- *)

let test_covert_channel_ffa () =
  let r = Attacks.bus_covert_channel Bus.Free_for_all in
  Alcotest.(check bool)
    (Printf.sprintf "free-for-all bus leaks bits (%.0f%%)" (100. *. r.Attacks.accuracy))
    true
    (r.Attacks.accuracy > 0.9)

let test_covert_channel_temporal () =
  let r = Attacks.bus_covert_channel (Bus.Temporal { epoch = 96; dead = 16 }) in
  Alcotest.(check bool)
    (Printf.sprintf "temporal partitioning jams the channel (%.0f%%)" (100. *. r.Attacks.accuracy))
    true
    (r.Attacks.accuracy < 0.7)

let test_accel_contention () =
  let shared = Attacks.accel_contention ~shared:true in
  Alcotest.(check bool)
    (Printf.sprintf "shared accelerator leaks (idle %d vs busy %d)" shared.Attacks.idle_latency
       shared.Attacks.busy_latency)
    true shared.Attacks.distinguishable;
  let clustered = Attacks.accel_contention ~shared:false in
  Alcotest.(check bool) "dedicated cluster is flat" false clustered.Attacks.distinguishable;
  Alcotest.(check int) "identical idle latency" shared.Attacks.idle_latency clustered.Attacks.idle_latency

let suite =
  suite
  @ [
      Alcotest.test_case "covert channel: free-for-all leaks" `Quick test_covert_channel_ffa;
      Alcotest.test_case "covert channel: temporal jams" `Quick test_covert_channel_temporal;
      Alcotest.test_case "accelerator contention probe" `Quick test_accel_contention;
    ]

(* ---------- SafeBricks vs S-NIC deployment (§1 motivation) ---------- *)

let test_safebricks_weakness () =
  let sb = Attacks.Safebricks.safebricks_deployment () in
  Alcotest.(check bool) "kernel reads staged packets" true sb.Attacks.Safebricks.kernel_saw_plaintext;
  Alcotest.(check bool) "kernel tampering reaches enclave input" true sb.Attacks.Safebricks.kernel_tampered_input;
  Alcotest.(check bool) "DMA into EPC impossible" false sb.Attacks.Safebricks.dma_into_protected_memory

let test_snic_deployment_strength () =
  let sn = Attacks.Safebricks.snic_deployment () in
  Alcotest.(check bool) "kernel cannot read packets" false sn.Attacks.Safebricks.kernel_saw_plaintext;
  Alcotest.(check bool) "kernel cannot tamper input" false sn.Attacks.Safebricks.kernel_tampered_input;
  Alcotest.(check bool) "no unsanctioned DMA" false sn.Attacks.Safebricks.dma_into_protected_memory

let suite =
  suite
  @ [
      Alcotest.test_case "safebricks deployment weaknesses" `Quick test_safebricks_weakness;
      Alcotest.test_case "s-nic deployment strengths" `Quick test_snic_deployment_strength;
    ]

(* ---------- accelerator hijacking (§4.3) ---------- *)

let test_accel_hijack_matrix () =
  List.iter
    (fun (mode, expect) ->
      check_attack (Machine.mode_name mode ^ " accel hijack") expect (Attacks.accel_hijack mode))
    [
      (Machine.Liquidio_se_s, true);
      (Machine.Liquidio_se_um { nf_xkphys = true }, true);
      (Machine.Liquidio_se_um { nf_xkphys = false }, false);
      (Machine.Agilio, true);
      (Machine.Bluefield, false) (* secure-only accelerator *);
      (Machine.Snic, false);
    ]

let suite = suite @ [ Alcotest.test_case "accelerator hijacking matrix" `Quick test_accel_hijack_matrix ]
