let ip = Net.Ipv4_addr.of_string

let packet ?(src = "10.0.0.5") ?(dst = "93.184.216.34") ?(sport = 40000) ?(dport = 80) ?(payload = "data") () =
  Net.Packet.make ~src_ip:(ip src) ~dst_ip:(ip dst) ~proto:Net.Packet.Tcp ~src_port:sport ~dst_port:dport payload

(* ---------- generic LRU ---------- *)

module L = Nf.Lru.Make (Net.Five_tuple.Table)

let flow i = Net.Packet.flow (packet ~sport:(1000 + i) ())

let test_lru_basic () =
  let c = L.create ~capacity:3 in
  L.add c (flow 1) "a";
  L.add c (flow 2) "b";
  L.add c (flow 3) "c";
  Alcotest.(check (option string)) "find" (Some "a") (L.find c (flow 1));
  (* flow 1 is now MRU; adding a 4th evicts flow 2 (the LRU). *)
  L.add c (flow 4) "d";
  Alcotest.(check int) "bounded" 3 (L.length c);
  Alcotest.(check (option string)) "evicted" None (L.find c (flow 2));
  Alcotest.(check (option string)) "survivor" (Some "a") (L.find c (flow 1));
  Alcotest.(check int) "one eviction" 1 (L.evictions c)

let test_lru_update_in_place () =
  let c = L.create ~capacity:2 in
  L.add c (flow 1) "a";
  L.add c (flow 1) "a2";
  Alcotest.(check int) "no duplicate" 1 (L.length c);
  Alcotest.(check (option string)) "updated" (Some "a2") (L.find c (flow 1))

let test_lru_recency_order () =
  let c = L.create ~capacity:4 in
  List.iter (fun i -> L.add c (flow i) i) [ 1; 2; 3; 4 ];
  ignore (L.find c (flow 2));
  let order = L.keys_by_recency c in
  Alcotest.(check int) "four keys" 4 (List.length order);
  Alcotest.(check bool) "flow 2 is MRU" true (Net.Five_tuple.equal (List.hd order) (flow 2))

let prop_lru_never_exceeds_capacity =
  QCheck.Test.make ~name:"lru never exceeds capacity" ~count:100
    (QCheck.pair (QCheck.int_range 1 16) (QCheck.list_of_size (QCheck.Gen.int_range 0 100) (QCheck.int_bound 30)))
    (fun (cap, ops) ->
      let c = L.create ~capacity:cap in
      List.iter (fun i -> L.add c (flow i) i) ops;
      L.length c <= cap
      && List.for_all (fun i -> not (L.mem c (flow i)) || L.find c (flow i) <> None) ops)

(* ---------- firewall LRU behavior ---------- *)

let test_firewall_lru_eviction () =
  let fw = Nf.Firewall.create ~cache_capacity:2 ~default:Nf.Firewall.Allow [] in
  ignore (Nf.Firewall.classify fw (packet ~sport:1 ()));
  ignore (Nf.Firewall.classify fw (packet ~sport:2 ()));
  (* Touch flow 1, then add flow 3: flow 2 must be the one evicted. *)
  ignore (Nf.Firewall.classify fw (packet ~sport:1 ()));
  ignore (Nf.Firewall.classify fw (packet ~sport:3 ()));
  Alcotest.(check int) "cache stays bounded" 2 (Nf.Firewall.cached_flows fw);
  Alcotest.(check int) "one eviction" 1 (Nf.Firewall.cache_evictions fw)

(* ---------- NAT expiry ---------- *)

let make_nat () = Nf.Nat.create ~internal_prefix:(ip "10.0.0.0", 8) ~external_ip:(ip "203.0.113.1") ()

let test_nat_expiry_recycles_ports () =
  let nat = make_nat () in
  let p1 = Option.get (Nf.Nat.translate nat (packet ~sport:1111 ())) in
  (* Keep a second flow fresh with more traffic. *)
  for _ = 1 to 10 do
    ignore (Nf.Nat.translate nat (packet ~sport:2222 ()))
  done;
  Alcotest.(check int) "two mappings" 2 (Nf.Nat.active_mappings nat);
  let expired = Nf.Nat.expire nat ~idle_for:5 in
  Alcotest.(check int) "stale flow expired" 1 expired;
  Alcotest.(check int) "one mapping left" 1 (Nf.Nat.active_mappings nat);
  (* The recycled port is reused by the next new flow. *)
  let p3 = Option.get (Nf.Nat.translate nat (packet ~sport:3333 ())) in
  Alcotest.(check int) "port recycled" p1.Net.Packet.src_port p3.Net.Packet.src_port

let test_nat_refresh_prevents_expiry () =
  let nat = make_nat () in
  ignore (Nf.Nat.translate nat (packet ~sport:1111 ()));
  for _ = 1 to 10 do
    ignore (Nf.Nat.translate nat (packet ~sport:1111 ()))
  done;
  Alcotest.(check int) "fresh mapping survives" 0 (Nf.Nat.expire nat ~idle_for:5)

let test_nat_inbound_refreshes () =
  let nat = make_nat () in
  let out = Option.get (Nf.Nat.translate nat (packet ~sport:1111 ())) in
  (* Only inbound traffic for a while. *)
  for _ = 1 to 10 do
    let reply =
      Net.Packet.make ~src_ip:(ip "93.184.216.34") ~dst_ip:out.Net.Packet.src_ip ~proto:Net.Packet.Tcp ~src_port:80
        ~dst_port:out.Net.Packet.src_port "r"
    in
    ignore (Nf.Nat.translate nat reply)
  done;
  Alcotest.(check int) "inbound refreshed it" 0 (Nf.Nat.expire nat ~idle_for:5)

(* ---------- VXLAN gateway ---------- *)

let test_vxlan_gateway_roundtrip () =
  let deny =
    { (Nf.Firewall.rule_any Nf.Firewall.Deny) with Nf.Firewall.dst_ports = Some (22, 22) }
  in
  let inner = Nf.Firewall.nf (Nf.Firewall.create ~default:Nf.Firewall.Allow [ deny ]) in
  let gw =
    Nf.Vxlan_gw.create ~vni:7 ~local_vtep:(ip "172.16.0.2") ~remote_vtep:(ip "172.16.0.3") ~inner ()
  in
  let nf = Nf.Vxlan_gw.nf gw in
  let inner_pkt = packet ~src:"192.168.1.1" ~dst:"192.168.1.2" ~dport:80 () in
  let outer = Net.Vxlan.encapsulate ~vni:7 ~outer_src_ip:(ip "172.16.0.1") ~outer_dst_ip:(ip "172.16.0.2") inner_pkt in
  (match nf.Nf.Types.process outer with
  | Nf.Types.Forward out -> begin
    match Net.Vxlan.decapsulate out with
    | Ok { vni; inner = got; outer_dst_ip; _ } ->
      Alcotest.(check int) "vni preserved" 7 vni;
      Alcotest.(check string) "re-encapsulated toward remote VTEP" "172.16.0.3" (Net.Ipv4_addr.to_string outer_dst_ip);
      Alcotest.(check bool) "inner intact" true (Net.Packet.equal inner_pkt got)
    | Error e -> Alcotest.fail e
  end
  | Nf.Types.Drop r -> Alcotest.fail ("dropped: " ^ r));
  (* The inner NF's policy applies to the decapsulated packet. *)
  let ssh = packet ~src:"192.168.1.1" ~dst:"192.168.1.2" ~dport:22 () in
  let outer_ssh = Net.Vxlan.encapsulate ~vni:7 ~outer_src_ip:(ip "172.16.0.1") ~outer_dst_ip:(ip "172.16.0.2") ssh in
  Alcotest.(check bool) "inner firewall applies" true (Nf.Types.is_drop (nf.Nf.Types.process outer_ssh));
  Alcotest.(check int) "decap count" 2 (Nf.Vxlan_gw.packets_decapsulated gw)

let test_vxlan_gateway_rejects () =
  let inner = Nf.Monitor.nf (Nf.Monitor.create ()) in
  let gw = Nf.Vxlan_gw.create ~vni:7 ~local_vtep:(ip "172.16.0.2") ~remote_vtep:(ip "172.16.0.3") ~inner () in
  let nf = Nf.Vxlan_gw.nf gw in
  (* Wrong VNI. *)
  let other =
    Net.Vxlan.encapsulate ~vni:9 ~outer_src_ip:(ip "172.16.0.1") ~outer_dst_ip:(ip "172.16.0.2") (packet ())
  in
  Alcotest.(check bool) "foreign VNI dropped" true (Nf.Types.is_drop (nf.Nf.Types.process other));
  (* Plain (non-VXLAN) packet. *)
  Alcotest.(check bool) "non-vxlan dropped" true (Nf.Types.is_drop (nf.Nf.Types.process (packet ())));
  Alcotest.(check int) "rejects counted" 2 (Nf.Vxlan_gw.packets_rejected gw)

(* ---------- count-min sketch ---------- *)

let test_count_min_basics () =
  let cm = Nf.Count_min.create ~width:1024 ~depth:4 in
  let f1 = flow 1 and f2 = flow 2 in
  for _ = 1 to 100 do
    Nf.Count_min.observe cm f1
  done;
  for _ = 1 to 7 do
    Nf.Count_min.observe cm f2
  done;
  Alcotest.(check int) "observations" 107 (Nf.Count_min.observations cm);
  Alcotest.(check bool) "f1 at least 100" true (Nf.Count_min.estimate cm f1 >= 100);
  Alcotest.(check bool) "f2 at least 7" true (Nf.Count_min.estimate cm f2 >= 7);
  Alcotest.(check int) "unseen flow small" 0 (Nf.Count_min.estimate cm (flow 99));
  Alcotest.(check int) "memory fixed" (1024 * 4 * 8) (Nf.Count_min.memory_bytes cm)

let prop_count_min_never_underestimates =
  QCheck.Test.make ~name:"count-min never under-estimates" ~count:50
    (QCheck.list_of_size (QCheck.Gen.int_range 1 300) (QCheck.int_bound 20))
    (fun ops ->
      let cm = Nf.Count_min.create ~width:64 ~depth:3 in
      let truth = Hashtbl.create 16 in
      List.iter
        (fun i ->
          Nf.Count_min.observe cm (flow i);
          Hashtbl.replace truth i (1 + Option.value ~default:0 (Hashtbl.find_opt truth i)))
        ops;
      Hashtbl.fold (fun i n acc -> acc && Nf.Count_min.estimate cm (flow i) >= n) truth true)

let test_count_min_error_bound () =
  (* With width >> distinct flows, estimates are nearly exact. *)
  let cm = Nf.Count_min.create ~width:4096 ~depth:5 in
  let rng = Trace.Rng.create ~seed:31 in
  let counts = Array.make 50 0 in
  for _ = 1 to 5000 do
    let i = Trace.Rng.int rng 50 in
    counts.(i) <- counts.(i) + 1;
    Nf.Count_min.observe cm (flow i)
  done;
  let max_err = ref 0 in
  Array.iteri (fun i n -> max_err := max !max_err (Nf.Count_min.estimate cm (flow i) - n)) counts;
  Alcotest.(check bool) (Printf.sprintf "max over-estimate %d small" !max_err) true (!max_err <= 5000 * 2 / 4096)

let suite =
  [
    Alcotest.test_case "lru basics" `Quick test_lru_basic;
    Alcotest.test_case "lru update in place" `Quick test_lru_update_in_place;
    Alcotest.test_case "lru recency order" `Quick test_lru_recency_order;
    QCheck_alcotest.to_alcotest prop_lru_never_exceeds_capacity;
    Alcotest.test_case "firewall LRU eviction" `Quick test_firewall_lru_eviction;
    Alcotest.test_case "nat expiry recycles ports" `Quick test_nat_expiry_recycles_ports;
    Alcotest.test_case "nat refresh prevents expiry" `Quick test_nat_refresh_prevents_expiry;
    Alcotest.test_case "nat inbound refreshes" `Quick test_nat_inbound_refreshes;
    Alcotest.test_case "vxlan gateway roundtrip" `Quick test_vxlan_gateway_roundtrip;
    Alcotest.test_case "vxlan gateway rejects" `Quick test_vxlan_gateway_rejects;
    Alcotest.test_case "count-min basics" `Quick test_count_min_basics;
    QCheck_alcotest.to_alcotest prop_count_min_never_underestimates;
    Alcotest.test_case "count-min error bound" `Quick test_count_min_error_bound;
  ]

(* ---------- WAN optimizer ---------- *)

let test_wan_opt_pair () =
  let c = Nf.Wan_opt.create ~mode:Nf.Wan_opt.Compress () in
  let d = Nf.Wan_opt.create ~mode:Nf.Wan_opt.Decompress () in
  let nf_c = Nf.Wan_opt.nf c and nf_d = Nf.Wan_opt.nf d in
  let payload = String.concat "" (List.init 40 (fun _ -> "GET /index.html HTTP/1.1\r\nHost: example.com\r\n")) in
  let p = packet ~payload () in
  (match nf_c.Nf.Types.process p with
  | Nf.Types.Forward squeezed -> begin
    Alcotest.(check bool) "payload shrank" true
      (String.length squeezed.Net.Packet.payload < String.length payload);
    match nf_d.Nf.Types.process squeezed with
    | Nf.Types.Forward restored -> Alcotest.(check string) "restored" payload restored.Net.Packet.payload
    | Nf.Types.Drop r -> Alcotest.fail r
  end
  | Nf.Types.Drop r -> Alcotest.fail r);
  Alcotest.(check bool) "savings positive" true (Nf.Wan_opt.savings c > 0.5);
  Alcotest.(check int) "bytes conserved end to end" (Nf.Wan_opt.bytes_in c) (Nf.Wan_opt.bytes_out d)

let test_wan_opt_incompressible_passthrough () =
  let rng = Trace.Rng.create ~seed:41 in
  let noise = String.init 800 (fun _ -> Char.chr (Trace.Rng.int rng 256)) in
  let c = Nf.Wan_opt.create ~mode:Nf.Wan_opt.Compress () in
  let d = Nf.Wan_opt.create ~mode:Nf.Wan_opt.Decompress () in
  (match (Nf.Wan_opt.nf c).Nf.Types.process (packet ~payload:noise ()) with
  | Nf.Types.Forward out -> begin
    Alcotest.(check int) "passthrough marked" 1 (Nf.Wan_opt.passthrough c);
    match (Nf.Wan_opt.nf d).Nf.Types.process out with
    | Nf.Types.Forward restored -> Alcotest.(check string) "noise survives" noise restored.Net.Packet.payload
    | Nf.Types.Drop r -> Alcotest.fail r
  end
  | Nf.Types.Drop r -> Alcotest.fail r);
  (* Garbage at the decompressor is dropped, not crashed on. *)
  match (Nf.Wan_opt.nf d).Nf.Types.process (packet ~payload:"Zmalformed" ()) with
  | Nf.Types.Drop _ -> ()
  | Nf.Types.Forward _ -> Alcotest.fail "garbage shim accepted"

let test_wan_opt_over_cross_vpp_chain () =
  (* The full §1 scenario: compressor and decompressor as isolated S-NIC
     functions chained across VPPs. *)
  let api = Snic.Api.boot () in
  let v_c =
    Result.get_ok
      (Snic.Api.nf_create api
         { Snic.Instructions.default_config with image = "wan-c"; rules = [ Nicsim.Pktio.match_any ] })
  in
  let v_d = Result.get_ok (Snic.Api.nf_create api { Snic.Instructions.default_config with image = "wan-d" }) in
  let comp = Nf.Wan_opt.create ~mode:Nf.Wan_opt.Compress () in
  let chain =
    Snic.Chain.create api
      [ (v_c, Nf.Wan_opt.nf comp); (v_d, Nf.Wan_opt.nf (Nf.Wan_opt.create ~mode:Nf.Wan_opt.Decompress ())) ]
  in
  let payload = String.concat "" (List.init 30 (fun i -> Printf.sprintf "log line %d: status=OK\n" i)) in
  ignore (Snic.Api.inject_packet api (packet ~payload ()));
  ignore (Snic.Chain.pump chain ~max:10);
  match Snic.Api.transmitted api with
  | [ out ] ->
    Alcotest.(check string) "restored across the chain" payload out.Net.Packet.payload;
    Alcotest.(check bool) "link carried fewer bytes" true (Nf.Wan_opt.savings comp > 0.3)
  | l -> Alcotest.failf "expected one frame, got %d" (List.length l)

let suite =
  suite
  @ [
      Alcotest.test_case "wan optimizer pair" `Quick test_wan_opt_pair;
      Alcotest.test_case "wan optimizer passthrough" `Quick test_wan_opt_incompressible_passthrough;
      Alcotest.test_case "wan optimizer over cross-VPP chain" `Quick test_wan_opt_over_cross_vpp_chain;
    ]
