let ip = Net.Ipv4_addr.of_string

let packet ?(src = "10.0.0.5") ?(dst = "93.184.216.34") ?(proto = Net.Packet.Tcp) ?(sport = 40000) ?(dport = 80)
    ?(payload = "GET / HTTP/1.1") () =
  Net.Packet.make ~src_ip:(ip src) ~dst_ip:(ip dst) ~proto ~src_port:sport ~dst_port:dport payload

(* ---------- Aho-Corasick ---------- *)

let test_ac_basic () =
  let ac = Nf.Aho_corasick.build [ "he"; "she"; "his"; "hers" ] in
  Alcotest.(check int) "patterns" 4 (Nf.Aho_corasick.pattern_count ac);
  (* Classic example: "ushers" contains she, he, hers. *)
  Alcotest.(check int) "ushers" 3 (Nf.Aho_corasick.scan ac "ushers");
  Alcotest.(check int) "no match" 0 (Nf.Aho_corasick.scan ac "xyzzy");
  let hits = ref [] in
  Nf.Aho_corasick.iter_matches ac "ushers" (fun ~pattern ~end_pos -> hits := (pattern, end_pos) :: !hits);
  Alcotest.(check int) "iter count" 3 (List.length !hits)

let test_ac_overlapping () =
  let ac = Nf.Aho_corasick.build [ "aa"; "aaa" ] in
  (* "aaaa": "aa" ends at 1,2,3 and "aaa" at 2,3 -> 5 hits. *)
  Alcotest.(check int) "overlaps counted" 5 (Nf.Aho_corasick.scan ac "aaaa")

let test_ac_binary_patterns () =
  let ac = Nf.Aho_corasick.build [ "\x00\x01\x02"; "\xff\xfe" ] in
  Alcotest.(check int) "binary" 2 (Nf.Aho_corasick.scan ac "x\x00\x01\x02y\xff\xfez");
  Alcotest.(check (option int)) "first match id" (Some 0) (Nf.Aho_corasick.first_match ac "..\x00\x01\x02..")

let test_ac_rejects_empty () =
  Alcotest.check_raises "empty pattern" (Invalid_argument "Aho_corasick.build: empty pattern") (fun () ->
      ignore (Nf.Aho_corasick.build [ "ok"; "" ]))

let test_ac_substring_of_pattern () =
  (* Matching inside a longer pattern via failure links. *)
  let ac = Nf.Aho_corasick.build [ "abcde"; "cd" ] in
  Alcotest.(check int) "cd found while walking abcde prefix" 1 (Nf.Aho_corasick.scan ac "abcdX")

let prop_ac_matches_naive =
  let gen =
    QCheck.Gen.(
      let* pats = list_size (int_range 1 5) (string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_range 1 4)) in
      let* text = string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_range 0 50) in
      return (pats, text))
  in
  QCheck.Test.make ~name:"aho-corasick matches naive search" ~count:300 (QCheck.make gen) (fun (pats, text) ->
      let pats = List.sort_uniq compare pats in
      let ac = Nf.Aho_corasick.build pats in
      let naive =
        List.fold_left
          (fun acc p ->
            let count = ref 0 in
            let pl = String.length p and tl = String.length text in
            for i = 0 to tl - pl do
              if String.sub text i pl = p then incr count
            done;
            acc + !count)
          0 pats
      in
      Nf.Aho_corasick.scan ac text = naive)

(* ---------- Firewall ---------- *)

let deny_ssh =
  {
    Nf.Firewall.src_prefix = None;
    dst_prefix = None;
    proto = Some 6;
    src_ports = None;
    dst_ports = Some (22, 22);
    action = Nf.Firewall.Deny;
  }

let deny_net =
  {
    Nf.Firewall.src_prefix = Some (ip "192.0.2.0", 24);
    dst_prefix = None;
    proto = None;
    src_ports = None;
    dst_ports = None;
    action = Nf.Firewall.Deny;
  }

let test_firewall_rules () =
  let fw = Nf.Firewall.create ~default:Nf.Firewall.Allow [ deny_ssh; deny_net ] in
  Alcotest.(check bool) "ssh denied" true (Nf.Firewall.classify fw (packet ~dport:22 ()) = Nf.Firewall.Deny);
  Alcotest.(check bool) "http allowed" true (Nf.Firewall.classify fw (packet ~dport:80 ()) = Nf.Firewall.Allow);
  Alcotest.(check bool) "bad net denied" true (Nf.Firewall.classify fw (packet ~src:"192.0.2.77" ()) = Nf.Firewall.Deny);
  (* UDP to port 22 is not matched by the TCP-only rule. *)
  Alcotest.(check bool) "udp 22 allowed" true
    (Nf.Firewall.classify fw (packet ~proto:Net.Packet.Udp ~dport:22 ()) = Nf.Firewall.Allow)

let test_firewall_first_match_wins () =
  let allow_ssh = { deny_ssh with action = Nf.Firewall.Allow } in
  let fw = Nf.Firewall.create ~default:Nf.Firewall.Deny [ allow_ssh; deny_ssh ] in
  Alcotest.(check bool) "first rule wins" true (Nf.Firewall.classify fw (packet ~dport:22 ()) = Nf.Firewall.Allow)

let test_firewall_cache () =
  let fw = Nf.Firewall.create ~cache_capacity:2 ~default:Nf.Firewall.Allow [ deny_ssh ] in
  ignore (Nf.Firewall.classify fw (packet ~sport:1001 ()));
  ignore (Nf.Firewall.classify fw (packet ~sport:1002 ()));
  ignore (Nf.Firewall.classify fw (packet ~sport:1003 ()));
  Alcotest.(check int) "cache bounded" 2 (Nf.Firewall.cached_flows fw);
  (* Cached flows classify identically. *)
  Alcotest.(check bool) "cache hit consistent" true
    (Nf.Firewall.classify fw (packet ~sport:1001 ()) = Nf.Firewall.Allow)

let test_firewall_nf_verdicts () =
  let fw = Nf.Firewall.nf (Nf.Firewall.create ~default:Nf.Firewall.Allow [ deny_ssh ]) in
  Alcotest.(check bool) "drop" true (Nf.Types.is_drop (fw.process (packet ~dport:22 ())));
  Alcotest.(check bool) "forward" false (Nf.Types.is_drop (fw.process (packet ~dport:80 ())))

(* ---------- NAT ---------- *)

let make_nat () =
  Nf.Nat.create ~internal_prefix:(ip "10.0.0.0", 8) ~external_ip:(ip "203.0.113.1") ()

let test_nat_outbound () =
  let nat = make_nat () in
  match Nf.Nat.translate nat (packet ~src:"10.0.0.5" ()) with
  | Some p ->
    Alcotest.(check string) "src rewritten" "203.0.113.1" (Net.Ipv4_addr.to_string p.src_ip);
    Alcotest.(check int) "port from pool" Nf.Nat.port_base p.src_port;
    Alcotest.(check int) "one mapping" 1 (Nf.Nat.active_mappings nat)
  | None -> Alcotest.fail "translation failed"

let test_nat_stable_mapping () =
  let nat = make_nat () in
  let p1 = Option.get (Nf.Nat.translate nat (packet ~sport:1234 ())) in
  let p2 = Option.get (Nf.Nat.translate nat (packet ~sport:1234 ())) in
  Alcotest.(check int) "same flow same port" p1.src_port p2.src_port;
  let q = Option.get (Nf.Nat.translate nat (packet ~sport:9999 ())) in
  Alcotest.(check bool) "different flow different port" true (q.src_port <> p1.src_port)

let test_nat_hairpin () =
  let nat = make_nat () in
  let out = Option.get (Nf.Nat.translate nat (packet ~src:"10.1.2.3" ~sport:5555 ())) in
  (* Build the reply: from the server back to the external endpoint. *)
  let reply =
    Net.Packet.make ~src_ip:(ip "93.184.216.34") ~dst_ip:out.src_ip ~proto:Net.Packet.Tcp ~src_port:80
      ~dst_port:out.src_port "response"
  in
  match Nf.Nat.translate nat reply with
  | Some p ->
    Alcotest.(check string) "dst restored" "10.1.2.3" (Net.Ipv4_addr.to_string p.dst_ip);
    Alcotest.(check int) "port restored" 5555 p.dst_port
  | None -> Alcotest.fail "reverse translation failed"

let test_nat_unknown_inbound_dropped () =
  let nat = make_nat () in
  let stray =
    Net.Packet.make ~src_ip:(ip "93.184.216.34") ~dst_ip:(ip "203.0.113.1") ~proto:Net.Packet.Tcp ~src_port:80
      ~dst_port:4242 "stray"
  in
  Alcotest.(check bool) "no mapping" true (Nf.Nat.translate nat stray = None)

let test_nat_pool_accounting () =
  let nat = make_nat () in
  let before = Nf.Nat.free_ports nat in
  for i = 0 to 9 do
    ignore (Nf.Nat.translate nat (packet ~sport:(20000 + i) ()))
  done;
  Alcotest.(check int) "10 ports consumed" (before - 10) (Nf.Nat.free_ports nat)

(* ---------- Maglev ---------- *)

let test_maglev_balance () =
  let lb = Nf.Maglev.create ~table_size:65537 (Nf.Rulegen.backends ~n:8) in
  let loads = List.map snd (Nf.Maglev.load lb) in
  let mn = List.fold_left min max_int loads and mx = List.fold_left max 0 loads in
  (* Maglev's guarantee: nearly perfect balance. *)
  Alcotest.(check bool)
    (Printf.sprintf "balanced (min %d max %d)" mn mx)
    true
    (float_of_int mx /. float_of_int mn < 1.02);
  Alcotest.(check int) "table full" 65537 (List.fold_left ( + ) 0 loads)

let test_maglev_consistency () =
  let lb = Nf.Maglev.create ~table_size:65537 (Nf.Rulegen.backends ~n:8) in
  let f = Net.Packet.flow (packet ()) in
  Alcotest.(check string) "stable" (Nf.Maglev.backend_for lb f) (Nf.Maglev.backend_for lb f)

let test_maglev_disruption () =
  let lb8 = Nf.Maglev.create ~table_size:65537 (Nf.Rulegen.backends ~n:8) in
  let lb7 = Nf.Maglev.remove lb8 "backend-003" in
  Alcotest.(check int) "one fewer backend" 7 (List.length (Nf.Maglev.backends lb7));
  let d = Nf.Maglev.disruption lb8 lb7 in
  (* Removing 1 of 8 backends must remap its ~1/8 of slots; consistent
     hashing should keep total disruption well under 2/8. *)
  Alcotest.(check bool) (Printf.sprintf "disruption %.3f" d) true (d >= 0.125 -. 0.01 && d < 0.25)

let test_maglev_validation () =
  Alcotest.check_raises "no backends" (Invalid_argument "Maglev.create: no backends") (fun () ->
      ignore (Nf.Maglev.create []));
  Alcotest.check_raises "composite table" (Invalid_argument "Maglev.create: table size must be prime") (fun () ->
      ignore (Nf.Maglev.create ~table_size:65536 [ "a" ]));
  Alcotest.check_raises "duplicates" (Invalid_argument "Maglev.create: duplicate backends") (fun () ->
      ignore (Nf.Maglev.create [ "a"; "a" ]))

(* ---------- LPM ---------- *)

let test_lpm_basic () =
  let t = Nf.Lpm.create () in
  Nf.Lpm.insert t ~prefix:(ip "10.0.0.0") ~len:8 1;
  Nf.Lpm.insert t ~prefix:(ip "10.1.0.0") ~len:16 2;
  Nf.Lpm.insert t ~prefix:(ip "10.1.1.0") ~len:24 3;
  Alcotest.(check (option int)) "/8" (Some 1) (Nf.Lpm.lookup t (ip "10.200.0.1"));
  Alcotest.(check (option int)) "/16" (Some 2) (Nf.Lpm.lookup t (ip "10.1.200.1"));
  Alcotest.(check (option int)) "/24" (Some 3) (Nf.Lpm.lookup t (ip "10.1.1.200"));
  Alcotest.(check (option int)) "no route" None (Nf.Lpm.lookup t (ip "11.0.0.1"))

let test_lpm_long_prefixes () =
  let t = Nf.Lpm.create () in
  Nf.Lpm.insert t ~prefix:(ip "10.1.1.0") ~len:24 3;
  Nf.Lpm.insert t ~prefix:(ip "10.1.1.128") ~len:25 4;
  Nf.Lpm.insert t ~prefix:(ip "10.1.1.200") ~len:32 5;
  Alcotest.(check (option int)) "host route" (Some 5) (Nf.Lpm.lookup t (ip "10.1.1.200"));
  Alcotest.(check (option int)) "/25" (Some 4) (Nf.Lpm.lookup t (ip "10.1.1.129"));
  Alcotest.(check (option int)) "/24 shallow" (Some 3) (Nf.Lpm.lookup t (ip "10.1.1.5"));
  Alcotest.(check int) "one tbl8 block" 1 (Nf.Lpm.tbl8_blocks t)

let test_lpm_insert_order_independent () =
  (* Insert longest first, then shorter: the short prefix must not
     clobber the long one. *)
  let t = Nf.Lpm.create () in
  Nf.Lpm.insert t ~prefix:(ip "10.1.1.200") ~len:32 5;
  Nf.Lpm.insert t ~prefix:(ip "10.1.1.0") ~len:24 3;
  Nf.Lpm.insert t ~prefix:(ip "10.0.0.0") ~len:8 1;
  Alcotest.(check (option int)) "host survives" (Some 5) (Nf.Lpm.lookup t (ip "10.1.1.200"));
  Alcotest.(check (option int)) "/24 survives" (Some 3) (Nf.Lpm.lookup t (ip "10.1.1.7"));
  Alcotest.(check (option int)) "/8 fallback" (Some 1) (Nf.Lpm.lookup t (ip "10.9.9.9"))

let test_lpm_validation () =
  let t = Nf.Lpm.create () in
  Alcotest.check_raises "bad len" (Invalid_argument "Lpm.insert: bad prefix length") (fun () ->
      Nf.Lpm.insert t ~prefix:0 ~len:33 1);
  Alcotest.check_raises "bad hop" (Invalid_argument "Lpm.insert: next hop out of range") (fun () ->
      Nf.Lpm.insert t ~prefix:0 ~len:8 0x8000)

let test_lpm_table_bytes () =
  let t = Nf.Lpm.create () in
  Alcotest.(check int) "tbl24 is 32 MB" (2 * (1 lsl 24)) (Nf.Lpm.table_bytes t);
  Nf.Lpm.insert t ~prefix:(ip "1.2.3.4") ~len:32 7;
  Alcotest.(check int) "block adds 512B" ((2 * (1 lsl 24)) + 512) (Nf.Lpm.table_bytes t)

let prop_lpm_matches_naive =
  let gen =
    QCheck.Gen.(
      let* routes =
        list_size (int_range 1 30)
          (let* len = int_range 8 32 in
           let* addr = int_bound 0xFFFFFF in
           let* hop = int_bound 100 in
           let mask = if len = 0 then 0 else 0xffffffff lxor ((1 lsl (32 - len)) - 1) in
           return ((addr * 251) land mask, len, hop))
      in
      let* queries = list_size (int_range 1 20) (int_bound 0xFFFFFF) in
      return (routes, List.map (fun q -> (q * 65599) land 0xffffffff) queries))
  in
  QCheck.Test.make ~name:"lpm agrees with naive longest-prefix scan" ~count:100 (QCheck.make gen)
    (fun (routes, queries) ->
      let t = Nf.Lpm.create () in
      List.iter (fun (p, l, h) -> Nf.Lpm.insert t ~prefix:p ~len:l h) routes;
      List.for_all
        (fun q ->
          let naive =
            List.fold_left
              (fun best (p, l, h) ->
                if Net.Ipv4_addr.in_prefix q ~prefix:p ~len:l then
                  match best with Some (bl, _) when bl >= l -> best | _ -> Some (l, h)
                else best)
              None routes
          in
          Nf.Lpm.lookup t q = Option.map snd naive)
        queries)

(* ---------- Monitor ---------- *)

let test_monitor_counts () =
  let m = Nf.Monitor.create () in
  let p1 = packet ~sport:1000 () and p2 = packet ~sport:2000 () in
  Nf.Monitor.observe m p1;
  Nf.Monitor.observe m p1;
  Nf.Monitor.observe m p2;
  Alcotest.(check int) "two flows" 2 (Nf.Monitor.flow_count m);
  Alcotest.(check int) "three packets" 3 (Nf.Monitor.packets_seen m);
  Alcotest.(check int) "flow 1 count" 2 (Nf.Monitor.count_of m (Net.Packet.flow p1));
  match Nf.Monitor.top m 1 with
  | [ (f, 2) ] -> Alcotest.(check bool) "top flow" true (Net.Five_tuple.equal f (Net.Packet.flow p1))
  | _ -> Alcotest.fail "unexpected top"

(* ---------- Registry ---------- *)

let test_registry_builds_and_processes () =
  let trace = Trace.Tracegen.ictf_like ~n_flows:50 ~seed:9 ~packets:100 () in
  List.iter
    (fun (spec : Nf.Registry.spec) ->
      let nf = spec.build ~scale:0.01 () in
      let forwarded = ref 0 and dropped = ref 0 in
      Seq.iter
        (fun p -> match nf.Nf.Types.process p with Nf.Types.Forward _ -> incr forwarded | Nf.Types.Drop _ -> incr dropped)
        (Trace.Tracegen.packets trace);
      Alcotest.(check int) (spec.short ^ " saw all packets") 100 (!forwarded + !dropped))
    Nf.Registry.all;
  Alcotest.(check int) "eight NFs" 8 (List.length Nf.Registry.all)

let test_registry_find () =
  Alcotest.(check string) "find LPM" "LPM" (Nf.Registry.find "LPM").short;
  Alcotest.check_raises "unknown"
    (Invalid_argument
       "Nf.Registry.find: unknown NF \"XXX\" (valid short names: FW, DPI, NAT, LB, LPM, Mon, CKF, SYNP)")
    (fun () -> ignore (Nf.Registry.find "XXX"))

let suite =
  [
    Alcotest.test_case "aho-corasick classic" `Quick test_ac_basic;
    Alcotest.test_case "aho-corasick overlapping" `Quick test_ac_overlapping;
    Alcotest.test_case "aho-corasick binary" `Quick test_ac_binary_patterns;
    Alcotest.test_case "aho-corasick rejects empty" `Quick test_ac_rejects_empty;
    Alcotest.test_case "aho-corasick failure links" `Quick test_ac_substring_of_pattern;
    QCheck_alcotest.to_alcotest prop_ac_matches_naive;
    Alcotest.test_case "firewall rule matching" `Quick test_firewall_rules;
    Alcotest.test_case "firewall first match wins" `Quick test_firewall_first_match_wins;
    Alcotest.test_case "firewall cache bound" `Quick test_firewall_cache;
    Alcotest.test_case "firewall verdicts" `Quick test_firewall_nf_verdicts;
    Alcotest.test_case "nat outbound" `Quick test_nat_outbound;
    Alcotest.test_case "nat stable mapping" `Quick test_nat_stable_mapping;
    Alcotest.test_case "nat reverse path" `Quick test_nat_hairpin;
    Alcotest.test_case "nat drops unknown inbound" `Quick test_nat_unknown_inbound_dropped;
    Alcotest.test_case "nat port accounting" `Quick test_nat_pool_accounting;
    Alcotest.test_case "maglev balance" `Quick test_maglev_balance;
    Alcotest.test_case "maglev consistency" `Quick test_maglev_consistency;
    Alcotest.test_case "maglev disruption on removal" `Quick test_maglev_disruption;
    Alcotest.test_case "maglev validation" `Quick test_maglev_validation;
    Alcotest.test_case "lpm basic" `Quick test_lpm_basic;
    Alcotest.test_case "lpm long prefixes" `Quick test_lpm_long_prefixes;
    Alcotest.test_case "lpm insert order independent" `Quick test_lpm_insert_order_independent;
    Alcotest.test_case "lpm validation" `Quick test_lpm_validation;
    Alcotest.test_case "lpm table bytes" `Quick test_lpm_table_bytes;
    QCheck_alcotest.to_alcotest prop_lpm_matches_naive;
    Alcotest.test_case "monitor counts" `Quick test_monitor_counts;
    Alcotest.test_case "registry builds all six" `Quick test_registry_builds_and_processes;
    Alcotest.test_case "registry find" `Quick test_registry_find;
  ]

let test_ac_compiled_equivalence () =
  let ac = Nf.Aho_corasick.build [ "he"; "she"; "his"; "hers" ] in
  let dfa = Nf.Aho_corasick.compile ac in
  Alcotest.(check int) "all states dense" (Nf.Aho_corasick.state_count ac) (Nf.Aho_corasick.dense_state_count dfa);
  Alcotest.(check int) "same result" (Nf.Aho_corasick.scan ac "ushers") (Nf.Aho_corasick.scan dfa "ushers");
  (* Partial compilation: only some states dense. *)
  let partial = Nf.Aho_corasick.compile ~dense_states:3 ac in
  Alcotest.(check int) "partial" 3 (Nf.Aho_corasick.dense_state_count partial);
  Alcotest.(check int) "partial same result" 3 (Nf.Aho_corasick.scan partial "ushers")

let prop_ac_compiled_matches_sparse =
  let gen =
    QCheck.Gen.(
      let* pats = list_size (int_range 1 6) (string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_range 1 5)) in
      let* text = string_size ~gen:(oneofl [ 'a'; 'b'; 'c'; 'd' ]) (int_range 0 120) in
      let* k = int_range 0 40 in
      return (pats, text, k))
  in
  QCheck.Test.make ~name:"compiled DFA scans identically at any density" ~count:300 (QCheck.make gen)
    (fun (pats, text, k) ->
      let pats = List.sort_uniq compare pats in
      let ac = Nf.Aho_corasick.build pats in
      let dfa = Nf.Aho_corasick.compile ~dense_states:k ac in
      Nf.Aho_corasick.scan ac text = Nf.Aho_corasick.scan dfa text)

let suite =
  suite
  @ [
      Alcotest.test_case "aho-corasick compiled DFA" `Quick test_ac_compiled_equivalence;
      QCheck_alcotest.to_alcotest prop_ac_compiled_matches_sparse;
    ]
