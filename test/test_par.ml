(* lib/par: the determinism contract under real parallelism.

   The load-bearing checks are the parallel-vs-sequential digests: the
   same sharded workload fanned across 2 (or 4) domains must produce
   byte-identical reports to the single-domain run, for all three
   shard-able workloads (fleet scenarios, chaos storms, oracle
   campaigns) on several seeds.  Around those sit the contract edges:
   injective seed derivation (qcheck), shard-order merging under an
   adversarial slow-shard stub, exception propagation, and the
   registry-merge semantics the CLI's --metrics path relies on. *)

let seeds = [ 11; 42; 1337 ]

(* ---------------- Seed derivation ---------------- *)

let test_seed_contract () =
  Alcotest.check_raises "negative shard" (Invalid_argument "Par.Seed.derive: shard must be >= 0") (fun () ->
      ignore (Par.Seed.derive ~seed:1 ~shard:(-1)));
  let many = Par.Seed.derive_many ~seed:42 ~shards:16 in
  Alcotest.(check int) "derive_many length" 16 (Array.length many);
  Array.iteri
    (fun shard s -> Alcotest.(check int) "derive_many agrees with derive" (Par.Seed.derive ~seed:42 ~shard) s)
    many;
  (* Derived seeds stay in the RNG's non-negative 62-bit domain. *)
  Array.iter (fun s -> Alcotest.(check bool) "non-negative" true (s >= 0)) many

let prop_seed_injective =
  QCheck.Test.make ~name:"par: shard-seed derivation is injective per base seed" ~count:500
    (QCheck.triple (QCheck.int_bound max_int) (QCheck.int_bound 100_000) (QCheck.int_bound 100_000))
    (fun (seed, a, b) ->
      a = b || Par.Seed.derive ~seed ~shard:a <> Par.Seed.derive ~seed ~shard:b)

let prop_seed_spreads_across_seeds =
  QCheck.Test.make ~name:"par: distinct base seeds give distinct shard-0 streams" ~count:300
    (QCheck.pair (QCheck.int_bound (1 lsl 40)) (QCheck.int_bound (1 lsl 40)))
    (fun (s1, s2) -> s1 = s2 || Par.Seed.derive ~seed:s1 ~shard:0 <> Par.Seed.derive ~seed:s2 ~shard:0)

(* ---------------- Batch slicing ---------------- *)

let test_batch_slices () =
  let slices batch len =
    let acc = ref [] in
    Par.Batch.iter_slices ~batch ~len (fun ~pos ~len -> acc := (pos, len) :: !acc);
    List.rev !acc
  in
  Alcotest.(check (list (pair int int))) "exact multiple" [ (0, 2); (2, 2) ] (slices 2 4);
  Alcotest.(check (list (pair int int))) "ragged tail" [ (0, 3); (3, 3); (6, 1) ] (slices 3 7);
  Alcotest.(check (list (pair int int))) "empty" [] (slices 4 0);
  Alcotest.(check (list (pair int int))) "oversized batch" [ (0, 3) ] (slices 100 3);
  Alcotest.check_raises "batch < 1" (Invalid_argument "Par.Batch.iter_slices: batch must be >= 1") (fun () ->
      Par.Batch.iter_slices ~batch:0 ~len:3 (fun ~pos:_ ~len:_ -> ()));
  Alcotest.check_raises "negative len" (Invalid_argument "Par.Batch.iter_slices: len must be >= 0") (fun () ->
      Par.Batch.iter_slices ~batch:1 ~len:(-1) (fun ~pos:_ ~len:_ -> ()))

let test_digest_boundaries () =
  (* The strings digest must see element boundaries, not just the
     concatenation — shard reports ["ab";"c"] and ["a";"bc"] differ. *)
  Alcotest.(check bool) "boundary-sensitive" false
    (Par.Digest.strings [ "ab"; "c" ] = Par.Digest.strings [ "a"; "bc" ]);
  Alcotest.(check int) "stable" (Par.Digest.string "hello") (Par.Digest.string "hello")

(* ---------------- Engine ---------------- *)

let test_engine_validation () =
  Alcotest.check_raises "domains = 0" (Invalid_argument "Par.Engine.map: domains must be >= 1") (fun () ->
      ignore (Par.Engine.map ~domains:0 ~shards:1 (fun ~shard -> shard)));
  Alcotest.check_raises "shards < 0" (Invalid_argument "Par.Engine.map: shards must be >= 0") (fun () ->
      ignore (Par.Engine.map ~domains:1 ~shards:(-1) (fun ~shard -> shard)));
  Alcotest.(check (array int)) "zero shards" [||] (Par.Engine.map ~domains:4 ~shards:0 (fun ~shard -> shard))

(* Busy-wait long enough that even shards finish well after odd ones on
   any realistic scheduler; results must still come back in shard order,
   never completion order. *)
let spin n =
  let x = ref 0 in
  for i = 1 to n do
    x := Sys.opaque_identity (!x + i)
  done;
  ignore (Sys.opaque_identity !x)

let test_merge_order_adversarial () =
  let r =
    Par.Engine.map ~domains:4 ~shards:8 (fun ~shard ->
        if shard mod 2 = 0 then spin 2_000_000 else spin 100;
        shard)
  in
  Alcotest.(check (array int)) "shard order, not completion order" [| 0; 1; 2; 3; 4; 5; 6; 7 |] r

let test_engine_exception_propagation () =
  (* Shards 3 and 5 fail; the lowest-index failure is the one re-raised. *)
  match
    Par.Engine.map ~domains:4 ~shards:8 (fun ~shard ->
        if shard = 3 then failwith "shard-3" else if shard = 5 then failwith "shard-5" else shard)
  with
  | _ -> Alcotest.fail "expected a shard failure to propagate"
  | exception Failure msg -> Alcotest.(check string) "lowest failing shard wins" "shard-3" msg

let test_map_seeded () =
  let r = Par.Engine.map_seeded ~domains:2 ~seed:42 ~shards:6 (fun ~shard ~seed -> (shard, seed)) in
  Array.iteri
    (fun i (shard, seed) ->
      Alcotest.(check int) "shard index" i shard;
      Alcotest.(check int) "derived seed" (Par.Seed.derive ~seed:42 ~shard:i) seed)
    r

(* ---------------- Registry merging ---------------- *)

let test_metrics_merge () =
  let open Obs.Metrics in
  let a = create_registry () and b = create_registry () and into = create_registry () in
  add (counter a "reqs") 3;
  add (counter b "reqs") 4;
  add (counter b "errs") 1;
  let buckets = [| 1.; 2. |] in
  observe (histogram ~buckets a "lat") 0.5;
  observe (histogram ~buckets b "lat") 1.5;
  merge_into ~into a;
  merge_into ~into b;
  Alcotest.(check (list (pair string int))) "counters sum" [ ("errs", 1); ("reqs", 7) ] (counters into);
  let h = histogram ~buckets into "lat" in
  Alcotest.(check int) "hist count" 2 (hist_count h);
  Alcotest.(check (float 1e-9)) "hist sum" 2.0 (hist_sum h);
  (* Merge order must not matter for the rendered snapshot. *)
  let into2 = create_registry () in
  merge_into ~into:into2 b;
  merge_into ~into:into2 a;
  Alcotest.(check string) "merge commutes" (prometheus into) (prometheus into2);
  (* Ladder mismatches are a bug in the caller, not silently resized. *)
  let c = create_registry () in
  ignore (histogram ~buckets:[| 5.; 10. |] c "lat");
  match merge_into ~into c with
  | () -> Alcotest.fail "mismatched bucket ladders must raise"
  | exception Invalid_argument _ -> ()

(* ---------------- Parallel-vs-sequential digests ---------------- *)

let fleet_config seed =
  {
    Fleet.Scenario.default_config with
    Fleet.Scenario.seed;
    n_nics = 6;
    n_tenants = 12;
    rounds = 2;
    packets_per_round = 150;
  }

let test_fleet_digest () =
  List.iter
    (fun seed ->
      let digest domains =
        Fleet.Scenario.run_many ~domains ~shards:3 (fleet_config seed)
        |> Array.map (fun (r, _) -> Fleet.Scenario.summary r)
        |> Array.to_list |> Par.Digest.strings
      in
      Alcotest.(check int)
        (Printf.sprintf "fleet seed %d: 2 domains == sequential" seed)
        (digest 1) (digest 2))
    seeds

let chaos_config seed =
  {
    Fleet.Chaos.default_config with
    Fleet.Chaos.seed;
    n_nics = 4;
    n_tenants = 8;
    rounds = 2;
    packets_per_round = 100;
  }

let test_chaos_digest () =
  List.iter
    (fun seed ->
      let digest domains =
        Fleet.Chaos.run_many ~domains ~shards:2 (chaos_config seed)
        |> Array.map (fun (r, _) -> Fleet.Chaos.summary r)
        |> Array.to_list |> Par.Digest.strings
      in
      Alcotest.(check int)
        (Printf.sprintf "chaos seed %d: 2 domains == sequential" seed)
        (digest 1) (digest 2))
    seeds

let test_oracle_digest_100k () =
  (* 4 shards x 25k ops = a 100k-op campaign per fan-out.  The summary
     string covers executed counts, per-class tallies and every recorded
     violation, so digest equality is byte-identical reporting. *)
  let mode = match Oracle.Campaign.mode_of_id "se-s" with Some m -> m | None -> assert false in
  List.iter
    (fun seed ->
      let digest domains =
        Oracle.Campaign.run_sharded ~domains ~mode ~ops:25_000 ~seed ~shards:4 ()
        |> Array.map Oracle.Campaign.to_string
        |> Array.to_list |> Par.Digest.strings
      in
      Alcotest.(check int)
        (Printf.sprintf "oracle seed %d: 4 domains == sequential" seed)
        (digest 1) (digest 4))
    seeds

let test_oracle_replay_paths_agree () =
  (* The batched array interpreter is the list interpreter, sliced. *)
  let mode = match Oracle.Campaign.mode_of_id "se-s" with Some m -> m | None -> assert false in
  let slots = Oracle.Campaign.default_slots in
  let ops = Oracle.Campaign.gen_ops ~slots ~ops:3_000 ~seed:7 () in
  let a = Oracle.Campaign.replay ~mode ops in
  let b = Oracle.Campaign.replay_array ~mode (Array.of_list ops) in
  Alcotest.(check string) "replay == replay_array" (Oracle.Campaign.to_string a) (Oracle.Campaign.to_string b);
  let ga = Oracle.Campaign.gen_ops_array ~slots ~ops:3_000 ~seed:7 () in
  Alcotest.(check bool) "gen_ops_array == gen_ops" true (Array.to_list ga = ops)

let suite =
  [
    Alcotest.test_case "seed derivation contract" `Quick test_seed_contract;
    QCheck_alcotest.to_alcotest prop_seed_injective;
    QCheck_alcotest.to_alcotest prop_seed_spreads_across_seeds;
    Alcotest.test_case "batch slicing" `Quick test_batch_slices;
    Alcotest.test_case "digest boundary sensitivity" `Quick test_digest_boundaries;
    Alcotest.test_case "engine argument validation" `Quick test_engine_validation;
    Alcotest.test_case "merge order under adversarial slow shards" `Quick test_merge_order_adversarial;
    Alcotest.test_case "exception propagation picks lowest shard" `Quick test_engine_exception_propagation;
    Alcotest.test_case "map_seeded derives per-shard seeds" `Quick test_map_seeded;
    Alcotest.test_case "registry merge semantics" `Quick test_metrics_merge;
    Alcotest.test_case "fleet: parallel == sequential (3 seeds)" `Quick test_fleet_digest;
    Alcotest.test_case "chaos: parallel == sequential (3 seeds)" `Quick test_chaos_digest;
    Alcotest.test_case "oracle 100k ops: parallel == sequential (3 seeds)" `Slow test_oracle_digest_100k;
    Alcotest.test_case "oracle replay list/array paths agree" `Quick test_oracle_replay_paths_agree;
  ]
