(* Fault-storm scenarios and the self-healing control plane: the paper's
   invariants must survive chaos on every seed, the whole run must be a
   deterministic function of the seed, and the supervisor's breaker must
   demonstrably trip, drain, and readmit under cranked fault rates. *)

let quick_config seed =
  { Fleet.Chaos.default_config with Fleet.Chaos.seed; rounds = 4; packets_per_round = 200 }

(* ---------- invariants under the storm, across seeds ---------- *)

let check_storm seed =
  let tag msg = Printf.sprintf "seed %d: %s" seed msg in
  let report = Fleet.Chaos.run (quick_config seed) in
  Alcotest.(check int) (tag "all tenants attested at boot") 24 report.Fleet.Chaos.initial_attested;
  Alcotest.(check bool) (tag "the storm actually fired") true (report.Fleet.Chaos.total_faults > 0);
  (* The acceptance invariants: no unattested function ever runs, every
     verified teardown scrubbed, every recoverable tenant re-homed. *)
  Alcotest.(check int) (tag "unattested_running stays 0") 0 report.Fleet.Chaos.unattested_running;
  Alcotest.(check int) (tag "0 at every quiesce point") 0 report.Fleet.Chaos.max_unattested_observed;
  Alcotest.(check int) (tag "zero scrub failures") 0 report.Fleet.Chaos.scrub_failures;
  Alcotest.(check int) (tag "no tenant left unplaced") 0 report.Fleet.Chaos.final_unplaced;
  Alcotest.(check int) (tag "all tenants re-attested at end") 24 report.Fleet.Chaos.final_attested;
  Alcotest.(check bool) (tag "goodput in (0,1]") true
    (report.Fleet.Chaos.goodput > 0. && report.Fleet.Chaos.goodput <= 1.)

let test_storm_seed_42 () = check_storm 42
let test_storm_seed_1337 () = check_storm 1337
let test_storm_seed_20240 () = check_storm 20240

(* ---------- determinism: seed -> byte-identical artifacts ---------- *)

let test_deterministic_replay () =
  let run () =
    let report, orch = Fleet.Chaos.run_with (quick_config 42) in
    ( Fleet.Chaos.summary report,
      report.Fleet.Chaos.injection_log,
      report.Fleet.Chaos.recovery_ms,
      Fleet.Telemetry.to_json (Fleet.Orchestrator.telemetry orch) )
  in
  let s1, l1, r1, j1 = run () in
  let s2, l2, r2, j2 = run () in
  Alcotest.(check string) "summary byte-identical" s1 s2;
  Alcotest.(check string) "injection log byte-identical" l1 l2;
  Alcotest.(check bool) "recovery telemetry identical" true (r1 = r2);
  Alcotest.(check string) "telemetry JSON byte-identical" j1 j2;
  Alcotest.(check bool) "the log is not empty" true (String.length l1 > 0);
  let _, l3, _, _ =
    let report, orch = Fleet.Chaos.run_with (quick_config 43) in
    ( Fleet.Chaos.summary report,
      report.Fleet.Chaos.injection_log,
      report.Fleet.Chaos.recovery_ms,
      Fleet.Telemetry.to_json (Fleet.Orchestrator.telemetry orch) )
  in
  Alcotest.(check bool) "different seed, different log" false (String.equal l1 l3)

(* ---------- the breaker, at cranked rates ---------- *)

(* Arm a saturated storm on NIC 0 only: its health probes fail every
   tick (bus heartbeat times out, DMA loopback errors), so the breaker
   must trip without any traffic, drain the NIC with verified scrubs,
   re-place its tenants on the clean NICs, and readmit it on probation
   after the window — with the invariants holding at every step. *)
let test_quarantine_drain_readmit () =
  let orch =
    Fleet.Orchestrator.create
      { Fleet.Orchestrator.seed = 9; n_nics = 3; n_tenants = 6; policy = Fleet.Policy.First_fit; bytes_per_mb = 1024 }
  in
  let nodes = Fleet.Orchestrator.nodes orch in
  Alcotest.(check int) "all placed at boot" 6 (Fleet.Orchestrator.attested_count orch);
  Alcotest.(check bool) "NIC 0 hosts tenants at boot" true (Fleet.Node.nf_count nodes.(0) > 0);
  Nicsim.Machine.set_faults
    (Snic.Api.machine (Fleet.Node.api nodes.(0)))
    (Faults.plan ~seed:9 (Faults.storm ~intensity:1e6 ()));
  let sup = Fleet.Supervisor.create ~seed:9 orch Fleet.Supervisor.default_config in
  let tripped = ref false and probation = ref false and drained = ref false in
  for round = 0 to 11 do
    Fleet.Supervisor.tick sup ~round;
    (match Fleet.Supervisor.breaker sup ~nic:0 with
    | Fleet.Supervisor.Open _ ->
      tripped := true;
      Alcotest.(check bool) "quarantined while open" true (Fleet.Node.quarantined nodes.(0));
      if Fleet.Node.nf_count nodes.(0) = 0 then drained := true
    | Fleet.Supervisor.Probation _ ->
      probation := true;
      Alcotest.(check bool) "readmitted off quarantine" false (Fleet.Node.quarantined nodes.(0))
    | Fleet.Supervisor.Closed -> ());
    (* The security invariant holds at every quiesce point; tenants may
       be transiently stranded mid-heal (the sick NIC eats their retries
       until it is quarantined) but never run unattested. *)
    Alcotest.(check int)
      (Printf.sprintf "round %d: unattested stays 0" round)
      0 (Fleet.Orchestrator.unattested_running orch)
  done;
  Alcotest.(check int) "nobody stranded once healed" 0 (Fleet.Orchestrator.unplaced_count orch);
  let tel = Fleet.Orchestrator.telemetry orch in
  Alcotest.(check bool) "breaker tripped" true !tripped;
  Alcotest.(check bool) "NIC 0 drained under quarantine" true !drained;
  Alcotest.(check bool) "breaker readmitted on probation" true !probation;
  Alcotest.(check bool) "quarantines counted" true (Fleet.Telemetry.quarantines tel >= 1);
  Alcotest.(check bool) "readmissions counted" true (Fleet.Telemetry.readmissions tel >= 1);
  Alcotest.(check bool) "probes ran and failed" true (Fleet.Telemetry.probe_failures tel >= 1);
  Alcotest.(check int) "every drain scrub verified" 0 (Fleet.Supervisor.scrub_failures sup);
  Alcotest.(check bool) "displacements produced recovery samples" true
    (List.length (Fleet.Supervisor.recovery_samples_ms sup) > 0);
  List.iter
    (fun ms -> Alcotest.(check bool) "recovery latency positive" true (ms > 0.))
    (Fleet.Supervisor.recovery_samples_ms sup);
  Alcotest.(check int) "all tenants re-attested" 6 (Fleet.Orchestrator.attested_count orch)

(* Retry/backoff: with the staging DMA failing every time on every NIC,
   a displaced tenant exhausts its bounded retries (clock advancing each
   backoff) and comes home only once the fault clears. *)
let test_retry_backoff_exhaustion () =
  let orch =
    Fleet.Orchestrator.create
      { Fleet.Orchestrator.seed = 17; n_nics = 2; n_tenants = 2; policy = Fleet.Policy.First_fit; bytes_per_mb = 1024 }
  in
  let nodes = Fleet.Orchestrator.nodes orch in
  let sup = Fleet.Supervisor.create ~seed:17 orch Fleet.Supervisor.default_config in
  let tenant = (Fleet.Orchestrator.tenants orch).(0) in
  Fleet.Supervisor.note_evict sup tenant;
  let plans =
    Array.map
      (fun node ->
        let plan = Faults.plan ~seed:17 { Faults.none with Faults.dma_error = 1.0 } in
        Nicsim.Machine.set_faults (Snic.Api.machine (Fleet.Node.api node)) plan;
        plan)
      nodes
  in
  let clock0 = Fleet.Supervisor.clock sup in
  (match Fleet.Supervisor.place_with_retry sup tenant with
  | Error (Fleet.Orchestrator.Create_failed (Snic.Api.Stage_fault _)) -> ()
  | Error e -> Alcotest.fail (Fleet.Orchestrator.place_error_to_string e)
  | Ok () -> Alcotest.fail "placement over a dead DMA engine must not succeed");
  let tel = Fleet.Orchestrator.telemetry orch in
  Alcotest.(check int) "retried up to the bound" 5 (Fleet.Telemetry.retries tel);
  Alcotest.(check bool) "backoff advanced the clock" true (Fleet.Supervisor.clock sup > clock0);
  Alcotest.(check bool) "stage faults were logged" true
    (Array.exists (fun p -> Faults.count p Faults.Dma_error > 0) plans);
  (* Storm passes: the same tenant now places first try and yields a
     recovery-latency sample covering the whole outage. *)
  Array.iter
    (fun node ->
      Nicsim.Machine.set_faults (Snic.Api.machine (Fleet.Node.api node)) (Faults.plan ~seed:17 Faults.none))
    nodes;
  (match Fleet.Supervisor.place_with_retry sup tenant with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Fleet.Orchestrator.place_error_to_string e));
  Alcotest.(check int) "re-attested after the storm" 2 (Fleet.Orchestrator.attested_count orch);
  Alcotest.(check int) "one recovery sample" 1 (List.length (Fleet.Supervisor.recovery_samples_ms sup))

(* No_capacity is an alarm, not a retry: kill every NIC and ask. *)
let test_no_capacity_alarms () =
  let orch =
    Fleet.Orchestrator.create
      { Fleet.Orchestrator.seed = 23; n_nics = 2; n_tenants = 2; policy = Fleet.Policy.First_fit; bytes_per_mb = 1024 }
  in
  let sup = Fleet.Supervisor.create ~seed:23 orch Fleet.Supervisor.default_config in
  Array.iter Fleet.Node.kill (Fleet.Orchestrator.nodes orch);
  let tenant = (Fleet.Orchestrator.tenants orch).(0) in
  Fleet.Orchestrator.evict orch tenant;
  (match Fleet.Supervisor.place_with_retry sup tenant with
  | Error Fleet.Orchestrator.No_capacity -> ()
  | Error e -> Alcotest.fail (Fleet.Orchestrator.place_error_to_string e)
  | Ok () -> Alcotest.fail "placement on a dead rack must not succeed");
  Alcotest.(check int) "alarm raised" 1 (Fleet.Supervisor.alarms sup);
  Alcotest.(check int) "no retries burned on a capacity alarm" 0
    (Fleet.Telemetry.retries (Fleet.Orchestrator.telemetry orch))

let suite =
  [
    Alcotest.test_case "storm invariants (seed 42)" `Slow test_storm_seed_42;
    Alcotest.test_case "storm invariants (seed 1337)" `Slow test_storm_seed_1337;
    Alcotest.test_case "storm invariants (seed 20240)" `Slow test_storm_seed_20240;
    Alcotest.test_case "deterministic replay" `Slow test_deterministic_replay;
    Alcotest.test_case "quarantine, drain, readmit" `Slow test_quarantine_drain_readmit;
    Alcotest.test_case "bounded retry with backoff" `Quick test_retry_backoff_exhaustion;
    Alcotest.test_case "no-capacity alarms immediately" `Quick test_no_capacity_alarms;
  ]
