(* The observability layer: the null sink must stay allocation-free on
   device hot paths, recorded spans must balance per track even under a
   chaos storm, the Chrome exporter must emit valid JSON whose counts
   agree with the registry, and identical seeds must export identical
   bytes. *)

open Nicsim

let counter_value reg name = Option.value ~default:0 (List.assoc_opt name (Obs.Metrics.counters reg))

let sink_counter sink name =
  match Obs.registry sink with None -> 0 | Some reg -> counter_value reg name

(* ---------- metrics: registration and quantiles ---------- *)

let test_registry_idempotent () =
  let reg = Obs.Metrics.create_registry () in
  let a = Obs.Metrics.counter reg "x_total" in
  let b = Obs.Metrics.counter reg "x_total" in
  Obs.Metrics.incr a;
  Obs.Metrics.incr b;
  Alcotest.(check int) "same counter behind one name" 2 (Obs.Metrics.value a);
  Alcotest.check_raises "name cannot change kind"
    (Invalid_argument "Metrics.histogram: x_total is registered as a counter") (fun () ->
      ignore (Obs.Metrics.histogram reg "x_total"))

let test_sample_quantiles () =
  let q = Obs.Metrics.quantile_of_samples in
  Alcotest.(check (option (float 1e-9))) "empty has no quantile" None (q [] 0.99);
  Alcotest.(check (option (float 1e-9))) "one sample has no p99" None (q [ 7.5 ] 0.99);
  Alcotest.(check (option (float 1e-9))) "median interpolates" (Some 2.) (q [ 3.; 1. ] 0.5);
  Alcotest.(check (option (float 1e-9))) "p100 is the max" (Some 9.) (q [ 9.; 1.; 4. ] 1.0);
  Alcotest.(check (option (float 1e-9))) "p0 is the min" (Some 1.) (q [ 9.; 1.; 4. ] 0.0)

let test_histogram_quantiles () =
  let reg = Obs.Metrics.create_registry () in
  let h = Obs.Metrics.histogram ~buckets:[| 10.; 20.; 40. |] reg "lat" in
  Alcotest.(check (option (float 1e-9))) "empty histogram has no quantile" None (Obs.Metrics.quantile h 0.5);
  Obs.Metrics.observe h 5.;
  Alcotest.(check (option (float 1e-9))) "one observation has no quantile" None (Obs.Metrics.quantile h 0.5);
  Obs.Metrics.observe h 15.;
  Obs.Metrics.observe h 15.;
  Obs.Metrics.observe h 35.;
  (match Obs.Metrics.quantile h 0.99 with
  | None -> Alcotest.fail "expected a p99"
  | Some v -> Alcotest.(check bool) "p99 lands in the last occupied bucket" true (v > 20. && v <= 40.));
  Alcotest.(check int) "count" 4 (Obs.Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 70. (Obs.Metrics.hist_sum h)

(* ---------- the null sink is (nearly) free on the TLB hit path ---------- *)

let test_null_sink_tlb_hit_allocation () =
  let tlb = Tlb.create () in
  Tlb.install tlb { Tlb.vbase = 0x10000; pbase = 0x800000; size = 0x10000; writable = true };
  (* Warm up so any one-time allocation is out of the measurement. *)
  for _ = 1 to 100 do
    ignore (Tlb.translate tlb ~vaddr:0x10123 ~access:Tlb.Read)
  done;
  let iters = 10_000 in
  let before = Gc.minor_words () in
  for _ = 1 to iters do
    ignore (Tlb.translate tlb ~vaddr:0x10123 ~access:Tlb.Read)
  done;
  let words_per_hit = (Gc.minor_words () -. before) /. float_of_int iters in
  (* The hit returns [Some paddr] (a 2-word box); the instrumentation
     itself must add nothing — no closures, no event records. *)
  Alcotest.(check bool)
    (Printf.sprintf "null-sink hit path allocates only the option box (%.2f words/hit)" words_per_hit)
    true (words_per_hit <= 3.0)

let test_counters_move_when_recording () =
  let sink = Obs.create () in
  let tlb = Tlb.create () in
  Tlb.set_sink tlb sink ~track:7;
  Tlb.install tlb { Tlb.vbase = 0x10000; pbase = 0x800000; size = 0x10000; writable = true };
  ignore (Tlb.translate tlb ~vaddr:0x10000 ~access:Tlb.Read);
  ignore (Tlb.translate tlb ~vaddr:0x10004 ~access:Tlb.Read);
  ignore (Tlb.translate tlb ~vaddr:0xdead0000 ~access:Tlb.Read);
  Alcotest.(check int) "hits counted" 2 (sink_counter sink "snic_tlb_hit_total");
  Alcotest.(check int) "miss counted" 1 (sink_counter sink "snic_tlb_miss_total");
  Alcotest.(check int) "miss traced as an instant" 1 (List.length (Obs.events sink))

(* ---------- span nesting balances under the storm ---------- *)

let storm_trace seed =
  let sink = Obs.create () in
  let config = { Fleet.Chaos.default_config with Fleet.Chaos.seed; rounds = 4; packets_per_round = 200 } in
  let _report, orch = Fleet.Chaos.run_with ~sink config in
  (sink, orch)

let check_span_balance seed =
  let tag msg = Printf.sprintf "seed %d: %s" seed msg in
  let sink, _orch = storm_trace seed in
  let begun = ref 0 and ended = ref 0 in
  let depth = Hashtbl.create 64 in
  List.iter
    (fun (e : Obs.event) ->
      let key = (e.Obs.pid, e.Obs.track) in
      let d = Option.value ~default:0 (Hashtbl.find_opt depth key) in
      match e.Obs.phase with
      | Obs.Span_begin ->
        incr begun;
        Hashtbl.replace depth key (d + 1)
      | Obs.Span_end ->
        incr ended;
        Alcotest.(check bool) (tag "no end without a begin on its track") true (d > 0);
        Hashtbl.replace depth key (d - 1)
      | Obs.Instant -> ())
    (Obs.events sink);
  Alcotest.(check bool) (tag "the storm produced spans") true (!begun > 0);
  Alcotest.(check int) (tag "begins match ends") !begun !ended;
  Hashtbl.iter (fun (pid, track) d -> Alcotest.(check int) (tag (Printf.sprintf "track (%d,%d) closed" pid track)) 0 d) depth;
  (* The registry's own accounting of the stream agrees with the stream. *)
  Alcotest.(check int) (tag "obs_spans_begun_total agrees") !begun (sink_counter sink "obs_spans_begun_total");
  Alcotest.(check int) (tag "obs_spans_ended_total agrees") !ended (sink_counter sink "obs_spans_ended_total");
  Alcotest.(check int) (tag "span_count agrees") !begun (Obs.span_count sink)

let test_span_balance_42 () = check_span_balance 42
let test_span_balance_1337 () = check_span_balance 1337
let test_span_balance_20240 () = check_span_balance 20240

(* ---------- Chrome JSON round-trips through a minimal parser ---------- *)

(* Just enough JSON to validate the exporter's output structurally — no
   external dependency, and strict: trailing garbage or a malformed
   escape is a parse failure. *)
type json = Jnull | Jbool of bool | Jnum of float | Jstr of string | Jarr of json list | Jobj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some (('"' | '\\' | '/') as c) ->
          Buffer.add_char buf c;
          advance ();
          go ()
        | Some 'n' | Some 't' | Some 'r' | Some 'b' | Some 'f' ->
          Buffer.add_char buf ' ';
          advance ();
          go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated unicode escape";
          pos := !pos + 4;
          Buffer.add_char buf '?';
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Jobj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        Jobj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Jarr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        Jarr (elements [])
      end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function Jobj l -> List.assoc_opt k l | _ -> None

let test_chrome_json_roundtrip () =
  let sink, orch = storm_trace 42 in
  let js = Obs.Chrome.to_json sink in
  let parsed = try parse_json js with Bad_json msg -> Alcotest.fail ("exporter emitted invalid JSON: " ^ msg) in
  let rows =
    match member "traceEvents" parsed with
    | Some (Jarr rows) -> rows
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check (option string)) "displayTimeUnit present" (Some "ns")
    (match member "displayTimeUnit" parsed with Some (Jstr u) -> Some u | _ -> None);
  let count ph = List.length (List.filter (fun row -> member "ph" row = Some (Jstr ph)) rows) in
  let reg = Fleet.Telemetry.registry (Fleet.Orchestrator.telemetry orch) in
  Alcotest.(check int) "B rows = spans begun" (counter_value reg "obs_spans_begun_total") (count "B");
  Alcotest.(check int) "E rows = spans ended" (counter_value reg "obs_spans_ended_total") (count "E");
  Alcotest.(check int) "i rows = instants" (counter_value reg "obs_instants_total") (count "i");
  Alcotest.(check int) "M rows = named processes + tracks"
    (List.length (Obs.process_names sink) + List.length (Obs.track_names sink))
    (count "M");
  List.iter
    (fun row ->
      if member "ph" row <> Some (Jstr "M") then begin
        Alcotest.(check bool) "event row has ts/pid/tid" true
          (member "ts" row <> None && member "pid" row <> None && member "tid" row <> None);
        Alcotest.(check bool) "event row has a name" true
          (match member "name" row with Some (Jstr _) -> true | _ -> false)
      end)
    rows

(* ---------- determinism: same seed, same bytes ---------- *)

let test_trace_deterministic () =
  let sink_a, orch_a = storm_trace 42 in
  let sink_b, orch_b = storm_trace 42 in
  Alcotest.(check string) "Chrome export is byte-identical" (Obs.Chrome.to_json sink_a) (Obs.Chrome.to_json sink_b);
  Alcotest.(check string) "Prometheus export is byte-identical"
    (Fleet.Telemetry.prometheus (Fleet.Orchestrator.telemetry orch_a))
    (Fleet.Telemetry.prometheus (Fleet.Orchestrator.telemetry orch_b))

(* Regression for the hash-order hazard documented at metrics.ml's
   [sorted_metrics]: exports escape into artifacts, so they must be a
   function of the recorded values alone, not of registration order. *)
let test_registry_order_insensitive () =
  let entries = [ "zeta"; "alpha"; "mid"; "aa"; "z" ] in
  let build names =
    let reg = Obs.Metrics.create_registry () in
    List.iter
      (fun name ->
        let c = Obs.Metrics.counter reg ("ctr_" ^ name) ~help:("help " ^ name) in
        Obs.Metrics.add c (String.length name);
        let h = Obs.Metrics.histogram reg ("hist_" ^ name) in
        Obs.Metrics.observe h (float_of_int (String.length name)))
      names;
    reg
  in
  let fwd = build entries in
  let rev = build (List.rev entries) in
  Alcotest.(check string) "prometheus export ignores registration order" (Obs.Metrics.prometheus fwd)
    (Obs.Metrics.prometheus rev);
  Alcotest.(check (list (pair string int)))
    "counters listing ignores registration order" (Obs.Metrics.counters fwd) (Obs.Metrics.counters rev);
  (* And the listing really is sorted, so any future fold-order change
     surfaces as a test failure rather than artifact churn. *)
  let names = List.map fst (Obs.Metrics.counters fwd) in
  Alcotest.(check (list string)) "counters sorted by name" (List.sort String.compare names) names

let suite =
  [
    Alcotest.test_case "registry registration is idempotent" `Quick test_registry_idempotent;
    Alcotest.test_case "metric exports ignore registration order" `Quick test_registry_order_insensitive;
    Alcotest.test_case "sample quantiles: None under 2 samples, interpolated above" `Quick test_sample_quantiles;
    Alcotest.test_case "histogram quantiles: None under 2 observations" `Quick test_histogram_quantiles;
    Alcotest.test_case "null sink adds no allocation on the TLB hit path" `Quick test_null_sink_tlb_hit_allocation;
    Alcotest.test_case "recording sink counts hits, misses, and instants" `Quick test_counters_move_when_recording;
    Alcotest.test_case "spans balance per track under storm (seed 42)" `Quick test_span_balance_42;
    Alcotest.test_case "spans balance per track under storm (seed 1337)" `Quick test_span_balance_1337;
    Alcotest.test_case "spans balance per track under storm (seed 20240)" `Quick test_span_balance_20240;
    Alcotest.test_case "Chrome JSON parses and agrees with the registry" `Quick test_chrome_json_roundtrip;
    Alcotest.test_case "same seed exports byte-identical artifacts" `Quick test_trace_deterministic;
  ]
