let close ?(tol = 0.02) msg expected actual =
  (* Relative tolerance; paper tables are rounded to 3 decimals. *)
  let ok = Float.abs (expected -. actual) <= Float.max (tol *. Float.abs expected) 0.002 in
  Alcotest.(check bool) (Printf.sprintf "%s: expected %.4f, got %.4f" msg expected actual) true ok

(* ---------- Tlb_cost (Table 2 anchors) ---------- *)

let test_tlb_cost_table2_anchors () =
  (* 4-core columns of Table 2. *)
  close "183 entries, 4 cores, area" 0.045 (4. *. Costmodel.Tlb_cost.area_mm2 183);
  close "256 entries, 4 cores, area" 0.060 (4. *. Costmodel.Tlb_cost.area_mm2 256);
  close "512 entries, 4 cores, area" 0.163 (4. *. Costmodel.Tlb_cost.area_mm2 512);
  close "183 entries, 4 cores, power" 0.026 (4. *. Costmodel.Tlb_cost.power_w 183);
  close "512 entries, 4 cores, power" 0.088 (4. *. Costmodel.Tlb_cost.power_w 512);
  (* 48-core column. *)
  close "183 x48 area" 0.538 (48. *. Costmodel.Tlb_cost.area_mm2 183);
  close "512 x48 power" 1.052 (48. *. Costmodel.Tlb_cost.power_w 512)

let test_tlb_cost_table3_anchors () =
  (* Accelerator TLB banks, 16 clusters (Table 3 row 1). *)
  close "DPI 54-entry x16 area" 0.074 (16. *. Costmodel.Tlb_cost.area_mm2 54);
  close "ZIP 70-entry x16 area" 0.091 (16. *. Costmodel.Tlb_cost.area_mm2 70);
  close "RAID 5-entry x16 area" 0.050 (16. *. Costmodel.Tlb_cost.area_mm2 5);
  close "DPI 54-entry x16 power" 0.037 (16. *. Costmodel.Tlb_cost.power_w 54);
  (* Halving cluster count halves the cost (Table 3 rows 2-3). *)
  close "DPI x8" 0.037 (8. *. Costmodel.Tlb_cost.area_mm2 54);
  close "DPI x4" 0.019 (4. *. Costmodel.Tlb_cost.area_mm2 54) ~tol:0.05

let test_tlb_cost_table4_anchors () =
  close "VPP 3-entry x12 area" 0.037 (12. *. Costmodel.Tlb_cost.area_mm2 3);
  close "DMA 2-entry x12 area" 0.037 (12. *. Costmodel.Tlb_cost.area_mm2 2);
  close "VPP x12 power" 0.017 (12. *. Costmodel.Tlb_cost.power_w 3);
  (* McPAT quirk preserved: 2 and 3 entries cost the same. *)
  close "2 = 3 entries" (Costmodel.Tlb_cost.area_mm2 2) (Costmodel.Tlb_cost.area_mm2 3)

let test_tlb_cost_monotone () =
  let rec go prev = function
    | [] -> ()
    | e :: rest ->
      let a = Costmodel.Tlb_cost.area_mm2 e in
      Alcotest.(check bool) (Printf.sprintf "monotone at %d" e) true (a >= prev);
      go a rest
  in
  go 0. [ 1; 2; 4; 8; 16; 32; 64; 128; 183; 256; 384; 512; 1024 ]

let test_tlb_cost_interpolation_sane () =
  (* Between anchors the value is between the anchor values. *)
  let a100 = Costmodel.Tlb_cost.area_mm2 100 in
  Alcotest.(check bool) "100 between 70 and 183" true
    (a100 >= Costmodel.Tlb_cost.area_mm2 70 && a100 <= Costmodel.Tlb_cost.area_mm2 183);
  (* Extrapolation beyond 512 keeps growing superlinearly. *)
  Alcotest.(check bool) "1024 > 2x 512" true
    (Costmodel.Tlb_cost.area_mm2 1024 > 2. *. Costmodel.Tlb_cost.area_mm2 512)

(* ---------- Page packing (Tables 5-7 derivations) ---------- *)

let mb = Costmodel.Page_packing.mb

let test_packing_equal_2mb () =
  let entries r = Costmodel.Page_packing.entries ~page_sizes:Costmodel.Page_packing.equal_2mb r in
  (* Mon (Table 6): 0.85 / 0.05 / 2.48 / 357.15 -> 183 entries. *)
  Alcotest.(check int) "Mon Equal" 183 (entries [ mb 0.85; mb 0.05; mb 2.48; mb 357.15 ]);
  (* FW: 11. *)
  Alcotest.(check int) "FW Equal" 11 (entries [ mb 0.87; mb 0.08; mb 2.50; mb 13.75 ]);
  (* LPM: 37. *)
  Alcotest.(check int) "LPM Equal" 37 (entries [ mb 0.86; mb 0.06; mb 2.51; mb 64.90 ])

let test_packing_flex_high () =
  let entries r = Costmodel.Page_packing.entries ~page_sizes:Costmodel.Page_packing.flex_high r in
  Alcotest.(check int) "FW Flex-high" 11 (entries [ mb 0.87; mb 0.08; mb 2.50; mb 13.75 ]);
  Alcotest.(check int) "DPI Flex-high" 13 (entries [ mb 1.34; mb 0.56; mb 2.59; mb 46.65 ]);
  Alcotest.(check int) "NAT Flex-high" 10 (entries [ mb 0.86; mb 0.05; mb 2.49; mb 40.48 ]);
  Alcotest.(check int) "LB Flex-high" 10 (entries [ mb 0.86; mb 0.05; mb 2.49; mb 10.40 ]);
  Alcotest.(check int) "LPM Flex-high" 7 (entries [ mb 0.86; mb 0.06; mb 2.51; mb 64.90 ]);
  Alcotest.(check int) "Mon Flex-high" 12 (entries [ mb 0.85; mb 0.05; mb 2.48; mb 357.15 ])

let test_packing_flex_low () =
  let entries r = Costmodel.Page_packing.entries ~page_sizes:Costmodel.Page_packing.flex_low r in
  Alcotest.(check int) "DPI Flex-low" 51 (entries [ mb 1.34; mb 0.56; mb 2.59; mb 46.65 ]);
  Alcotest.(check int) "NAT Flex-low" 37 (entries [ mb 0.86; mb 0.05; mb 2.49; mb 40.48 ]);
  Alcotest.(check int) "LB Flex-low" 22 (entries [ mb 0.86; mb 0.05; mb 2.49; mb 10.40 ]);
  Alcotest.(check int) "LPM Flex-low" 23 (entries [ mb 0.86; mb 0.06; mb 2.51; mb 64.90 ]);
  Alcotest.(check int) "Mon Flex-low" 46 (entries [ mb 0.85; mb 0.05; mb 2.48; mb 357.15 ])

let test_packing_waste () =
  (* Flexible small pages waste less memory than 2MB-only. *)
  let regions = [ mb 0.87; mb 0.08; mb 2.50; mb 13.75 ] in
  let w_equal = Costmodel.Page_packing.waste ~page_sizes:Costmodel.Page_packing.equal_2mb regions in
  let w_flex = Costmodel.Page_packing.waste ~page_sizes:Costmodel.Page_packing.flex_low regions in
  Alcotest.(check bool) "flex wastes less" true (w_flex < w_equal);
  Alcotest.(check int) "zero-size region costs nothing" 0
    (Costmodel.Page_packing.entries_for_region ~page_sizes:Costmodel.Page_packing.equal_2mb 0)

let test_packing_validation () =
  Alcotest.check_raises "non-dividing sizes" (Invalid_argument "Page_packing: page sizes must divide each other")
    (fun () -> ignore (Costmodel.Page_packing.entries ~page_sizes:[ 3000; 7000 ] [ 1 ]))

(* ---------- Overhead (the 8.89% / 11.45% headline) ---------- *)

let test_overhead_headline () =
  let b = Costmodel.Overhead.compute Costmodel.Overhead.headline in
  close ~tol:0.03 "area overhead pct" 8.89 b.Costmodel.Overhead.area_overhead_pct;
  close ~tol:0.03 "power overhead pct" 11.45 b.Costmodel.Overhead.power_overhead_pct;
  (* Components match the paper's per-table numbers. *)
  close "core TLB area" 0.163 b.Costmodel.Overhead.core_area;
  close "accel TLB area" 0.215 b.Costmodel.Overhead.accel_area;
  close "io TLB area" 0.074 b.Costmodel.Overhead.io_area

(* ---------- TCO (§5.2) ---------- *)

let test_tco_paper_numbers () =
  close ~tol:0.005 "LiquidIO $/core" 38.97 (Costmodel.Tco.tco_per_core Costmodel.Tco.liquidio);
  close ~tol:0.005 "Host $/core" 163.56 (Costmodel.Tco.tco_per_core Costmodel.Tco.host_xeon);
  let s = Costmodel.Tco.summary () in
  close ~tol:0.005 "S-NIC $/core" 42.53 s.Costmodel.Tco.snic_tco;
  close ~tol:0.01 "advantage reduction" 8.37 s.Costmodel.Tco.advantage_reduction_pct;
  close ~tol:0.01 "preserved" 91.63 s.Costmodel.Tco.preserved_pct

let test_tco_sensitivity () =
  (* More silicon overhead monotonically erodes the advantage. *)
  let a = Costmodel.Tco.summary ~area_overhead_pct:2. ~power_overhead_pct:2. () in
  let b = Costmodel.Tco.summary ~area_overhead_pct:20. ~power_overhead_pct:20. () in
  Alcotest.(check bool) "monotone" true
    (a.Costmodel.Tco.advantage_reduction_pct < b.Costmodel.Tco.advantage_reduction_pct);
  (* Zero overhead: zero reduction. *)
  let z = Costmodel.Tco.summary ~area_overhead_pct:0. ~power_overhead_pct:0. () in
  close "zero overhead" 0.0 z.Costmodel.Tco.advantage_reduction_pct

let suite =
  [
    Alcotest.test_case "tlb cost: table 2 anchors" `Quick test_tlb_cost_table2_anchors;
    Alcotest.test_case "tlb cost: table 3 anchors" `Quick test_tlb_cost_table3_anchors;
    Alcotest.test_case "tlb cost: table 4 anchors" `Quick test_tlb_cost_table4_anchors;
    Alcotest.test_case "tlb cost: monotone" `Quick test_tlb_cost_monotone;
    Alcotest.test_case "tlb cost: interpolation" `Quick test_tlb_cost_interpolation_sane;
    Alcotest.test_case "packing: Equal 2MB" `Quick test_packing_equal_2mb;
    Alcotest.test_case "packing: Flex-high" `Quick test_packing_flex_high;
    Alcotest.test_case "packing: Flex-low" `Quick test_packing_flex_low;
    Alcotest.test_case "packing: waste ordering" `Quick test_packing_waste;
    Alcotest.test_case "packing: validation" `Quick test_packing_validation;
    Alcotest.test_case "overhead headline" `Quick test_overhead_headline;
    Alcotest.test_case "tco paper numbers" `Quick test_tco_paper_numbers;
    Alcotest.test_case "tco sensitivity" `Quick test_tco_sensitivity;
  ]

let test_offload_motivation () =
  match Costmodel.Offload.comparison () with
  | [ host; nic; snic ] ->
    (* Offloading removes the PCIe round trip: lower latency despite the
       slower core. *)
    Alcotest.(check bool) "NIC latency < host latency" true
      (nic.Costmodel.Offload.latency_ns < host.Costmodel.Offload.latency_ns);
    (* The host core is faster per packet in raw throughput... *)
    Alcotest.(check bool) "host core faster" true
      (host.Costmodel.Offload.kpps_per_core > nic.Costmodel.Offload.kpps_per_core);
    (* ...but the NIC wins on cost per capacity, and S-NIC keeps most of
       that advantage (the abstract's claim). *)
    Alcotest.(check bool) "NIC cheaper per Mpps" true
      (nic.Costmodel.Offload.usd_per_mpps < 0.6 *. host.Costmodel.Offload.usd_per_mpps);
    let benefit d = host.Costmodel.Offload.usd_per_mpps -. d.Costmodel.Offload.usd_per_mpps in
    Alcotest.(check bool) "S-NIC preserves ~90% of the benefit" true (benefit snic > 0.85 *. benefit nic);
    (* S-NIC throughput within 1.7% of the plain NIC. *)
    Alcotest.(check bool) "isolation tax <= 1.7%" true
      (snic.Costmodel.Offload.kpps_per_core > 0.983 *. nic.Costmodel.Offload.kpps_per_core)
  | _ -> Alcotest.fail "expected three deployments"

let suite = suite @ [ Alcotest.test_case "offload motivation" `Quick test_offload_motivation ]

let test_tables_module () =
  let t2 = Costmodel.Tables.table2 () in
  Alcotest.(check int) "table2 rows" 12 (List.length t2);
  let r = Costmodel.Tables.find t2 ~label:"366MB/core" ~units:4 in
  close "t2 area" 0.045 r.Costmodel.Tables.area_mm2;
  close "t2 power" 0.026 r.Costmodel.Tables.power_w;
  Alcotest.(check int) "183 entries" 183 r.Costmodel.Tables.entries;
  let t3 = Costmodel.Tables.table3 () in
  Alcotest.(check int) "table3 rows" 9 (List.length t3);
  close "DPI x16" 0.074 (Costmodel.Tables.find t3 ~label:"DPI" ~units:16).Costmodel.Tables.area_mm2;
  let t4 = Costmodel.Tables.table4 () in
  Alcotest.(check int) "table4 rows" 6 (List.length t4);
  close "VPP x12" 0.037 (Costmodel.Tables.find t4 ~label:"VPP" ~units:12).Costmodel.Tables.area_mm2;
  let t5 = Costmodel.Tables.table5_row ~label:"Equal" ~entries:183 ~cores:48 in
  close "t5 area" 0.538 t5.Costmodel.Tables.area_mm2;
  Alcotest.check_raises "find misses" (Invalid_argument "Tables.find: no row nope x1") (fun () ->
      ignore (Costmodel.Tables.find t2 ~label:"nope" ~units:1))

let suite = suite @ [ Alcotest.test_case "tables module" `Quick test_tables_module ]
