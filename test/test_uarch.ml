(* Small packet counts keep these fast; the bench runs full scale. *)
let packets = 250

let test_stream_generation () =
  List.iter
    (fun name ->
      let s = Uarch.Workload.stream ~packets name in
      Alcotest.(check string) "name" name s.Uarch.Workload.nf;
      Alcotest.(check bool) (name ^ " nonempty") true (Array.length s.Uarch.Workload.addrs > packets);
      Alcotest.(check bool) (name ^ " instructions positive") true (s.Uarch.Workload.instructions > 0);
      Array.iter (fun a -> if a < 0 then Alcotest.fail "negative address") s.Uarch.Workload.addrs)
    Uarch.Workload.names

let test_stream_memoized_and_deterministic () =
  let a = Uarch.Workload.stream ~packets "FW" in
  let b = Uarch.Workload.stream ~packets "FW" in
  Alcotest.(check bool) "memoized (same array)" true (a.Uarch.Workload.addrs == b.Uarch.Workload.addrs)

let test_rebase_disjoint () =
  let s = Uarch.Workload.stream ~packets "LB" in
  let r1 = Uarch.Workload.rebase s ~domain:1 in
  let r2 = Uarch.Workload.rebase s ~domain:2 in
  let max1 = Array.fold_left max 0 r1.Uarch.Workload.addrs in
  let min2 = Array.fold_left min max_int r2.Uarch.Workload.addrs in
  Alcotest.(check bool) "domains do not alias" true (max1 < min2);
  Alcotest.(check bool) "domain 0 identity" true (Uarch.Workload.rebase s ~domain:0 == s)

let mk_streams names =
  Array.of_list (List.mapi (fun d n -> Uarch.Workload.rebase (Uarch.Workload.stream ~packets n) ~domain:d) names)

let test_run_sanity () =
  let streams = mk_streams [ "FW"; "LB" ] in
  let res = Uarch.Cpu_model.run ~horizon:300_000 ~l2_bytes:(4 lsl 20) ~isolation:Uarch.Cpu_model.Baseline streams in
  Alcotest.(check int) "two domains" 2 (Array.length res);
  Array.iter
    (fun r ->
      Alcotest.(check bool) "ipc positive" true (r.Uarch.Cpu_model.ipc > 0.);
      Alcotest.(check bool) "ipc <= 1" true (r.Uarch.Cpu_model.ipc <= 1.0);
      Alcotest.(check bool) "cycles >= horizon" true (r.Uarch.Cpu_model.cycles >= 300_000);
      Alcotest.(check bool) "l1 rate in range" true (r.Uarch.Cpu_model.l1_miss_rate >= 0. && r.Uarch.Cpu_model.l1_miss_rate <= 1.);
      Alcotest.(check bool) "l2 rate in range" true (r.Uarch.Cpu_model.l2_miss_rate >= 0. && r.Uarch.Cpu_model.l2_miss_rate <= 1.))
    res

let median_deg ~l2_bytes ~n target =
  let partners = List.filteri (fun i _ -> i < n - 1) [ "LB"; "Mon"; "LPM"; "FW"; "NAT"; "LB"; "Mon"; "LPM"; "FW"; "NAT"; "LB"; "Mon"; "LPM"; "FW"; "NAT" ] in
  let streams = mk_streams (target :: partners) in
  let degs = Uarch.Cpu_model.degradation ~horizon:400_000 ~l2_bytes streams in
  snd degs.(0)

let test_degradation_small_at_low_cotenancy () =
  let d = median_deg ~l2_bytes:(4 lsl 20) ~n:2 "FW" in
  Alcotest.(check bool) (Printf.sprintf "2 NFs @4MB small (%.2f%%)" d) true (Float.abs d < 3.0)

let test_degradation_grows_with_cotenancy () =
  let d2 = median_deg ~l2_bytes:(4 lsl 20) ~n:2 "FW" in
  let d16 = median_deg ~l2_bytes:(4 lsl 20) ~n:16 "FW" in
  Alcotest.(check bool) (Printf.sprintf "16 NFs (%.2f%%) worse than 2 (%.2f%%)" d16 d2) true (d16 > d2);
  Alcotest.(check bool) "16-NF degradation substantial" true (d16 > 1.0)

let test_degradation_grows_as_cache_shrinks () =
  let small = median_deg ~l2_bytes:(32 * 1024) ~n:4 "FW" in
  let large = median_deg ~l2_bytes:(16 lsl 20) ~n:4 "FW" in
  Alcotest.(check bool) (Printf.sprintf "8KB (%.2f%%) >= 16MB (%.2f%%)" small large) true (small >= large -. 0.25)

let test_stats_of () =
  let s = Uarch.Colocation.stats_of [ 5.; 1.; 3.; 2.; 4. ] in
  Alcotest.(check (float 0.001)) "median" 3.0 s.Uarch.Colocation.median;
  Alcotest.(check bool) "p1 <= median <= p99" true
    (s.Uarch.Colocation.p1 <= s.Uarch.Colocation.median && s.Uarch.Colocation.median <= s.Uarch.Colocation.p99);
  Alcotest.(check (float 0.001)) "mean" 3.0 (Uarch.Colocation.mean [ 5.; 1.; 3.; 2.; 4. ])

let test_working_sets_ordering () =
  (* Table 6 ordering: LB has the smallest working set. *)
  let ws = Uarch.Workload.working_set_bytes in
  Alcotest.(check bool) "LB smallest" true (ws "LB" < ws "FW" && ws "LB" < ws "DPI" && ws "LB" < ws "NAT");
  Alcotest.(check bool) "tables span MBs" true (ws "FW" > (1 lsl 20))

let suite =
  [
    Alcotest.test_case "stream generation" `Slow test_stream_generation;
    Alcotest.test_case "stream memoized" `Quick test_stream_memoized_and_deterministic;
    Alcotest.test_case "rebase disjoint" `Quick test_rebase_disjoint;
    Alcotest.test_case "run sanity" `Quick test_run_sanity;
    Alcotest.test_case "small degradation at 2 NFs" `Slow test_degradation_small_at_low_cotenancy;
    Alcotest.test_case "degradation grows with cotenancy" `Slow test_degradation_grows_with_cotenancy;
    Alcotest.test_case "degradation grows as cache shrinks" `Slow test_degradation_grows_as_cache_shrinks;
    Alcotest.test_case "stats helpers" `Quick test_stats_of;
    Alcotest.test_case "working set ordering" `Quick test_working_sets_ordering;
  ]

let test_figure5_apis () =
  (* Tiny parameterizations: the full sweeps run in the bench. *)
  let f5a = Uarch.Colocation.figure5a ~l2_sizes:[ 64 * 1024 ] ~packets:150 () in
  Alcotest.(check int) "eight NFs" 8 (List.length f5a);
  List.iter
    (fun (nf, series) ->
      match series with
      | [ (size, stats) ] ->
        Alcotest.(check int) (nf ^ " size echoed") (64 * 1024) size;
        Alcotest.(check bool) (nf ^ " p1<=median<=p99") true
          (stats.Uarch.Colocation.p1 <= stats.Uarch.Colocation.median
          && stats.Uarch.Colocation.median <= stats.Uarch.Colocation.p99)
      | _ -> Alcotest.fail "expected one size")
    f5a;
  let f5b = Uarch.Colocation.figure5b ~cotenancy:[ 2 ] ~samples:2 ~packets:150 () in
  Alcotest.(check int) "eight NFs again" 8 (List.length f5b)

let test_figure8_shape () =
  let points = Uarch.Figure8.figure8 ~packets:800 () in
  Alcotest.(check int) "12 points" 12 (List.length points);
  let get threads frame =
    (List.find (fun (p : Uarch.Figure8.point) -> p.threads = threads && p.frame_bytes = frame) points).Uarch.Figure8.mpps
  in
  (* Small frames: producer-bound, flat in cluster size. *)
  Alcotest.(check bool) "64B flat" true (Float.abs (get 16 64 -. get 48 64) < 0.05);
  (* Jumbo frames: accelerator-bound, scaling with threads. *)
  Alcotest.(check bool) "9KB scales" true (get 48 9000 > 2.5 *. get 16 9000);
  Alcotest.(check bool) "9KB slower than 64B" true (get 16 9000 < get 16 64)

let test_instr_latency_model () =
  let lb = Memprof.Instr_latency.launch (Memprof.Profiles.find "LB") in
  let mon = Memprof.Instr_latency.launch (Memprof.Profiles.find "Mon") in
  (* Paper anchors: LB 29.62ms SHA, Mon 763.52ms SHA. *)
  Alcotest.(check bool) "LB sha ~29.6ms" true (Float.abs (lb.Memprof.Instr_latency.sha_ms -. 29.62) < 1.0);
  Alcotest.(check bool) "Mon sha ~763ms" true (Float.abs (mon.Memprof.Instr_latency.sha_ms -. 763.5) < 10.);
  let d = Memprof.Instr_latency.destroy (Memprof.Profiles.find "Mon") in
  Alcotest.(check bool) "Mon scrub ~54ms" true (Float.abs (d.Memprof.Instr_latency.scrub_ms -. 54.23) < 2.);
  Alcotest.(check bool) "attest flat 5.6ms" true (Float.abs (Memprof.Instr_latency.attest_ms -. 5.6) < 0.1)

let suite =
  suite
  @ [
      Alcotest.test_case "figure 5 APIs" `Slow test_figure5_apis;
      Alcotest.test_case "figure 8 shape" `Slow test_figure8_shape;
      Alcotest.test_case "figure 6 latency anchors" `Quick test_instr_latency_model;
    ]
