(* ---------- LZ77 (the ZIP accelerator's engine) ---------- *)

let test_lz_roundtrip_basic () =
  List.iter
    (fun s ->
      Alcotest.(check string) (Printf.sprintf "roundtrip %S" (String.sub s 0 (min 12 (String.length s)))) s
        (Accelfn.Lz77.decompress (Accelfn.Lz77.compress s)))
    [
      "";
      "a";
      "abc";
      String.make 1000 'x';
      "abcabcabcabcabcabcabcabc";
      "no repetition here at all!";
      String.init 5000 (fun i -> Char.chr (i land 0xff));
    ]

let test_lz_compresses_repetition () =
  let repetitive = String.concat "" (List.init 200 (fun _ -> "the quick brown fox ")) in
  let r = Accelfn.Lz77.ratio repetitive in
  Alcotest.(check bool) (Printf.sprintf "ratio %.3f < 0.1" r) true (r < 0.1);
  (* Incompressible (pseudo-random) data should not blow up much. *)
  let rng = Trace.Rng.create ~seed:9 in
  let noise = String.init 4096 (fun _ -> Char.chr (Trace.Rng.int rng 256)) in
  let rn = Accelfn.Lz77.ratio noise in
  Alcotest.(check bool) (Printf.sprintf "noise ratio %.3f <= 1.02" rn) true (rn <= 1.02)

let test_lz_overlapping_copy () =
  (* "aaaa..." forces distance-1 matches: copies overlap their source. *)
  let s = String.make 500 'a' in
  let c = Accelfn.Lz77.compress s in
  Alcotest.(check bool) "tiny" true (String.length c < 20);
  Alcotest.(check string) "overlap decode" s (Accelfn.Lz77.decompress c)

let test_lz_rejects_garbage () =
  Alcotest.check_raises "truncated literal" (Invalid_argument "Lz77.decompress: truncated token") (fun () ->
      ignore (Accelfn.Lz77.decompress "\x05ab"));
  Alcotest.check_raises "bad distance" (Invalid_argument "Lz77.decompress: bad distance") (fun () ->
      ignore (Accelfn.Lz77.decompress "\x80\xff\xff"))

let prop_lz_roundtrip =
  QCheck.Test.make ~name:"lz77 roundtrips arbitrary strings" ~count:300
    (QCheck.string_of_size (QCheck.Gen.int_range 0 2000))
    (fun s -> String.equal s (Accelfn.Lz77.decompress (Accelfn.Lz77.compress s)))

let prop_lz_roundtrip_lowentropy =
  QCheck.Test.make ~name:"lz77 roundtrips low-entropy strings" ~count:200
    (QCheck.string_gen_of_size (QCheck.Gen.int_range 0 3000) (QCheck.Gen.oneofl [ 'a'; 'b' ]))
    (fun s -> String.equal s (Accelfn.Lz77.decompress (Accelfn.Lz77.compress s)))

(* ---------- GF(256) ---------- *)

let test_gf_field_laws () =
  for a = 1 to 255 do
    Alcotest.(check int) "a*inv(a)=1" 1 (Accelfn.Gf256.mul a (Accelfn.Gf256.inv a));
    Alcotest.(check int) "a*1=a" a (Accelfn.Gf256.mul a 1);
    Alcotest.(check int) "a+a=0" 0 (Accelfn.Gf256.add a a)
  done;
  Alcotest.(check int) "0*x=0" 0 (Accelfn.Gf256.mul 0 123);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (Accelfn.Gf256.div 5 0))

let test_gf_generator_order () =
  (* The generator's powers enumerate all 255 nonzero elements. *)
  let seen = Hashtbl.create 256 in
  for k = 0 to 254 do
    Hashtbl.replace seen (Accelfn.Gf256.exp k) ()
  done;
  Alcotest.(check int) "255 distinct powers" 255 (Hashtbl.length seen);
  Alcotest.(check int) "g^255 = 1" 1 (Accelfn.Gf256.exp 255)

let prop_gf_mul_commutes_distributes =
  QCheck.Test.make ~name:"gf256 ring laws" ~count:500
    (QCheck.triple (QCheck.int_bound 255) (QCheck.int_bound 255) (QCheck.int_bound 255))
    (fun (a, b, c) ->
      Accelfn.Gf256.mul a b = Accelfn.Gf256.mul b a
      && Accelfn.Gf256.mul a (Accelfn.Gf256.add b c)
         = Accelfn.Gf256.add (Accelfn.Gf256.mul a b) (Accelfn.Gf256.mul a c))

(* ---------- RAID P+Q ---------- *)

let blocks_of rng k len =
  Array.init k (fun _ -> String.init len (fun _ -> Char.chr (Trace.Rng.int rng 256)))

let test_raid_encode_verify () =
  let rng = Trace.Rng.create ~seed:21 in
  let s = Accelfn.Raid.encode (blocks_of rng 6 512) in
  Alcotest.(check bool) "verifies" true (Accelfn.Raid.verify s);
  let tampered = { s with Accelfn.Raid.p = String.map (fun c -> Char.chr (Char.code c lxor 1)) s.Accelfn.Raid.p } in
  Alcotest.(check bool) "tamper detected" false (Accelfn.Raid.verify tampered)

let opt_data s holes =
  Array.mapi (fun i b -> if List.mem i holes then None else Some b) s.Accelfn.Raid.data

let test_raid_single_loss_p () =
  let rng = Trace.Rng.create ~seed:22 in
  let s = Accelfn.Raid.encode (blocks_of rng 5 256) in
  match Accelfn.Raid.recover ~data:(opt_data s [ 2 ]) ~p:(Some s.Accelfn.Raid.p) ~q:None with
  | Ok d -> Alcotest.(check string) "block rebuilt from P" s.Accelfn.Raid.data.(2) d.(2)
  | Error e -> Alcotest.fail e

let test_raid_single_loss_q () =
  let rng = Trace.Rng.create ~seed:23 in
  let s = Accelfn.Raid.encode (blocks_of rng 5 256) in
  match Accelfn.Raid.recover ~data:(opt_data s [ 3 ]) ~p:None ~q:(Some s.Accelfn.Raid.q) with
  | Ok d -> Alcotest.(check string) "block rebuilt from Q" s.Accelfn.Raid.data.(3) d.(3)
  | Error e -> Alcotest.fail e

let test_raid_double_loss () =
  let rng = Trace.Rng.create ~seed:24 in
  let s = Accelfn.Raid.encode (blocks_of rng 7 128) in
  match Accelfn.Raid.recover ~data:(opt_data s [ 1; 5 ]) ~p:(Some s.Accelfn.Raid.p) ~q:(Some s.Accelfn.Raid.q) with
  | Ok d ->
    Alcotest.(check string) "block 1" s.Accelfn.Raid.data.(1) d.(1);
    Alcotest.(check string) "block 5" s.Accelfn.Raid.data.(5) d.(5)
  | Error e -> Alcotest.fail e

let test_raid_capability_limits () =
  let rng = Trace.Rng.create ~seed:25 in
  let s = Accelfn.Raid.encode (blocks_of rng 5 64) in
  (match Accelfn.Raid.recover ~data:(opt_data s [ 0; 1 ]) ~p:(Some s.Accelfn.Raid.p) ~q:None with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double loss without Q accepted");
  (match Accelfn.Raid.recover ~data:(opt_data s [ 0; 1; 2 ]) ~p:(Some s.Accelfn.Raid.p) ~q:(Some s.Accelfn.Raid.q) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "triple loss accepted");
  match Accelfn.Raid.recover ~data:(opt_data s [ 4 ]) ~p:None ~q:None with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loss without parity accepted"

let prop_raid_any_two_erasures =
  QCheck.Test.make ~name:"raid recovers any two data erasures" ~count:100
    (QCheck.triple (QCheck.int_range 3 8) (QCheck.int_bound 1000) (QCheck.int_bound 1000))
    (fun (k, x0, y0) ->
      let x = x0 mod k and y = y0 mod k in
      if x = y then QCheck.assume_fail ()
      else begin
        let rng = Trace.Rng.create ~seed:(x0 + (y0 * 1000) + k) in
        let s = Accelfn.Raid.encode (blocks_of rng k 64) in
        let data = Array.mapi (fun i b -> if i = x || i = y then None else Some b) s.Accelfn.Raid.data in
        match Accelfn.Raid.recover ~data ~p:(Some s.Accelfn.Raid.p) ~q:(Some s.Accelfn.Raid.q) with
        | Ok d -> d = s.Accelfn.Raid.data
        | Error _ -> false
      end)

let suite =
  [
    Alcotest.test_case "lz77 roundtrip basics" `Quick test_lz_roundtrip_basic;
    Alcotest.test_case "lz77 compresses repetition" `Quick test_lz_compresses_repetition;
    Alcotest.test_case "lz77 overlapping copies" `Quick test_lz_overlapping_copy;
    Alcotest.test_case "lz77 rejects garbage" `Quick test_lz_rejects_garbage;
    QCheck_alcotest.to_alcotest prop_lz_roundtrip;
    QCheck_alcotest.to_alcotest prop_lz_roundtrip_lowentropy;
    Alcotest.test_case "gf256 field laws" `Quick test_gf_field_laws;
    Alcotest.test_case "gf256 generator order" `Quick test_gf_generator_order;
    QCheck_alcotest.to_alcotest prop_gf_mul_commutes_distributes;
    Alcotest.test_case "raid encode/verify" `Quick test_raid_encode_verify;
    Alcotest.test_case "raid single loss via P" `Quick test_raid_single_loss_p;
    Alcotest.test_case "raid single loss via Q" `Quick test_raid_single_loss_q;
    Alcotest.test_case "raid double loss via P+Q" `Quick test_raid_double_loss;
    Alcotest.test_case "raid capability limits" `Quick test_raid_capability_limits;
    QCheck_alcotest.to_alcotest prop_raid_any_two_erasures;
  ]
