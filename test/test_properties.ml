(* Cross-cutting property tests on core invariants, beyond each module's
   own qcheck suites. *)

open Nicsim

(* ---------- bigint algebra on large values ---------- *)

let gen_big = QCheck.map Bigint.of_bytes_be (QCheck.string_of_size (QCheck.Gen.int_range 0 48))

let prop_add_sub_inverse =
  QCheck.Test.make ~name:"bigint (a+b)-b = a on large values" ~count:300 (QCheck.pair gen_big gen_big)
    (fun (a, b) -> Bigint.equal a (Bigint.sub (Bigint.add a b) b))

let prop_shift_roundtrip =
  QCheck.Test.make ~name:"bigint shift left then right" ~count:300 (QCheck.pair gen_big (QCheck.int_bound 100))
    (fun (a, k) -> Bigint.equal a (Bigint.shift_right (Bigint.shift_left a k) k))

let prop_mul_commutes =
  QCheck.Test.make ~name:"bigint mul commutes" ~count:200 (QCheck.pair gen_big gen_big) (fun (a, b) ->
      Bigint.equal (Bigint.mul a b) (Bigint.mul b a))

let prop_modpow_matches_naive =
  QCheck.Test.make ~name:"modpow matches naive iteration" ~count:200
    (QCheck.triple (QCheck.int_range 0 50) (QCheck.int_range 0 12) (QCheck.int_range 2 50))
    (fun (b, e, m) ->
      let naive = ref 1 in
      for _ = 1 to e do
        naive := !naive * b mod m
      done;
      Bigint.to_int
        (Bigint.modpow ~base:(Bigint.of_int b) ~exponent:(Bigint.of_int e) ~modulus:(Bigint.of_int m))
      = Some !naive)

let prop_bit_length =
  QCheck.Test.make ~name:"bit_length agrees with ints" ~count:300 (QCheck.int_bound max_int) (fun n ->
      let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
      Bigint.bit_length (Bigint.of_int n) = width n 0)

(* ---------- page packing invariants ---------- *)

let menus = [| Costmodel.Page_packing.equal_2mb; Costmodel.Page_packing.flex_low; Costmodel.Page_packing.flex_high |]

let prop_packing_covers =
  QCheck.Test.make ~name:"packing always covers the request" ~count:300
    (QCheck.pair (QCheck.int_bound 2) (QCheck.int_bound 500_000_000))
    (fun (mi, bytes) ->
      let menu = menus.(mi) in
      Costmodel.Page_packing.allocated ~page_sizes:menu [ bytes ] >= bytes
      && Costmodel.Page_packing.waste ~page_sizes:menu [ bytes ] < List.fold_left min max_int menu)

let prop_packing_monotone_entries =
  QCheck.Test.make ~name:"finer menus never need fewer bytes" ~count:200 (QCheck.int_bound 500_000_000)
    (fun bytes ->
      (* Flex-low has the smallest page: its allocation is the tightest. *)
      Costmodel.Page_packing.allocated ~page_sizes:Costmodel.Page_packing.flex_low [ bytes ]
      <= Costmodel.Page_packing.allocated ~page_sizes:Costmodel.Page_packing.equal_2mb [ bytes ])

(* The decomposition maps the allocation with disjoint, exactly-covering
   pages, so the entry count must bracket the allocation between
   [entries x smallest] and [entries x largest] pages, and the allocation
   itself must be page-aligned and a fixed point of re-packing. *)
let prop_packing_entries_bracket_allocation =
  QCheck.Test.make ~name:"packing entries exactly tile the allocation" ~count:300
    (QCheck.pair (QCheck.int_bound 2) (QCheck.int_bound 500_000_000))
    (fun (mi, bytes) ->
      let menu = menus.(mi) in
      let smallest = List.fold_left min max_int menu and largest = List.fold_left max 0 menu in
      let alloc = Costmodel.Page_packing.allocated ~page_sizes:menu [ bytes ] in
      let entries = Costmodel.Page_packing.entries ~page_sizes:menu [ bytes ] in
      alloc mod smallest = 0
      && entries * smallest <= alloc
      && alloc <= entries * largest
      && Costmodel.Page_packing.allocated ~page_sizes:menu [ alloc ] = alloc
      && Costmodel.Page_packing.entries ~page_sizes:menu [ alloc ] = entries)

(* Table 5's point, generalized: over the six Table-6 NF profiles (with
   every region scaled by a common factor), the *largest* per-NF entry
   count — what sizes the locked TLBs — is never worse under Flex-low
   than under Equal-2MB. Note this is a property of the profile set, not
   of single regions: a lone small region can cost Flex-low more entries
   (e.g. 3 MB = 1x2MB + 8x128KB = 9 vs 2 under Equal). *)
let scaled_profiles f =
  List.map
    (fun p -> List.map (fun r -> max 1 (int_of_float (float_of_int r *. f))) (Memprof.Profiles.regions p))
    Memprof.Profiles.nfs

let max_entries_over menu regionss =
  List.fold_left (fun acc rs -> max acc (Costmodel.Page_packing.entries ~page_sizes:menu rs)) 0 regionss

let prop_flex_low_max_entries_le_equal =
  QCheck.Test.make ~name:"flex-low max entries <= equal-2MB over scaled NF profiles" ~count:200
    (QCheck.float_bound_inclusive 7.75)
    (fun df ->
      let rs = scaled_profiles (0.25 +. df) in
      max_entries_over Costmodel.Page_packing.flex_low rs <= max_entries_over Costmodel.Page_packing.equal_2mb rs)

let test_table5_paper_point () =
  Alcotest.(check int) "equal-2MB max entries" 183 (Memprof.Profiles.max_entries ~page_sizes:Costmodel.Page_packing.equal_2mb);
  Alcotest.(check int) "flex-low max entries" 51 (Memprof.Profiles.max_entries ~page_sizes:Costmodel.Page_packing.flex_low)

(* ---------- scheduler ordering properties ---------- *)

let prop_priority_strictness =
  QCheck.Test.make ~name:"priority never serves a lower class before a queued higher one" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 1 60) (QCheck.int_bound 3))
    (fun levels ->
      let s = Sched.create (Sched.Priority { levels = 4 }) in
      List.iteri (fun i l -> Sched.enqueue s { Sched.flow = i; bytes = 10; level = l; weight = 1 } l) levels;
      let order = Sched.drain s in
      let rec sorted = function a :: (b :: _ as rest) -> a <= b && sorted rest | _ -> true in
      sorted order)

(* ---------- TLB translation is a partial injection ---------- *)

let prop_tlb_injective =
  QCheck.Test.make ~name:"tlb never maps two vaddrs to overlapping paddrs" ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_range 1 6) (QCheck.pair (QCheck.int_bound 63) (QCheck.int_bound 63)))
    (fun picks ->
      let tlb = Tlb.create () in
      let size = 0x1000 in
      List.iter
        (fun (v, p) ->
          try Tlb.install tlb { Tlb.vbase = v * size; pbase = (64 + p) * size; size; writable = true }
          with Invalid_argument _ -> ())
        picks;
      (* For every mapped vaddr, translation is a function (deterministic)
         and the reverse direction never produces two vaddrs with the
         same paddr unless they came from the same entry. *)
      let seen = Hashtbl.create 64 in
      let ok = ref true in
      for v = 0 to (70 * size) - 1 do
        if v mod 997 = 0 then begin
          match Tlb.translate tlb ~vaddr:v ~access:Tlb.Read with
          | None -> ()
          | Some p -> begin
            match Hashtbl.find_opt seen p with
            | Some v' when v' <> v -> ok := false
            | _ -> Hashtbl.replace seen p v
          end
        end
      done;
      !ok)

(* ---------- attestation round-trips under serialization fuzz ---------- *)

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire encode/decode roundtrips" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 0 8) (QCheck.string_of_size (QCheck.Gen.int_range 0 64)))
    (fun fields ->
      match Snic.Wire.decode ~expect:(List.length fields) (Snic.Wire.encode fields) with
      | Ok got -> got = fields
      | Error _ -> false)

let prop_wire_decode_total =
  QCheck.Test.make ~name:"wire decode is total on junk" ~count:300
    (QCheck.pair (QCheck.int_bound 6) (QCheck.string_of_size (QCheck.Gen.int_range 0 100)))
    (fun (n, junk) -> match Snic.Wire.decode ~expect:n junk with Ok _ | Error _ -> true)

(* Strictness: every proper prefix of a non-empty encoding is a typed
   error (truncated prefix or truncated field), and extending an
   encoding by any byte is a typed error (trailing bytes) — decode
   accepts exactly the image of encode, never via exception. *)
let gen_wire_fields =
  QCheck.list_of_size (QCheck.Gen.int_range 1 6) (QCheck.string_of_size (QCheck.Gen.int_range 0 32))

let prop_wire_rejects_truncation =
  QCheck.Test.make ~name:"wire decode rejects every proper prefix" ~count:200
    (QCheck.pair gen_wire_fields (QCheck.int_bound 1000))
    (fun (fields, cut) ->
      let s = Snic.Wire.encode fields in
      let cut = cut mod String.length s in
      match Snic.Wire.decode ~expect:(List.length fields) (String.sub s 0 cut) with
      | Error _ -> true
      | Ok _ -> false)

let prop_wire_rejects_trailing =
  QCheck.Test.make ~name:"wire decode rejects trailing garbage" ~count:200
    (QCheck.pair gen_wire_fields QCheck.printable_char)
    (fun (fields, extra) ->
      let s = Snic.Wire.encode fields ^ String.make 1 extra in
      match Snic.Wire.decode ~expect:(List.length fields) s with Error _ -> true | Ok _ -> false)

let prop_wire_rejects_wrong_arity =
  QCheck.Test.make ~name:"wire decode rejects wrong field count" ~count:200 gen_wire_fields (fun fields ->
      let s = Snic.Wire.encode fields in
      let n = List.length fields in
      (match Snic.Wire.decode ~expect:(n - 1) s with Error _ -> true | Ok _ -> false)
      && match Snic.Wire.decode ~expect:(n + 1) s with Error _ -> true | Ok _ -> false)

(* ---------- cipher: distinct nonces, distinct streams ---------- *)

(* ---------- bulk datapath vs the per-byte reference ---------- *)

(* Differential property for the bugfix PR: the page-granular bulk blits
   must be byte-for-byte equivalent to the legacy one-lookup-per-byte
   loop — across random sizes, page-straddling offsets, sparse
   (never-written) pages, and with DRAM bit rot injected through
   [flip_bit] at identical positions in both memories. *)
let prop_bulk_blits_match_perbyte =
  let page = Physmem.page_size in
  let gen =
    QCheck.quad
      (QCheck.int_bound ((3 * page) - 1)) (* write offset, may straddle pages *)
      (QCheck.int_bound (2 * page)) (* write length *)
      (QCheck.string_of_size (QCheck.Gen.return 64)) (* payload seed *)
      (QCheck.small_list (QCheck.pair (QCheck.int_bound ((6 * page) - 1)) (QCheck.int_bound 7)))
    (* bit rot: (pos, bit) *)
  in
  QCheck.Test.make ~name:"bulk blits = per-byte loop (sizes, straddles, sparse, bit rot)" ~count:200 gen
    (fun (off, len, seed, flips) ->
      let size = 8 * page in
      let bulk = Physmem.create ~size in
      let reference = Physmem.create ~size in
      let slen = String.length seed in
      let payload = Bytes.init (max len 1) (fun i -> if slen = 0 then '\000' else seed.[(off + i) mod slen]) in
      (* Write: bulk blit vs per-byte stores. *)
      Physmem.blit_from_bytes bulk ~pos:off payload ~off:0 ~len;
      for i = 0 to len - 1 do
        Physmem.write_u8 reference (off + i) (Char.code (Bytes.get payload i))
      done;
      (* Identical bit rot in both worlds. *)
      List.iter
        (fun (pos, bit) ->
          Physmem.flip_bit bulk ~pos ~bit;
          Physmem.flip_bit reference ~pos ~bit)
        flips;
      (* Read back a larger window including pages neither memory ever
         wrote: bulk read vs per-byte loads must agree everywhere. *)
      let window = 7 * page in
      let got = Physmem.read_bytes bulk ~pos:0 ~len:window in
      let ok = ref true in
      for i = 0 to window - 1 do
        if Char.code got.[i] <> Physmem.read_u8 reference i then ok := false
      done;
      !ok)

let prop_cipher_nonce_separation =
  QCheck.Test.make ~name:"cipher keystreams differ across nonces" ~count:100
    (QCheck.string_of_size (QCheck.Gen.int_range 16 64))
    (fun pt ->
      let key = Crypto.Sha256.digest "k" in
      let c1 = Crypto.Cipher.seal ~key ~nonce:1L pt in
      let c2 = Crypto.Cipher.seal ~key ~nonce:2L pt in
      not (String.equal c1 c2))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_add_sub_inverse;
    QCheck_alcotest.to_alcotest prop_shift_roundtrip;
    QCheck_alcotest.to_alcotest prop_mul_commutes;
    QCheck_alcotest.to_alcotest prop_modpow_matches_naive;
    QCheck_alcotest.to_alcotest prop_bit_length;
    QCheck_alcotest.to_alcotest prop_packing_covers;
    QCheck_alcotest.to_alcotest prop_packing_monotone_entries;
    QCheck_alcotest.to_alcotest prop_packing_entries_bracket_allocation;
    QCheck_alcotest.to_alcotest prop_flex_low_max_entries_le_equal;
    Alcotest.test_case "Table 5 paper point (183 vs 51 entries)" `Quick test_table5_paper_point;
    QCheck_alcotest.to_alcotest prop_priority_strictness;
    QCheck_alcotest.to_alcotest prop_tlb_injective;
    QCheck_alcotest.to_alcotest prop_wire_roundtrip;
    QCheck_alcotest.to_alcotest prop_wire_decode_total;
    QCheck_alcotest.to_alcotest prop_wire_rejects_truncation;
    QCheck_alcotest.to_alcotest prop_wire_rejects_trailing;
    QCheck_alcotest.to_alcotest prop_wire_rejects_wrong_arity;
    QCheck_alcotest.to_alcotest prop_cipher_nonce_separation;
    QCheck_alcotest.to_alcotest prop_bulk_blits_match_perbyte;
  ]
