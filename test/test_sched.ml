open Nicsim

let meta ?(flow = 0) ?(bytes = 100) ?(level = 1) ?(weight = 1) () = { Sched.flow; bytes; level; weight }

let test_fifo_order () =
  let s = Sched.create Sched.Fifo in
  List.iter (fun i -> Sched.enqueue s (meta ~flow:i ()) i) [ 1; 2; 3; 4 ];
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3; 4 ] (Sched.drain s);
  Alcotest.(check bool) "empty" true (Sched.is_empty s);
  Alcotest.(check bool) "dequeue empty" true (Sched.dequeue s = None)

let test_priority_strict () =
  let s = Sched.create (Sched.Priority { levels = 3 }) in
  Sched.enqueue s (meta ~level:2 ()) "low1";
  Sched.enqueue s (meta ~level:0 ()) "high1";
  Sched.enqueue s (meta ~level:1 ()) "mid";
  Sched.enqueue s (meta ~level:0 ()) "high2";
  Alcotest.(check (list string)) "strict priority" [ "high1"; "high2"; "mid"; "low1" ] (Sched.drain s);
  (* Out-of-range levels clamp instead of crashing. *)
  Sched.enqueue s (meta ~level:99 ()) "clamped";
  Alcotest.(check (list string)) "clamped" [ "clamped" ] (Sched.drain s)

let test_drr_fairness () =
  (* Flow 0 sends big packets, flow 1 small ones; DRR serves roughly
     equal *bytes*, so flow 1 gets more packets out early. *)
  let s = Sched.create (Sched.Drr { quantum = 500 }) in
  for i = 0 to 9 do
    Sched.enqueue s (meta ~flow:0 ~bytes:1000 ()) (0, i);
    Sched.enqueue s (meta ~flow:1 ~bytes:100 ()) (1, i)
  done;
  (* Take the first 11 services and count bytes per flow. *)
  let served = Array.make 2 0 in
  for _ = 1 to 11 do
    match Sched.dequeue s with
    | Some (f, _) -> served.(f) <- served.(f) + (if f = 0 then 1000 else 100)
    | None -> Alcotest.fail "queue ran dry"
  done;
  let ratio = float_of_int served.(0) /. float_of_int served.(1) in
  Alcotest.(check bool) (Printf.sprintf "byte-fair (ratio %.2f)" ratio) true (ratio > 0.5 && ratio < 2.0);
  (* Everything eventually drains. *)
  Alcotest.(check int) "drains fully" 9 (List.length (Sched.drain s))

let test_drr_single_flow_is_fifo () =
  let s = Sched.create (Sched.Drr { quantum = 64 }) in
  List.iter (fun i -> Sched.enqueue s (meta ~flow:7 ~bytes:200 ()) i) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "in order" [ 1; 2; 3 ] (Sched.drain s)

let test_wfq_weights () =
  (* Two backlogged flows with weights 3:1 and equal packet sizes: over
     the first services, the heavy flow should get ~3x the service. *)
  let s = Sched.create Sched.Wfq in
  for i = 0 to 19 do
    Sched.enqueue s (meta ~flow:0 ~bytes:100 ~weight:3 ()) (0, i);
    Sched.enqueue s (meta ~flow:1 ~bytes:100 ~weight:1 ()) (1, i)
  done;
  let served = Array.make 2 0 in
  for _ = 1 to 16 do
    match Sched.dequeue s with
    | Some (f, _) -> served.(f) <- served.(f) + 1
    | None -> Alcotest.fail "ran dry"
  done;
  Alcotest.(check bool)
    (Printf.sprintf "weighted service (%d vs %d)" served.(0) served.(1))
    true
    (served.(0) >= 2 * served.(1));
  Alcotest.(check int) "drains fully" 24 (List.length (Sched.drain s))

let test_wfq_single_flow_order () =
  let s = Sched.create Sched.Wfq in
  List.iter (fun i -> Sched.enqueue s (meta ~flow:1 ~bytes:50 ()) i) [ 1; 2; 3; 4 ];
  Alcotest.(check (list int)) "per-flow FIFO" [ 1; 2; 3; 4 ] (Sched.drain s)

let test_validation () =
  Alcotest.check_raises "bad quantum" (Invalid_argument "Sched.create: quantum must be positive") (fun () ->
      ignore (Sched.create (Sched.Drr { quantum = 0 })));
  Alcotest.check_raises "bad levels" (Invalid_argument "Sched.create: need at least one priority level") (fun () ->
      ignore (Sched.create (Sched.Priority { levels = 0 })))

let test_iter_sees_everything () =
  List.iter
    (fun policy ->
      let s = Sched.create policy in
      for i = 0 to 9 do
        Sched.enqueue s (meta ~flow:(i mod 3) ~level:(i mod 2) ()) i
      done;
      let seen = ref 0 in
      Sched.iter (fun _ -> incr seen) s;
      Alcotest.(check int) (Sched.policy_name policy ^ " iter") 10 !seen;
      Alcotest.(check int) (Sched.policy_name policy ^ " length") 10 (Sched.length s))
    [ Sched.Fifo; Sched.Drr { quantum = 128 }; Sched.Priority { levels = 2 }; Sched.Wfq ]

(* Regression (bugfix PR): DRR iter must walk flows in rotation order,
   not Hashtbl hash order — Pktio.release frees buffers through it, so a
   hash-order walk would make the allocator's free order nondeterministic
   across OCaml versions. *)
let test_drr_iter_rotation_order () =
  let s = Sched.create (Sched.Drr { quantum = 256 }) in
  (* Flows appear in enqueue order 5, 2, 9; within a flow, FIFO. *)
  List.iter (fun (flow, x) -> Sched.enqueue s (meta ~flow ()) x) [ (5, 0); (2, 1); (9, 2); (5, 3); (2, 4) ];
  let order = ref [] in
  Sched.iter (fun x -> order := x :: !order) s;
  Alcotest.(check (list int)) "rotation order: flow 5, then 2, then 9" [ 0; 3; 1; 4; 2 ] (List.rev !order);
  (* Dequeuing a whole flow drops it from the walk; the rest keep their
     relative rotation order. *)
  Alcotest.(check (option int)) "pop flow 5 head" (Some 0) (Sched.dequeue s);
  Alcotest.(check (option int)) "pop flow 5 tail" (Some 3) (Sched.dequeue s);
  let order = ref [] in
  Sched.iter (fun x -> order := x :: !order) s;
  Alcotest.(check (list int)) "flow 5 gone, 2 before 9" [ 1; 4; 2 ] (List.rev !order)

let prop_all_policies_conserve =
  QCheck.Test.make ~name:"schedulers neither lose nor duplicate packets" ~count:100
    (QCheck.pair (QCheck.int_bound 3) (QCheck.list_of_size (QCheck.Gen.int_range 0 50) (QCheck.int_bound 1000)))
    (fun (which, items) ->
      let policy =
        match which with
        | 0 -> Sched.Fifo
        | 1 -> Sched.Drr { quantum = 256 }
        | 2 -> Sched.Priority { levels = 4 }
        | _ -> Sched.Wfq
      in
      let s = Sched.create policy in
      List.iteri
        (fun i x -> Sched.enqueue s (meta ~flow:(i mod 5) ~bytes:(1 + (x mod 900)) ~level:(i mod 4) ()) x)
        items;
      let out = Sched.drain s in
      List.sort compare out = List.sort compare items)

(* The pipeline integration: a priority-scheduled VPP serves well-known
   ports first. *)
let test_pktio_priority_pipeline () =
  let mem = Physmem.create ~size:(32 * 1048576) in
  let alloc = Alloc.init mem ~base:0x10000 ~heap_base:(16 * 1048576) ~heap_size:(16 * 1048576) ~max_entries:128 in
  let io = Pktio.create mem alloc ~rx_buffer_bytes:1048576 ~tx_buffer_bytes:1048576 in
  (match Pktio.reserve ~sched:(Sched.Priority { levels = 2 }) io ~nf:0 ~rx_bytes:65536 ~tx_bytes:65536 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "scheduler installed" true
    (Pktio.scheduler_of io ~nf:0 = Some (Sched.Priority { levels = 2 }));
  Pktio.add_rule io ~m:Pktio.match_any ~nf:0;
  let frame dport =
    Net.Packet.serialize
      (Net.Packet.make ~src_ip:1 ~dst_ip:2 ~proto:Net.Packet.Udp ~src_port:5000 ~dst_port:dport "x")
  in
  (* Bulk traffic arrives first, then a DNS packet: priority pops DNS. *)
  ignore (Pktio.deliver io (frame 8080));
  ignore (Pktio.deliver io (frame 9090));
  ignore (Pktio.deliver io (frame 53));
  (match Pktio.rx_pop io ~nf:0 with
  | Some (addr, len) -> begin
    match Net.Packet.parse ~verify_checksums:false (Bytes.of_string (Physmem.read_bytes mem ~pos:addr ~len)) with
    | Ok p -> Alcotest.(check int) "privileged port first" 53 p.Net.Packet.dst_port
    | Error _ -> Alcotest.fail "parse"
  end
  | None -> Alcotest.fail "empty ring")

(* ---- two-stage hierarchical scheduler (lib/vf datapath) ----------- *)

let test_hier_basics () =
  let h = Sched.Hier.create ~quantum:512 () in
  Alcotest.(check bool) "empty" true (Sched.Hier.is_empty h);
  Alcotest.(check bool) "dequeue empty" true (Sched.Hier.dequeue h = None);
  Sched.Hier.set_class h ~cls:1 ~weight:2;
  Sched.Hier.enqueue h ~cls:1 (meta ~bytes:100 ()) "a";
  Sched.Hier.enqueue h ~cls:1 (meta ~bytes:100 ()) "b";
  Sched.Hier.enqueue h ~cls:2 (meta ~bytes:100 ()) "c";
  Alcotest.(check int) "length" 3 (Sched.Hier.length h);
  Alcotest.(check int) "class 1 backlog" 2 (Sched.Hier.class_length h ~cls:1);
  Alcotest.(check int) "class 2 backlog" 1 (Sched.Hier.class_length h ~cls:2);
  Alcotest.(check (option int)) "weight of 1" (Some 2) (Sched.Hier.weight_of h ~cls:1);
  (* Within a class, FIFO per the inner DRR's single flow. *)
  let out = Sched.Hier.drain h in
  Alcotest.(check int) "drains fully" 3 (List.length out);
  Alcotest.(check (list string)) "class 1 stays in order" [ "a"; "b" ]
    (List.filter_map (fun (c, x) -> if c = 1 then Some x else None) out);
  Alcotest.check_raises "bad quantum" (Invalid_argument "Sched.Hier.create: quantum must be positive")
    (fun () -> ignore (Sched.Hier.create ~quantum:0 ()));
  Alcotest.check_raises "bad weight" (Invalid_argument "Sched.Hier.set_class: weight must be >= 1")
    (fun () -> Sched.Hier.set_class h ~cls:9 ~weight:0)

let test_hier_remove_class () =
  let h = Sched.Hier.create ~quantum:512 () in
  List.iter (fun (c, x) -> Sched.Hier.enqueue h ~cls:c (meta ~bytes:50 ()) x)
    [ (1, "a"); (2, "b"); (1, "c"); (3, "d") ];
  let dropped = Sched.Hier.remove_class h ~cls:1 in
  Alcotest.(check (list string)) "dropped in order" [ "a"; "c" ] dropped;
  Alcotest.(check int) "two left" 2 (Sched.Hier.length h);
  let out = List.map snd (Sched.Hier.drain h) in
  Alcotest.(check (list string)) "others keep rotation order" [ "b"; "d" ] out;
  Alcotest.(check (list string)) "removing absent class" [] (Sched.Hier.remove_class h ~cls:42)

let test_hier_iter_rotation_order () =
  let h = Sched.Hier.create ~quantum:512 () in
  (* Classes appear in enqueue order 5, 2, 9; within a class, FIFO. *)
  List.iter (fun (c, x) -> Sched.Hier.enqueue h ~cls:c (meta ~bytes:50 ()) x)
    [ (5, 0); (2, 1); (9, 2); (5, 3); (2, 4) ];
  let order = ref [] in
  Sched.Hier.iter (fun _ x -> order := x :: !order) h;
  Alcotest.(check (list int)) "rotation order: class 5, then 2, then 9" [ 0; 3; 1; 4; 2 ] (List.rev !order)

(* Work-conservation: whatever goes in comes out, exactly once, across
   random classes, weights and sizes. *)
let prop_hier_conserves =
  QCheck.Test.make ~name:"hier scheduler neither loses nor duplicates packets" ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_range 0 80)
       (QCheck.triple (QCheck.int_bound 7) (QCheck.int_range 1 1500) (QCheck.int_bound 1000)))
    (fun items ->
      let h = Sched.Hier.create ~quantum:700 () in
      List.iteri
        (fun i (cls, bytes, x) ->
          if i mod 9 = 0 then Sched.Hier.set_class h ~cls ~weight:(1 + (i mod 8));
          Sched.Hier.enqueue h ~cls (meta ~flow:(x mod 3) ~bytes ()) x)
        items;
      let out = List.map snd (Sched.Hier.drain h) in
      Sched.Hier.is_empty h
      && List.sort compare out = List.sort compare (List.map (fun (_, _, x) -> x) items))

(* Weighted-share convergence: backlogged classes split served bytes in
   proportion to their weights, within 5%. *)
let prop_hier_weighted_shares =
  QCheck.Test.make ~name:"hier byte shares converge to weights (<=5% error)" ~count:30
    (QCheck.list_of_size (QCheck.Gen.int_range 2 6) (QCheck.int_range 1 8))
    (fun weights ->
      let quantum = 800 and pkt = 100 and cycles = 50 in
      let h = Sched.Hier.create ~quantum () in
      let n = List.length weights in
      let total_w = List.fold_left ( + ) 0 weights in
      (* Enough backlog that nobody runs dry inside the budget. *)
      let per_class w = ((cycles + 2) * quantum * w / pkt) + 16 in
      List.iteri
        (fun cls w ->
          Sched.Hier.set_class h ~cls ~weight:w;
          for i = 0 to per_class w - 1 do
            Sched.Hier.enqueue h ~cls (meta ~flow:(i mod 4) ~bytes:pkt ()) i
          done)
        weights;
      let budget = cycles * quantum * total_w in
      let served = Array.make n 0 in
      let spent = ref 0 in
      while !spent < budget do
        match Sched.Hier.dequeue h with
        | None -> QCheck.Test.fail_report "ran dry inside the budget"
        | Some (cls, _) ->
          served.(cls) <- served.(cls) + pkt;
          spent := !spent + pkt
      done;
      List.for_all2
        (fun cls w ->
          let share = float_of_int served.(cls) /. float_of_int !spent in
          let expect = float_of_int w /. float_of_int total_w in
          Float.abs (share -. expect) /. expect <= 0.05)
        (List.init n (fun i -> i))
        weights)

(* Starvation-freedom: one class with a huge backlog of big packets and
   maximum weight cannot shut out weight-1 classes. *)
let prop_hier_no_starvation =
  QCheck.Test.make ~name:"hier never starves a backlogged class" ~count:30
    (QCheck.int_range 2 6)
    (fun n ->
      let quantum = 800 in
      let h = Sched.Hier.create ~quantum () in
      (* Class 0 is the saturating tenant: weight 8, 1500-byte frames. *)
      Sched.Hier.set_class h ~cls:0 ~weight:8;
      for i = 0 to 999 do
        Sched.Hier.enqueue h ~cls:0 (meta ~bytes:1500 ()) i
      done;
      for cls = 1 to n do
        Sched.Hier.set_class h ~cls ~weight:1;
        for i = 0 to 63 do
          Sched.Hier.enqueue h ~cls (meta ~bytes:100 ()) i
        done
      done;
      (* Serve three full rotations' worth of bytes... *)
      let budget = 3 * quantum * (8 + n) in
      let served = Array.make (n + 1) 0 in
      let spent = ref 0 in
      while !spent < budget do
        match Sched.Hier.dequeue h with
        | None -> QCheck.Test.fail_report "ran dry"
        | Some (cls, _) ->
          served.(cls) <- served.(cls) + 1;
          spent := !spent + (if cls = 0 then 1500 else 100)
      done;
      (* ...and every weight-1 class must have been served meanwhile. *)
      List.for_all (fun cls -> served.(cls) > 0) (List.init n (fun i -> i + 1)))

let suite =
  [
    Alcotest.test_case "fifo order" `Quick test_fifo_order;
    Alcotest.test_case "strict priority" `Quick test_priority_strict;
    Alcotest.test_case "drr byte fairness" `Quick test_drr_fairness;
    Alcotest.test_case "drr single flow" `Quick test_drr_single_flow_is_fifo;
    Alcotest.test_case "wfq weights" `Quick test_wfq_weights;
    Alcotest.test_case "wfq per-flow order" `Quick test_wfq_single_flow_order;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "iter/length" `Quick test_iter_sees_everything;
    Alcotest.test_case "drr iter rotation order" `Quick test_drr_iter_rotation_order;
    QCheck_alcotest.to_alcotest prop_all_policies_conserve;
    Alcotest.test_case "priority pipeline end-to-end" `Quick test_pktio_priority_pipeline;
    Alcotest.test_case "hier basics" `Quick test_hier_basics;
    Alcotest.test_case "hier remove class" `Quick test_hier_remove_class;
    Alcotest.test_case "hier iter rotation order" `Quick test_hier_iter_rotation_order;
    QCheck_alcotest.to_alcotest prop_hier_conserves;
    QCheck_alcotest.to_alcotest prop_hier_weighted_shares;
    QCheck_alcotest.to_alcotest prop_hier_no_starvation;
  ]
