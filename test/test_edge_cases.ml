(* Edge cases and smaller behaviours across all the substrates, beyond
   each module's core suite. *)

open Nicsim

let ip = Net.Ipv4_addr.of_string

(* ---------- maglev churn ---------- *)

let test_maglev_add_backend () =
  let lb = Nf.Maglev.create ~table_size:4099 (Nf.Rulegen.backends ~n:7) in
  let lb8 = Nf.Maglev.add lb "backend-777" in
  Alcotest.(check int) "eight backends" 8 (List.length (Nf.Maglev.backends lb8));
  (* The new backend gets roughly its fair share of slots. *)
  let share = List.assoc "backend-777" (Nf.Maglev.load lb8) in
  Alcotest.(check bool) (Printf.sprintf "fair share (%d)" share) true (abs (share - (4099 / 8)) < 4099 / 40);
  (* Adding it disrupts about 1/8 of slots, not more. *)
  let d = Nf.Maglev.disruption lb lb8 in
  Alcotest.(check bool) (Printf.sprintf "add disruption %.3f" d) true (d < 0.25)

(* ---------- LPM default route ---------- *)

let test_lpm_default_route () =
  let t = Nf.Lpm.create () in
  Nf.Lpm.insert t ~prefix:0 ~len:0 99;
  Nf.Lpm.insert t ~prefix:(ip "10.0.0.0") ~len:8 1;
  Alcotest.(check (option int)) "default catches" (Some 99) (Nf.Lpm.lookup t (ip "200.1.2.3"));
  Alcotest.(check (option int)) "specific wins" (Some 1) (Nf.Lpm.lookup t (ip "10.1.2.3"))

let test_lpm_overwrite_same_prefix () =
  let t = Nf.Lpm.create () in
  Nf.Lpm.insert t ~prefix:(ip "10.0.0.0") ~len:8 1;
  Nf.Lpm.insert t ~prefix:(ip "10.0.0.0") ~len:8 2;
  Alcotest.(check (option int)) "last write wins" (Some 2) (Nf.Lpm.lookup t (ip "10.1.2.3"))

(* ---------- bus accounting ---------- *)

let test_bus_stats_accounting () =
  let bus = Bus.create ~policy:Bus.Free_for_all ~clients:2 in
  for _ = 1 to 10 do
    ignore (Bus.request bus ~client:0 ~now:0 ~cost:5)
  done;
  let s = Bus.stats bus ~client:0 in
  Alcotest.(check int) "ops" 10 s.Bus.ops;
  Alcotest.(check int) "busy cycles" 50 s.Bus.busy_cycles;
  (* All issued at now=0 against a FCFS queue: total waiting is
     0+5+10+...+45. *)
  Alcotest.(check int) "wait cycles" 225 s.Bus.wait_cycles;
  Alcotest.check_raises "bad client" (Invalid_argument "Bus.request: bad client") (fun () ->
      ignore (Bus.request bus ~client:7 ~now:0 ~cost:1));
  Alcotest.check_raises "bad cost" (Invalid_argument "Bus.request: cost must be positive") (fun () ->
      ignore (Bus.request bus ~client:0 ~now:0 ~cost:0))

(* ---------- physmem runs ---------- *)

let test_physmem_owned_runs () =
  let m = Physmem.create ~size:(1 lsl 20) in
  let p = Physmem.page_size in
  Physmem.set_owner m ~pos:0 ~len:p (Physmem.Nf 1);
  Physmem.set_owner m ~pos:(2 * p) ~len:(2 * p) (Physmem.Nf 1);
  (match Physmem.owned_ranges m (Physmem.Nf 1) with
  | [ (0, a); (b, c) ] ->
    Alcotest.(check int) "first run" p a;
    Alcotest.(check int) "second start" (2 * p) b;
    Alcotest.(check int) "second len" (2 * p) c
  | l -> Alcotest.failf "expected two runs, got %d" (List.length l));
  Physmem.set_owner m ~pos:p ~len:p (Physmem.Nf 1);
  match Physmem.owned_ranges m (Physmem.Nf 1) with
  | [ (0, len) ] -> Alcotest.(check int) "coalesced" (4 * p) len
  | l -> Alcotest.failf "expected one run, got %d" (List.length l)

(* ---------- identity reboot ---------- *)

let test_identity_reboot_rotates_ak () =
  let vendor = Snic.Identity.make_vendor ~seed:55 ~name:"V" () in
  let id = Snic.Identity.manufacture ~seed:56 vendor ~serial:"r1" in
  let ak1 = Snic.Identity.ak_public id in
  let endorsement1 = Snic.Identity.ak_endorsement id in
  Snic.Identity.reboot id;
  let ak2 = Snic.Identity.ak_public id in
  Alcotest.(check bool) "fresh AK" false (Crypto.Rsa.public_to_string ak1 = Crypto.Rsa.public_to_string ak2);
  (* Old and new endorsements both chain to the same EK. *)
  let check ak e =
    Snic.Identity.check_ak_chain
      ~vendor_public:(Snic.Identity.vendor_public vendor)
      ~ek_cert:(Snic.Identity.ek_certificate id) ~ak ~endorsement:e
  in
  Alcotest.(check bool) "old chain still verifies" true (check ak1 endorsement1);
  Alcotest.(check bool) "new chain verifies" true (check ak2 (Snic.Identity.ak_endorsement id));
  (* But the old endorsement does not cover the new AK. *)
  Alcotest.(check bool) "cross endorsement fails" false (check ak2 endorsement1)

(* ---------- api without rules ---------- *)

let test_inject_without_rules_drops () =
  let api = Snic.Api.boot () in
  let _ = Result.get_ok (Snic.Api.nf_create api { Snic.Instructions.default_config with image = "quiet" }) in
  match Snic.Api.inject_packet api (Net.Packet.make ~src_ip:1 ~dst_ip:2 ~proto:Net.Packet.Udp ~src_port:1 ~dst_port:2 "x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "packet matched with no rules installed"

(* ---------- tlb map_region entry economy ---------- *)

let test_map_region_entry_counts () =
  (* A naturally aligned 1 MB region needs exactly one entry... *)
  let t1 = Tlb.create () in
  Alcotest.(check int) "aligned region: 1 entry" 1
    (Tlb.map_region t1 ~vbase:0x10000000 ~pbase:0x20000000 ~len:(1 lsl 20) ~writable:true);
  (* ...and a 4 KB-aligned one decomposes into a short ladder, not 256
     pages — provided the virtual base is congruent to the physical one
     (which is how nf_launch chooses it; with incongruent bases no
     hardware could use large pages at all). *)
  let t2 = Tlb.create () in
  let n = Tlb.map_region t2 ~vbase:0x10001000 ~pbase:0x20001000 ~len:(1 lsl 20) ~writable:true in
  Alcotest.(check bool) (Printf.sprintf "ladder is short (%d)" n) true (n <= 24);
  Alcotest.(check int) "covers everything" (1 lsl 20) (Tlb.mapped_bytes t2);
  (* Every byte translates correctly. *)
  List.iter
    (fun off ->
      Alcotest.(check (option int))
        (Printf.sprintf "off %#x" off)
        (Some (0x20001000 + off))
        (Tlb.translate t2 ~vaddr:(0x10001000 + off) ~access:Tlb.Read))
    [ 0; 4095; 4096; 65535; (1 lsl 20) - 1 ]

(* ---------- registry at paper scale ---------- *)

let test_registry_paper_parameters () =
  Alcotest.(check int) "FW rules" 643 (Nf.Registry.fw_rules ~scale:1.0);
  Alcotest.(check int) "DPI patterns" 33_471 (Nf.Registry.dpi_patterns ~scale:1.0);
  Alcotest.(check int) "LPM routes" 16_000 (Nf.Registry.lpm_routes ~scale:1.0);
  Alcotest.(check int) "scaled down" 643 (Nf.Registry.fw_rules ~scale:1.0)

(* ---------- sched: WFQ starvation-freedom ---------- *)

let test_wfq_no_starvation () =
  let s = Sched.create Sched.Wfq in
  (* A heavy flow and a light flow: the light flow still gets served
     within a bounded horizon. *)
  for i = 0 to 99 do
    Sched.enqueue s { Sched.flow = 0; bytes = 1000; level = 0; weight = 1 } (`Heavy i)
  done;
  Sched.enqueue s { Sched.flow = 1; bytes = 100; level = 0; weight = 1 } `Light;
  let rec position i =
    match Sched.dequeue s with
    | Some `Light -> i
    | Some (`Heavy _) -> position (i + 1)
    | None -> Alcotest.fail "ran dry"
  in
  let pos = position 0 in
  Alcotest.(check bool) (Printf.sprintf "light served at %d" pos) true (pos <= 2)

(* ---------- vnic: tx of an oversized rewrite ---------- *)

let test_vnic_oversized_tx () =
  let api = Snic.Api.boot () in
  let v =
    Result.get_ok
      (Snic.Api.nf_create api { Snic.Instructions.default_config with image = "big"; rules = [ Pktio.match_any ] })
  in
  ignore (Snic.Api.inject_packet api (Net.Packet.make ~src_ip:1 ~dst_ip:2 ~proto:Net.Packet.Udp ~src_port:1 ~dst_port:2 "s"));
  match Snic.Vnic.rx_packet v with
  | Ok (Some (pkt, buffer)) -> begin
    let huge = { pkt with Net.Packet.payload = String.make 8192 'x' } in
    match Snic.Vnic.tx_packet v ~buffer huge with
    | Error _ -> Snic.Vnic.drop v ~buffer
    | Ok () -> Alcotest.fail "frame larger than the buffer page accepted"
  end
  | _ -> Alcotest.fail "no packet"

let suite =
  [
    Alcotest.test_case "maglev add backend" `Quick test_maglev_add_backend;
    Alcotest.test_case "lpm default route" `Quick test_lpm_default_route;
    Alcotest.test_case "lpm overwrite" `Quick test_lpm_overwrite_same_prefix;
    Alcotest.test_case "bus stats accounting" `Quick test_bus_stats_accounting;
    Alcotest.test_case "physmem owned runs" `Quick test_physmem_owned_runs;
    Alcotest.test_case "identity reboot" `Slow test_identity_reboot_rotates_ak;
    Alcotest.test_case "inject without rules" `Quick test_inject_without_rules_drops;
    Alcotest.test_case "map_region entry economy" `Quick test_map_region_entry_counts;
    Alcotest.test_case "registry paper parameters" `Quick test_registry_paper_parameters;
    Alcotest.test_case "wfq no starvation" `Quick test_wfq_no_starvation;
    Alcotest.test_case "vnic oversized tx" `Quick test_vnic_oversized_tx;
  ]
