(* Device-level gray-failure injection: plan determinism, each fault
   site surfacing as a typed event at its device boundary, and the
   security checks the chaos layer leans on — a bit flip during image
   staging must change the measurement and fail attestation, never run. *)

open Nicsim

let mb = 1 lsl 20

(* ---------- plan mechanics ---------- *)

let test_plan_determinism () =
  let script plan =
    let hits = ref [] in
    for i = 0 to 199 do
      let site = List.nth Faults.all_sites (i mod List.length Faults.all_sites) in
      if Faults.roll plan site then begin
        let d = Faults.draw_int plan 256 in
        ignore (Faults.record plan ~device:"t" site ~detail:(string_of_int d));
        hits := (i, d) :: !hits
      end
    done;
    (!hits, Faults.log_to_string plan, Faults.total plan)
  in
  let a = script (Faults.plan ~seed:7 (Faults.storm ())) in
  let b = script (Faults.plan ~seed:7 (Faults.storm ())) in
  Alcotest.(check bool) "same seed: same firings, same log" true (a = b);
  let _, log_a, total_a = a in
  Alcotest.(check bool) "the storm actually fired" true (total_a > 0);
  let _, log_c, _ = script (Faults.plan ~seed:8 (Faults.storm ())) in
  Alcotest.(check bool) "different seed: different log" false (String.equal log_a log_c)

let test_rate_endpoints () =
  let off = Faults.plan ~seed:3 Faults.none in
  for _ = 1 to 50 do
    List.iter
      (fun s -> Alcotest.(check bool) "rate 0 never fires" false (Faults.roll off s))
      Faults.all_sites
  done;
  Alcotest.(check int) "no events recorded" 0 (Faults.total off);
  let on = Faults.plan ~seed:3 (Faults.storm ~intensity:1e9 ()) in
  List.iter
    (fun s -> Alcotest.(check bool) "saturated rate always fires" true (Faults.roll on s))
    Faults.all_sites;
  (* A rate-0.0 site consumes no randomness, so arming one site does not
     perturb the schedule of the others. *)
  let p1 = Faults.plan ~seed:11 { Faults.none with Faults.rx_drop = 0.5 } in
  let p2 = Faults.plan ~seed:11 { Faults.none with Faults.rx_drop = 0.5 } in
  ignore (Faults.roll p1 Faults.Dma_error);
  ignore (Faults.roll p1 Faults.Bus_timeout);
  Alcotest.(check bool) "zero-rate rolls consumed no randomness" true
    (Faults.roll p1 Faults.Rx_drop = Faults.roll p2 Faults.Rx_drop);
  Alcotest.(check int) "draw streams still aligned" (Faults.draw_int p1 1000) (Faults.draw_int p2 1000)

(* ---------- DMA faults ---------- *)

let make_dma () =
  let nic = Physmem.create ~size:(4 * mb) and host = Physmem.create ~size:(4 * mb) in
  (Dma.create ~nic_mem:nic ~host_mem:host ~banks:1, nic, host)

let bit_diff a b =
  let n = ref 0 in
  String.iteri
    (fun i ca ->
      let x = Char.code ca lxor Char.code b.[i] in
      for bit = 0 to 7 do
        if x land (1 lsl bit) <> 0 then incr n
      done)
    a;
  !n

let test_dma_error_typed () =
  let d, _, host = make_dma () in
  Physmem.write_bytes host ~pos:0 "twelve bytes";
  let plan = Faults.plan ~seed:1 { Faults.none with Faults.dma_error = 1.0 } in
  Dma.set_faults d plan;
  (match Dma.transfer ~checked:false d ~bank:0 ~direction:Dma.To_nic ~nic_addr:0x1000 ~host_addr:0 ~len:12 with
  | Error (Dma.Fault ev) -> Alcotest.(check bool) "typed site" true (ev.Faults.site = Faults.Dma_error)
  | Error (Dma.Violation v) -> Alcotest.fail v
  | Ok () -> Alcotest.fail "fault did not surface");
  Alcotest.(check int) "logged" 1 (Faults.count plan Faults.Dma_error)

let test_dma_stall_accrues () =
  let d, _, host = make_dma () in
  Physmem.write_bytes host ~pos:0 "twelve bytes";
  Dma.set_faults d (Faults.plan ~seed:2 { Faults.none with Faults.dma_stall = 1.0 });
  (match Dma.transfer ~checked:false d ~bank:0 ~direction:Dma.To_nic ~nic_addr:0x1000 ~host_addr:0 ~len:12 with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Dma.error_to_string e));
  Alcotest.(check bool) "stall cycles accrued" true (Dma.stall_cycles d >= 1_000)

let test_dma_corrupt_flips_one_bit () =
  let d, nic, host = make_dma () in
  let payload = "staged-image-payload-0123456789" in
  Physmem.write_bytes host ~pos:0 payload;
  let plan = Faults.plan ~seed:5 { Faults.none with Faults.dma_corrupt = 1.0 } in
  Dma.set_faults d plan;
  (match
     Dma.transfer ~checked:false d ~bank:0 ~direction:Dma.To_nic ~nic_addr:0x1000 ~host_addr:0
       ~len:(String.length payload)
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Dma.error_to_string e));
  let landed = Physmem.read_bytes nic ~pos:0x1000 ~len:(String.length payload) in
  Alcotest.(check int) "exactly one bit flipped in flight" 1 (bit_diff payload landed);
  Alcotest.(check int) "logged" 1 (Faults.count plan Faults.Dma_corrupt)

(* ---------- accelerator faults ---------- *)

let test_accel_hang_horizon () =
  let a = Accel.create ~kind:Accel.Dpi ~threads:16 ~cluster_size:4 in
  Accel.set_faults a (Faults.plan ~seed:2 { Faults.none with Faults.accel_hang = 1.0 });
  let done_at = Accel.submit_any a ~now:0 ~bytes:64 in
  Alcotest.(check bool) "completion pushed past the hang horizon" true (done_at >= Accel.hang_horizon);
  (* The watchdog budget must sit far below the horizon (and far above an
     honest request) for hang detection to be meaningful. *)
  Alcotest.(check bool) "watchdog budget below horizon" true
    (Fleet.Supervisor.default_config.Fleet.Supervisor.watchdog_budget < Accel.hang_horizon)

let test_accel_garbage_flag () =
  let a = Accel.create ~kind:Accel.Zip ~threads:16 ~cluster_size:4 in
  Accel.set_faults a (Faults.plan ~seed:3 { Faults.none with Faults.accel_garbage = 1.0 });
  let done_at = Accel.submit_any a ~now:0 ~bytes:64 in
  Alcotest.(check bool) "completes on time" true (done_at < Accel.hang_horizon);
  Alcotest.(check bool) "garbage flagged" true (Accel.take_garbage a);
  Alcotest.(check bool) "flag cleared by take" false (Accel.take_garbage a)

(* ---------- packet IO faults ---------- *)

let udp_frame ?(dport = 9000) () =
  let p =
    Net.Packet.make ~src_ip:(Net.Ipv4_addr.of_string "10.0.0.1") ~dst_ip:(Net.Ipv4_addr.of_string "10.0.0.2")
      ~proto:Net.Packet.Udp ~src_port:1111 ~dst_port:dport "payload!"
  in
  Net.Packet.serialize p

let make_pktio () =
  let m = Physmem.create ~size:(32 * mb) in
  let a = Alloc.init m ~base:0x10000 ~heap_base:(16 * mb) ~heap_size:(16 * mb) ~max_entries:256 in
  (m, Pktio.create m a ~rx_buffer_bytes:(2 * mb) ~tx_buffer_bytes:(2 * mb))

let test_pktio_rx_drop () =
  let _, io = make_pktio () in
  ignore (Pktio.reserve io ~nf:0 ~rx_bytes:65536 ~tx_bytes:65536);
  Pktio.add_rule io ~m:{ Pktio.match_any with dst_port = Some 9000 } ~nf:0;
  let plan = Faults.plan ~seed:4 { Faults.none with Faults.rx_drop = 1.0 } in
  Pktio.set_faults io plan;
  (match Pktio.deliver io (udp_frame ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "injected RX drop did not drop");
  Alcotest.(check int) "counted as a drop" 1 (Pktio.drop_count io);
  Alcotest.(check int) "nothing queued" 0 (Pktio.rx_depth io ~nf:0);
  Alcotest.(check int) "logged" 1 (Faults.count plan Faults.Rx_drop)

let test_pktio_rx_corrupt () =
  let m, io = make_pktio () in
  ignore (Pktio.reserve io ~nf:0 ~rx_bytes:65536 ~tx_bytes:65536);
  Pktio.add_rule io ~m:{ Pktio.match_any with dst_port = Some 9000 } ~nf:0;
  let plan = Faults.plan ~seed:5 { Faults.none with Faults.rx_corrupt = 1.0 } in
  Pktio.set_faults io plan;
  (match Pktio.deliver io (udp_frame ()) with
  | Ok nf -> Alcotest.(check int) "still routed" 0 nf
  | Error e -> Alcotest.fail e);
  (match Pktio.rx_pop io ~nf:0 with
  | Some (addr, len) ->
    let landed = Physmem.read_bytes m ~pos:addr ~len in
    Alcotest.(check int) "exactly one bit flipped at ingress" 1 (bit_diff (Bytes.to_string (udp_frame ())) landed)
  | None -> Alcotest.fail "no descriptor");
  Alcotest.(check int) "logged" 1 (Faults.count plan Faults.Rx_corrupt)

let test_pktio_tx_drop () =
  let _, io = make_pktio () in
  ignore (Pktio.reserve io ~nf:0 ~rx_bytes:65536 ~tx_bytes:65536);
  Pktio.add_rule io ~m:{ Pktio.match_any with dst_port = Some 9000 } ~nf:0;
  let plan = Faults.plan ~seed:6 { Faults.none with Faults.tx_drop = 1.0 } in
  Pktio.set_faults io plan;
  (match Pktio.deliver io (udp_frame ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Pktio.rx_pop io ~nf:0 with
  | Some (addr, len) -> Pktio.transmit io ~nf:0 ~addr ~len
  | None -> Alcotest.fail "no descriptor");
  Alcotest.(check int) "frame eaten before the wire" 0 (List.length (Pktio.wire_out io));
  Alcotest.(check int) "counted as a drop" 1 (Pktio.drop_count io);
  Alcotest.(check int) "logged" 1 (Faults.count plan Faults.Tx_drop)

(* ---------- bus and DRAM faults ---------- *)

let test_bus_timeout () =
  let bus = Bus.create ~policy:Bus.Free_for_all ~clients:2 in
  let plan = Faults.plan ~seed:7 { Faults.none with Faults.bus_timeout = 1.0 } in
  Bus.set_faults bus plan;
  let done_at = Bus.request bus ~client:0 ~now:0 ~cost:8 in
  Alcotest.(check bool) "stalled past the timeout penalty" true (done_at >= Bus.timeout_penalty);
  Alcotest.(check int) "logged" 1 (Faults.count plan Faults.Bus_timeout)

let test_flip_bit () =
  let m = Physmem.create ~size:mb in
  Physmem.write_u8 m 100 0x55;
  Physmem.flip_bit m ~pos:100 ~bit:1;
  Alcotest.(check int) "bit 1 flipped" 0x57 (Physmem.read_u8 m 100);
  Physmem.flip_bit m ~pos:100 ~bit:1;
  Alcotest.(check int) "flip is an involution" 0x55 (Physmem.read_u8 m 100);
  Alcotest.check_raises "bit index validated" (Invalid_argument "Physmem.flip_bit: bit must be in 0..7")
    (fun () -> Physmem.flip_bit m ~pos:100 ~bit:8)

(* ---------- the control-plane result path ---------- *)

let test_stage_fault_typed () =
  let api = Snic.Api.boot () in
  Machine.set_faults (Snic.Api.machine api) (Faults.plan ~seed:4 { Faults.none with Faults.dma_error = 1.0 });
  match Snic.Api.nf_create_r api { Snic.Instructions.default_config with image = "img" } with
  | Error (Snic.Api.Stage_fault ev) ->
    Alcotest.(check bool) "typed DMA fault on the staging path" true (ev.Faults.site = Faults.Dma_error)
  | Error e -> Alcotest.fail (Snic.Api.create_error_to_string e)
  | Ok _ -> Alcotest.fail "staging over a failing DMA engine must not succeed"

(* The headline security invariant: a bit flip while the image is staged
   changes the measured state, so the Appendix A handshake (verifying
   against the measurement the tenant expects) rejects the function —
   corruption downgrades to unavailability, never to running wrong code. *)
let test_corrupt_staging_fails_attestation () =
  let expected (cfg : Snic.Instructions.launch_config) (h : Snic.Instructions.handle) =
    Snic.Measurement.of_config ~image:cfg.Snic.Instructions.image ~cores:h.Snic.Instructions.cores
      ~mem_base:h.Snic.Instructions.mem_base ~mem_len:h.Snic.Instructions.mem_len
      ~rules:cfg.Snic.Instructions.rules ~accels:cfg.Snic.Instructions.accels
      ~rx_bytes:cfg.Snic.Instructions.rx_bytes ~tx_bytes:cfg.Snic.Instructions.tx_bytes
      ~sched:cfg.Snic.Instructions.sched
  in
  let cfg = { Snic.Instructions.default_config with image = "attested-image-payload" } in
  let api = Snic.Api.boot () in
  (* Clean staging: the hardware measurement matches the verifier's. *)
  (match Snic.Api.nf_create_r api cfg with
  | Ok vnic ->
    let h = Snic.Vnic.handle vnic in
    Alcotest.(check string) "clean staging measures as expected" (expected cfg h)
      h.Snic.Instructions.measurement;
    ignore (Snic.Api.nf_destroy api ~id:h.Snic.Instructions.id)
  | Error e -> Alcotest.fail (Snic.Api.create_error_to_string e));
  (* Corrupted staging: measurement differs and the handshake refuses. *)
  Machine.set_faults (Snic.Api.machine api) (Faults.plan ~seed:6 { Faults.none with Faults.dma_corrupt = 1.0 });
  match Snic.Api.nf_create_r api cfg with
  | Error e -> Alcotest.fail (Snic.Api.create_error_to_string e)
  | Ok vnic -> (
    let h = Snic.Vnic.handle vnic in
    Alcotest.(check bool) "corrupt image measures differently" false
      (String.equal (expected cfg h) h.Snic.Instructions.measurement);
    match Snic.Attestation.attester_of_nf (Snic.Api.instructions api) ~id:h.Snic.Instructions.id with
    | Error e -> Alcotest.fail (Snic.Instructions.error_to_string e)
    | Ok attester ->
      let rng = Random.State.make [| 99 |] in
      let result =
        Snic.Session.handshake rng
          ~vendor_public:(Snic.Identity.vendor_public (Snic.Api.vendor api))
          ~expected_measurement:(expected cfg h) attester
      in
      Alcotest.(check bool) "handshake rejects the corrupted function" true (Result.is_error result))

let suite =
  [
    Alcotest.test_case "plan determinism" `Quick test_plan_determinism;
    Alcotest.test_case "rate endpoints and stream isolation" `Quick test_rate_endpoints;
    Alcotest.test_case "DMA error is typed" `Quick test_dma_error_typed;
    Alcotest.test_case "DMA stall accrues cycles" `Quick test_dma_stall_accrues;
    Alcotest.test_case "DMA corruption flips one bit" `Quick test_dma_corrupt_flips_one_bit;
    Alcotest.test_case "accelerator hang horizon" `Quick test_accel_hang_horizon;
    Alcotest.test_case "accelerator garbage flag" `Quick test_accel_garbage_flag;
    Alcotest.test_case "pktio RX drop" `Quick test_pktio_rx_drop;
    Alcotest.test_case "pktio RX corruption" `Quick test_pktio_rx_corrupt;
    Alcotest.test_case "pktio TX drop" `Quick test_pktio_tx_drop;
    Alcotest.test_case "bus timeout" `Quick test_bus_timeout;
    Alcotest.test_case "DRAM flip_bit" `Quick test_flip_bit;
    Alcotest.test_case "staging fault is typed on nf_create" `Quick test_stage_fault_typed;
    Alcotest.test_case "corrupt staging fails attestation" `Quick test_corrupt_staging_fails_attestation;
  ]
