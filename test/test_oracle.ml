(* Tests for lib/oracle: the model-based isolation oracle.

   The load-bearing claims, each checked here:
   - campaigns are deterministic and replay byte-identically from a seed
     or a dumped trace file;
   - the flat reference model never disagrees with the machine (zero
     model-mismatch in every mode — the differential core);
   - every commodity mode reproduces its §3.3 violation classes and
     S-NIC reproduces none;
   - the shrinker reduces a seeded violation to a minimal trace that
     still replays to the same violation key;
   - the op codec round-trips and rejects garbage without raising. *)

open Oracle

let commodity_modes =
  [
    Nicsim.Machine.Liquidio_se_s;
    Nicsim.Machine.Liquidio_se_um { nf_xkphys = false };
    Nicsim.Machine.Liquidio_se_um { nf_xkphys = true };
    Nicsim.Machine.Agilio;
    Nicsim.Machine.Bluefield;
  ]

let classes_of (r : Campaign.report) =
  List.sort_uniq compare (List.map (fun (v : Refmodel.violation) -> v.cls) r.Campaign.violations)

(* ---------- op codec ---------- *)

let arbitrary_op =
  QCheck.make
    ~print:(fun op -> Op.to_line op)
    (QCheck.Gen.map
       (fun seed ->
         let rng = Trace.Rng.create ~seed in
         Op.gen rng ~slots:Campaign.default_slots)
       QCheck.Gen.int)

let op_roundtrip =
  QCheck.Test.make ~name:"op to_line |> of_line = Ok op" ~count:2000 arbitrary_op (fun op ->
      match Op.of_line (Op.to_line op) with
      | Ok op' -> Op.equal op op'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let test_of_line_rejects () =
  List.iter
    (fun line ->
      match Op.of_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "of_line accepted garbage: %S" line)
    [
      "";
      "frobnicate slot=0";
      "launch";
      "launch slot=0 kb=4 accel=0";
      "launch slot=0 kb=4 accel=0 rules=0 rules=1";
      "launch slot=0 kb=4 accel=0 rules=0 extra=9";
      "launch slot=zero kb=4 accel=0 rules=0";
      "launch slot=0 kb=0 accel=0 rules=0";
      "read actor=os target=0 space=warp off=0 len=8";
      "read actor=both target=0 space=phys off=0 len=8";
      "write actor=os target=0 space=phys off=0 len=8 byte=0";
      "write actor=os target=0 space=phys off=0 len=0 byte=7";
      "mmio actor=0 target=0 reg=lever value=1";
      "dma actor=0 target=0 dir=sideways off=0 len=8";
      "teardown slot=";
      "launch slot=0 kb=4 accel=0 rules=0 trailing junk";
    ]

(* ---------- determinism + replay ---------- *)

let test_seed_determinism () =
  let mode = Nicsim.Machine.Agilio in
  let a = Campaign.run ~mode ~ops:3000 ~seed:7 () in
  let b = Campaign.run ~mode ~ops:3000 ~seed:7 () in
  Alcotest.(check string) "reports byte-identical" (Campaign.to_string a) (Campaign.to_string b);
  Alcotest.(check int) "violation count" (List.length a.Campaign.violations) (List.length b.Campaign.violations);
  let c = Campaign.run ~mode ~ops:3000 ~seed:8 () in
  Alcotest.(check bool) "different seed differs" true (Campaign.to_string a <> Campaign.to_string c)

let test_trace_file_roundtrip () =
  let mode = Nicsim.Machine.Liquidio_se_s in
  let ops = Campaign.gen_ops ~slots:4 ~ops:500 ~seed:11 () in
  let text = Campaign.trace_to_string ~mode ~slots:4 ops in
  match Campaign.trace_of_string text with
  | Error e -> Alcotest.failf "trace_of_string failed: %s" e
  | Ok (mode', slots', ops') ->
    Alcotest.(check bool) "mode preserved" true (mode' = mode);
    Alcotest.(check int) "slots preserved" 4 slots';
    Alcotest.(check bool) "ops preserved" true (List.for_all2 Op.equal ops ops');
    let direct = Campaign.replay ~slots:4 ~mode ops in
    let replayed = Campaign.replay ~slots:slots' ~mode:mode' ops' in
    Alcotest.(check string) "replay byte-identical" (Campaign.to_string direct) (Campaign.to_string replayed)

let test_trace_of_string_rejects () =
  List.iter
    (fun text ->
      match Campaign.trace_of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "trace_of_string accepted: %S" text)
    [
      "";
      "launch slot=0 kb=4 accel=0 rules=0\n";
      "mode warp9\nlaunch slot=0 kb=4 accel=0 rules=0\n";
      "mode snic\nslots 99\n";
      "mode snic\nfrobnicate slot=0\n";
    ]

(* ---------- the differential core ---------- *)

let test_no_model_mismatch_any_mode () =
  List.iter
    (fun mode ->
      let r = Campaign.run ~mode ~ops:5000 ~seed:42 () in
      let mismatches =
        List.filter (fun (v : Refmodel.violation) -> v.cls = Refmodel.Model_mismatch) r.Campaign.violations
      in
      Alcotest.(check int)
        (Printf.sprintf "%s: zero model-mismatch" (Campaign.mode_id mode))
        0 (List.length mismatches))
    Campaign.all_modes

let test_snic_clean () =
  List.iter
    (fun seed ->
      let r = Campaign.run ~mode:Nicsim.Machine.Snic ~ops:5000 ~seed () in
      Alcotest.(check int) (Printf.sprintf "snic seed %d clean" seed) 0 (List.length r.Campaign.violations))
    [ 1; 42; 1337 ]

let test_commodity_classes () =
  (* Violation classes each commodity mode must reproduce at 5k ops with
     the pinned seed; what is absent matters as much as what fires. *)
  let module M = Nicsim.Machine in
  let expectations =
    [
      ( M.Liquidio_se_s,
        [
          Refmodel.Cross_tenant_read;
          Refmodel.Cross_tenant_write;
          Refmodel.Os_read_nf;
          Refmodel.Accel_hijack;
          Refmodel.Scrub_residue;
          Refmodel.Stale_translation;
        ] );
      ( M.Liquidio_se_um { nf_xkphys = false },
        (* NF physical access is blocked without xkphys; the OS-driven and
           hygiene classes remain (plus cross-tenant via unchecked DMA). *)
        [
          Refmodel.Cross_tenant_read;
          Refmodel.Cross_tenant_write;
          Refmodel.Os_read_nf;
          Refmodel.Scrub_residue;
          Refmodel.Stale_translation;
        ] );
      ( M.Liquidio_se_um { nf_xkphys = true },
        [
          Refmodel.Cross_tenant_read;
          Refmodel.Cross_tenant_write;
          Refmodel.Os_read_nf;
          Refmodel.Accel_hijack;
          Refmodel.Scrub_residue;
          Refmodel.Stale_translation;
        ] );
      ( M.Agilio,
        [
          Refmodel.Cross_tenant_read;
          Refmodel.Cross_tenant_write;
          Refmodel.Os_read_nf;
          Refmodel.Accel_hijack;
          Refmodel.Scrub_residue;
          Refmodel.Stale_translation;
        ] );
      ( M.Bluefield,
        (* TrustZone stops NF raw access and MMIO hijack, but the secure
           NIC OS snoops freely and DMA is unchecked. *)
        [
          Refmodel.Cross_tenant_read;
          Refmodel.Cross_tenant_write;
          Refmodel.Os_read_nf;
          Refmodel.Scrub_residue;
          Refmodel.Stale_translation;
        ] );
    ]
  in
  List.iter
    (fun (mode, expected) ->
      let r = Campaign.run ~mode ~ops:5000 ~seed:42 () in
      let got = classes_of r in
      Alcotest.(check (list string))
        (Campaign.mode_id mode)
        (List.map Refmodel.cls_to_string (List.sort compare expected))
        (List.map Refmodel.cls_to_string got))
    expectations

(* ---------- shrinking ---------- *)

let test_shrinker_minimizes () =
  let mode = Nicsim.Machine.Liquidio_se_s in
  let ops = Campaign.gen_ops ~slots:Campaign.default_slots ~ops:2000 ~seed:42 () in
  let r = Campaign.replay ~mode ops in
  match List.rev r.Campaign.violations with
  | [] -> Alcotest.fail "seeded campaign produced no violation to shrink"
  | v :: _ ->
    let small = Shrink.minimize ~mode ops v in
    Alcotest.(check bool)
      (Printf.sprintf "shrunk to %d ops (<= 10)" (List.length small))
      true
      (List.length small <= 10);
    let key = Refmodel.key v in
    let r' = Campaign.replay ~mode small in
    Alcotest.(check bool) "shrunk trace reproduces the violation key" true
      (List.exists (fun v' -> String.equal (Refmodel.key v') key) r'.Campaign.violations);
    (* Byte-identical reproduction: replaying the shrunk trace twice
       gives the same report. *)
    Alcotest.(check string) "shrunk replay deterministic"
      (Campaign.to_string r')
      (Campaign.to_string (Campaign.replay ~mode small))

(* ---------- canonical attack replays ---------- *)

let test_replays_commodity_vs_snic () =
  (* Every canonical trace must fail to reproduce on S-NIC, and must
     reproduce on at least one commodity mode. *)
  List.iter
    (fun (r : Attacks.Replays.replay) ->
      Alcotest.(check bool)
        (r.name ^ " blocked on snic")
        false
        (Attacks.Replays.reproduces Nicsim.Machine.Snic r);
      Alcotest.(check bool)
        (r.name ^ " reproduces on some commodity mode")
        true
        (List.exists (fun m -> Attacks.Replays.reproduces m r) commodity_modes))
    Attacks.Replays.all

let test_replays_agree_with_imperative_attacks () =
  (* The oracle trace and the hand-written attack must agree mode by
     mode. packet-corruption diverges on BlueField by design: the
     imperative attack flips an unsecured normal-world packet buffer,
     while the oracle trace writes the victim's secure-marked region. *)
  let get name = match Attacks.Replays.find name with Some r -> r | None -> Alcotest.failf "missing replay %s" name in
  let check_agreement name imperative ~except =
    let r = get name in
    List.iter
      (fun mode ->
        if not (List.mem mode except) then
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s" name (Nicsim.Machine.mode_name mode))
            (imperative mode).Attacks.succeeded
            (Attacks.Replays.reproduces mode r))
      (commodity_modes @ [ Nicsim.Machine.Snic ])
  in
  check_agreement "ruleset-stealing" Attacks.ruleset_stealing ~except:[];
  check_agreement "accel-hijack" Attacks.accel_hijack ~except:[];
  check_agreement "packet-corruption" Attacks.packet_corruption ~except:[ Nicsim.Machine.Bluefield ]

let suite =
  [
    QCheck_alcotest.to_alcotest op_roundtrip;
    Alcotest.test_case "of_line rejects garbage" `Quick test_of_line_rejects;
    Alcotest.test_case "seed determinism" `Quick test_seed_determinism;
    Alcotest.test_case "trace file round-trip" `Quick test_trace_file_roundtrip;
    Alcotest.test_case "trace_of_string rejects garbage" `Quick test_trace_of_string_rejects;
    Alcotest.test_case "zero model-mismatch in every mode" `Quick test_no_model_mismatch_any_mode;
    Alcotest.test_case "snic campaigns are clean" `Quick test_snic_clean;
    Alcotest.test_case "commodity modes reproduce their classes" `Quick test_commodity_classes;
    Alcotest.test_case "shrinker minimizes to <= 10 ops" `Quick test_shrinker_minimizes;
    Alcotest.test_case "canonical replays: commodity vs snic" `Quick test_replays_commodity_vs_snic;
    Alcotest.test_case "replays agree with imperative attacks" `Quick test_replays_agree_with_imperative_attacks;
  ]
