type tenant_stats = {
  mutable placements : int;
  mutable attest_failures : int;
  mutable evictions : int;
  mutable received : int;
  mutable forwarded : int;
  mutable dropped : int;
  mutable faults : int;
}

type nic_stats = {
  mutable hosted : int;
  mutable lost : int;
  mutable scrubs_verified : int;
  mutable injected : int;
}

type t = {
  tenants : (int, tenant_stats) Hashtbl.t;
  nics : (int, nic_stats) Hashtbl.t;
  mutable placement_failures : int;
  mutable replacements : int;
  mutable nic_kills : int;
  mutable nf_kills : int;
  mutable attest_ms : float;
  mutable retries : int;
  mutable quarantines : int;
  mutable readmissions : int;
  mutable watchdog_failovers : int;
  mutable health_probes : int;
  mutable probe_failures : int;
}

let create () =
  {
    tenants = Hashtbl.create 64;
    nics = Hashtbl.create 16;
    placement_failures = 0;
    replacements = 0;
    nic_kills = 0;
    nf_kills = 0;
    attest_ms = 0.;
    retries = 0;
    quarantines = 0;
    readmissions = 0;
    watchdog_failovers = 0;
    health_probes = 0;
    probe_failures = 0;
  }

let tenant t id =
  match Hashtbl.find_opt t.tenants id with
  | Some s -> s
  | None ->
    let s = { placements = 0; attest_failures = 0; evictions = 0; received = 0; forwarded = 0; dropped = 0; faults = 0 } in
    Hashtbl.replace t.tenants id s;
    s

let nic t id =
  match Hashtbl.find_opt t.nics id with
  | Some s -> s
  | None ->
    let s = { hosted = 0; lost = 0; scrubs_verified = 0; injected = 0 } in
    Hashtbl.replace t.nics id s;
    s

let placement_failure t = t.placement_failures <- t.placement_failures + 1
let replacement t = t.replacements <- t.replacements + 1
let nic_kill t = t.nic_kills <- t.nic_kills + 1
let nf_kill t = t.nf_kills <- t.nf_kills + 1
let add_attest_ms t ms = t.attest_ms <- t.attest_ms +. ms
let retry t = t.retries <- t.retries + 1
let quarantine t = t.quarantines <- t.quarantines + 1
let readmission t = t.readmissions <- t.readmissions + 1
let watchdog_failover t = t.watchdog_failovers <- t.watchdog_failovers + 1
let health_probe t = t.health_probes <- t.health_probes + 1
let probe_failure t = t.probe_failures <- t.probe_failures + 1
let placement_failures t = t.placement_failures
let replacements t = t.replacements
let nic_kills t = t.nic_kills
let nf_kills t = t.nf_kills
let attest_ms_total t = t.attest_ms
let retries t = t.retries
let quarantines t = t.quarantines
let readmissions t = t.readmissions
let watchdog_failovers t = t.watchdog_failovers
let health_probes t = t.health_probes
let probe_failures t = t.probe_failures

let sum_tenants t f = Hashtbl.fold (fun _ s acc -> acc + f s) t.tenants 0
let total_attests t = sum_tenants t (fun s -> s.placements)
let total_forwarded t = sum_tenants t (fun s -> s.forwarded)
let total_dropped t = sum_tenants t (fun s -> s.dropped)

let sorted_bindings tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let tenants_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "tenant,placements,attest_failures,evictions,received,forwarded,dropped,faults\n";
  List.iter
    (fun (id, s) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d,%d,%d,%d,%d\n" id s.placements s.attest_failures s.evictions s.received
           s.forwarded s.dropped s.faults))
    (sorted_bindings t.tenants);
  Buffer.contents buf

let nics_csv t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "nic,hosted,lost,scrubs_verified,injected\n";
  List.iter
    (fun (id, s) ->
      Buffer.add_string buf (Printf.sprintf "%d,%d,%d,%d,%d\n" id s.hosted s.lost s.scrubs_verified s.injected))
    (sorted_bindings t.nics);
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"fleet\": {\"placement_failures\": %d, \"replacements\": %d, \"nic_kills\": %d, \"nf_kills\": %d, \
        \"attest_ms\": %.3f, \"retries\": %d, \"quarantines\": %d, \"readmissions\": %d, \
        \"watchdog_failovers\": %d, \"health_probes\": %d, \"probe_failures\": %d},\n"
       t.placement_failures t.replacements t.nic_kills t.nf_kills t.attest_ms t.retries t.quarantines t.readmissions
       t.watchdog_failovers t.health_probes t.probe_failures);
  Buffer.add_string buf "  \"tenants\": [\n";
  let tenants = sorted_bindings t.tenants in
  List.iteri
    (fun i (id, s) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"tenant\": %d, \"placements\": %d, \"attest_failures\": %d, \"evictions\": %d, \"received\": %d, \
            \"forwarded\": %d, \"dropped\": %d, \"faults\": %d}%s\n"
           id s.placements s.attest_failures s.evictions s.received s.forwarded s.dropped s.faults
           (if i = List.length tenants - 1 then "" else ",")))
    tenants;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"nics\": [\n";
  let nics = sorted_bindings t.nics in
  List.iteri
    (fun i (id, s) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"nic\": %d, \"hosted\": %d, \"lost\": %d, \"scrubs_verified\": %d, \"injected\": %d}%s\n"
           id s.hosted s.lost s.scrubs_verified s.injected
           (if i = List.length nics - 1 then "" else ",")))
    nics;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf
