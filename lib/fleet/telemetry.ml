type tenant_stats = {
  mutable placements : int;
  mutable attest_failures : int;
  mutable evictions : int;
  mutable received : int;
  mutable forwarded : int;
  mutable dropped : int;
  mutable faults : int;
}

type nic_stats = {
  mutable hosted : int;
  mutable lost : int;
  mutable scrubs_verified : int;
  mutable injected : int;
}

(* Fleet-wide counters live in a shared Obs.Metrics registry (the same
   one the trace sink uses when the run records a trace), so one
   Prometheus dump covers control-plane and device metrics.  Per-tenant
   and per-NIC stats stay as plain records: they are labelled series the
   CSV/JSON exporters own. *)
type t = {
  tenants : (int, tenant_stats) Hashtbl.t;
  nics : (int, nic_stats) Hashtbl.t;
  registry : Obs.Metrics.registry;
  placement_failures : Obs.Metrics.counter;
  replacements : Obs.Metrics.counter;
  nic_kills : Obs.Metrics.counter;
  nf_kills : Obs.Metrics.counter;
  attest_ms : Obs.Metrics.histogram;
  retries : Obs.Metrics.counter;
  quarantines : Obs.Metrics.counter;
  readmissions : Obs.Metrics.counter;
  watchdog_failovers : Obs.Metrics.counter;
  health_probes : Obs.Metrics.counter;
  probe_failures : Obs.Metrics.counter;
  tenant_quarantines : Obs.Metrics.counter;
  tenant_readmissions : Obs.Metrics.counter;
  slo_violations : Obs.Metrics.counter;
}

let create ?registry () =
  let reg = match registry with Some r -> r | None -> Obs.Metrics.create_registry () in
  let c name help = Obs.Metrics.counter ~help reg name in
  {
    tenants = Hashtbl.create 64;
    nics = Hashtbl.create 16;
    registry = reg;
    placement_failures = c "fleet_placement_failures_total" "placements that exhausted every NIC";
    replacements = c "fleet_replacements_total" "evicted tenants re-homed on another NIC";
    nic_kills = c "fleet_nic_kills_total" "whole-NIC failures injected";
    nf_kills = c "fleet_nf_kills_total" "single-NF failures injected";
    attest_ms =
      Obs.Metrics.histogram ~help:"modeled attestation latency per placement" reg "fleet_attest_ms";
    retries = c "fleet_retries_total" "placement retries burned by the supervisor";
    quarantines = c "fleet_quarantines_total" "circuit-breaker trips";
    readmissions = c "fleet_readmissions_total" "NICs readmitted on probation";
    watchdog_failovers = c "fleet_watchdog_failovers_total" "accelerator watchdog failovers";
    health_probes = c "fleet_health_probes_total" "active health probes issued";
    probe_failures = c "fleet_probe_failures_total" "active health probes that failed";
    tenant_quarantines = c "fleet_tenant_quarantines_total" "noisy tenants drained on sustained SLO violation";
    tenant_readmissions = c "fleet_tenant_readmissions_total" "quarantined tenants readmitted on probation";
    slo_violations = c "fleet_slo_violations_total" "per-round tenant SLO violations reported to the supervisor";
  }

let registry t = t.registry
let prometheus t = Obs.Metrics.prometheus t.registry

let tenant t id =
  match Hashtbl.find_opt t.tenants id with
  | Some s -> s
  | None ->
    let s = { placements = 0; attest_failures = 0; evictions = 0; received = 0; forwarded = 0; dropped = 0; faults = 0 } in
    Hashtbl.replace t.tenants id s;
    s

let nic t id =
  match Hashtbl.find_opt t.nics id with
  | Some s -> s
  | None ->
    let s = { hosted = 0; lost = 0; scrubs_verified = 0; injected = 0 } in
    Hashtbl.replace t.nics id s;
    s

let placement_failure t = Obs.Metrics.incr t.placement_failures
let replacement t = Obs.Metrics.incr t.replacements
let nic_kill t = Obs.Metrics.incr t.nic_kills
let nf_kill t = Obs.Metrics.incr t.nf_kills
let add_attest_ms t ms = Obs.Metrics.observe t.attest_ms ms
let retry t = Obs.Metrics.incr t.retries
let quarantine t = Obs.Metrics.incr t.quarantines
let readmission t = Obs.Metrics.incr t.readmissions
let watchdog_failover t = Obs.Metrics.incr t.watchdog_failovers
let health_probe t = Obs.Metrics.incr t.health_probes
let probe_failure t = Obs.Metrics.incr t.probe_failures
let tenant_quarantine t = Obs.Metrics.incr t.tenant_quarantines
let tenant_readmission t = Obs.Metrics.incr t.tenant_readmissions
let add_slo_violations t n = Obs.Metrics.add t.slo_violations n
let placement_failures t = Obs.Metrics.value t.placement_failures
let replacements t = Obs.Metrics.value t.replacements
let nic_kills t = Obs.Metrics.value t.nic_kills
let nf_kills t = Obs.Metrics.value t.nf_kills
let attest_ms_total t = Obs.Metrics.hist_sum t.attest_ms
let retries t = Obs.Metrics.value t.retries
let quarantines t = Obs.Metrics.value t.quarantines
let readmissions t = Obs.Metrics.value t.readmissions
let watchdog_failovers t = Obs.Metrics.value t.watchdog_failovers
let health_probes t = Obs.Metrics.value t.health_probes
let probe_failures t = Obs.Metrics.value t.probe_failures
let tenant_quarantines t = Obs.Metrics.value t.tenant_quarantines
let tenant_readmissions t = Obs.Metrics.value t.tenant_readmissions
let slo_violations t = Obs.Metrics.value t.slo_violations

let sum_tenants t f = Hashtbl.fold (fun _ s acc -> acc + f s) t.tenants 0
let total_attests t = sum_tenants t (fun s -> s.placements)
let total_forwarded t = sum_tenants t (fun s -> s.forwarded)
let total_dropped t = sum_tenants t (fun s -> s.dropped)

let sorted_bindings tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let tenants_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "tenant,placements,attest_failures,evictions,received,forwarded,dropped,faults\n";
  List.iter
    (fun (id, s) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d,%d,%d,%d,%d\n" id s.placements s.attest_failures s.evictions s.received
           s.forwarded s.dropped s.faults))
    (sorted_bindings t.tenants);
  Buffer.contents buf

let nics_csv t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "nic,hosted,lost,scrubs_verified,injected\n";
  List.iter
    (fun (id, s) ->
      Buffer.add_string buf (Printf.sprintf "%d,%d,%d,%d,%d\n" id s.hosted s.lost s.scrubs_verified s.injected))
    (sorted_bindings t.nics);
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"fleet\": {\"placement_failures\": %d, \"replacements\": %d, \"nic_kills\": %d, \"nf_kills\": %d, \
        \"attest_ms\": %.3f, \"retries\": %d, \"quarantines\": %d, \"readmissions\": %d, \
        \"watchdog_failovers\": %d, \"health_probes\": %d, \"probe_failures\": %d},\n"
       (placement_failures t) (replacements t) (nic_kills t) (nf_kills t) (attest_ms_total t) (retries t)
       (quarantines t) (readmissions t) (watchdog_failovers t) (health_probes t) (probe_failures t));
  Buffer.add_string buf "  \"tenants\": [\n";
  let tenants = sorted_bindings t.tenants in
  List.iteri
    (fun i (id, s) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"tenant\": %d, \"placements\": %d, \"attest_failures\": %d, \"evictions\": %d, \"received\": %d, \
            \"forwarded\": %d, \"dropped\": %d, \"faults\": %d}%s\n"
           id s.placements s.attest_failures s.evictions s.received s.forwarded s.dropped s.faults
           (if i = List.length tenants - 1 then "" else ",")))
    tenants;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"nics\": [\n";
  let nics = sorted_bindings t.nics in
  List.iteri
    (fun i (id, s) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"nic\": %d, \"hosted\": %d, \"lost\": %d, \"scrubs_verified\": %d, \"injected\": %d}%s\n"
           id s.hosted s.lost s.scrubs_verified s.injected
           (if i = List.length nics - 1 then "" else ",")))
    nics;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf
