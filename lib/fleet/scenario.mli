(** End-to-end seeded fleet scenarios: boot, place + attest, replay
    traffic, inject failures between rounds, recover, and report.

    One [config] fully determines the run — the CLI, the example, the
    benchmarks and the tests all call {!run} with different configs and
    rely on its determinism. *)

type config = {
  seed : int;
  n_nics : int;
  n_tenants : int;
  policy : Policy.t;
  rounds : int; (* traffic rounds; failures strike between them *)
  packets_per_round : int;
  kill_nics : int; (* NIC deaths injected over the whole run *)
  kill_nfs : int; (* orderly NF kills injected over the whole run *)
  bytes_per_mb : int;
}

(** The acceptance scenario: seed 42, 16 NICs, 64 tenants, first-fit,
    3 rounds x 600 packets, 2 NIC kills, 4 NF kills. *)
val default_config : config

type round = { index : int; traffic : Frontend.stats; failures : Failure.report option }

type report = {
  config : config;
  rounds : round list;
  initial_attested : int; (* tenants placed+attested before round 1 *)
  final_attested : int;
  final_unplaced : int;
  unattested_running : int; (* invariant: 0 at end of run *)
  scrub_failures : int; (* invariant: 0 *)
  replacements : int;
  active_nics : int; (* alive NICs hosting at least one NF *)
  alive_nics : int;
}

(** [run ?domains config] — [domains] (default 1) parallelizes the NIC
    boot phase ({!Orchestrator.create}); the report is byte-identical
    for every value. *)
val run : ?domains:int -> config -> report

(** Human-readable multi-line summary. *)
val summary : report -> string

(** Telemetry exports for the run behind [report] are taken from the
    orchestrator; [run_with] returns it alongside the report when the
    caller needs raw counters.  A recording [sink] traces every NIC's
    devices (one Chrome pid per NIC) and shares its metrics registry
    with the fleet telemetry. *)
val run_with : ?sink:Obs.sink -> ?domains:int -> config -> report * Orchestrator.t

(** [run_many ?domains ?record ~shards config] runs [shards] independent
    copies of the scenario, shard [i] re-seeded with
    [Par.Seed.derive ~seed:config.seed ~shard:i], fanned across
    [domains] OCaml domains (default 1; each shard itself runs
    single-domain).  Reports come back in shard order, byte-identical
    for every [domains] value.  With [record] (default false) each shard
    runs under its own recording sink — returned alongside its report —
    whose registries the caller merges via [Obs.Metrics.merge_into]
    (recording sinks must never be shared across domains; see
    PARALLELISM.md). *)
val run_many : ?domains:int -> ?record:bool -> shards:int -> config -> (report * Obs.sink) array
