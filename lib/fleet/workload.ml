type kind = Fw | Dpi | Nat | Lb | Lpm | Mon | Ckf | Synp

let all_kinds = [ Fw; Dpi; Nat; Lb; Lpm; Mon; Ckf; Synp ]

let kind_name = function
  | Fw -> "FW"
  | Dpi -> "DPI"
  | Nat -> "NAT"
  | Lb -> "LB"
  | Lpm -> "LPM"
  | Mon -> "Mon"
  | Ckf -> "CKF"
  | Synp -> "SYNP"

let kind_of_string s =
  match String.uppercase_ascii s with
  | "FW" -> Ok Fw
  | "DPI" -> Ok Dpi
  | "NAT" -> Ok Nat
  | "LB" -> Ok Lb
  | "LPM" -> Ok Lpm
  | "MON" -> Ok Mon
  | "CKF" -> Ok Ckf
  | "SYNP" -> Ok Synp
  | _ -> Error (Printf.sprintf "unknown NF kind %S (want FW|DPI|NAT|LB|LPM|Mon|CKF|SYNP)" s)

let profile k = Memprof.Profiles.find (kind_name k)

type demand = {
  kind : kind;
  mem_bytes : int;
  cores : int;
  accels : (Nicsim.Accel.kind * int) list;
  regions : int list;
}

let demand_of_kind ?(bytes_per_mb = 1024) kind =
  let p = profile kind in
  let mem_bytes = max (16 * 1024) (int_of_float (Memprof.Profiles.total_mb p *. float_of_int bytes_per_mb)) in
  (* Only the DPI tenant claims an accelerator cluster; the other five
     NFs are pure programmable-core workloads (Table 7 profiles only the
     three accelerator engines). *)
  let accels = match kind with Dpi -> [ (Nicsim.Accel.Dpi, 1) ] | _ -> [] in
  { kind; mem_bytes; cores = 1; accels; regions = Memprof.Profiles.regions p }

let tlb_entries d ~page_sizes = Costmodel.Page_packing.entries ~page_sizes d.regions

(* Rule/pattern/route counts far below the §5.1 parameters: a fleet
   builds 64 of these, and the orchestration experiments only need the
   NFs' *behavior*, not their full working sets. *)
let instance_scale = function
  | Fw -> 0.05 (* ~32 rules *)
  | Dpi -> 0.002 (* ~66 patterns *)
  | Lpm -> 0.02 (* ~320 routes *)
  | Ckf | Synp -> 0.05 (* ~2^7-bucket filters *)
  | Nat | Lb | Mon -> 1.0 (* scale-independent builders *)

let nf_instance kind = (Nf.Registry.find (kind_name kind)).Nf.Registry.build ~scale:(instance_scale kind) ()

let kind_of_index i = List.nth all_kinds (i mod List.length all_kinds)
