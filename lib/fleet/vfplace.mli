(** Packing tenant vNICs onto a rack's VF slots.

    Pure planning arithmetic, like [Place] for NFs: given per-NIC VF
    slot capacities and a list of tenant vNICs, produce a deterministic
    assignment of (NIC, VF id) per vNIC, or an error when demand exceeds
    rack capacity.  No machine state is touched. *)

type vnic = { tenant : int; weight : int }
type site = { nic : int; slots : int }
type assignment = { nic : int; vf : int; tenant : int; weight : int }

type policy =
  | Packed  (** first-fit: fill NICs in order — dense, easy to drain *)
  | Spread  (** round-robin over NICs with headroom — smooth load *)

val policy_name : policy -> string
val policy_of_string : string -> (policy, string) result

val capacity : site list -> int
(** Total VF slots across the sites. *)

val pack : policy -> sites:site list -> vnics:vnic list -> (assignment list, string) result
(** Assign every vNIC a (NIC, VF id), in vNIC order.  VF ids count up
    from 0 per NIC.  [Error] when there are more vNICs than slots. *)

val per_nic : assignment list -> (int * assignment list) list
(** Group assignments by NIC id, ascending; within a NIC, original
    order (ascending VF ids). *)

val sites_of_nodes : Node.t list -> site list
(** Sites from live fleet nodes, using each node's current VF headroom. *)
