(** Failure injection with recovery: kill whole NICs or individual NFs
    mid-run, then re-place and re-attest the displaced tenants.

    Two distinct failure shapes, matching the two halves of the paper's
    teardown story:

    - an *NF kill* is an orderly [nf_destroy]: the trusted instruction
      scrubs the function's RAM, and the injector verifies the scrub
      ({!Nicsim.Physmem.is_zero}) before re-placing the tenant;
    - a *NIC kill* is hardware death: no teardown runs, every hosted
      function is simply lost, and the survivors' control plane re-places
      the orphaned tenants on the remaining NICs.  Frames a batched
      inject had already queued on the dead NIC's RX rings are drained
      deterministically (ring order) and accounted as tenant drops —
      never silently lost. *)

type report = {
  nics_requested : int; (* the kill_nics budget as asked for *)
  nfs_requested : int; (* the kill_nfs budget as asked for *)
  nics_killed : int list; (* NIC ids taken down *)
  nfs_killed : int list; (* tenant ids whose NF was destroyed *)
  displaced : int; (* tenants that lost their placement *)
  replaced : int; (* ... and were successfully re-placed + re-attested *)
  stranded : int; (* ... and could not be re-placed *)
  scrub_failures : int; (* must stay 0: RAM found non-zero after teardown *)
  in_flight_drained : int; (* frames drained from dead NICs' RX rings *)
}

(** [inject orch rng ~kill_nics ~kill_nfs] — pick victims with [rng]
    (alive NICs; placed tenants not on a NIC killed this round), kill
    them, recover. Victim choice consumes randomness only from [rng], so
    seeded runs replay identically. Budgets exceeding the alive
    population clamp to it (and negative budgets to 0); compare the
    [*_requested] fields with the victim lists to see the clamping. *)
val inject : Orchestrator.t -> Trace.Rng.t -> kill_nics:int -> kill_nfs:int -> report
