type config = {
  seed : int;
  n_nics : int;
  n_tenants : int;
  policy : Policy.t;
  rounds : int;
  packets_per_round : int;
  kill_nics : int;
  kill_nfs : int;
  bytes_per_mb : int;
}

let default_config =
  {
    seed = 42;
    n_nics = 16;
    n_tenants = 64;
    policy = Policy.First_fit;
    rounds = 3;
    packets_per_round = 600;
    kill_nics = 2;
    kill_nfs = 4;
    bytes_per_mb = 1024;
  }

type round = { index : int; traffic : Frontend.stats; failures : Failure.report option }

type report = {
  config : config;
  rounds : round list;
  initial_attested : int;
  final_attested : int;
  final_unplaced : int;
  unattested_running : int;
  scrub_failures : int;
  replacements : int;
  active_nics : int;
  alive_nics : int;
}

(* Spread the failure budget over the gaps between rounds: a run with R
   rounds has R-1 gaps; gap g gets the g-th share of each budget. *)
let budget_for ~total ~gaps ~gap =
  if gaps <= 0 then if gap = 0 then total else 0
  else (total * (gap + 1) / gaps) - (total * gap / gaps)

let run_with ?(sink = Obs.null) ?(domains = 1) config =
  let orch =
    Orchestrator.create ~sink ~domains
      {
        Orchestrator.seed = config.seed;
        n_nics = config.n_nics;
        n_tenants = config.n_tenants;
        policy = config.policy;
        bytes_per_mb = config.bytes_per_mb;
      }
  in
  let initial_attested = Orchestrator.attested_count orch in
  let fail_rng = Trace.Rng.create ~seed:(config.seed lxor 0xDEAD) in
  let gaps = config.rounds - 1 in
  let rounds = ref [] in
  let scrub_failures = ref 0 in
  for i = 0 to config.rounds - 1 do
    let traffic = Frontend.replay orch ~seed:(config.seed + (131 * i)) ~packets:config.packets_per_round () in
    let failures =
      if i >= gaps then None
      else begin
        let kn = budget_for ~total:config.kill_nics ~gaps ~gap:i in
        let kf = budget_for ~total:config.kill_nfs ~gaps ~gap:i in
        if kn = 0 && kf = 0 then None
        else begin
          let r = Failure.inject orch fail_rng ~kill_nics:kn ~kill_nfs:kf in
          scrub_failures := !scrub_failures + r.Failure.scrub_failures;
          Some r
        end
      end
    in
    rounds := { index = i; traffic; failures } :: !rounds
  done;
  let nodes = Orchestrator.nodes orch in
  let report =
    {
      config;
      rounds = List.rev !rounds;
      initial_attested;
      final_attested = Orchestrator.attested_count orch;
      final_unplaced = Orchestrator.unplaced_count orch;
      unattested_running = Orchestrator.unattested_running orch;
      scrub_failures = !scrub_failures;
      replacements = Telemetry.replacements (Orchestrator.telemetry orch);
      active_nics =
        Array.fold_left (fun acc n -> if Node.alive n && Node.nf_count n > 0 then acc + 1 else acc) 0 nodes;
      alive_nics = Array.fold_left (fun acc n -> if Node.alive n then acc + 1 else acc) 0 nodes;
    }
  in
  (report, orch)

let run ?domains config = fst (run_with ?domains config)

(* Sharded fan-out: shard i is the same scenario with the derived seed,
   on its own rack and (optionally) its own recording sink.  Inner runs
   stay single-domain — the parallelism budget is spent on whole shards,
   which keeps every shard's execution identical to a solo run. *)
let run_many ?(domains = 1) ?(record = false) ~shards config =
  Par.Engine.map_seeded ~domains ~seed:config.seed ~shards (fun ~shard:_ ~seed ->
      let sink = if record then Obs.create () else Obs.null in
      let report, _orch = run_with ~sink { config with seed } in
      (report, sink))

let summary r =
  let b = Buffer.create 1024 in
  Printf.bprintf b "fleet scenario: seed=%d nics=%d tenants=%d policy=%s rounds=%d pkts/round=%d\n" r.config.seed
    r.config.n_nics r.config.n_tenants (Policy.name r.config.policy) r.config.rounds r.config.packets_per_round;
  Printf.bprintf b "  boot: %d/%d tenants placed and attested\n" r.initial_attested r.config.n_tenants;
  List.iter
    (fun round ->
      Printf.bprintf b "  round %d: injected=%d undeliverable=%d forwarded=%d dropped=%d\n" round.index
        round.traffic.Frontend.injected round.traffic.Frontend.undeliverable round.traffic.Frontend.forwarded
        round.traffic.Frontend.dropped;
      match round.failures with
      | None -> ()
      | Some f ->
        Printf.bprintf b "    failures: nics=[%s] nf-tenants=[%s] displaced=%d replaced=%d stranded=%d\n"
          (String.concat ";" (List.map string_of_int f.Failure.nics_killed))
          (String.concat ";" (List.map string_of_int f.Failure.nfs_killed))
          f.Failure.displaced f.Failure.replaced f.Failure.stranded)
    r.rounds;
  Printf.bprintf b "  end: attested=%d unplaced=%d replacements=%d active-nics=%d/%d\n" r.final_attested
    r.final_unplaced r.replacements r.active_nics r.alive_nics;
  Printf.bprintf b "  invariants: unattested-running=%d scrub-failures=%d\n" r.unattested_running r.scrub_failures;
  Buffer.contents b
