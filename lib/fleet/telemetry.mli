(** Per-tenant and per-NIC counters for a fleet run, exportable as CSV
    or JSON.

    The orchestrator, front-end and failure injector all report here;
    nothing in this module touches the simulation, so exporting is pure
    and a seeded run always serializes to byte-identical output (the
    determinism tests diff these exports).

    Fleet-wide counters are backed by an {!Obs.Metrics} registry — pass
    the trace sink's registry to {!create} and one {!prometheus} dump
    covers control-plane counters and device counters alike.  Per-tenant
    and per-NIC stats remain plain records serialized by the CSV/JSON
    exporters. *)

type tenant_stats = {
  mutable placements : int; (* successful nf_create+attest cycles *)
  mutable attest_failures : int;
  mutable evictions : int; (* NF lost to a NIC/NF failure *)
  mutable received : int; (* packets its NF drained *)
  mutable forwarded : int;
  mutable dropped : int;
  mutable faults : int; (* isolation faults while processing *)
}

type nic_stats = {
  mutable hosted : int; (* placements that landed here (cumulative) *)
  mutable lost : int; (* NFs lost when this NIC died *)
  mutable scrubs_verified : int; (* teardowns whose RAM we checked zero *)
  mutable injected : int; (* frames the front-end pushed at this NIC *)
}

type t

(** [create ?registry ()] — fleet-wide counters are registered in
    [registry] (fresh one if omitted) under [fleet_*] names. *)
val create : ?registry:Obs.Metrics.registry -> unit -> t

(** The backing registry (shared with the trace sink when one was
    passed to {!create}). *)
val registry : t -> Obs.Metrics.registry

(** Prometheus text dump of every metric in the backing registry. *)
val prometheus : t -> string

(** Per-tenant stats row, created on first touch. *)
val tenant : t -> int -> tenant_stats

(** Per-NIC stats row, created on first touch. *)
val nic : t -> int -> nic_stats

(** {2 Fleet-wide counters} *)

val placement_failure : t -> unit
val replacement : t -> unit
val nic_kill : t -> unit
val nf_kill : t -> unit

(** Accumulate the modeled attestation latency ({!Memprof.Instr_latency.attest_ms}). *)
val add_attest_ms : t -> float -> unit

(** {2 Self-healing counters (reported by the supervisor)} *)

val retry : t -> unit
val quarantine : t -> unit
val readmission : t -> unit
val watchdog_failover : t -> unit
val health_probe : t -> unit
val probe_failure : t -> unit

(** {2 Performance-isolation counters (QoS / SLO supervision)} *)

val tenant_quarantine : t -> unit
(** A noisy tenant's NFs were drained on sustained SLO violation. *)

val tenant_readmission : t -> unit
(** A quarantined tenant was re-placed on probation. *)

val add_slo_violations : t -> int -> unit
(** Accumulate one round's tenant SLO violations. *)

val placement_failures : t -> int
val replacements : t -> int
val nic_kills : t -> int
val nf_kills : t -> int
val attest_ms_total : t -> float
val retries : t -> int
val quarantines : t -> int
val readmissions : t -> int
val watchdog_failovers : t -> int
val health_probes : t -> int
val probe_failures : t -> int
val tenant_quarantines : t -> int
val tenant_readmissions : t -> int
val slo_violations : t -> int

val total_attests : t -> int
val total_forwarded : t -> int
val total_dropped : t -> int

(** {2 Export} *)

(** [tenants_csv t] — one row per tenant id (sorted), header included. *)
val tenants_csv : t -> string

(** [nics_csv t] — one row per NIC id (sorted), header included. *)
val nics_csv : t -> string

(** [to_json t] — the whole telemetry tree as a single JSON object. *)
val to_json : t -> string
