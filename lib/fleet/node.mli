(** One member of the fleet: a booted {!Snic.Api.t} plus the operator's
    book-keeping about it.

    NICs are heterogeneous: each node has a *shape* describing its core
    count, DRAM, accelerator provisioning, and — crucially for placement —
    the page-size menu its locked TLBs support and how many locked
    entries each core's TLB offers (Table 5). A Monitor-class NF needs
    ~183 entries under the Equal-2MB menu, so it simply does not fit on a
    small NIC's 96-entry TLBs; the placement policies must route it to a
    Flex-menu NIC. *)

type shape = {
  label : string;
  cores : int;
  dram_bytes : int;
  accel_clusters : int; (* clusters per accelerator kind *)
  cluster_size : int; (* hardware threads per cluster *)
  page_menu : int list; (* page sizes the locked TLBs support *)
  tlb_budget_per_core : int; (* locked entries per core TLB *)
  vf_slots : int; (* SR-IOV virtual functions the NIC exposes *)
}

val small : shape
val medium : shape
val large : shape

(** [shape_of_index i] — deterministic heterogeneous rack: shapes cycle
    small, medium, large, medium. *)
val shape_of_index : int -> shape

type t

(** [boot ~vendor ~id shape] boots a fresh S-NIC of this shape with a
    serial derived from [id] (all fleet NICs share the operator's NIC
    vendor, each with its own manufactured identity; [identity_seed]
    defaults to a distinct per-[id] value so no two NICs share EK/AK
    material). *)
val boot : ?identity_seed:int -> vendor:Snic.Identity.vendor -> id:int -> shape -> t

val id : t -> int
val api : t -> Snic.Api.t
val shape : t -> shape
val serial : t -> string

(** {2 Liveness} *)

val alive : t -> bool

(** Simulated hardware failure: the NIC stops answering; every function
    on it is lost (no scrub possible — the paper's threat model makes
    scrubbing a teardown-time duty of live hardware). *)
val kill : t -> unit

(** {2 Quarantine (circuit breaker)}

    A quarantined NIC is alive — its hardware still answers, teardowns
    still scrub — but {!admits} refuses new placements until the
    supervisor's probation window expires and readmits it. *)

val quarantined : t -> bool
val quarantine : t -> unit
val unquarantine : t -> unit

(** {2 Operator-side accounting (admission pre-filter; the trusted
    instructions remain the authority)} *)

val free_cores : t -> int
val mem_headroom : t -> int
val free_clusters : t -> Nicsim.Accel.kind -> int
val nf_count : t -> int

(** Does [demand] fit this node right now? Checks liveness, cores, RAM
    headroom, accelerator clusters and the per-core locked-TLB entry
    budget under this node's page menu. *)
val admits : t -> Workload.demand -> bool

(** Entries [demand] would lock on this node's per-core TLB. *)
val entries_for : t -> Workload.demand -> int

val commit : t -> Workload.demand -> unit
val release : t -> Workload.demand -> unit

(** {2 Virtual-function slot accounting}

    Tenant vNICs consume VF slots ([shape.vf_slots]: 256 on small NICs,
    512 on medium, 1024 on large); {!Vfplace} packs a rack's worth of
    vNICs against these capacities. *)

val vf_slots : t -> int
val vf_used : t -> int
val vf_headroom : t -> int

(** Claim one VF slot; [false] when the node is dead, quarantined, or
    out of slots. *)
val attach_vf : t -> bool

val release_vf : t -> unit
