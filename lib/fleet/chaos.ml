open Nicsim

type config = {
  seed : int;
  n_nics : int;
  n_tenants : int;
  policy : Policy.t;
  rounds : int;
  packets_per_round : int;
  intensity : float;
  flaky_stride : int;
  dram_flips_per_round : int;
  kill_nics : int;
  kill_nfs : int;
  bytes_per_mb : int;
  supervisor : Supervisor.config;
}

let default_config =
  {
    seed = 42;
    n_nics = 8;
    n_tenants = 24;
    policy = Policy.First_fit;
    rounds = 6;
    packets_per_round = 400;
    intensity = 3.0;
    flaky_stride = 3;
    dram_flips_per_round = 2;
    kill_nics = 1;
    kill_nfs = 2;
    bytes_per_mb = 1024;
    supervisor = Supervisor.default_config;
  }

(* Gray failures cluster in real racks: every [flaky_stride]-th NIC gets
   the full storm, the rest only a background drizzle — health scoring
   must tell them apart, quarantining the former without starving the
   fleet of the latter's capacity. *)
let background_scale = 0.05

type round_report = {
  index : int;
  traffic : Frontend.stats;
  failures : Failure.report option;
  unattested_running : int; (* captured at the round's quiesce point *)
  faults_so_far : int;
}

type report = {
  config : config;
  rounds : round_report list;
  settle_ticks : int;
  initial_attested : int;
  final_attested : int;
  final_unplaced : int;
  unattested_running : int;
  max_unattested_observed : int;
  scrub_failures : int;
  replacements : int;
  retries : int;
  quarantines : int;
  readmissions : int;
  watchdog_failovers : int;
  alarms : int;
  fault_counts : (string * int) list;
  total_faults : int;
  injection_log : string;
  recovery_ms : float list;
  recovery_p50 : float option;
  recovery_p90 : float option;
  recovery_p99 : float option;
  goodput : float;
  alive_nics : int;
  quarantined_nics : int;
}

(* Spread the failure budget over the gaps between rounds (same shape as
   Scenario): gap g of R-1 gets the g-th share. *)
let budget_for ~total ~gaps ~gap =
  if gaps <= 0 then if gap = 0 then total else 0
  else (total * (gap + 1) / gaps) - (total * gap / gaps)

let node_plan config node =
  let id = Node.id node in
  let intensity =
    if config.flaky_stride > 0 && id mod config.flaky_stride = config.flaky_stride - 1 then config.intensity
    else config.intensity *. background_scale
  in
  Faults.plan ~seed:(config.seed lxor (0x5EED * (id + 1))) (Faults.storm ~intensity ())

let total_fleet_faults orch =
  Array.fold_left
    (fun acc node ->
      match Machine.faults (Snic.Api.machine (Node.api node)) with
      | Some plan -> acc + Faults.total plan
      | None -> acc)
    0 (Orchestrator.nodes orch)

let dram_rot orch rng =
  let placed =
    Array.of_list
      (List.filter (fun (tn : Orchestrator.tenant) -> tn.Orchestrator.placement <> None)
         (Array.to_list (Orchestrator.tenants orch)))
  in
  if Array.length placed > 0 then begin
    let tn = placed.(Trace.Rng.int rng (Array.length placed)) in
    match tn.Orchestrator.placement with
    | None -> ()
    | Some p ->
      let node = p.Orchestrator.node in
      let handle = Snic.Vnic.handle p.Orchestrator.vnic in
      let off = Trace.Rng.int rng handle.Snic.Instructions.mem_len in
      let bit = Trace.Rng.int rng 8 in
      let machine = Snic.Api.machine (Node.api node) in
      Physmem.flip_bit (Machine.mem machine) ~pos:(handle.Snic.Instructions.mem_base + off) ~bit;
      (match Machine.faults machine with
      | Some plan ->
        ignore
          (Faults.record plan ~device:"dram" Faults.Dram_flip
             ~detail:
               (Printf.sprintf "tenant=%d pos=%#x bit=%d" tn.Orchestrator.tid
                  (handle.Snic.Instructions.mem_base + off) bit))
      | None -> ())
  end

let run_with ?(sink = Obs.null) ?(domains = 1) config =
  let orch =
    Orchestrator.create ~sink ~domains
      {
        Orchestrator.seed = config.seed;
        n_nics = config.n_nics;
        n_tenants = config.n_tenants;
        policy = config.policy;
        bytes_per_mb = config.bytes_per_mb;
      }
  in
  let initial_attested = Orchestrator.attested_count orch in
  (* The fleet boots clean; only then does the storm start. *)
  Array.iter
    (fun node -> Machine.set_faults (Snic.Api.machine (Node.api node)) (node_plan config node))
    (Orchestrator.nodes orch);
  let sup = Supervisor.create ~seed:config.seed orch config.supervisor in
  let chaos_rng = Trace.Rng.create ~seed:(config.seed lxor 0xC4A05) in
  let fail_rng = Trace.Rng.create ~seed:(config.seed lxor 0xDEAD) in
  let gaps = config.rounds - 1 in
  let rounds = ref [] in
  let fail_scrubs = ref 0 in
  let max_unatt = ref 0 in
  let injected_total = ref 0 and forwarded_total = ref 0 in
  for i = 0 to config.rounds - 1 do
    let traffic = Frontend.replay orch ~seed:(config.seed + (131 * i)) ~packets:config.packets_per_round () in
    injected_total := !injected_total + traffic.Frontend.injected;
    forwarded_total := !forwarded_total + traffic.Frontend.forwarded;
    for _ = 1 to config.dram_flips_per_round do
      dram_rot orch chaos_rng
    done;
    let failures =
      if i >= gaps then None
      else begin
        let kn = budget_for ~total:config.kill_nics ~gaps ~gap:i in
        let kf = budget_for ~total:config.kill_nfs ~gaps ~gap:i in
        if kn = 0 && kf = 0 then None
        else begin
          let r = Failure.inject orch fail_rng ~kill_nics:kn ~kill_nfs:kf in
          fail_scrubs := !fail_scrubs + r.Failure.scrub_failures;
          Some r
        end
      end
    in
    Supervisor.tick sup ~round:i;
    let unatt = Orchestrator.unattested_running orch in
    max_unatt := max !max_unatt unatt;
    rounds :=
      { index = i; traffic; failures; unattested_running = unatt; faults_so_far = total_fleet_faults orch }
      :: !rounds
  done;
  (* Settling: a bad final round can leave tenants stranded mid-backoff;
     keep ticking (bounded) until every recoverable tenant is home. *)
  let settle_ticks = ref 0 in
  while !settle_ticks < config.rounds && Orchestrator.unplaced_count orch > 0 do
    incr settle_ticks;
    Supervisor.tick sup ~round:(config.rounds - 1 + !settle_ticks);
    max_unatt := max !max_unatt (Orchestrator.unattested_running orch)
  done;
  let telemetry = Orchestrator.telemetry orch in
  let nodes = Orchestrator.nodes orch in
  let recovery_ms = Supervisor.recovery_samples_ms sup in
  let fault_counts =
    List.map
      (fun site ->
        ( Faults.site_name site,
          Array.fold_left
            (fun acc node ->
              match Machine.faults (Snic.Api.machine (Node.api node)) with
              | Some plan -> acc + Faults.count plan site
              | None -> acc)
            0 nodes ))
      Faults.all_sites
  in
  let injection_log =
    let buf = Buffer.create 4096 in
    Array.iter
      (fun node ->
        match Machine.faults (Snic.Api.machine (Node.api node)) with
        | Some plan when Faults.total plan > 0 ->
          Printf.bprintf buf "=== nic %d ===\n%s" (Node.id node) (Faults.log_to_string plan)
        | _ -> ())
      nodes;
    Buffer.contents buf
  in
  let report =
    {
      config;
      rounds = List.rev !rounds;
      settle_ticks = !settle_ticks;
      initial_attested;
      final_attested = Orchestrator.attested_count orch;
      final_unplaced = Orchestrator.unplaced_count orch;
      unattested_running = Orchestrator.unattested_running orch;
      max_unattested_observed = !max_unatt;
      scrub_failures = !fail_scrubs + Supervisor.scrub_failures sup;
      replacements = Telemetry.replacements telemetry;
      retries = Telemetry.retries telemetry;
      quarantines = Telemetry.quarantines telemetry;
      readmissions = Telemetry.readmissions telemetry;
      watchdog_failovers = Telemetry.watchdog_failovers telemetry;
      alarms = Supervisor.alarms sup;
      fault_counts;
      total_faults = total_fleet_faults orch;
      injection_log;
      recovery_ms;
      recovery_p50 = Supervisor.recovery_quantile_ms sup 0.50;
      recovery_p90 = Supervisor.recovery_quantile_ms sup 0.90;
      recovery_p99 = Supervisor.recovery_quantile_ms sup 0.99;
      goodput =
        (if !injected_total = 0 then 0. else float_of_int !forwarded_total /. float_of_int !injected_total);
      alive_nics = Array.fold_left (fun acc n -> if Node.alive n then acc + 1 else acc) 0 nodes;
      quarantined_nics = Array.fold_left (fun acc n -> if Node.quarantined n then acc + 1 else acc) 0 nodes;
    }
  in
  (report, orch)

let run ?domains config = fst (run_with ?domains config)

(* Sharded storms: shard i replays the identical scenario under its
   derived seed, on a private rack and optional private sink; the merge
   is by shard index, so the report array never depends on which domain
   finished first. *)
let run_many ?(domains = 1) ?(record = false) ~shards config =
  Par.Engine.map_seeded ~domains ~seed:config.seed ~shards (fun ~shard:_ ~seed ->
      let sink = if record then Obs.create () else Obs.null in
      let report, _orch = run_with ~sink { config with seed } in
      (report, sink))

(* ================= noisy-neighbor / starvation ==================== *)

(* The performance-isolation counterpart of the gray-failure storm:
   tenant 0 floods the rack's shared IO fabric (bus transactions, DMA
   bytes, accelerator cycles) while the other tenants run
   latency-sensitive traffic under an SLO.  The fabric is fronted by a
   Qos credit arbiter; the supervisor watches per-round SLO telemetry
   and quarantines the *aggressor tenant* when victim violations are
   sustained.  A second pass replays the identical workload with the
   arbiter bypassed, giving the unprotected baseline the report and
   bench compare against.  Fully deterministic: all issue times come
   from strides plus one seeded stream. *)

type qos_config = {
  q_seed : int;
  q_nics : int;
  q_tenants : int; (* tenant 0 is the aggressor; >= 2 *)
  q_rounds : int;
  q_requests : int; (* victim requests per tenant per round *)
  q_factor : int; (* aggressor load multiplier *)
  q_epoch : int; (* qos accounting epoch, cycles *)
  q_slo : int; (* victim latency SLO, cycles *)
  q_starve : bool; (* zero structural slack: guarantees only *)
  q_policy : Policy.t;
  q_bytes_per_mb : int;
  q_supervisor : Supervisor.config;
}

let default_qos_config =
  {
    q_seed = 42;
    q_nics = 4;
    q_tenants = 8;
    q_rounds = 8;
    q_requests = 40;
    q_factor = 8;
    q_epoch = 10_000;
    q_slo = 2_000;
    q_starve = false;
    q_policy = Policy.First_fit;
    q_bytes_per_mb = 1024;
    q_supervisor = Supervisor.default_config;
  }

(* Request shapes (credits): victims are small and latency-sensitive,
   the aggressor is bulk.  The victim's SLO-tracked op is the bus
   transaction (its request/response path); DMA and accel jobs are
   fire-and-forget background load.  The aggressor's back-to-back bus
   bursts at each epoch start are what convoy the FCFS bus and blow the
   victims' tail — unless credits cut the convoy short. *)
let epochs_per_round = 4
let accel_threads = 8
let victim_bus_cost = 8
let victim_dma_len = 256
let victim_accel_bytes = 64
let agg_bus_cost = 150
let agg_dma_len = 4096
let agg_accel_bytes = 512

type qos_tenant = {
  qt_tid : int;
  qt_aggressor : bool;
  qt_grants : int;
  qt_throttles : int;
  qt_borrowed : int;
  qt_share : float; (* worst-resource granted/requested fraction *)
  qt_p50 : float option;
  qt_p90 : float option;
  qt_p99 : float option;
  qt_samples : int;
  qt_slo_violations : int;
  qt_quarantined : bool;
}

type qos_report = {
  q_config : qos_config;
  q_outcomes : qos_tenant list;
  q_victim_p99 : float option; (* worst victim p99, whole run *)
  q_victim_p99_steady : float option; (* worst victim p99, final round *)
  q_unprotected_p99 : float option; (* worst victim p99 with qos bypassed *)
  q_share_min : float; (* min victim guaranteed-share kept *)
  q_starved : int; (* victims with zero grants *)
  q_aggressor_throttles : int;
  q_quarantines : int;
  q_readmissions : int;
  q_slo_violations : int;
  q_lat_fairness : Obs.Fairness.report; (* latency-weighted jain over victim p99s *)
}

type fabric = { f_bus : Bus.t; f_dma : Dma.t; f_accel : Accel.t }

let make_fabric config =
  {
    f_bus = Bus.create ~policy:Bus.Free_for_all ~clients:config.q_tenants;
    f_dma =
      Dma.create ~nic_mem:(Physmem.create ~size:(1 lsl 20)) ~host_mem:(Physmem.create ~size:(1 lsl 20))
        ~banks:1;
    f_accel = Accel.create ~kind:Accel.Dpi ~threads:accel_threads ~cluster_size:accel_threads;
  }

type fabric_op = Op_bus of int | Op_dma of int | Op_accel of int

(* One round's event stream, oldest first: victims evenly strided so
   per-epoch demand matches their guarantee exactly; the aggressor
   issues each epoch's burst back-to-back from the epoch start, which
   is what convoys the shared bus in the unprotected pass. *)
let round_events config rng ~round ~active =
  let round_cycles = config.q_epoch * epochs_per_round in
  let start = round * round_cycles in
  let evs = ref [] in
  for tid = 1 to config.q_tenants - 1 do
    if active.(tid) then begin
      let stride = round_cycles / config.q_requests in
      for k = 0 to config.q_requests - 1 do
        let t = start + (k * stride) + tid in
        evs := (t, tid, Op_bus victim_bus_cost) :: !evs;
        if k mod 2 = 0 then evs := (t, tid, Op_dma victim_dma_len) :: !evs;
        if k mod 8 = 0 then evs := (t, tid, Op_accel victim_accel_bytes) :: !evs
      done
    end
  done;
  if active.(0) then begin
    let total = config.q_requests * config.q_factor in
    let per_epoch = total / epochs_per_round in
    for e = 0 to epochs_per_round - 1 do
      for j = 0 to per_epoch - 1 do
        let t = start + (e * config.q_epoch) + (j * 2) + Trace.Rng.int rng 2 in
        evs := (t, 0, Op_bus agg_bus_cost) :: !evs;
        evs := (t, 0, Op_dma agg_dma_len) :: !evs;
        evs := (t, 0, Op_accel agg_accel_bytes) :: !evs
      done
    done
  end;
  List.stable_sort (fun (a, _, _) (b, _, _) -> compare a b) (List.rev !evs)

(* Per-epoch victim demand, the basis for guarantees: a victim's
   guarantee is exactly what its workload needs (plus boundary
   headroom), the OSMOSIS notion of a minimum bandwidth contract. *)
let victim_demand config accel = function
  | Qos.Bus -> config.q_requests * victim_bus_cost / epochs_per_round
  | Qos.Dma -> config.q_requests / 2 * victim_dma_len / epochs_per_round
  | Qos.Accel ->
    ((config.q_requests / 8) + 1) * Qos.accel_cost accel ~bytes:victim_accel_bytes / epochs_per_round

(* Guarantees are OSMOSIS-style minimum contracts: each victim is
   promised exactly its demand (plus boundary headroom).  The aggressor
   gets a generous bus guarantee and — in the normal variant — a cap
   that still lets it convoy most of an epoch, which is precisely the
   degradation the supervisor's quarantine then heals.  The accel
   credit capacity sits at half the cluster's real service rate so
   granted work always drains; in the starvation variant every
   capacity collapses to the sum of guarantees (zero structural
   slack). *)
let make_arbiter config fabric =
  let g r = (victim_demand config fabric.f_accel r * 5 / 4) + 1 in
  let agg_g = function Qos.Bus -> 10 * g Qos.Bus | (Qos.Dma | Qos.Accel) as r -> 4 * g r in
  let total r = ((config.q_tenants - 1) * g r) + agg_g r in
  let capacity = function
    | Qos.Bus -> max config.q_epoch (total Qos.Bus)
    | Qos.Dma -> 2 * total Qos.Dma
    | Qos.Accel -> max (accel_threads * config.q_epoch / 2) (total Qos.Accel)
  in
  let capacity r = if config.q_starve then total r else capacity r in
  let cap_v r = 2 * g r in
  let cap_a r =
    if config.q_starve then agg_g r
    else max (agg_g r) (match r with Qos.Bus -> capacity Qos.Bus * 4 / 5 | _ -> capacity r / 2)
  in
  let qos =
    Qos.create
      {
        Qos.epoch = config.q_epoch;
        bus_capacity = capacity Qos.Bus;
        dma_capacity = capacity Qos.Dma;
        accel_capacity = capacity Qos.Accel;
      }
  in
  Qos.register qos ~tenant:0
    {
      Qos.bus = { Qos.guarantee = agg_g Qos.Bus; cap = cap_a Qos.Bus };
      dma = { Qos.guarantee = agg_g Qos.Dma; cap = cap_a Qos.Dma };
      accel = { Qos.guarantee = agg_g Qos.Accel; cap = cap_a Qos.Accel };
      slo = None;
    };
  for tid = 1 to config.q_tenants - 1 do
    Qos.register qos ~tenant:tid
      {
        Qos.bus = { Qos.guarantee = g Qos.Bus; cap = cap_v Qos.Bus };
        dma = { Qos.guarantee = g Qos.Dma; cap = cap_v Qos.Dma };
        accel = { Qos.guarantee = g Qos.Accel; cap = cap_v Qos.Accel };
        slo = Some config.q_slo;
      }
  done;
  qos

(* Replay the workload.  [qos = Some arbiter] is the protected pass
   (credits enforced, supervisor in the loop); [None] is the
   unprotected baseline (every request hits the fabric directly).
   Returns per-tenant latency samples (whole run and final round),
   per-resource requested credits, and grant/throttle counts. *)
type pass = {
  p_samples : float list array; (* per tenant, newest first *)
  p_last_round : float list array; (* final-round samples only *)
  p_requested : int array array; (* tenant x resource, credits *)
  p_quarantined : bool array;
}

let run_pass config ~qos ~sup ~orch =
  let n = config.q_tenants in
  let fabric = make_fabric config in
  let rng = Trace.Rng.create ~seed:(config.q_seed lxor 0x9005) in
  let samples = Array.make n [] in
  let last_round = Array.make n [] in
  let requested = Array.make_matrix n 3 0 in
  let quarantined = Array.make n false in
  let round_viol = Array.make n 0 in
  let round_samp = Array.make n 0 in
  let prev_borrowed = Array.make n 0 in
  let rix = function Qos.Bus -> 0 | Qos.Dma -> 1 | Qos.Accel -> 2 in
  let sample tid ~now ~done_at ~final =
    let lat = float_of_int (done_at - now) in
    samples.(tid) <- lat :: samples.(tid);
    if final then last_round.(tid) <- lat :: last_round.(tid);
    round_samp.(tid) <- round_samp.(tid) + 1;
    if done_at - now > config.q_slo then round_viol.(tid) <- round_viol.(tid) + 1
  in
  let exec ~final now tid op =
    match (op, qos) with
    | Op_bus cost, Some q -> (
      requested.(tid).(rix Qos.Bus) <- requested.(tid).(rix Qos.Bus) + cost;
      match Qos.bus_request q ~bus:fabric.f_bus ~tenant:tid ~client:tid ~now ~cost with
      | Ok done_at -> if tid > 0 then sample tid ~now ~done_at ~final
      | Error _ -> ())
    | Op_bus cost, None ->
      let done_at = Bus.request fabric.f_bus ~client:tid ~now ~cost in
      if tid > 0 then sample tid ~now ~done_at ~final
    | Op_dma len, Some q ->
      requested.(tid).(rix Qos.Dma) <- requested.(tid).(rix Qos.Dma) + len;
      ignore
        (Qos.dma_transfer q ~dma:fabric.f_dma ~tenant:tid ~now ~checked:false ~bank:0
           ~direction:Dma.To_host ~nic_addr:0 ~host_addr:0 ~len)
    | Op_dma len, None ->
      ignore
        (Dma.transfer ~checked:false fabric.f_dma ~bank:0 ~direction:Dma.To_host ~nic_addr:0
           ~host_addr:0 ~len)
    | Op_accel bytes, Some q -> (
      (* Fire-and-forget offload: admission is what is being metered;
         the SLO-tracked op is the bus path, so no latency sample. *)
      let cost = Qos.accel_cost fabric.f_accel ~bytes in
      requested.(tid).(rix Qos.Accel) <- requested.(tid).(rix Qos.Accel) + cost;
      match Qos.admit q ~tenant:tid ~resource:Qos.Accel ~cost ~now with
      | Qos.Granted -> ignore (Accel.submit fabric.f_accel ~cluster:0 ~now ~bytes)
      | Qos.Throttled _ -> ())
    | Op_accel bytes, None -> ignore (Accel.submit fabric.f_accel ~cluster:0 ~now ~bytes)
  in
  let active = Array.make n true in
  for round = 0 to config.q_rounds - 1 do
    (* A drained (quarantined) tenant generates no traffic this round. *)
    (match (sup, orch) with
    | Some _, Some o ->
      Array.iter
        (fun (tn : Orchestrator.tenant) ->
          if tn.Orchestrator.tid < n then active.(tn.Orchestrator.tid) <- tn.Orchestrator.placement <> None)
        (Orchestrator.tenants o)
    | _ -> ());
    Array.fill round_viol 0 n 0;
    Array.fill round_samp 0 n 0;
    let final = round = config.q_rounds - 1 in
    List.iter (fun (t, tid, op) -> exec ~final t tid op) (round_events config rng ~round ~active);
    (* Close the round: hand per-tenant deltas to the supervisor. *)
    match (sup, qos) with
    | Some s, Some q ->
      let stats =
        List.init n (fun tid ->
            let st = Qos.stats q ~tenant:tid in
            let over = st.Qos.borrowed_credits - prev_borrowed.(tid) in
            prev_borrowed.(tid) <- st.Qos.borrowed_credits;
            ( tid,
              {
                Supervisor.violations = round_viol.(tid);
                samples = round_samp.(tid);
                over_credits = over;
              } ))
      in
      Supervisor.note_qos s ~round stats;
      for tid = 0 to n - 1 do
        match Supervisor.tenant_breaker s ~tenant:tid with
        | Supervisor.Open _ -> quarantined.(tid) <- true
        | _ -> ()
      done
    | _ -> ()
  done;
  { p_samples = samples; p_last_round = last_round; p_requested = requested; p_quarantined = quarantined }

let run_qos ?(sink = Obs.null) config =
  if config.q_tenants < 2 then invalid_arg "Chaos.run_qos: need at least 2 tenants";
  if config.q_requests < epochs_per_round then invalid_arg "Chaos.run_qos: too few requests per round";
  (* Protected pass: fleet + arbiter + supervisor. *)
  let orch =
    Orchestrator.create ~sink
      {
        Orchestrator.seed = config.q_seed;
        n_nics = config.q_nics;
        n_tenants = config.q_tenants;
        policy = config.q_policy;
        bytes_per_mb = config.q_bytes_per_mb;
      }
  in
  let sup = Supervisor.create ~seed:config.q_seed orch config.q_supervisor in
  let fabric0 = make_fabric config in
  let qos = make_arbiter config fabric0 in
  Qos.set_sink qos sink ~track_base:920;
  let p = run_pass config ~qos:(Some qos) ~sup:(Some sup) ~orch:(Some orch) in
  (* Unprotected baseline: same workload, arbiter bypassed. *)
  let u = run_pass config ~qos:None ~sup:None ~orch:None in
  let n = config.q_tenants in
  let quant tid q = Obs.Metrics.quantile_of_samples p.p_samples.(tid) q in
  let worst_victim of_tid =
    let vs = List.filter_map of_tid (List.init (n - 1) (fun i -> i + 1)) in
    List.fold_left (fun acc v -> match acc with None -> Some v | Some a -> Some (Float.max a v)) None vs
  in
  let share tid =
    (* Worst resource: granted / requested, 1.0 when nothing was asked. *)
    List.fold_left
      (fun acc r ->
        let req = p.p_requested.(tid).(match r with Qos.Bus -> 0 | Qos.Dma -> 1 | Qos.Accel -> 2) in
        if req = 0 then acc
        else Float.min acc (float_of_int (Qos.granted_credits qos ~tenant:tid ~resource:r) /. float_of_int req))
      1.0
      [ Qos.Bus; Qos.Dma; Qos.Accel ]
  in
  let outcomes =
    List.init n (fun tid ->
        let st = Qos.stats qos ~tenant:tid in
        {
          qt_tid = tid;
          qt_aggressor = tid = 0;
          qt_grants = st.Qos.grants;
          qt_throttles = st.Qos.throttles;
          qt_borrowed = st.Qos.borrowed_credits;
          qt_share = share tid;
          qt_p50 = quant tid 0.50;
          qt_p90 = quant tid 0.90;
          qt_p99 = quant tid 0.99;
          qt_samples = st.Qos.samples;
          qt_slo_violations = st.Qos.slo_violations;
          qt_quarantined = p.p_quarantined.(tid);
        })
  in
  let victims = List.filter (fun o -> not o.qt_aggressor) outcomes in
  let telemetry = Orchestrator.telemetry orch in
  let report =
    {
      q_config = config;
      q_outcomes = outcomes;
      q_victim_p99 = worst_victim (fun tid -> quant tid 0.99);
      q_victim_p99_steady =
        worst_victim (fun tid -> Obs.Metrics.quantile_of_samples p.p_last_round.(tid) 0.99);
      q_unprotected_p99 =
        worst_victim (fun tid -> Obs.Metrics.quantile_of_samples u.p_samples.(tid) 0.99);
      q_share_min = List.fold_left (fun acc o -> Float.min acc o.qt_share) 1.0 victims;
      q_starved = List.length (List.filter (fun o -> o.qt_grants = 0) victims);
      q_aggressor_throttles = (List.hd outcomes).qt_throttles;
      q_quarantines = Telemetry.tenant_quarantines telemetry;
      q_readmissions = Telemetry.tenant_readmissions telemetry;
      q_slo_violations = Telemetry.slo_violations telemetry;
      q_lat_fairness =
        Obs.Fairness.latency_weighted_report
          (List.filter_map
             (fun o -> match o.qt_p99 with Some p99 -> Some (o.qt_tid, p99, 1.0) | None -> None)
             victims);
    }
  in
  (report, sup)

let cycles_str = function None -> "-" | Some v -> Printf.sprintf "%.0fcyc" v

let qos_summary r =
  let b = Buffer.create 2048 in
  let c = r.q_config in
  Printf.bprintf b
    "qos scenario: seed=%d nics=%d tenants=%d rounds=%d requests=%d factor=%d epoch=%d slo=%d starve=%b\n"
    c.q_seed c.q_nics c.q_tenants c.q_rounds c.q_requests c.q_factor c.q_epoch c.q_slo c.q_starve;
  List.iter
    (fun o ->
      Printf.bprintf b
        "  tenant %d%s: grants=%d throttles=%d borrowed=%d share=%.4f p50=%s p90=%s p99=%s slo-violations=%d/%d%s\n"
        o.qt_tid
        (if o.qt_aggressor then " (aggressor)" else "")
        o.qt_grants o.qt_throttles o.qt_borrowed o.qt_share (cycles_str o.qt_p50) (cycles_str o.qt_p90)
        (cycles_str o.qt_p99) o.qt_slo_violations o.qt_samples
        (if o.qt_quarantined then " QUARANTINED" else ""))
    r.q_outcomes;
  Printf.bprintf b "  victim p99: run=%s steady=%s unprotected=%s\n" (cycles_str r.q_victim_p99)
    (cycles_str r.q_victim_p99_steady) (cycles_str r.q_unprotected_p99);
  Printf.bprintf b "  healing: tenant-quarantines=%d tenant-readmissions=%d slo-violations=%d\n"
    r.q_quarantines r.q_readmissions r.q_slo_violations;
  Printf.bprintf b "  latency fairness (victims, jain over 1/p99):\n%s"
    (Obs.Fairness.summary r.q_lat_fairness);
  Printf.bprintf b "  invariants: starved_victims=%d share_min=%.4f aggressor_quarantined=%d\n" r.q_starved
    r.q_share_min
    (if (List.hd r.q_outcomes).qt_quarantined then 1 else 0);
  Buffer.contents b

(* "-" rather than a fabricated 0.00ms when there are too few samples
   for the quantile to mean anything. *)
let quantile_str = function None -> "-" | Some v -> Printf.sprintf "%.2fms" v

let summary r =
  let b = Buffer.create 2048 in
  Printf.bprintf b "chaos scenario: seed=%d nics=%d tenants=%d policy=%s rounds=%d pkts/round=%d intensity=%.2f\n"
    r.config.seed r.config.n_nics r.config.n_tenants (Policy.name r.config.policy) r.config.rounds
    r.config.packets_per_round r.config.intensity;
  Printf.bprintf b "  boot: %d/%d tenants placed and attested (storm armed after boot)\n" r.initial_attested
    r.config.n_tenants;
  List.iter
    (fun round ->
      Printf.bprintf b "  round %d: injected=%d undeliverable=%d forwarded=%d dropped=%d faults=%d unattested=%d\n"
        round.index round.traffic.Frontend.injected round.traffic.Frontend.undeliverable
        round.traffic.Frontend.forwarded round.traffic.Frontend.dropped round.faults_so_far
        round.unattested_running;
      match round.failures with
      | None -> ()
      | Some f ->
        Printf.bprintf b "    fail-stop: nics=[%s] nf-tenants=[%s] displaced=%d replaced=%d stranded=%d\n"
          (String.concat ";" (List.map string_of_int f.Failure.nics_killed))
          (String.concat ";" (List.map string_of_int f.Failure.nfs_killed))
          f.Failure.displaced f.Failure.replaced f.Failure.stranded)
    r.rounds;
  Printf.bprintf b "  faults by site: %s (total=%d)\n"
    (String.concat " " (List.filter_map (fun (n, c) -> if c = 0 then None else Some (Printf.sprintf "%s=%d" n c)) r.fault_counts))
    r.total_faults;
  Printf.bprintf b "  healing: retries=%d quarantines=%d readmissions=%d watchdog-failovers=%d alarms=%d settle-ticks=%d\n"
    r.retries r.quarantines r.readmissions r.watchdog_failovers r.alarms r.settle_ticks;
  Printf.bprintf b "  recovery: samples=%d p50=%s p90=%s p99=%s goodput=%.4f\n"
    (List.length r.recovery_ms) (quantile_str r.recovery_p50) (quantile_str r.recovery_p90)
    (quantile_str r.recovery_p99) r.goodput;
  Printf.bprintf b "  end: attested=%d unplaced=%d replacements=%d nics alive=%d quarantined=%d\n" r.final_attested
    r.final_unplaced r.replacements r.alive_nics r.quarantined_nics;
  Printf.bprintf b "  invariants: unattested_running=%d scrub_failures=%d max_unattested_observed=%d\n"
    r.unattested_running r.scrub_failures r.max_unattested_observed;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* DDoS: CuckooGuard SYN-proxy pair under adversarial traffic          *)
(* ------------------------------------------------------------------ *)

type ddos_config = {
  d_seed : int;
  d_benign_flows : int;
  d_attack_factor : int; (* spoofed SYNs per benign packet *)
  d_packets_per_flow : int; (* benign data packets after the handshake *)
  d_fp_bits : int; (* whitelist fingerprint bits *)
  d_log2_buckets : int; (* whitelist size: 2^k buckets x 4 slots *)
  d_conntrack_entry_bytes : int; (* naive per-SYN state, unprotected pass *)
  d_corrupt_period : int; (* tampered modes: one filter bit flip per k attack pkts *)
  d_modes : Machine.mode list;
}

let ddos_modes =
  [
    Machine.Liquidio_se_s;
    Machine.Liquidio_se_um { nf_xkphys = true };
    Machine.Agilio;
    Machine.Bluefield;
    Machine.Snic;
  ]

let default_ddos_config =
  {
    d_seed = 42;
    d_benign_flows = 256;
    d_attack_factor = 10;
    d_packets_per_flow = 4;
    d_fp_bits = 12;
    d_log2_buckets = 10;
    d_conntrack_entry_bytes = 64;
    d_corrupt_period = 8;
    d_modes = ddos_modes;
  }

(* Short mode ids, kept in sync with [Oracle.Campaign.mode_id] (fleet
   does not link the oracle, so the strings are mirrored here). *)
let ddos_mode_id = function
  | Machine.Liquidio_se_s -> "se-s"
  | Machine.Liquidio_se_um { nf_xkphys = false } -> "se-um"
  | Machine.Liquidio_se_um { nf_xkphys = true } -> "se-um-xk"
  | Machine.Agilio -> "agilio"
  | Machine.Bluefield -> "bluefield"
  | Machine.Snic -> "snic"

type ddos_mode_report = {
  dm_mode : Machine.mode;
  dm_tampered : bool; (* a cross-tenant write landed in NF memory *)
  dm_key_stolen : bool; (* a cross-tenant read of NF memory succeeded *)
  dm_baseline_goodput : int; (* benign data pkts delivered, no attack *)
  dm_goodput : int; (* benign data pkts delivered under attack *)
  dm_unprotected_goodput : int; (* naive conntrack proxy, no cookies *)
  dm_goodput_ratio : float;
  dm_unprotected_ratio : float;
  dm_attack_pkts : int;
  dm_attack_dropped : int;
  dm_benign_dropped : int;
  dm_challenges : int;
  dm_admitted : int;
  dm_forged_admits : int; (* key-stolen modes: forged cookies accepted *)
  dm_corrupt_flips : int; (* tampered modes: filter bits flipped *)
  dm_whitelist_load : float;
  dm_mem_reserved_bytes : int; (* proxy whitelist + tracker, fixed *)
  dm_mem_peak_bytes : int;
  dm_mem_flat : bool; (* peak = reserved: the fixed-reservation story *)
  dm_unprotected_mem_peak_bytes : int;
  dm_unprotected_mem_wanted_bytes : int; (* what per-SYN state would need *)
}

type ddos_report = {
  d_config : ddos_config;
  d_mode_reports : ddos_mode_report list;
  d_benign_pkts : int;
  d_attack_pkts : int;
  d_events_digest : int; (* attack-generator determinism fingerprint *)
  d_snic_goodput_ratio : float;
  d_snic_mem_flat : bool;
  d_snic_tampered : bool;
  d_snic_key_stolen : bool;
}

(* Does the isolation mode let tenant 1 reach tenant 0's NF memory?
   Real access checks against the machine, not a table: the attacker
   attempts one store into and one load from the victim's private
   region, exactly like the lib/attacks campaigns. *)
let ddos_probe mode =
  let s = Attacks.Scenario.setup mode in
  let m = s.Attacks.Scenario.machine in
  let atk = Attacks.Scenario.as_attacker s in
  let base = s.Attacks.Scenario.victim_mem in
  let tampered =
    match Machine.store_u8 m atk (Machine.Phys (base + 64)) 0xA5 with Ok () -> true | Error _ -> false
  in
  let key_stolen =
    match Machine.load_bytes m atk (Machine.Phys base) ~len:32 with Ok _ -> true | Error _ -> false
  in
  (tampered, key_stolen)

let ddos_events config =
  let rng = Trace.Rng.create ~seed:(config.d_seed lxor 0xDD05) in
  let evs = ref [] in
  Trace.Attackgen.syn_flood rng ~benign_flows:config.d_benign_flows ~attack_factor:config.d_attack_factor
    ~packets_per_flow:config.d_packets_per_flow ~f:(fun e -> evs := e :: !evs);
  List.rev !evs

(* Benign data payloads are lowercase-only so they can never collide
   with the proxy's "SYN" / "ACK:" payload conventions. *)
let ddos_packet ?payload (e : Trace.Attackgen.event) =
  let ft = e.Trace.Attackgen.flow in
  let payload =
    match payload with
    | Some p -> p
    | None ->
      let len = max 1 (Trace.Flowgen.payload_for_frame ~frame_size:e.Trace.Attackgen.size ~proto:Net.Packet.Tcp) in
      let h = Net.Five_tuple.hash ft in
      String.init len (fun i -> Char.chr (97 + ((h + i) mod 26)))
  in
  Net.Packet.make ~src_ip:ft.Net.Five_tuple.src_ip ~dst_ip:ft.Net.Five_tuple.dst_ip ~proto:Net.Packet.Tcp
    ~src_port:ft.Net.Five_tuple.src_port ~dst_port:ft.Net.Five_tuple.dst_port payload

type ddos_pass = {
  dp_goodput : int;
  dp_benign_dropped : int;
  dp_attack_dropped : int;
  dp_forged_admits : int;
  dp_corrupt_flips : int;
  dp_challenges : int;
  dp_admitted : int;
  dp_whitelist_load : float;
  dp_reserved : int;
  dp_mem_peak : int;
}

(* One pass of the CuckooGuard chain (SYN proxy -> cuckoo flow tracker)
   over the event stream.  [attack = false] replays only the benign
   events (the goodput baseline).  [tampered] flips whitelist bits from
   the attacker's side channel; [key_stolen] lets the attacker forge
   valid cookie echoes for its spoofed flows. *)
let ddos_run_pass config ~sink ~events ~attack ~tampered ~key_stolen =
  let key = Crypto.Hmac.derive ~secret:(Printf.sprintf "ddos-%08x" config.d_seed) ~label:"synp-cookie" in
  let proxy =
    Nf.Syn_proxy.create ~filter_seed:(config.d_seed lxor 0xF17) ~fp_bits:config.d_fp_bits
      ~log2_buckets:config.d_log2_buckets ~key ()
  in
  let proxy_nf = Nf.Syn_proxy.nf proxy in
  let tracker =
    Nf.Cuckoo.nf_create ~seed:(config.d_seed lxor 0x7CF) ~fp_bits:config.d_fp_bits
      ~log2_buckets:config.d_log2_buckets ()
  in
  let tracker_nf = Nf.Cuckoo.nf tracker in
  let mem () = Nf.Syn_proxy.memory_bytes proxy + Nf.Cuckoo.memory_bytes (Nf.Cuckoo.nf_filter tracker) in
  let reserved = mem () in
  let rng = Trace.Rng.create ~seed:(config.d_seed lxor 0xC0DE) in
  let goodput = ref 0 and benign_dropped = ref 0 and attack_dropped = ref 0 in
  let forged = ref 0 and flips = ref 0 and attack_seen = ref 0 in
  let mem_peak = ref reserved in
  let feed pkt =
    let v = proxy_nf.Nf.Types.process pkt in
    (match v with Nf.Types.Forward p -> ignore (tracker_nf.Nf.Types.process p) | Nf.Types.Drop _ -> ());
    v
  in
  List.iter
    (fun (e : Trace.Attackgen.event) ->
      if e.benign || attack then begin
        (* Per-kind payloads: benign clients follow the cookie protocol
           (echo the proxy's current-epoch cookie); an attacker without
           the key can only guess. *)
        let payload =
          match e.kind with
          | Trace.Attackgen.Syn -> Some Nf.Syn_proxy.syn_payload
          | Trace.Attackgen.Ack ->
            if e.benign then Some (Nf.Syn_proxy.ack_payload proxy e.flow)
            else Some (Nf.Syn_proxy.ack_prefix ^ "0000000000000000")
          | Trace.Attackgen.Data -> None
        in
        let v = feed (ddos_packet ?payload e) in
        (match (e.kind, e.benign, v) with
        | Trace.Attackgen.Syn, _, Nf.Types.Drop _ ->
          (* The stateless challenge: expected for every SYN. *)
          Obs.count sink Obs.Ddos_syn_challenge;
          if not e.benign then begin
            incr attack_dropped;
            Obs.count sink Obs.Ddos_attack_drop
          end
        | Trace.Attackgen.Ack, true, Nf.Types.Forward _ -> Obs.count sink Obs.Ddos_admit
        | Trace.Attackgen.Data, true, Nf.Types.Forward _ ->
          incr goodput;
          Obs.count sink Obs.Ddos_goodput_pkt
        | (Trace.Attackgen.Ack | Trace.Attackgen.Data), true, Nf.Types.Drop _ ->
          incr benign_dropped;
          Obs.count sink Obs.Ddos_benign_drop
        | _, false, Nf.Types.Drop _ ->
          incr attack_dropped;
          Obs.count sink Obs.Ddos_attack_drop
        | _ -> ());
        if attack && not e.benign then begin
          incr attack_seen;
          (if key_stolen && e.kind = Trace.Attackgen.Syn then
             (* The stolen HMAC key lets the attacker answer its own
                challenge: a forged echo that validates and pollutes the
                whitelist until the fixed filter saturates. *)
             let ack = ddos_packet e ~payload:(Nf.Syn_proxy.ack_payload proxy e.flow) in
             match feed ack with Nf.Types.Forward _ -> incr forged | Nf.Types.Drop _ -> ());
          if tampered && !attack_seen mod config.d_corrupt_period = 0 then begin
            Nf.Cuckoo.corrupt (Nf.Syn_proxy.filter proxy) ~bit:(Trace.Rng.bits rng);
            incr flips
          end
        end;
        let m = mem () in
        if m > !mem_peak then mem_peak := m
      end)
    events;
  {
    dp_goodput = !goodput;
    dp_benign_dropped = !benign_dropped;
    dp_attack_dropped = !attack_dropped;
    dp_forged_admits = !forged;
    dp_corrupt_flips = !flips;
    dp_challenges = Nf.Syn_proxy.challenges proxy;
    dp_admitted = Nf.Syn_proxy.admitted proxy;
    dp_whitelist_load = Nf.Cuckoo.load_factor (Nf.Syn_proxy.filter proxy);
    dp_reserved = reserved;
    dp_mem_peak = !mem_peak;
  }

(* The no-defense baseline: a proxy that allocates per-SYN state with no
   cookie, budgeted at the same bytes the CuckooGuard pair reserves.  A
   flood fills the table once and benign handshakes behind it fail —
   classic state exhaustion. *)
let ddos_run_unprotected config ~events ~budget_bytes =
  let entry = config.d_conntrack_entry_bytes in
  let budget = max 1 (budget_bytes / entry) in
  let tbl = Net.Five_tuple.Table.create 1024 in
  let goodput = ref 0 and benign_dropped = ref 0 and peak = ref 0 and wanted = ref 0 in
  List.iter
    (fun (e : Trace.Attackgen.event) ->
      (match e.Trace.Attackgen.kind with
      | Trace.Attackgen.Syn ->
        wanted := !wanted + entry;
        if not (Net.Five_tuple.Table.mem tbl e.flow) then
          if Net.Five_tuple.Table.length tbl < budget then Net.Five_tuple.Table.add tbl e.flow (ref false)
          else if e.benign then incr benign_dropped
      | Trace.Attackgen.Ack -> (
        match Net.Five_tuple.Table.find_opt tbl e.flow with
        | Some est -> est := true
        | None -> if e.benign then incr benign_dropped)
      | Trace.Attackgen.Data -> (
        match Net.Five_tuple.Table.find_opt tbl e.flow with
        | Some { contents = true } -> if e.benign then incr goodput
        | _ -> if e.benign then incr benign_dropped));
      peak := max !peak (Net.Five_tuple.Table.length tbl * entry))
    events;
  (!goodput, !benign_dropped, !peak, !wanted)

let run_ddos ?(sink = Obs.null) config =
  if config.d_benign_flows < 1 then invalid_arg "Chaos.run_ddos: need at least 1 benign flow";
  if config.d_attack_factor < 1 then invalid_arg "Chaos.run_ddos: attack factor must be >= 1";
  if config.d_corrupt_period < 1 then invalid_arg "Chaos.run_ddos: corrupt period must be >= 1";
  if config.d_modes = [] then invalid_arg "Chaos.run_ddos: need at least one mode";
  let events = ddos_events config in
  let digest = Trace.Attackgen.digest (fun f -> List.iter f events) in
  let benign_pkts = List.length (List.filter (fun (e : Trace.Attackgen.event) -> e.benign) events) in
  let attack_pkts = List.length events - benign_pkts in
  let mode_reports =
    List.map
      (fun mode ->
        let tampered, key_stolen = ddos_probe mode in
        let base = ddos_run_pass config ~sink:Obs.null ~events ~attack:false ~tampered:false ~key_stolen:false in
        let prot = ddos_run_pass config ~sink ~events ~attack:true ~tampered ~key_stolen in
        let ugood, _udrop, upeak, uwanted =
          ddos_run_unprotected config ~events ~budget_bytes:prot.dp_reserved
        in
        let ratio over =
          if base.dp_goodput = 0 then 0. else float_of_int over /. float_of_int base.dp_goodput
        in
        {
          dm_mode = mode;
          dm_tampered = tampered;
          dm_key_stolen = key_stolen;
          dm_baseline_goodput = base.dp_goodput;
          dm_goodput = prot.dp_goodput;
          dm_unprotected_goodput = ugood;
          dm_goodput_ratio = ratio prot.dp_goodput;
          dm_unprotected_ratio = ratio ugood;
          dm_attack_pkts = attack_pkts;
          dm_attack_dropped = prot.dp_attack_dropped;
          dm_benign_dropped = prot.dp_benign_dropped;
          dm_challenges = prot.dp_challenges;
          dm_admitted = prot.dp_admitted;
          dm_forged_admits = prot.dp_forged_admits;
          dm_corrupt_flips = prot.dp_corrupt_flips;
          dm_whitelist_load = prot.dp_whitelist_load;
          dm_mem_reserved_bytes = prot.dp_reserved;
          dm_mem_peak_bytes = prot.dp_mem_peak;
          dm_mem_flat = prot.dp_mem_peak = prot.dp_reserved;
          dm_unprotected_mem_peak_bytes = upeak;
          dm_unprotected_mem_wanted_bytes = uwanted;
        })
      config.d_modes
  in
  let snic = List.find_opt (fun r -> r.dm_mode = Machine.Snic) mode_reports in
  {
    d_config = config;
    d_mode_reports = mode_reports;
    d_benign_pkts = benign_pkts;
    d_attack_pkts = attack_pkts;
    d_events_digest = digest;
    d_snic_goodput_ratio = (match snic with Some r -> r.dm_goodput_ratio | None -> 0.);
    d_snic_mem_flat = (match snic with Some r -> r.dm_mem_flat | None -> false);
    d_snic_tampered = (match snic with Some r -> r.dm_tampered | None -> true);
    d_snic_key_stolen = (match snic with Some r -> r.dm_key_stolen | None -> true);
  }

let ddos_summary r =
  let b = Buffer.create 4096 in
  let c = r.d_config in
  Printf.bprintf b
    "ddos scenario: seed=%d benign_flows=%d attack_factor=%d pkts/flow=%d filter=2^%d buckets fp=%d bits\n"
    c.d_seed c.d_benign_flows c.d_attack_factor c.d_packets_per_flow c.d_log2_buckets c.d_fp_bits;
  Printf.bprintf b "  traffic: %d benign pkts + %d attack pkts, events digest=%d\n" r.d_benign_pkts
    r.d_attack_pkts r.d_events_digest;
  List.iter
    (fun m ->
      Printf.bprintf b
        "  mode %-9s: tampered=%d key_stolen=%d goodput=%.4fx (%d/%d) unprotected=%.4fx attack_dropped=%d/%d \
benign_dropped=%d forged_admits=%d flips=%d load=%.4f mem=%dB peak=%dB flat=%d\n"
        (ddos_mode_id m.dm_mode)
        (if m.dm_tampered then 1 else 0)
        (if m.dm_key_stolen then 1 else 0)
        m.dm_goodput_ratio m.dm_goodput m.dm_baseline_goodput m.dm_unprotected_ratio m.dm_attack_dropped
        m.dm_attack_pkts m.dm_benign_dropped m.dm_forged_admits m.dm_corrupt_flips m.dm_whitelist_load
        m.dm_mem_reserved_bytes m.dm_mem_peak_bytes
        (if m.dm_mem_flat then 1 else 0))
    r.d_mode_reports;
  (match r.d_mode_reports with
  | m :: _ ->
    Printf.bprintf b "  unprotected conntrack: budget=%dB peak=%dB wanted=%dB (per-SYN state at %dB/entry)\n"
      m.dm_mem_reserved_bytes m.dm_unprotected_mem_peak_bytes m.dm_unprotected_mem_wanted_bytes
      c.d_conntrack_entry_bytes
  | [] -> ());
  Printf.bprintf b "  invariants: snic_goodput=%.4f snic_mem_flat=%d snic_tampered=%d snic_key_stolen=%d\n"
    r.d_snic_goodput_ratio
    (if r.d_snic_mem_flat then 1 else 0)
    (if r.d_snic_tampered then 1 else 0)
    (if r.d_snic_key_stolen then 1 else 0);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Fabric: attested NIC-to-NIC channels carrying a cross-NIC NF chain  *)
(* ------------------------------------------------------------------ *)

type fabric_config = {
  f_seed : int;
  f_nics : int; (* >= 3: proxy NIC, tracker NIC, failover spare *)
  f_flows : int; (* benign flows in the seeded stream *)
  f_packets_per_flow : int;
  f_window : int; (* receiver anti-replay window *)
  f_buffer : int; (* sender replay-buffer capacity (failover state) *)
  f_replay : int; (* adversarial re-deliveries of in-window frames *)
  f_reorder : int; (* adversarial re-deliveries of pre-window frames *)
  f_tamper : int; (* adversarial bit-flipped frames *)
  f_kill : bool; (* kill the tracker NIC mid-run and fail over *)
  f_fp_bits : int; (* whitelist fingerprint bits *)
  f_log2_buckets : int; (* whitelist size: 2^k buckets x 4 slots *)
  f_bytes_per_mb : int;
}

let default_fabric_config =
  {
    f_seed = 42;
    f_nics = 3;
    f_flows = 96;
    f_packets_per_flow = 4;
    f_window = 32;
    f_buffer = 2048;
    f_replay = 24;
    f_reorder = 24;
    f_tamper = 16;
    f_kill = true;
    f_fp_bits = 12;
    f_log2_buckets = 10;
    f_bytes_per_mb = 1024;
  }

type fabric_report = {
  f_config : fabric_config;
  f_benign_pkts : int;
  f_events_digest : int; (* generator determinism fingerprint *)
  f_handshakes : int; (* successful attested establishments *)
  f_hops : int; (* frames that crossed an inter-NIC link *)
  f_admitted : int; (* flows the proxy admitted to the whitelist *)
  f_baseline_goodput : int; (* benign data pkts delivered, no failure *)
  f_goodput : int; (* ... with the mid-run NIC kill + failover *)
  f_goodput_ratio : float;
  f_benign_mac_failures : int; (* must stay 0: benign frames never fail *)
  f_replay_sent : int;
  f_replay_rejected : int;
  f_stale_sent : int;
  f_stale_rejected : int;
  f_tamper_sent : int;
  f_tamper_rejected : int;
  f_failed_over : bool; (* the tracker stage was re-homed *)
  f_dead_establish_refused : bool; (* channel to the dead NIC failed closed *)
  f_state_replayed : int; (* buffered payloads replayed into the new stage *)
  f_state_recovered : int; (* admitted flows present in the rebuilt tracker *)
  f_misstage_rejected : bool; (* mis-staged image -> Attest_failed *)
  f_clone_rejected : bool; (* duplicated EK under a new NIC id -> Identity_reuse *)
}

(* Stage NFs are launched through the real control plane (nf_create on
   the node's API) so attestation quotes cover a genuinely staged
   function, not a synthetic identity. *)
let fabric_stage_config ~image : Snic.Instructions.launch_config =
  {
    Snic.Instructions.default_config with
    Snic.Instructions.cores = [];
    image;
    memory_bytes = 32 * 1024;
    rules = [ { Pktio.match_any with Pktio.dst_port = Some Trace.Attackgen.victim_port } ];
    rx_bytes = 8 * 1024;
    tx_bytes = 8 * 1024;
    sched = Sched.Fifo;
    accels = [];
  }

(* Same recomputation a remote verifier does (and Orchestrator.place
   does for tenants): requested config + launch-assigned cores and RAM
   window.  A NIC OS that staged a different image cannot quote this. *)
let fabric_expected (cfg : Snic.Instructions.launch_config) (handle : Snic.Instructions.handle) =
  Snic.Measurement.of_config ~image:cfg.Snic.Instructions.image ~cores:handle.Snic.Instructions.cores
    ~mem_base:handle.Snic.Instructions.mem_base ~mem_len:handle.Snic.Instructions.mem_len
    ~rules:cfg.Snic.Instructions.rules ~accels:cfg.Snic.Instructions.accels
    ~rx_bytes:cfg.Snic.Instructions.rx_bytes ~tx_bytes:cfg.Snic.Instructions.tx_bytes
    ~sched:cfg.Snic.Instructions.sched

let fabric_place_stage node ~image =
  let cfg = fabric_stage_config ~image in
  match Snic.Api.nf_create_r (Node.api node) cfg with
  | Error e -> failwith (Printf.sprintf "fabric stage launch failed: %s" (Snic.Api.create_error_to_string e))
  | Ok vnic -> (vnic, fabric_expected cfg (Snic.Vnic.handle vnic))

let fabric_endpoint node vnic ~expected =
  Fabric.Endpoint.make
    ~alive:(fun () -> Node.alive node && not (Node.quarantined node))
    ~expected_measurement:expected ~nic:(Node.id node)
    ~insns:(Snic.Api.instructions (Node.api node))
    ~nf:(Snic.Vnic.id vnic) ()

(* The benign half of a seeded SYN-flood stream: same generator as the
   ddos scenario, so the handshake/data mix (and the digest idiom) match. *)
let fabric_events config =
  let rng = Trace.Rng.create ~seed:(config.f_seed lxor 0xFAB) in
  let evs = ref [] in
  Trace.Attackgen.syn_flood rng ~benign_flows:config.f_flows ~attack_factor:1
    ~packets_per_flow:config.f_packets_per_flow ~f:(fun e ->
      if e.Trace.Attackgen.benign then evs := e :: !evs);
  List.rev !evs

type fabric_pass = {
  fp_goodput : int;
  fp_admitted : int;
  fp_hops : int;
  fp_handshakes : int;
  fp_benign_mac_failures : int;
  fp_failed_over : bool;
  fp_dead_refused : bool;
  fp_state_replayed : int;
  fp_state_recovered : int;
  fp_replay_sent : int;
  fp_replay_rejected : int;
  fp_stale_sent : int;
  fp_stale_rejected : int;
  fp_tamper_sent : int;
  fp_tamper_rejected : int;
}

(* One pass of the split CuckooGuard chain: SYN proxy on NIC 0, cuckoo
   flow tracker on NIC 1, every inter-stage packet crossing an attested
   channel.  [kill] takes the tracker NIC down mid-stream and fails the
   stage over to the spare; [adversary] replays captured wire frames
   (verbatim, pre-window, and bit-flipped) at the receiver afterwards. *)
let fabric_run_pass config ~sink ~domains ~events ~kill ~adversary =
  let orch =
    Orchestrator.create ~sink ~domains
      {
        Orchestrator.seed = config.f_seed;
        n_nics = config.f_nics;
        n_tenants = 0;
        policy = Policy.First_fit;
        bytes_per_mb = config.f_bytes_per_mb;
      }
  in
  let nodes = Orchestrator.nodes orch in
  let telemetry = Orchestrator.telemetry orch in
  let vendor_public = Snic.Identity.vendor_public (Orchestrator.vendor orch) in
  let rng = Random.State.make [| config.f_seed; 0xFAB51 |] in
  let registry = Fabric.Endpoint.registry_create () in
  let handshakes = ref 0 in
  let captures = ref [] in
  let tap w = captures := w :: !captures in
  let establish ~chan src dst =
    match
      Fabric.Endpoint.establish ~registry ~sink ~window:config.f_window ~buffer:config.f_buffer ~tap rng
        ~vendor_public ~chan src dst
    with
    | Ok link ->
      incr handshakes;
      link
    | Error e -> failwith (Fabric.Endpoint.error_to_string e)
  in
  (* The proxy's whitelist and cookie key live on NIC 0 and survive the
     tracker NIC's death; the tracker's flow table is the state the
     failover must rebuild from the channel's replay buffer. *)
  let key = Crypto.Hmac.derive ~secret:(Printf.sprintf "fabric-%08x" config.f_seed) ~label:"synp-cookie" in
  let proxy =
    Nf.Syn_proxy.create ~filter_seed:(config.f_seed lxor 0xF17) ~fp_bits:config.f_fp_bits
      ~log2_buckets:config.f_log2_buckets ~key ()
  in
  let tracker = ref (Nf.Cuckoo.nf_create ~seed:(config.f_seed lxor 0x7CF) ~fp_bits:config.f_fp_bits
      ~log2_buckets:config.f_log2_buckets ())
  in
  let _vnic_a, expected_a = fabric_place_stage nodes.(0) ~image:"fabric:synp:stage-0" in
  let vnic_b, expected_b = fabric_place_stage nodes.(1) ~image:"fabric:ckf:stage-1" in
  let ep_a = fabric_endpoint nodes.(0) _vnic_a ~expected:expected_a in
  let ep_b = fabric_endpoint nodes.(1) vnic_b ~expected:expected_b in
  let stage_a = { Fabric.Chain.st_nic = 0; st_name = "synp-admit"; st_nf = Nf.Syn_proxy.nf proxy } in
  let stage_b = { Fabric.Chain.st_nic = 1; st_name = "ckf-track"; st_nf = Nf.Cuckoo.nf !tracker } in
  let chain = Fabric.Chain.create ~sink [ stage_a; stage_b ] ~links:[ establish ~chan:1 ep_a ep_b ] in
  let goodput = ref 0 in
  let admitted = Net.Five_tuple.Table.create 256 in
  let failed_over = ref false and dead_refused = ref false and state_replayed = ref 0 in
  let n_events = List.length events in
  let kill_at = n_events / 2 in
  let fail_over () =
    (* Hardware death of the tracker NIC: its flow state is gone and its
       attestation can never pass again — establishment to it must fail
       closed before the stage is re-homed on the spare. *)
    Node.kill nodes.(1);
    Telemetry.nic_kill telemetry;
    (match
       Fabric.Endpoint.establish ~registry ~sink ~window:config.f_window ~buffer:config.f_buffer rng
         ~vendor_public ~chan:2 ep_a ep_b
     with
    | Error (Fabric.Endpoint.Endpoint_down _) -> dead_refused := true
    | Ok _ | Error _ -> ());
    let spare = nodes.(2) in
    let vnic_c, expected_c = fabric_place_stage spare ~image:"fabric:ckf:stage-1" in
    let ep_c = fabric_endpoint spare vnic_c ~expected:expected_c in
    tracker := Nf.Cuckoo.nf_create ~seed:(config.f_seed lxor 0x7CF) ~fp_bits:config.f_fp_bits
        ~log2_buckets:config.f_log2_buckets ();
    let stage_c = { Fabric.Chain.st_nic = Node.id spare; st_name = "ckf-track"; st_nf = Nf.Cuckoo.nf !tracker } in
    (* Frames captured off the dead link can only ever fail the new
       link's MAC — drop them so the adversarial pass exercises the live
       channel's window, not a stale key. *)
    captures := [];
    let link = establish ~chan:2 ep_a ep_c in
    state_replayed := Fabric.Chain.relink chain ~hop:0 stage_c link;
    failed_over := true
  in
  List.iteri
    (fun i (e : Trace.Attackgen.event) ->
      if kill && i = kill_at then fail_over ();
      let payload =
        match e.Trace.Attackgen.kind with
        | Trace.Attackgen.Syn -> Some Nf.Syn_proxy.syn_payload
        | Trace.Attackgen.Ack -> Some (Nf.Syn_proxy.ack_payload proxy e.Trace.Attackgen.flow)
        | Trace.Attackgen.Data -> None
      in
      match (e.Trace.Attackgen.kind, Fabric.Chain.feed chain (ddos_packet ?payload e)) with
      | Trace.Attackgen.Data, Fabric.Chain.Delivered _ -> incr goodput
      | Trace.Attackgen.Ack, Fabric.Chain.Delivered _ ->
        Net.Five_tuple.Table.replace admitted e.Trace.Attackgen.flow ()
      | _ -> ())
    events;
  (* Benign traffic must never trip the authenticator: snapshot before
     the adversary starts replaying. *)
  let benign_mac_failures = Fabric.Chain.mac_failures chain in
  let replay_sent = ref 0 and replay_rejected = ref 0 in
  let stale_sent = ref 0 and stale_rejected = ref 0 in
  let tamper_sent = ref 0 and tamper_rejected = ref 0 in
  if adversary then begin
    let rx = Fabric.Chain.link_rx chain ~hop:0 in
    let caps = Array.of_list (List.rev !captures) in
    let n = Array.length caps in
    (* Capture order is send order, so index i carries sequence i: the
       newest [window] frames must bounce as replays, anything older
       than the window as stale. *)
    let n_replay = min config.f_replay (min n config.f_window) in
    for k = 0 to n_replay - 1 do
      incr replay_sent;
      match Fabric.Channel.recv rx caps.(n - 1 - k) with
      | Error (Fabric.Channel.Replayed _) -> incr replay_rejected
      | _ -> ()
    done;
    let n_stale = min config.f_reorder (max 0 (n - config.f_window)) in
    for k = 0 to n_stale - 1 do
      incr stale_sent;
      match Fabric.Channel.recv rx caps.(k) with
      | Error (Fabric.Channel.Stale _) -> incr stale_rejected
      | _ -> ()
    done;
    for k = 0 to config.f_tamper - 1 do
      if n > 0 then begin
        incr tamper_sent;
        let w = Bytes.of_string caps.(n - 1 - (k mod n)) in
        let pos = k mod Bytes.length w in
        Bytes.set w pos (Char.chr (Char.code (Bytes.get w pos) lxor 0x40));
        match Fabric.Channel.recv rx (Bytes.to_string w) with
        | Error (Fabric.Channel.Decode _) -> incr tamper_rejected
        | _ -> ()
      end
    done
  end;
  let recovered =
    Net.Five_tuple.Table.fold
      (fun ft () acc -> if Nf.Cuckoo.mem (Nf.Cuckoo.nf_filter !tracker) ft then acc + 1 else acc)
      admitted 0
  in
  ( orch,
    {
      fp_goodput = !goodput;
      fp_admitted = Net.Five_tuple.Table.length admitted;
      fp_hops = Fabric.Chain.hop_count chain;
      fp_handshakes = !handshakes;
      fp_benign_mac_failures = benign_mac_failures;
      fp_failed_over = !failed_over;
      fp_dead_refused = !dead_refused;
      fp_state_replayed = !state_replayed;
      fp_state_recovered = recovered;
      fp_replay_sent = !replay_sent;
      fp_replay_rejected = !replay_rejected;
      fp_stale_sent = !stale_sent;
      fp_stale_rejected = !stale_rejected;
      fp_tamper_sent = !tamper_sent;
      fp_tamper_rejected = !tamper_rejected;
    } )

(* Establishment must fail closed on a mis-staged image and on a cloned
   EK identity; both probes run against freshly launched stages on the
   pass's own rack. *)
let fabric_negative_probes config ~orch rng =
  let nodes = Orchestrator.nodes orch in
  let vendor_public = Snic.Identity.vendor_public (Orchestrator.vendor orch) in
  let registry = Fabric.Endpoint.registry_create () in
  let vnic_g, expected_g = fabric_place_stage nodes.(0) ~image:"fabric:probe:good" in
  let ep_good = fabric_endpoint nodes.(0) vnic_g ~expected:expected_g in
  let spare = nodes.(2) in
  (* The NIC OS staged [evil] but the verifier demands the measurement
     of [good]: the quote covers the staged image, so it cannot match. *)
  let cfg_evil = fabric_stage_config ~image:"fabric:probe:evil" in
  let misstage_rejected =
    match Snic.Api.nf_create_r (Node.api spare) cfg_evil with
    | Error _ -> false
    | Ok vnic ->
      let expected =
        fabric_expected { cfg_evil with Snic.Instructions.image = "fabric:probe:good" } (Snic.Vnic.handle vnic)
      in
      let ep_bad = fabric_endpoint spare vnic ~expected in
      (match Fabric.Endpoint.establish ~registry rng ~vendor_public ~chan:7 ep_good ep_bad with
      | Error (Fabric.Endpoint.Attest_failed _) -> true
      | Ok _ | Error _ -> false)
  in
  (* A clone presents NIC 0's EK under a fabricated NIC id.  The first
     establishment registered the real binding, so the clone is refused. *)
  let ep_clone =
    Fabric.Endpoint.make ~nic:(config.f_nics + 99)
      ~insns:(Snic.Api.instructions (Node.api nodes.(0)))
      ~nf:(Snic.Vnic.id vnic_g) ()
  in
  let clone_rejected =
    match Fabric.Endpoint.establish ~registry rng ~vendor_public ~chan:8 ep_clone ep_good with
    | Error (Fabric.Endpoint.Identity_reuse _) -> true
    | Ok _ | Error _ -> false
  in
  (misstage_rejected, clone_rejected)

let run_fabric_with ?(sink = Obs.null) ?(domains = 1) config =
  if config.f_nics < 3 then invalid_arg "Chaos.run_fabric: need at least 3 NICs (two stages + a spare)";
  if config.f_flows < 1 then invalid_arg "Chaos.run_fabric: need at least 1 flow";
  if config.f_packets_per_flow < 1 then invalid_arg "Chaos.run_fabric: need at least 1 packet per flow";
  if config.f_window < 1 || config.f_window > 62 then
    invalid_arg "Chaos.run_fabric: window must be within 1..62";
  if config.f_buffer < 0 then invalid_arg "Chaos.run_fabric: negative replay buffer";
  if config.f_replay < 0 || config.f_reorder < 0 || config.f_tamper < 0 then
    invalid_arg "Chaos.run_fabric: adversarial counts must be >= 0";
  let events = fabric_events config in
  let digest = Trace.Attackgen.digest (fun f -> List.iter f events) in
  let base_orch, base =
    fabric_run_pass config ~sink:Obs.null ~domains ~events ~kill:false ~adversary:false
  in
  ignore base_orch;
  let orch, main = fabric_run_pass config ~sink ~domains ~events ~kill:config.f_kill ~adversary:true in
  let probe_rng = Random.State.make [| config.f_seed; 0xFAB9E |] in
  let misstage_rejected, clone_rejected = fabric_negative_probes config ~orch probe_rng in
  {
    f_config = config;
    f_benign_pkts = List.length events;
    f_events_digest = digest;
    f_handshakes = main.fp_handshakes;
    f_hops = main.fp_hops;
    f_admitted = main.fp_admitted;
    f_baseline_goodput = base.fp_goodput;
    f_goodput = main.fp_goodput;
    f_goodput_ratio =
      (if base.fp_goodput = 0 then 0. else float_of_int main.fp_goodput /. float_of_int base.fp_goodput);
    f_benign_mac_failures = main.fp_benign_mac_failures;
    f_replay_sent = main.fp_replay_sent;
    f_replay_rejected = main.fp_replay_rejected;
    f_stale_sent = main.fp_stale_sent;
    f_stale_rejected = main.fp_stale_rejected;
    f_tamper_sent = main.fp_tamper_sent;
    f_tamper_rejected = main.fp_tamper_rejected;
    f_failed_over = main.fp_failed_over;
    f_dead_establish_refused = main.fp_dead_refused;
    f_state_replayed = main.fp_state_replayed;
    f_state_recovered = main.fp_state_recovered;
    f_misstage_rejected = misstage_rejected;
    f_clone_rejected = clone_rejected;
  }

let run_fabric ?sink config = run_fabric_with ?sink config

(* Sharded fabric storms, merged by shard index like [run_many]. *)
let run_fabric_many ?(domains = 1) ~shards config =
  Par.Engine.map_seeded ~domains ~seed:config.f_seed ~shards (fun ~shard:_ ~seed ->
      run_fabric_with { config with f_seed = seed })

let fabric_fail_closed r =
  r.f_misstage_rejected && r.f_clone_rejected && ((not r.f_config.f_kill) || r.f_dead_establish_refused)

let fabric_summary r =
  let b = Buffer.create 2048 in
  let c = r.f_config in
  let flag v = if v then 1 else 0 in
  Printf.bprintf b
    "fabric scenario: seed=%d nics=%d flows=%d pkts/flow=%d window=%d buffer=%d kill=%d\n" c.f_seed
    c.f_nics c.f_flows c.f_packets_per_flow c.f_window c.f_buffer (flag c.f_kill);
  Printf.bprintf b "  traffic: %d benign pkts, events digest=%d\n" r.f_benign_pkts r.f_events_digest;
  Printf.bprintf b "  channels: handshakes=%d hops=%d admitted=%d benign_mac_fail=%d\n" r.f_handshakes
    r.f_hops r.f_admitted r.f_benign_mac_failures;
  Printf.bprintf b "  goodput: %d/%d (%.4fx)\n" r.f_goodput r.f_baseline_goodput r.f_goodput_ratio;
  Printf.bprintf b
    "  failover: failed_over=%d dead_establish_refused=%d state_replayed=%d state_recovered=%d/%d\n"
    (flag r.f_failed_over) (flag r.f_dead_establish_refused) r.f_state_replayed r.f_state_recovered
    r.f_admitted;
  Printf.bprintf b "  adversary: replay=%d/%d stale=%d/%d tamper=%d/%d\n" r.f_replay_rejected
    r.f_replay_sent r.f_stale_rejected r.f_stale_sent r.f_tamper_rejected r.f_tamper_sent;
  Printf.bprintf b "  establishment: misstage_rejected=%d clone_rejected=%d\n"
    (flag r.f_misstage_rejected) (flag r.f_clone_rejected);
  Printf.bprintf b
    "  invariants: benign_mac_fail=%d replay_rejects=%d/%d stale_rejects=%d/%d tamper_rejects=%d/%d \
goodput_ratio=%.4f failover=%d fail_closed=%d\n"
    r.f_benign_mac_failures r.f_replay_rejected r.f_replay_sent r.f_stale_rejected r.f_stale_sent
    r.f_tamper_rejected r.f_tamper_sent r.f_goodput_ratio (flag r.f_failed_over)
    (flag (fabric_fail_closed r));
  Buffer.contents b
