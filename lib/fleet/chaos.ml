open Nicsim

type config = {
  seed : int;
  n_nics : int;
  n_tenants : int;
  policy : Policy.t;
  rounds : int;
  packets_per_round : int;
  intensity : float;
  flaky_stride : int;
  dram_flips_per_round : int;
  kill_nics : int;
  kill_nfs : int;
  bytes_per_mb : int;
  supervisor : Supervisor.config;
}

let default_config =
  {
    seed = 42;
    n_nics = 8;
    n_tenants = 24;
    policy = Policy.First_fit;
    rounds = 6;
    packets_per_round = 400;
    intensity = 3.0;
    flaky_stride = 3;
    dram_flips_per_round = 2;
    kill_nics = 1;
    kill_nfs = 2;
    bytes_per_mb = 1024;
    supervisor = Supervisor.default_config;
  }

(* Gray failures cluster in real racks: every [flaky_stride]-th NIC gets
   the full storm, the rest only a background drizzle — health scoring
   must tell them apart, quarantining the former without starving the
   fleet of the latter's capacity. *)
let background_scale = 0.05

type round_report = {
  index : int;
  traffic : Frontend.stats;
  failures : Failure.report option;
  unattested_running : int; (* captured at the round's quiesce point *)
  faults_so_far : int;
}

type report = {
  config : config;
  rounds : round_report list;
  settle_ticks : int;
  initial_attested : int;
  final_attested : int;
  final_unplaced : int;
  unattested_running : int;
  max_unattested_observed : int;
  scrub_failures : int;
  replacements : int;
  retries : int;
  quarantines : int;
  readmissions : int;
  watchdog_failovers : int;
  alarms : int;
  fault_counts : (string * int) list;
  total_faults : int;
  injection_log : string;
  recovery_ms : float list;
  recovery_p50 : float option;
  recovery_p90 : float option;
  recovery_p99 : float option;
  goodput : float;
  alive_nics : int;
  quarantined_nics : int;
}

(* Spread the failure budget over the gaps between rounds (same shape as
   Scenario): gap g of R-1 gets the g-th share. *)
let budget_for ~total ~gaps ~gap =
  if gaps <= 0 then if gap = 0 then total else 0
  else (total * (gap + 1) / gaps) - (total * gap / gaps)

let node_plan config node =
  let id = Node.id node in
  let intensity =
    if config.flaky_stride > 0 && id mod config.flaky_stride = config.flaky_stride - 1 then config.intensity
    else config.intensity *. background_scale
  in
  Faults.plan ~seed:(config.seed lxor (0x5EED * (id + 1))) (Faults.storm ~intensity ())

let total_fleet_faults orch =
  Array.fold_left
    (fun acc node ->
      match Machine.faults (Snic.Api.machine (Node.api node)) with
      | Some plan -> acc + Faults.total plan
      | None -> acc)
    0 (Orchestrator.nodes orch)

let dram_rot orch rng =
  let placed =
    Array.of_list
      (List.filter (fun (tn : Orchestrator.tenant) -> tn.Orchestrator.placement <> None)
         (Array.to_list (Orchestrator.tenants orch)))
  in
  if Array.length placed > 0 then begin
    let tn = placed.(Trace.Rng.int rng (Array.length placed)) in
    match tn.Orchestrator.placement with
    | None -> ()
    | Some p ->
      let node = p.Orchestrator.node in
      let handle = Snic.Vnic.handle p.Orchestrator.vnic in
      let off = Trace.Rng.int rng handle.Snic.Instructions.mem_len in
      let bit = Trace.Rng.int rng 8 in
      let machine = Snic.Api.machine (Node.api node) in
      Physmem.flip_bit (Machine.mem machine) ~pos:(handle.Snic.Instructions.mem_base + off) ~bit;
      (match Machine.faults machine with
      | Some plan ->
        ignore
          (Faults.record plan ~device:"dram" Faults.Dram_flip
             ~detail:
               (Printf.sprintf "tenant=%d pos=%#x bit=%d" tn.Orchestrator.tid
                  (handle.Snic.Instructions.mem_base + off) bit))
      | None -> ())
  end

let run_with ?(sink = Obs.null) config =
  let orch =
    Orchestrator.create ~sink
      {
        Orchestrator.seed = config.seed;
        n_nics = config.n_nics;
        n_tenants = config.n_tenants;
        policy = config.policy;
        bytes_per_mb = config.bytes_per_mb;
      }
  in
  let initial_attested = Orchestrator.attested_count orch in
  (* The fleet boots clean; only then does the storm start. *)
  Array.iter
    (fun node -> Machine.set_faults (Snic.Api.machine (Node.api node)) (node_plan config node))
    (Orchestrator.nodes orch);
  let sup = Supervisor.create ~seed:config.seed orch config.supervisor in
  let chaos_rng = Trace.Rng.create ~seed:(config.seed lxor 0xC4A05) in
  let fail_rng = Trace.Rng.create ~seed:(config.seed lxor 0xDEAD) in
  let gaps = config.rounds - 1 in
  let rounds = ref [] in
  let fail_scrubs = ref 0 in
  let max_unatt = ref 0 in
  let injected_total = ref 0 and forwarded_total = ref 0 in
  for i = 0 to config.rounds - 1 do
    let traffic = Frontend.replay orch ~seed:(config.seed + (131 * i)) ~packets:config.packets_per_round () in
    injected_total := !injected_total + traffic.Frontend.injected;
    forwarded_total := !forwarded_total + traffic.Frontend.forwarded;
    for _ = 1 to config.dram_flips_per_round do
      dram_rot orch chaos_rng
    done;
    let failures =
      if i >= gaps then None
      else begin
        let kn = budget_for ~total:config.kill_nics ~gaps ~gap:i in
        let kf = budget_for ~total:config.kill_nfs ~gaps ~gap:i in
        if kn = 0 && kf = 0 then None
        else begin
          let r = Failure.inject orch fail_rng ~kill_nics:kn ~kill_nfs:kf in
          fail_scrubs := !fail_scrubs + r.Failure.scrub_failures;
          Some r
        end
      end
    in
    Supervisor.tick sup ~round:i;
    let unatt = Orchestrator.unattested_running orch in
    max_unatt := max !max_unatt unatt;
    rounds :=
      { index = i; traffic; failures; unattested_running = unatt; faults_so_far = total_fleet_faults orch }
      :: !rounds
  done;
  (* Settling: a bad final round can leave tenants stranded mid-backoff;
     keep ticking (bounded) until every recoverable tenant is home. *)
  let settle_ticks = ref 0 in
  while !settle_ticks < config.rounds && Orchestrator.unplaced_count orch > 0 do
    incr settle_ticks;
    Supervisor.tick sup ~round:(config.rounds - 1 + !settle_ticks);
    max_unatt := max !max_unatt (Orchestrator.unattested_running orch)
  done;
  let telemetry = Orchestrator.telemetry orch in
  let nodes = Orchestrator.nodes orch in
  let recovery_ms = Supervisor.recovery_samples_ms sup in
  let fault_counts =
    List.map
      (fun site ->
        ( Faults.site_name site,
          Array.fold_left
            (fun acc node ->
              match Machine.faults (Snic.Api.machine (Node.api node)) with
              | Some plan -> acc + Faults.count plan site
              | None -> acc)
            0 nodes ))
      Faults.all_sites
  in
  let injection_log =
    let buf = Buffer.create 4096 in
    Array.iter
      (fun node ->
        match Machine.faults (Snic.Api.machine (Node.api node)) with
        | Some plan when Faults.total plan > 0 ->
          Printf.bprintf buf "=== nic %d ===\n%s" (Node.id node) (Faults.log_to_string plan)
        | _ -> ())
      nodes;
    Buffer.contents buf
  in
  let report =
    {
      config;
      rounds = List.rev !rounds;
      settle_ticks = !settle_ticks;
      initial_attested;
      final_attested = Orchestrator.attested_count orch;
      final_unplaced = Orchestrator.unplaced_count orch;
      unattested_running = Orchestrator.unattested_running orch;
      max_unattested_observed = !max_unatt;
      scrub_failures = !fail_scrubs + Supervisor.scrub_failures sup;
      replacements = Telemetry.replacements telemetry;
      retries = Telemetry.retries telemetry;
      quarantines = Telemetry.quarantines telemetry;
      readmissions = Telemetry.readmissions telemetry;
      watchdog_failovers = Telemetry.watchdog_failovers telemetry;
      alarms = Supervisor.alarms sup;
      fault_counts;
      total_faults = total_fleet_faults orch;
      injection_log;
      recovery_ms;
      recovery_p50 = Supervisor.recovery_quantile_ms sup 0.50;
      recovery_p90 = Supervisor.recovery_quantile_ms sup 0.90;
      recovery_p99 = Supervisor.recovery_quantile_ms sup 0.99;
      goodput =
        (if !injected_total = 0 then 0. else float_of_int !forwarded_total /. float_of_int !injected_total);
      alive_nics = Array.fold_left (fun acc n -> if Node.alive n then acc + 1 else acc) 0 nodes;
      quarantined_nics = Array.fold_left (fun acc n -> if Node.quarantined n then acc + 1 else acc) 0 nodes;
    }
  in
  (report, orch)

let run config = fst (run_with config)

(* "-" rather than a fabricated 0.00ms when there are too few samples
   for the quantile to mean anything. *)
let quantile_str = function None -> "-" | Some v -> Printf.sprintf "%.2fms" v

let summary r =
  let b = Buffer.create 2048 in
  Printf.bprintf b "chaos scenario: seed=%d nics=%d tenants=%d policy=%s rounds=%d pkts/round=%d intensity=%.2f\n"
    r.config.seed r.config.n_nics r.config.n_tenants (Policy.name r.config.policy) r.config.rounds
    r.config.packets_per_round r.config.intensity;
  Printf.bprintf b "  boot: %d/%d tenants placed and attested (storm armed after boot)\n" r.initial_attested
    r.config.n_tenants;
  List.iter
    (fun round ->
      Printf.bprintf b "  round %d: injected=%d undeliverable=%d forwarded=%d dropped=%d faults=%d unattested=%d\n"
        round.index round.traffic.Frontend.injected round.traffic.Frontend.undeliverable
        round.traffic.Frontend.forwarded round.traffic.Frontend.dropped round.faults_so_far
        round.unattested_running;
      match round.failures with
      | None -> ()
      | Some f ->
        Printf.bprintf b "    fail-stop: nics=[%s] nf-tenants=[%s] displaced=%d replaced=%d stranded=%d\n"
          (String.concat ";" (List.map string_of_int f.Failure.nics_killed))
          (String.concat ";" (List.map string_of_int f.Failure.nfs_killed))
          f.Failure.displaced f.Failure.replaced f.Failure.stranded)
    r.rounds;
  Printf.bprintf b "  faults by site: %s (total=%d)\n"
    (String.concat " " (List.filter_map (fun (n, c) -> if c = 0 then None else Some (Printf.sprintf "%s=%d" n c)) r.fault_counts))
    r.total_faults;
  Printf.bprintf b "  healing: retries=%d quarantines=%d readmissions=%d watchdog-failovers=%d alarms=%d settle-ticks=%d\n"
    r.retries r.quarantines r.readmissions r.watchdog_failovers r.alarms r.settle_ticks;
  Printf.bprintf b "  recovery: samples=%d p50=%s p90=%s p99=%s goodput=%.4f\n"
    (List.length r.recovery_ms) (quantile_str r.recovery_p50) (quantile_str r.recovery_p90)
    (quantile_str r.recovery_p99) r.goodput;
  Printf.bprintf b "  end: attested=%d unplaced=%d replacements=%d nics alive=%d quarantined=%d\n" r.final_attested
    r.final_unplaced r.replacements r.alive_nics r.quarantined_nics;
  Printf.bprintf b "  invariants: unattested_running=%d scrub_failures=%d max_unattested_observed=%d\n"
    r.unattested_running r.scrub_failures r.max_unattested_observed;
  Buffer.contents b
