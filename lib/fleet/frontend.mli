(** The datacenter front-end: replays a synthetic {!Trace.Tracegen}
    workload across the fleet, steering each flow to a tenant by flow
    hash (the classic ECMP-style front-end) and draining every tenant's
    virtual packet pipeline through its NF.

    Steering rewrites the packet's destination port to the tenant's
    service port — the same 5-tuple rewrite a load-balancing front-end
    performs — so the per-NIC switch rules installed at [nf_create] time
    deliver it to the right virtual pipeline. Packets addressed to a
    tenant that currently has no placement (mid-failure) count as
    front-end drops. *)

type stats = {
  injected : int; (* frames handed to some NIC's ingress *)
  undeliverable : int; (* tenant had no live placement *)
  forwarded : int; (* frames the NFs forwarded back out *)
  dropped : int; (* frames the NFs (or pipelines) dropped *)
}

(** [replay orch ~seed ~packets ()] — generate an ICTF-like trace of
    [packets] events from [seed] and push it through the fleet.
    [batch] (default 32) bounds per-tenant drains between injections so
    small VPP buffer pools don't overflow. Per-tenant and per-NIC
    counters land in the orchestrator's telemetry.

    Ingress is batched: frames buffer per NIC in event order and land
    through one {!Snic.Api.inject_batch} per NIC immediately before
    each drain point, which amortizes per-frame dispatch without
    changing any observable outcome (per-node frame order, pool
    occupancy at every drain point, and all counters match the
    one-packet-at-a-time path byte for byte). *)
val replay : ?batch:int -> ?n_flows:int -> Orchestrator.t -> seed:int -> packets:int -> unit -> stats
