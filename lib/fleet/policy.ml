type t = First_fit | Best_fit | Spread | Tco_aware

let all = [ First_fit; Best_fit; Spread; Tco_aware ]

let name = function
  | First_fit -> "first-fit"
  | Best_fit -> "best-fit"
  | Spread -> "spread"
  | Tco_aware -> "tco-aware"

let of_string s =
  match String.lowercase_ascii s with
  | "first-fit" | "first_fit" | "ff" -> Ok First_fit
  | "best-fit" | "best_fit" | "bf" -> Ok Best_fit
  | "spread" -> Ok Spread
  | "tco-aware" | "tco_aware" | "tco" -> Ok Tco_aware
  | _ -> Error (Printf.sprintf "unknown policy %S (want first-fit|best-fit|spread|tco-aware)" s)

let activation_cost (shape : Node.shape) =
  Costmodel.Tco.tco_per_core (Costmodel.Tco.snic_variant Costmodel.Tco.liquidio) *. float_of_int shape.Node.cores

let candidates nodes demand = Array.to_list nodes |> List.filter (fun n -> Node.admits n demand)

(* [argmin score nodes] — lowest score wins; candidates arrive in id
   order, so the first minimum is also the lowest-id minimum. *)
let argmin score = function
  | [] -> None
  | n :: rest -> Some (List.fold_left (fun best n -> if score n < score best then n else best) n rest)

let choose t nodes demand =
  let fits = candidates nodes demand in
  match t with
  | First_fit -> (match fits with [] -> None | n :: _ -> Some n)
  | Best_fit -> argmin (fun n -> Node.mem_headroom n - demand.Workload.mem_bytes) fits
  | Spread -> argmin (fun n -> Node.nf_count n) fits
  | Tco_aware -> (
    let active, idle = List.partition (fun n -> Node.nf_count n > 0) fits in
    match argmin (fun n -> (Node.shape n).Node.tlb_budget_per_core - Node.entries_for n demand) active with
    | Some n -> Some n
    | None -> argmin (fun n -> activation_cost (Node.shape n)) idle)
