type stats = { injected : int; undeliverable : int; forwarded : int; dropped : int }

let drain orch (tenant : Orchestrator.tenant) ~max =
  match tenant.Orchestrator.placement with
  | None -> (0, 0, 0)
  | Some p ->
    let rs = Snic.Vnic.process p.Orchestrator.vnic p.Orchestrator.nf ~max in
    let ts = Telemetry.tenant (Orchestrator.telemetry orch) tenant.Orchestrator.tid in
    ts.Telemetry.received <- ts.Telemetry.received + rs.Snic.Vnic.received;
    ts.Telemetry.forwarded <- ts.Telemetry.forwarded + rs.Snic.Vnic.forwarded;
    ts.Telemetry.dropped <- ts.Telemetry.dropped + rs.Snic.Vnic.dropped;
    ts.Telemetry.faults <- ts.Telemetry.faults + rs.Snic.Vnic.faults;
    (rs.Snic.Vnic.received, rs.Snic.Vnic.forwarded, rs.Snic.Vnic.dropped)

let replay ?(batch = 32) ?(n_flows = 512) orch ~seed ~packets () =
  let trace = Trace.Tracegen.ictf_like ~n_flows ~seed ~packets () in
  let tenants = Orchestrator.tenants orch in
  let n_tenants = Array.length tenants in
  let telemetry = Orchestrator.telemetry orch in
  let nodes = Orchestrator.nodes orch in
  let injected = ref 0 and undeliverable = ref 0 and forwarded = ref 0 and dropped = ref 0 in
  let rng = Trace.Rng.create ~seed:(seed lxor 0xF00D) in
  (* Batched ingress: frames are serialized at event time (so the RNG
     draw order is exactly the per-packet path's) and buffered per node,
     then pushed through one [Snic.Api.inject_batch] per NIC right
     before each drain point.  Per-node frame order is event order, and
     NICs are independent machines, so stats and per-tenant outcomes are
     byte-identical to injecting one packet at a time. *)
  let pending = Array.make (Array.length nodes) [] (* reversed *) in
  let flush () =
    Array.iteri
      (fun nid frames ->
        if frames <> [] then begin
          pending.(nid) <- [];
          let queued, rejected = Snic.Api.inject_batch (Node.api nodes.(nid)) (List.rev frames) in
          injected := !injected + queued;
          dropped := !dropped + rejected;
          let ns = Telemetry.nic telemetry nid in
          ns.Telemetry.injected <- ns.Telemetry.injected + queued
        end)
      pending
  in
  let drain_all () =
    Array.iter
      (fun tn ->
        let _, f, d = drain orch tn ~max:batch in
        forwarded := !forwarded + f;
        dropped := !dropped + d)
      tenants
  in
  Array.iteri
    (fun i (ev : Trace.Tracegen.event) ->
      let flow = trace.Trace.Tracegen.flows.(ev.Trace.Tracegen.flow) in
      let tenant = tenants.(Net.Five_tuple.hash flow mod n_tenants) in
      match tenant.Orchestrator.placement with
      | None -> incr undeliverable
      | Some p ->
        (* Front-end steering: rewrite the destination port so the NIC's
           switch rule for this tenant matches. *)
        let payload_len =
          max 0 (Trace.Flowgen.payload_for_frame ~frame_size:ev.Trace.Tracegen.size ~proto:Net.Packet.Udp)
        in
        let pkt = Trace.Flowgen.packet_of_flow ~payload_len rng flow in
        let pkt = { pkt with Net.Packet.dst_port = tenant.Orchestrator.port } in
        let nid = Node.id p.Orchestrator.node in
        pending.(nid) <- Net.Packet.serialize pkt :: pending.(nid);
        (* Drain the tenants' pipelines every [batch] injections so the
           small per-NF buffer pools keep recycling; the flush lands the
           buffered frames first so the drain sees the same machine
           state as the unbatched path did. *)
        if (i + 1) mod batch = 0 then begin
          flush ();
          drain_all ()
        end)
    trace.Trace.Tracegen.events;
  flush ();
  (* Final drain until every pipeline is empty. *)
  Array.iter
    (fun tn ->
      let rec go () =
        let r, f, d = drain orch tn ~max:batch in
        forwarded := !forwarded + f;
        dropped := !dropped + d;
        if r > 0 then go ()
      in
      go ())
    tenants;
  { injected = !injected; undeliverable = !undeliverable; forwarded = !forwarded; dropped = !dropped }
