type stats = { injected : int; undeliverable : int; forwarded : int; dropped : int }

let drain orch (tenant : Orchestrator.tenant) ~max =
  match tenant.Orchestrator.placement with
  | None -> (0, 0, 0)
  | Some p ->
    let rs = Snic.Vnic.process p.Orchestrator.vnic p.Orchestrator.nf ~max in
    let ts = Telemetry.tenant (Orchestrator.telemetry orch) tenant.Orchestrator.tid in
    ts.Telemetry.received <- ts.Telemetry.received + rs.Snic.Vnic.received;
    ts.Telemetry.forwarded <- ts.Telemetry.forwarded + rs.Snic.Vnic.forwarded;
    ts.Telemetry.dropped <- ts.Telemetry.dropped + rs.Snic.Vnic.dropped;
    ts.Telemetry.faults <- ts.Telemetry.faults + rs.Snic.Vnic.faults;
    (rs.Snic.Vnic.received, rs.Snic.Vnic.forwarded, rs.Snic.Vnic.dropped)

let replay ?(batch = 32) ?(n_flows = 512) orch ~seed ~packets () =
  let trace = Trace.Tracegen.ictf_like ~n_flows ~seed ~packets () in
  let tenants = Orchestrator.tenants orch in
  let n_tenants = Array.length tenants in
  let telemetry = Orchestrator.telemetry orch in
  let injected = ref 0 and undeliverable = ref 0 and forwarded = ref 0 and dropped = ref 0 in
  let rng = Trace.Rng.create ~seed:(seed lxor 0xF00D) in
  Array.iteri
    (fun i (ev : Trace.Tracegen.event) ->
      let flow = trace.Trace.Tracegen.flows.(ev.Trace.Tracegen.flow) in
      let tenant = tenants.(Net.Five_tuple.hash flow mod n_tenants) in
      (match tenant.Orchestrator.placement with
      | None -> incr undeliverable
      | Some p ->
        (* Front-end steering: rewrite the destination port so the NIC's
           switch rule for this tenant matches. *)
        let payload_len =
          max 0 (Trace.Flowgen.payload_for_frame ~frame_size:ev.Trace.Tracegen.size ~proto:Net.Packet.Udp)
        in
        let pkt = Trace.Flowgen.packet_of_flow ~payload_len rng flow in
        let pkt = { pkt with Net.Packet.dst_port = tenant.Orchestrator.port } in
        let node = p.Orchestrator.node in
        (match Snic.Api.inject_packet (Node.api node) pkt with
        | Ok _ ->
          incr injected;
          let ns = Telemetry.nic telemetry (Node.id node) in
          ns.Telemetry.injected <- ns.Telemetry.injected + 1
        | Error _ -> incr dropped);
        (* Drain the tenant's pipeline every [batch] injections so the
           small per-NF buffer pools keep recycling. *)
        if (i + 1) mod batch = 0 then
          Array.iter
            (fun tn ->
              let _, f, d = drain orch tn ~max:batch in
              forwarded := !forwarded + f;
              dropped := !dropped + d)
            tenants))
    trace.Trace.Tracegen.events;
  (* Final drain until every pipeline is empty. *)
  Array.iter
    (fun tn ->
      let rec go () =
        let r, f, d = drain orch tn ~max:batch in
        forwarded := !forwarded + f;
        dropped := !dropped + d;
        if r > 0 then go ()
      in
      go ())
    tenants;
  { injected = !injected; undeliverable = !undeliverable; forwarded = !forwarded; dropped = !dropped }
