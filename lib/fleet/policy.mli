(** Pluggable placement policies: given the fleet and a tenant demand,
    pick the NIC the NF should run on (or [None] when nothing admits it).

    All policies consult {!Node.admits} — they differ only in how they
    rank the admitting candidates, and all rank deterministically (ties
    break toward the lowest NIC id) so a seeded scenario replays
    identically. *)

type t =
  | First_fit (* lowest NIC id that admits the demand *)
  | Best_fit (* tightest remaining RAM headroom after placement *)
  | Spread (* fewest NFs currently hosted *)
  | Tco_aware (* consolidate: avoid activating idle NICs (their 3-year
                 TCO is sunk only once powered); among active NICs take
                 the tightest locked-TLB fit *)

val all : t list
val name : t -> string
val of_string : string -> (t, string) result

(** [choose t nodes demand] — the chosen node, if any admits [demand]. *)
val choose : t -> Node.t array -> Workload.demand -> Node.t option

(** The modeled 3-year cost of powering on an idle NIC of [shape]
    (per-core S-NIC TCO x cores) — what [Tco_aware] minimizes. *)
val activation_cost : Node.shape -> float
