(** Tenant workloads for the fleet orchestrator.

    A tenant rents a virtual smart NIC for one of the paper's six
    evaluation NFs or the CuckooGuard DDoS-defense pair (CKF / SYNP).
    Its *demand* — how much on-NIC RAM, how many cores,
    which accelerator clusters, and how many locked TLB entries — is
    derived from the measured memory profiles of {!Memprof.Profiles}
    (Table 6). RAM demands are scaled down by a configurable factor so a
    whole rack simulates quickly; the TLB-entry budget is computed from
    the *full-scale* regions, because that is what sizes the real locked
    TLBs (§5.2). *)

type kind = Fw | Dpi | Nat | Lb | Lpm | Mon | Ckf | Synp

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_string : string -> (kind, string) result

(** The Table 6 profile behind a kind. *)
val profile : kind -> Memprof.Profiles.t

type demand = {
  kind : kind;
  mem_bytes : int; (* scaled on-NIC RAM reservation *)
  cores : int; (* programmable cores (1 for every NF kind) *)
  accels : (Nicsim.Accel.kind * int) list; (* accelerator clusters *)
  regions : int list; (* full-scale region bytes, for TLB budgeting *)
}

(** [demand_of_kind ?bytes_per_mb kind] — [bytes_per_mb] is the scale
    factor mapping one profiled MB to simulated bytes (default 1024:
    1 MB -> 1 KB, so the Monitor's ~360 MB becomes ~360 KB). *)
val demand_of_kind : ?bytes_per_mb:int -> kind -> demand

(** Locked TLB entries this demand needs on a NIC offering [page_sizes]
    (computed from the full-scale regions via {!Costmodel.Page_packing}). *)
val tlb_entries : demand -> page_sizes:int list -> int

(** A runnable instance of the NF (small rule/pattern/route counts so a
    64-tenant fleet builds quickly). *)
val nf_instance : kind -> Nf.Types.t

(** Deterministic kind assignment for tenant [i] (cycles through all
    eight kinds so every fleet carries a balanced mix). *)
val kind_of_index : int -> kind
