(* Packing tenant vNICs onto a rack's VF slots.

   Like [Place] for NFs, this is the operator's pure planning arithmetic
   — no machine state, fully deterministic — so a placement can be
   computed, audited, and replayed before any VF is actually attached.
   Two policies: [Packed] first-fit fills NICs in order (dense racks,
   easy drain), [Spread] round-robins over NICs with headroom (smooths
   the stage-1 scheduler load so no NIC serves disproportionately many
   tenants). *)

type vnic = { tenant : int; weight : int }
type site = { nic : int; slots : int }
type assignment = { nic : int; vf : int; tenant : int; weight : int }
type policy = Packed | Spread

let policy_name = function Packed -> "packed" | Spread -> "spread"

let policy_of_string = function
  | "packed" -> Ok Packed
  | "spread" -> Ok Spread
  | s -> Error (Printf.sprintf "unknown VF placement policy %S (known: packed, spread)" s)

let capacity sites = List.fold_left (fun a s -> a + s.slots) 0 sites

let pack policy ~sites ~vnics =
  let demand = List.length vnics in
  let total = capacity sites in
  if demand > total then
    Error (Printf.sprintf "demand %d vNICs exceeds capacity %d VF slots" demand total)
  else begin
    let arr = Array.of_list sites in
    let k = Array.length arr in
    let used = Array.make (max k 1) 0 in
    let cursor = ref 0 in
    let place (v : vnic) =
      let pick =
        match policy with
        | Packed ->
          (* First site with headroom, in the given order. *)
          let rec ff i = if used.(i) < arr.(i).slots then i else ff (i + 1) in
          ff 0
        | Spread ->
          (* Next site with headroom after the last one used. *)
          let rec rr i = if used.(i) < arr.(i).slots then i else rr ((i + 1) mod k) in
          let i = rr !cursor in
          cursor := (i + 1) mod k;
          i
      in
      let vf = used.(pick) in
      used.(pick) <- vf + 1;
      { nic = arr.(pick).nic; vf; tenant = v.tenant; weight = v.weight }
    in
    Ok (List.map place vnics)
  end

let per_nic assignments =
  (* Group by NIC, ascending; within a NIC, keep assignment order (VF
     ids are already ascending by construction). *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let l = try Hashtbl.find tbl a.nic with Not_found -> [] in
      Hashtbl.replace tbl a.nic (a :: l))
    assignments;
  let nics = Hashtbl.fold (fun nic _ acc -> nic :: acc) tbl [] in
  List.map (fun nic -> (nic, List.rev (Hashtbl.find tbl nic))) (List.sort compare nics)

let sites_of_nodes nodes = List.map (fun n -> { nic = Node.id n; slots = Node.vf_headroom n }) nodes
