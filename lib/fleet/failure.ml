type report = {
  nics_requested : int;
  nfs_requested : int;
  nics_killed : int list;
  nfs_killed : int list;
  displaced : int;
  replaced : int;
  stranded : int;
  scrub_failures : int;
  in_flight_drained : int;
}

(* A dead NIC's RX rings still hold whatever the front-end batch-injected
   before the kill.  Pop every descriptor and recycle its buffer so the
   partial batch is accounted as tenant drops instead of silently
   vanishing — replays stay byte-identical because the drain order is the
   ring order. *)
let drain_in_flight telemetry (tn : Orchestrator.tenant) =
  match tn.Orchestrator.placement with
  | None -> 0
  | Some p ->
    let vnic = p.Orchestrator.vnic in
    let rec go n =
      match Snic.Vnic.rx vnic with
      | None -> n
      | Some (buffer, _len) ->
        Snic.Vnic.drop vnic ~buffer;
        go (n + 1)
    in
    let n = go 0 in
    let ts = Telemetry.tenant telemetry tn.Orchestrator.tid in
    ts.Telemetry.dropped <- ts.Telemetry.dropped + n;
    n

(* Budgets beyond the population clamp to "kill them all" (and negative
   budgets to nothing) — the report's requested-vs-killed fields record
   the clamping instead of the injector looping or raising. *)
let pick_distinct rng pool n =
  let pool = Array.copy pool in
  Trace.Rng.shuffle rng pool;
  Array.to_list (Array.sub pool 0 (min (max n 0) (Array.length pool)))

let inject orch rng ~kill_nics ~kill_nfs =
  let telemetry = Orchestrator.telemetry orch in
  let displaced = ref [] and scrub_failures = ref 0 and drained = ref 0 in
  (* NIC deaths first: they also decide which tenants are eligible for
     the orderly NF kills below. *)
  let alive_nodes = Array.of_list (List.filter Node.alive (Array.to_list (Orchestrator.nodes orch))) in
  let victims = pick_distinct rng alive_nodes kill_nics in
  List.iter
    (fun node ->
      Node.kill node;
      Telemetry.nic_kill telemetry;
      Array.iter
        (fun (tn : Orchestrator.tenant) ->
          match tn.Orchestrator.placement with
          | Some p when Node.id p.Orchestrator.node = Node.id node ->
            let ns = Telemetry.nic telemetry (Node.id node) in
            ns.Telemetry.lost <- ns.Telemetry.lost + 1;
            drained := !drained + drain_in_flight telemetry tn;
            Orchestrator.evict orch tn;
            displaced := tn :: !displaced
          | _ -> ())
        (Orchestrator.tenants orch))
    victims;
  let nics_killed = List.map Node.id victims in
  (* Orderly NF kills: real nf_destroy, scrub verified. *)
  let placed =
    Array.of_list
      (List.filter (fun (tn : Orchestrator.tenant) -> tn.Orchestrator.placement <> None)
         (Array.to_list (Orchestrator.tenants orch)))
  in
  let nf_victims = pick_distinct rng placed kill_nfs in
  List.iter
    (fun (tn : Orchestrator.tenant) ->
      match tn.Orchestrator.placement with
      | None -> ()
      | Some p ->
        let node = p.Orchestrator.node in
        let handle = Snic.Vnic.handle p.Orchestrator.vnic in
        Telemetry.nf_kill telemetry;
        (match Snic.Api.nf_destroy (Node.api node) ~id:handle.Snic.Instructions.id with
        | Ok () ->
          let mem = Nicsim.Machine.mem (Snic.Api.machine (Node.api node)) in
          if
            Nicsim.Physmem.is_zero mem ~pos:handle.Snic.Instructions.mem_base ~len:handle.Snic.Instructions.mem_len
          then begin
            let ns = Telemetry.nic telemetry (Node.id node) in
            ns.Telemetry.scrubs_verified <- ns.Telemetry.scrubs_verified + 1
          end
          else incr scrub_failures
        | Error _ -> incr scrub_failures);
        Orchestrator.evict orch tn;
        displaced := tn :: !displaced)
    nf_victims;
  let nfs_killed = List.map (fun (tn : Orchestrator.tenant) -> tn.Orchestrator.tid) nf_victims in
  (* Recovery: re-place + re-attest, lowest tenant id first. *)
  let displaced = List.sort (fun a b -> compare a.Orchestrator.tid b.Orchestrator.tid) !displaced in
  let replaced = List.length (List.filter (fun tn -> Result.is_ok (Orchestrator.replace orch tn)) displaced) in
  {
    nics_requested = kill_nics;
    nfs_requested = kill_nfs;
    nics_killed;
    nfs_killed;
    displaced = List.length displaced;
    replaced;
    stranded = List.length displaced - replaced;
    scrub_failures = !scrub_failures;
    in_flight_drained = !drained;
  }
