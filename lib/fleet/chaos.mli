(** Fault-storm scenarios: the fleet under gray failures.

    Boots a rack clean (every tenant placed and attested with no faults
    armed), then arms a per-NIC {!Faults} plan — every
    [flaky_stride]-th NIC at full storm intensity, the others at a
    background drizzle — and runs traffic rounds interleaved with DRAM
    rot, fail-stop injections ({!Failure}) and {!Supervisor} ticks.

    The report captures what the acceptance criteria grep for: the
    [unattested_running] and [scrub_failures] invariants, recovery-latency
    percentiles (fault to re-attested), goodput under faults, and the
    concatenated per-NIC injection log. Everything is a deterministic
    function of [seed]: same seed, byte-identical log and summary. *)

type config = {
  seed : int;
  n_nics : int;
  n_tenants : int;
  policy : Policy.t;
  rounds : int;
  packets_per_round : int;
  intensity : float; (* scales every fault rate; 1.0 = default storm *)
  flaky_stride : int; (* every k-th NIC gets the full storm; 0 = none *)
  dram_flips_per_round : int;
  kill_nics : int; (* fail-stop budget across the run *)
  kill_nfs : int;
  bytes_per_mb : int;
  supervisor : Supervisor.config;
}

(** seed 42, 8 NICs / 24 tenants, 4 rounds × 400 packets, full storm on
    every 3rd NIC, 2 DRAM flips per round, 1 NIC + 2 NF fail-stop kills. *)
val default_config : config

type round_report = {
  index : int;
  traffic : Frontend.stats;
  failures : Failure.report option;
  unattested_running : int; (* at the round's quiesce point — must be 0 *)
  faults_so_far : int; (* cumulative injected faults across the fleet *)
}

type report = {
  config : config;
  rounds : round_report list;
  settle_ticks : int; (* extra supervisor ticks to re-home stragglers *)
  initial_attested : int;
  final_attested : int;
  final_unplaced : int;
  unattested_running : int;
  max_unattested_observed : int; (* max across every quiesce point *)
  scrub_failures : int;
  replacements : int;
  retries : int;
  quarantines : int;
  readmissions : int;
  watchdog_failovers : int;
  alarms : int;
  fault_counts : (string * int) list; (* site name -> fleet-wide firings *)
  total_faults : int;
  injection_log : string; (* per-NIC logs, replayable byte-for-byte *)
  recovery_ms : float list; (* fault -> re-attested, oldest first *)
  recovery_p50 : float option; (* None until >= 2 samples exist *)
  recovery_p90 : float option;
  recovery_p99 : float option;
  goodput : float; (* forwarded / injected across all rounds *)
  alive_nics : int;
  quarantined_nics : int;
}

(** [run ?domains config] — [domains] (default 1) parallelizes the NIC
    boot phase ({!Orchestrator.create}); the storm itself is sequential
    and the report is byte-identical for every value. *)
val run : ?domains:int -> config -> report

(** [run_with ?sink ?domains config] also hands back the orchestrator
    for inspection.  When [sink] records ({!Obs.create}), every NIC
    traces its device events into it (one Chrome pid per NIC) and the
    fleet telemetry shares its registry — this is what [snic_cli trace]
    uses. *)
val run_with : ?sink:Obs.sink -> ?domains:int -> config -> report * Orchestrator.t

(** [run_many ?domains ?record ~shards config] runs [shards] independent
    storms, shard [i] re-seeded with
    [Par.Seed.derive ~seed:config.seed ~shard:i], fanned across
    [domains] OCaml domains (default 1; each shard runs single-domain
    inside).  Reports return in shard order, byte-identical for every
    [domains] value — any shard reproduces alone via {!run} with its
    derived seed.  With [record] each shard gets its own recording sink
    (returned with its report) for the caller to merge through
    [Obs.Metrics.merge_into]; see PARALLELISM.md. *)
val run_many : ?domains:int -> ?record:bool -> shards:int -> config -> (report * Obs.sink) array

(** {2 Noisy-neighbor / starvation scenarios}

    The performance-isolation counterpart of the fault storm: tenant 0
    floods the rack's shared IO fabric (bus, DMA, accelerator) while
    the remaining tenants run small latency-sensitive requests under an
    SLO.  The fabric is fronted by a {!Nicsim.Qos} credit arbiter and
    the {!Supervisor} watches per-round SLO deltas, quarantining the
    {e aggressor tenant} (drain + probation readmission) when victim
    violations are sustained.  An identical-seed pass with the arbiter
    bypassed provides the unprotected baseline.  Deterministic: same
    seed, byte-identical summary. *)

type qos_config = {
  q_seed : int;
  q_nics : int;
  q_tenants : int; (* tenant 0 is the aggressor; >= 2 *)
  q_rounds : int;
  q_requests : int; (* victim requests per tenant per round *)
  q_factor : int; (* aggressor load multiplier *)
  q_epoch : int; (* qos accounting epoch, cycles *)
  q_slo : int; (* victim latency SLO, cycles *)
  q_starve : bool; (* zero structural slack: capacity = sum of guarantees *)
  q_policy : Policy.t;
  q_bytes_per_mb : int;
  q_supervisor : Supervisor.config;
}

(** seed 42, 4 NICs / 8 tenants (1 aggressor + 7 victims), 8 rounds of
    40 victim requests at 8x aggressor load, 10k-cycle epochs, 2k-cycle
    SLO, structural slack enabled. *)
val default_qos_config : qos_config

type qos_tenant = {
  qt_tid : int;
  qt_aggressor : bool;
  qt_grants : int;
  qt_throttles : int;
  qt_borrowed : int; (* credits granted beyond the guarantee *)
  qt_share : float; (* worst-resource granted/requested fraction *)
  qt_p50 : float option; (* latency quantiles, cycles *)
  qt_p90 : float option;
  qt_p99 : float option;
  qt_samples : int;
  qt_slo_violations : int;
  qt_quarantined : bool; (* breaker went Open at least once *)
}

type qos_report = {
  q_config : qos_config;
  q_outcomes : qos_tenant list; (* tenant 0 first *)
  q_victim_p99 : float option; (* worst victim p99 over the whole run *)
  q_victim_p99_steady : float option; (* worst victim p99, final round *)
  q_unprotected_p99 : float option; (* worst victim p99, arbiter bypassed *)
  q_share_min : float; (* min victim guaranteed-share kept — floor 0.9 *)
  q_starved : int; (* victims with zero grants — must be 0 *)
  q_aggressor_throttles : int;
  q_quarantines : int; (* noisy-tenant breaker trips *)
  q_readmissions : int;
  q_slo_violations : int;
  q_lat_fairness : Obs.Fairness.report; (* jain over victim 1/p99 *)
}

(** [run_qos ?sink config] — protected pass (arbiter + supervisor) then
    the unprotected baseline pass, returning the report and the
    supervisor for breaker inspection.  Raises [Invalid_argument] for
    fewer than 2 tenants or fewer requests than epochs per round. *)
val run_qos : ?sink:Obs.sink -> qos_config -> qos_report * Supervisor.t

(** Human-readable rollup; ends with the stable greppable line
    ["invariants: starved_victims=0 share_min=... aggressor_quarantined=1"]. *)
val qos_summary : qos_report -> string

(** ["-"] for [None], ["12.34ms"] for [Some] — how the summary and the
    bench render optional recovery quantiles. *)
val quantile_str : float option -> string

(** ["-"] for [None], ["7056cyc"] for [Some] — the cycle-domain
    counterpart used by the QoS summary and bench. *)
val cycles_str : float option -> string

(** Human-readable rollup. The invariants line is stable and greppable:
    ["invariants: unattested_running=0 scrub_failures=0 ..."] on a
    passing run. *)
val summary : report -> string

(** {1 DDoS: the CuckooGuard pair under adversarial traffic}

    A seeded SYN-flood event stream ({!Trace.Attackgen.syn_flood}) is
    replayed through the SYN-cookie split proxy backed by a cuckoo-filter
    whitelist ({!Nf.Syn_proxy} -> {!Nf.Cuckoo}) once per protection mode.
    Per mode, the attacker's reach into the NF's private memory is probed
    with real machine accesses (the same checks as [lib/attacks]):

    - if a cross-tenant {e write} lands ([tampered]), the attacker flips
      whitelist bits and benign flows lose their admission;
    - if a cross-tenant {e read} lands ([key_stolen]), the attacker
      forges valid cookie echoes and saturates the fixed filter.

    Each mode reports benign goodput relative to an attack-free baseline
    pass, plus a no-defense conntrack proxy (per-SYN state at the same
    byte budget) that collapses under state exhaustion.  Memory of the
    protected pair stays flat at its reservation in every mode — the
    fixed-memory defense the paper's isolation model makes safe. *)

type ddos_config = {
  d_seed : int;
  d_benign_flows : int;
  d_attack_factor : int;  (** spoofed SYNs per benign packet *)
  d_packets_per_flow : int;  (** benign data packets after the handshake *)
  d_fp_bits : int;  (** whitelist fingerprint bits *)
  d_log2_buckets : int;  (** whitelist size: 2^k buckets x 4 slots *)
  d_conntrack_entry_bytes : int;  (** naive per-SYN state, unprotected pass *)
  d_corrupt_period : int;  (** tampered modes: one bit flip per k attack pkts *)
  d_modes : Nicsim.Machine.mode list;
}

val ddos_modes : Nicsim.Machine.mode list
(** The five evaluated protection modes (SE-UM with xkphys hiding). *)

val default_ddos_config : ddos_config
(** Seed 42, 256 benign flows, 10x attack factor, 2^10-bucket whitelist. *)

val ddos_mode_id : Nicsim.Machine.mode -> string
(** Short id ("se-s" .. "snic"), mirroring [Oracle.Campaign.mode_id]. *)

type ddos_mode_report = {
  dm_mode : Nicsim.Machine.mode;
  dm_tampered : bool;  (** a cross-tenant write landed in NF memory *)
  dm_key_stolen : bool;  (** a cross-tenant read of NF memory succeeded *)
  dm_baseline_goodput : int;  (** benign data pkts delivered, no attack *)
  dm_goodput : int;  (** benign data pkts delivered under attack *)
  dm_unprotected_goodput : int;  (** naive conntrack proxy, no cookies *)
  dm_goodput_ratio : float;
  dm_unprotected_ratio : float;
  dm_attack_pkts : int;
  dm_attack_dropped : int;
  dm_benign_dropped : int;
  dm_challenges : int;
  dm_admitted : int;
  dm_forged_admits : int;  (** key-stolen modes: forged cookies accepted *)
  dm_corrupt_flips : int;  (** tampered modes: filter bits flipped *)
  dm_whitelist_load : float;
  dm_mem_reserved_bytes : int;  (** proxy whitelist + tracker, fixed *)
  dm_mem_peak_bytes : int;
  dm_mem_flat : bool;  (** peak = reserved: the fixed-reservation story *)
  dm_unprotected_mem_peak_bytes : int;
  dm_unprotected_mem_wanted_bytes : int;  (** per-SYN state demand *)
}

type ddos_report = {
  d_config : ddos_config;
  d_mode_reports : ddos_mode_report list;
  d_benign_pkts : int;
  d_attack_pkts : int;
  d_events_digest : int;  (** attack-generator determinism fingerprint *)
  d_snic_goodput_ratio : float;
  d_snic_mem_flat : bool;
  d_snic_tampered : bool;
  d_snic_key_stolen : bool;
}

(** [run_ddos ?sink config] — per mode: probe the attacker's reach, run
    the attack-free baseline, the protected pass and the no-defense
    conntrack pass over the same seeded event stream.  [sink] receives
    the [ddos_*] hot-path counters of the protected passes.  Raises
    [Invalid_argument] on an empty mode list, fewer than 1 benign flow,
    an attack factor < 1 or a corrupt period < 1. *)
val run_ddos : ?sink:Obs.sink -> ddos_config -> ddos_report

(** Human-readable rollup; ends with the stable greppable line
    ["invariants: snic_goodput=1.0000 snic_mem_flat=1 snic_tampered=0
    snic_key_stolen=0"] on a passing run. *)
val ddos_summary : ddos_report -> string

(** {2 Fabric scenario}

    Attested NIC-to-NIC channels carrying a cross-NIC NF chain: the
    CuckooGuard pair is split across two NICs — SYN proxy on NIC 0,
    cuckoo flow tracker on NIC 1 — and every inter-stage packet crosses
    a {!Fabric.Channel} whose key came out of the full attestation
    handshake on both endpoints.  A seeded benign stream establishes
    flows through the split chain; then

    - the tracker NIC is killed mid-stream: establishment to the dead
      NIC must fail closed, the stage is re-launched on the spare,
      re-attested, re-linked, and the old sender's replay buffer is
      replayed so the rebuilt tracker recovers the admitted flows;
    - an adversary re-delivers captured wire frames verbatim (in-window
      — must bounce as replays), pre-window (must bounce as stale) and
      bit-flipped (must fail the MAC);
    - establishment probes with a mis-staged image and with a cloned EK
      under a fabricated NIC id must be refused with typed errors.

    Benign frames must never trip the authenticator, and goodput with
    the failover must match the failure-free baseline pass. *)

type fabric_config = {
  f_seed : int;
  f_nics : int;  (** >= 3: proxy NIC, tracker NIC, failover spare *)
  f_flows : int;  (** benign flows in the seeded stream *)
  f_packets_per_flow : int;
  f_window : int;  (** receiver anti-replay window (1..62) *)
  f_buffer : int;  (** sender replay-buffer capacity (failover state) *)
  f_replay : int;  (** adversarial re-deliveries of in-window frames *)
  f_reorder : int;  (** adversarial re-deliveries of pre-window frames *)
  f_tamper : int;  (** adversarial bit-flipped frames *)
  f_kill : bool;  (** kill the tracker NIC mid-run and fail over *)
  f_fp_bits : int;  (** whitelist fingerprint bits *)
  f_log2_buckets : int;  (** whitelist size: 2^k buckets x 4 slots *)
  f_bytes_per_mb : int;
}

val default_fabric_config : fabric_config
(** Seed 42, 3 NICs, 96 flows, window 32, one mid-run NIC kill. *)

type fabric_report = {
  f_config : fabric_config;
  f_benign_pkts : int;
  f_events_digest : int;  (** generator determinism fingerprint *)
  f_handshakes : int;  (** successful attested establishments *)
  f_hops : int;  (** frames that crossed an inter-NIC link *)
  f_admitted : int;  (** flows the proxy admitted to the whitelist *)
  f_baseline_goodput : int;  (** benign data pkts delivered, no failure *)
  f_goodput : int;  (** ... with the mid-run NIC kill + failover *)
  f_goodput_ratio : float;
  f_benign_mac_failures : int;  (** must stay 0 *)
  f_replay_sent : int;
  f_replay_rejected : int;
  f_stale_sent : int;
  f_stale_rejected : int;
  f_tamper_sent : int;
  f_tamper_rejected : int;
  f_failed_over : bool;  (** the tracker stage was re-homed *)
  f_dead_establish_refused : bool;  (** channel to the dead NIC refused *)
  f_state_replayed : int;  (** buffered payloads replayed into the new stage *)
  f_state_recovered : int;  (** admitted flows present in the rebuilt tracker *)
  f_misstage_rejected : bool;  (** mis-staged image -> [Attest_failed] *)
  f_clone_rejected : bool;  (** cloned EK under a new NIC id -> [Identity_reuse] *)
}

val run_fabric : ?sink:Obs.sink -> fabric_config -> fabric_report
(** [run_fabric ?sink config] — a failure-free baseline pass, then the
    instrumented pass with the NIC kill and the adversarial replays,
    then the two negative establishment probes.  [sink] receives the
    [fabric_*] hot-path counters and the per-hop spans of the
    instrumented pass.  Raises [Invalid_argument] on fewer than 3 NICs,
    fewer than 1 flow or packet per flow, a window outside 1..62, a
    negative buffer or negative adversarial counts. *)

val run_fabric_with : ?sink:Obs.sink -> ?domains:int -> fabric_config -> fabric_report
(** [run_fabric_with ?sink ?domains config] — [domains] parallelises the
    rack boots; the report is bit-identical for any value. *)

val run_fabric_many : ?domains:int -> shards:int -> fabric_config -> fabric_report array
(** [shards] independent fabric runs under derived seeds, merged by
    shard index (deterministic for any [domains]). *)

val fabric_fail_closed : fabric_report -> bool
(** Every establishment that had to be refused was refused: mis-staged
    image, cloned identity, and (when the kill ran) the dead NIC. *)

val fabric_summary : fabric_report -> string
(** Human-readable rollup; ends with the stable greppable line
    ["invariants: benign_mac_fail=0 replay_rejects=24/24
    stale_rejects=24/24 tamper_rejects=16/16 goodput_ratio=1.0000
    failover=1 fail_closed=1"] on a passing default run. *)
