(** Fault-storm scenarios: the fleet under gray failures.

    Boots a rack clean (every tenant placed and attested with no faults
    armed), then arms a per-NIC {!Faults} plan — every
    [flaky_stride]-th NIC at full storm intensity, the others at a
    background drizzle — and runs traffic rounds interleaved with DRAM
    rot, fail-stop injections ({!Failure}) and {!Supervisor} ticks.

    The report captures what the acceptance criteria grep for: the
    [unattested_running] and [scrub_failures] invariants, recovery-latency
    percentiles (fault to re-attested), goodput under faults, and the
    concatenated per-NIC injection log. Everything is a deterministic
    function of [seed]: same seed, byte-identical log and summary. *)

type config = {
  seed : int;
  n_nics : int;
  n_tenants : int;
  policy : Policy.t;
  rounds : int;
  packets_per_round : int;
  intensity : float; (* scales every fault rate; 1.0 = default storm *)
  flaky_stride : int; (* every k-th NIC gets the full storm; 0 = none *)
  dram_flips_per_round : int;
  kill_nics : int; (* fail-stop budget across the run *)
  kill_nfs : int;
  bytes_per_mb : int;
  supervisor : Supervisor.config;
}

(** seed 42, 8 NICs / 24 tenants, 4 rounds × 400 packets, full storm on
    every 3rd NIC, 2 DRAM flips per round, 1 NIC + 2 NF fail-stop kills. *)
val default_config : config

type round_report = {
  index : int;
  traffic : Frontend.stats;
  failures : Failure.report option;
  unattested_running : int; (* at the round's quiesce point — must be 0 *)
  faults_so_far : int; (* cumulative injected faults across the fleet *)
}

type report = {
  config : config;
  rounds : round_report list;
  settle_ticks : int; (* extra supervisor ticks to re-home stragglers *)
  initial_attested : int;
  final_attested : int;
  final_unplaced : int;
  unattested_running : int;
  max_unattested_observed : int; (* max across every quiesce point *)
  scrub_failures : int;
  replacements : int;
  retries : int;
  quarantines : int;
  readmissions : int;
  watchdog_failovers : int;
  alarms : int;
  fault_counts : (string * int) list; (* site name -> fleet-wide firings *)
  total_faults : int;
  injection_log : string; (* per-NIC logs, replayable byte-for-byte *)
  recovery_ms : float list; (* fault -> re-attested, oldest first *)
  recovery_p50 : float option; (* None until >= 2 samples exist *)
  recovery_p90 : float option;
  recovery_p99 : float option;
  goodput : float; (* forwarded / injected across all rounds *)
  alive_nics : int;
  quarantined_nics : int;
}

val run : config -> report

(** [run_with ?sink config] also hands back the orchestrator for
    inspection.  When [sink] records ({!Obs.create}), every NIC traces
    its device events into it (one Chrome pid per NIC) and the fleet
    telemetry shares its registry — this is what [snic_cli trace]
    uses. *)
val run_with : ?sink:Obs.sink -> config -> report * Orchestrator.t

(** ["-"] for [None], ["12.34ms"] for [Some] — how the summary and the
    bench render optional recovery quantiles. *)
val quantile_str : float option -> string

(** Human-readable rollup. The invariants line is stable and greppable:
    ["invariants: unattested_running=0 scrub_failures=0 ..."] on a
    passing run. *)
val summary : report -> string
