(** Fault-storm scenarios: the fleet under gray failures.

    Boots a rack clean (every tenant placed and attested with no faults
    armed), then arms a per-NIC {!Faults} plan — every
    [flaky_stride]-th NIC at full storm intensity, the others at a
    background drizzle — and runs traffic rounds interleaved with DRAM
    rot, fail-stop injections ({!Failure}) and {!Supervisor} ticks.

    The report captures what the acceptance criteria grep for: the
    [unattested_running] and [scrub_failures] invariants, recovery-latency
    percentiles (fault to re-attested), goodput under faults, and the
    concatenated per-NIC injection log. Everything is a deterministic
    function of [seed]: same seed, byte-identical log and summary. *)

type config = {
  seed : int;
  n_nics : int;
  n_tenants : int;
  policy : Policy.t;
  rounds : int;
  packets_per_round : int;
  intensity : float; (* scales every fault rate; 1.0 = default storm *)
  flaky_stride : int; (* every k-th NIC gets the full storm; 0 = none *)
  dram_flips_per_round : int;
  kill_nics : int; (* fail-stop budget across the run *)
  kill_nfs : int;
  bytes_per_mb : int;
  supervisor : Supervisor.config;
}

(** seed 42, 8 NICs / 24 tenants, 4 rounds × 400 packets, full storm on
    every 3rd NIC, 2 DRAM flips per round, 1 NIC + 2 NF fail-stop kills. *)
val default_config : config

type round_report = {
  index : int;
  traffic : Frontend.stats;
  failures : Failure.report option;
  unattested_running : int; (* at the round's quiesce point — must be 0 *)
  faults_so_far : int; (* cumulative injected faults across the fleet *)
}

type report = {
  config : config;
  rounds : round_report list;
  settle_ticks : int; (* extra supervisor ticks to re-home stragglers *)
  initial_attested : int;
  final_attested : int;
  final_unplaced : int;
  unattested_running : int;
  max_unattested_observed : int; (* max across every quiesce point *)
  scrub_failures : int;
  replacements : int;
  retries : int;
  quarantines : int;
  readmissions : int;
  watchdog_failovers : int;
  alarms : int;
  fault_counts : (string * int) list; (* site name -> fleet-wide firings *)
  total_faults : int;
  injection_log : string; (* per-NIC logs, replayable byte-for-byte *)
  recovery_ms : float list; (* fault -> re-attested, oldest first *)
  recovery_p50 : float option; (* None until >= 2 samples exist *)
  recovery_p90 : float option;
  recovery_p99 : float option;
  goodput : float; (* forwarded / injected across all rounds *)
  alive_nics : int;
  quarantined_nics : int;
}

(** [run ?domains config] — [domains] (default 1) parallelizes the NIC
    boot phase ({!Orchestrator.create}); the storm itself is sequential
    and the report is byte-identical for every value. *)
val run : ?domains:int -> config -> report

(** [run_with ?sink ?domains config] also hands back the orchestrator
    for inspection.  When [sink] records ({!Obs.create}), every NIC
    traces its device events into it (one Chrome pid per NIC) and the
    fleet telemetry shares its registry — this is what [snic_cli trace]
    uses. *)
val run_with : ?sink:Obs.sink -> ?domains:int -> config -> report * Orchestrator.t

(** [run_many ?domains ?record ~shards config] runs [shards] independent
    storms, shard [i] re-seeded with
    [Par.Seed.derive ~seed:config.seed ~shard:i], fanned across
    [domains] OCaml domains (default 1; each shard runs single-domain
    inside).  Reports return in shard order, byte-identical for every
    [domains] value — any shard reproduces alone via {!run} with its
    derived seed.  With [record] each shard gets its own recording sink
    (returned with its report) for the caller to merge through
    [Obs.Metrics.merge_into]; see PARALLELISM.md. *)
val run_many : ?domains:int -> ?record:bool -> shards:int -> config -> (report * Obs.sink) array

(** {2 Noisy-neighbor / starvation scenarios}

    The performance-isolation counterpart of the fault storm: tenant 0
    floods the rack's shared IO fabric (bus, DMA, accelerator) while
    the remaining tenants run small latency-sensitive requests under an
    SLO.  The fabric is fronted by a {!Nicsim.Qos} credit arbiter and
    the {!Supervisor} watches per-round SLO deltas, quarantining the
    {e aggressor tenant} (drain + probation readmission) when victim
    violations are sustained.  An identical-seed pass with the arbiter
    bypassed provides the unprotected baseline.  Deterministic: same
    seed, byte-identical summary. *)

type qos_config = {
  q_seed : int;
  q_nics : int;
  q_tenants : int; (* tenant 0 is the aggressor; >= 2 *)
  q_rounds : int;
  q_requests : int; (* victim requests per tenant per round *)
  q_factor : int; (* aggressor load multiplier *)
  q_epoch : int; (* qos accounting epoch, cycles *)
  q_slo : int; (* victim latency SLO, cycles *)
  q_starve : bool; (* zero structural slack: capacity = sum of guarantees *)
  q_policy : Policy.t;
  q_bytes_per_mb : int;
  q_supervisor : Supervisor.config;
}

(** seed 42, 4 NICs / 8 tenants (1 aggressor + 7 victims), 8 rounds of
    40 victim requests at 8x aggressor load, 10k-cycle epochs, 2k-cycle
    SLO, structural slack enabled. *)
val default_qos_config : qos_config

type qos_tenant = {
  qt_tid : int;
  qt_aggressor : bool;
  qt_grants : int;
  qt_throttles : int;
  qt_borrowed : int; (* credits granted beyond the guarantee *)
  qt_share : float; (* worst-resource granted/requested fraction *)
  qt_p50 : float option; (* latency quantiles, cycles *)
  qt_p90 : float option;
  qt_p99 : float option;
  qt_samples : int;
  qt_slo_violations : int;
  qt_quarantined : bool; (* breaker went Open at least once *)
}

type qos_report = {
  q_config : qos_config;
  q_outcomes : qos_tenant list; (* tenant 0 first *)
  q_victim_p99 : float option; (* worst victim p99 over the whole run *)
  q_victim_p99_steady : float option; (* worst victim p99, final round *)
  q_unprotected_p99 : float option; (* worst victim p99, arbiter bypassed *)
  q_share_min : float; (* min victim guaranteed-share kept — floor 0.9 *)
  q_starved : int; (* victims with zero grants — must be 0 *)
  q_aggressor_throttles : int;
  q_quarantines : int; (* noisy-tenant breaker trips *)
  q_readmissions : int;
  q_slo_violations : int;
  q_lat_fairness : Obs.Fairness.report; (* jain over victim 1/p99 *)
}

(** [run_qos ?sink config] — protected pass (arbiter + supervisor) then
    the unprotected baseline pass, returning the report and the
    supervisor for breaker inspection.  Raises [Invalid_argument] for
    fewer than 2 tenants or fewer requests than epochs per round. *)
val run_qos : ?sink:Obs.sink -> qos_config -> qos_report * Supervisor.t

(** Human-readable rollup; ends with the stable greppable line
    ["invariants: starved_victims=0 share_min=... aggressor_quarantined=1"]. *)
val qos_summary : qos_report -> string

(** ["-"] for [None], ["12.34ms"] for [Some] — how the summary and the
    bench render optional recovery quantiles. *)
val quantile_str : float option -> string

(** ["-"] for [None], ["7056cyc"] for [Some] — the cycle-domain
    counterpart used by the QoS summary and bench. *)
val cycles_str : float option -> string

(** Human-readable rollup. The invariants line is stable and greppable:
    ["invariants: unattested_running=0 scrub_failures=0 ..."] on a
    passing run. *)
val summary : report -> string

(** {1 DDoS: the CuckooGuard pair under adversarial traffic}

    A seeded SYN-flood event stream ({!Trace.Attackgen.syn_flood}) is
    replayed through the SYN-cookie split proxy backed by a cuckoo-filter
    whitelist ({!Nf.Syn_proxy} -> {!Nf.Cuckoo}) once per protection mode.
    Per mode, the attacker's reach into the NF's private memory is probed
    with real machine accesses (the same checks as [lib/attacks]):

    - if a cross-tenant {e write} lands ([tampered]), the attacker flips
      whitelist bits and benign flows lose their admission;
    - if a cross-tenant {e read} lands ([key_stolen]), the attacker
      forges valid cookie echoes and saturates the fixed filter.

    Each mode reports benign goodput relative to an attack-free baseline
    pass, plus a no-defense conntrack proxy (per-SYN state at the same
    byte budget) that collapses under state exhaustion.  Memory of the
    protected pair stays flat at its reservation in every mode — the
    fixed-memory defense the paper's isolation model makes safe. *)

type ddos_config = {
  d_seed : int;
  d_benign_flows : int;
  d_attack_factor : int;  (** spoofed SYNs per benign packet *)
  d_packets_per_flow : int;  (** benign data packets after the handshake *)
  d_fp_bits : int;  (** whitelist fingerprint bits *)
  d_log2_buckets : int;  (** whitelist size: 2^k buckets x 4 slots *)
  d_conntrack_entry_bytes : int;  (** naive per-SYN state, unprotected pass *)
  d_corrupt_period : int;  (** tampered modes: one bit flip per k attack pkts *)
  d_modes : Nicsim.Machine.mode list;
}

val ddos_modes : Nicsim.Machine.mode list
(** The five evaluated protection modes (SE-UM with xkphys hiding). *)

val default_ddos_config : ddos_config
(** Seed 42, 256 benign flows, 10x attack factor, 2^10-bucket whitelist. *)

val ddos_mode_id : Nicsim.Machine.mode -> string
(** Short id ("se-s" .. "snic"), mirroring [Oracle.Campaign.mode_id]. *)

type ddos_mode_report = {
  dm_mode : Nicsim.Machine.mode;
  dm_tampered : bool;  (** a cross-tenant write landed in NF memory *)
  dm_key_stolen : bool;  (** a cross-tenant read of NF memory succeeded *)
  dm_baseline_goodput : int;  (** benign data pkts delivered, no attack *)
  dm_goodput : int;  (** benign data pkts delivered under attack *)
  dm_unprotected_goodput : int;  (** naive conntrack proxy, no cookies *)
  dm_goodput_ratio : float;
  dm_unprotected_ratio : float;
  dm_attack_pkts : int;
  dm_attack_dropped : int;
  dm_benign_dropped : int;
  dm_challenges : int;
  dm_admitted : int;
  dm_forged_admits : int;  (** key-stolen modes: forged cookies accepted *)
  dm_corrupt_flips : int;  (** tampered modes: filter bits flipped *)
  dm_whitelist_load : float;
  dm_mem_reserved_bytes : int;  (** proxy whitelist + tracker, fixed *)
  dm_mem_peak_bytes : int;
  dm_mem_flat : bool;  (** peak = reserved: the fixed-reservation story *)
  dm_unprotected_mem_peak_bytes : int;
  dm_unprotected_mem_wanted_bytes : int;  (** per-SYN state demand *)
}

type ddos_report = {
  d_config : ddos_config;
  d_mode_reports : ddos_mode_report list;
  d_benign_pkts : int;
  d_attack_pkts : int;
  d_events_digest : int;  (** attack-generator determinism fingerprint *)
  d_snic_goodput_ratio : float;
  d_snic_mem_flat : bool;
  d_snic_tampered : bool;
  d_snic_key_stolen : bool;
}

(** [run_ddos ?sink config] — per mode: probe the attacker's reach, run
    the attack-free baseline, the protected pass and the no-defense
    conntrack pass over the same seeded event stream.  [sink] receives
    the [ddos_*] hot-path counters of the protected passes.  Raises
    [Invalid_argument] on an empty mode list, fewer than 1 benign flow,
    an attack factor < 1 or a corrupt period < 1. *)
val run_ddos : ?sink:Obs.sink -> ddos_config -> ddos_report

(** Human-readable rollup; ends with the stable greppable line
    ["invariants: snic_goodput=1.0000 snic_mem_flat=1 snic_tampered=0
    snic_key_stolen=0"] on a passing run. *)
val ddos_summary : ddos_report -> string
