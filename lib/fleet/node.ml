open Nicsim

type shape = {
  label : string;
  cores : int;
  dram_bytes : int;
  accel_clusters : int;
  cluster_size : int;
  page_menu : int list;
  tlb_budget_per_core : int;
  vf_slots : int;
}

(* Small NICs carry Equal-2MB TLBs with fewer locked entries than a
   Monitor-class NF needs (~183); medium/large NICs pay for the flexible
   menus of §5.2 and can host anything. *)
let small =
  {
    label = "small";
    cores = 8;
    dram_bytes = 256 * 1024 * 1024;
    accel_clusters = 2;
    cluster_size = 8;
    page_menu = Costmodel.Page_packing.equal_2mb;
    tlb_budget_per_core = 96;
    vf_slots = 256;
  }

let medium =
  {
    label = "medium";
    cores = 12;
    dram_bytes = 512 * 1024 * 1024;
    accel_clusters = 3;
    cluster_size = 8;
    page_menu = Costmodel.Page_packing.flex_low;
    tlb_budget_per_core = 64;
    vf_slots = 512;
  }

let large =
  {
    label = "large";
    cores = 16;
    dram_bytes = 1024 * 1024 * 1024;
    accel_clusters = 4;
    cluster_size = 16;
    page_menu = Costmodel.Page_packing.flex_high;
    tlb_budget_per_core = 32;
    vf_slots = 1024;
  }

let shape_of_index i = match i mod 4 with 0 -> small | 1 -> medium | 2 -> large | _ -> medium

type t = {
  id : int;
  serial : string;
  shape : shape;
  api : Snic.Api.t;
  mutable alive : bool;
  mutable quarantined : bool;
  mutable committed_bytes : int;
  mutable nf_count : int;
  mutable vf_used : int;
}

let machine_config shape =
  {
    Machine.mode = Machine.Snic;
    cores = shape.cores;
    dram_bytes = shape.dram_bytes;
    (* Hard partitioning needs at least one way per core domain. *)
    l2 = Cache.create ~sets:1024 ~ways:(max 16 shape.cores) ~line_bits:6 ~mode:Cache.Hard ~domains:shape.cores;
    bus = Bus.create ~policy:(Bus.Temporal { epoch = 96; dead = 16 }) ~clients:shape.cores;
    accels =
      List.map
        (fun kind -> Accel.create ~kind ~threads:(shape.accel_clusters * shape.cluster_size) ~cluster_size:shape.cluster_size)
        [ Accel.Dpi; Accel.Zip; Accel.Raid ];
    host_mem_bytes = 16 * 1024 * 1024;
    rx_buffer_bytes = 512 * 1024;
    tx_buffer_bytes = 512 * 1024;
  }

let boot ?identity_seed ~vendor ~id shape =
  let serial = Printf.sprintf "fleet-%04d" id in
  (* Distinct EK/AK material per NIC — identities must not be
     interchangeable across the rack. *)
  let identity_seed = match identity_seed with Some s -> s | None -> 0x51C + (7919 * (id + 1)) in
  let api = Snic.Api.boot_with ~vendor ~serial ~identity_seed (machine_config shape) in
  { id; serial; shape; api; alive = true; quarantined = false; committed_bytes = 0; nf_count = 0; vf_used = 0 }

let id t = t.id
let api t = t.api
let shape t = t.shape
let serial t = t.serial
let alive t = t.alive
let kill t = t.alive <- false
let quarantined t = t.quarantined
let quarantine t = t.quarantined <- true
let unquarantine t = t.quarantined <- false
let free_cores t = List.length (Machine.free_cores (Snic.Api.machine t.api))

(* Leave room for the OS staging buffer and buffer pools: the operator
   only promises tenants half the DRAM. *)
let usable_bytes t = t.shape.dram_bytes / 2
let mem_headroom t = usable_bytes t - t.committed_bytes
let free_clusters t kind = Accel.free_clusters (Machine.accel (Snic.Api.machine t.api) kind)
let nf_count t = t.nf_count
let entries_for t (d : Workload.demand) = Workload.tlb_entries d ~page_sizes:t.shape.page_menu

let admits t (d : Workload.demand) =
  t.alive && (not t.quarantined)
  && free_cores t >= d.Workload.cores
  && mem_headroom t >= d.Workload.mem_bytes
  && List.for_all (fun (kind, n) -> free_clusters t kind >= n) d.Workload.accels
  && entries_for t d <= t.shape.tlb_budget_per_core

let commit t (d : Workload.demand) =
  t.committed_bytes <- t.committed_bytes + d.Workload.mem_bytes;
  t.nf_count <- t.nf_count + 1

let release t (d : Workload.demand) =
  t.committed_bytes <- max 0 (t.committed_bytes - d.Workload.mem_bytes);
  t.nf_count <- max 0 (t.nf_count - 1)

let vf_slots t = t.shape.vf_slots
let vf_used t = t.vf_used
let vf_headroom t = t.shape.vf_slots - t.vf_used

let attach_vf t =
  if t.alive && (not t.quarantined) && vf_headroom t > 0 then begin
    t.vf_used <- t.vf_used + 1;
    true
  end
  else false

let release_vf t = t.vf_used <- max 0 (t.vf_used - 1)
