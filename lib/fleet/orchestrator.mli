(** The fleet control plane: boots a rack of heterogeneous S-NICs,
    places tenant NFs on them through the real management API
    ([nf_create]), and runs the Appendix A attestation handshake for
    every placement before the tenant's NF is considered live.

    Everything is driven by one seed: NIC identities, tenant demands and
    the attestation transcripts are all deterministic functions of it, so
    a scenario replays byte-for-byte. *)

type config = {
  seed : int;
  n_nics : int;
  n_tenants : int;
  policy : Policy.t;
  bytes_per_mb : int; (* memory scale: profiled MB -> simulated bytes *)
}

(** 16 NICs, 64 tenants, first-fit, 1 KB per profiled MB, seed 42. *)
val default_config : config

type placement = { node : Node.t; vnic : Snic.Vnic.t; nf : Nf.Types.t }

type tenant = {
  tid : int;
  port : int; (* the dst_port the front-end steers to this tenant *)
  demand : Workload.demand;
  mutable placement : placement option;
  mutable attested : bool;
}

type t

(** [create ?sink ?domains config] boots the NICs and places + attests
    every tenant.  When [sink] is a recording sink, every NIC's devices
    trace into it under the NIC's id as Chrome pid, and the fleet
    telemetry registers its counters in the sink's registry (one
    Prometheus dump covers both).  Default: {!Obs.null} — no recording,
    branch-only overhead.

    [domains] (default 1) fans the independent NIC boots — identity
    keygen is the expensive part — across OCaml domains via
    [Par.Engine.map]; sink attachment and tenant placement stay on the
    calling domain, so the resulting rack is bit-identical for every
    [domains] value. *)
val create : ?sink:Obs.sink -> ?domains:int -> config -> t

val config : t -> config
val nodes : t -> Node.t array
val tenants : t -> tenant array
val telemetry : t -> Telemetry.t
val vendor : t -> Snic.Identity.vendor

(** Why a placement attempt failed, split so a supervisor can react:
    [No_capacity] is an alarm (retrying cannot help until something is
    evicted or readmitted), [Create_failed (Stage_fault _)] and
    [Attest_failed] are transient under gray failures and worth
    retrying. *)
type place_error =
  | No_capacity
  | Create_failed of Snic.Api.create_error
  | Attest_failed of string

val place_error_to_string : place_error -> string

(** [place t tenant] — run the policy, [nf_create], then attest.
    Telemetry records failures by kind. Placing an already-placed tenant
    is a no-op ([Ok ()], no counters move). *)
val place : t -> tenant -> (unit, place_error) result

(** [place] + a replacement tick in telemetry (failure-recovery path).
    A no-op (no tick) when the tenant is already placed. *)
val replace : t -> tenant -> (unit, place_error) result

(** [evict t tenant] — the tenant lost its NF (its NIC died or the NF
    was killed); clears the placement and operator-side accounting.
    Does not touch the (possibly dead) hardware. *)
val evict : t -> tenant -> unit

(** {2 Invariant probes (the acceptance checks)} *)

(** Placed-and-attested tenant count. *)
val attested_count : t -> int

(** Tenants with no placement right now. *)
val unplaced_count : t -> int

(** Functions live on *alive* NICs that do not correspond to an
    attested tenant placement — must be 0 at all quiesce points. *)
val unattested_running : t -> int

(** Live function count across alive NICs (hardware's own view). *)
val live_nf_total : t -> int
