(** The self-healing layer: health checks, bounded retry with backoff,
    circuit-breaker quarantine, and an accelerator watchdog.

    PR 1's fleet recovered from *fail-stop* losses (a NIC dies, an NF is
    destroyed). This module handles the *gray* failures {!Faults} injects:
    devices that are still up but stalling, corrupting, or hanging. The
    supervisor reacts only through the public control-plane API — place,
    evict, [nf_destroy] — so every recovery path exercises the same
    attestation and scrub machinery as a first placement, and the paper's
    invariants (no unattested function runs; teardown scrubs) are
    re-verified rather than assumed after every repair.

    All randomness (backoff jitter) comes from one seeded stream, and
    time is a logical cycle clock, so a seeded run replays its recovery
    schedule byte for byte. *)

type config = {
  max_attempts : int; (* bounded retry per placement *)
  backoff_base : int; (* cycles before the first retry *)
  backoff_cap : int; (* ceiling on a single backoff step *)
  health_floor : int; (* breaker trips when a NIC's score sinks below *)
  fault_penalty : int; (* score lost per device fault since last tick *)
  recovery_bonus : int; (* score regained per quiet tick *)
  probation_rounds : int; (* rounds a tripped NIC sits out (doubles per re-trip) *)
  watchdog_budget : int; (* cycles an accelerator canary may take *)
  scrub_cost : int; (* cycles charged per verified teardown scrub *)
  attest_cost : int; (* cycles charged per successful stage + attest *)
}

val default_config : config

(** Per-NIC circuit breaker: [Closed] (healthy) → [Open] (quarantined
    until the round shown, window doubling on each re-trip) →
    [Probation] (readmitted, re-trips at the first relapse) → [Closed]. *)
type breaker = Closed | Open of { until_round : int } | Probation of { until_round : int }

type t

(** [create ~seed orch config] — the supervisor's jitter stream derives
    from [seed]; recovery-latency samples are also observed into the
    [fleet_recovery_ms] histogram of the orchestrator's telemetry
    registry. *)
val create : seed:int -> Orchestrator.t -> config -> t

(** The logical cycle clock (advanced by ticks and backoff waits). *)
val clock : t -> int

(** [No_capacity] placement outcomes — failures retrying cannot fix. *)
val alarms : t -> int

(** Teardowns whose RAM was not zero afterwards — must stay 0. *)
val scrub_failures : t -> int

(** Current health score of a NIC, clamped to [0, 100]. *)
val health : t -> nic:int -> int

(** Current circuit-breaker state of a NIC. *)
val breaker : t -> nic:int -> breaker

(** [place_with_retry t tenant] — {!Orchestrator.replace} under bounded
    retry: transient failures (stage faults, attestation rejections)
    back off exponentially with seeded jitter and try again, up to
    [max_attempts]; [No_capacity] alarms and returns immediately. *)
val place_with_retry : t -> Orchestrator.tenant -> (unit, Orchestrator.place_error) result

(** [note_evict t tenant] — evict, timestamping the displacement so the
    eventual re-attestation yields a recovery-latency sample. *)
val note_evict : t -> Orchestrator.tenant -> unit

(** One supervision pass: score every alive NIC from fault telemetry and
    active probes (bus heartbeat, DMA pattern loopback), run breaker
    transitions (trip → orderly drain with verified scrubs → probation →
    readmission), sweep accelerator watchdog canaries, then re-place all
    stranded tenants. *)
val tick : t -> round:int -> unit

(** Fault→re-attested latency samples, in milliseconds at 1.2 GHz,
    oldest first. *)
val recovery_samples_ms : t -> float list

(** [recovery_quantile_ms t q] — the [q]-quantile (in [0,1]) of the
    recovery samples via {!Obs.Metrics.quantile_of_samples}: [None]
    until at least 2 samples exist (a single displacement has no p99). *)
val recovery_quantile_ms : t -> float -> float option
