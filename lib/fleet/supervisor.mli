(** The self-healing layer: health checks, bounded retry with backoff,
    circuit-breaker quarantine, and an accelerator watchdog.

    PR 1's fleet recovered from *fail-stop* losses (a NIC dies, an NF is
    destroyed). This module handles the *gray* failures {!Faults} injects:
    devices that are still up but stalling, corrupting, or hanging. The
    supervisor reacts only through the public control-plane API — place,
    evict, [nf_destroy] — so every recovery path exercises the same
    attestation and scrub machinery as a first placement, and the paper's
    invariants (no unattested function runs; teardown scrubs) are
    re-verified rather than assumed after every repair.

    All randomness (backoff jitter) comes from one seeded stream, and
    time is a logical cycle clock, so a seeded run replays its recovery
    schedule byte for byte. *)

type config = {
  max_attempts : int; (* bounded retry per placement *)
  backoff_base : int; (* cycles before the first retry *)
  backoff_cap : int; (* ceiling on a single backoff step *)
  health_floor : int; (* breaker trips when a NIC's score sinks below *)
  fault_penalty : int; (* score lost per device fault since last tick *)
  recovery_bonus : int; (* score regained per quiet tick *)
  probation_rounds : int; (* rounds a tripped NIC sits out (doubles per re-trip) *)
  watchdog_budget : int; (* cycles an accelerator canary may take *)
  scrub_cost : int; (* cycles charged per verified teardown scrub *)
  attest_cost : int; (* cycles charged per successful stage + attest *)
  slo_bad_share : float; (* violation fraction that marks a tenant's round bad *)
  slo_patience : int; (* consecutive bad rounds = "sustained" violation *)
}

val default_config : config

(** Per-NIC circuit breaker: [Closed] (healthy) → [Open] (quarantined
    until the round shown, window doubling on each re-trip) →
    [Probation] (readmitted, re-trips at the first relapse) → [Closed]. *)
type breaker = Closed | Open of { until_round : int } | Probation of { until_round : int }

type t

(** [create ~seed orch config] — the supervisor's jitter stream derives
    from [seed]; recovery-latency samples are also observed into the
    [fleet_recovery_ms] histogram of the orchestrator's telemetry
    registry. *)
val create : seed:int -> Orchestrator.t -> config -> t

(** The logical cycle clock (advanced by ticks and backoff waits). *)
val clock : t -> int

(** [No_capacity] placement outcomes — failures retrying cannot fix. *)
val alarms : t -> int

(** Teardowns whose RAM was not zero afterwards — must stay 0. *)
val scrub_failures : t -> int

(** Current health score of a NIC, clamped to [0, 100]. *)
val health : t -> nic:int -> int

(** Current circuit-breaker state of a NIC. *)
val breaker : t -> nic:int -> breaker

(** {2 Per-tenant SLO supervision}

    Sustained SLO violation is a health signal like any other — but the
    faulty unit is a {e tenant}, not a NIC: one noisy neighbor
    over-consuming shared credit degrades its victims' tails while
    every NIC stays healthy.  {!note_qos} therefore drives a
    per-tenant instance of the same breaker state machine, and a trip
    quarantines the {e noisy tenant's} NFs (drain with verified scrubs,
    re-place on probation) instead of the hosting NIC. *)

(** One tenant's round deltas, reported from a {!Nicsim.Qos} arbiter:
    SLO violations and latency samples this round, plus the credits it
    consumed beyond its guarantee (the noisiness signal used for
    attribution when a victim's violation is sustained). *)
type qos_round = { violations : int; samples : int; over_credits : int }

(** [note_qos t ~round stats] — one SLO supervision pass over per-tenant
    round deltas.  Expires quarantine windows into probation (re-placing
    the drained tenant), closes clean probations, scores each tenant's
    round against [slo_bad_share], and on a sustained violation
    ([slo_patience] consecutive bad rounds) trips the breaker of the
    top over-guarantee consumer — windows double per re-trip exactly
    like the NIC breaker. *)
val note_qos : t -> round:int -> (int * qos_round) list -> unit

(** Current breaker state of a tenant ([Closed] if never reported). *)
val tenant_breaker : t -> tenant:int -> breaker

(** True while the tenant's breaker is [Open] — {!tick} will not
    re-place its NFs. *)
val tenant_quarantined : t -> tenant:int -> bool

(** [place_with_retry t tenant] — {!Orchestrator.replace} under bounded
    retry: transient failures (stage faults, attestation rejections)
    back off exponentially with seeded jitter and try again, up to
    [max_attempts]; [No_capacity] alarms and returns immediately. *)
val place_with_retry : t -> Orchestrator.tenant -> (unit, Orchestrator.place_error) result

(** [note_evict t tenant] — evict, timestamping the displacement so the
    eventual re-attestation yields a recovery-latency sample. *)
val note_evict : t -> Orchestrator.tenant -> unit

(** One supervision pass: score every alive NIC from fault telemetry and
    active probes (bus heartbeat, DMA pattern loopback), run breaker
    transitions (trip → orderly drain with verified scrubs → probation →
    readmission), sweep accelerator watchdog canaries, then re-place all
    stranded tenants. *)
val tick : t -> round:int -> unit

(** Fault→re-attested latency samples, in milliseconds at 1.2 GHz,
    oldest first. *)
val recovery_samples_ms : t -> float list

(** [recovery_quantile_ms t q] — the [q]-quantile (in [0,1]) of the
    recovery samples via {!Obs.Metrics.quantile_of_samples}: [None]
    until at least 2 samples exist (a single displacement has no p99). *)
val recovery_quantile_ms : t -> float -> float option
