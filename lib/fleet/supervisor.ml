open Nicsim

type config = {
  max_attempts : int;
  backoff_base : int;
  backoff_cap : int;
  health_floor : int;
  fault_penalty : int;
  recovery_bonus : int;
  probation_rounds : int;
  watchdog_budget : int;
  scrub_cost : int;
  attest_cost : int;
  slo_bad_share : float;
  slo_patience : int;
}

let default_config =
  {
    max_attempts = 6;
    backoff_base = 50_000;
    backoff_cap = 5_000_000;
    health_floor = 40;
    fault_penalty = 7;
    recovery_bonus = 15;
    probation_rounds = 2;
    (* Far above any honest service time (a jumbo DPI request is ~100k
       cycles), far below Accel.hang_horizon. *)
    watchdog_budget = 50_000_000;
    scrub_cost = 120_000;
    attest_cost = 600_000;
    (* Half a round's requests blowing their SLO marks the round bad;
       two bad rounds in a row is "sustained", not a blip. *)
    slo_bad_share = 0.5;
    slo_patience = 2;
  }

type breaker = Closed | Open of { until_round : int } | Probation of { until_round : int }

type nic_state = { mutable score : int; mutable breaker : breaker; mutable trips : int; mutable last_faults : int }

(* Per-tenant breaker, driven by SLO telemetry rather than device
   faults: [bad_rounds] counts consecutive rounds in which too many of
   the tenant's requests blew their SLO. *)
type tenant_state = { mutable t_breaker : breaker; mutable t_trips : int; mutable bad_rounds : int }

type t = {
  config : config;
  orch : Orchestrator.t;
  rng : Trace.Rng.t;
  nics : nic_state array;
  mutable clock : int; (* logical cycle clock, shared by probes and backoff *)
  evicted_at : (int, int) Hashtbl.t; (* tenant id -> clock when displaced *)
  mutable recovery_cycles : int list; (* newest first *)
  recovery_hist : Obs.Metrics.histogram; (* same samples, in the shared registry *)
  mutable alarms : int; (* No_capacity placements — retrying cannot help *)
  mutable scrub_failures : int;
  tenant_states : (int, tenant_state) Hashtbl.t; (* tenant id -> SLO breaker *)
}

let create ~seed orch config =
  {
    config;
    orch;
    rng = Trace.Rng.create ~seed:(seed lxor 0x5AFE);
    nics =
      Array.map
        (fun _ -> { score = 100; breaker = Closed; trips = 0; last_faults = 0 })
        (Orchestrator.nodes orch);
    clock = 0;
    evicted_at = Hashtbl.create 64;
    recovery_cycles = [];
    recovery_hist =
      Obs.Metrics.histogram ~help:"tenant displacement-to-reattestation latency"
        (Telemetry.registry (Orchestrator.telemetry orch))
        "fleet_recovery_ms";
    alarms = 0;
    scrub_failures = 0;
    tenant_states = Hashtbl.create 64;
  }

let clock t = t.clock
let alarms t = t.alarms
let scrub_failures t = t.scrub_failures
let health t ~nic = t.nics.(nic).score
let breaker t ~nic = t.nics.(nic).breaker

let tenant_state t tid =
  match Hashtbl.find_opt t.tenant_states tid with
  | Some s -> s
  | None ->
    let s = { t_breaker = Closed; t_trips = 0; bad_rounds = 0 } in
    Hashtbl.replace t.tenant_states tid s;
    s

let tenant_breaker t ~tenant = (tenant_state t tenant).t_breaker
let tenant_quarantined t ~tenant =
  match (tenant_state t tenant).t_breaker with Open _ -> true | Closed | Probation _ -> false

let cycles_per_ms = 1_200_000. (* 1.2 GHz cores *)
let recovery_samples_ms t = List.rev_map (fun c -> float_of_int c /. cycles_per_ms) t.recovery_cycles

(* The shared quantile convention (Metrics.quantile_of_samples): [None]
   until there are at least 2 samples — a single displacement has no
   p99, and the old code happily interpolated garbage out of it. *)
let recovery_quantile_ms t q = Obs.Metrics.quantile_of_samples (recovery_samples_ms t) q

(* Note the displacement time so the re-attestation that eventually
   lands can be turned into a recovery-latency sample. *)
let note_evict t (tenant : Orchestrator.tenant) =
  if not (Hashtbl.mem t.evicted_at tenant.Orchestrator.tid) then
    Hashtbl.replace t.evicted_at tenant.Orchestrator.tid t.clock;
  Orchestrator.evict t.orch tenant

let note_recovered t (tenant : Orchestrator.tenant) =
  match Hashtbl.find_opt t.evicted_at tenant.Orchestrator.tid with
  | None -> ()
  | Some at ->
    let cycles = t.clock - at in
    t.recovery_cycles <- cycles :: t.recovery_cycles;
    Obs.Metrics.observe t.recovery_hist (float_of_int cycles /. cycles_per_ms);
    Hashtbl.remove t.evicted_at tenant.Orchestrator.tid

(* Bounded retry with exponential backoff + seeded jitter. Stage faults
   and attestation rejections are transient under gray failures — retry;
   No_capacity cannot improve by retrying — alarm and give up this tick. *)
let place_with_retry t tenant =
  let rec go attempt =
    match Orchestrator.replace t.orch tenant with
    | Ok () ->
      t.clock <- t.clock + t.config.attest_cost;
      note_recovered t tenant;
      Ok ()
    | Error Orchestrator.No_capacity ->
      t.alarms <- t.alarms + 1;
      Error Orchestrator.No_capacity
    | Error (Orchestrator.Create_failed (Snic.Api.Stage_fault _) | Orchestrator.Attest_failed _) as e ->
      if attempt >= t.config.max_attempts then (match e with Error err -> Error err | Ok () -> assert false)
      else begin
        Telemetry.retry (Orchestrator.telemetry t.orch);
        let backoff = min t.config.backoff_cap (t.config.backoff_base * (1 lsl (attempt - 1))) in
        let jitter = Trace.Rng.int t.rng (max 1 (backoff / 4)) in
        t.clock <- t.clock + backoff + jitter;
        go (attempt + 1)
      end
    | Error e -> Error e (* resource exhaustion / launch refusal: not transient *)
  in
  go 1

let destroy_verified t node (tenant : Orchestrator.tenant) =
  match tenant.Orchestrator.placement with
  | None -> ()
  | Some p ->
    let handle = Snic.Vnic.handle p.Orchestrator.vnic in
    (match Snic.Api.nf_destroy (Node.api node) ~id:handle.Snic.Instructions.id with
    | Ok () ->
      let mem = Machine.mem (Snic.Api.machine (Node.api node)) in
      if Physmem.is_zero mem ~pos:handle.Snic.Instructions.mem_base ~len:handle.Snic.Instructions.mem_len then begin
        let ns = Telemetry.nic (Orchestrator.telemetry t.orch) (Node.id node) in
        ns.Telemetry.scrubs_verified <- ns.Telemetry.scrubs_verified + 1
      end
      else t.scrub_failures <- t.scrub_failures + 1
    | Error _ -> t.scrub_failures <- t.scrub_failures + 1);
    t.clock <- t.clock + t.config.scrub_cost;
    note_evict t tenant

(* ---- per-tenant SLO supervision --------------------------------- *)

type qos_round = { violations : int; samples : int; over_credits : int }

(* Drain the noisy tenant's NFs — verified scrub, eviction — and open
   its breaker.  Unlike a NIC trip, the hosting NICs stay in service:
   the health signal names a tenant, so the quarantine does too. *)
let trip_tenant t ~round tid =
  let st = tenant_state t tid in
  let window = t.config.probation_rounds * (1 lsl min st.t_trips 4) in
  st.t_trips <- st.t_trips + 1;
  st.bad_rounds <- 0;
  st.t_breaker <- Open { until_round = round + window };
  Telemetry.tenant_quarantine (Orchestrator.telemetry t.orch);
  Array.iter
    (fun (tn : Orchestrator.tenant) ->
      if tn.Orchestrator.tid = tid then
        match tn.Orchestrator.placement with
        | Some p -> destroy_verified t p.Orchestrator.node tn
        | None -> ())
    (Orchestrator.tenants t.orch)

(* One SLO supervision pass: [stats] carries each tenant's round deltas
   (SLO violations, latency samples, credits consumed beyond its
   guarantee).  Sustained violation by any tenant is the health signal;
   the breaker then quarantines the *noisy* tenant — the one burning
   the most over-guarantee credit — not the NIC hosting the victim. *)
let note_qos t ~round stats =
  let tel = Orchestrator.telemetry t.orch in
  (* Breaker transitions first: quarantine windows expire into
     probation (re-place on readmission), probation expires closed. *)
  Hashtbl.iter
    (fun tid st ->
      match st.t_breaker with
      | Open { until_round } when round >= until_round ->
        st.t_breaker <- Probation { until_round = round + t.config.probation_rounds };
        Telemetry.tenant_readmission tel;
        Array.iter
          (fun (tn : Orchestrator.tenant) ->
            if tn.Orchestrator.tid = tid && tn.Orchestrator.placement = None then
              ignore (place_with_retry t tn))
          (Orchestrator.tenants t.orch)
      | Probation { until_round } when round >= until_round -> st.t_breaker <- Closed
      | _ -> ())
    t.tenant_states;
  (* Score the round. *)
  let sustained = ref false in
  List.iter
    (fun (tid, q) ->
      Telemetry.add_slo_violations tel q.violations;
      let st = tenant_state t tid in
      if not (tenant_quarantined t ~tenant:tid) then begin
        let bad =
          q.samples > 0 && float_of_int q.violations /. float_of_int q.samples > t.config.slo_bad_share
        in
        if bad then st.bad_rounds <- st.bad_rounds + 1 else st.bad_rounds <- 0;
        if st.bad_rounds >= t.config.slo_patience then sustained := true
      end)
    stats;
  (* Attribute and intervene: the noisy tenant is the top over-guarantee
     consumer this round (ties to the lowest id).  No over-user means
     nobody to blame — leave the breakers alone. *)
  if !sustained then begin
    let noisy =
      List.fold_left
        (fun acc (tid, q) ->
          if q.over_credits <= 0 || tenant_quarantined t ~tenant:tid then acc
          else
            match acc with
            | Some (_, best) when best >= q.over_credits -> acc
            | _ -> Some (tid, q.over_credits))
        None stats
    in
    match noisy with
    | Some (tid, _) ->
      trip_tenant t ~round tid;
      (* The intervention changes the contention picture; restart every
         streak so probation relapses are judged on fresh evidence. *)
      Hashtbl.iter (fun _ st -> st.bad_rounds <- 0) t.tenant_states
    | None -> ()
  end

(* Circuit breaker trip: quarantine the NIC and drain it in an orderly
   fashion — every hosted NF is destroyed (scrub verified) and its tenant
   evicted, so nothing keeps running on a NIC the control plane no longer
   trusts; the stranded-tenant pass re-places them elsewhere. *)
let trip t ~round nic_i node =
  let st = t.nics.(nic_i) in
  let window = t.config.probation_rounds * (1 lsl min st.trips 4) in
  st.trips <- st.trips + 1;
  st.breaker <- Open { until_round = round + window };
  Node.quarantine node;
  Telemetry.quarantine (Orchestrator.telemetry t.orch);
  Array.iter
    (fun (tn : Orchestrator.tenant) ->
      match tn.Orchestrator.placement with
      | Some p when Node.id p.Orchestrator.node = Node.id node -> destroy_verified t node tn
      | _ -> ())
    (Orchestrator.tenants t.orch)

(* Active health probes against live hardware: a bus heartbeat that must
   complete without a timeout, and a DMA loopback whose pattern must read
   back intact (catching both outright errors and silent corruption).
   Returns the score penalty. *)
let probe t node =
  let tel = Orchestrator.telemetry t.orch in
  let machine = Snic.Api.machine (Node.api node) in
  let penalty = ref 0 in
  Telemetry.health_probe tel;
  let bus_done = Bus.request (Machine.bus machine) ~client:0 ~now:t.clock ~cost:8 in
  if bus_done - t.clock >= Bus.timeout_penalty then begin
    Telemetry.probe_failure tel;
    penalty := !penalty + 20
  end;
  let dma = Machine.dma machine in
  let pattern = Printf.sprintf "health-probe-%08x" (t.clock land 0xFFFFFFFF) in
  let len = String.length pattern in
  (match Alloc.alloc (Machine.alloc machine) ~owner:Physmem.Nic_os len with
  | None -> () (* no scratch space: not a health signal *)
  | Some scratch ->
    let host = Dma.host_mem dma in
    Physmem.write_bytes host ~pos:4096 pattern;
    (match Dma.transfer ~checked:false dma ~bank:0 ~direction:Dma.To_nic ~nic_addr:scratch ~host_addr:4096 ~len with
    | Error _ ->
      Telemetry.probe_failure tel;
      penalty := !penalty + 20
    | Ok () ->
      if Physmem.read_bytes (Machine.mem machine) ~pos:scratch ~len <> pattern then begin
        Telemetry.probe_failure tel;
        penalty := !penalty + 20
      end);
    Alloc.free (Machine.alloc machine) scratch);
  !penalty

(* Watchdog: submit a tiny canary on each accelerator cluster a placed
   tenant owns; a completion past the budget means the engine is wedged
   (an injected hang lands ~1e9 cycles out), so the NF fails over —
   teardown releases the cluster and resets its threads. *)
let watchdog t =
  let tel = Orchestrator.telemetry t.orch in
  Array.iter
    (fun (tn : Orchestrator.tenant) ->
      match tn.Orchestrator.placement with
      | None -> ()
      | Some p -> (
        let node = p.Orchestrator.node in
        if Node.alive node then
          let handle = Snic.Vnic.handle p.Orchestrator.vnic in
          match handle.Snic.Instructions.clusters with
          | [] -> ()
          | (kind, cluster) :: _ ->
            let a = Machine.accel (Snic.Api.machine (Node.api node)) kind in
            let done_at = Accel.submit a ~cluster ~now:t.clock ~bytes:64 in
            ignore (Accel.take_garbage a);
            if done_at - t.clock > t.config.watchdog_budget then begin
              Telemetry.watchdog_failover tel;
              destroy_verified t node tn;
              ignore (place_with_retry t tn)
            end))
    (Orchestrator.tenants t.orch)

let round_quantum = 1_000_000

let tick t ~round =
  t.clock <- t.clock + round_quantum;
  let tel = Orchestrator.telemetry t.orch in
  Array.iteri
    (fun i node ->
      let st = t.nics.(i) in
      if Node.alive node then begin
        (* Passive signal: device faults logged since the last tick. *)
        let total =
          match Machine.faults (Snic.Api.machine (Node.api node)) with Some plan -> Faults.total plan | None -> 0
        in
        let fresh = total - st.last_faults in
        st.last_faults <- total;
        let penalty = (fresh * t.config.fault_penalty) + probe t node in
        st.score <- max 0 (min 100 (st.score + t.config.recovery_bonus - penalty));
        match st.breaker with
        | Closed -> if st.score < t.config.health_floor then trip t ~round i node
        | Open { until_round } ->
          if round >= until_round then begin
            Node.unquarantine node;
            st.breaker <- Probation { until_round = round + t.config.probation_rounds };
            (* Readmit with a clean slate — probation re-trips on the
               first sign of relapse anyway. *)
            st.score <- max st.score t.config.health_floor;
            Telemetry.readmission tel
          end
        | Probation { until_round } ->
          if st.score < t.config.health_floor then trip t ~round i node
          else if round >= until_round then st.breaker <- Closed
      end)
    (Orchestrator.nodes t.orch);
  watchdog t;
  (* Re-place every stranded tenant (bounded retry each) — except the
     quarantined ones, which stay drained until their window expires. *)
  Array.iter
    (fun (tn : Orchestrator.tenant) ->
      if tn.Orchestrator.placement = None && not (tenant_quarantined t ~tenant:tn.Orchestrator.tid)
      then ignore (place_with_retry t tn))
    (Orchestrator.tenants t.orch)
