type config = { seed : int; n_nics : int; n_tenants : int; policy : Policy.t; bytes_per_mb : int }

let default_config = { seed = 42; n_nics = 16; n_tenants = 64; policy = Policy.First_fit; bytes_per_mb = 1024 }

type placement = { node : Node.t; vnic : Snic.Vnic.t; nf : Nf.Types.t }

type tenant = {
  tid : int;
  port : int;
  demand : Workload.demand;
  mutable placement : placement option;
  mutable attested : bool;
}

type t = {
  config : config;
  vendor : Snic.Identity.vendor;
  nodes : Node.t array;
  tenants : tenant array;
  telemetry : Telemetry.t;
  rng : Random.State.t; (* nonces + DH ephemerals for the handshakes *)
}

let config t = t.config
let nodes t = t.nodes
let tenants t = t.tenants
let telemetry t = t.telemetry
let vendor t = t.vendor

let tenant_port tid = 10000 + tid

let launch_config (tenant : tenant) : Snic.Instructions.launch_config =
  let d = tenant.demand in
  {
    Snic.Instructions.default_config with
    cores = [];
    image = Printf.sprintf "fleet:%s:tenant-%03d" (Workload.kind_name d.Workload.kind) tenant.tid;
    memory_bytes = d.Workload.mem_bytes;
    rules = [ { Nicsim.Pktio.match_any with dst_port = Some tenant.port } ];
    rx_bytes = 16 * 1024;
    tx_bytes = 16 * 1024;
    sched = Nicsim.Sched.Fifo;
    accels = d.Workload.accels;
  }

(* The tenant recomputes the measurement it *expects* from the config it
   requested plus the launch-assigned cores and RAM window the handle
   reports — exactly what a remote verifier would do (§4.6). A NIC OS
   that staged a different image or altered the rules produces a quote
   this rejects. *)
let expected_measurement (cfg : Snic.Instructions.launch_config) (handle : Snic.Instructions.handle) =
  Snic.Measurement.of_config ~image:cfg.Snic.Instructions.image ~cores:handle.Snic.Instructions.cores
    ~mem_base:handle.Snic.Instructions.mem_base ~mem_len:handle.Snic.Instructions.mem_len
    ~rules:cfg.Snic.Instructions.rules ~accels:cfg.Snic.Instructions.accels ~rx_bytes:cfg.Snic.Instructions.rx_bytes
    ~tx_bytes:cfg.Snic.Instructions.tx_bytes ~sched:cfg.Snic.Instructions.sched

let attest t node (vnic : Snic.Vnic.t) ~expected =
  let instr = Snic.Api.instructions (Node.api node) in
  match Snic.Attestation.attester_of_nf instr ~id:(Snic.Vnic.id vnic) with
  | Error e -> Error (Snic.Instructions.error_to_string e)
  | Ok attester -> (
    match
      Snic.Session.handshake t.rng
        ~vendor_public:(Snic.Identity.vendor_public t.vendor)
        ~expected_measurement:expected attester
    with
    | Ok _keys ->
      Telemetry.add_attest_ms t.telemetry Memprof.Instr_latency.attest_ms;
      Ok ()
    | Error e -> Error e)

type place_error =
  | No_capacity (* no alive, unquarantined NIC admits the demand — alarm *)
  | Create_failed of Snic.Api.create_error (* nf_create refused; Stage_fault is retryable *)
  | Attest_failed of string (* launched but rejected the quote; torn back down *)

let place_error_to_string = function
  | No_capacity -> "no NIC admits the demand"
  | Create_failed e -> Printf.sprintf "nf_create failed: %s" (Snic.Api.create_error_to_string e)
  | Attest_failed e -> Printf.sprintf "attestation failed: %s" e

let place t tenant =
  if tenant.placement <> None then Ok () (* already placed: placing again is a no-op *)
  else
    match Policy.choose t.config.policy t.nodes tenant.demand with
    | None ->
      Telemetry.placement_failure t.telemetry;
      Error No_capacity
    | Some node -> (
      let cfg = launch_config tenant in
      match Snic.Api.nf_create_r (Node.api node) cfg with
      | Error e ->
        Telemetry.placement_failure t.telemetry;
        Error (Create_failed e)
      | Ok vnic -> (
        Node.commit node tenant.demand;
        let expected = expected_measurement cfg (Snic.Vnic.handle vnic) in
        match attest t node vnic ~expected with
        | Ok () ->
          tenant.placement <- Some { node; vnic; nf = Workload.nf_instance tenant.demand.Workload.kind };
          tenant.attested <- true;
          (Telemetry.tenant t.telemetry tenant.tid).Telemetry.placements <-
            (Telemetry.tenant t.telemetry tenant.tid).Telemetry.placements + 1;
          (Telemetry.nic t.telemetry (Node.id node)).Telemetry.hosted <-
            (Telemetry.nic t.telemetry (Node.id node)).Telemetry.hosted + 1;
          Ok ()
        | Error e ->
          (* An unattestable function must not run: tear it straight back
             down and report the failure. *)
          (Telemetry.tenant t.telemetry tenant.tid).Telemetry.attest_failures <-
            (Telemetry.tenant t.telemetry tenant.tid).Telemetry.attest_failures + 1;
          (match Snic.Api.nf_destroy (Node.api node) ~id:(Snic.Vnic.id vnic) with _ -> ());
          Node.release node tenant.demand;
          Error (Attest_failed e)))

let replace t tenant =
  if tenant.placement <> None then Ok () (* already placed: nothing to replace *)
  else begin
    Telemetry.replacement t.telemetry;
    place t tenant
  end

let evict t tenant =
  (match tenant.placement with
  | None -> ()
  | Some p ->
    Node.release p.node tenant.demand;
    (Telemetry.tenant t.telemetry tenant.tid).Telemetry.evictions <-
      (Telemetry.tenant t.telemetry tenant.tid).Telemetry.evictions + 1);
  tenant.placement <- None;
  tenant.attested <- false

let create ?(sink = Obs.null) ?(domains = 1) config =
  let vendor = Snic.Identity.make_vendor ~seed:config.seed ~name:"Fleet Operator NIC Vendor" () in
  (* NIC boots are independent (each derives its identity from the seed
     and signs with the immutable vendor key), so they fan out across
     domains; everything that touches shared state — sink attachment,
     tenant placement — stays on the calling domain, after the join, in
     NIC order.  The booted rack is bit-identical for any [domains]. *)
  let nodes =
    Par.Engine.map ~domains ~shards:config.n_nics (fun ~shard:i ->
        Node.boot ~identity_seed:(config.seed + (7919 * (i + 1))) ~vendor ~id:i (Node.shape_of_index i))
  in
  Array.iteri
    (fun i node ->
      (* Each NIC records into the shared stream under its own pid. *)
      let nic_sink = Obs.for_process sink ~pid:i in
      Obs.name_process nic_sink ~pid:i (Printf.sprintf "nic%d" i);
      Nicsim.Machine.set_sink (Snic.Api.machine (Node.api node)) nic_sink)
    nodes;
  let tenants =
    Array.init config.n_tenants (fun i ->
        {
          tid = i;
          port = tenant_port i;
          demand = Workload.demand_of_kind ~bytes_per_mb:config.bytes_per_mb (Workload.kind_of_index i);
          placement = None;
          attested = false;
        })
  in
  let t =
    {
      config;
      vendor;
      nodes;
      tenants;
      telemetry = Telemetry.create ?registry:(Obs.registry sink) ();
      rng = Random.State.make [| config.seed; 0xA77E57 |];
    }
  in
  Array.iter (fun tenant -> ignore (place t tenant)) tenants;
  t

let attested_count t =
  Array.fold_left (fun acc tn -> if tn.attested && tn.placement <> None then acc + 1 else acc) 0 t.tenants

let unplaced_count t = Array.fold_left (fun acc tn -> if tn.placement = None then acc + 1 else acc) 0 t.tenants

let live_nf_total t =
  Array.fold_left
    (fun acc node ->
      if Node.alive node then
        acc + List.length (Snic.Instructions.live_functions (Snic.Api.instructions (Node.api node)))
      else acc)
    0 t.nodes

let unattested_running t =
  (* Hardware's view vs the control plane's: every function live on an
     alive NIC must be an attested tenant placement. *)
  let attested = Hashtbl.create 64 in
  Array.iter
    (fun tn ->
      match tn.placement with
      | Some p when tn.attested -> Hashtbl.replace attested (Node.id p.node, Snic.Vnic.id p.vnic) ()
      | _ -> ())
    t.tenants;
  Array.fold_left
    (fun acc node ->
      if not (Node.alive node) then acc
      else
        List.fold_left
          (fun acc (h : Snic.Instructions.handle) ->
            if Hashtbl.mem attested (Node.id node, h.Snic.Instructions.id) then acc else acc + 1)
          acc
          (Snic.Instructions.live_functions (Snic.Api.instructions (Node.api node))))
    0 t.nodes
