type report = {
  mode : Nicsim.Machine.mode;
  seed : int option;
  ops : int;
  executed : int;
  skipped : int;
  violations : Refmodel.violation list;
}

let mode_id = function
  | Nicsim.Machine.Liquidio_se_s -> "se-s"
  | Nicsim.Machine.Liquidio_se_um { nf_xkphys = false } -> "se-um"
  | Nicsim.Machine.Liquidio_se_um { nf_xkphys = true } -> "se-um-xk"
  | Nicsim.Machine.Agilio -> "agilio"
  | Nicsim.Machine.Bluefield -> "bluefield"
  | Nicsim.Machine.Snic -> "snic"

let all_modes =
  [
    Nicsim.Machine.Liquidio_se_s;
    Nicsim.Machine.Liquidio_se_um { nf_xkphys = false };
    Nicsim.Machine.Liquidio_se_um { nf_xkphys = true };
    Nicsim.Machine.Agilio;
    Nicsim.Machine.Bluefield;
    Nicsim.Machine.Snic;
  ]

let mode_of_id s = List.find_opt (fun m -> String.equal (mode_id m) s) all_modes

let default_slots = 6

let gen_ops ?(fabric = false) ~slots ~ops ~seed () =
  let rng = Trace.Rng.create ~seed in
  List.init ops (fun _ -> Op.gen ~fabric rng ~slots)

let gen_ops_array ?fabric ~slots ~ops ~seed () = Array.of_list (gen_ops ?fabric ~slots ~ops ~seed ())

(* One harness bounds check per 512 ops instead of one list cell per op;
   the interpretation itself is unchanged (Harness.step_batch is step in
   a loop), so reports are byte-identical to the per-op path. *)
let batch_size = 512

let replay_array ?(slots = default_slots) ~mode ops =
  let h = Harness.create ~mode ~slots in
  Par.Batch.iter_slices ~batch:batch_size ~len:(Array.length ops) (fun ~pos ~len ->
      Harness.step_batch h ops ~pos ~len);
  {
    mode;
    seed = None;
    ops = Array.length ops;
    executed = Harness.executed h;
    skipped = Harness.skipped h;
    violations = Harness.violations h;
  }

let replay ?slots ~mode ops = replay_array ?slots ~mode (Array.of_list ops)

let run ?(slots = default_slots) ?fabric ~mode ~ops ~seed () =
  let r = replay_array ~slots ~mode (gen_ops_array ?fabric ~slots ~ops ~seed ()) in
  { r with seed = Some seed }

let run_sharded ?domains ?(slots = default_slots) ?fabric ~mode ~ops ~seed ~shards () =
  Par.Engine.map_seeded ?domains ~seed ~shards (fun ~shard:_ ~seed ->
      run ~slots ?fabric ~mode ~ops ~seed ())

let counts r =
  List.map
    (fun cls -> (cls, List.length (List.filter (fun (v : Refmodel.violation) -> v.cls = cls) r.violations)))
    Refmodel.all_classes

let to_string r =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "mode: %s (%s)\n" (Nicsim.Machine.mode_name r.mode) (mode_id r.mode));
  (match r.seed with
  | Some s -> Buffer.add_string b (Printf.sprintf "seed: %d\n" s)
  | None -> Buffer.add_string b "seed: - (explicit trace)\n");
  Buffer.add_string b (Printf.sprintf "ops: %d (executed %d, skipped %d)\n" r.ops r.executed r.skipped);
  Buffer.add_string b (Printf.sprintf "violations: %d\n" (List.length r.violations));
  List.iter
    (fun (cls, n) ->
      if n > 0 then begin
        let first = List.find (fun (v : Refmodel.violation) -> v.cls = cls) r.violations in
        Buffer.add_string b
          (Printf.sprintf "  %-18s %6d  first at step %d: %s\n" (Refmodel.cls_to_string cls) n first.step
             (Op.to_line first.op))
      end)
    (counts r);
  Buffer.contents b

(* ---- trace files --------------------------------------------------- *)

let trace_to_string ~mode ~slots ops =
  let b = Buffer.create 1024 in
  Buffer.add_string b "# snic-oracle-trace v1\n";
  Buffer.add_string b (Printf.sprintf "mode %s\n" (mode_id mode));
  Buffer.add_string b (Printf.sprintf "slots %d\n" slots);
  List.iter (fun op -> Buffer.add_string b (Op.to_line op ^ "\n")) ops;
  Buffer.contents b

let trace_of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno ~mode ~slots acc = function
    | [] -> (
      match mode with
      | None -> Error "trace has no \"mode <id>\" directive"
      | Some m -> Ok (m, Option.value slots ~default:default_slots, List.rev acc))
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) ~mode ~slots acc rest
      else begin
        match String.split_on_char ' ' trimmed with
        | [ "mode"; id ] -> (
          match mode_of_id id with
          | Some m -> go (lineno + 1) ~mode:(Some m) ~slots acc rest
          | None -> Error (Printf.sprintf "line %d: unknown mode %S" lineno id))
        | [ "slots"; n ] -> (
          match int_of_string_opt n with
          | Some k when k >= 1 && k <= 8 -> go (lineno + 1) ~mode ~slots:(Some k) acc rest
          | _ -> Error (Printf.sprintf "line %d: slots must be an integer in 1..8" lineno))
        | _ -> (
          match mode with
          | None -> Error (Printf.sprintf "line %d: expected \"mode <id>\" before ops" lineno)
          | Some _ -> (
            match Op.of_line trimmed with
            | Ok op -> go (lineno + 1) ~mode ~slots (op :: acc) rest
            | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)))
      end
  in
  go 1 ~mode:None ~slots:None [] lines
