type page_class = P_free | P_os | P_tenant of int

let class_to_string = function
  | P_free -> "free"
  | P_os -> "nic-os"
  | P_tenant s -> Printf.sprintf "tenant slot %d" s

type who = W_os | W_nf of int

(* The whole per-mode policy, flat. Compare Machine.check_phys: same
   decisions, none of the machinery. *)
let allows ~mode ~who ~owner ~secure ~via_tlb =
  match (mode, who) with
  | (Nicsim.Machine.Liquidio_se_s | Nicsim.Machine.Agilio), _ -> true
  | Nicsim.Machine.Liquidio_se_um _, W_os -> true
  | Nicsim.Machine.Liquidio_se_um { nf_xkphys }, W_nf _ -> via_tlb || nf_xkphys
  | Nicsim.Machine.Bluefield, W_os -> true
  | Nicsim.Machine.Bluefield, W_nf _ -> via_tlb || not secure
  | Nicsim.Machine.Snic, W_os -> ( match owner with P_tenant _ -> false | P_free | P_os -> true)
  | Nicsim.Machine.Snic, W_nf s -> ( match owner with P_tenant o -> o = s | P_free | P_os -> false)

type cls =
  | Cross_tenant_read
  | Cross_tenant_write
  | Os_read_nf
  | Accel_hijack
  | Scrub_residue
  | Stale_translation
  | Model_mismatch

let cls_to_string = function
  | Cross_tenant_read -> "cross-tenant-read"
  | Cross_tenant_write -> "cross-tenant-write"
  | Os_read_nf -> "os-read-nf"
  | Accel_hijack -> "accel-hijack"
  | Scrub_residue -> "scrub-residue"
  | Stale_translation -> "stale-translation"
  | Model_mismatch -> "model-mismatch"

let all_classes =
  [ Cross_tenant_read; Cross_tenant_write; Os_read_nf; Accel_hijack; Scrub_residue; Stale_translation; Model_mismatch ]

let cls_of_string s = List.find_opt (fun c -> String.equal (cls_to_string c) s) all_classes

let ideal_breach ~who ~owner ~write =
  match (who, owner) with
  | W_nf s, P_tenant o when o <> s -> Some (if write then Cross_tenant_write else Cross_tenant_read)
  | W_os, P_tenant _ -> Some (if write then Cross_tenant_write else Os_read_nf)
  | _ -> None

type violation = { step : int; op : Op.t; cls : cls; detail : string }

let key v = cls_to_string v.cls ^ "@" ^ Op.slots_of v.op

let to_string v = Printf.sprintf "step %d [%s] %s: %s" v.step (cls_to_string v.cls) (Op.to_line v.op) v.detail
