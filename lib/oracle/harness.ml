open Nicsim

(* Fixed geometry: slot i owns core i (and DMA bank i), a 256 KB-spaced
   16 KB host DMA window, and UDP port 7000+i for its switch rule. *)
let vbase_const = 0x10000000
let hwin_len = 16 * 1024
let hwin_base slot = 0x100000 + (slot * 0x40000)
let port_of slot = 7000 + slot

type tenant = {
  nf : int;
  base : int;
  len : int;
  vbase : int;
  shadow : Bytes.t; (* mirrors [base, base+len) *)
  cluster : int option; (* claimed DPI cluster *)
  hshadow : Bytes.t; (* mirrors the host window *)
  has_rules : bool;
}

type ghost = { g_nf : int; g_base : int; g_len : int }
type slot_state = Empty | Live of tenant | Ghost of ghost

type t = {
  mode : Machine.mode;
  machine : Machine.t;
  insns : Snic.Instructions.t option; (* Some iff mode = Snic *)
  vendor_public : Crypto.Rsa.public option; (* Some iff mode = Snic *)
  chan_rng : Random.State.t; (* handshake nonces/ephemerals, seeded *)
  chans : (Fabric.Channel.tx * Fabric.Channel.rx) option array; (* per slot *)
  chan_last : string option array; (* last wire frame, for replay probes *)
  mutable chan_next : int; (* channel id allocator *)
  vft : Vf.Table.t; (* one VF slot per tenant slot *)
  qos : Qos.t; (* credit arbiter, one registration per slot *)
  q_spent : int array array; (* reference: slot x resource spend this epoch *)
  mutable q_epoch : int;
  slot_count : int;
  states : slot_state array;
  mutable next_nf : int; (* commodity NF id counter *)
  mutable launches : int; (* varies each launch's secret *)
  mutable step_no : int;
  mutable executed : int;
  mutable skipped : int;
  mutable violations : Refmodel.violation list; (* newest first *)
}

(* The harness pins the arbiter to its degenerate corner: guarantee =
   cap (no borrowing) and capacity = sum of guarantees (no structural
   slack), so the reference model is flat — one per-slot per-epoch
   spend counter, grant iff [spent + cost <= qos_guarantee].  Time is
   the step index, one cycle per op. *)
let qos_guarantee = 64
let qos_epoch_cycles = 256

let create ~mode ~slots =
  if slots < 1 || slots > 8 then invalid_arg "Harness.create: slots must be in 1..8";
  let machine, insns, vendor_public =
    match mode with
    | Machine.Snic ->
      let api = Snic.Api.boot () in
      ( Snic.Api.machine api,
        Some (Snic.Api.instructions api),
        Some (Snic.Identity.vendor_public (Snic.Api.vendor api)) )
    | _ -> (Machine.create (Machine.default_config ~mode), None, None)
  in
  let qos =
    Qos.create
      {
        Qos.epoch = qos_epoch_cycles;
        bus_capacity = slots * qos_guarantee;
        dma_capacity = slots * qos_guarantee;
        accel_capacity = slots * qos_guarantee;
      }
  in
  for s = 0 to slots - 1 do
    Qos.register qos ~tenant:s (Qos.flat ~guarantee:qos_guarantee ~cap:qos_guarantee ())
  done;
  {
    mode;
    machine;
    insns;
    vendor_public;
    chan_rng = Random.State.make [| 0xFAB; slots |];
    chans = Array.make slots None;
    chan_last = Array.make slots None;
    chan_next = 0;
    vft = Vf.Table.create machine { Vf.Table.default_config with Vf.Table.vfs = slots };
    qos;
    q_spent = Array.make_matrix slots 3 0;
    q_epoch = 0;
    slot_count = slots;
    states = Array.make slots Empty;
    next_nf = 0;
    launches = 0;
    step_no = 0;
    executed = 0;
    skipped = 0;
    violations = [];
  }

let mode t = t.mode
let slots t = t.slot_count
let executed t = t.executed
let skipped t = t.skipped
let violations t = List.rev t.violations

let flag t idx op cls detail = t.violations <- { Refmodel.step = idx; op; cls; detail } :: t.violations

let dpi t = Machine.accel t.machine Accel.Dpi

(* Model-side free DPI clusters: total minus live claims. *)
let model_free_clusters t =
  let claimed =
    Array.fold_left (fun n s -> match s with Live { cluster = Some _; _ } -> n + 1 | _ -> n) 0 t.states
  in
  Accel.cluster_count (dpi t) - claimed

(* Recognizable, never-zero per-launch fill patterns. *)
let secret t ~slot ~len =
  let g = t.launches in
  String.init len (fun i -> Char.chr (0x41 + ((i + (slot * 7) + (g * 13)) mod 26)))

let host_pattern t ~slot =
  let g = t.launches in
  String.init hwin_len (fun i -> Char.chr (0x61 + ((i + slot + (g * 5)) mod 26)))

(* Keep a randomly drawn offset inside [0, len - alen]. *)
let clamp ~len ~alen off = if len <= alen then 0 else off mod (len - alen + 1)

let overlaps a alen b blen = a < b + blen && b < a + alen

(* A launch (or a packet buffer) reusing freed pages invalidates any
   ghost covering them: its residue expectations no longer hold. *)
let drop_overlapping_ghosts t ~base ~len ~except =
  Array.iteri
    (fun i s ->
      match s with
      | Ghost g when i <> except && overlaps g.g_base g.g_len base len -> t.states.(i) <- Empty
      | _ -> ())
    t.states

let machine_owner_of_class t = function
  | Refmodel.P_free -> Physmem.Free
  | Refmodel.P_os -> Physmem.Nic_os
  | Refmodel.P_tenant s -> (
    match t.states.(s) with
    | Live u -> Physmem.Nf u.nf
    | _ -> Physmem.Free (* unreachable: class comes from a Live lookup *))

(* Ground-truth page ownership must agree with the model's class. *)
let check_owner t idx op ~addr ~cls =
  let actual = Machine.page_owner t.machine addr in
  let expected = machine_owner_of_class t cls in
  if not (Physmem.owner_equal actual expected) then
    flag t idx op Refmodel.Model_mismatch
      (Format.asprintf "page owner drift at %#x: machine says %a, model says %s" addr Physmem.pp_owner actual
         (Refmodel.class_to_string cls))

let sub_shadow u ~off ~len = Bytes.sub_string u.shadow off len

(* ---- launch ------------------------------------------------------- *)

let install_host_window t ~slot =
  let host = Dma.host_mem (Machine.dma t.machine) in
  let pat = host_pattern t ~slot in
  Physmem.write_bytes host ~pos:(hwin_base slot) pat;
  Bytes.of_string pat

let snic_launch t idx op ~slot ~mem_kb ~accel ~rules =
  let insns = Option.get t.insns in
  let len = mem_kb * 1024 in
  let image = secret t ~slot ~len in
  let free = model_free_clusters t in
  let config =
    {
      Snic.Instructions.default_config with
      cores = [ slot ];
      image;
      memory_bytes = len;
      rules = (if rules then [ { Pktio.match_any with dst_port = Some (port_of slot) } ] else []);
      rx_bytes = 8192;
      tx_bytes = 8192;
      accels = (if accel then [ (Accel.Dpi, 1) ] else []);
      host_window = Some (hwin_base slot, hwin_len);
    }
  in
  match Snic.Instructions.nf_launch insns config with
  | Error e ->
    let expected_full = accel && free = 0 in
    let is_accel_unavailable = match e with Snic.Instructions.Accel_unavailable Accel.Dpi -> true | _ -> false in
    if not (expected_full && is_accel_unavailable) then
      flag t idx op Refmodel.Model_mismatch ("nf_launch refused a configuration the model accepts: " ^ Snic.Instructions.error_to_string e)
  | Ok (h, _) ->
    if accel && free = 0 then
      flag t idx op Refmodel.Model_mismatch "nf_launch granted an accelerator cluster the model thinks is exhausted";
    drop_overlapping_ghosts t ~base:h.mem_base ~len:h.mem_len ~except:slot;
    let hshadow = install_host_window t ~slot in
    let cluster = match h.clusters with (_, c) :: _ -> Some c | [] -> None in
    t.launches <- t.launches + 1;
    t.states.(slot) <-
      Live
        {
          nf = h.id;
          base = h.mem_base;
          len = h.mem_len;
          vbase = h.vbase;
          shadow = Bytes.of_string image;
          cluster;
          hshadow;
          has_rules = rules;
        }

let commodity_launch t idx op ~slot ~mem_kb ~accel ~rules =
  let m = t.machine in
  let mem = Machine.mem m in
  let len = mem_kb * 1024 in
  let nf = t.next_nf in
  t.next_nf <- nf + 1;
  (* Commodity firmware recycles the slot's core lazily, only when the
     next tenant needs it — until now its TLB kept the dead mapping. *)
  (match Machine.core_owner m ~core:slot with
  | Some old -> Machine.unbind_cores m ~nf:old
  | None -> ());
  match Alloc.alloc (Machine.alloc m) ~owner:(Physmem.Nf nf) len with
  | None -> flag t idx op Refmodel.Model_mismatch "allocator refused a launch the model accepts"
  | Some base ->
    (* Commodity managers hand pages over as-is: any predecessor bytes
       still there are a scrub violation, visible at handoff. *)
    if not (Physmem.is_zero mem ~pos:base ~len) then
      flag t idx op Refmodel.Scrub_residue "region handed to a new tenant still holds a predecessor's bytes";
    drop_overlapping_ghosts t ~base ~len ~except:slot;
    Machine.bind_core m ~core:slot ~nf;
    ignore (Tlb.map_region (Machine.core_tlb m ~core:slot) ~vbase:vbase_const ~pbase:base ~len ~writable:true);
    if t.mode = Machine.Bluefield then Machine.set_secure m ~pos:base ~len true;
    let image = secret t ~slot ~len in
    Physmem.write_bytes mem ~pos:base image;
    if rules then begin
      (match Pktio.reserve (Machine.pktio m) ~nf ~rx_bytes:8192 ~tx_bytes:8192 with
      | Ok () -> ()
      | Error e -> flag t idx op Refmodel.Model_mismatch ("VPP reservation refused: " ^ e));
      Pktio.add_rule (Machine.pktio m) ~m:{ Pktio.match_any with dst_port = Some (port_of slot) } ~nf
    end;
    let free = model_free_clusters t in
    let cluster =
      if not accel then None
      else begin
        match Accel.claim_cluster (dpi t) ~nf with
        | None ->
          if free > 0 then
            flag t idx op Refmodel.Model_mismatch "cluster claim refused though the model counts free clusters";
          None
        | Some c ->
          if free = 0 then
            flag t idx op Refmodel.Model_mismatch "cluster claim granted though the model counts none free";
          ignore (Tlb.map_region (Accel.cluster_tlb (dpi t) ~cluster:c) ~vbase:vbase_const ~pbase:base ~len ~writable:true);
          if t.mode = Machine.Bluefield then
            Machine.set_secure m ~pos:(Machine.accel_mmio_base m ~kind:Accel.Dpi ~cluster:c) ~len:Physmem.page_size true;
          Some c
      end
    in
    let hshadow = install_host_window t ~slot in
    t.launches <- t.launches + 1;
    t.states.(slot) <-
      Live { nf; base; len; vbase = vbase_const; shadow = Bytes.of_string image; cluster; hshadow; has_rules = rules }

(* ---- teardown ----------------------------------------------------- *)

(* Post-teardown obligations (§4.2): freed pages read zero, and no core
   TLB entry still maps the freed region. *)
let check_teardown_hygiene t idx op ~slot ~(u : tenant) =
  let m = t.machine in
  if not (Physmem.is_zero (Machine.mem m) ~pos:u.base ~len:u.len) then
    flag t idx op Refmodel.Scrub_residue "freed region still holds the dead tenant's bytes";
  let stale =
    List.exists
      (fun (e : Tlb.entry) -> overlaps e.pbase e.size u.base u.len)
      (Machine.tlb_entries m ~core:slot)
  in
  if stale then
    flag t idx op Refmodel.Stale_translation "core TLB still translates into the freed region after teardown"

let teardown t idx op ~slot ~(u : tenant) =
  let m = t.machine in
  (* A tenant's VF dies with it: detach first so the window page is
     scrubbed (S-NIC) and freed before the region teardown runs. *)
  if Vf.Table.attached t.vft ~vf:slot then Vf.Table.detach t.vft ~vf:slot;
  (match t.insns with
  | Some insns -> (
    match Snic.Instructions.nf_teardown insns ~id:u.nf with
    | Ok _ -> ()
    | Error e ->
      flag t idx op Refmodel.Model_mismatch ("nf_teardown refused a live function: " ^ Snic.Instructions.error_to_string e))
  | None ->
    (* Commodity path: release resources, scrub nothing, leave the core
       bound and its TLB (and any DMA windows) dangling. *)
    Pktio.release (Machine.pktio m) ~nf:u.nf;
    (match u.cluster with Some _ -> Accel.release_clusters (dpi t) ~nf:u.nf | None -> ());
    Alloc.free (Machine.alloc m) u.base;
    if t.mode = Machine.Bluefield then Machine.set_secure m ~pos:u.base ~len:u.len false);
  check_teardown_hygiene t idx op ~slot ~u;
  t.states.(slot) <- Ghost { g_nf = u.nf; g_base = u.base; g_len = u.len }

(* ---- memory accesses ---------------------------------------------- *)

(* The actor's model identity and machine principal; None if the slot
   actor is not live (nobody to impersonate — op skipped). *)
let resolve_actor t = function
  | Op.Os -> Some (Refmodel.W_os, Machine.Os)
  | Op.Slot a -> (
    match t.states.(a) with
    | Live ua -> Some (Refmodel.W_nf a, Machine.Nf_code ua.nf)
    | _ -> None)

let virt_read t idx op ~target ~(u : tenant) ~off ~alen =
  let res = Machine.load_bytes t.machine (Machine.Nf_code u.nf) (Machine.Virt { core = target; vaddr = u.vbase + off }) ~len:alen in
  if off + alen <= u.len then begin
    match res with
    | Ok bytes ->
      if not (String.equal bytes (sub_shadow u ~off ~len:alen)) then
        flag t idx op Refmodel.Model_mismatch "virtual self-read returned bytes the model did not predict"
    | Error f ->
      flag t idx op Refmodel.Model_mismatch ("virtual self-read faulted inside the window: " ^ Machine.fault_to_string f)
  end
  else begin
    match res with
    | Error (Machine.Tlb_fault _) -> () (* agreement: past the mapped window *)
    | Ok _ -> flag t idx op Refmodel.Model_mismatch "read past the mapped window succeeded"
    | Error f -> flag t idx op Refmodel.Model_mismatch ("read past the window failed oddly: " ^ Machine.fault_to_string f)
  end

let virt_write t idx op ~target ~(u : tenant) ~off ~alen ~byte =
  let off = clamp ~len:u.len ~alen off in
  let data = String.make alen (Char.chr byte) in
  match Machine.store_bytes t.machine (Machine.Nf_code u.nf) (Machine.Virt { core = target; vaddr = u.vbase + off }) data with
  | Ok () ->
    Bytes.blit_string data 0 u.shadow off alen;
    if not (String.equal (Physmem.read_bytes (Machine.mem t.machine) ~pos:(u.base + off) ~len:alen) data) then
      flag t idx op Refmodel.Model_mismatch "virtual self-write did not land in the backing region"
  | Error f -> flag t idx op Refmodel.Model_mismatch ("virtual self-write faulted: " ^ Machine.fault_to_string f)

(* One physical access, checked both ways: permit/deny agreement with
   [Refmodel.allows], data agreement with the shadow, and — when both
   sides permit — classification against the single-owner ideal. *)
let phys_access t idx op ~who ~principal ~target ~off ~alen ~write_byte =
  let write = write_byte <> None in
  match t.states.(target) with
  | Empty -> false
  | Ghost _ when write -> false (* use-after-free writes would poison residue tracking *)
  | (Live _ | Ghost _) as st ->
    let base, rlen, cls =
      match st with
      | Live u -> (u.base, u.len, Refmodel.P_tenant target)
      | Ghost g -> (g.g_base, g.g_len, Refmodel.P_free)
      | Empty -> assert false
    in
    let off = clamp ~len:rlen ~alen off in
    let addr = base + off in
    check_owner t idx op ~addr ~cls;
    let secure = t.mode = Machine.Bluefield && (match st with Live _ -> true | _ -> false) in
    let allowed = Refmodel.allows ~mode:t.mode ~who ~owner:cls ~secure ~via_tlb:false in
    let describe verb =
      Printf.sprintf "%s %s %d bytes of %s memory at %#x"
        (match who with Refmodel.W_os -> "NIC OS" | Refmodel.W_nf a -> Printf.sprintf "tenant %d" a)
        verb alen (Refmodel.class_to_string cls) addr
    in
    (match write_byte with
    | None -> (
      match (Machine.load_bytes t.machine principal (Machine.Phys addr) ~len:alen, allowed) with
      | Ok bytes, true -> (
        (match Refmodel.ideal_breach ~who ~owner:cls ~write:false with
        | Some breach -> flag t idx op breach (describe "read")
        | None -> ());
        match st with
        | Live u ->
          if not (String.equal bytes (sub_shadow u ~off ~len:alen)) then
            flag t idx op Refmodel.Model_mismatch "permitted read returned bytes the model did not predict"
        | _ ->
          if String.exists (fun c -> c <> '\000') bytes then
            flag t idx op Refmodel.Scrub_residue (describe "read stale bytes from freed"))
      | Error _, false -> () (* agreement: denied *)
      | Ok _, false -> flag t idx op Refmodel.Model_mismatch ("machine permitted a read the mode's policy forbids: " ^ describe "read")
      | Error f, true ->
        flag t idx op Refmodel.Model_mismatch ("machine denied a read the mode's policy permits: " ^ Machine.fault_to_string f))
    | Some byte -> (
      let data = String.make alen (Char.chr byte) in
      match (Machine.store_bytes t.machine principal (Machine.Phys addr) data, allowed) with
      | Ok (), true -> (
        (match Refmodel.ideal_breach ~who ~owner:cls ~write:true with
        | Some breach -> flag t idx op breach (describe "wrote")
        | None -> ());
        match st with
        | Live u ->
          Bytes.blit_string data 0 u.shadow off alen;
          if not (String.equal (Physmem.read_bytes (Machine.mem t.machine) ~pos:addr ~len:alen) data) then
            flag t idx op Refmodel.Model_mismatch "permitted write did not land in the backing region"
        | _ -> ())
      | Error _, false -> ()
      | Ok (), false ->
        (* Keep the shadow truthful even on an unpredicted write. *)
        (match st with
        | Live u -> Physmem.blit_to_bytes (Machine.mem t.machine) ~pos:addr u.shadow ~off ~len:alen
        | _ -> ());
        flag t idx op Refmodel.Model_mismatch ("machine permitted a write the mode's policy forbids: " ^ describe "wrote")
      | Error f, true ->
        flag t idx op Refmodel.Model_mismatch ("machine denied a write the mode's policy permits: " ^ Machine.fault_to_string f)));
    true

(* ---- accelerator MMIO --------------------------------------------- *)

let mmio_write t idx op ~actor ~target ~reg ~value =
  match (t.states.(actor), t.states.(target)) with
  | Live ua, Live ({ cluster = Some c; _ } as _ut) ->
    let m = t.machine in
    let reg_off = match reg with Op.Graph -> Machine.mmio_reg_graph | Op.Iq -> Machine.mmio_reg_iq in
    let paddr = Machine.accel_mmio_base m ~kind:Accel.Dpi ~cluster:c + reg_off in
    let cls = if t.mode = Machine.Snic then Refmodel.P_tenant target else Refmodel.P_os in
    check_owner t idx op ~addr:paddr ~cls;
    let secure = t.mode = Machine.Bluefield in
    let allowed = Refmodel.allows ~mode:t.mode ~who:(Refmodel.W_nf actor) ~owner:cls ~secure ~via_tlb:false in
    (match (Machine.store_u64 m (Machine.Nf_code ua.nf) (Machine.Phys paddr) value, allowed) with
    | Ok (), true ->
      if actor <> target then
        flag t idx op Refmodel.Accel_hijack
          (Printf.sprintf "tenant %d rewrote tenant %d's cluster %s register" actor target
             (match reg with Op.Graph -> "rule-graph" | Op.Iq -> "instruction-queue"))
    | Error _, false -> ()
    | Ok (), false -> flag t idx op Refmodel.Model_mismatch "machine permitted an MMIO write the mode's policy forbids"
    | Error f, true ->
      flag t idx op Refmodel.Model_mismatch ("machine denied an MMIO write the mode's policy permits: " ^ Machine.fault_to_string f));
    true
  | _ -> false

(* ---- virtual functions -------------------------------------------- *)

(* The VF doorbell/ring window mirrors the accelerator-MMIO story: on
   S-NIC the window page is the tenant's single-owner RAM, on commodity
   NICs it is NIC-OS BAR space a raw physical access can reach
   (BlueField additionally marks it secure-world, like its MMIO pages).
   So the model class is [P_tenant target] on S-NIC and [P_os]
   elsewhere, and the verdict comes from the same [Refmodel.allows]
   table every other access uses — VF multiplexing adds no policy. *)
let vf_window_cls t ~target =
  if t.mode = Machine.Snic then Refmodel.P_tenant target else Refmodel.P_os

let vf_attach t idx op ~slot ~weight =
  match t.states.(slot) with
  | Live u when not (Vf.Table.attached t.vft ~vf:slot) ->
    (match Vf.Table.attach t.vft ~vf:slot ~nf:u.nf ~weight with
    | Ok base -> drop_overlapping_ghosts t ~base ~len:Physmem.page_size ~except:(-1)
    | Error e ->
      flag t idx op Refmodel.Model_mismatch ("vf attach refused though a window page should fit: " ^ e));
    true
  | _ -> false

let vf_detach t _idx _op ~slot =
  if Vf.Table.attached t.vft ~vf:slot then begin
    Vf.Table.detach t.vft ~vf:slot;
    true
  end
  else false

let vf_doorbell t idx op ~actor ~target ~value =
  match (t.states.(actor), t.states.(target)) with
  | Live ua, Live _ when Vf.Table.attached t.vft ~vf:target ->
    let base = Option.get (Vf.Table.window_base t.vft ~vf:target) in
    let cls = vf_window_cls t ~target in
    check_owner t idx op ~addr:base ~cls;
    let secure = t.mode = Machine.Bluefield in
    let allowed = Refmodel.allows ~mode:t.mode ~who:(Refmodel.W_nf actor) ~owner:cls ~secure ~via_tlb:false in
    (match (Vf.Table.doorbell t.vft ~principal:(Machine.Nf_code ua.nf) ~vf:target ~value, allowed) with
    | Ok (), true ->
      if actor <> target then
        flag t idx op Refmodel.Cross_tenant_write
          (Printf.sprintf "tenant %d rang tenant %d's VF doorbell" actor target)
    | Error _, false -> ()
    | Ok (), false ->
      flag t idx op Refmodel.Model_mismatch "machine permitted a VF doorbell write the mode's policy forbids"
    | Error f, true ->
      flag t idx op Refmodel.Model_mismatch
        ("machine denied a VF doorbell write the mode's policy permits: " ^ Machine.fault_to_string f));
    true
  | _ -> false

let vf_queue_read t idx op ~actor ~target ~alen =
  match (t.states.(actor), t.states.(target)) with
  | Live ua, Live _ when Vf.Table.attached t.vft ~vf:target ->
    let base = Option.get (Vf.Table.window_base t.vft ~vf:target) in
    let cls = vf_window_cls t ~target in
    check_owner t idx op ~addr:base ~cls;
    let secure = t.mode = Machine.Bluefield in
    let allowed = Refmodel.allows ~mode:t.mode ~who:(Refmodel.W_nf actor) ~owner:cls ~secure ~via_tlb:false in
    (match (Vf.Table.queue_read t.vft ~principal:(Machine.Nf_code ua.nf) ~vf:target ~len:alen, allowed) with
    | Ok bytes, true ->
      (if actor <> target then
         flag t idx op Refmodel.Cross_tenant_read
           (Printf.sprintf "tenant %d read %d bytes of tenant %d's VF descriptor ring" actor
              (String.length bytes) target));
      (* The ring window content is a pure function of the VF id, so the
         returned bytes are fully predicted. *)
      let expected = String.sub (Vf.Table.window_pattern ~vf:target) 8 (String.length bytes) in
      if not (String.equal bytes expected) then
        flag t idx op Refmodel.Model_mismatch "VF ring read returned bytes the model did not predict"
    | Error _, false -> ()
    | Ok _, false ->
      flag t idx op Refmodel.Model_mismatch "machine permitted a VF ring read the mode's policy forbids"
    | Error f, true ->
      flag t idx op Refmodel.Model_mismatch
        ("machine denied a VF ring read the mode's policy permits: " ^ Machine.fault_to_string f));
    true
  | _ -> false

(* ---- DMA ---------------------------------------------------------- *)

let dma t idx op ~actor ~target ~dir ~off ~alen =
  match (t.states.(actor), t.states.(target)) with
  | Live ua, Live ut ->
    let m = t.machine in
    let noff = clamp ~len:ut.len ~alen off in
    let hoff = clamp ~len:hwin_len ~alen off in
    let checked = t.mode = Machine.Snic in
    (* S-NIC DMAs through the bank's locked windows (virtual addresses);
       commodity engines take raw physical addresses on both sides. *)
    let nic_addr = if checked then (if actor = target then ua.vbase + noff else ut.base + noff) else ut.base + noff in
    let host_addr = if checked then hoff else hwin_base actor + hoff in
    let allowed = (not checked) || actor = target in
    let direction = match dir with Op.To_host -> Dma.To_host | Op.To_nic -> Dma.To_nic in
    let host = Dma.host_mem (Machine.dma m) in
    (match (Dma.transfer ~checked (Machine.dma m) ~bank:actor ~direction ~nic_addr ~host_addr ~len:alen, allowed) with
    | Ok (), true -> (
      (if actor <> target then
         let cls = match dir with Op.To_host -> Refmodel.Cross_tenant_read | Op.To_nic -> Refmodel.Cross_tenant_write in
         flag t idx op cls
           (Printf.sprintf "tenant %d DMAed %d bytes %s tenant %d's region" actor alen
              (match dir with Op.To_host -> "out of" | Op.To_nic -> "into")
              target));
      match dir with
      | Op.To_host ->
        Bytes.blit ut.shadow noff ua.hshadow hoff alen;
        if
          not
            (String.equal
               (Physmem.read_bytes host ~pos:(hwin_base actor + hoff) ~len:alen)
               (Bytes.sub_string ua.hshadow hoff alen))
        then flag t idx op Refmodel.Model_mismatch "DMA to host moved bytes the model did not predict"
      | Op.To_nic ->
        Bytes.blit ua.hshadow hoff ut.shadow noff alen;
        if
          not
            (String.equal
               (Physmem.read_bytes (Machine.mem m) ~pos:(ut.base + noff) ~len:alen)
               (sub_shadow ut ~off:noff ~len:alen))
        then flag t idx op Refmodel.Model_mismatch "DMA to NIC moved bytes the model did not predict")
    | Error _, false -> () (* agreement: the locked windows refused it *)
    | Ok (), false ->
      (* Resync both sides from ground truth before flagging. *)
      Physmem.blit_to_bytes (Machine.mem m) ~pos:(ut.base + noff) ut.shadow ~off:noff ~len:alen;
      Physmem.blit_to_bytes host ~pos:(hwin_base actor + hoff) ua.hshadow ~off:hoff ~len:alen;
      flag t idx op Refmodel.Model_mismatch "cross-tenant DMA succeeded through S-NIC's locked windows"
    | Error e, true ->
      flag t idx op Refmodel.Model_mismatch ("DMA the model permits was refused: " ^ Dma.error_to_string e));
    true
  | _ -> false

(* ---- accelerator streaming ---------------------------------------- *)

let stream t idx op ~slot ~src ~dst ~alen =
  match t.states.(slot) with
  | Live ({ cluster = Some c; _ } as u) ->
    let m = t.machine in
    (* Keep source and destination in disjoint halves of the region so
       the expected result is a plain copy. *)
    let half = u.len / 2 in
    let soff = clamp ~len:half ~alen src in
    let doff = half + clamp ~len:half ~alen dst in
    (match
       Accel.stream (dpi t) ~cluster:c ~now:0 ~mem:(Machine.mem m) ~src:(u.vbase + soff) ~src_len:alen
         ~dst:(u.vbase + doff) ~f:Fun.id
     with
    | Ok (n, _) ->
      if n <> alen then flag t idx op Refmodel.Model_mismatch (Printf.sprintf "stream wrote %d bytes, model expected %d" n alen);
      Bytes.blit u.shadow soff u.shadow doff alen;
      if not (String.equal (Physmem.read_bytes (Machine.mem m) ~pos:(u.base + doff) ~len:alen) (sub_shadow u ~off:doff ~len:alen))
      then flag t idx op Refmodel.Model_mismatch "stream output differs from the model's copy"
    | Error e ->
      flag t idx op Refmodel.Model_mismatch ("stream faulted inside its own window: " ^ Accel.stream_error_to_string e));
    true
  | _ -> false

(* ---- packet injection --------------------------------------------- *)

let inject t idx op ~target ~pad =
  let m = t.machine in
  let live = match t.states.(target) with Live u when u.has_rules -> Some u | _ -> None in
  let payload = String.init (20 + pad) (fun i -> Char.chr (0x30 + ((i + pad) mod 64))) in
  let pkt =
    Net.Packet.make
      ~src_ip:(Net.Ipv4_addr.of_octets 10 0 0 1)
      ~dst_ip:(Net.Ipv4_addr.of_octets 10 0 0 2)
      ~proto:Net.Packet.Udp ~src_port:40000 ~dst_port:(port_of target) payload
  in
  let frame = Net.Packet.serialize pkt in
  (match (Pktio.deliver (Machine.pktio m) frame, live) with
  | Ok nf, Some u when nf = u.nf -> (
    match Pktio.rx_pop (Machine.pktio m) ~nf:u.nf with
    | None -> flag t idx op Refmodel.Model_mismatch "delivered frame never appeared on the RX ring"
    | Some (addr, plen) ->
      if plen <> Bytes.length frame then
        flag t idx op Refmodel.Model_mismatch (Printf.sprintf "RX descriptor length %d, frame is %d" plen (Bytes.length frame))
      else if not (String.equal (Physmem.read_bytes (Machine.mem m) ~pos:addr ~len:plen) (Bytes.to_string frame)) then
        flag t idx op Refmodel.Model_mismatch "frame bytes corrupted in the buffer pool";
      Pktio.recycle (Machine.pktio m) ~addr;
      (* The buffer's pages cycled through another owner; any ghost
         covering them no longer predicts their content. *)
      drop_overlapping_ghosts t ~base:addr ~len:plen ~except:(-1))
  | Ok nf, Some _ -> flag t idx op Refmodel.Model_mismatch (Printf.sprintf "frame delivered to NF %d, model expected the slot's tenant" nf)
  | Ok nf, None -> flag t idx op Refmodel.Model_mismatch (Printf.sprintf "frame delivered to NF %d though the model knows no matching rule" nf)
  | Error _, None -> () (* agreement: no live rule for this port *)
  | Error e, Some _ -> flag t idx op Refmodel.Model_mismatch ("delivery refused despite a live rule: " ^ e));
  true

(* ---- QoS credit admission ----------------------------------------- *)

(* Differential check for the credit arbiter.  With the degenerate
   registration above (no borrowing, no slack) work-conservation
   donations can never enable a grant, so verdicts — and the throttle's
   refill cycle — are exact.  The op touches no memory: the only class
   it can ever raise is [Model_mismatch]. *)
let qos_admit t idx op ~actor ~res ~cost =
  let now = idx in
  let epoch = now / qos_epoch_cycles in
  if epoch <> t.q_epoch then begin
    Array.iter (fun row -> Array.fill row 0 3 0) t.q_spent;
    t.q_epoch <- epoch
  end;
  let r = match res with Op.Q_bus -> Qos.Bus | Op.Q_dma -> Qos.Dma | Op.Q_accel -> Qos.Accel in
  let ri = match r with Qos.Bus -> 0 | Qos.Dma -> 1 | Qos.Accel -> 2 in
  let spent = t.q_spent.(actor).(ri) in
  let model_grant = spent + cost <= qos_guarantee in
  (match (Qos.admit t.qos ~tenant:actor ~resource:r ~cost ~now, model_grant) with
  | Qos.Granted, true -> t.q_spent.(actor).(ri) <- spent + cost
  | Qos.Throttled th, false ->
    let until = (epoch + 1) * qos_epoch_cycles in
    if th.Qos.until <> until then
      flag t idx op Refmodel.Model_mismatch
        (Printf.sprintf "throttle promises credit at cycle %d, model expected %d" th.Qos.until until)
  | Qos.Granted, false ->
    t.q_spent.(actor).(ri) <- spent + cost;
    flag t idx op Refmodel.Model_mismatch
      (Printf.sprintf "arbiter granted %d credits past slot %d's exhausted budget" cost actor)
  | Qos.Throttled _, true ->
    flag t idx op Refmodel.Model_mismatch
      (Printf.sprintf "arbiter throttled slot %d though the flat budget has %d credits left" actor
         (qos_guarantee - spent)));
  true

(* ---- attestation -------------------------------------------------- *)

let attest t idx op ~slot =
  match (t.insns, t.states.(slot)) with
  | Some insns, Live u ->
    (match
       Snic.Instructions.nf_attest insns ~id:u.nf ~group:Crypto.Dh.sim_768 ~dh_public:(Bigint.of_int 0xC0FFEE)
         ~nonce:"oracle-nonce"
     with
    | Ok s when String.length s > 0 -> ()
    | Ok _ -> flag t idx op Refmodel.Model_mismatch "attestation returned an empty signature"
    | Error e ->
      flag t idx op Refmodel.Model_mismatch ("nf_attest refused a live function: " ^ Snic.Instructions.error_to_string e));
    true
  | _ -> false (* commodity NICs have no attestation instruction *)

(* ---- fabric channels ---------------------------------------------- *)

(* Loopback attested channels, one per slot.  Establishment runs the
   full handshake against the slot's live NF (so a torn-down or never-
   launched slot has no key source), a send must authenticate and
   deliver exactly the bytes sent, and a replayed wire frame must bounce
   off the receive window.  S-NIC only: commodity NICs cannot attest. *)
let chan_open t idx op ~slot ~window =
  match (t.insns, t.vendor_public, t.states.(slot)) with
  | Some insns, Some vendor_public, Live u ->
    let ep = Fabric.Endpoint.make ~nic:0 ~insns ~nf:u.nf () in
    let chan = t.chan_next in
    t.chan_next <- chan + 1;
    (match Fabric.Endpoint.establish ~window t.chan_rng ~vendor_public ~chan ep ep with
    | Ok link ->
      t.chans.(slot) <- Some link;
      t.chan_last.(slot) <- None
    | Error e ->
      flag t idx op Refmodel.Model_mismatch
        ("channel establishment refused a live attested function: " ^ Fabric.Endpoint.error_to_string e));
    true
  | _ -> false

let chan_send t idx op ~slot ~len =
  match t.chans.(slot) with
  | None -> false
  | Some (tx, rx) ->
    let payload = String.init len (fun i -> Char.chr (0x61 + ((i + slot + idx) mod 26))) in
    let wire = Fabric.Channel.send tx payload in
    t.chan_last.(slot) <- Some wire;
    (match Fabric.Channel.recv rx wire with
    | Ok p when String.equal p payload -> ()
    | Ok _ -> flag t idx op Refmodel.Model_mismatch "channel delivered different bytes than were sent"
    | Error e ->
      flag t idx op Refmodel.Model_mismatch
        ("receiver refused a fresh authenticated frame: " ^ Fabric.Channel.recv_error_to_string e));
    true

let chan_replay t idx op ~slot =
  match (t.chans.(slot), t.chan_last.(slot)) with
  | Some (_, rx), Some wire ->
    (match Fabric.Channel.recv rx wire with
    | Error (Fabric.Channel.Replayed _) -> ()
    | Ok _ -> flag t idx op Refmodel.Model_mismatch "receive window accepted a replayed frame"
    | Error e ->
      flag t idx op Refmodel.Model_mismatch
        ("replayed frame bounced for the wrong reason: " ^ Fabric.Channel.recv_error_to_string e));
    true
  | _ -> false

(* ---- dispatch ----------------------------------------------------- *)

let exec t idx op =
  if Op.max_slot op >= t.slot_count then false
  else begin
    match op with
  | Op.Launch { slot; mem_kb; accel; rules } -> (
    match t.states.(slot) with
    | Live _ -> false
    | Empty | Ghost _ ->
      (match t.insns with
      | Some _ -> snic_launch t idx op ~slot ~mem_kb ~accel ~rules
      | None -> commodity_launch t idx op ~slot ~mem_kb ~accel ~rules);
      true)
  | Op.Teardown { slot } -> (
    match t.states.(slot) with
    | Live u ->
      teardown t idx op ~slot ~u;
      (* The channel's key was bound to the torn-down NF's attestation;
         it dies with the function. *)
      t.chans.(slot) <- None;
      t.chan_last.(slot) <- None;
      true
    | Empty | Ghost _ -> false)
  | Op.Read { actor; target; space = Op.Virt; off; len } -> (
    match (actor, t.states.(target)) with
    | Op.Slot a, Live u when a = target ->
      virt_read t idx op ~target ~u ~off ~alen:len;
      true
    | _ -> false)
  | Op.Write { actor; target; space = Op.Virt; off; len; byte } -> (
    match (actor, t.states.(target)) with
    | Op.Slot a, Live u when a = target ->
      virt_write t idx op ~target ~u ~off ~alen:len ~byte;
      true
    | _ -> false)
  | Op.Read { actor; target; space = Op.Phys; off; len } -> (
    match resolve_actor t actor with
    | Some (who, principal) -> phys_access t idx op ~who ~principal ~target ~off ~alen:len ~write_byte:None
    | None -> false)
  | Op.Write { actor; target; space = Op.Phys; off; len; byte } -> (
    match resolve_actor t actor with
    | Some (who, principal) -> phys_access t idx op ~who ~principal ~target ~off ~alen:len ~write_byte:(Some byte)
    | None -> false)
  | Op.Mmio_write { actor; target; reg; value } -> mmio_write t idx op ~actor ~target ~reg ~value
  | Op.Dma { actor; target; dir; off; len } -> dma t idx op ~actor ~target ~dir ~off ~alen:len
  | Op.Stream { slot; src; dst; len } -> stream t idx op ~slot ~src ~dst ~alen:len
    | Op.Inject { target; pad } -> inject t idx op ~target ~pad
    | Op.Attest { slot } -> attest t idx op ~slot
    | Op.Vf_attach { slot; weight } -> vf_attach t idx op ~slot ~weight
    | Op.Vf_detach { slot } -> vf_detach t idx op ~slot
    | Op.Vf_doorbell { actor; target; value } -> vf_doorbell t idx op ~actor ~target ~value
    | Op.Vf_queue_read { actor; target; len } -> vf_queue_read t idx op ~actor ~target ~alen:len
    | Op.Qos_admit { actor; res; cost } -> qos_admit t idx op ~actor ~res ~cost
    | Op.Chan_open { slot; window } -> chan_open t idx op ~slot ~window
    | Op.Chan_send { slot; len } -> chan_send t idx op ~slot ~len
    | Op.Chan_replay { slot } -> chan_replay t idx op ~slot
  end

let step t op =
  let idx = t.step_no in
  t.step_no <- idx + 1;
  if exec t idx op then t.executed <- t.executed + 1 else t.skipped <- t.skipped + 1

(* Chunked interpretation: one bounds check per slice, then a tight loop
   over the array — the batched dispatch path [Campaign.replay_array]
   drives.  Equivalent to [step] per element, in order. *)
let step_batch t ops ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length ops then
    invalid_arg "Harness.step_batch: slice out of bounds";
  for i = pos to pos + len - 1 do
    step t (Array.unsafe_get ops i)
  done
