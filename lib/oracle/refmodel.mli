(** The flat reference model and the violation taxonomy.

    The model is deliberately tiny: a page is [P_free], the NIC OS's, or
    one tenant's, and [allows] re-states each mode's §3.2 access policy
    over that classification in a handful of lines — independent of
    {!Nicsim.Machine}'s TLBs, denylists and secure-world bookkeeping. The
    harness runs every access against both and files any disagreement as
    [Model_mismatch]; accesses both sides *permit* are then judged
    against the single-owner ideal and classified into the §3.3/§4.3
    violation classes. *)

(** Who the model thinks a page belongs to ([P_tenant] holds a harness
    slot index, not an NF id — slots are stable across the run). *)
type page_class = P_free | P_os | P_tenant of int

val class_to_string : page_class -> string

(** The accessing principal, slot-indexed like [page_class]. *)
type who = W_os | W_nf of int

(** [allows ~mode ~who ~owner ~secure ~via_tlb] — the mode's access
    policy, re-implemented flat. [secure] is the model's belief that the
    page is BlueField secure-world memory; [via_tlb] whether the access
    arrived through a (confining) TLB rather than as a raw physical
    address. *)
val allows :
  mode:Nicsim.Machine.mode -> who:who -> owner:page_class -> secure:bool -> via_tlb:bool -> bool

(** What went wrong, in the paper's terms. The first four are the §3.3 /
    §4.3 attack classes (real isolation breaches the mode permitted);
    [Scrub_residue] and [Stale_translation] are lifecycle-hygiene
    breaches (§4.2's scrub-on-teardown and TLB-lock obligations); and
    [Model_mismatch] means machine and model *disagreed* — in a healthy
    tree that class never fires, in any mode. *)
type cls =
  | Cross_tenant_read (* DPI-ruleset-stealing shape: tenant reads another's RAM *)
  | Cross_tenant_write (* packet-corruption shape: tenant/OS writes another's RAM *)
  | Os_read_nf (* the untrusted NIC OS reads a live function's state *)
  | Accel_hijack (* §4.3: reconfiguring another tenant's accelerator cluster *)
  | Scrub_residue (* freed pages still hold a dead tenant's bytes *)
  | Stale_translation (* a TLB entry outlives the region it maps *)
  | Model_mismatch (* machine and reference model disagreed *)

val cls_to_string : cls -> string
val cls_of_string : string -> cls option
val all_classes : cls list

(** [ideal_breach ~who ~owner ~write] classifies a *permitted* access
    against the single-owner ideal: [None] if benign (own pages, or OS
    touching OS/free pages), otherwise the §3.3 class it realizes. *)
val ideal_breach : who:who -> owner:page_class -> write:bool -> cls option

type violation = { step : int; op : Op.t; cls : cls; detail : string }

(** Shrink identity: class plus the op's slot signature — stable across
    subsequences even as NF ids and physical addresses drift. *)
val key : violation -> string

val to_string : violation -> string
