(** The oracle's operation alphabet.

    One op is one multi-tenant action against a simulated NIC: a tenant
    lifecycle event, a memory access in some addressing mode, an
    accelerator MMIO poke, a DMA transfer, an accelerator stream, a
    packet injection, or an attestation. Ops name tenants by *slot*
    (a small stable index), never by NF id or physical address, so any
    subsequence of a trace is still a well-formed trace — the property
    the delta-debugging shrinker relies on. The harness maps slots to
    whatever NF ids and physical regions the run actually produced, and
    silently skips ops that do not apply to the current slot state.

    Ops serialize to a line-oriented text format ([to_line]/[of_line])
    used by [--dump]/[--replay] trace files; decoding is strict and
    returns a typed error rather than raising. *)

(** How a memory access addresses its bytes: [Virt] goes through the
    actor's core TLB (self-region only — commodity NICs map each tenant
    a private window); [Phys] is a raw physical address (the xkphys-style
    access §3.3's attacks are built from). *)
type space = Virt | Phys

(** Who issues an access: the NIC OS, or the tenant in a slot. *)
type actor = Os | Slot of int

(** Accelerator-cluster MMIO configuration registers (§4.3). *)
type reg = Graph | Iq

(** DMA direction, NIC-relative. *)
type dir = To_host | To_nic

(** The shared resource a QoS admission charges. *)
type qres = Q_bus | Q_dma | Q_accel

type t =
  | Launch of { slot : int; mem_kb : int; accel : bool; rules : bool }
      (** Install a tenant in [slot]: a [mem_kb] KiB region holding a
          recognizable secret, optionally a DPI accelerator cluster and a
          packet-switch rule. S-NIC mode uses the trusted [nf_launch];
          commodity modes use the commodity management path. *)
  | Teardown of { slot : int }
      (** Destroy the tenant in [slot]. S-NIC mode uses [nf_teardown]
          (hardware scrub + TLB reset); commodity modes free the region
          the way commodity firmware does — without scrubbing. *)
  | Read of { actor : actor; target : int; space : space; off : int; len : int }
      (** [actor] reads [len] bytes at offset [off] of [target]'s region.
          [Virt] reads are self-only and may run past the mapped window
          (TLB-fault coverage); [Phys] offsets are clamped into the
          region. *)
  | Write of { actor : actor; target : int; space : space; off : int; len : int; byte : int }
      (** As [Read], but storing [len] copies of [byte] (never 0). *)
  | Mmio_write of { actor : int; target : int; reg : reg; value : int }
      (** Tenant [actor] writes [target]'s accelerator-cluster
          configuration register — the §4.3 hijack primitive. *)
  | Dma of { actor : int; target : int; dir : dir; off : int; len : int }
      (** Tenant [actor] DMAs between [target]'s on-NIC region and
          [actor]'s own host window. [target <> actor] is a cross-tenant
          DMA: S-NIC's locked bank windows refuse it; commodity engines
          move raw physical bytes. *)
  | Stream of { slot : int; src : int; dst : int; len : int }
      (** [slot] streams [len] bytes from [src] to [dst] (both offsets in
          its own region) through its accelerator cluster's TLB bank. *)
  | Inject of { target : int; pad : int }
      (** Put a frame on the wire addressed to [target]'s switch rule;
          the tenant then pops, verifies and recycles the buffer. *)
  | Attest of { slot : int }
      (** S-NIC: run [nf_attest] for the tenant and check a signature
          comes back. Commodity modes have no attestation instruction
          (skipped). *)
  | Vf_attach of { slot : int; weight : int }
      (** Bring up a virtual function for the tenant in [slot]: allocate
          its doorbell/ring window page (tenant-owned on S-NIC, NIC-OS
          BAR space on commodity NICs) and register it with the
          two-stage transmit scheduler at [weight]. *)
  | Vf_detach of { slot : int }
      (** Tear the slot's VF down: drop its queued descriptors and free
          (on S-NIC: scrub, then free) its window page. *)
  | Vf_doorbell of { actor : int; target : int; value : int }
      (** Tenant [actor] stores [value] to [target]'s VF doorbell
          register. [actor <> target] is the cross-VF kick: S-NIC's
          single-owner RAM refuses it; commodity BARs take it. *)
  | Vf_queue_read of { actor : int; target : int; len : int }
      (** Tenant [actor] reads [len] bytes of [target]'s VF
          descriptor-ring window — the cross-VF snoop probe. *)
  | Qos_admit of { actor : int; res : qres; cost : int }
      (** Tenant [actor] asks the QoS credit arbiter to admit [cost]
          credits on [res]. Pure control-plane metering: the differential
          check is grant/throttle agreement with a flat per-epoch budget
          model — credit ops touch no memory and must introduce no new
          isolation classes. *)
  | Chan_open of { slot : int; window : int }
      (** Establish a loopback attested fabric channel for the tenant in
          [slot] with a [window]-deep receive window. S-NIC only: the key
          derivation needs the attestation handshake, and commodity NICs
          have no quote to offer (skipped). *)
  | Chan_send of { slot : int; len : int }
      (** Send [len] deterministic bytes over the slot's channel and
          receive them on the far half — the frame must authenticate and
          deliver exactly the bytes sent. *)
  | Chan_replay of { slot : int }
      (** Re-deliver the slot's last wire frame verbatim: the receive
          window must bounce it as a replay. *)

(** [gen ?fabric rng ~slots] draws one op with campaign-tuned weights;
    every field is a function of [rng] draws alone, so a seed reproduces
    the op stream byte-for-byte.  [fabric] (default false) mixes the
    [Chan_*] ops into the alphabet; the default stream is byte-identical
    to what older campaigns drew, so pinned digests stay valid. *)
val gen : ?fabric:bool -> Trace.Rng.t -> slots:int -> t

(** Slots an op involves, as ["a>t"]-style text — the op's identity for
    shrink matching, stable across re-allocation. *)
val slots_of : t -> string

(** Largest slot index the op references. The harness skips ops that
    reference slots beyond its population (range safety for replayed
    traces). *)
val max_slot : t -> int

(** One-line textual form, [of_line]-parseable. *)
val to_line : t -> string

(** Strict parse of one [to_line] line. [Error] (never an exception) on
    unknown verbs, missing/duplicate/garbage fields, or trailing junk. *)
val of_line : string -> (t, string) result

val equal : t -> t -> bool
