type space = Virt | Phys
type actor = Os | Slot of int
type reg = Graph | Iq
type dir = To_host | To_nic
type qres = Q_bus | Q_dma | Q_accel

type t =
  | Launch of { slot : int; mem_kb : int; accel : bool; rules : bool }
  | Teardown of { slot : int }
  | Read of { actor : actor; target : int; space : space; off : int; len : int }
  | Write of { actor : actor; target : int; space : space; off : int; len : int; byte : int }
  | Mmio_write of { actor : int; target : int; reg : reg; value : int }
  | Dma of { actor : int; target : int; dir : dir; off : int; len : int }
  | Stream of { slot : int; src : int; dst : int; len : int }
  | Inject of { target : int; pad : int }
  | Attest of { slot : int }
  | Vf_attach of { slot : int; weight : int }
  | Vf_detach of { slot : int }
  | Vf_doorbell of { actor : int; target : int; value : int }
  | Vf_queue_read of { actor : int; target : int; len : int }
  | Qos_admit of { actor : int; res : qres; cost : int }
  | Chan_open of { slot : int; window : int }
  | Chan_send of { slot : int; len : int }
  | Chan_replay of { slot : int }

let equal (a : t) (b : t) = a = b

(* Weights (per 100): launches and teardowns churn the slot population;
   reads/writes dominate because the §3.3 attack surface is memory
   accesses; the rest keep DMA, accelerators, packets, VF doorbell/ring
   traffic and attestation in every campaign's mix. *)
let gen ?(fabric = false) rng ~slots =
  let slot () = Trace.Rng.int rng slots in
  let off () = Trace.Rng.int rng 16384 in
  let len () = 8 + Trace.Rng.int rng 57 in
  let mixed_actor target =
    (* Self, cross-tenant and NIC-OS accesses in a 2:1:1 ratio. *)
    match Trace.Rng.int rng 4 with
    | 0 | 1 -> Slot target
    | 2 -> Slot (slot ())
    | _ -> Os
  in
  (* Channel ops are opt-in: the extra draws below run only under
     [~fabric:true], so the default op stream — and every digest pinned
     against it — stays byte-identical. *)
  if fabric && Trace.Rng.int rng 10 = 0 then begin
    match Trace.Rng.int rng 4 with
    | 0 -> Chan_open { slot = slot (); window = 4 + Trace.Rng.int rng 28 }
    | 1 | 2 -> Chan_send { slot = slot (); len = 1 + Trace.Rng.int rng 64 }
    | _ -> Chan_replay { slot = slot () }
  end
  else
  match Trace.Rng.int rng 100 with
  | n when n < 12 ->
    Launch
      {
        slot = slot ();
        mem_kb = 4 lsl Trace.Rng.int rng 3;
        accel = Trace.Rng.int rng 3 = 0;
        rules = Trace.Rng.bool rng;
      }
  | n when n < 20 -> Teardown { slot = slot () }
  | n when n < 47 ->
    let target = slot () in
    if Trace.Rng.int rng 4 = 0 then begin
      (* Self read through the TLB; one in ten runs past the window. *)
      let off = if Trace.Rng.int rng 10 = 0 then 0x40000 + off () else off () in
      Read { actor = Slot target; target; space = Virt; off; len = len () }
    end
    else Read { actor = mixed_actor target; target; space = Phys; off = off (); len = len () }
  | n when n < 65 ->
    let target = slot () in
    let byte = 1 + Trace.Rng.int rng 255 in
    if Trace.Rng.int rng 4 = 0 then
      Write { actor = Slot target; target; space = Virt; off = off (); len = len (); byte }
    else Write { actor = mixed_actor target; target; space = Phys; off = off (); len = len (); byte }
  | n when n < 71 ->
    Mmio_write
      {
        actor = slot ();
        target = slot ();
        reg = (if Trace.Rng.bool rng then Graph else Iq);
        value = 1 + Trace.Rng.int rng 0xFFFF;
      }
  | n when n < 78 ->
    Dma
      {
        actor = slot ();
        target = slot ();
        dir = (if Trace.Rng.bool rng then To_host else To_nic);
        off = off ();
        len = len ();
      }
  | n when n < 83 -> Stream { slot = slot (); src = off (); dst = off (); len = len () }
  | n when n < 88 -> Inject { target = slot (); pad = Trace.Rng.int rng 48 }
  | n when n < 91 -> Vf_attach { slot = slot (); weight = 1 + Trace.Rng.int rng 8 }
  | n when n < 93 -> Vf_detach { slot = slot () }
  | n when n < 95 -> Vf_doorbell { actor = slot (); target = slot (); value = 1 + Trace.Rng.int rng 0xFFFF }
  | n when n < 97 -> Vf_queue_read { actor = slot (); target = slot (); len = len () }
  | n when n < 99 ->
    let res = match Trace.Rng.int rng 3 with 0 -> Q_bus | 1 -> Q_dma | _ -> Q_accel in
    Qos_admit { actor = slot (); res; cost = 16 + Trace.Rng.int rng 64 }
  | _ -> Attest { slot = slot () }

let actor_to_string = function Os -> "os" | Slot s -> string_of_int s

let slots_of = function
  | Launch { slot; _ } | Teardown { slot } | Stream { slot; _ } | Attest { slot } -> string_of_int slot
  | Vf_attach { slot; _ } | Vf_detach { slot } -> string_of_int slot
  | Chan_open { slot; _ } | Chan_send { slot; _ } | Chan_replay { slot } -> string_of_int slot
  | Read { actor; target; _ } | Write { actor; target; _ } ->
    actor_to_string actor ^ ">" ^ string_of_int target
  | Mmio_write { actor; target; _ } | Dma { actor; target; _ } ->
    string_of_int actor ^ ">" ^ string_of_int target
  | Vf_doorbell { actor; target; _ } | Vf_queue_read { actor; target; _ } ->
    string_of_int actor ^ ">" ^ string_of_int target
  | Inject { target; _ } -> string_of_int target
  | Qos_admit { actor; _ } -> string_of_int actor

let max_slot = function
  | Launch { slot; _ } | Teardown { slot } | Stream { slot; _ } | Attest { slot } -> slot
  | Vf_attach { slot; _ } | Vf_detach { slot } -> slot
  | Chan_open { slot; _ } | Chan_send { slot; _ } | Chan_replay { slot } -> slot
  | Read { actor; target; _ } | Write { actor; target; _ } -> (
    match actor with Slot a -> max a target | Os -> target)
  | Mmio_write { actor; target; _ } | Dma { actor; target; _ } -> max actor target
  | Vf_doorbell { actor; target; _ } | Vf_queue_read { actor; target; _ } -> max actor target
  | Inject { target; _ } -> target
  | Qos_admit { actor; _ } -> actor

let space_to_string = function Virt -> "virt" | Phys -> "phys"
let reg_to_string = function Graph -> "graph" | Iq -> "iq"
let dir_to_string = function To_host -> "to-host" | To_nic -> "to-nic"
let qres_to_string = function Q_bus -> "bus" | Q_dma -> "dma" | Q_accel -> "accel"
let bool_to_string b = if b then "1" else "0"

let to_line = function
  | Launch { slot; mem_kb; accel; rules } ->
    Printf.sprintf "launch slot=%d kb=%d accel=%s rules=%s" slot mem_kb (bool_to_string accel)
      (bool_to_string rules)
  | Teardown { slot } -> Printf.sprintf "teardown slot=%d" slot
  | Read { actor; target; space; off; len } ->
    Printf.sprintf "read actor=%s target=%d space=%s off=%d len=%d" (actor_to_string actor) target
      (space_to_string space) off len
  | Write { actor; target; space; off; len; byte } ->
    Printf.sprintf "write actor=%s target=%d space=%s off=%d len=%d byte=%d" (actor_to_string actor)
      target (space_to_string space) off len byte
  | Mmio_write { actor; target; reg; value } ->
    Printf.sprintf "mmio actor=%d target=%d reg=%s value=%d" actor target (reg_to_string reg) value
  | Dma { actor; target; dir; off; len } ->
    Printf.sprintf "dma actor=%d target=%d dir=%s off=%d len=%d" actor target (dir_to_string dir) off len
  | Stream { slot; src; dst; len } -> Printf.sprintf "stream slot=%d src=%d dst=%d len=%d" slot src dst len
  | Inject { target; pad } -> Printf.sprintf "inject target=%d pad=%d" target pad
  | Attest { slot } -> Printf.sprintf "attest slot=%d" slot
  | Vf_attach { slot; weight } -> Printf.sprintf "vfattach slot=%d weight=%d" slot weight
  | Vf_detach { slot } -> Printf.sprintf "vfdetach slot=%d" slot
  | Vf_doorbell { actor; target; value } ->
    Printf.sprintf "vfdoorbell actor=%d target=%d value=%d" actor target value
  | Vf_queue_read { actor; target; len } ->
    Printf.sprintf "vfqread actor=%d target=%d len=%d" actor target len
  | Qos_admit { actor; res; cost } ->
    Printf.sprintf "qos actor=%d res=%s cost=%d" actor (qres_to_string res) cost
  | Chan_open { slot; window } -> Printf.sprintf "chanopen slot=%d window=%d" slot window
  | Chan_send { slot; len } -> Printf.sprintf "chansend slot=%d len=%d" slot len
  | Chan_replay { slot } -> Printf.sprintf "chanreplay slot=%d" slot

(* ---- strict line parser ------------------------------------------- *)

let ( let* ) = Result.bind

let parse_fields words =
  (* key=value pairs; duplicates and bare words are errors. *)
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | w :: rest -> begin
      match String.index_opt w '=' with
      | None -> Error (Printf.sprintf "expected key=value, got %S" w)
      | Some i ->
        let k = String.sub w 0 i and v = String.sub w (i + 1) (String.length w - i - 1) in
        if List.mem_assoc k acc then Error (Printf.sprintf "duplicate field %S" k) else go ((k, v) :: acc) rest
    end
  in
  go [] words

let field fields k =
  match List.assoc_opt k fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" k)

let int_field fields k =
  let* v = field fields k in
  match int_of_string_opt v with
  | Some n when n >= 0 -> Ok n
  | Some _ -> Error (Printf.sprintf "field %S must be non-negative" k)
  | None -> Error (Printf.sprintf "field %S is not an integer: %S" k v)

let bool_field fields k =
  let* v = field fields k in
  match v with "1" -> Ok true | "0" -> Ok false | _ -> Error (Printf.sprintf "field %S must be 0 or 1" k)

let actor_field fields k =
  let* v = field fields k in
  if String.equal v "os" then Ok Os
  else begin
    match int_of_string_opt v with
    | Some n when n >= 0 -> Ok (Slot n)
    | _ -> Error (Printf.sprintf "field %S must be \"os\" or a slot index" k)
  end

let space_field fields k =
  let* v = field fields k in
  match v with
  | "virt" -> Ok Virt
  | "phys" -> Ok Phys
  | _ -> Error (Printf.sprintf "field %S must be virt or phys" k)

let reg_field fields k =
  let* v = field fields k in
  match v with
  | "graph" -> Ok Graph
  | "iq" -> Ok Iq
  | _ -> Error (Printf.sprintf "field %S must be graph or iq" k)

let dir_field fields k =
  let* v = field fields k in
  match v with
  | "to-host" -> Ok To_host
  | "to-nic" -> Ok To_nic
  | _ -> Error (Printf.sprintf "field %S must be to-host or to-nic" k)

let qres_field fields k =
  let* v = field fields k in
  match v with
  | "bus" -> Ok Q_bus
  | "dma" -> Ok Q_dma
  | "accel" -> Ok Q_accel
  | _ -> Error (Printf.sprintf "field %S must be bus, dma or accel" k)

let expect_exactly fields keys =
  match List.find_opt (fun (k, _) -> not (List.mem k keys)) fields with
  | Some (k, _) -> Error (Printf.sprintf "unknown field %S" k)
  | None -> Ok ()

let of_line line =
  let words = String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "") in
  match words with
  | [] -> Error "empty line"
  | verb :: rest -> begin
    let* fields = parse_fields rest in
    let exact keys = expect_exactly fields keys in
    match verb with
    | "launch" ->
      let* () = exact [ "slot"; "kb"; "accel"; "rules" ] in
      let* slot = int_field fields "slot" in
      let* mem_kb = int_field fields "kb" in
      let* accel = bool_field fields "accel" in
      let* rules = bool_field fields "rules" in
      if mem_kb = 0 then Error "field \"kb\" must be positive" else Ok (Launch { slot; mem_kb; accel; rules })
    | "teardown" ->
      let* () = exact [ "slot" ] in
      let* slot = int_field fields "slot" in
      Ok (Teardown { slot })
    | "read" ->
      let* () = exact [ "actor"; "target"; "space"; "off"; "len" ] in
      let* actor = actor_field fields "actor" in
      let* target = int_field fields "target" in
      let* space = space_field fields "space" in
      let* off = int_field fields "off" in
      let* len = int_field fields "len" in
      if len = 0 then Error "field \"len\" must be positive" else Ok (Read { actor; target; space; off; len })
    | "write" ->
      let* () = exact [ "actor"; "target"; "space"; "off"; "len"; "byte" ] in
      let* actor = actor_field fields "actor" in
      let* target = int_field fields "target" in
      let* space = space_field fields "space" in
      let* off = int_field fields "off" in
      let* len = int_field fields "len" in
      let* byte = int_field fields "byte" in
      if len = 0 then Error "field \"len\" must be positive"
      else if byte = 0 || byte > 255 then Error "field \"byte\" must be in 1..255"
      else Ok (Write { actor; target; space; off; len; byte })
    | "mmio" ->
      let* () = exact [ "actor"; "target"; "reg"; "value" ] in
      let* actor = int_field fields "actor" in
      let* target = int_field fields "target" in
      let* reg = reg_field fields "reg" in
      let* value = int_field fields "value" in
      Ok (Mmio_write { actor; target; reg; value })
    | "dma" ->
      let* () = exact [ "actor"; "target"; "dir"; "off"; "len" ] in
      let* actor = int_field fields "actor" in
      let* target = int_field fields "target" in
      let* dir = dir_field fields "dir" in
      let* off = int_field fields "off" in
      let* len = int_field fields "len" in
      if len = 0 then Error "field \"len\" must be positive" else Ok (Dma { actor; target; dir; off; len })
    | "stream" ->
      let* () = exact [ "slot"; "src"; "dst"; "len" ] in
      let* slot = int_field fields "slot" in
      let* src = int_field fields "src" in
      let* dst = int_field fields "dst" in
      let* len = int_field fields "len" in
      if len = 0 then Error "field \"len\" must be positive" else Ok (Stream { slot; src; dst; len })
    | "inject" ->
      let* () = exact [ "target"; "pad" ] in
      let* target = int_field fields "target" in
      let* pad = int_field fields "pad" in
      Ok (Inject { target; pad })
    | "attest" ->
      let* () = exact [ "slot" ] in
      let* slot = int_field fields "slot" in
      Ok (Attest { slot })
    | "vfattach" ->
      let* () = exact [ "slot"; "weight" ] in
      let* slot = int_field fields "slot" in
      let* weight = int_field fields "weight" in
      if weight = 0 then Error "field \"weight\" must be positive" else Ok (Vf_attach { slot; weight })
    | "vfdetach" ->
      let* () = exact [ "slot" ] in
      let* slot = int_field fields "slot" in
      Ok (Vf_detach { slot })
    | "vfdoorbell" ->
      let* () = exact [ "actor"; "target"; "value" ] in
      let* actor = int_field fields "actor" in
      let* target = int_field fields "target" in
      let* value = int_field fields "value" in
      Ok (Vf_doorbell { actor; target; value })
    | "vfqread" ->
      let* () = exact [ "actor"; "target"; "len" ] in
      let* actor = int_field fields "actor" in
      let* target = int_field fields "target" in
      let* len = int_field fields "len" in
      if len = 0 then Error "field \"len\" must be positive" else Ok (Vf_queue_read { actor; target; len })
    | "qos" ->
      let* () = exact [ "actor"; "res"; "cost" ] in
      let* actor = int_field fields "actor" in
      let* res = qres_field fields "res" in
      let* cost = int_field fields "cost" in
      if cost = 0 then Error "field \"cost\" must be positive" else Ok (Qos_admit { actor; res; cost })
    | "chanopen" ->
      let* () = exact [ "slot"; "window" ] in
      let* slot = int_field fields "slot" in
      let* window = int_field fields "window" in
      if window < 1 || window > 62 then Error "field \"window\" must be in 1..62"
      else Ok (Chan_open { slot; window })
    | "chansend" ->
      let* () = exact [ "slot"; "len" ] in
      let* slot = int_field fields "slot" in
      let* len = int_field fields "len" in
      if len = 0 then Error "field \"len\" must be positive" else Ok (Chan_send { slot; len })
    | "chanreplay" ->
      let* () = exact [ "slot" ] in
      let* slot = int_field fields "slot" in
      Ok (Chan_replay { slot })
    | v -> Error (Printf.sprintf "unknown op %S" v)
  end
