(** Delta-debugging (ddmin) over oracle traces.

    Given a trace and one violation from its run, [minimize] finds a
    small sub-trace whose replay still produces a violation with the
    same {!Refmodel.key} (class + slot signature — stable across
    subsequences even as NF ids and physical addresses drift). Ops are
    slot-indexed and inapplicable ones are skipped deterministically, so
    every candidate subsequence is a well-formed trace; shrinking is
    pure search, no repair. *)

(** [minimize ?slots ~mode ops violation] — the returned trace replays
    to a violation with the same key (or, if the violation unexpectedly
    fails to reproduce from its own prefix, that prefix unchanged). *)
val minimize :
  ?slots:int -> mode:Nicsim.Machine.mode -> Op.t list -> Refmodel.violation -> Op.t list
