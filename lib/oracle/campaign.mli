(** Seeded oracle campaigns: generate, execute, report, replay.

    A campaign is fully determined by (mode, slots, ops, seed): the op
    stream is drawn from {!Trace.Rng} independently of execution, so the
    same seed reproduces the same trace byte-for-byte — and any explicit
    op list (a [--replay] file, a shrunk counterexample) runs through
    {!replay} with identical semantics. *)

type report = {
  mode : Nicsim.Machine.mode;
  seed : int option; (* None for explicit-trace replays *)
  ops : int; (* ops driven at the harness *)
  executed : int;
  skipped : int;
  violations : Refmodel.violation list; (* execution order *)
}

(** Stable short mode identifiers for CLIs, trace files and CI: "se-s",
    "se-um", "se-um-xk", "agilio", "bluefield", "snic". *)
val mode_id : Nicsim.Machine.mode -> string

val mode_of_id : string -> Nicsim.Machine.mode option

(** All five architectures (SE-UM in both flavours), commodity first. *)
val all_modes : Nicsim.Machine.mode list

(** The default slot population (6). *)
val default_slots : int

(** [gen_ops ~slots ~ops ~seed] draws the op stream a seeded campaign
    executes. Generation never consults execution state, so the stream
    depends on the seed alone. *)
val gen_ops : slots:int -> ops:int -> seed:int -> Op.t list

(** [replay ?slots ~mode ops] runs an explicit op list on a fresh
    harness. *)
val replay : ?slots:int -> mode:Nicsim.Machine.mode -> Op.t list -> report

(** [run ?slots ~mode ~ops ~seed ()] = [gen_ops] + [replay], with [seed]
    recorded in the report. *)
val run : ?slots:int -> mode:Nicsim.Machine.mode -> ops:int -> seed:int -> unit -> report

(** Violations per class, in {!Refmodel.all_classes} order, zero-count
    classes included. *)
val counts : report -> (Refmodel.cls * int) list

(** Human-readable, deterministic summary (counts per class and the
    first violation of each class). *)
val to_string : report -> string

(** {2 Trace files}

    Line-oriented: a [# ...] comment header, a [mode <id>] directive, an
    optional [slots <n>] directive, then one {!Op.to_line} per line.
    Blank lines and further comments are ignored. *)

val trace_to_string : mode:Nicsim.Machine.mode -> slots:int -> Op.t list -> string

(** Strict parse; [Error] names the offending line. *)
val trace_of_string : string -> (Nicsim.Machine.mode * int * Op.t list, string) result
