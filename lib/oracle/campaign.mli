(** Seeded oracle campaigns: generate, execute, report, replay.

    A campaign is fully determined by (mode, slots, ops, seed): the op
    stream is drawn from {!Trace.Rng} independently of execution, so the
    same seed reproduces the same trace byte-for-byte — and any explicit
    op list (a [--replay] file, a shrunk counterexample) runs through
    {!replay} with identical semantics. *)

type report = {
  mode : Nicsim.Machine.mode;
  seed : int option; (* None for explicit-trace replays *)
  ops : int; (* ops driven at the harness *)
  executed : int;
  skipped : int;
  violations : Refmodel.violation list; (* execution order *)
}

(** Stable short mode identifiers for CLIs, trace files and CI: "se-s",
    "se-um", "se-um-xk", "agilio", "bluefield", "snic". *)
val mode_id : Nicsim.Machine.mode -> string

val mode_of_id : string -> Nicsim.Machine.mode option

(** All five architectures (SE-UM in both flavours), commodity first. *)
val all_modes : Nicsim.Machine.mode list

(** The default slot population (6). *)
val default_slots : int

(** [gen_ops ?fabric ~slots ~ops ~seed ()] draws the op stream a seeded
    campaign executes. Generation never consults execution state, so the
    stream depends on the seed alone.  [fabric] (default false) mixes
    the attested-channel ops into the alphabet; the default stream is
    byte-identical to what older campaigns drew, so pinned digests stay
    valid. *)
val gen_ops : ?fabric:bool -> slots:int -> ops:int -> seed:int -> unit -> Op.t list

(** [gen_ops_array] is {!gen_ops} as an array — the form the batched
    interpreter consumes. *)
val gen_ops_array : ?fabric:bool -> slots:int -> ops:int -> seed:int -> unit -> Op.t array

(** [replay ?slots ~mode ops] runs an explicit op list on a fresh
    harness. *)
val replay : ?slots:int -> mode:Nicsim.Machine.mode -> Op.t list -> report

(** [replay_array] is {!replay} over an op array, interpreted in
    512-op chunks through {!Harness.step_batch}.  Same semantics, same
    report, less dispatch overhead — {!replay} and {!run} both route
    through it. *)
val replay_array : ?slots:int -> mode:Nicsim.Machine.mode -> Op.t array -> report

(** [run ?slots ?fabric ~mode ~ops ~seed ()] = [gen_ops] + [replay],
    with [seed] recorded in the report. *)
val run : ?slots:int -> ?fabric:bool -> mode:Nicsim.Machine.mode -> ops:int -> seed:int -> unit -> report

(** [run_sharded ?domains ~mode ~ops ~seed ~shards ()] runs [shards]
    independent campaigns of [ops] ops each, shard [i] seeded with
    [Par.Seed.derive ~seed ~shard:i], fanned across [domains] OCaml
    domains (default 1).  Reports come back in shard order regardless of
    completion order, each carrying its derived seed — so shard [i] of
    any parallel run reproduces alone via
    [run ~mode ~ops ~seed:(Par.Seed.derive ~seed ~shard:i) ()].  The
    result is byte-identical for every [?domains] value
    (PARALLELISM.md spells out the contract; [test/test_par.ml] and the
    CI [par-smoke] job enforce it). *)
val run_sharded :
  ?domains:int ->
  ?slots:int ->
  ?fabric:bool ->
  mode:Nicsim.Machine.mode ->
  ops:int ->
  seed:int ->
  shards:int ->
  unit ->
  report array

(** Violations per class, in {!Refmodel.all_classes} order, zero-count
    classes included. *)
val counts : report -> (Refmodel.cls * int) list

(** Human-readable, deterministic summary (counts per class and the
    first violation of each class). *)
val to_string : report -> string

(** {2 Trace files}

    Line-oriented: a [# ...] comment header, a [mode <id>] directive, an
    optional [slots <n>] directive, then one {!Op.to_line} per line.
    Blank lines and further comments are ignored. *)

val trace_to_string : mode:Nicsim.Machine.mode -> slots:int -> Op.t list -> string

(** Strict parse; [Error] names the offending line. *)
val trace_of_string : string -> (Nicsim.Machine.mode * int * Op.t list, string) result
