(** Differential execution harness: one machine, one flat model, one op
    at a time.

    The harness owns a {!Nicsim.Machine} in the campaign's mode (S-NIC
    mode additionally gets the trusted-instruction state of
    {!Snic.Instructions}; commodity modes get a manager that mimics
    commodity firmware — no scrub on teardown, cores recycled lazily,
    accelerator MMIO left writable). Each slot holds at most one live
    tenant with a dedicated core, a private memory region filled with a
    recognizable secret, an optional DPI cluster, a host DMA window and
    optionally a packet-switch rule.

    [step] executes one {!Op.t} against the machine, predicts the
    outcome with {!Refmodel}, and files {!Refmodel.violation}s for
    every disagreement or isolation breach. Ops that do not apply to the
    current slot population (teardown of an empty slot, a read issued by
    a dead actor, ...) are skipped deterministically — the property that
    makes any subsequence of a trace replayable. *)

type t

(** [create ~mode ~slots] boots a fresh machine. [slots] must be in
    [1..8] (each slot gets its own core and DMA bank). *)
val create : mode:Nicsim.Machine.mode -> slots:int -> t

val mode : t -> Nicsim.Machine.mode
val slots : t -> int

(** Execute one op; any violations it provokes are appended. *)
val step : t -> Op.t -> unit

(** [step_batch t ops ~pos ~len] interprets the slice
    [ops.(pos) .. ops.(pos + len - 1)] in order — semantically identical
    to [len] calls of {!step}, but the dispatch loop is chunked so the
    campaign driver amortizes per-op overhead ([Par.Batch.iter_slices]
    picks the slice boundaries).  Raises [Invalid_argument] when the
    slice falls outside [ops]. *)
val step_batch : t -> Op.t array -> pos:int -> len:int -> unit

(** Ops that actually ran / were skipped as inapplicable. *)
val executed : t -> int

val skipped : t -> int

(** Violations so far, in execution order. *)
val violations : t -> Refmodel.violation list
