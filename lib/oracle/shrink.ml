let remove_chunk l ~start ~len = List.filteri (fun i _ -> i < start || i >= start + len) l

let minimize ?(slots = Campaign.default_slots) ~mode ops (v : Refmodel.violation) =
  let key = Refmodel.key v in
  let reproduces candidate =
    candidate <> []
    &&
    let r = Campaign.replay ~slots ~mode candidate in
    List.exists (fun v' -> String.equal (Refmodel.key v') key) r.Campaign.violations
  in
  (* Everything after the violating step is noise by construction. *)
  let prefix = List.filteri (fun i _ -> i <= v.Refmodel.step) ops in
  if not (reproduces prefix) then prefix
  else begin
    (* Classic ddmin: remove ever-finer chunks while the key survives. *)
    let rec ddmin current n =
      let len = List.length current in
      if len <= 1 || n > len then current
      else begin
        let chunk = (len + n - 1) / n in
        let rec try_complements start =
          if start >= len then None
          else begin
            let candidate = remove_chunk current ~start ~len:chunk in
            if reproduces candidate then Some candidate else try_complements (start + chunk)
          end
        in
        match try_complements 0 with
        | Some candidate -> ddmin candidate (max 2 (n - 1))
        | None -> if chunk <= 1 then current else ddmin current (min len (2 * n))
      end
    in
    let reduced = ddmin prefix 2 in
    (* Greedy one-by-one sweep to catch stragglers ddmin's chunking missed. *)
    let rec sweep current i =
      if i >= List.length current then current
      else begin
        let candidate = remove_chunk current ~start:i ~len:1 in
        if reproduces candidate then sweep candidate i else sweep current (i + 1)
      end
    in
    sweep reduced 0
  end
