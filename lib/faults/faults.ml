type site =
  | Dma_error
  | Dma_stall
  | Dma_corrupt
  | Accel_hang
  | Accel_garbage
  | Rx_drop
  | Rx_corrupt
  | Tx_drop
  | Bus_timeout
  | Dram_flip

let all_sites =
  [ Dma_error; Dma_stall; Dma_corrupt; Accel_hang; Accel_garbage; Rx_drop; Rx_corrupt; Tx_drop; Bus_timeout; Dram_flip ]

let site_name = function
  | Dma_error -> "dma-error"
  | Dma_stall -> "dma-stall"
  | Dma_corrupt -> "dma-corrupt"
  | Accel_hang -> "accel-hang"
  | Accel_garbage -> "accel-garbage"
  | Rx_drop -> "rx-drop"
  | Rx_corrupt -> "rx-corrupt"
  | Tx_drop -> "tx-drop"
  | Bus_timeout -> "bus-timeout"
  | Dram_flip -> "dram-flip"

let site_index = function
  | Dma_error -> 0
  | Dma_stall -> 1
  | Dma_corrupt -> 2
  | Accel_hang -> 3
  | Accel_garbage -> 4
  | Rx_drop -> 5
  | Rx_corrupt -> 6
  | Tx_drop -> 7
  | Bus_timeout -> 8
  | Dram_flip -> 9

type fault_event = { seq : int; device : string; site : site; detail : string }

let event_to_string ev = Printf.sprintf "#%04d %s %s: %s" ev.seq ev.device (site_name ev.site) ev.detail

type rates = {
  dma_error : float;
  dma_stall : float;
  dma_corrupt : float;
  accel_hang : float;
  accel_garbage : float;
  rx_drop : float;
  rx_corrupt : float;
  tx_drop : float;
  bus_timeout : float;
  dram_flip : float;
}

let none =
  {
    dma_error = 0.;
    dma_stall = 0.;
    dma_corrupt = 0.;
    accel_hang = 0.;
    accel_garbage = 0.;
    rx_drop = 0.;
    rx_corrupt = 0.;
    tx_drop = 0.;
    bus_timeout = 0.;
    dram_flip = 0.;
  }

let storm ?(intensity = 1.0) () =
  let s r = min 1.0 (r *. intensity) in
  {
    dma_error = s 0.02;
    dma_stall = s 0.03;
    dma_corrupt = s 0.015;
    accel_hang = s 0.01;
    accel_garbage = s 0.02;
    rx_drop = s 0.03;
    rx_corrupt = s 0.02;
    tx_drop = s 0.02;
    bus_timeout = s 0.02;
    dram_flip = s 0.01;
  }

let rate rates = function
  | Dma_error -> rates.dma_error
  | Dma_stall -> rates.dma_stall
  | Dma_corrupt -> rates.dma_corrupt
  | Accel_hang -> rates.accel_hang
  | Accel_garbage -> rates.accel_garbage
  | Rx_drop -> rates.rx_drop
  | Rx_corrupt -> rates.rx_corrupt
  | Tx_drop -> rates.tx_drop
  | Bus_timeout -> rates.bus_timeout
  | Dram_flip -> rates.dram_flip

type t = {
  plan_seed : int;
  plan_rates : rates;
  mutable state : int; (* SplitMix-style stream, 62-bit arithmetic *)
  mutable seq : int;
  mutable events : fault_event list; (* reverse firing order *)
  counts : int array; (* indexed by site_index *)
}

let plan ~seed rates =
  {
    plan_seed = seed;
    plan_rates = rates;
    state = (seed * 0x3C79AC492BA7B653) land max_int;
    seq = 0;
    events = [];
    counts = Array.make (List.length all_sites) 0;
  }

let rates t = t.plan_rates
let seed t = t.plan_seed

(* 62-bit-safe SplitMix64-style mixer (same trick as lib/trace/rng.ml),
   so the arithmetic is identical on every OCaml int width. *)
let gamma = 0x1E3779B97F4A7C15

let next_int t =
  t.state <- (t.state + gamma) land max_int;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * 0x2545F4914F6CDD1D in
  let z = (z lxor (z lsr 27)) * 0x1B873593CC9E2D51 in
  (z lxor (z lsr 31)) land max_int

let next_float t = float_of_int (next_int t land ((1 lsl 53) - 1)) /. float_of_int (1 lsl 53)

let roll t site =
  let r = rate t.plan_rates site in
  if r <= 0.0 then false else next_float t < r

let draw_int t bound = if bound <= 1 then 0 else next_int t mod bound

let record t ~device site ~detail =
  let ev = { seq = t.seq; device; site; detail } in
  t.seq <- t.seq + 1;
  t.events <- ev :: t.events;
  t.counts.(site_index site) <- t.counts.(site_index site) + 1;
  ev

let fire t ~device site ~detail = if roll t site then Some (record t ~device site ~detail) else None

let log t = List.rev t.events
let count t site = t.counts.(site_index site)
let total t = t.seq

let log_to_string t =
  let buf = Buffer.create 256 in
  List.iter
    (fun ev ->
      Buffer.add_string buf (event_to_string ev);
      Buffer.add_char buf '\n')
    (log t);
  Buffer.contents buf
