(** Seeded gray-failure injection plans for the simulated NIC devices.

    The paper's threat model assumes hardware that fails *closed*
    (teardown scrubs, attestation rejects mis-staged images); real SoC
    NICs mostly fail *gray*: DMA engines drop or corrupt transfers,
    accelerators wedge, links drop frames, DRAM bits rot. A plan arms
    per-device fault points with firing probabilities; each firing is
    recorded as a typed {!fault_event} in an append-only injection log,
    so a run never produces a silent wrong answer without a matching log
    entry, and a seeded run replays its fault schedule byte for byte.

    The library is dependency-free: devices consult the plan at their
    fault points, the fleet supervisor reads the log for health scoring,
    and tests diff [log_to_string] across runs for determinism. *)

(** The device-level fault points (where gray failures strike). *)
type site =
  | Dma_error (* transfer fails outright *)
  | Dma_stall (* transfer completes but the engine stalls for cycles *)
  | Dma_corrupt (* a single bit of the transferred data flips in flight *)
  | Accel_hang (* a submitted request never completes (watchdog horizon) *)
  | Accel_garbage (* the engine signals completion but the output is garbage *)
  | Rx_drop (* ingress drops the frame before the switch sees it *)
  | Rx_corrupt (* a single bit of the arriving frame flips *)
  | Tx_drop (* egress eats the frame instead of putting it on the wire *)
  | Bus_timeout (* a bus operation wedges for a long timeout window *)
  | Dram_flip (* a single DRAM bit rots *)

val all_sites : site list
val site_name : site -> string

(** One firing of a fault point: the typed record surfaced on result
    paths and appended to the injection log. [seq] orders events within
    one plan. *)
type fault_event = { seq : int; device : string; site : site; detail : string }

val event_to_string : fault_event -> string

(** Per-site firing probabilities in [0, 1]. A rate of exactly [0.]
    consumes no randomness, so arming one site does not perturb the
    schedule of the others. *)
type rates = {
  dma_error : float;
  dma_stall : float;
  dma_corrupt : float;
  accel_hang : float;
  accel_garbage : float;
  rx_drop : float;
  rx_corrupt : float;
  tx_drop : float;
  bus_timeout : float;
  dram_flip : float;
}

(** Everything off. *)
val none : rates

(** A moderate gray-failure storm; [intensity] (default 1.0) scales every
    rate linearly (clamped to 1.0). *)
val storm : ?intensity:float -> unit -> rates

type t

(** [plan ~seed rates] — arm a fault plan. Same seed and same sequence of
    consultations => same firings, same log. *)
val plan : seed:int -> rates -> t

val rates : t -> rates
val seed : t -> int

(** [roll t site] — draw once against [site]'s rate; [true] means the
    fault fires (the caller then builds a detail string and {!record}s
    it). Rate 0.0 returns [false] without consuming randomness. *)
val roll : t -> site -> bool

(** [draw_int t bound] — auxiliary randomness for a firing fault (bit
    index, stall length). Uniform in [0, bound). *)
val draw_int : t -> int -> int

(** [record t ~device site ~detail] — append a typed event to the
    injection log and return it. *)
val record : t -> device:string -> site -> detail:string -> fault_event

(** [fire t ~device site ~detail] — [roll] and, when the fault fires,
    [record] with the given detail. *)
val fire : t -> device:string -> site -> detail:string -> fault_event option

(** {2 The injection log} *)

(** Events in firing order. *)
val log : t -> fault_event list

(** Firings of one site so far. *)
val count : t -> site -> int

(** Total firings so far. *)
val total : t -> int

(** One line per event ("#seq device site: detail"), newline-terminated;
    the replay artifact the determinism tests diff. *)
val log_to_string : t -> string
