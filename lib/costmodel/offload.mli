(** Why offload at all — the paper's §1 motivation, quantified.

    Three deployments of the same per-packet work:
    - on a host x86 core (fast core, but every packet pays a PCIe round
      trip and the core's much higher TCO);
    - on a plain smart-NIC core (slower core, no PCIe crossing, cheap);
    - on an S-NIC core (same, minus the isolation tax: the Figure 5 IPC
      degradation and the §5.2 TCO overhead).

    Outputs per-packet latency, per-core throughput, and dollars per
    Mpps of three-year capacity — the quantity behind "S-NIC preserves
    most of the TCO advantage". *)

type deployment = {
  name : string;
  core_ghz : float;
  cycles_per_packet : float;
  pcie_ns_each_way : float; (* 0 for on-NIC processing *)
  core_tco_usd : float; (* 3-year $/core (§5.2) *)
}

val host_x86 : deployment
val smartnic : deployment

(** [snic ?ipc_degradation_pct ?tco_overhead_pct ()] derives the S-NIC
    deployment from [smartnic] (defaults: the paper's worst-case 1.7%
    and the §5.2 TCO numbers). *)
val snic : ?ipc_degradation_pct:float -> ?tco_overhead_pct:float -> unit -> deployment

type result = {
  deployment : string;
  latency_ns : float; (* per-packet, including PCIe *)
  kpps_per_core : float;
  usd_per_mpps : float; (* 3-year cost per Mpps of capacity *)
}

val evaluate : deployment -> result

(** All three, host first. *)
val comparison : unit -> result list
