(* Per-unit anchors recovered from the paper:
   - 2/3 entries: Table 4 VPP/DMA banks (0.037 mm2, 0.017 W for 12 banks)
   - 5: RAID accelerator TLB (Table 3, 16 clusters)
   - 13 / 51 / 183: Table 5 page-size settings across 48 cores
   - 54 / 70: DPI / ZIP accelerator TLBs (Table 3)
   - 256 / 512: Table 2 per-core TLBs (48-core column) *)
let anchors =
  [
    (2, 0.0030833, 0.0014167);
    (5, 0.0031250, 0.0014375);
    (13, 0.0031250, 0.0014375);
    (51, 0.0044583, 0.0022083);
    (54, 0.0046250, 0.0023125);
    (70, 0.0056875, 0.0027500);
    (183, 0.0112083, 0.0064792);
    (256, 0.0149583, 0.0086667);
    (512, 0.0407500, 0.0219167);
  ]

let a9_baseline_area_mm2 = 4.939
let a9_baseline_power_w = 1.883

(* Log-log piecewise-linear interpolation; constant below the first
   anchor, last-segment slope extrapolation above the final one. *)
let interp select entries =
  if entries <= 0 then invalid_arg "Tlb_cost: entry count must be positive";
  let pts = List.map (fun (e, a, p) -> (float_of_int e, select (a, p))) anchors in
  let x = float_of_int entries in
  let rec go = function
    | [] -> assert false
    | [ (x1, y1) ] -> (x1, y1, x1, y1) (* above the last anchor: handled below *)
    | (x1, y1) :: ((x2, y2) :: _ as rest) -> if x <= x2 then (x1, y1, x2, y2) else go rest
  in
  match pts with
  | [] -> assert false
  | (x0, y0) :: _ ->
    if x <= x0 then y0
    else begin
      let x1, y1, x2, y2 = go pts in
      if x1 = x2 then begin
        (* Beyond the final anchor: extrapolate the last segment. *)
        match List.rev pts with
        | (xb, yb) :: (xa, ya) :: _ ->
          let slope = (log yb -. log ya) /. (log xb -. log xa) in
          exp (log yb +. (slope *. (log x -. log xb)))
        | _ -> y1
      end
      else begin
        let t = (log x -. log x1) /. (log x2 -. log x1) in
        exp (log y1 +. (t *. (log y2 -. log y1)))
      end
    end

let area_mm2 entries = interp fst entries
let power_w entries = interp snd entries
