type device = { name : string; purchase_usd : float; peak_power_w : float; cores : int }

let liquidio = { name = "Marvell LiquidIO (12 cores)"; purchase_usd = 420.; peak_power_w = 24.7; cores = 12 }
let host_xeon = { name = "Intel E5-2680 v3 (12 cores)"; purchase_usd = 1745.; peak_power_w = 113.; cores = 12 }
let usd_per_kwh = 0.0733
let years = 3.

let tco_per_core d =
  let hours = years *. 365. *. 24. in
  let electricity = d.peak_power_w *. hours /. 1000. *. usd_per_kwh in
  (d.purchase_usd +. electricity) /. float_of_int d.cores

let snic_variant ?(area_overhead_pct = 8.89) ?(power_overhead_pct = 11.45) d =
  {
    d with
    name = d.name ^ " + S-NIC";
    purchase_usd = d.purchase_usd *. (1. +. (area_overhead_pct /. 100.));
    peak_power_w = d.peak_power_w *. (1. +. (power_overhead_pct /. 100.));
  }

type summary = {
  nic_tco : float;
  snic_tco : float;
  host_tco : float;
  advantage_nic : float;
  advantage_snic : float;
  advantage_reduction_pct : float;
  preserved_pct : float;
}

let summary ?area_overhead_pct ?power_overhead_pct () =
  let nic_tco = tco_per_core liquidio in
  let snic_tco = tco_per_core (snic_variant ?area_overhead_pct ?power_overhead_pct liquidio) in
  let host_tco = tco_per_core host_xeon in
  let advantage_nic = host_tco /. nic_tco in
  let advantage_snic = host_tco /. snic_tco in
  let advantage_reduction_pct = 100. *. (advantage_nic -. advantage_snic) /. advantage_nic in
  {
    nic_tco;
    snic_tco;
    host_tco;
    advantage_nic;
    advantage_snic;
    advantage_reduction_pct;
    preserved_pct = 100. -. advantage_reduction_pct;
  }
