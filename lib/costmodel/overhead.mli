(** Aggregate S-NIC silicon overhead (§5.2): core TLBs + virtualized
    accelerator TLB banks + VPP/DMA TLB banks, relative to the
    TLB-extended 4-core Cortex-A9 (that is the denominator that yields
    the paper's headline 8.89% / 11.45%). *)

type config = {
  cores : int; (* programmable cores carrying a per-core TLB *)
  core_tlb_entries : int; (* 512 in the headline configuration *)
  accel_cluster_counts : int; (* clusters per accelerator (16 headline) *)
  vpp_units : int; (* 12 headline (48 cores / 4 cores per NF) *)
}

val headline : config

type breakdown = {
  core_area : float;
  accel_area : float;
  io_area : float; (* VPP + DMA banks *)
  total_area : float;
  core_power : float;
  accel_power : float;
  io_power : float;
  total_power : float;
  area_overhead_pct : float; (* vs TLB-extended A9 *)
  power_overhead_pct : float;
}

val compute : config -> breakdown

(** Per-accelerator TLB bank entry counts (Table 7's derivation):
    DPI 54, ZIP 70, RAID 5. *)
val accel_tlb_entries : (string * int) list

val vpp_tlb_entries : int
val dma_tlb_entries : int
