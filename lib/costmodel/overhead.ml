type config = { cores : int; core_tlb_entries : int; accel_cluster_counts : int; vpp_units : int }

let headline = { cores = 4; core_tlb_entries = 512; accel_cluster_counts = 16; vpp_units = 12 }

let accel_tlb_entries = [ ("DPI", 54); ("ZIP", 70); ("RAID", 5) ]
let vpp_tlb_entries = 3
let dma_tlb_entries = 2

type breakdown = {
  core_area : float;
  accel_area : float;
  io_area : float;
  total_area : float;
  core_power : float;
  accel_power : float;
  io_power : float;
  total_power : float;
  area_overhead_pct : float;
  power_overhead_pct : float;
}

let compute c =
  let fc = float_of_int in
  let core_area = fc c.cores *. Tlb_cost.area_mm2 c.core_tlb_entries in
  let core_power = fc c.cores *. Tlb_cost.power_w c.core_tlb_entries in
  let accel_area =
    List.fold_left (fun acc (_, e) -> acc +. (fc c.accel_cluster_counts *. Tlb_cost.area_mm2 e)) 0. accel_tlb_entries
  in
  let accel_power =
    List.fold_left (fun acc (_, e) -> acc +. (fc c.accel_cluster_counts *. Tlb_cost.power_w e)) 0. accel_tlb_entries
  in
  let io_area = fc c.vpp_units *. (Tlb_cost.area_mm2 vpp_tlb_entries +. Tlb_cost.area_mm2 dma_tlb_entries) in
  let io_power = fc c.vpp_units *. (Tlb_cost.power_w vpp_tlb_entries +. Tlb_cost.power_w dma_tlb_entries) in
  let total_area = core_area +. accel_area +. io_area in
  let total_power = core_power +. accel_power +. io_power in
  (* Denominator: the A9 baseline including the per-core TLBs, matching
     the paper's "compared to a baseline 4-core A9 with a TLB size of 512
     entries". *)
  let denom_area = Tlb_cost.a9_baseline_area_mm2 +. core_area in
  let denom_power = Tlb_cost.a9_baseline_power_w +. core_power in
  {
    core_area;
    accel_area;
    io_area;
    total_area;
    core_power;
    accel_power;
    io_power;
    total_power;
    area_overhead_pct = 100. *. total_area /. denom_area;
    power_overhead_pct = 100. *. total_power /. denom_power;
  }
