let kb = 1024
let equal_2mb = [ 2048 * kb ]
let flex_low = [ 128 * kb; 2048 * kb; 65536 * kb ]
let flex_high = [ 2048 * kb; 32768 * kb; 131072 * kb ]

let mb x = int_of_float (x *. 1024. *. 1024.)

let validate page_sizes =
  match List.sort compare page_sizes with
  | [] -> invalid_arg "Page_packing: empty page-size menu"
  | smallest :: _ as sorted ->
    (* Each size must divide the next for the greedy decomposition to be
       optimal. *)
    let rec chain = function
      | a :: (b :: _ as rest) ->
        if b mod a <> 0 then invalid_arg "Page_packing: page sizes must divide each other";
        chain rest
      | _ -> ()
    in
    chain sorted;
    (smallest, List.rev sorted)

let alloc_for_region ~smallest bytes =
  if bytes < 0 then invalid_arg "Page_packing: negative region";
  if bytes = 0 then 0 else (bytes + smallest - 1) / smallest * smallest

let entries_for_region ~page_sizes bytes =
  let smallest, desc = validate page_sizes in
  let alloc = alloc_for_region ~smallest bytes in
  let rec go remaining = function
    | [] -> 0
    | size :: rest -> (remaining / size) + go (remaining mod size) rest
  in
  go alloc desc

let entries ~page_sizes regions = List.fold_left (fun acc r -> acc + entries_for_region ~page_sizes r) 0 regions

let allocated ~page_sizes regions =
  let smallest, _ = validate page_sizes in
  List.fold_left (fun acc r -> acc + alloc_for_region ~smallest r) 0 regions

let waste ~page_sizes regions = allocated ~page_sizes regions - List.fold_left ( + ) 0 regions
