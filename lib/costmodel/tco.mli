(** Three-year total-cost-of-ownership model (§5.2).

    Reproduces the paper's arithmetic exactly: per-core TCO of a
    LiquidIO-class smart NIC vs a Xeon E5-2680 v3 host, the S-NIC variant
    inflated by the silicon overheads, and the resulting reduction in the
    NIC's TCO *advantage* (the ratio host/NIC), which is the paper's
    8.37% / "preserves 91.6%" headline. *)

type device = {
  name : string;
  purchase_usd : float;
  peak_power_w : float;
  cores : int;
}

val liquidio : device
val host_xeon : device

(** Average U.S. datacenter electricity price used by the paper. *)
val usd_per_kwh : float

val years : float

(** [tco_per_core device] in USD over [years]. *)
val tco_per_core : device -> float

(** [snic_variant ?area_overhead_pct ?power_overhead_pct device] scales
    purchase cost with area and electricity with power (defaults: the
    paper's 8.89 / 11.45). *)
val snic_variant : ?area_overhead_pct:float -> ?power_overhead_pct:float -> device -> device

type summary = {
  nic_tco : float; (* $/core, plain smart NIC *)
  snic_tco : float; (* $/core, S-NIC-extended *)
  host_tco : float; (* $/core, host server *)
  advantage_nic : float; (* host/nic ratio *)
  advantage_snic : float;
  advantage_reduction_pct : float; (* the 8.37% *)
  preserved_pct : float; (* the 91.6% *)
}

val summary : ?area_overhead_pct:float -> ?power_overhead_pct:float -> unit -> summary
