(** Structured generators for the silicon-cost tables (2–4) and the
    Table 5 rows, so benches, the CLI and tests all consume one source of
    truth instead of re-deriving multiplications. *)

type row = {
  label : string;
  entries : int; (* TLB entries per structure *)
  units : int; (* structures (cores / clusters / banks) *)
  area_mm2 : float; (* total across units *)
  power_w : float;
}

(** Table 2: {366,512,1024} MB/core × {4,8,16,48} cores. *)
val table2 : unit -> row list

(** Table 3: DPI/ZIP/RAID × {16,8,4} clusters. *)
val table3 : unit -> row list

(** Table 4: VPP and DMA banks × {12,6,3} units. *)
val table4 : unit -> row list

(** [table5_row ~label ~entries ~cores] — one page-size-menu row (the
    entry count comes from profiling, see [Memprof.Profiles]). *)
val table5_row : label:string -> entries:int -> cores:int -> row

(** [find rows ~label ~units] — lookup helper for tests. *)
val find : row list -> label:string -> units:int -> row
