type deployment = {
  name : string;
  core_ghz : float;
  cycles_per_packet : float;
  pcie_ns_each_way : float;
  core_tco_usd : float;
}

(* Per-core TCO from the §5.2 arithmetic; per-packet work ~800 cycles (a
   header-touching NF); PCIe ~500 ns each way (gen3 round trip plus
   doorbells), the latency the paper says offloading avoids. *)
let host_x86 =
  {
    name = "host x86 core";
    core_ghz = 2.5;
    cycles_per_packet = 800.;
    pcie_ns_each_way = 500.;
    core_tco_usd = Tco.tco_per_core Tco.host_xeon;
  }

let smartnic =
  {
    name = "smart NIC core";
    core_ghz = 1.2;
    cycles_per_packet = 800.;
    pcie_ns_each_way = 0.;
    core_tco_usd = Tco.tco_per_core Tco.liquidio;
  }

let snic ?(ipc_degradation_pct = 1.7) ?tco_overhead_pct () =
  let tco =
    match tco_overhead_pct with
    | Some _ -> Tco.tco_per_core (Tco.snic_variant ?area_overhead_pct:tco_overhead_pct ?power_overhead_pct:tco_overhead_pct Tco.liquidio)
    | None -> Tco.tco_per_core (Tco.snic_variant Tco.liquidio)
  in
  {
    name = "S-NIC core";
    core_ghz = 1.2;
    (* IPC degradation shows up as extra cycles per packet. *)
    cycles_per_packet = 800. *. (1. +. (ipc_degradation_pct /. 100.));
    pcie_ns_each_way = 0.;
    core_tco_usd = tco;
  }

type result = { deployment : string; latency_ns : float; kpps_per_core : float; usd_per_mpps : float }

let evaluate d =
  let compute_ns = d.cycles_per_packet /. d.core_ghz in
  let latency_ns = compute_ns +. (2. *. d.pcie_ns_each_way) in
  (* Throughput is compute-bound (PCIe transfers pipeline). *)
  let pps = 1e9 /. compute_ns in
  { deployment = d.name; latency_ns; kpps_per_core = pps /. 1e3; usd_per_mpps = d.core_tco_usd /. (pps /. 1e6) }

let comparison () = List.map evaluate [ host_x86; smartnic; snic () ]
