(** Silicon area and power of one fully-associative TLB structure, as a
    function of its entry count.

    The paper derives these numbers from McPAT at 28 nm against a
    Cortex-A9 baseline (§5.2). McPAT is not available here, so this model
    is a CAM+SRAM curve *anchored to the paper's published data points*
    (every per-unit value recoverable from Tables 2–5) with log-log
    interpolation between anchors and slope extrapolation beyond them;
    below the smallest anchor the cost floors at the fixed peripheral
    overhead McPAT reports for tiny structures (the paper notes a 2-entry
    and a 3-entry TLB cost the same). See DESIGN.md for the substitution
    rationale. *)

(** [area_mm2 entries] — die area of one TLB with [entries] entries. *)
val area_mm2 : int -> float

(** [power_w entries] — peak power of the same structure. *)
val power_w : int -> float

(** The Cortex-A9 4-core baseline the paper compares against (recovered
    from Table 2: total minus the added TLB cost). *)
val a9_baseline_area_mm2 : float

val a9_baseline_power_w : float

(** Anchor points used by the model, as (entries, area, power). *)
val anchors : (int * float * float) list
