(** Variable-page-size packing: how many locked TLB entries cover a
    function's memory regions under a given page-size menu (§5.2,
    Tables 5–7).

    Policy, as in the paper: minimize wasted memory first (so the
    allocation for each region is its size rounded up to the *smallest*
    page), then minimize entries (greedy decomposition into the largest
    pages; exact because each menu size divides the next). *)

(** Page-size menus from §5.2 (sizes in bytes). Note: Table 5 in the
    paper swaps the "Flex-low"/"Flex-high" labels relative to the body
    text; we follow the body text ([flex_low] = 128 KB/2 MB/64 MB). *)
val equal_2mb : int list

val flex_low : int list
val flex_high : int list

(** [entries_for_region ~page_sizes bytes] — TLB entries for one region. *)
val entries_for_region : page_sizes:int list -> int -> int

(** [entries ~page_sizes regions] — total over regions (each region gets
    its own aligned mapping, as text/data/code/heap do). *)
val entries : page_sizes:int list -> int list -> int

(** [allocated ~page_sizes regions] — bytes actually reserved (>= sum of
    region sizes; the difference is internal fragmentation). *)
val allocated : page_sizes:int list -> int list -> int

(** [waste ~page_sizes regions] — allocated minus requested bytes. *)
val waste : page_sizes:int list -> int list -> int

val mb : float -> int
(** [mb 2.5] = 2.5 MiB in bytes, for writing profiles naturally. *)
