type row = { label : string; entries : int; units : int; area_mm2 : float; power_w : float }

let row ~label ~entries ~units =
  {
    label;
    entries;
    units;
    area_mm2 = float_of_int units *. Tlb_cost.area_mm2 entries;
    power_w = float_of_int units *. Tlb_cost.power_w entries;
  }

let table2 () =
  List.concat_map
    (fun (label, entries) -> List.map (fun units -> row ~label ~entries ~units) [ 4; 8; 16; 48 ])
    [ ("366MB/core", 183); ("512MB/core", 256); ("1024MB/core", 512) ]

let table3 () =
  List.concat_map
    (fun (label, entries) -> List.map (fun units -> row ~label ~entries ~units) [ 16; 8; 4 ])
    Overhead.accel_tlb_entries

let table4 () =
  List.concat_map
    (fun (label, entries) -> List.map (fun units -> row ~label ~entries ~units) [ 12; 6; 3 ])
    [ ("VPP", Overhead.vpp_tlb_entries); ("DMA", Overhead.dma_tlb_entries) ]

let table5_row ~label ~entries ~cores = row ~label ~entries ~units:cores

let find rows ~label ~units =
  match List.find_opt (fun r -> String.equal r.label label && r.units = units) rows with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Tables.find: no row %s x%d" label units)
