let page_size = Nicsim.Physmem.page_size

type host = { mem : Nicsim.Physmem.t; epc_base : int; epc_len : int; mutable epc_next : int }

type t = {
  host : host;
  name : string;
  base : int; (* this enclave's EPC slice base *)
  mutable pages : int;
  mutable meas : Crypto.Sha256.ctx option; (* open while building *)
  mutable digest : string option; (* sealed at init *)
}

let make_host ~mem_bytes ~epc_bytes =
  if epc_bytes <= 0 || epc_bytes >= mem_bytes then invalid_arg "Enclave.make_host: bad EPC size";
  if mem_bytes land (page_size - 1) <> 0 || epc_bytes land (page_size - 1) <> 0 then
    invalid_arg "Enclave.make_host: sizes must be page-aligned";
  let mem = Nicsim.Physmem.create ~size:mem_bytes in
  { mem; epc_base = mem_bytes - epc_bytes; epc_len = epc_bytes; epc_next = mem_bytes - epc_bytes }

let in_epc host pos = pos >= host.epc_base && pos < host.epc_base + host.epc_len

(* EPC slice allocation is a simple bump over the host's EPC range;
   add_page advances the cursor. *)
let create host ~name = { host; name; base = host.epc_next; pages = 0; meas = Some (Crypto.Sha256.init ()); digest = None }

let initialized t = t.digest <> None
let measurement t = t.digest
let name t = t.name

let add_page t data =
  if String.length data > page_size then Error "page content exceeds one page"
  else begin
    match t.meas with
    | None -> Error "enclave already initialized"
    | Some ctx ->
      let pos = t.base + (t.pages * page_size) in
      if pos + page_size > t.host.epc_base + t.host.epc_len then Error "EPC exhausted"
      else begin
        Nicsim.Physmem.write_bytes t.host.mem ~pos data;
        Crypto.Sha256.feed ctx (Printf.sprintf "page:%d:" t.pages);
        Crypto.Sha256.feed ctx data;
        t.pages <- t.pages + 1;
        t.host.epc_next <- pos + page_size;
        Ok ()
      end
  end

let init t =
  match t.meas with
  | None -> Error "already initialized"
  | Some ctx ->
    let d = Crypto.Sha256.finalize ctx in
    t.meas <- None;
    t.digest <- Some d;
    Ok d

(* Host-OS view: EPC reads abort (0xFF), writes are silently dropped —
   the SGX memory-encryption-engine behaviour as software sees it. *)
let os_read host ~pos ~len =
  String.init len (fun i ->
      let p = pos + i in
      if in_epc host p then '\xFF' else Char.chr (Nicsim.Physmem.read_u8 host.mem p))

let os_write host ~pos data =
  String.iteri
    (fun i c ->
      let p = pos + i in
      if not (in_epc host p) then Nicsim.Physmem.write_u8 host.mem p (Char.code c))
    data

let enter t f =
  if not (initialized t) then Error "enclave not initialized"
  else begin
    let limit = t.pages * page_size in
    let read ~off ~len =
      if off < 0 || off + len > limit then invalid_arg "Enclave: read outside enclave memory";
      Nicsim.Physmem.read_bytes t.host.mem ~pos:(t.base + off) ~len
    in
    let write ~off data =
      if off < 0 || off + String.length data > limit then invalid_arg "Enclave: write outside enclave memory";
      Nicsim.Physmem.write_bytes t.host.mem ~pos:(t.base + off) data
    in
    Ok (f ~read ~write)
  end

let dma_allowed host ~pos ~len =
  let rec ok i = i >= len || ((not (in_epc host (pos + i))) && ok (i + page_size)) in
  (not (in_epc host (pos + len - 1))) && ok 0
