(** A simulated SGX-style host enclave.

    The paper's motivation (§1) and related-work discussion (§6) lean on
    two properties of host enclaves that this module reproduces:

    - enclave memory (the EPC) is protected from the host OS — reads
      return abort-page garbage, writes are discarded — and the enclave's
      initial contents are measured for attestation;
    - but the EPC {e cannot be the target of DMA}: a NIC must land
      packets in ordinary host memory first, where a malicious kernel can
      tamper with them before the enclave pulls them in (the SafeBricks
      weakness S-NIC avoids by processing packets on the NIC itself).

    The enclave life cycle mirrors SGX: [create] (ECREATE), [add_page]
    (EADD, extending the measurement), [init] (EINIT, sealing the
    measurement), then [enter] to run code with access to enclave
    memory. *)

type t

type host = {
  mem : Nicsim.Physmem.t; (* ordinary host RAM *)
  epc_base : int; (* the processor-reserved EPC range *)
  epc_len : int;
  mutable epc_next : int; (* EPC bump-allocation cursor *)
}

(** [make_host ~mem_bytes ~epc_bytes] carves the EPC out of the top of
    host RAM. *)
val make_host : mem_bytes:int -> epc_bytes:int -> host

(** {2 Life cycle} *)

val create : host -> name:string -> t

(** [add_page t data] copies one page of initial content into the EPC and
    extends the measurement. Fails after [init] or when the EPC is
    full. *)
val add_page : t -> string -> (unit, string) result

(** [init t] finalizes the measurement; the enclave becomes runnable. *)
val init : t -> (string, string) result

val measurement : t -> string option
val initialized : t -> bool
val name : t -> string

(** {2 Memory semantics} *)

(** Host-OS access to host RAM: inside the EPC, reads return the abort
    value 0xFF and writes are dropped; elsewhere they behave normally. *)
val os_read : host -> pos:int -> len:int -> string

val os_write : host -> pos:int -> string -> unit

(** [enter t f] runs [f ~read ~write] with enclave access to the
    enclave's own EPC pages (offsets within the enclave). Fails before
    [init]. *)
val enter :
  t -> (read:(off:int -> len:int -> string) -> write:(off:int -> string -> unit) -> 'a) -> ('a, string) result

(** {2 DMA rule} *)

(** [dma_allowed host ~pos ~len] — false when any byte falls in the EPC:
    devices cannot DMA into enclave memory. *)
val dma_allowed : host -> pos:int -> len:int -> bool

val page_size : int
