(** HMAC-SHA256 (RFC 2104), used to derive session keys and authenticate
    traffic inside attested S-NIC tunnels. *)

(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag. *)
val mac : key:string -> string -> string

(** [derive ~secret ~label] expands a shared secret into a 32-byte key
    bound to [label] (a one-step HKDF-like expand). *)
val derive : secret:string -> label:string -> string
