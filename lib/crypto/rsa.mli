(** Textbook RSA with SHA-256 digests and deterministic padding.

    S-NIC hardware carries two RSA key pairs (Appendix A): the endorsement
    key [EK], burned in at manufacturing time and certified by the NIC
    vendor, and a per-boot attestation key [AK] whose public half is signed
    by the [EK]. This module provides keygen, signing and verification for
    both, plus a minimal certificate type for the vendor chain. *)

type public = { n : Bigint.t; e : Bigint.t }
type keypair = { pub : public; d : Bigint.t }

(** [generate state ~bits] builds an RSA key with a [bits]-bit modulus and
    public exponent 65537. *)
val generate : Random.State.t -> bits:int -> keypair

(** [sign key msg] signs SHA-256([msg]) under PKCS#1-style fixed padding.
    The result is [modulus_bytes] long. *)
val sign : keypair -> string -> string

val verify : public -> msg:string -> signature:string -> bool

val modulus_bytes : public -> int

(** Serialized public key, suitable for hashing into certificates. *)
val public_to_string : public -> string

type certificate = {
  subject : string; (* e.g. "S-NIC EK serial 0042" *)
  key : public;
  issuer : string; (* vendor name *)
  signature : string; (* issuer's signature over subject+key *)
}

(** [issue ~issuer_name ~issuer_key ~subject key] signs [key] into a
    certificate. *)
val issue : issuer_name:string -> issuer_key:keypair -> subject:string -> public -> certificate

val check_certificate : issuer_key:public -> certificate -> bool
