(** SHA-256 (FIPS 180-4), implemented from scratch.

    The S-NIC trusted hardware computes a cumulative SHA-256 measurement of
    a network function's initial state during [nf_launch] (§4.6) and signs
    it during [nf_attest] (Appendix A). *)

type ctx

val init : unit -> ctx

(** [feed ctx s] absorbs [s]; may be called repeatedly. *)
val feed : ctx -> string -> unit

val feed_bytes : ctx -> bytes -> unit

(** [finalize ctx] returns the 32-byte digest. The context must not be
    used afterwards. *)
val finalize : ctx -> string

(** One-shot digest. *)
val digest : string -> string

val to_hex : string -> string
