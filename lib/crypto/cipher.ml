type key = string

let nonce_bytes n =
  String.init 8 (fun i -> Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical n (8 * (7 - i))) 0xFFL)))

let keystream ~key ~nonce len =
  let out = Buffer.create len in
  let counter = ref 0 in
  while Buffer.length out < len do
    let block = Sha256.digest (key ^ nonce_bytes nonce ^ string_of_int !counter) in
    Buffer.add_string out block;
    incr counter
  done;
  Buffer.sub out 0 len

let xor_with ks s = String.init (String.length s) (fun i -> Char.chr (Char.code s.[i] lxor Char.code ks.[i]))

let tag ~key ~nonce ct = String.sub (Hmac.mac ~key (nonce_bytes nonce ^ ct)) 0 16

let seal ~key ~nonce plaintext =
  let ks = keystream ~key ~nonce (String.length plaintext) in
  let ct = xor_with ks plaintext in
  ct ^ tag ~key ~nonce ct

let open_ ~key ~nonce ciphertext =
  let n = String.length ciphertext in
  if n < 16 then None
  else begin
    let ct = String.sub ciphertext 0 (n - 16) in
    let t = String.sub ciphertext (n - 16) 16 in
    if not (String.equal t (tag ~key ~nonce ct)) then None
    else begin
      let ks = keystream ~key ~nonce (String.length ct) in
      Some (xor_with ks ct)
    end
  end
