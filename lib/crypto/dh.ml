type group = { p : Bigint.t; g : Bigint.t }

(* RFC 3526, group 5. *)
let modp_1536 =
  {
    p =
      Bigint.of_hex
        ("FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
       ^ "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
       ^ "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
       ^ "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
       ^ "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
       ^ "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF");
    g = Bigint.two;
  }

(* RFC 2409 Oakley group 1 (768-bit); small enough that a full attestation
   handshake runs in milliseconds inside tests and the simulator. *)
let sim_768 =
  {
    p =
      Bigint.of_hex
        ("FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
       ^ "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
       ^ "4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF");
    g = Bigint.two;
  }

type secret = { group : group; x : Bigint.t }
type public = Bigint.t

let keypair state group =
  let bits = Bigint.bit_length group.p - 1 in
  let rec draw () =
    let x = Bigint.random state ~bits in
    if Bigint.compare x Bigint.two < 0 then draw () else x
  in
  let x = draw () in
  ({ group; x }, Bigint.modpow ~base:group.g ~exponent:x ~modulus:group.p)

let shared ~secret ~peer = Bigint.modpow ~base:peer ~exponent:secret.x ~modulus:secret.group.p

let element_bytes group e =
  let len = (Bigint.bit_length group.p + 7) / 8 in
  Bigint.to_bytes_be ~len e

let shared_key ~secret ~peer =
  let z = shared ~secret ~peer in
  Sha256.digest (element_bytes secret.group z)

let group_of_secret s = s.group
