type public = { n : Bigint.t; e : Bigint.t }
type keypair = { pub : public; d : Bigint.t }

let e_65537 = Bigint.of_int 65537

let generate state ~bits =
  if bits < 64 then invalid_arg "Rsa.generate: modulus too small";
  let half = bits / 2 in
  let rec go () =
    let p = Bigint.random_prime state ~bits:half in
    let q = Bigint.random_prime state ~bits:(bits - half) in
    if Bigint.equal p q then go ()
    else begin
      let n = Bigint.mul p q in
      let phi = Bigint.mul (Bigint.sub p Bigint.one) (Bigint.sub q Bigint.one) in
      match Bigint.modinv e_65537 phi with
      | None -> go ()
      | Some d -> { pub = { n; e = e_65537 }; d }
    end
  in
  go ()

let modulus_bytes pub = (Bigint.bit_length pub.n + 7) / 8

(* EMSA-PKCS1-v1_5-style deterministic encoding: 0x00 0x01 FF.. 0x00 DIGEST.
   Enough structure for the simulator; no ASN.1 DigestInfo. *)
let encode_digest ~len digest =
  if len < String.length digest + 11 then invalid_arg "Rsa: modulus too small for digest";
  let ps = String.make (len - String.length digest - 3) '\xff' in
  "\x00\x01" ^ ps ^ "\x00" ^ digest

let sign key msg =
  let len = modulus_bytes key.pub in
  let em = encode_digest ~len (Sha256.digest msg) in
  let m = Bigint.of_bytes_be em in
  let s = Bigint.modpow ~base:m ~exponent:key.d ~modulus:key.pub.n in
  Bigint.to_bytes_be ~len s

let verify pub ~msg ~signature =
  let len = modulus_bytes pub in
  String.length signature = len
  &&
  let s = Bigint.of_bytes_be signature in
  Bigint.compare s pub.n < 0
  &&
  let m = Bigint.modpow ~base:s ~exponent:pub.e ~modulus:pub.n in
  match Bigint.to_bytes_be ~len m with
  | em -> String.equal em (encode_digest ~len (Sha256.digest msg))
  | exception Invalid_argument _ -> false

let public_to_string pub = Printf.sprintf "rsa:%s:%s" (Bigint.to_hex pub.n) (Bigint.to_hex pub.e)

type certificate = { subject : string; key : public; issuer : string; signature : string }

let cert_body ~subject ~issuer key = Printf.sprintf "cert|%s|%s|%s" subject issuer (public_to_string key)

let issue ~issuer_name ~issuer_key ~subject key =
  let body = cert_body ~subject ~issuer:issuer_name key in
  { subject; key; issuer = issuer_name; signature = sign issuer_key body }

let check_certificate ~issuer_key cert =
  let body = cert_body ~subject:cert.subject ~issuer:cert.issuer cert.key in
  verify issuer_key ~msg:body ~signature:cert.signature
