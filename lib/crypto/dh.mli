(** Classic finite-field Diffie–Hellman, as used by the S-NIC attestation
    protocol (Appendix A): the NF contributes [g^x mod p] and its signed
    measurement; the verifier contributes [g^y mod p]; both derive
    [g^(xy) mod p]. *)

type group = { p : Bigint.t; g : Bigint.t }

(** RFC 3526 MODP group 5 (1536-bit). Used by the full-strength protocol. *)
val modp_1536 : group

(** A 768-bit safe-prime group for fast simulation runs and tests. *)
val sim_768 : group

type secret
type public = Bigint.t

(** [keypair state group] draws a private exponent and its public value. *)
val keypair : Random.State.t -> group -> secret * public

(** [shared ~secret ~peer] is the shared group element [peer^x mod p]. *)
val shared : secret:secret -> peer:public -> Bigint.t

(** [shared_key ~secret ~peer] hashes the shared element into a 32-byte
    symmetric key. *)
val shared_key : secret:secret -> peer:public -> string

(** Serialize a group element as fixed-width big-endian bytes for hashing
    and signing. *)
val element_bytes : group -> Bigint.t -> string

val group_of_secret : secret -> group
