(** Authenticated stream encryption for attested tunnels.

    After an S-NIC attestation handshake, both endpoints hold a shared
    32-byte key; packets between them cross a bus / network the datacenter
    operator can snoop (§2), so payloads are encrypted and authenticated.
    The cipher is a SHA-256-based keystream with an HMAC tag — an
    AES-GCM stand-in with the same interface shape (documented substitution;
    no crypto library is available in this environment). *)

type key = string (* 32 bytes *)

(** [seal ~key ~nonce plaintext] encrypts and appends a 16-byte tag. *)
val seal : key:key -> nonce:int64 -> string -> string

(** [open_ ~key ~nonce ciphertext] authenticates and decrypts; [None] when
    the tag does not verify. *)
val open_ : key:key -> nonce:int64 -> string -> string option
