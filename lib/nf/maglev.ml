type t = {
  names : string array;
  table : int array; (* slot -> backend index *)
  table_size : int;
  probe : Types.probe option;
}

(* FNV-1a over the name with a salt, the classic choice for Maglev's
   (offset, skip) pair. *)
let hash_name salt name =
  let h = ref (0x811c9dc5 lxor (salt * 0x01000193)) in
  String.iter
    (fun c ->
      h := (!h lxor Char.code c) * 0x01000193;
      h := !h land 0x3FFFFFFFFFFFFF)
    name;
  !h

let is_prime n =
  if n < 2 then false
  else begin
    let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
    go 2
  end

let populate ~table_size names =
  let n = Array.length names in
  let offsets = Array.map (fun name -> hash_name 1 name mod table_size) names in
  let skips = Array.map (fun name -> (hash_name 2 name mod (table_size - 1)) + 1) names in
  let next = Array.make n 0 in
  let table = Array.make table_size (-1) in
  let filled = ref 0 in
  while !filled < table_size do
    for i = 0 to n - 1 do
      if !filled < table_size then begin
        (* Find backend i's next preferred slot that is still free. *)
        let rec claim () =
          let slot = (offsets.(i) + (next.(i) * skips.(i))) mod table_size in
          next.(i) <- next.(i) + 1;
          if table.(slot) = -1 then begin
            table.(slot) <- i;
            incr filled
          end
          else claim ()
        in
        claim ()
      end
    done
  done;
  table

let create ?(table_size = 65537) ?probe names =
  if names = [] then invalid_arg "Maglev.create: no backends";
  if not (is_prime table_size) then invalid_arg "Maglev.create: table size must be prime";
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then invalid_arg "Maglev.create: duplicate backends";
  let names = Array.of_list names in
  { names; table = populate ~table_size names; table_size; probe }

let backend_for t flow =
  let slot = Net.Five_tuple.hash flow mod t.table_size in
  (match t.probe with Some probe -> probe ~region:0 ~index:slot | None -> ());
  t.names.(t.table.(slot))

let nf t =
  {
    Types.name = "LB";
    process =
      (fun pkt ->
        (* A real Maglev would tunnel to the backend; we only need the
           lookup cost and leave the packet intact. *)
        ignore (backend_for t (Net.Packet.flow pkt));
        Types.Forward pkt);
  }

let backends t = Array.to_list t.names
let table_size t = t.table_size

let add t backend = create ~table_size:t.table_size (backend :: Array.to_list t.names)

let remove t backend =
  let rest = List.filter (fun n -> n <> backend) (Array.to_list t.names) in
  create ~table_size:t.table_size rest

let load t =
  let counts = Array.make (Array.length t.names) 0 in
  Array.iter (fun b -> counts.(b) <- counts.(b) + 1) t.table;
  Array.to_list (Array.mapi (fun i c -> (t.names.(i), c)) counts)

let disruption a b =
  if a.table_size <> b.table_size then invalid_arg "Maglev.disruption: different table sizes";
  let moved = ref 0 in
  for i = 0 to a.table_size - 1 do
    if a.names.(a.table.(i)) <> b.names.(b.table.(i)) then incr moved
  done;
  float_of_int !moved /. float_of_int a.table_size
