type action = Allow | Deny

type rule = {
  src_prefix : (Net.Ipv4_addr.t * int) option;
  dst_prefix : (Net.Ipv4_addr.t * int) option;
  proto : int option;
  src_ports : (int * int) option;
  dst_ports : (int * int) option;
  action : action;
}

module Flow_lru = Lru.Make (Net.Five_tuple.Table)

type t = {
  rules : rule array;
  default : action;
  cache : action Flow_lru.t;
  probe : Types.probe option;
}

let rule_any action = { src_prefix = None; dst_prefix = None; proto = None; src_ports = None; dst_ports = None; action }

let create ?(cache_capacity = 200_000) ?probe ~default rules =
  { rules = Array.of_list rules; default; cache = Flow_lru.create ~capacity:cache_capacity; probe }

let in_range (lo, hi) v = v >= lo && v <= hi

let rule_matches r (f : Net.Five_tuple.t) =
  (match r.src_prefix with None -> true | Some (p, l) -> Net.Ipv4_addr.in_prefix f.src_ip ~prefix:p ~len:l)
  && (match r.dst_prefix with None -> true | Some (p, l) -> Net.Ipv4_addr.in_prefix f.dst_ip ~prefix:p ~len:l)
  && (match r.proto with None -> true | Some p -> p = f.proto)
  && (match r.src_ports with None -> true | Some range -> in_range range f.src_port)
  && match r.dst_ports with None -> true | Some range -> in_range range f.dst_port

let scan t flow =
  let n = Array.length t.rules in
  let rec go i = if i >= n then t.default else if rule_matches t.rules.(i) flow then t.rules.(i).action else go (i + 1) in
  go 0

let classify t pkt =
  let flow = Net.Packet.flow pkt in
  (match t.probe with
  | Some probe -> probe ~region:0 ~index:(Net.Five_tuple.hash flow mod Flow_lru.capacity t.cache)
  | None -> ());
  match Flow_lru.find t.cache flow with
  | Some action -> action
  | None ->
    let action = scan t flow in
    Flow_lru.add t.cache flow action;
    action

let nf t =
  {
    Types.name = "FW";
    process =
      (fun pkt -> match classify t pkt with Allow -> Types.Forward pkt | Deny -> Types.Drop "firewall rule");
  }

let rule_count t = Array.length t.rules
let cached_flows t = Flow_lru.length t.cache
let cache_capacity t = Flow_lru.capacity t.cache
let cache_evictions t = Flow_lru.evictions t.cache
