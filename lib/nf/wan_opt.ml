type mode = Compress | Decompress

type t = {
  mode : mode;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable passthrough : int;
}

(* Shim header: 'C' = LZ77 body follows, 'P' = raw body follows. *)
let flag_compressed = 'C'
let flag_plain = 'P'

let create ~mode () = { mode; bytes_in = 0; bytes_out = 0; passthrough = 0 }

let compress_payload t payload =
  let packed = Accelfn.Lz77.compress payload in
  if String.length packed + 1 < String.length payload then String.make 1 flag_compressed ^ packed
  else begin
    t.passthrough <- t.passthrough + 1;
    String.make 1 flag_plain ^ payload
  end

let decompress_payload payload =
  if String.length payload = 0 then Error "missing WAN-optimizer shim header"
  else begin
    let body = String.sub payload 1 (String.length payload - 1) in
    if payload.[0] = flag_plain then Ok body
    else if payload.[0] = flag_compressed then begin
      match Accelfn.Lz77.decompress body with
      | plain -> Ok plain
      | exception Invalid_argument e -> Error e
    end
    else Error "unknown shim flag"
  end

let process t (pkt : Net.Packet.t) =
  t.bytes_in <- t.bytes_in + String.length pkt.payload;
  match t.mode with
  | Compress ->
    let payload = compress_payload t pkt.payload in
    t.bytes_out <- t.bytes_out + String.length payload;
    Types.Forward { pkt with payload }
  | Decompress -> begin
    match decompress_payload pkt.payload with
    | Ok payload ->
      t.bytes_out <- t.bytes_out + String.length payload;
      Types.Forward { pkt with payload }
    | Error e -> Types.Drop ("WAN optimizer: " ^ e)
  end

let nf t =
  { Types.name = (match t.mode with Compress -> "WANopt-c" | Decompress -> "WANopt-d"); process = process t }

let bytes_in t = t.bytes_in
let bytes_out t = t.bytes_out
let passthrough t = t.passthrough
let savings t = if t.bytes_in = 0 then 0. else 1. -. (float_of_int t.bytes_out /. float_of_int t.bytes_in)
