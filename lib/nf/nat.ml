let port_base = 1024
let port_limit = 65_536

type mapping = { port : int; mutable last_used : int }

type t = {
  internal_prefix : Net.Ipv4_addr.t * int;
  external_ip : Net.Ipv4_addr.t;
  (* outbound flow -> allocated external source port + recency *)
  forward : mapping Net.Five_tuple.Table.t;
  (* external port -> original outbound flow, for reverse translation *)
  reverse : (int, Net.Five_tuple.t) Hashtbl.t;
  mutable next_port : int;
  recycled : int Queue.t; (* ports returned by expiry *)
  mutable clock : int; (* event time: one tick per translated packet *)
  probe : Types.probe option;
}

let create ?probe ~internal_prefix ~external_ip () =
  {
    internal_prefix;
    external_ip;
    forward = Net.Five_tuple.Table.create 1024;
    reverse = Hashtbl.create 1024;
    next_port = port_base;
    recycled = Queue.create ();
    clock = 0;
    probe;
  }

let free_ports t = port_limit - t.next_port + Queue.length t.recycled
let active_mappings t = Net.Five_tuple.Table.length t.forward

let is_internal t ip =
  let prefix, len = t.internal_prefix in
  Net.Ipv4_addr.in_prefix ip ~prefix ~len

let probe_flow t flow =
  match t.probe with
  | Some probe -> probe ~region:0 ~index:(Net.Five_tuple.hash flow mod port_limit)
  | None -> ()

let alloc_port t =
  match Queue.take_opt t.recycled with
  | Some p -> Some p
  | None ->
    if t.next_port >= port_limit then None
    else begin
      let p = t.next_port in
      t.next_port <- t.next_port + 1;
      Some p
    end

let translate t (pkt : Net.Packet.t) =
  let flow = Net.Packet.flow pkt in
  t.clock <- t.clock + 1;
  probe_flow t flow;
  if is_internal t pkt.src_ip then begin
    (* Outbound: rewrite source to (external_ip, allocated port). *)
    let port =
      match Net.Five_tuple.Table.find_opt t.forward flow with
      | Some m ->
        m.last_used <- t.clock;
        Some m.port
      | None -> begin
        match alloc_port t with
        | None -> None
        | Some p ->
          Net.Five_tuple.Table.add t.forward flow { port = p; last_used = t.clock };
          Hashtbl.replace t.reverse p flow;
          Some p
      end
    in
    Option.map (fun p -> { pkt with src_ip = t.external_ip; src_port = p }) port
  end
  else if pkt.dst_ip = t.external_ip then begin
    (* Inbound: restore the original internal endpoint (and refresh the
       mapping's recency). *)
    match Hashtbl.find_opt t.reverse pkt.dst_port with
    | Some orig ->
      (match Net.Five_tuple.Table.find_opt t.forward orig with
      | Some m -> m.last_used <- t.clock
      | None -> ());
      Some { pkt with dst_ip = orig.Net.Five_tuple.src_ip; dst_port = orig.Net.Five_tuple.src_port }
    | None -> None
  end
  else None

let nf t =
  {
    Types.name = "NAT";
    process =
      (fun pkt ->
        match translate t pkt with
        | Some pkt' -> Types.Forward pkt'
        | None -> Types.Drop "no NAT mapping");
  }

let expire t ~idle_for =
  if idle_for < 0 then invalid_arg "Nat.expire: negative idle threshold";
  let cutoff = t.clock - idle_for in
  let stale =
    Net.Five_tuple.Table.fold (fun flow m acc -> if m.last_used < cutoff then (flow, m.port) :: acc else acc)
      t.forward []
  in
  List.iter
    (fun (flow, port) ->
      Net.Five_tuple.Table.remove t.forward flow;
      Hashtbl.remove t.reverse port;
      Queue.push port t.recycled)
    stale;
  List.length stale

let clock t = t.clock
