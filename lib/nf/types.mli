(** Common vocabulary for the six evaluation network functions (§5.1). *)

(** What an NF decided to do with a packet. *)
type verdict =
  | Forward of Net.Packet.t (* pass, possibly rewritten *)
  | Drop of string (* reason, for logs and tests *)

(** Data-structure touch callback used by the microarchitectural model:
    [region] identifies one of the NF's memory regions (0 = primary table)
    and [index] the slot touched. NFs call it on their *actual* lookups, so
    cache simulations replay real access patterns (gem5 substitution, see
    DESIGN.md). *)
type probe = region:int -> index:int -> unit

(** The uniform NF interface used by examples, benches and the NIC
    simulator. *)
type t = {
  name : string;
  process : Net.Packet.t -> verdict;
}

val forwarded : verdict -> Net.Packet.t option
val is_drop : verdict -> bool
