(* Goto transitions live in one global hash table keyed by
   (state << 8) | byte, which keeps per-state memory proportional to the
   state's real out-degree (the dense 256-way array per state that a
   textbook build uses would need gigabytes at Snort-scale pattern
   counts). Failure links and outputs are plain arrays. *)

type t = {
  goto_tbl : (int, int) Hashtbl.t;
  fail : int array;
  (* Pattern ids ending at each state; most states have none, encoded as
     [||]. The "output link" chain is pre-flattened at build time. *)
  out : int array array;
  states : int;
  patterns : int;
  transitions : int;
  (* Dense 256-way next rows for states [0, Array.length dense): the
     compiled-DFA fast path. Empty unless [compile] was called. *)
  dense : int array array;
}

let key state byte = (state lsl 8) lor byte

let build patterns =
  List.iter (fun p -> if p = "" then invalid_arg "Aho_corasick.build: empty pattern") patterns;
  let goto_tbl = Hashtbl.create 4096 in
  let out_raw = Hashtbl.create 64 in
  let next_state = ref 1 in
  (* Phase 1: trie of patterns. *)
  List.iteri
    (fun pat_id p ->
      let state = ref 0 in
      String.iter
        (fun c ->
          let b = Char.code c in
          match Hashtbl.find_opt goto_tbl (key !state b) with
          | Some s -> state := s
          | None ->
            let s = !next_state in
            incr next_state;
            Hashtbl.add goto_tbl (key !state b) s;
            state := s)
        p;
      Hashtbl.replace out_raw !state (pat_id :: (Option.value ~default:[] (Hashtbl.find_opt out_raw !state))))
    patterns;
  let states = !next_state in
  let fail = Array.make states 0 in
  let out_lists = Array.make states [] in
  Hashtbl.iter (fun s ids -> out_lists.(s) <- ids) out_raw;
  (* Phase 2: BFS failure links; flatten output chains as we go. Per-state
     outgoing (byte, next) lists are re-derived from the global table. *)
  let q = Queue.create () in
  let children = Array.make states [] in
  Hashtbl.iter
    (fun k s ->
      let parent = k lsr 8 and byte = k land 0xff in
      children.(parent) <- (byte, s) :: children.(parent))
    goto_tbl;
  List.iter (fun (_, s) -> Queue.add s q) children.(0);
  let rec goto_or_fail state b =
    match Hashtbl.find_opt goto_tbl (key state b) with
    | Some s -> s
    | None -> if state = 0 then 0 else goto_or_fail fail.(state) b
  in
  while not (Queue.is_empty q) do
    let r = Queue.pop q in
    List.iter
      (fun (b, s) ->
        fail.(s) <- goto_or_fail fail.(r) b;
        out_lists.(s) <- out_lists.(s) @ out_lists.(fail.(s));
        Queue.add s q)
      children.(r)
  done;
  {
    goto_tbl;
    fail;
    out = Array.map Array.of_list out_lists;
    states;
    patterns = List.length patterns;
    transitions = Hashtbl.length goto_tbl;
    dense = [||];
  }

let pattern_count t = t.patterns
let state_count t = t.states
let transition_count t = t.transitions

let step_sparse t state b =
  let rec go state =
    match Hashtbl.find_opt t.goto_tbl (key state b) with
    | Some s -> s
    | None -> if state = 0 then 0 else go t.fail.(state)
  in
  go state

let step t state b =
  if state < Array.length t.dense then Array.unsafe_get (Array.unsafe_get t.dense state) b
  else step_sparse t state b

(* Dense rows must be built in increasing state id so a row can consult
   already-built rows through [step]; failure targets always have smaller
   ids than their states (BFS property), so building in id order while
   resolving through [step_sparse] is always sound. *)
let compile ?(dense_states = 4096) t =
  let k = min dense_states t.states in
  let dense = Array.init k (fun s -> Array.init 256 (fun b -> step_sparse t s b)) in
  { t with dense }

let dense_state_count t = Array.length t.dense

let iter_matches t text f =
  let state = ref 0 in
  String.iteri
    (fun i c ->
      state := step t !state (Char.code c);
      Array.iter (fun pat -> f ~pattern:pat ~end_pos:i) t.out.(!state))
    text

let scan ?on_state t text =
  let state = ref 0 in
  let count = ref 0 in
  String.iter
    (fun c ->
      state := step t !state (Char.code c);
      (match on_state with Some f -> f !state | None -> ());
      count := !count + Array.length t.out.(!state))
    text;
  !count

exception Found of int

let first_match t text =
  let state = ref 0 in
  try
    String.iter
      (fun c ->
        state := step t !state (Char.code c);
        if Array.length t.out.(!state) > 0 then raise (Found t.out.(!state).(0)))
      text;
    None
  with Found p -> Some p
