type t = { width : int; depth : int; rows : int array array; mutable n : int }

let create ~width ~depth =
  if width <= 0 || depth <= 0 then invalid_arg "Count_min.create: width and depth must be positive";
  { width; depth; rows = Array.init depth (fun _ -> Array.make width 0); n = 0 }

(* Row-specific hashes derived from the flow hash by remixing with odd
   row constants. *)
let index t row flow =
  let h = Net.Five_tuple.hash flow in
  let salted = (h lxor (0x5851F42D lsl row)) * ((2 * row) + 0x27D4EB2F) in
  (salted lsr 5) land max_int mod t.width

let observe t flow =
  t.n <- t.n + 1;
  for r = 0 to t.depth - 1 do
    let i = index t r flow in
    t.rows.(r).(i) <- t.rows.(r).(i) + 1
  done

let estimate t flow =
  let est = ref max_int in
  for r = 0 to t.depth - 1 do
    est := min !est t.rows.(r).(index t r flow)
  done;
  if !est = max_int then 0 else !est

let observations t = t.n
let memory_bytes t = t.width * t.depth * 8
