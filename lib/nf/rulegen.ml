let firewall_rules rng ~n =
  List.init n (fun _ ->
      let len = Trace.Rng.pick rng [| 8; 16; 24; 24; 32 |] in
      let src =
        Net.Ipv4_addr.of_octets (Trace.Rng.int rng 223 + 1) (Trace.Rng.int rng 256) (Trace.Rng.int rng 256)
          (Trace.Rng.int rng 256)
      in
      let dst_ports =
        if Trace.Rng.bool rng then Some (Trace.Rng.pick rng [| (22, 22); (23, 23); (445, 445); (3389, 3389); (0, 1023) |])
        else None
      in
      {
        Firewall.src_prefix = Some (src, len);
        dst_prefix = None;
        proto = (if Trace.Rng.int rng 100 < 70 then Some 6 else None);
        src_ports = None;
        dst_ports;
        action = Firewall.Deny;
      })

let dpi_patterns rng ~n =
  let seen = Hashtbl.create (2 * n) in
  let rec fresh () =
    let len = 4 + Trace.Rng.int rng 15 in
    (* Printable-ish bytes with occasional binary, like Snort content
       strings. *)
    let p =
      String.init len (fun _ ->
          if Trace.Rng.int rng 10 = 0 then Char.chr (Trace.Rng.int rng 256)
          else Char.chr (32 + Trace.Rng.int rng 95))
    in
    if Hashtbl.mem seen p then fresh ()
    else begin
      Hashtbl.add seen p ();
      p
    end
  in
  List.init n (fun _ -> fresh ())

let routes rng ~n =
  List.init n (fun _ ->
      let len = Trace.Rng.pick rng [| 8; 12; 16; 16; 20; 24; 24; 24; 28; 32 |] in
      let prefix =
        Net.Ipv4_addr.of_octets (Trace.Rng.int rng 223 + 1) (Trace.Rng.int rng 256) (Trace.Rng.int rng 256)
          (Trace.Rng.int rng 256)
      in
      let mask = if len = 0 then 0 else 0xffffffff lxor ((1 lsl (32 - len)) - 1) in
      (prefix land mask, len, Trace.Rng.int rng 0x7fff))

let backends ~n = List.init n (fun i -> Printf.sprintf "backend-%03d" i)
