(** Deep packet inspection NF: Aho–Corasick pattern matching over packet
    payloads (§5.1; the paper uses 33,471 patterns drawn from six open
    rulesets). Matching packets are dropped, mimicking an inline IDS. *)

type t

(** [create ?probe patterns] builds the matcher. The probe reports the
    automaton states visited (region 0). *)
val create : ?probe:Types.probe -> string list -> t

val nf : t -> Types.t

(** [inspect t pkt] is the number of pattern hits in [pkt]'s payload. *)
val inspect : t -> Net.Packet.t -> int

val automaton : t -> Aho_corasick.t
val matches_seen : t -> int
val packets_seen : t -> int
