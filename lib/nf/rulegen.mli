(** Synthetic rule/pattern/route generators standing in for the
    proprietary or downloadable rulesets the paper uses (Emerging Threats
    firewall rules, Snort-style DPI patterns, random LPM routes). All are
    seeded and deterministic. *)

(** [firewall_rules rng ~n] draws [n] deny rules shaped like the Emerging
    Threats firewall set (CIDR sources, well-known destination ports). The
    paper uses n = 643 (as in SafeBricks). *)
val firewall_rules : Trace.Rng.t -> n:int -> Firewall.rule list

(** [dpi_patterns rng ~n] draws [n] distinct Snort-content-like byte
    patterns (4–18 bytes). The paper uses n = 33,471. *)
val dpi_patterns : Trace.Rng.t -> n:int -> string list

(** [routes rng ~n] draws [n] random prefixes (lengths 8–32, biased toward
    /16–/24 as in real tables) with next hops. The paper uses n = 16,000
    (as in NetBricks). *)
val routes : Trace.Rng.t -> n:int -> (Net.Ipv4_addr.t * int * int) list

(** Backend pool names for the Maglev LB. *)
val backends : n:int -> string list
