(** Flow monitor (§5.1): counts packets per 5-tuple flow in a hash map.
    Unlike the other NFs its memory grows with the number of distinct
    flows, which is why it dominates the paper's Table 6 (361 MB) and
    Figure 7. *)

type t

val create : ?probe:Types.probe -> unit -> t
val nf : t -> Types.t

(** [observe t pkt] increments the packet's flow counter. *)
val observe : t -> Net.Packet.t -> unit

val flow_count : t -> int
val packets_seen : t -> int
val count_of : t -> Net.Five_tuple.t -> int

(** Top [k] flows by packet count, descending. *)
val top : t -> int -> (Net.Five_tuple.t * int) list
