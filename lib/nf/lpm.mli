(** Longest-prefix matching with the DIR-24-8 scheme (§5.1, Gupta et al.
    INFOCOM'98): a 2^24-entry first-level table indexed by the top 24
    address bits (2 bytes per entry, as in the paper's memory profile),
    overflowing into 256-entry second-level blocks for longer prefixes. *)

type t

(** Next-hop identifiers are in [0, 0x7fff]. *)
type next_hop = int

val create : ?probe:Types.probe -> unit -> t

(** [insert t ~prefix ~len next_hop] adds a route. [len] in [0, 32];
    next hops above 0x7fff are rejected. Longest prefix wins regardless of
    insertion order. *)
val insert : t -> prefix:Net.Ipv4_addr.t -> len:int -> next_hop -> unit

(** [lookup t addr] is the next hop of the longest matching prefix. *)
val lookup : t -> Net.Ipv4_addr.t -> next_hop option

val nf : t -> Types.t

(** Number of allocated second-level blocks. *)
val tbl8_blocks : t -> int

(** Lookup-structure bytes (tbl24 + allocated tbl8 blocks), matching the
    data-plane footprint the paper profiles. *)
val table_bytes : t -> int

val route_count : t -> int
