(** Count-min sketch: a bounded-memory alternative to the Monitor NF's
    exact hash map (in the spirit of the UnivMon line of work the paper
    cites for its Monitor methodology). Memory is fixed at creation, so
    an S-NIC preallocation is never outgrown — the trade-off for the
    fixed-reservation model of §4.8. *)

type t

(** [create ~width ~depth] — [depth] rows of [width] counters.
    Estimation error is at most [2N/width] with probability
    [1 - (1/2)^depth] over [N] observations. *)
val create : width:int -> depth:int -> t

val observe : t -> Net.Five_tuple.t -> unit

(** Never under-estimates. *)
val estimate : t -> Net.Five_tuple.t -> int

val observations : t -> int

(** Total counter memory in bytes. *)
val memory_bytes : t -> int
