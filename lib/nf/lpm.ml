(* tbl24 entry encoding (16 bits): 0 = empty; bit 15 set = the low 15 bits
   index a tbl8 block; otherwise the low 15 bits are (next_hop + 1).
   Parallel depth arrays record the prefix length that wrote each entry so
   inserts in any order preserve longest-prefix-wins. *)

type next_hop = int

type t = {
  tbl24 : Bytes.t; (* 2 bytes per entry, 2^24 entries *)
  depth24 : Bytes.t; (* 1 byte per entry *)
  mutable tbl8 : Bytes.t array; (* 256 entries x 2 bytes each *)
  mutable depth8 : Bytes.t array;
  mutable blocks : int;
  mutable routes : int;
  probe : Types.probe option;
}

let tbl24_entries = 1 lsl 24
let block_mark = 0x8000

let create ?probe () =
  {
    tbl24 = Bytes.make (2 * tbl24_entries) '\000';
    depth24 = Bytes.make tbl24_entries '\000';
    tbl8 = [||];
    depth8 = [||];
    blocks = 0;
    routes = 0;
    probe;
  }

let get16 b i = (Char.code (Bytes.get b (2 * i)) lsl 8) lor Char.code (Bytes.get b ((2 * i) + 1))

let set16 b i v =
  Bytes.set b (2 * i) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b ((2 * i) + 1) (Char.chr (v land 0xff))

let alloc_block t =
  let block = Bytes.make (2 * 256) '\000' in
  let depth = Bytes.make 256 '\000' in
  t.tbl8 <- Array.append t.tbl8 [| block |];
  t.depth8 <- Array.append t.depth8 [| depth |];
  t.blocks <- t.blocks + 1;
  t.blocks - 1

let insert t ~prefix ~len next_hop =
  if len < 0 || len > 32 then invalid_arg "Lpm.insert: bad prefix length";
  if next_hop < 0 || next_hop > 0x7fff then invalid_arg "Lpm.insert: next hop out of range";
  t.routes <- t.routes + 1;
  let encoded = next_hop + 1 in
  if len <= 24 then begin
    (* Fill every tbl24 slot covered by the prefix that is not already
       owned by a longer prefix; descend into existing tbl8 blocks. *)
    let base = (prefix lsr 8) land (lnot ((1 lsl (24 - len)) - 1) land 0xffffff) in
    let count = 1 lsl (24 - len) in
    for i = base to base + count - 1 do
      let cur = get16 t.tbl24 i in
      if cur land block_mark <> 0 then begin
        (* Propagate into the block's shallower entries. *)
        let b = cur land 0x7fff in
        let blk = t.tbl8.(b) and dep = t.depth8.(b) in
        for j = 0 to 255 do
          if Char.code (Bytes.get dep j) <= len then begin
            set16 blk j encoded;
            Bytes.set dep j (Char.chr len)
          end
        done
      end
      else if Char.code (Bytes.get t.depth24 i) <= len then begin
        set16 t.tbl24 i encoded;
        Bytes.set t.depth24 i (Char.chr len)
      end
    done
  end
  else begin
    let idx24 = prefix lsr 8 in
    let cur = get16 t.tbl24 idx24 in
    let block_id =
      if cur land block_mark <> 0 then cur land 0x7fff
      else begin
        let b = alloc_block t in
        (* Seed the fresh block with the previous shallow route. *)
        if cur <> 0 then begin
          let blk = t.tbl8.(b) and dep = t.depth8.(b) in
          let d = Char.code (Bytes.get t.depth24 idx24) in
          for j = 0 to 255 do
            set16 blk j cur;
            Bytes.set dep j (Char.chr d)
          done
        end;
        set16 t.tbl24 idx24 (block_mark lor b);
        b
      end
    in
    let blk = t.tbl8.(block_id) and dep = t.depth8.(block_id) in
    let low = prefix land 0xff in
    let base = low land (lnot ((1 lsl (32 - len)) - 1) land 0xff) in
    let count = 1 lsl (32 - len) in
    for j = base to base + count - 1 do
      if Char.code (Bytes.get dep j) <= len then begin
        set16 blk j encoded;
        Bytes.set dep j (Char.chr len)
      end
    done
  end

let lookup t addr =
  let idx24 = addr lsr 8 in
  (match t.probe with Some probe -> probe ~region:0 ~index:idx24 | None -> ());
  let e = get16 t.tbl24 idx24 in
  let v =
    if e land block_mark <> 0 then begin
      let b = e land 0x7fff in
      (match t.probe with Some probe -> probe ~region:1 ~index:((b lsl 8) lor (addr land 0xff)) | None -> ());
      get16 t.tbl8.(b) (addr land 0xff)
    end
    else e
  in
  if v = 0 then None else Some (v - 1)

let nf t =
  {
    Types.name = "LPM";
    process =
      (fun pkt ->
        match lookup t pkt.Net.Packet.dst_ip with
        | Some _ -> Types.Forward pkt
        | None -> Types.Drop "no route");
  }

let tbl8_blocks t = t.blocks
let table_bytes t = Bytes.length t.tbl24 + (t.blocks * 2 * 256)
let route_count t = t.routes
