(* Partial-key cuckoo filter (Fan et al., CoNEXT'14) — the fixed-memory
   flow set behind the CuckooGuard split proxy.  Like [Count_min], all
   memory is allocated at creation, so an S-NIC preallocation is never
   outgrown (§4.8 fixed-reservation model): a full filter rejects
   inserts instead of growing. *)

let slots_per_bucket = 4
let max_kicks = 500

type t = {
  fp_bits : int;
  mask : int; (* buckets - 1, buckets a power of two *)
  slots : int array; (* buckets * slots_per_bucket; 0 = empty *)
  rng : Trace.Rng.t; (* kick-victim selection, seeded at creation *)
  probe : Types.probe option;
  mutable occupied : int;
  mutable kicks : int;
  mutable rejected : int;
}

let create ?probe ?(seed = 0xCF17) ~fp_bits ~log2_buckets () =
  if fp_bits < 2 || fp_bits > 30 then invalid_arg "Cuckoo.create: fp_bits must be in [2, 30]";
  if log2_buckets < 1 || log2_buckets > 28 then invalid_arg "Cuckoo.create: log2_buckets must be in [1, 28]";
  let buckets = 1 lsl log2_buckets in
  {
    fp_bits;
    mask = buckets - 1;
    slots = Array.make (buckets * slots_per_bucket) 0;
    rng = Trace.Rng.create ~seed;
    probe;
    occupied = 0;
    kicks = 0;
    rejected = 0;
  }

(* Fingerprints live in [1, 2^fp_bits - 1]; 0 marks an empty slot. *)
let fingerprint t flow =
  let fp = (Net.Five_tuple.hash flow lsr 20) land ((1 lsl t.fp_bits) - 1) in
  if fp = 0 then 1 else fp

let index1 t flow = Net.Five_tuple.hash flow land t.mask

(* Partial-key displacement: the alternate bucket is derived from the
   fingerprint alone, so a kicked entry can move without re-hashing the
   original key.  The xor makes [alt] an involution: alt (alt i) = i. *)
let alt t i fp = (i lxor (fp * 0x5bd1e995)) land t.mask

let touch t i = match t.probe with Some probe -> probe ~region:0 ~index:i | None -> ()

let bucket_slot t i s = t.slots.((i * slots_per_bucket) + s)
let set_slot t i s v = t.slots.((i * slots_per_bucket) + s) <- v

let find_in_bucket t i fp =
  let rec go s = if s >= slots_per_bucket then -1 else if bucket_slot t i s = fp then s else go (s + 1) in
  go 0

let free_slot t i = find_in_bucket t i 0

let place t i fp =
  match free_slot t i with
  | -1 -> false
  | s ->
    set_slot t i s fp;
    t.occupied <- t.occupied + 1;
    true

let mem_fp t i1 i2 fp = find_in_bucket t i1 fp >= 0 || find_in_bucket t i2 fp >= 0

let mem t flow =
  let fp = fingerprint t flow in
  let i1 = index1 t flow in
  let i2 = alt t i1 fp in
  touch t i1;
  touch t i2;
  mem_fp t i1 i2 fp

let insert t flow =
  let fp = fingerprint t flow in
  let i1 = index1 t flow in
  let i2 = alt t i1 fp in
  touch t i1;
  touch t i2;
  if mem_fp t i1 i2 fp then true (* already present (or an indistinguishable fingerprint is) *)
  else if place t i1 fp || place t i2 fp then true
  else begin
    (* Both buckets full: displace a random resident and chase it to
       its alternate bucket, at most [max_kicks] hops.  [occupied]
       tracks nonzero slots, so swaps leave it unchanged and only
       [place] bumps it.  On failure the in-hand fingerprint is dropped
       and the insert reported rejected — fixed memory means the filter
       saturates, it never grows. *)
    let i = ref (if Trace.Rng.bool t.rng then i1 else i2) in
    let cur = ref fp in
    let placed = ref false in
    let n = ref 0 in
    while (not !placed) && !n < max_kicks do
      let s = Trace.Rng.int t.rng slots_per_bucket in
      let victim = bucket_slot t !i s in
      set_slot t !i s !cur;
      cur := victim;
      i := alt t !i victim;
      t.kicks <- t.kicks + 1;
      touch t !i;
      placed := place t !i !cur;
      incr n
    done;
    if not !placed then t.rejected <- t.rejected + 1;
    !placed
  end

let remove t flow =
  let fp = fingerprint t flow in
  let i1 = index1 t flow in
  let i2 = alt t i1 fp in
  touch t i1;
  touch t i2;
  let del i =
    match find_in_bucket t i fp with
    | -1 -> false
    | s ->
      set_slot t i s 0;
      t.occupied <- t.occupied - 1;
      true
  in
  del i1 || del i2

let occupancy t = t.occupied
let capacity t = (t.mask + 1) * slots_per_bucket
let load_factor t = float_of_int t.occupied /. float_of_int (capacity t)
let kicks t = t.kicks
let rejected t = t.rejected

(* Modeled on-NIC footprint: one fingerprint per slot, byte-rounded.
   Constant for the lifetime of the filter — the §4.8 story. *)
let memory_bytes t = capacity t * ((t.fp_bits + 7) / 8)

(* Model a cross-tenant write landing in filter memory (§3.3 packet/state
   corruption): flip one fingerprint bit.  Benign flows whose slot is hit
   start failing lookups — exactly the integrity loss the ddos scenario
   charges to modes that let the write land. *)
let corrupt t ~bit =
  let nslots = Array.length t.slots in
  let s = (bit / t.fp_bits) mod nslots in
  let b = bit mod t.fp_bits in
  let old = t.slots.(s) in
  let v = old lxor (1 lsl b) in
  t.slots.(s) <- v;
  if old = 0 && v <> 0 then t.occupied <- t.occupied + 1
  else if old <> 0 && v = 0 then t.occupied <- t.occupied - 1

(* ------------------------------------------------------------------ *)

type nf_state = { filter : t; mutable packets : int }

let nf_create ?probe ?seed ?(fp_bits = 12) ?(log2_buckets = 14) () =
  { filter = create ?probe ?seed ~fp_bits ~log2_buckets (); packets = 0 }

let nf (st : nf_state) =
  {
    Types.name = "CKF";
    process =
      (fun pkt ->
        st.packets <- st.packets + 1;
        let flow = Net.Packet.flow pkt in
        ignore (insert st.filter flow);
        Types.Forward pkt);
  }

let nf_filter st = st.filter
let nf_packets st = st.packets
