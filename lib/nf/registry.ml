type spec = {
  short : string;
  description : string;
  build : ?probe:Types.probe -> scale:float -> unit -> Types.t;
}

let scaled base scale = max 1 (int_of_float (float_of_int base *. scale))
let fw_rules ~scale = scaled 643 scale
let dpi_patterns ~scale = scaled 33_471 scale
let lpm_routes ~scale = scaled 16_000 scale

let build_fw ?probe ~scale () =
  let rng = Trace.Rng.create ~seed:0xF1 in
  let rules = Rulegen.firewall_rules rng ~n:(fw_rules ~scale) in
  Firewall.nf (Firewall.create ?probe ~default:Firewall.Allow rules)

let build_dpi ?probe ~scale () =
  let rng = Trace.Rng.create ~seed:0xD1 in
  Dpi.nf (Dpi.create ?probe (Rulegen.dpi_patterns rng ~n:(dpi_patterns ~scale)))

let build_nat ?probe ~scale:_ () =
  Nat.nf
    (Nat.create ?probe
       ~internal_prefix:(Net.Ipv4_addr.of_string "10.0.0.0", 8)
       ~external_ip:(Net.Ipv4_addr.of_string "203.0.113.1")
       ())

let build_lb ?probe ~scale:_ () = Maglev.nf (Maglev.create ?probe (Rulegen.backends ~n:16))

let build_lpm ?probe ~scale () =
  let rng = Trace.Rng.create ~seed:0x17 in
  let t = Lpm.create ?probe () in
  List.iter (fun (p, l, nh) -> Lpm.insert t ~prefix:p ~len:l nh) (Rulegen.routes rng ~n:(lpm_routes ~scale));
  Lpm.nf t

let build_mon ?probe ~scale:_ () = Monitor.nf (Monitor.create ?probe ())

(* CuckooGuard pair: filter sized by [scale] in whole log2 steps so the
   paper-scale (1.0) filter holds 2^14 buckets x 4 slots = 64 Ki flows
   in a fixed 128 KiB reservation. *)
let ckf_log2_buckets ~scale =
  let shift = if scale >= 1.0 then 0 else if scale >= 0.1 then -4 else -7 in
  max 4 (14 + shift)

let build_ckf ?probe ~scale () =
  Cuckoo.nf (Cuckoo.nf_create ?probe ~fp_bits:12 ~log2_buckets:(ckf_log2_buckets ~scale) ())

let synp_key = lazy (Crypto.Hmac.derive ~secret:"snic-nf-registry" ~label:"synp-cookie")

let build_synp ?probe ~scale () =
  Syn_proxy.nf
    (Syn_proxy.create ?probe ~fp_bits:12 ~log2_buckets:(ckf_log2_buckets ~scale) ~key:(Lazy.force synp_key) ())

let all =
  [
    { short = "FW"; description = "stateful firewall, Emerging-Threats-like rules + flow cache"; build = build_fw };
    { short = "DPI"; description = "Aho-Corasick pattern matching over payloads"; build = build_dpi };
    { short = "NAT"; description = "MazuNAT-derived address translator"; build = build_nat };
    { short = "LB"; description = "Maglev consistent-hashing load balancer"; build = build_lb };
    { short = "LPM"; description = "DIR-24-8 longest prefix match routing"; build = build_lpm };
    { short = "Mon"; description = "per-flow packet counter"; build = build_mon };
    { short = "CKF"; description = "cuckoo-filter flow tracker, fixed-memory approximate set"; build = build_ckf };
    { short = "SYNP"; description = "SYN-cookie split proxy, cuckoo-filter whitelist"; build = build_synp };
  ]

let short_names () = String.concat ", " (List.map (fun s -> s.short) all)

let find short =
  match List.find_opt (fun s -> String.equal s.short short) all with
  | Some s -> s
  | None ->
    invalid_arg (Printf.sprintf "Nf.Registry.find: unknown NF %S (valid short names: %s)" short (short_names ()))
