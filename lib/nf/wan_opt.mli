(** WAN optimizer — one of the complex, stateful NFs the paper's
    introduction motivates offloading. A pair of optimizers sits on the
    two ends of an expensive link: the near end compresses payloads
    (LZ77, the ZIP accelerator's algorithm), the far end restores them.
    Packets whose payloads do not shrink are passed through unchanged
    (flagged in a one-byte shim header). *)

type mode = Compress | Decompress

type t

val create : mode:mode -> unit -> t
val nf : t -> Types.t

(** Cumulative payload bytes in/out (for the savings ratio). *)
val bytes_in : t -> int

val bytes_out : t -> int

(** [savings t] is [1 - out/in] (0 when nothing was processed). *)
val savings : t -> float

(** Number of packets passed through uncompressed (incompressible). *)
val passthrough : t -> int
