type t = {
  vni : Net.Vxlan.vni;
  local_vtep : Net.Ipv4_addr.t;
  remote_vtep : Net.Ipv4_addr.t;
  inner : Types.t;
  mutable decapsulated : int;
  mutable rejected : int;
}

let create ~vni ~local_vtep ~remote_vtep ~inner () =
  { vni; local_vtep; remote_vtep; inner; decapsulated = 0; rejected = 0 }

let process t pkt =
  match Net.Vxlan.decapsulate pkt with
  | Error e ->
    t.rejected <- t.rejected + 1;
    Types.Drop ("not VXLAN: " ^ e)
  | Ok { vni; inner = inner_pkt; _ } ->
    if vni <> t.vni then begin
      t.rejected <- t.rejected + 1;
      Types.Drop (Printf.sprintf "foreign VNI %d" vni)
    end
    else begin
      t.decapsulated <- t.decapsulated + 1;
      match t.inner.Types.process inner_pkt with
      | Types.Drop _ as d -> d
      | Types.Forward out ->
        Types.Forward
          (Net.Vxlan.encapsulate ~vni:t.vni ~outer_src_ip:t.local_vtep ~outer_dst_ip:t.remote_vtep out)
    end

let nf t = { Types.name = "VXLAN-GW"; process = process t }
let packets_decapsulated t = t.decapsulated
let packets_rejected t = t.rejected
