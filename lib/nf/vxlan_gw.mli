(** VXLAN gateway NF: terminates a tenant's virtual L2 segment on the
    smart NIC (§4.4). Packets arriving on the configured VNI are
    decapsulated, handed to an inner NF, and the survivors re-encapsulated
    toward the configured remote VTEP. Traffic on other VNIs (or
    non-VXLAN traffic) is dropped. *)

type t

val create :
  vni:Net.Vxlan.vni ->
  local_vtep:Net.Ipv4_addr.t ->
  remote_vtep:Net.Ipv4_addr.t ->
  inner:Types.t ->
  unit ->
  t

val nf : t -> Types.t

val packets_decapsulated : t -> int
val packets_rejected : t -> int
