type t = {
  counts : int ref Net.Five_tuple.Table.t;
  mutable packets : int;
  probe : Types.probe option;
}

let create ?probe () = { counts = Net.Five_tuple.Table.create 1024; packets = 0; probe }

let observe t pkt =
  let flow = Net.Packet.flow pkt in
  t.packets <- t.packets + 1;
  (match t.probe with
  | Some probe ->
    (* Index into the current table size, mirroring where the bucket
       actually lives as the table grows. *)
    let cap = max 1024 (Net.Five_tuple.Table.length t.counts) in
    probe ~region:0 ~index:(Net.Five_tuple.hash flow mod cap)
  | None -> ());
  match Net.Five_tuple.Table.find_opt t.counts flow with
  | Some r -> incr r
  | None -> Net.Five_tuple.Table.add t.counts flow (ref 1)

let nf t =
  {
    Types.name = "Mon";
    process =
      (fun pkt ->
        observe t pkt;
        Types.Forward pkt);
  }

let flow_count t = Net.Five_tuple.Table.length t.counts
let packets_seen t = t.packets
let count_of t flow = match Net.Five_tuple.Table.find_opt t.counts flow with Some r -> !r | None -> 0

let top t k =
  let all = Net.Five_tuple.Table.fold (fun flow r acc -> (flow, !r) :: acc) t.counts [] in
  let sorted = List.sort (fun (_, a) (_, b) -> Stdlib.compare b a) all in
  List.filteri (fun i _ -> i < k) sorted
