(** MazuNAT-derived network address translator (§5.1): outbound flows from
    the internal prefix get a distinct external port; translations are
    cached in a hash map. Only the first 65,535 flows that can be assigned
    a distinct port are recorded, as in the paper. *)

type t

val create :
  ?probe:Types.probe ->
  internal_prefix:Net.Ipv4_addr.t * int ->
  external_ip:Net.Ipv4_addr.t ->
  unit ->
  t

val nf : t -> Types.t

(** [translate t pkt] rewrites an outbound packet (source inside the
    internal prefix) or reverse-translates an inbound one. [None] when the
    packet cannot be translated (port pool exhausted, or inbound with no
    mapping). *)
val translate : t -> Net.Packet.t -> Net.Packet.t option

val active_mappings : t -> int

(** First external port handed out. *)
val port_base : int

(** Ports remaining in the pool (including recycled ones). *)
val free_ports : t -> int

(** Event time: one tick per [translate] call. *)
val clock : t -> int

(** [expire t ~idle_for] drops mappings unused for more than [idle_for]
    ticks and returns their ports to the pool; returns the number
    expired. *)
val expire : t -> idle_for:int -> int
