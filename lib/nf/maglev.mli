(** Maglev consistent-hashing load balancer (§5.1, Eisenbud et al. NSDI'16).

    Each backend derives a permutation of the lookup table from two hashes
    of its name; backends take turns claiming their next preferred slot
    until the table is full. The table is queried with the flow hash, so
    a flow consistently reaches one backend, and backend churn moves few
    flows. *)

type t

(** [create ?table_size ?probe backends] builds the lookup table.
    [table_size] must be a prime (default 65537); [backends] must be
    non-empty and distinct. *)
val create : ?table_size:int -> ?probe:Types.probe -> string list -> t

val nf : t -> Types.t

(** [backend_for t flow] is the chosen backend's name. *)
val backend_for : t -> Net.Five_tuple.t -> string

(** [add t backend] / [remove t backend] rebuild the table. *)
val add : t -> string -> t
val remove : t -> string -> t

val backends : t -> string list
val table_size : t -> int

(** Slot counts per backend, for balance checks. *)
val load : t -> (string * int) list

(** Fraction of table slots whose backend differs between [a] and [b]
    (disruption metric). *)
val disruption : t -> t -> float
