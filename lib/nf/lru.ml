module Make (H : Hashtbl.S) = struct
  (* Intrusive doubly-linked recency list; the table maps keys to their
     list nodes. *)
  type 'a node = {
    key : H.key;
    mutable value : 'a;
    mutable prev : 'a node option;
    mutable next : 'a node option;
  }

  type 'a t = {
    table : 'a node H.t;
    capacity : int;
    mutable head : 'a node option; (* most recent *)
    mutable tail : 'a node option; (* least recent *)
    mutable evictions : int;
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
    { table = H.create (min capacity 65536); capacity; head = None; tail = None; evictions = 0 }

  let unlink t node =
    (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
    (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
    node.prev <- None;
    node.next <- None

  let push_front t node =
    node.next <- t.head;
    node.prev <- None;
    (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
    t.head <- Some node

  let find t k =
    match H.find_opt t.table k with
    | None -> None
    | Some node ->
      unlink t node;
      push_front t node;
      Some node.value

  let mem t k = H.mem t.table k
  let length t = H.length t.table
  let capacity t = t.capacity
  let evictions t = t.evictions

  let add t k v =
    match H.find_opt t.table k with
    | Some node ->
      node.value <- v;
      unlink t node;
      push_front t node
    | None ->
      if H.length t.table >= t.capacity then begin
        match t.tail with
        | Some lru ->
          unlink t lru;
          H.remove t.table lru.key;
          t.evictions <- t.evictions + 1
        | None -> ()
      end;
      let node = { key = k; value = v; prev = None; next = None } in
      H.replace t.table k node;
      push_front t node

  let keys_by_recency t =
    let rec go acc = function None -> List.rev acc | Some n -> go (n.key :: acc) n.next in
    go [] t.head
end
