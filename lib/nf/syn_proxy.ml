(* CuckooGuard-style SYN-cookie split proxy: the defense keeps ZERO
   per-SYN state.  A SYN is answered with a stateless cookie (truncated
   HMAC-SHA256 over the 5-tuple and a coarse epoch) and dropped; only a
   client that echoes the cookie back proves liveness and earns a slot
   in the fixed-memory cuckoo-filter whitelist.  Spoofed sources never
   see the cookie, so a flood costs the proxy nothing but per-packet
   compute — memory stays flat at the filter's fixed reservation.

   [Net.Packet.t] carries no TCP flags, so the handshake rides on a
   payload convention: a payload of "SYN" is a SYN, "ACK:<hex>" is the
   cookie echo, anything else is data.  UDP is not the proxy's problem
   and passes through untouched. *)

type t = {
  key : string;
  filter : Cuckoo.t;
  mutable epoch : int;
  mutable challenges : int; (* SYNs answered with a cookie (and dropped) *)
  mutable admitted : int; (* valid cookie echoes whitelisted *)
  mutable bad_cookies : int;
  mutable no_handshake : int; (* data from flows not in the whitelist *)
}

let create ?probe ?filter_seed ?(fp_bits = 12) ?(log2_buckets = 14) ~key () =
  {
    key;
    filter = Cuckoo.create ?probe ?seed:filter_seed ~fp_bits ~log2_buckets ();
    epoch = 0;
    challenges = 0;
    admitted = 0;
    bad_cookies = 0;
    no_handshake = 0;
  }

let cookie_bytes = 8

let cookie_at t ~epoch flow =
  let msg = Printf.sprintf "%s|%d" (Net.Five_tuple.to_string flow) epoch in
  let tag = Crypto.Hmac.mac ~key:t.key msg in
  let b = Buffer.create (2 * cookie_bytes) in
  String.iteri (fun i c -> if i < cookie_bytes then Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) tag;
  Buffer.contents b

let cookie t flow = cookie_at t ~epoch:t.epoch flow

(* A cookie stays valid across one epoch turn (the client's RTT may
   straddle it); anything older is stale and rejected. *)
let validate t flow hex = String.equal hex (cookie t flow) || String.equal hex (cookie_at t ~epoch:(t.epoch - 1) flow)

let advance_epoch t = t.epoch <- t.epoch + 1
let epoch t = t.epoch

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.equal (String.sub s 0 (String.length prefix)) prefix

let syn_payload = "SYN"
let ack_prefix = "ACK:"
let ack_payload t flow = ack_prefix ^ cookie t flow

let whitelisted t flow = Cuckoo.mem t.filter flow

let process t pkt =
  match pkt.Net.Packet.proto with
  | Net.Packet.Udp -> Types.Forward pkt
  | Net.Packet.Tcp ->
    let flow = Net.Packet.flow pkt in
    let payload = pkt.Net.Packet.payload in
    if has_prefix ~prefix:syn_payload payload && String.length payload <= String.length syn_payload then begin
      (* Stateless challenge: answer with the cookie, keep nothing. *)
      t.challenges <- t.challenges + 1;
      Types.Drop ("syn-cookie-challenge:" ^ cookie t flow)
    end
    else if has_prefix ~prefix:ack_prefix payload then begin
      let hex = String.sub payload (String.length ack_prefix) (String.length payload - String.length ack_prefix) in
      if validate t flow hex then begin
        t.admitted <- t.admitted + 1;
        ignore (Cuckoo.insert t.filter flow);
        Types.Forward pkt
      end
      else begin
        t.bad_cookies <- t.bad_cookies + 1;
        Types.Drop "bad-cookie"
      end
    end
    else if whitelisted t flow then Types.Forward pkt
    else begin
      t.no_handshake <- t.no_handshake + 1;
      Types.Drop "no-handshake"
    end

let nf t = { Types.name = "SYNP"; process = (fun pkt -> process t pkt) }
let filter t = t.filter
let memory_bytes t = Cuckoo.memory_bytes t.filter
let challenges t = t.challenges
let admitted t = t.admitted
let bad_cookies t = t.bad_cookies
let no_handshake t = t.no_handshake
