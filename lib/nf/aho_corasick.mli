(** Aho–Corasick multi-pattern string matching (the DPI NF's engine, and
    the algorithm run by the DPI hardware accelerator's "graph").

    The automaton is built once from a pattern set; [feed] then scans text
    in a single pass, reporting every occurrence of every pattern. *)

type t

(** [build patterns] constructs the goto/failure automaton. Empty patterns
    are rejected with [Invalid_argument]. *)
val build : string list -> t

val pattern_count : t -> int
val state_count : t -> int

(** Total number of goto transitions (edges) in the automaton; together
    with [state_count] this determines the graph's memory footprint. *)
val transition_count : t -> int

(** [compile ?dense_states t] precomputes dense 256-way transition rows
    for the first [dense_states] automaton states (the shallow, hot part
    of the trie), as the SIMD `aho_corasick` crate's DFA does. Scanning
    semantics are unchanged; throughput improves on hot inputs at 1 KB of
    memory per dense state (the paper's 97 MB DPI "graph" is exactly this
    trade). Default: 4096 states. *)
val compile : ?dense_states:int -> t -> t

(** Number of states with dense rows. *)
val dense_state_count : t -> int

(** [scan t text] returns the number of pattern occurrences in [text]
    (counting each pattern id once per end position). *)
val scan : ?on_state:(int -> unit) -> t -> string -> int

(** [iter_matches t text f] calls [f ~pattern ~end_pos] for each match. *)
val iter_matches : t -> string -> (pattern:int -> end_pos:int -> unit) -> unit

(** [first_match t text] is the id of the first matching pattern, if any. *)
val first_match : t -> string -> int option
