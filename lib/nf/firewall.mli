(** Stateful firewall (§5.1): packets are matched against an ordered rule
    list; recently matched flows are cached in an LRU map capped at
    200,000 entries (Open vSwitch's cached-flow limit, which the paper
    adopts); old flows are evicted, so memory stays inside the fixed
    S-NIC reservation. *)

type action = Allow | Deny

type rule = {
  src_prefix : (Net.Ipv4_addr.t * int) option; (* None = wildcard *)
  dst_prefix : (Net.Ipv4_addr.t * int) option;
  proto : int option;
  src_ports : (int * int) option; (* inclusive range *)
  dst_ports : (int * int) option;
  action : action;
}

type t

(** [create ?cache_capacity ?probe ~default rules]. [default] applies when
    no rule matches. Cache capacity defaults to 200,000. *)
val create : ?cache_capacity:int -> ?probe:Types.probe -> default:action -> rule list -> t

val nf : t -> Types.t

(** Direct classification (also fills the flow cache). *)
val classify : t -> Net.Packet.t -> action

val rule_count : t -> int
val cached_flows : t -> int
val cache_capacity : t -> int

(** Flows evicted from the cache so far. *)
val cache_evictions : t -> int

(** [rule_matches rule flow] exposes the matcher for tests. *)
val rule_matches : rule -> Net.Five_tuple.t -> bool

(** A wildcard-everything rule with the given action. *)
val rule_any : action -> rule
