(** Partial-key cuckoo filter (Fan et al., CoNEXT'14): an approximate
    flow set with fixed memory — the whitelist behind the CuckooGuard
    SYN proxy.  Like {!Count_min}, all memory is allocated at creation
    so an S-NIC preallocation is never outgrown (§4.8 fixed-reservation
    model): a saturated filter rejects inserts instead of growing.

    False positives are possible (two flows sharing a fingerprint and a
    bucket pair); false negatives are not, except after a rejected
    insert evicts a resident entry. *)

type t

(** [create ?probe ?seed ~fp_bits ~log2_buckets ()] — [2^log2_buckets]
    buckets of 4 slots, fingerprints of [fp_bits] bits ([fp_bits] in
    [2, 30], [log2_buckets] in [1, 28]).  [seed] drives kick-victim
    selection (default 0xCF17); [probe] is called with the bucket index
    on every touched bucket. *)
val create : ?probe:Types.probe -> ?seed:int -> fp_bits:int -> log2_buckets:int -> unit -> t

(** Approximate membership: no false negatives for inserted-and-kept
    entries, false-positive rate ~ [8 / 2^fp_bits] at moderate load. *)
val mem : t -> Net.Five_tuple.t -> bool

(** [insert t flow] returns [false] only when the displacement chase
    exhausts [max_kicks] — the filter is saturated and the in-hand
    fingerprint is dropped. *)
val insert : t -> Net.Five_tuple.t -> bool

(** Removes one matching fingerprint; [false] if none present. *)
val remove : t -> Net.Five_tuple.t -> bool

val occupancy : t -> int
val capacity : t -> int
val load_factor : t -> float

(** Total displacement hops performed. *)
val kicks : t -> int

(** Inserts rejected because the filter was saturated. *)
val rejected : t -> int

(** Modeled on-NIC footprint: one byte-rounded fingerprint per slot,
    constant for the lifetime of the filter. *)
val memory_bytes : t -> int

(** Flip one fingerprint bit — models a cross-tenant write landing in
    filter memory (§3.3 state corruption); used by the ddos scenario to
    charge integrity loss to modes that let the write land. *)
val corrupt : t -> bit:int -> unit

(** {2 NF wrapper (short name "CKF")} *)

type nf_state

val nf_create :
  ?probe:Types.probe -> ?seed:int -> ?fp_bits:int -> ?log2_buckets:int -> unit -> nf_state

(** Tracks every packet's flow in the filter and forwards. *)
val nf : nf_state -> Types.t

val nf_filter : nf_state -> t
val nf_packets : nf_state -> int
