(** A generic LRU cache over any [Hashtbl.S], used by the flow caches of
    the stateful NFs (the paper caps the firewall's flow cache at Open
    vSwitch's 200,000-entry limit; eviction keeps hot flows fast without
    unbounded memory — the property the fixed S-NIC reservation needs). *)

module Make (H : Hashtbl.S) : sig
  type 'a t

  val create : capacity:int -> 'a t

  (** [find t k] returns the value and marks [k] most-recently-used. *)
  val find : 'a t -> H.key -> 'a option

  (** [add t k v] inserts or updates; evicts the least-recently-used
      entry when full. *)
  val add : 'a t -> H.key -> 'a -> unit

  val mem : 'a t -> H.key -> bool
  val length : 'a t -> int
  val capacity : 'a t -> int
  val evictions : 'a t -> int

  (** Keys from most- to least-recently used (test support). *)
  val keys_by_recency : 'a t -> H.key list
end
