type t = {
  ac : Aho_corasick.t;
  probe : Types.probe option;
  mutable matches_seen : int;
  mutable packets_seen : int;
}

(* The shallow automaton states are compiled to dense DFA rows, like the
   SIMD crate the paper uses; 2048 rows = 4 MB, within the DPI graph
   budget of Table 7. *)
let create ?probe patterns =
  { ac = Aho_corasick.compile ~dense_states:2048 (Aho_corasick.build patterns); probe; matches_seen = 0; packets_seen = 0 }

let inspect t (pkt : Net.Packet.t) =
  t.packets_seen <- t.packets_seen + 1;
  let on_state = Option.map (fun probe state -> probe ~region:0 ~index:state) t.probe in
  let hits = Aho_corasick.scan ?on_state t.ac pkt.payload in
  t.matches_seen <- t.matches_seen + hits;
  hits

let nf t =
  {
    Types.name = "DPI";
    process = (fun pkt -> if inspect t pkt > 0 then Types.Drop "pattern match" else Types.Forward pkt);
  }

let automaton t = t.ac
let matches_seen t = t.matches_seen
let packets_seen t = t.packets_seen
