(** CuckooGuard-style SYN-cookie split proxy (short name "SYNP"): SYN
    floods are absorbed statelessly.  A SYN is answered with a cookie —
    a truncated HMAC-SHA256 over the 5-tuple and a coarse epoch — and
    dropped; a client that echoes the cookie proves liveness and earns a
    slot in the fixed-memory {!Cuckoo} whitelist, after which its data
    forwards.  Spoofed sources never see the cookie, so attack memory
    cost is zero: {!memory_bytes} is flat at the filter's reservation.

    [Net.Packet.t] carries no TCP flags, so the handshake rides on a
    payload convention: payload "SYN" is a SYN, "ACK:<hex>" the cookie
    echo, anything else data.  UDP passes through untouched. *)

type t

val create :
  ?probe:Types.probe -> ?filter_seed:int -> ?fp_bits:int -> ?log2_buckets:int -> key:string -> unit -> t

(** Current-epoch cookie for a flow (what a SYN is answered with). *)
val cookie : t -> Net.Five_tuple.t -> string

(** Cookie for an explicit epoch — lets tests build stale cookies. *)
val cookie_at : t -> epoch:int -> Net.Five_tuple.t -> string

(** True for the current- or previous-epoch cookie of [flow]. *)
val validate : t -> Net.Five_tuple.t -> string -> bool

(** Rotate the cookie epoch; cookies two turns old become stale. *)
val advance_epoch : t -> unit

val epoch : t -> int

(** Payload conventions used by scenario code. *)
val syn_payload : string

val ack_prefix : string

(** ["ACK:" ^ cookie t flow] — the payload a live client echoes. *)
val ack_payload : t -> Net.Five_tuple.t -> string

val whitelisted : t -> Net.Five_tuple.t -> bool
val process : t -> Net.Packet.t -> Types.verdict
val nf : t -> Types.t
val filter : t -> Cuckoo.t

(** Fixed whitelist reservation — constant over the proxy's lifetime. *)
val memory_bytes : t -> int

(** {2 Counters} *)

val challenges : t -> int
val admitted : t -> int
val bad_cookies : t -> int
val no_handshake : t -> int
