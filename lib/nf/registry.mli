(** Construction of the paper's six evaluation NFs with their §5.1
    parameters (scaled variants available for fast tests), addressable by
    the short names used throughout the evaluation. *)

type spec = {
  short : string; (* "FW", "DPI", "NAT", "LB", "LPM", "Mon" *)
  description : string;
  build : ?probe:Types.probe -> scale:float -> unit -> Types.t;
}

(** The six NFs in the paper's order: FW, DPI, NAT, LB, LPM, Mon. *)
val all : spec list

val find : string -> spec

(** Paper-fidelity parameter set: FW 643 rules, DPI 33,471 patterns,
    LPM 16,000 routes. [scale] multiplies rule/pattern/route counts
    (1.0 = paper). *)
val fw_rules : scale:float -> int

val dpi_patterns : scale:float -> int
val lpm_routes : scale:float -> int
