(** Construction of the paper's six evaluation NFs with their §5.1
    parameters plus the CuckooGuard DDoS-defense pair (scaled variants
    available for fast tests), addressable by the short names used
    throughout the evaluation. *)

type spec = {
  short : string; (* "FW", "DPI", "NAT", "LB", "LPM", "Mon", "CKF", "SYNP" *)
  description : string;
  build : ?probe:Types.probe -> scale:float -> unit -> Types.t;
}

(** The eight NFs: the paper's six (FW, DPI, NAT, LB, LPM, Mon) followed
    by the CuckooGuard pair (CKF cuckoo-filter flow tracker, SYNP
    SYN-cookie split proxy). *)
val all : spec list

(** Comma-separated valid short names (for error messages and usage). *)
val short_names : unit -> string

(** @raise Invalid_argument on an unknown short name, listing the valid
    short names. *)
val find : string -> spec

(** Paper-fidelity parameter set: FW 643 rules, DPI 33,471 patterns,
    LPM 16,000 routes. [scale] multiplies rule/pattern/route counts
    (1.0 = paper). *)
val fw_rules : scale:float -> int

val dpi_patterns : scale:float -> int
val lpm_routes : scale:float -> int

(** Cuckoo-filter sizing for the CKF/SYNP pair: log2 bucket count at a
    given [scale] (1.0 = 2^14 buckets = 64 Ki slots, 128 KiB fixed). *)
val ckf_log2_buckets : scale:float -> int
