type verdict = Forward of Net.Packet.t | Drop of string
type probe = region:int -> index:int -> unit
type t = { name : string; process : Net.Packet.t -> verdict }

let forwarded = function Forward p -> Some p | Drop _ -> None
let is_drop = function Drop _ -> true | Forward _ -> false
