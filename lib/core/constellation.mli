(** Constellations of trusted computations (§4.7, Figure 4).

    A tenant stitches together S-NIC functions and host-level enclaves
    into a mesh where every pair has mutually attested and shares an
    encrypted channel — so neither the datacenter operator nor co-located
    tenants can read or tamper with cross-node traffic. *)

(** A participant: an attested S-NIC function, or a host-level trusted
    execution environment (SGX-enclave stand-in with the same
    quote/verify structure). *)
type endpoint

(** [of_nf ?name api vnic] — names default to ["nf-<id>"]. *)
val of_nf : ?name:string -> Api.t -> Vnic.t -> endpoint

(** [enclave ~vendor ~name ~code] simulates a host enclave whose
    measurement is SHA-256 of [code]; [vendor] plays the role of the CPU
    manufacturer's attestation service. *)
val enclave : ?seed:int -> vendor:Identity.vendor -> name:string -> code:string -> unit -> endpoint

val name : endpoint -> string
val measurement : endpoint -> string

(** A mutually attested, encrypted, replay-protected channel. *)
type channel

type error =
  | Attestation_failed of { prover : string; reason : string }
  | Unknown_vendor of string

val error_to_string : error -> string

(** [connect rng ~trusted_vendors a b] runs pairwise attestation in both
    directions. [trusted_vendors] is the verifier's root store; provers
    whose EK chains to an unknown vendor are rejected. Optional
    [expected] pins each side's measurement. *)
val connect :
  Random.State.t ->
  trusted_vendors:Identity.vendor list ->
  ?expected_a:string ->
  ?expected_b:string ->
  endpoint ->
  endpoint ->
  (channel, error) result

(** [send ch ~from:0|1 payload] seals a message for the other side;
    [recv] opens and advances the replay window. *)
val send : channel -> from:int -> string -> string

val recv : channel -> at:int -> string -> (string, string) result

(** The shared key (for tests). *)
val channel_key : channel -> string
