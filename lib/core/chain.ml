open Nicsim

let compose ~name nfs =
  if nfs = [] then invalid_arg "Chain.compose: empty chain";
  {
    Nf.Types.name;
    process =
      (fun pkt ->
        let rec go pkt = function
          | [] -> Nf.Types.Forward pkt
          | (nf : Nf.Types.t) :: rest -> begin
            match nf.Nf.Types.process pkt with
            | Nf.Types.Forward pkt' -> go pkt' rest
            | Nf.Types.Drop _ as d -> d
          end
        in
        go pkt nfs);
  }

type t = { api : Api.t; stages : (Vnic.t * Nf.Types.t) array }

let create api stages =
  if stages = [] then invalid_arg "Chain.create: empty chain";
  { api; stages = Array.of_list stages }

type stage_stats = { nf : string; received : int; forwarded : int; dropped : int }

let pump t ~max =
  let m = Api.machine t.api in
  let n = Array.length t.stages in
  let stats = ref [] in
  for i = 0 to n - 1 do
    let vnic, nf = t.stages.(i) in
    let received = ref 0 and forwarded = ref 0 and dropped = ref 0 in
    let continue = ref true in
    while !continue && !received < max do
      match Vnic.rx_packet vnic with
      | Ok None -> continue := false
      | Error _ ->
        incr received;
        incr dropped
      | Ok (Some (pkt, buffer)) -> begin
        incr received;
        match nf.Nf.Types.process pkt with
        | Nf.Types.Drop _ ->
          Vnic.drop vnic ~buffer;
          incr dropped
        | Nf.Types.Forward pkt' ->
          if i = n - 1 then begin
            match Vnic.tx_packet vnic ~buffer pkt' with
            | Ok () -> incr forwarded
            | Error _ ->
              Vnic.drop vnic ~buffer;
              incr dropped
          end
          else begin
            (* Trusted cross-VPP transfer into the next stage. *)
            let next_id = Vnic.id (fst t.stages.(i + 1)) in
            let frame = Net.Packet.serialize pkt' in
            (match Pktio.deliver_to (Machine.pktio m) ~nf:next_id frame with
            | Ok () -> incr forwarded
            | Error _ -> incr dropped);
            Vnic.drop vnic ~buffer
          end
      end
    done;
    stats := { nf = nf.Nf.Types.name; received = !received; forwarded = !forwarded; dropped = !dropped } :: !stats
  done;
  List.rev !stats

let backlog t =
  Array.fold_left (fun acc (vnic, _) -> acc + Vnic.rx_depth vnic) 0 t.stages
