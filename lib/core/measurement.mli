(** Cumulative measurement of a network function's initial state.

    As nf_launch installs the pieces of a function it folds each one into
    a running SHA-256 (§4.6): the initial code/data image, the switching
    rules that select its packets, the resource reservations. The final
    digest is what nf_attest signs, so a NIC OS that tampers with any
    input produces a measurement the remote verifier will reject. *)

type t

val start : unit -> t

(** Each [record_*] absorbs a length-prefixed, tagged encoding, so
    distinct field sequences can never collide by concatenation. *)
val record_image : t -> string -> unit

val record_cores : t -> int list -> unit
val record_memory : t -> base:int -> len:int -> unit
val record_rule : t -> Nicsim.Pktio.rule_match -> unit
val record_accel : t -> kind:Nicsim.Accel.kind -> clusters:int -> unit
val record_vpp : t -> rx_bytes:int -> tx_bytes:int -> sched:Nicsim.Sched.policy -> unit

(** The 32-byte digest. The measurement must not be used afterwards. *)
val finish : t -> string

(** [of_config] builds the whole measurement in one step — what a remote
    verifier does to compute the expected value independently. *)
val of_config :
  image:string ->
  cores:int list ->
  mem_base:int ->
  mem_len:int ->
  rules:Nicsim.Pktio.rule_match list ->
  accels:(Nicsim.Accel.kind * int) list ->
  rx_bytes:int ->
  tx_bytes:int ->
  sched:Nicsim.Sched.policy ->
  string
