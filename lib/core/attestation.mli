(** The S-NIC remote-attestation protocol (Appendix A).

    A verifier sends a nonce; the prover (an NF on an S-NIC, or any other
    measured environment such as a host enclave) contributes a fresh
    Diffie–Hellman share and asks its trusted hardware to sign
    H(initial-state) together with the DH parameters and nonce. The
    verifier checks the vendor → EK → AK → quote chain, the nonce, and
    optionally the expected measurement, then answers with its own DH
    share; both sides derive the same symmetric key, known to nobody
    else — in particular not to the datacenter operator. *)

type quote = {
  measurement : string; (* hash of the prover's initial state *)
  group : Crypto.Dh.group;
  dh_public : Bigint.t; (* g^x mod p *)
  nonce : string; (* echoed verifier nonce *)
  signature : string; (* AK signature over the quote payload *)
  ak : Crypto.Rsa.public;
  ak_endorsement : string; (* EK signature over the AK *)
  ek_cert : Crypto.Rsa.certificate; (* vendor-signed EK certificate *)
}

(** Anything that can attest: trusted hardware identity plus the
    measurement it vouches for. *)
type attester = { identity : Identity.t; measurement : string }

(** The attester for a launched S-NIC function. *)
val attester_of_nf : Instructions.t -> id:int -> (attester, Instructions.error) result

(** Prover state holding the ephemeral DH secret. *)
type responder

(** [respond rng ?group attester ~nonce] performs the prover side. *)
val respond : Random.State.t -> ?group:Crypto.Dh.group -> attester -> nonce:string -> responder * quote

(** [responder_key r ~verifier_share] derives the 32-byte session key
    after the verifier's g^y arrives. *)
val responder_key : responder -> verifier_share:Bigint.t -> string

type verify_error =
  | Bad_certificate_chain
  | Bad_signature
  | Nonce_mismatch
  | Unexpected_measurement of { expected : string; got : string }

val verify_error_to_string : verify_error -> string

type verified = {
  key : string; (* the shared 32-byte session key *)
  verifier_share : Bigint.t; (* g^y to send back to the prover *)
  quote_measurement : string;
}

(** [verify rng ~vendor_public ?expected_measurement ~nonce quote]
    performs the verifier side. *)
val verify :
  Random.State.t ->
  vendor_public:Crypto.Rsa.public ->
  ?expected_measurement:string ->
  nonce:string ->
  quote ->
  (verified, verify_error) result

(** {2 Wire format}

    Quotes cross an untrusted network; [quote_to_bytes]/[quote_of_bytes]
    give them a strict, self-delimiting encoding. Tampering surfaces as a
    decode error or, downstream, a signature failure. *)

val quote_to_bytes : quote -> string
val quote_of_bytes : string -> (quote, string) result
