type vendor = { name : string; key : Crypto.Rsa.keypair }

type t = {
  ek : Crypto.Rsa.keypair;
  ek_cert : Crypto.Rsa.certificate;
  rng : Random.State.t;
  mutable ak : Crypto.Rsa.keypair;
  mutable ak_sig : string;
}

let make_vendor ?(seed = 0xC0FFEE) ~name () =
  { name; key = Crypto.Rsa.generate (Random.State.make [| seed |]) ~bits:512 }

let vendor_public v = v.key.Crypto.Rsa.pub
let vendor_name v = v.name

let ak_binding pub = "snic-ak|" ^ Crypto.Rsa.public_to_string pub

let fresh_ak rng ek =
  let ak = Crypto.Rsa.generate rng ~bits:512 in
  (ak, Crypto.Rsa.sign ek (ak_binding ak.Crypto.Rsa.pub))

let manufacture ?(seed = 0x51C) vendor ~serial =
  let rng = Random.State.make [| seed |] in
  let ek = Crypto.Rsa.generate rng ~bits:512 in
  let ek_cert = Crypto.Rsa.issue ~issuer_name:vendor.name ~issuer_key:vendor.key ~subject:("S-NIC EK " ^ serial) ek.Crypto.Rsa.pub in
  let ak, ak_sig = fresh_ak rng ek in
  { ek; ek_cert; rng; ak; ak_sig }

let reboot t =
  let ak, ak_sig = fresh_ak t.rng t.ek in
  t.ak <- ak;
  t.ak_sig <- ak_sig

let ek_certificate t = t.ek_cert
let ak_public t = t.ak.Crypto.Rsa.pub
let ak_endorsement t = t.ak_sig
let sign_quote t payload = Crypto.Rsa.sign t.ak payload

let check_ak_chain ~vendor_public ~ek_cert ~ak ~endorsement =
  Crypto.Rsa.check_certificate ~issuer_key:vendor_public ek_cert
  && Crypto.Rsa.verify ek_cert.Crypto.Rsa.key ~msg:(ak_binding ak) ~signature:endorsement
