(** The three trusted S-NIC instructions of Table 1: [nf_launch],
    [nf_attest] and [nf_teardown], implemented against the simulated
    machine. Each is atomic: on any validation failure nothing is
    modified.

    These are *hardware* instructions in the paper — complex microcoded
    operations the untrusted NIC OS invokes but cannot subvert. The
    higher-level management API of the NIC OS lives in {!Api}. *)

type launch_config = {
  cores : int list; (* requested programmable cores *)
  image : string; (* initial code + data, copied into the reservation *)
  memory_bytes : int; (* size of the virtual NIC's RAM *)
  rules : Nicsim.Pktio.rule_match list; (* switch rules feeding the VPP *)
  rx_bytes : int; (* VPP buffer reservations in the physical ports *)
  tx_bytes : int;
  sched : Nicsim.Sched.policy; (* the VPP's packet scheduler *)
  accels : (Nicsim.Accel.kind * int) list; (* (kind, cluster count) *)
  host_window : (int * int) option; (* host RAM (base, len) sanctioned for DMA *)
}

val default_config : launch_config

type handle = {
  id : int;
  cores : int list;
  mem_base : int; (* physical base of the function's RAM *)
  mem_len : int;
  vbase : int; (* the fixed virtual base its core TLBs map *)
  clusters : (Nicsim.Accel.kind * int) list; (* claimed cluster ids *)
  measurement : string; (* cumulative SHA-256 of the initial state *)
}

type error =
  | Not_an_snic
  | Cores_unavailable of int list
  | Memory_unavailable
  | Pages_already_owned of int
  | Vpp_unavailable of string
  | Accel_unavailable of Nicsim.Accel.kind
  | Too_many_functions
  | Unknown_function of int
  | Function_destroyed of int
      (* the id was live once but has been torn down (and not reused);
         distinct from [Unknown_function] so management layers can treat a
         double-destroy as benign while a destroy of a never-launched id
         signals a caller bug (fleet re-placement relies on this). *)

val error_to_string : error -> string

type t

(** [create machine identity] wraps an S-NIC-mode machine with the
    trusted instruction state ("hardware-private memory"). Fails with
    [Invalid_argument] if the machine is not in [Snic] mode. *)
val create : Nicsim.Machine.t -> Identity.t -> t

val machine : t -> Nicsim.Machine.t
val identity : t -> Identity.t

(** Simulated instruction latencies (cycles at the NIC clock), split by
    phase as in Figure 6 of the paper. *)
type launch_latency = { tlb_setup : int; denylist : int; digest : int }

type teardown_latency = { allowlist : int; scrub : int }

(** [nf_launch t config] validates and atomically installs a function:
    claims cores, flips page ownership (which arms the OS denylist),
    installs and locks core/accelerator TLBs, reserves VPP buffers and
    switch rules, and accumulates the measurement. *)
val nf_launch : t -> launch_config -> (handle * launch_latency, error) result

(** [nf_attest t ~id ~dh_public ~nonce] signs
    H(measurement || g || p || nonce || g^x) with the attestation key.
    Returns the signature (the caller assembles the full quote; see
    {!Attestation}). *)
val nf_attest : t -> id:int -> group:Crypto.Dh.group -> dh_public:Bigint.t -> nonce:string -> (string, error) result

(** [nf_teardown t ~id] scrubs the function's RAM, registers, cache lines
    and descriptors, then releases every resource. *)
val nf_teardown : t -> id:int -> (teardown_latency, error) result

val live_functions : t -> handle list
val find : t -> id:int -> handle option

(** What nf_attest signs, exposed so verifiers can recompute it. *)
val quote_payload : measurement:string -> group:Crypto.Dh.group -> dh_public:Bigint.t -> nonce:string -> string
