(** Function chaining (§4.8).

    S-NIC's strict isolation prohibits shared memory between functions in
    different virtual NICs. The paper sketches two ways to chain:

    - {b compiler-enforced isolation}: multiple distrusting functions
      compiled into the memory region of one virtual NIC, composed at the
      language level ([compose]); cheap, but cross-function side channels
      through core-local state remain possible.

    - {b cross-VPP localhost networking} (the extension the paper leaves
      to future work): each function keeps its own virtual NIC, and
      trusted hardware moves packets directly between the side-channel-
      isolated VPPs ([create]/[pump]); information flow between stages is
      reduced to overt packet contents and timing. *)

(** [compose nfs] runs packets through [nfs] left to right inside one
    virtual NIC; the first [Drop] wins. *)
val compose : name:string -> Nf.Types.t list -> Nf.Types.t

(** A cross-VPP chain: each stage is a launched function with its own
    virtual NIC. *)
type t

(** [create api stages] wires the stages in order. At least one stage. *)
val create : Api.t -> (Vnic.t * Nf.Types.t) list -> t

type stage_stats = { nf : string; received : int; forwarded : int; dropped : int }

(** [pump t ~max] drains up to [max] packets per stage, transferring each
    stage's forwards into the next stage's VPP via the trusted cross-VPP
    path; the last stage transmits to the wire. Call repeatedly until the
    chain is empty. *)
val pump : t -> max:int -> stage_stats list

(** Total packets currently queued across the chain's VPPs. *)
val backlog : t -> int
