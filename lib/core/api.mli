(** The NIC-OS-visible management API (first column of Table 1).

    [nf_create]/[nf_destroy] are what the (untrusted) NIC OS exposes to
    the host; underneath they stage the function image into on-NIC RAM by
    DMA and invoke the trusted [nf_launch]/[nf_teardown] instructions. The
    OS can refuse service (denial of service is out of scope, §4.8) but
    cannot forge a measurement: a mis-staged function fails attestation. *)

type t

(** [create ?vendor ?serial ?identity_seed machine_config] boots a fresh
    S-NIC: builds the machine in [Snic] mode with its manufactured
    identity. [identity_seed] seeds EK/AK generation — give every NIC in
    a deployment its own so their identities are cryptographically
    distinct (the default reuses one fixed seed, fine for single-NIC
    tests). *)
val boot : ?vendor:Identity.vendor -> ?serial:string -> ?identity_seed:int -> unit -> t

(** Boot against a caller-supplied machine configuration (must be Snic
    mode). *)
val boot_with : ?vendor:Identity.vendor -> ?serial:string -> ?identity_seed:int -> Nicsim.Machine.config -> t

val instructions : t -> Instructions.t
val machine : t -> Nicsim.Machine.t
val vendor : t -> Identity.vendor

(** Why [nf_create] can fail, split so a supervisor can react: a
    [Stage_fault] is a transient gray failure of the staging DMA and is
    worth retrying; [Stage_failed] is resource exhaustion; [Launch_failed]
    is the trusted instruction refusing the configuration. A silent bit
    flip during staging is *not* an error here — it produces a corrupt
    image whose measurement attestation later rejects. *)
type create_error =
  | Stage_fault of Faults.fault_event
  | Stage_failed of string
  | Launch_failed of string

val create_error_to_string : create_error -> string

(** [nf_create t config] — Table 1's
    [NF_create(net_config, core_config, ...)]. Stages the image through
    host RAM + DMA, picks free cores if [config.cores] is empty, and
    launches. Returns the running function's virtual NIC. *)
val nf_create : t -> Instructions.launch_config -> (Vnic.t, string) result

(** As [nf_create], with the typed error. *)
val nf_create_r : t -> Instructions.launch_config -> (Vnic.t, create_error) result

(** Why [nf_destroy] can fail, split so management layers can react
    differently: a double-destroy ([Already_destroyed]) is usually a
    benign race (e.g. a fleet orchestrator reaping a function it already
    tore down), while destroying an id that never existed
    ([Never_created]) is a caller bug. *)
type destroy_error =
  | Already_destroyed of int (* id was live once; teardown already ran *)
  | Never_created of int (* no function with this id was ever launched *)
  | Destroy_failed of string (* any other hardware-level refusal *)

val destroy_error_to_string : destroy_error -> string

(** [nf_destroy t ~id] — Table 1's [NF_destroy(nf_id)]. *)
val nf_destroy : t -> id:int -> (unit, destroy_error) result

(** [inject t frame] puts a frame on the simulated wire (RX path). *)
val inject : t -> Bytes.t -> (int, string) result

val inject_packet : t -> Net.Packet.t -> (int, string) result

(** [inject_batch t frames] delivers a list of frames in order through
    {!Nicsim.Pktio.deliver_batch} and returns [(queued, rejected)] —
    the amortized entry point the fleet front-end batches through. *)
val inject_batch : t -> Bytes.t list -> int * int

(** Frames transmitted by functions, oldest first. *)
val transmitted : t -> Net.Packet.t list
