open Nicsim

type t = { instr : Instructions.t; vendor : Identity.vendor }

let boot_with ?vendor ?(serial = "0001") ?identity_seed config =
  let vendor = match vendor with Some v -> v | None -> Identity.make_vendor ~name:"Simulated NIC Vendor" () in
  let machine = Machine.create config in
  let identity = Identity.manufacture ?seed:identity_seed vendor ~serial in
  { instr = Instructions.create machine identity; vendor }

let boot ?vendor ?serial ?identity_seed () =
  boot_with ?vendor ?serial ?identity_seed (Machine.default_config ~mode:Machine.Snic)

let instructions t = t.instr
let machine t = Instructions.machine t.instr
let vendor t = t.vendor

type create_error =
  | Stage_fault of Faults.fault_event (* the staging DMA hit an injected gray failure — retryable *)
  | Stage_failed of string (* resource exhaustion or window violation while staging *)
  | Launch_failed of string (* the trusted nf_launch instruction refused *)

let create_error_to_string = function
  | Stage_fault ev -> Printf.sprintf "image staging failed: %s" (Faults.event_to_string ev)
  | Stage_failed msg -> msg
  | Launch_failed msg -> msg

(* Wrap a control-plane call in a span on the machine's ctrl track;
   [ok] classifies the result so the closing event can carry success
   (arg=1) or failure (arg=0).  Timestamps are sequence numbers — the
   control plane has no cycle clock. *)
let ctrl_span m name ~ok f =
  let sink = Machine.sink m in
  Obs.span_begin sink ~ts:(Obs.seq sink) ~track:Machine.track_ctrl Obs.Ctrl name ~arg:0;
  let result = f () in
  Obs.span_end sink ~ts:(Obs.seq sink) ~track:Machine.track_ctrl Obs.Ctrl name
    ~arg:(if ok result then 1 else 0);
  result

let nf_create_body t (config : Instructions.launch_config) =
  let m = machine t in
  (* Stage the image through host memory and DMA, as the real management
     flow does (§4.1). The staging buffer is OS memory; nf_launch copies
     from it into the function's reservation. A gray failure here is
     survivable: an outright DMA error aborts the create (retryable), and
     a silent bit flip stages a corrupt image whose measurement the
     attestation handshake then rejects — it never runs attested. *)
  let staged =
    if String.length config.image = 0 then Ok config.image
    else begin
      let host = Dma.host_mem (Machine.dma m) in
      Physmem.write_bytes host ~pos:0 config.image;
      match Alloc.alloc (Machine.alloc m) ~owner:Physmem.Nic_os (String.length config.image) with
      | None -> Error (Stage_failed "cannot stage image: on-NIC RAM exhausted")
      | Some stage -> begin
        match
          Dma.transfer ~checked:false (Machine.dma m) ~bank:0 ~direction:Dma.To_nic ~nic_addr:stage ~host_addr:0
            ~len:(String.length config.image)
        with
        | Error e ->
          Alloc.free (Machine.alloc m) stage;
          (match e with
          | Dma.Fault ev -> Error (Stage_fault ev)
          | Dma.Violation msg -> Error (Stage_failed msg))
        | Ok () ->
          let image = Physmem.read_bytes (Machine.mem m) ~pos:stage ~len:(String.length config.image) in
          Alloc.free (Machine.alloc m) stage;
          Ok image
      end
    end
  in
  match staged with
  | Error e -> Error e
  | Ok image -> begin
    let cores =
      if config.cores <> [] then config.cores
      else begin
        match Machine.free_cores m with
        | [] -> []
        | c :: _ -> [ c ]
      end
    in
    match Instructions.nf_launch t.instr { config with cores; image } with
    | Ok (handle, _latency) -> Ok (Vnic.of_handle t.instr handle)
    | Error e -> Error (Launch_failed (Instructions.error_to_string e))
  end

let nf_create_r t config =
  ctrl_span (machine t) "nf_create" ~ok:Result.is_ok (fun () -> nf_create_body t config)

let nf_create t config = Result.map_error create_error_to_string (nf_create_r t config)

type destroy_error = Already_destroyed of int | Never_created of int | Destroy_failed of string

let destroy_error_to_string = function
  | Already_destroyed id -> Printf.sprintf "function %d was already destroyed" id
  | Never_created id -> Printf.sprintf "no function with id %d was ever created" id
  | Destroy_failed msg -> msg

let nf_destroy t ~id =
  ctrl_span (machine t) "nf_destroy" ~ok:Result.is_ok (fun () ->
      match Instructions.nf_teardown t.instr ~id with
      | Ok _ -> Ok ()
      | Error (Instructions.Function_destroyed id) -> Error (Already_destroyed id)
      | Error (Instructions.Unknown_function id) -> Error (Never_created id)
      | Error e -> Error (Destroy_failed (Instructions.error_to_string e)))

let inject t frame = Pktio.deliver (Machine.pktio (machine t)) frame
let inject_packet t pkt = inject t (Net.Packet.serialize pkt)
let inject_batch t frames = Pktio.deliver_batch (Machine.pktio (machine t)) frames

let transmitted t =
  List.filter_map
    (fun frame -> Result.to_option (Net.Packet.parse frame))
    (Pktio.wire_out (Machine.pktio (machine t)))
