(** The NIC's cryptographic identity (Appendix A).

    At manufacturing time an S-NIC receives an endorsement key pair [EK]
    whose public half is certified by the NIC vendor. After every boot the
    NIC generates a fresh attestation key pair [AK] and signs its public
    half with the [EK]. Quotes are signed with [AK_priv], so a verifier
    checks: vendor cert -> EK -> AK -> quote. *)

type t

(** A vendor: a root signing key plus its name. Test/simulation vendors
    are generated deterministically from a seed. *)
type vendor

val make_vendor : ?seed:int -> name:string -> unit -> vendor
val vendor_public : vendor -> Crypto.Rsa.public
val vendor_name : vendor -> string

(** [manufacture vendor ~serial] burns in an EK and returns the NIC
    identity, already booted once (an AK exists). Key sizes are modest
    (512-bit) to keep simulations fast; the protocol is unchanged. *)
val manufacture : ?seed:int -> vendor -> serial:string -> t

(** [reboot t] discards the AK and generates a fresh one (new signature
    chain, same EK). *)
val reboot : t -> unit

val ek_certificate : t -> Crypto.Rsa.certificate

(** The AK public key and the EK signature over it. *)
val ak_public : t -> Crypto.Rsa.public

val ak_endorsement : t -> string

(** [sign_quote t payload] signs with [AK_priv] — the core of nf_attest. *)
val sign_quote : t -> string -> string

(** Verifier side: check that [ak] is endorsed by the EK in [cert], and
    [cert] by the vendor. *)
val check_ak_chain :
  vendor_public:Crypto.Rsa.public -> ek_cert:Crypto.Rsa.certificate -> ak:Crypto.Rsa.public -> endorsement:string ->
  bool

(** Serialization of an AK public key as signed by the EK. *)
val ak_binding : Crypto.Rsa.public -> string
