open Nicsim

type launch_config = {
  cores : int list;
  image : string;
  memory_bytes : int;
  rules : Pktio.rule_match list;
  rx_bytes : int;
  tx_bytes : int;
  sched : Sched.policy; (* the VPP's packet scheduling algorithm *)
  accels : (Accel.kind * int) list;
  host_window : (int * int) option; (* host RAM (base, len) sanctioned for DMA *)
}

let default_config =
  {
    cores = [];
    image = "";
    memory_bytes = 1 lsl 20;
    rules = [];
    rx_bytes = 64 * 1024;
    tx_bytes = 64 * 1024;
    sched = Sched.Fifo;
    accels = [];
    host_window = None;
  }

type handle = {
  id : int;
  cores : int list;
  mem_base : int;
  mem_len : int;
  vbase : int;
  clusters : (Accel.kind * int) list;
  measurement : string;
}

type error =
  | Not_an_snic
  | Cores_unavailable of int list
  | Memory_unavailable
  | Pages_already_owned of int
  | Vpp_unavailable of string
  | Accel_unavailable of Accel.kind
  | Too_many_functions
  | Unknown_function of int
  | Function_destroyed of int

let error_to_string = function
  | Not_an_snic -> "machine is not an S-NIC"
  | Cores_unavailable cs -> "cores unavailable: " ^ String.concat "," (List.map string_of_int cs)
  | Memory_unavailable -> "on-NIC RAM exhausted"
  | Pages_already_owned a -> Printf.sprintf "page at %#x already belongs to a live function" a
  | Vpp_unavailable msg -> "virtual packet pipeline: " ^ msg
  | Accel_unavailable k -> "no free " ^ Accel.kind_name k ^ " cluster"
  | Too_many_functions -> "all isolation domains in use"
  | Unknown_function id -> Printf.sprintf "no function with id %d" id
  | Function_destroyed id -> Printf.sprintf "function %d was already destroyed" id

type t = {
  machine : Machine.t;
  identity : Identity.t;
  mutable live : handle list;
  mutable retired : int list; (* ids torn down and not yet reused *)
  max_functions : int;
}

let vbase = 0x10000000

let create machine identity =
  if Machine.mode machine <> Machine.Snic then invalid_arg "Instructions.create: machine must be in Snic mode";
  { machine; identity; live = []; retired = []; max_functions = Bus.clients (Machine.bus machine) }

let machine t = t.machine
let identity t = t.identity
let live_functions t = t.live
let find t ~id = List.find_opt (fun h -> h.id = id) t.live

type launch_latency = { tlb_setup : int; denylist : int; digest : int }
type teardown_latency = { allowlist : int; scrub : int }

let ( let* ) = Result.bind

(* Cycle-cost constants: SHA-256 digesting dominates launch and scales
   with image size; scrubbing dominates teardown and scales with the
   reservation (both as measured on the Marvell NIC in Appendix C). *)
let digest_cycles_per_byte = 3
let scrub_cycles_per_byte = 1
let tlb_setup_cycles = 24_000
let denylist_cycles_per_page = 40

let fresh_id t =
  let used = List.map (fun h -> h.id) t.live in
  let rec go i = if i >= t.max_functions then None else if List.mem i used then go (i + 1) else Some i in
  go 0

let round_pages n = (n + Physmem.page_size - 1) land lnot (Physmem.page_size - 1)

let nf_launch t (config : launch_config) =
  let m = t.machine in
  let* id = Option.to_result ~none:Too_many_functions (fresh_id t) in
  (* 1. Cores must exist and be unbound. *)
  let bad_cores =
    List.filter (fun c -> c < 0 || c >= Machine.cores m || Machine.core_owner m ~core:c <> None) config.cores
  in
  let* () = if bad_cores <> [] || config.cores = [] then Error (Cores_unavailable bad_cores) else Ok () in
  (* 2. RAM: the reservation must cover the image. Claimed from the
     allocator; ownership flips to the new function, arming the denylist. *)
  let mem_len = round_pages (max config.memory_bytes (String.length config.image)) in
  (* Natural alignment (capped at 64 MB) lets the locked TLBs cover the
     region with a handful of variable-size entries (§4.2). *)
  let align =
    let rec pow2 p = if p >= mem_len || p >= 64 * 1024 * 1024 then p else pow2 (2 * p) in
    pow2 Physmem.page_size
  in
  let* mem_base =
    Option.to_result ~none:Memory_unavailable (Alloc.alloc (Machine.alloc m) ~align ~owner:(Physmem.Nf id) mem_len)
  in
  (* From here on, failures must unwind the allocation. *)
  let unwind e =
    Alloc.free (Machine.alloc m) mem_base;
    Error e
  in
  (* 3. Virtual packet pipeline: buffer space in physical ports + rules. *)
  match Pktio.reserve (Machine.pktio m) ~sched:config.sched ~nf:id ~rx_bytes:config.rx_bytes ~tx_bytes:config.tx_bytes with
  | Error msg -> unwind (Vpp_unavailable msg)
  | Ok () -> begin
    (* 4. Accelerator clusters, each fronted by a locked TLB bank. *)
    let claimed = ref [] in
    let release_claimed () =
      List.iter
        (fun (kind, c) ->
          Physmem.set_owner (Machine.mem m)
            ~pos:(Machine.accel_mmio_base m ~kind ~cluster:c)
            ~len:Physmem.page_size Physmem.Nic_os;
          Accel.release_clusters (Machine.accel m kind) ~nf:id)
        !claimed
    in
    let rec claim = function
      | [] -> Ok ()
      | (kind, count) :: rest ->
        let accel = Machine.accel m kind in
        let rec grab n =
          if n = 0 then Ok ()
          else begin
            match Accel.claim_cluster accel ~nf:id with
            | None -> Error (Accel_unavailable kind)
            | Some c ->
              claimed := (kind, c) :: !claimed;
              let tlb = Accel.cluster_tlb accel ~cluster:c in
              ignore (Tlb.map_region tlb ~vbase ~pbase:mem_base ~len:mem_len ~writable:true);
              Tlb.lock tlb;
              (* The cluster's MMIO registers become the function's: no
                 other tenant (or the OS) can reconfigure its threads. *)
              Physmem.set_owner (Machine.mem m)
                ~pos:(Machine.accel_mmio_base m ~kind ~cluster:c)
                ~len:Physmem.page_size (Physmem.Nf id);
              grab (n - 1)
          end
        in
        let* () = grab count in
        claim rest
    in
    match claim config.accels with
    | Error e ->
      release_claimed ();
      Pktio.release (Machine.pktio m) ~nf:id;
      unwind e
    | Ok () ->
      (* 5. Scrub the reservation (heap slots are recycled across
         tenants and transmit does not zero packet buffers — without this
         the new function could read a predecessor's stale bytes), copy
         the image, bind cores, install + lock core TLBs. *)
      Physmem.zero_range (Machine.mem m) ~pos:mem_base ~len:mem_len;
      Physmem.write_bytes (Machine.mem m) ~pos:mem_base config.image;
      List.iter (fun c -> Machine.bind_core m ~core:c ~nf:id) config.cores;
      List.iter
        (fun c ->
          let tlb = Machine.core_tlb m ~core:c in
          ignore (Tlb.map_region tlb ~vbase ~pbase:mem_base ~len:mem_len ~writable:true);
          Tlb.lock tlb)
        config.cores;
      (* 6. Switch rules. *)
      List.iter (fun r -> Pktio.add_rule (Machine.pktio m) ~m:r ~nf:id) config.rules;
      (* 6b. DMA banks: each of the function's cores gets a bank whose
         upstream TLB covers only the function's RAM and whose downstream
         TLB covers only the host-sanctioned window (SR-IOV-style, §4.2).
         Both are then locked. *)
      List.iter
        (fun c ->
          let bank = c in
          let up = Dma.up_tlb (Machine.dma m) ~bank in
          ignore (Tlb.map_region up ~vbase ~pbase:mem_base ~len:mem_len ~writable:true);
          Tlb.lock up;
          let down = Dma.down_tlb (Machine.dma m) ~bank in
          (match config.host_window with
          | Some (hbase, hlen) -> ignore (Tlb.map_region down ~vbase:0 ~pbase:hbase ~len:hlen ~writable:true)
          | None -> ());
          Tlb.lock down)
        config.cores;
      (* 7. Cumulative measurement. *)
      let measurement =
        Measurement.of_config ~image:config.image ~cores:config.cores ~mem_base ~mem_len ~rules:config.rules
          ~accels:config.accels ~rx_bytes:config.rx_bytes ~tx_bytes:config.tx_bytes ~sched:config.sched
      in
      let handle = { id; cores = config.cores; mem_base; mem_len; vbase; clusters = !claimed; measurement } in
      t.live <- handle :: t.live;
      (* A reused id names a fresh function now; it is no longer "destroyed". *)
      t.retired <- List.filter (fun i -> i <> id) t.retired;
      let latency =
        {
          tlb_setup = tlb_setup_cycles * (List.length config.cores + List.length !claimed);
          denylist = denylist_cycles_per_page * (mem_len / Physmem.page_size);
          digest = digest_cycles_per_byte * mem_len;
        }
      in
      Ok (handle, latency)
  end

let quote_payload ~measurement ~group ~dh_public ~nonce =
  String.concat "|"
    [
      "snic-quote";
      Crypto.Sha256.to_hex measurement;
      Bigint.to_hex group.Crypto.Dh.g;
      Bigint.to_hex group.Crypto.Dh.p;
      Crypto.Sha256.to_hex (Crypto.Sha256.digest nonce);
      Bigint.to_hex dh_public;
    ]

let nf_attest t ~id ~group ~dh_public ~nonce =
  match find t ~id with
  | None -> Error (Unknown_function id)
  | Some h -> Ok (Identity.sign_quote t.identity (quote_payload ~measurement:h.measurement ~group ~dh_public ~nonce))

let nf_teardown t ~id =
  match find t ~id with
  | None -> if List.mem id t.retired then Error (Function_destroyed id) else Error (Unknown_function id)
  | Some h ->
    let m = t.machine in
    (* Scrub RAM and microarchitectural state before releasing anything. *)
    Physmem.zero_range (Machine.mem m) ~pos:h.mem_base ~len:h.mem_len;
    Cache.flush_domain (Machine.l2 m) h.id;
    (* Release accelerators, VPP, cores; ownership back to Free removes
       the pages from the denylist. *)
    List.iter
      (fun (kind, c) ->
        Physmem.zero_range (Machine.mem m) ~pos:(Machine.accel_mmio_base m ~kind ~cluster:c) ~len:Physmem.page_size;
        Physmem.set_owner (Machine.mem m)
          ~pos:(Machine.accel_mmio_base m ~kind ~cluster:c)
          ~len:Physmem.page_size Physmem.Nic_os;
        Accel.release_clusters (Machine.accel m kind) ~nf:id)
      h.clusters;
    Pktio.release (Machine.pktio m) ~nf:id;
    Machine.unbind_cores m ~nf:id;
    Alloc.free (Machine.alloc m) h.mem_base;
    t.live <- List.filter (fun x -> x.id <> id) t.live;
    t.retired <- id :: t.retired;
    Ok { allowlist = denylist_cycles_per_page * (h.mem_len / Physmem.page_size); scrub = scrub_cycles_per_byte * h.mem_len }
