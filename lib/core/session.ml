let tag_hello = "snic-hello"
let tag_quote = "snic-quote-msg"
let tag_share = "snic-share"
let tag_finished = "snic-finished"

let confirm_label nonce = "key-confirmation|" ^ nonce

let ( let* ) = Result.bind

let expect_tag want fields =
  match fields with
  | tag :: rest when String.equal tag want -> Ok rest
  | tag :: _ -> Error (Printf.sprintf "expected %s message, got %s" want tag)
  | [] -> Error "empty message"

module Verifier = struct
  type t = {
    rng : Random.State.t;
    vendor_public : Crypto.Rsa.public;
    expected : string option;
    nonce : string;
    mutable key : string option;
    mutable peer_measurement : string option;
  }

  let start rng ~vendor_public ?expected_measurement () =
    let nonce = String.init 16 (fun _ -> Char.chr (Random.State.int rng 256)) in
    let t = { rng; vendor_public; expected = expected_measurement; nonce; key = None; peer_measurement = None } in
    (t, Wire.encode [ tag_hello; nonce ])

  let on_quote t bytes =
    let* fields = Wire.decode ~expect:2 bytes in
    let* rest = expect_tag tag_quote fields in
    let* quote = match rest with [ q ] -> Attestation.quote_of_bytes q | _ -> Error "malformed quote message" in
    match
      Attestation.verify t.rng ~vendor_public:t.vendor_public ?expected_measurement:t.expected ~nonce:t.nonce quote
    with
    | Error e -> Error (Attestation.verify_error_to_string e)
    | Ok verified ->
      t.key <- Some verified.Attestation.key;
      t.peer_measurement <- Some verified.Attestation.quote_measurement;
      Ok (Wire.encode [ tag_share; Bigint.to_hex verified.Attestation.verifier_share ])

  let on_finished t bytes =
    let* fields = Wire.decode ~expect:2 bytes in
    let* rest = expect_tag tag_finished fields in
    match (rest, t.key) with
    | [ mac ], Some key ->
      if String.equal mac (Crypto.Hmac.mac ~key (confirm_label t.nonce)) then Ok ()
      else Error "key confirmation failed (different keys or tampering)"
    | _, None -> Error "FINISHED before QUOTE"
    | _ -> Error "malformed finished message"

  let key t = t.key
  let peer_measurement t = t.peer_measurement
end

module Prover = struct
  type t = {
    rng : Random.State.t;
    attester : Attestation.attester;
    mutable responder : Attestation.responder option;
    mutable nonce : string;
    mutable key : string option;
  }

  let create rng attester = { rng; attester; responder = None; nonce = ""; key = None }

  let on_hello t bytes =
    let* fields = Wire.decode ~expect:2 bytes in
    let* rest = expect_tag tag_hello fields in
    match rest with
    | [ nonce ] ->
      let responder, quote = Attestation.respond t.rng t.attester ~nonce in
      t.responder <- Some responder;
      t.nonce <- nonce;
      Ok (Wire.encode [ tag_quote; Attestation.quote_to_bytes quote ])
    | _ -> Error "malformed hello"

  let on_share t bytes =
    let* fields = Wire.decode ~expect:2 bytes in
    let* rest = expect_tag tag_share fields in
    match (rest, t.responder) with
    | [ share_hex ], Some responder -> begin
      match Bigint.of_hex share_hex with
      | share ->
        let key = Attestation.responder_key responder ~verifier_share:share in
        t.key <- Some key;
        Ok (Wire.encode [ tag_finished; Crypto.Hmac.mac ~key (confirm_label t.nonce) ])
      | exception Invalid_argument _ -> Error "malformed share"
    end
    | _, None -> Error "SHARE before HELLO"
    | _ -> Error "malformed share message"

  let key t = t.key
end

let handshake rng ~vendor_public ?expected_measurement attester =
  let verifier, hello = Verifier.start rng ~vendor_public ?expected_measurement () in
  let prover = Prover.create rng attester in
  let* quote = Prover.on_hello prover hello in
  let* share = Verifier.on_quote verifier quote in
  let* finished = Prover.on_share prover share in
  let* () = Verifier.on_finished verifier finished in
  match (Verifier.key verifier, Prover.key prover) with
  | Some vk, Some pk -> Ok (vk, pk)
  | _ -> Error "handshake completed without keys"
