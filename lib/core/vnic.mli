(** A virtual smart NIC, from the owning function's point of view.

    After nf_launch the function owns a set of cores, a RAM reservation,
    a virtual packet pipeline and possibly accelerator clusters. This
    module is the runtime the function's code executes against: every
    memory touch is checked by the machine under the function's principal,
    so the isolation tests and attack demos exercise the same path as
    ordinary packet processing. *)

type t

val of_handle : Instructions.t -> Instructions.handle -> t
val handle : t -> Instructions.handle
val id : t -> int

(** {2 Memory, through the function's own eyes} *)

(** Virtual accesses via the locked core TLB (first core). *)
val read_virt : t -> vaddr:int -> len:int -> (string, Nicsim.Machine.fault) result

val write_virt : t -> vaddr:int -> string -> (unit, Nicsim.Machine.fault) result

(** Raw physical accesses — S-NIC permits them only inside the
    function's own pages. *)
val read_phys : t -> paddr:int -> len:int -> (string, Nicsim.Machine.fault) result

val write_phys : t -> paddr:int -> string -> (unit, Nicsim.Machine.fault) result

(** {2 The virtual packet pipeline} *)

(** [rx t] pops the next received frame: (buffer paddr, length). *)
val rx : t -> (int * int) option

val rx_depth : t -> int

(** [rx_packet t] pops and parses, returning the buffer for reuse. *)
val rx_packet : t -> ((Net.Packet.t * int) option, string) result

(** [tx_packet t ~buffer pkt] serializes [pkt] into [buffer] (which must
    be a buffer this NF owns, normally the RX buffer being recycled) and
    hands it to the packet output module. *)
val tx_packet : t -> buffer:int -> Net.Packet.t -> (unit, string) result

(** [drop t ~buffer] recycles a buffer without transmitting. *)
val drop : t -> buffer:int -> unit

(** {2 Accelerator access}

    Requests run only on clusters the function owns (bound by nf_launch
    with a locked TLB bank, §4.3): using an accelerator type the function
    did not reserve is an error. Timing comes from the cluster's thread
    model; functional results come from the in-repo engines (Aho-Corasick
    for DPI, LZ77 for ZIP, P+Q parity for RAID). *)

(** [dpi_submit t ~now ~bytes] runs a request on one of the function's
    DPI clusters; [Error] when it owns none. *)
val dpi_submit : t -> now:int -> bytes:int -> (int, string) result

(** [zip_compress t ~now data] — compress on an owned ZIP cluster;
    returns (compressed, completion time). *)
val zip_compress : t -> now:int -> string -> (string * int, string) result

val zip_decompress : t -> now:int -> string -> (string * int, string) result

(** {3 Streaming accelerator I/O}

    The engine reads its input from the function's own RAM through the
    cluster's locked TLB bank and writes the result back the same way
    (the bulk datapath end to end): one TLB translation per mapped run,
    one page resolution per 4 KB. Offsets are relative to the function's
    region base (the cluster TLB maps the region at the same [vbase] as
    the cores). Returns (bytes written at [dst_off], completion time). *)

val zip_compress_stream :
  t -> now:int -> src_off:int -> src_len:int -> dst_off:int -> (int * int, string) result

val zip_decompress_stream :
  t -> now:int -> src_off:int -> src_len:int -> dst_off:int -> (int * int, string) result

(** [raid_encode t ~now blocks] — P+Q parity on an owned RAID cluster. *)
val raid_encode : t -> now:int -> string array -> (Accelfn.Raid.stripe * int, string) result

(** {2 Host DMA}

    Transfers run through the function's per-core DMA bank, whose locked
    TLBs confine the NIC side to the function's RAM and the host side to
    the window the host sanctioned at launch (§4.2). Addresses are
    window-relative: [nic_off] within the function's region, [host_off]
    within the sanctioned window. *)

val dma_to_host : t -> nic_off:int -> host_off:int -> len:int -> (unit, string) result
val dma_from_host : t -> nic_off:int -> host_off:int -> len:int -> (unit, string) result

(** {2 Batch processing} *)

type run_stats = { received : int; forwarded : int; dropped : int; faults : int }

(** [process t nf ~max] drains up to [max] packets from the VPP through
    [nf], transmitting forwards and recycling drops. *)
val process : t -> Nf.Types.t -> max:int -> run_stats
